module github.com/skipsim/skip

go 1.21
