// Package skip is the public API of SKIP-Sim: a simulator-backed
// reproduction of "Characterizing and Optimizing LLM Inference Workloads
// on CPU-GPU Coupled Architectures" (ISPASS 2025).
//
// The package exposes four layers:
//
//   - Platforms and Models: the paper's evaluation hardware (Table IV)
//     and LLM workloads (Table III + the fusion-study models).
//   - Run: execute a simulated inference (eager / FlashAttention /
//     torch.compile modes) and obtain timings plus a PyTorch-Profiler
//     style trace.
//   - Profile / Classify: SKIP's trace analysis — operator→kernel
//     dependency graphs, TKLQT/AKD/IL metrics, CPU-vs-GPU boundedness,
//     transition and crossover detection.
//   - RecommendFusion: the proximity-score kernel-fusion recommender.
//
// The declarative entry point is a Spec: one JSON-serializable document
// describing platform/model/mode, the workload (scenario generators,
// arrival processes, or a logged request trace), the serving
// configuration, and optionally a fleet. Simulate dispatches it to the
// right layer and returns a unified Report:
//
//	sp, err := skip.LoadSpec("experiment.json")
//	rep, err := skip.Simulate(sp, skip.WithObserver(func(e skip.Event) { … }))
//	fmt.Println(rep.Kind, rep.Serve.P95TTFT)
//
// Quick start (imperative single run):
//
//	res, err := skip.Run(skip.GH200, "llama-3.2-1B", 1, 512, skip.ModeEager)
//	metrics, _, err := skip.Profile(res.Trace)
//	fmt.Println(metrics.TKLQT, skip.ClassifyRun(metrics))
package skip

import (
	"github.com/skipsim/skip/internal/bench"
	"github.com/skipsim/skip/internal/cluster"
	"github.com/skipsim/skip/internal/core"
	"github.com/skipsim/skip/internal/cuda"
	"github.com/skipsim/skip/internal/disagg"
	"github.com/skipsim/skip/internal/engine"
	"github.com/skipsim/skip/internal/fusion"
	"github.com/skipsim/skip/internal/hw"
	"github.com/skipsim/skip/internal/kvcache"
	"github.com/skipsim/skip/internal/metrics"
	"github.com/skipsim/skip/internal/models"
	"github.com/skipsim/skip/internal/serve"
	"github.com/skipsim/skip/internal/sim"
	"github.com/skipsim/skip/internal/spec"
	"github.com/skipsim/skip/internal/trace"
)

// Core aliases: the public names for the library's central types.
type (
	// Platform is a CPU-GPU coupled evaluation system.
	Platform = hw.Platform
	// Model is an LLM architecture description.
	Model = models.Config
	// Mode is a PyTorch execution mode.
	Mode = engine.Mode
	// Request is a fully-specified simulation request.
	Request = engine.Request
	// Result is a simulation outcome: timings plus trace.
	Result = engine.Result
	// Trace is a profiler trace in Chrome trace-event form.
	Trace = trace.Trace
	// Metrics are SKIP's per-run measurements (TKLQT, AKD, IL, …).
	Metrics = core.Metrics
	// DependencyGraph is the reconstructed operator→kernel graph.
	DependencyGraph = core.Graph
	// KernelStat is a per-kernel-symbol aggregate (top-k tracking).
	KernelStat = core.KernelStat
	// SeriesPoint is one batch-size sample of a sweep.
	SeriesPoint = core.SeriesPoint
	// Boundedness labels a run CPU-bound or GPU-bound.
	Boundedness = core.Boundedness
	// FusionReport is a chain-length sweep of fusion recommendations.
	FusionReport = fusion.Report
	// FusionAnalysis is the mining result at one chain length.
	FusionAnalysis = fusion.Analysis
	// Chain is one kernel-chain candidate with its proximity score.
	Chain = fusion.Chain
	// Experiment regenerates one paper table or figure.
	Experiment = bench.Experiment
	// ExperimentResult is an experiment's tables and checks.
	ExperimentResult = bench.Result
	// Time is virtual time in nanoseconds.
	Time = sim.Time
)

// Common virtual-time units, mirroring time.Nanosecond and friends.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Execution modes (paper §II-C).
const (
	ModeEager                 = engine.Eager
	ModeFlashAttention        = engine.Flash
	ModeCompileDefault        = engine.CompileDefault
	ModeCompileReduceOverhead = engine.CompileReduceOverhead
	ModeCompileMaxAutotune    = engine.CompileMaxAutotune
)

// Boundedness classes (paper §V-B, §V-D).
const (
	CPUBound = core.CPUBound
	GPUBound = core.GPUBound
	Balanced = core.Balanced
)

// Platform names (Table IV plus the future-work TC projection).
const (
	AMDA100   = hw.AMDA100Name
	IntelH100 = hw.IntelH100Name
	GH200     = hw.GH200Name
	MI300A    = hw.MI300AName
)

// Platforms returns the paper's three evaluation platforms in figure
// order (AMD+A100, Intel+H100, GH200).
func Platforms() []*Platform { return hw.EvaluationPlatforms() }

// PlatformByName returns a fresh instance of a cataloged platform.
func PlatformByName(name string) (*Platform, error) { return hw.ByName(name) }

// PlatformNames lists the platform catalog.
func PlatformNames() []string { return hw.PlatformNames() }

// Models returns the paper's Table III workloads.
func Models() []*Model { return models.TableIIIModels() }

// FusionStudyModels returns the 7B models of Figs. 3/5.
func FusionStudyModels() []*Model { return models.FusionStudyModels() }

// ModelByName returns a cataloged model config.
func ModelByName(name string) (*Model, error) { return models.ByName(name) }

// ModelNames lists the model catalog.
func ModelNames() []string { return models.ModelNames() }

// Run simulates one prefill inference of the named model on the named
// platform and returns timings plus the profiler trace.
func Run(platform, model string, batch, seq int64, mode Mode) (*Result, error) {
	p, err := hw.ByName(platform)
	if err != nil {
		return nil, err
	}
	m, err := models.ByName(model)
	if err != nil {
		return nil, err
	}
	return engine.Run(Request{Platform: p, Model: m, Batch: batch, Seq: seq, Mode: mode})
}

// RunRequest simulates a fully-specified request (custom platforms or
// model configs included).
func RunRequest(req Request) (*Result, error) { return engine.Run(req) }

// Profile analyzes a trace with SKIP: it reconstructs the
// operator→kernel dependency graph and computes TKLQT, AKD, IL, idle
// times, and launch-delay statistics.
func Profile(tr *Trace) (*Metrics, *DependencyGraph, error) { return core.Analyze(tr) }

// ClassifyRun labels a profiled run CPU-bound or GPU-bound (§V-B).
func ClassifyRun(m *Metrics) Boundedness { return core.ClassifyRun(m) }

// TransitionBatch finds the CPU→GPU-bound inflection of a TKLQT sweep.
func TransitionBatch(series []SeriesPoint) (int64, error) { return core.TransitionBatch(series) }

// Crossover finds the batch at which challenger's TTFT first beats
// incumbent's.
func Crossover(challenger, incumbent []SeriesPoint) (int64, error) {
	return core.Crossover(challenger, incumbent)
}

// BalancedRegion returns the batch range where both PUs stay busy.
func BalancedRegion(series []SeriesPoint, maxIdleFrac float64) (lo, hi int64, ok bool) {
	return core.BalancedRegion(series, maxIdleFrac)
}

// KernelSequence extracts the executed kernel-name sequence of a trace.
func KernelSequence(tr *Trace) []string { return fusion.KernelSequence(tr) }

// RecommendFusion mines the trace's kernel sequence for fusion
// candidates at the given chain lengths (nil for the paper's standard
// lengths 2…512) and computes ideal launch-savings speedups (Eqs. 6-8).
func RecommendFusion(tr *Trace, lengths []int) (*FusionReport, error) {
	if lengths == nil {
		lengths = fusion.StandardLengths()
	}
	return fusion.Sweep(fusion.KernelSequence(tr), lengths)
}

// NullKernelResult is the Table V microbenchmark outcome.
type NullKernelResult = cuda.NullKernelResult

// MeasureNullKernel reproduces the paper's §V-A launch-overhead
// microbenchmark on a platform.
func MeasureNullKernel(p *Platform, iterations int) NullKernelResult {
	return cuda.MeasureNullKernel(p, iterations)
}

// Experiments returns every registered paper artifact regenerator, in
// presentation order (tables, then figures, then extensions).
func Experiments() []*Experiment { return bench.All() }

// ExperimentByID returns one artifact regenerator ("table5", "fig6", …).
func ExperimentByID(id string) (*Experiment, error) { return bench.ByID(id) }

// GenerateResult reports an autoregressive generation run (prefill +
// decode steps).
type GenerateResult = engine.GenerateResult

// RunGenerate simulates prefill plus newTokens decode iterations against
// a growing KV cache (extension of the paper's prefill-only evaluation;
// §II-A motivates the phase split).
func RunGenerate(req Request, newTokens int) (*GenerateResult, error) {
	return engine.RunGenerate(req, newTokens)
}

// FusionApplication selects how an applied fusion plan collapses work.
type FusionApplication = engine.FusionApplication

// Fusion application models (see engine documentation).
const (
	LaunchSavingsOnly = engine.LaunchSavingsOnly
	FullRegionFusion  = engine.FullRegionFusion
)

// FusedRunResult reports an applied-fusion execution.
type FusedRunResult = engine.FusedRunResult

// RunFused executes an eager request with a proximity-score fusion plan
// of the given chain length applied — the fusion prototype the paper
// defers to future work (§VI).
func RunFused(req Request, chainLen int, app FusionApplication) (*FusedRunResult, error) {
	return engine.RunFused(req, chainLen, app)
}

// Attribution decomposes inference latency into CPU-only, GPU-only,
// overlapped, and bubble phases.
type Attribution = core.Attribution

// Attribute computes the latency decomposition of a trace — a
// finer-grained view of the paper's idle-time analysis (Figs. 10b/c).
func Attribute(tr *Trace) (*Attribution, error) { return core.Attribute(tr) }

// LoadPlatformFile reads a custom platform definition (JSON) for what-if
// hardware studies; SavePlatformFile on a Platform writes one.
func LoadPlatformFile(path string) (*Platform, error) { return hw.LoadPlatformFile(path) }

// Serving-layer aliases: simulate an inference server with a batching
// policy over the platform simulator (paper §II-A's latency/throughput
// trade-off). The continuous policies run a discrete-event,
// iteration-level (Orca-style) scheduler with a KV-cache capacity
// model; see the serve package documentation.
type (
	// ServeConfig parameterizes a serving simulation.
	ServeConfig = serve.Config
	// ServeStats summarizes request latencies, throughput, goodput, and
	// KV-cache occupancy.
	ServeStats = serve.Stats
	// ServeRequest is one arriving inference request (with per-request
	// prompt and output lengths).
	ServeRequest = serve.Request
	// ServePolicy selects the batching policy.
	ServePolicy = serve.Policy
	// ServeWorkload generates deterministic scenario request streams.
	ServeWorkload = serve.Workload
	// ServeScenario names a workload shape (chat, agentic, …).
	ServeScenario = serve.Scenario
	// ServeLengthDist is a clamped lognormal token-length distribution.
	ServeLengthDist = serve.LengthDist
	// ServeSample is one (time, value) point of a server state series.
	ServeSample = serve.SamplePoint
)

// Batching policies.
const (
	StaticBatch     = serve.StaticBatch
	GreedyBatch     = serve.GreedyBatch
	ContinuousBatch = serve.ContinuousBatch
	ChunkedPrefill  = serve.ChunkedPrefill
)

// Workload scenarios.
const (
	ScenarioChat      = serve.ScenarioChat
	ScenarioAgentic   = serve.ScenarioAgentic
	ScenarioSummarize = serve.ScenarioSummarize
	ScenarioMixed     = serve.ScenarioMixed
)

// Serve simulates an inference server over a request stream.
//
// Deprecated: build a Spec with a workload and serve section and call
// Simulate; it shares this code path and adds validation, event
// streaming, and JSON round-tripping. Serve remains as a thin wrapper
// for imperative callers.
func Serve(cfg ServeConfig, requests []ServeRequest) (*ServeStats, error) {
	return serve.Simulate(cfg, requests)
}

// ParseServePolicy maps a CLI name ("continuous", "static", …) to a
// policy.
func ParseServePolicy(name string) (ServePolicy, error) { return serve.ParsePolicy(name) }

// ParseServeScenario maps a CLI name ("chat", "agentic", …) to a
// workload scenario.
func ParseServeScenario(name string) (ServeScenario, error) { return serve.ParseScenario(name) }

// PoissonArrivals generates a deterministic Poisson request stream.
func PoissonArrivals(n int, ratePerSec float64, seed int64) ([]ServeRequest, error) {
	return serve.PoissonArrivals(n, ratePerSec, seed)
}

// UniformArrivals generates a fixed-interval request stream. Like
// PoissonArrivals, it fails on a non-positive count or interval.
func UniformArrivals(n int, interval Time) ([]ServeRequest, error) {
	return serve.UniformArrivals(n, interval)
}

// GenerateWorkload produces a scenario's request stream (chat, agentic
// multi-turn, long-context summarization, or a mix), deterministic for
// a fixed seed.
func GenerateWorkload(w ServeWorkload) ([]ServeRequest, error) { return w.Generate() }

// Cluster-layer aliases: simulate a multi-instance, possibly
// heterogeneous fleet behind a front-end router with admission control
// — the fleet-scale extension of the paper's platform comparison. See
// the cluster package documentation.
type (
	// ClusterConfig parameterizes a fleet simulation: per-instance
	// serving configs, routing policy, and admission control.
	ClusterConfig = cluster.Config
	// ClusterStats summarizes fleet-level latencies, goodput, the
	// request ledger, load imbalance, and per-instance breakdowns.
	ClusterStats = cluster.Stats
	// ClusterInstanceStats is one instance's share of a fleet result.
	ClusterInstanceStats = cluster.InstanceStats
	// RouterPolicy selects how the front-end places requests.
	RouterPolicy = cluster.Policy
	// FleetGroup is one homogeneous slice of a fleet spec.
	FleetGroup = cluster.FleetGroup
	// AutoscaleConfig parameterizes the fleet autoscale controller.
	AutoscaleConfig = cluster.AutoscaleConfig
	// ScaleSignal selects the autoscale load signal.
	ScaleSignal = cluster.ScaleSignal
	// FaultsConfig parameterizes fault injection.
	FaultsConfig = cluster.FaultsConfig
	// Fault is one scheduled fault injection.
	Fault = cluster.Fault
	// FaultKind classifies a fault (crash, slow-node, link-degraded).
	FaultKind = cluster.FaultKind
	// ChaosStats is the churn ledger of a dynamic fleet.
	ChaosStats = cluster.ChaosStats
	// InstanceState is a serving instance's lifecycle state.
	InstanceState = serve.InstanceState
	// EvictedRequest is one in-flight request a killed instance pushed
	// out for the fleet layer to requeue.
	EvictedRequest = serve.Evicted
)

// Autoscale signals.
const (
	SignalQueueDepth    = cluster.SignalQueueDepth
	SignalSLOAttainment = cluster.SignalSLOAttainment
	SignalTransferQueue = cluster.SignalTransferQueue
)

// Fault kinds.
const (
	FaultCrash       = cluster.FaultCrash
	FaultSlowNode    = cluster.FaultSlowNode
	FaultLinkDegrade = cluster.FaultLinkDegrade
)

// Instance lifecycle states.
const (
	StateActive   = serve.StateActive
	StateDraining = serve.StateDraining
	StateStopped  = serve.StateStopped
)

// Routing policies.
const (
	RouterRoundRobin      = cluster.RoundRobin
	RouterLeastQueue      = cluster.LeastQueue
	RouterLeastKV         = cluster.LeastKV
	RouterSessionAffinity = cluster.SessionAffinity
	RouterPlatformAware   = cluster.PlatformAware
	RouterPrefixAffinity  = cluster.PrefixAffinity
)

// KV-cache aliases: the block-level prefix cache instances attach when
// a fleet.kv_cache section (or ServeConfig.KVCache) is present. See the
// kvcache package documentation for the block, hashing, and eviction
// model.
type (
	// KVCacheConfig dimensions an instance's prefix cache (block
	// granularity, device and host-spill tiers, eviction policy).
	KVCacheConfig = serve.KVCacheConfig
	// KVCacheStats is the reconciled cache ledger a report carries.
	KVCacheStats = serve.KVCacheStats
	// KVCachePolicy selects the block eviction policy.
	KVCachePolicy = kvcache.Policy
)

// KV-cache eviction policies.
const (
	KVCacheLRU  = kvcache.LRU
	KVCacheFIFO = kvcache.FIFO
)

// ParseKVCachePolicy maps a policy name ("lru", "fifo") to a
// KVCachePolicy.
func ParseKVCachePolicy(name string) (KVCachePolicy, error) { return kvcache.ParsePolicy(name) }

// SimulateCluster runs a fleet simulation over a request stream.
//
// Deprecated: build a Spec with a workload and fleet section and call
// Simulate; it shares this code path and adds validation, event
// streaming, and JSON round-tripping. SimulateCluster remains as a thin
// wrapper for imperative callers.
func SimulateCluster(cfg ClusterConfig, requests []ServeRequest) (*ClusterStats, error) {
	return cluster.Simulate(cfg, requests)
}

// ParseRouterPolicy maps a CLI name ("round-robin", "least-kv", …) to
// a routing policy.
func ParseRouterPolicy(name string) (RouterPolicy, error) { return cluster.ParsePolicy(name) }

// RouterPolicies lists the routing policies in presentation order.
func RouterPolicies() []RouterPolicy { return cluster.Policies() }

// ParseFleet parses a fleet spec like "GH200:4,Intel+H100:4" (or, with
// disaggregation roles, "GH200:2/prefill,Intel+H100:6/decode") against
// the platform catalog.
func ParseFleet(spec string) ([]FleetGroup, error) { return cluster.ParseFleet(spec) }

// Disaggregation-layer aliases: prefill/decode disaggregated serving
// with an interconnect-priced KV handoff between pools — the fleet-
// scale operationalization of the paper's prefill-compute vs decode-
// bandwidth asymmetry. See the disagg package documentation.
type (
	// DisaggConfig parameterizes a disaggregated fleet simulation.
	DisaggConfig = disagg.Config
	// DisaggGroup is one fleet slice with a role.
	DisaggGroup = disagg.Group
	// DisaggRole assigns a group to a pool (prefill, decode, both).
	DisaggRole = disagg.Role
	// DisaggStats summarizes a disaggregated fleet simulation: the
	// cross-pool request ledger, transfer economics, and pooled
	// latencies.
	DisaggStats = disagg.Stats
	// DisaggInstanceStats is one instance's share of a disaggregated
	// fleet result.
	DisaggInstanceStats = disagg.InstanceStats
	// KVTransferModel prices KV-cache movement between instances from
	// the platforms' interconnects.
	KVTransferModel = disagg.TransferModel
	// ServeHandoff is the state of a request leaving a prefill instance
	// to resume mid-stream on a decode instance.
	ServeHandoff = serve.Handoff
)

// Disaggregation roles.
const (
	RoleBoth    = disagg.RoleBoth
	RolePrefill = disagg.RolePrefill
	RoleDecode  = disagg.RoleDecode
)

// ParseDisaggRole maps a fleet-role name ("prefill", "decode", "both",
// or empty) to a DisaggRole.
func ParseDisaggRole(name string) (DisaggRole, error) { return disagg.ParseRole(name) }

// SimulateDisagg runs a prefill/decode disaggregated fleet over a
// request stream. Prefer a Spec with a fleet.disaggregation section and
// Simulate; this imperative door exists for callers composing custom
// platforms or per-pool configs in code.
func SimulateDisagg(cfg DisaggConfig, requests []ServeRequest) (*DisaggStats, error) {
	return disagg.Simulate(cfg, requests)
}

// KVBytesPerToken is a model's per-cached-token KV footprint — the
// quantity the disaggregation transfer model multiplies by a handoff's
// cache extent.
func KVBytesPerToken(m *Model) float64 { return serve.KVBytesPerToken(m) }

// FleetConfigs expands fleet groups over a base serving config, one
// config per instance with the group's platform substituted. Groups
// with a nil platform or non-positive count are rejected.
func FleetConfigs(groups []FleetGroup, base ServeConfig) ([]ServeConfig, error) {
	return cluster.FleetConfigs(groups, base)
}

// Spec API: the declarative, JSON-serializable entry point. One Spec
// document selects the simulation layer by which sections are present —
// run (engine), workload+serve (serving instance), workload+fleet
// (routed cluster) — and Simulate returns a unified Report. See the
// spec package documentation for the JSON schema.
type (
	// Spec is a complete experiment description.
	Spec = spec.Spec
	// RunSpec is the single-inference section of a Spec.
	RunSpec = spec.RunSpec
	// WorkloadSpec describes the request stream (scenario, arrival
	// process, or request-trace file).
	WorkloadSpec = spec.WorkloadSpec
	// ServeSpec is the serving section of a Spec.
	ServeSpec = spec.ServeSpec
	// FleetSpec is the fleet section of a Spec.
	FleetSpec = spec.FleetSpec
	// FleetGroupSpec is one homogeneous slice of a FleetSpec.
	FleetGroupSpec = spec.FleetGroupSpec
	// DisaggregationSpec is the fleet.disaggregation section: pool
	// routers and the KV-transfer knobs.
	DisaggregationSpec = spec.DisaggregationSpec
	// KVCacheSpec is the fleet.kv_cache section: per-instance prefix
	// caching with reuse credit and tiered host-memory spill.
	KVCacheSpec = spec.KVCacheSpec
	// AutoscaleSpec is the fleet.autoscale section: the feedback
	// controller that grows and shrinks a running fleet.
	AutoscaleSpec = spec.AutoscaleSpec
	// FaultsSpec is the fleet.faults section: scheduled and
	// seeded-random failure injection.
	FaultsSpec = spec.FaultsSpec
	// FaultSpec is one scheduled fault of a FaultsSpec.
	FaultSpec = spec.FaultSpec
	// SweepSpec is the sweep section of a Spec: one document field
	// swept across a value series, each point an independent simulation.
	SweepSpec = spec.SweepSpec
	// SweepPoint is one entry of a sweep Report's ordered series.
	SweepPoint = spec.SweepPoint
	// LengthDistSpec is a token-length distribution in JSON form.
	LengthDistSpec = spec.LengthDistSpec
	// Report is Simulate's unified outcome, discriminated by Kind.
	Report = spec.Report
	// ReportKind names the simulation layer a Spec dispatched to.
	ReportKind = spec.Kind
	// SimOption customizes a Simulate call (observers, progress ticks).
	SimOption = spec.Option
	// Event is one observation of a running simulation.
	Event = serve.Event
	// EventType classifies an Event.
	EventType = serve.EventType
	// Observer receives simulation events as they happen.
	Observer = serve.Observer
)

// Report kinds.
const (
	KindRun     = spec.KindRun
	KindServe   = spec.KindServe
	KindCluster = spec.KindCluster
	KindDisagg  = spec.KindDisagg
	KindSweep   = spec.KindSweep
)

// Simulation lifecycle event types.
const (
	EventArrival         = serve.EventArrival
	EventRejected        = serve.EventRejected
	EventUnroutable      = serve.EventUnroutable
	EventRouted          = serve.EventRouted
	EventAdmitted        = serve.EventAdmitted
	EventPreempted       = serve.EventPreempted
	EventAbandoned       = serve.EventAbandoned
	EventFirstToken      = serve.EventFirstToken
	EventKVTransferStart = serve.EventKVTransferStart
	EventKVTransferDone  = serve.EventKVTransferDone
	EventCompleted       = serve.EventCompleted
	EventProgress        = serve.EventProgress
	EventInstanceJoin    = serve.EventInstanceJoin
	EventDrainStart      = serve.EventDrainStart
	EventInstanceGone    = serve.EventInstanceGone
	EventFaultInjected   = serve.EventFaultInjected
	EventRequeued        = serve.EventRequeued
	EventBlockHit        = serve.EventBlockHit
	EventBlockEvict      = serve.EventBlockEvict
	EventBlockRestore    = serve.EventBlockRestore
	EventStateSample     = serve.EventStateSample
)

// Simulate validates the spec and runs it on the matching layer —
// engine, serving instance, or cluster — returning a unified Report; a
// spec with a sweep section runs once per swept value (concurrently on
// a bounded worker pool) and returns the ordered series. Deterministic
// for a fixed spec at any worker count: the CLI, bench experiments, and
// library callers sharing a spec reproduce identical numbers.
func Simulate(s *Spec, opts ...SimOption) (*Report, error) { return spec.Simulate(s, opts...) }

// WithObserver streams simulation events (arrival, routing, admission,
// preemption, first token, completion, progress ticks) to fn in
// deterministic order.
func WithObserver(fn Observer) SimOption { return spec.WithObserver(fn) }

// WithProgressEvery emits an EventProgress tick every n completions
// (default: every 10% of the workload).
func WithProgressEvery(n int) SimOption { return spec.WithProgressEvery(n) }

// WithSweepWorkers bounds the worker pool a sweep spec's points execute
// on (default: one per CPU). The series is bit-identical at any worker
// count; an observer forces one worker so events arrive in point order.
func WithSweepWorkers(n int) SimOption { return spec.WithSweepWorkers(n) }

// WithProfile records the simulator's own cost (wall time, events
// processed, events/sec, allocation churn) into Report.Profile. The
// simulated numbers are unaffected.
func WithProfile() SimOption { return spec.WithProfile() }

// Percentiles computes nearest-rank percentiles over a latency sample
// set with a single sort (zeros for an empty set) — the bulk form of
// per-request statistics assembly.
func Percentiles(samples []sim.Time, ps ...float64) []sim.Time {
	return serve.Percentiles(samples, ps...)
}

// LoadSpec reads a spec file; relative trace_file / platform_file
// references resolve against the file's directory.
func LoadSpec(path string) (*Spec, error) { return spec.Load(path) }

// ParseSpec decodes a Spec from JSON, rejecting unknown fields.
func ParseSpec(data []byte) (*Spec, error) { return spec.Parse(data) }

// SaveSpec writes a spec as indented JSON; SaveSpec∘LoadSpec is the
// identity.
func SaveSpec(s *Spec, path string) error { return spec.Save(s, path) }

// ReportJSON renders a Report as indented JSON with a stable field
// order (kinds as strings, times as virtual nanoseconds, traces
// excluded) — the machine-consumable form behind `skip sim -json`.
func ReportJSON(r *Report) ([]byte, error) { return spec.ReportJSON(r) }

// Observability aliases: request-level span timelines assembled from
// the event stream (exportable as Perfetto-loadable Chrome traces),
// routing decision records with counterfactual policy replays, and
// derived-metric extraction from finished reports. See the serve and
// cluster package documentation.
type (
	// TimelineBuilder assembles per-request span timelines from a
	// simulation's event stream: install builder.Observe as the
	// observer, then read Timelines, Reconcile, or export Trace.
	TimelineBuilder = serve.TimelineBuilder
	// RequestTimeline is one request's ordered, non-overlapping span
	// sequence from first sight to terminal outcome.
	RequestTimeline = serve.RequestTimeline
	// TimelineSegment is one closed span of a request's life.
	TimelineSegment = serve.Segment
	// TimelineSegmentKind classifies a span (queue, prefill, decode,
	// kv-stall, kv-transfer, requeue).
	TimelineSegmentKind = serve.SegmentKind
	// RoutingStats carries a router's decision records and
	// counterfactual replay summary (Report.Cluster.Routing,
	// Report.Disagg.PrefillRouting / DecodeRouting).
	RoutingStats = cluster.RoutingStats
	// RoutingDecision is one recorded pick with its scored alternatives.
	RoutingDecision = cluster.Decision
	// RoutingAltScore is one non-chosen candidate's load snapshot.
	RoutingAltScore = cluster.AltScore
	// CounterfactualStat summarizes one replayed policy's agreement with
	// the picks the active policy actually made.
	CounterfactualStat = cluster.CounterfactualStat
	// ObservabilitySpec is the observability section of a Spec.
	ObservabilitySpec = spec.ObservabilitySpec
	// ReportSpec is the report section of a Spec: derived-metric
	// selection by JSON path.
	ReportSpec = spec.ReportSpec
	// MetricSpec names one report leaf to extract.
	MetricSpec = spec.MetricSpec
	// Metric is one extracted series of a Report (one value per sweep
	// point; a single value for plain runs).
	Metric = spec.Metric
	// TimelineSpec is the observability.timeline section: windowed fleet
	// time series at a fixed interval, optionally per instance.
	TimelineSpec = spec.TimelineSpec
	// Timeline is the windowed fleet telemetry of Report.Timeline:
	// per-interval latency percentiles, throughput, goodput, queue and
	// KV occupancy, fleet size, and transfer/cache activity.
	Timeline = metrics.Timeline
	// TimelineSeries is one named window series of a Timeline.
	TimelineSeries = metrics.Series
	// TimelineInstanceSeries is one instance's series block of a
	// per-instance Timeline.
	TimelineInstanceSeries = metrics.InstanceSeries
	// WindowedHistogram is the streaming log-bucketed latency histogram
	// behind the timeline percentiles: fixed memory, mergeable,
	// quantiles within ~3.2% relative error.
	WindowedHistogram = metrics.Histogram
	// SimProfile is the simulator's self-measurement of Report.Profile:
	// wall time, events processed, events/sec, allocation churn.
	SimProfile = metrics.Profile
	// StateSample is the queue/KV/cache snapshot an EventStateSample
	// carries.
	StateSample = serve.StateSample
)

// Timeline segment kinds.
const (
	SegQueue    = serve.SegQueue
	SegPrefill  = serve.SegPrefill
	SegDecode   = serve.SegDecode
	SegStall    = serve.SegStall
	SegTransfer = serve.SegTransfer
	SegRequeue  = serve.SegRequeue
)

// NewTimelineBuilder returns an empty timeline builder; wire
// builder.Observe into Simulate via WithObserver.
func NewTimelineBuilder() *TimelineBuilder { return serve.NewTimelineBuilder() }

// ParseMode maps a mode name ("eager", "flash", "compile-default", …)
// to an execution Mode.
func ParseMode(name string) (Mode, error) { return engine.ParseMode(name) }

// LoadRequestTrace reads a request-trace CSV file (columns arrival_ms,
// prompt_tokens, output_tokens, session_id) for trace-replay workloads.
func LoadRequestTrace(path string) ([]ServeRequest, error) { return serve.LoadTraceFile(path) }
