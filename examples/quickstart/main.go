// Quickstart: simulate one LLM prefill on a closely-coupled platform,
// profile the trace with SKIP, and read the paper's headline metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	skip "github.com/skipsim/skip"
)

func main() {
	// Simulate Llama-3.2-1B prefill (batch 1, 512 tokens) on the GH200,
	// PyTorch eager mode — the latency-critical chatbot scenario.
	res, err := skip.Run(skip.GH200, "llama-3.2-1B", 1, 512, skip.ModeEager)
	if err != nil {
		log.Fatal(err)
	}

	// Profile the run's trace with SKIP: dependency graph + metrics.
	metrics, graph, err := skip.Profile(res.Trace)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Llama-3.2-1B prefill on GH200 (BS=1, seq=512, eager)")
	fmt.Printf("  TTFT (IL, Eq.4)          %v\n", res.TTFT)
	fmt.Printf("  kernels launched         %d\n", res.KernelCount)
	fmt.Printf("  TKLQT (Eq.2)             %v\n", metrics.TKLQT)
	fmt.Printf("  avg kernel duration      %v\n", metrics.AKD)
	fmt.Printf("  GPU idle (Eq.5)          %v  (%.0f%% of TTFT)\n",
		metrics.GPUIdle, 100*float64(metrics.GPUIdle)/float64(metrics.IL))
	fmt.Printf("  classification           %v\n", skip.ClassifyRun(metrics))

	fmt.Println("\nTop 3 kernels by total execution time:")
	for _, st := range graph.TopKernels(3, 1) {
		fmt.Printf("  %-38s ×%-3d  %v total\n", st.Name, st.Count, st.TotalTime)
	}

	// The same run compiled with CUDA graphs: the launch tax vanishes.
	compiled, err := skip.Run(skip.GH200, "llama-3.2-1B", 1, 512, skip.ModeCompileReduceOverhead)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntorch.compile reduce-overhead: TTFT %v (%.2fx speedup, %v one-time compile)\n",
		compiled.TTFT, float64(res.TTFT)/float64(compiled.TTFT), compiled.CompileTime)
}
