// Spec replay: the declarative front door end-to-end. One JSON spec
// fully describes an experiment — platform(s), model, workload, serving
// and fleet configuration — so the CLI (`skip sim -spec …`), the bench
// experiments, and library code like this all reproduce identical
// numbers from the same document.
//
// The program drives the two shipped specs:
//
//  1. examples/specs/fleet_replay.json — a logged 96-request agentic
//     trace (4-turn tool-calling trajectories with session IDs)
//     replayed through a mixed GH200 + Intel+H100 fleet behind a
//     session-affinity router, with the event stream tapped through an
//     Observer.
//  2. examples/specs/sweep_rate.json — a single GH200 chat serving
//     scenario with a sweep section over workload.rate_per_sec: one
//     Simulate call runs all four offered-load points (concurrently on
//     a worker pool) and returns the ordered Report series.
//
// Run from the repository root:
//
//	go run ./examples/spec_replay
package main

import (
	"fmt"
	"log"

	skip "github.com/skipsim/skip"
)

func main() {
	replayFleetTrace()
	sweepSingleNode()
}

func replayFleetTrace() {
	sp, err := skip.LoadSpec("examples/specs/fleet_replay.json")
	if err != nil {
		log.Fatal(err)
	}

	// Tap the event stream: count lifecycle events and print the
	// progress ticks plus every preemption. Events arrive in
	// deterministic order for a fixed spec.
	counts := map[skip.EventType]int{}
	rep, err := skip.Simulate(sp, skip.WithObserver(func(e skip.Event) {
		counts[e.Type]++
		switch e.Type {
		case skip.EventProgress:
			fmt.Printf("  progress: %d/%d requests complete at t=%v\n", e.Completed, e.Total, e.Time)
		case skip.EventPreempted:
			fmt.Printf("  preempted: request %d on %s at t=%v\n", e.RequestID, e.Instance, e.Time)
		}
	}), skip.WithProgressEvery(24))
	if err != nil {
		log.Fatal(err)
	}

	st := rep.Cluster
	fmt.Printf("\ntrace replay: %d logged requests → %s fleet (%s router)\n",
		rep.Offered, "2×GH200 + 2×Intel+H100", st.RouterPolicy)
	fmt.Printf("  TTFT P50/P95   %v / %v\n", st.P50TTFT, st.P95TTFT)
	fmt.Printf("  E2E  P50/P95   %v / %v\n", st.P50E2E, st.P95E2E)
	fmt.Printf("  goodput        %.1f req/s (%.0f%% in 500ms TTFT SLO)\n", st.Goodput, st.SLOAttainment*100)
	fmt.Printf("  events         %d routed, %d admitted, %d first tokens, %d completed\n",
		counts[skip.EventRouted], counts[skip.EventAdmitted],
		counts[skip.EventFirstToken], counts[skip.EventCompleted])
	fmt.Println("  per-instance routed counts (session affinity pins whole trajectories):")
	for _, is := range st.Instances {
		fmt.Printf("    %-14s %3d routed, P95 TTFT %v\n", is.Name, is.Routed, is.Serve.P95TTFT)
	}
}

func sweepSingleNode() {
	sp, err := skip.LoadSpec("examples/specs/sweep_rate.json")
	if err != nil {
		log.Fatal(err)
	}

	// The spec's sweep section replaces the hand-rolled "edit the rate,
	// simulate again" loop: one Simulate call returns the whole series,
	// with the points executed in parallel and reassembled in order.
	rep, err := skip.Simulate(sp)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nsingle-node sweep: %s / %s chat load, offered rate swept by the spec's sweep section\n",
		sp.Platform, sp.Model)
	fmt.Printf("  %8s %12s %12s %10s %16s\n", "req/s", "P50 TTFT", "P95 TTFT", "tok/s", "goodput (req/s)")
	for _, pt := range rep.Sweep {
		st := pt.Report.Serve
		fmt.Printf("  %8.0f %12v %12v %10.0f %11.1f (%3.0f%%)\n",
			pt.Value, st.P50TTFT, st.P95TTFT, st.TokensPerSec, st.Goodput, st.SLOAttainment*100)
	}
	fmt.Println("\nThe knee between 10 and 20 req/s is the paper's §II-A trade-off:")
	fmt.Println("past the balanced region, queueing pushes the TTFT tail out faster")
	fmt.Println("than batching buys throughput, and SLO goodput collapses.")
}
