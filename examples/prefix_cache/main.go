// Prefix-cache walkthrough: block-level KV reuse for agentic sessions.
//
// An agent loop re-sends its whole growing context every turn — turn 5's
// prompt starts with turns 1–4 verbatim. The fleet.kv_cache section
// keeps that shared prefix resident as fixed-size token blocks: repeat
// turns pin their cached blocks, skip the redundant prefill work
// ("reuse credit"), and evicted blocks can spill to a host-memory tier
// whose restore cost is priced through the platform interconnect —
// near-free over GH200's NVLink-C2C, PCIe-priced on discrete parts.
//
// The walkthrough runs the shipped spec twice — cache on, then the same
// document with the cache section removed — and prints the ledger the
// report carries.
//
//	go run ./examples/prefix_cache
package main

import (
	"fmt"
	"log"

	skip "github.com/skipsim/skip"
)

func main() {
	sp, err := skip.LoadSpec("examples/specs/prefix_cache_agentic.json")
	if err != nil {
		log.Fatal(err)
	}

	cached, err := skip.Simulate(sp)
	if err != nil {
		log.Fatal(err)
	}

	// Same fleet, same seeded workload, no cache: the baseline every
	// cached run is entitled to beat.
	sp.Fleet.KVCache = nil
	baseline, err := skip.Simulate(sp)
	if err != nil {
		log.Fatal(err)
	}

	cs, bs := cached.Cluster, baseline.Cluster
	fmt.Println("=== 2×GH200, 8-turn agentic sessions, session-affinity routing ===")
	fmt.Printf("%-14s %14s %14s %14s\n", "", "mean TTFT", "P95 TTFT", "goodput")
	fmt.Printf("%-14s %12.1fms %12.1fms %11.2f r/s\n", "cache off",
		bs.MeanTTFT.Milliseconds(), bs.P95TTFT.Milliseconds(), bs.Goodput)
	fmt.Printf("%-14s %12.1fms %12.1fms %11.2f r/s\n", "cache on",
		cs.MeanTTFT.Milliseconds(), cs.P95TTFT.Milliseconds(), cs.Goodput)

	k := cs.KVCache
	fmt.Printf("\nledger: %d lookups = %d hits + %d restored + %d misses + %d unallocated\n",
		k.Lookups, k.Hits, k.Restored, k.Misses, k.Unallocated)
	fmt.Printf("        %.0f%% hit rate, %d prompt tokens skipped by reuse credit\n",
		k.HitRate*100, k.ReusedTokens)
	fmt.Printf("        %d evictions, %d spilled to host, %d restored back (stall %v)\n",
		k.Evictions, k.Spills, k.Restored, k.RestoreStall)
	if err := k.Reconcile(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("        ledger reconciles exactly ✓")
}
