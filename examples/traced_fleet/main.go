// Traced fleet: the observability surface end-to-end from library
// code. One spec (examples/specs/traced_fleet.json) pairs a mixed
// GH200 + Intel+H100 fleet under a platform-aware router with the two
// observability sections:
//
//   - "observability": {"counterfactual_k": 3} records every routing
//     decision — the chosen instance plus the top-3 alternatives the
//     policy scored — and replays the other policies over the recorded
//     snapshots to answer "would least-queue have placed this request
//     elsewhere?" without re-running the simulation.
//   - "report": {"metrics": [...]} extracts named numeric leaves of the
//     report into a flat series, the shape a plotting script wants.
//
// The program also taps the event stream through a TimelineBuilder and
// writes a Chrome-trace JSON of every request's span timeline
// (queue → prefill → decode, stalls, transfers, requeues) — open it at
// ui.perfetto.dev or chrome://tracing. Each instance renders as one
// thread row (TID 1..N); KV-transfer links get their own rows from
// TID 1001 so transfers bridge the prefill and decode lanes.
//
// Run from the repository root:
//
//	go run ./examples/traced_fleet
package main

import (
	"fmt"
	"log"

	skip "github.com/skipsim/skip"
)

func main() {
	sp, err := skip.LoadSpec("examples/specs/traced_fleet.json")
	if err != nil {
		log.Fatal(err)
	}

	// One observer feeds the timeline builder; Simulate stamps each
	// event with a strictly increasing Seq before it arrives here.
	tb := skip.NewTimelineBuilder()
	rep, err := skip.Simulate(sp, skip.WithObserver(tb.Observe))
	if err != nil {
		log.Fatal(err)
	}

	st := rep.Cluster
	fmt.Printf("traced fleet: %d requests through 2×GH200 + 2×Intel+H100 under %s\n",
		rep.Offered, st.RouterPolicy)

	// 1. Routing decision records + counterfactual replay.
	rt := st.Routing
	fmt.Printf("\n%d routing decisions recorded (top-%d alternatives each)\n", rt.Picks, rt.K)
	for _, cf := range rt.Counterfactuals {
		fmt.Printf("  %-15s would have moved %d/%d picks (%.0f%%)\n",
			cf.Policy, cf.Differed, cf.Picks, 100*float64(cf.Differed)/float64(cf.Picks))
	}
	d := rt.Decisions[0]
	fmt.Printf("  first pick: request %d → %s (queue %d, KV %.0f%%), over:\n",
		d.RequestID, d.Chosen, d.Outstanding, 100*d.KVPressure)
	for _, alt := range d.Alternatives {
		fmt.Printf("    %-14s queue %d, KV %.0f%%\n", alt.Instance, alt.Outstanding, 100*alt.KVPressure)
	}

	// 2. Derived metrics: flat named series straight off the report.
	fmt.Println("\nderived metrics (report.metrics)")
	for _, m := range rep.Metrics {
		fmt.Printf("  %-15s %v\n", m.Name, m.Values)
	}

	// 3. Request timelines → Chrome trace. Reconcile proves every
	// admitted request's spans tile its life and match the ledger.
	if err := tb.Reconcile(); err != nil {
		log.Fatal(err)
	}
	tls := tb.Timelines()
	var spans int
	for _, tl := range tls {
		spans += len(tl.Segments)
	}
	longest := tls[0]
	for _, tl := range tls {
		if len(tl.Segments) > len(longest.Segments) {
			longest = tl
		}
	}
	fmt.Printf("\n%d request timelines, %d spans; busiest request %d:\n", len(tls), spans, longest.RequestID)
	for _, seg := range longest.Segments {
		fmt.Printf("  %-8s %12v – %-12v on %s\n", seg.Kind, seg.Start, seg.End, seg.Where)
	}

	const out = "traced_fleet_trace.json"
	if err := tb.Trace().SaveFile(out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nChrome trace written to %s — load it at ui.perfetto.dev\n", out)
}
