// Batch-sweep characterization: reproduce the paper's central analysis
// (Figs. 6 and 10) for one model — TKLQT and TTFT across batch sizes on
// all three evaluation platforms, with CPU→GPU-bound transition points
// and platform crossover.
//
// The per-platform batch loop is a Spec with a sweep section over
// run.batch: one Simulate call returns the whole TTFT series (points
// executed in parallel), and each point's engine trace feeds SKIP's
// profiler exactly as a hand-rolled skip.Run loop would.
//
//	go run ./examples/batch_sweep
package main

import (
	"fmt"
	"log"

	skip "github.com/skipsim/skip"
)

const (
	model = "bert-base-uncased"
	seq   = 512
)

var batches = []int64{1, 2, 4, 8, 16, 32, 64}

func main() {
	series := make(map[string][]skip.SeriesPoint)
	platforms := []string{skip.AMDA100, skip.IntelH100, skip.GH200}

	values := make([]any, len(batches))
	for i, bs := range batches {
		values[i] = bs
	}
	for _, plat := range platforms {
		sp := &skip.Spec{
			Platform: plat, Model: model, Mode: "eager",
			Run:   &skip.RunSpec{Batch: batches[0], Seq: seq},
			Sweep: &skip.SweepSpec{Field: "run.batch", Values: values},
		}
		rep, err := skip.Simulate(sp)
		if err != nil {
			log.Fatal(err)
		}
		for _, pt := range rep.Sweep {
			res := pt.Report.Run
			m, _, err := skip.Profile(res.Trace)
			if err != nil {
				log.Fatal(err)
			}
			series[plat] = append(series[plat], skip.SeriesPoint{
				Batch: res.Request.Batch, TKLQT: m.TKLQT, TTFT: res.TTFT, Metrics: m,
			})
		}
	}

	fmt.Printf("%s, seq=%d, eager — TTFT by batch size\n\n", model, seq)
	fmt.Printf("%-12s", "platform")
	for _, bs := range batches {
		fmt.Printf("%12s", fmt.Sprintf("BS=%d", bs))
	}
	fmt.Println()
	for _, plat := range platforms {
		fmt.Printf("%-12s", plat)
		for _, pt := range series[plat] {
			fmt.Printf("%12v", pt.TTFT)
		}
		fmt.Println()
	}

	fmt.Println("\nTKLQT transition points (Fig. 6 stars):")
	for _, plat := range platforms {
		tb, err := skip.TransitionBatch(series[plat])
		if err != nil {
			log.Fatal(err)
		}
		lo, hi, ok := skip.BalancedRegion(series[plat], 0.45)
		balanced := "none sampled"
		if ok {
			balanced = fmt.Sprintf("BS %d-%d", lo, hi)
		}
		fmt.Printf("  %-12s CPU-bound until ≈ BS=%-3d balanced region: %s\n", plat, tb, balanced)
	}

	cp, err := skip.Crossover(series[skip.GH200], series[skip.IntelH100])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGH200 overtakes Intel+H100 at BS=%d — below that, the Grace CPU's\n", cp)
	fmt.Println("single-thread performance dominates; above it, HBM3 bandwidth wins.")
}
