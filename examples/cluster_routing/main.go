// Cluster routing: the fleet-scale question behind the paper's
// platform comparison. A mixed production workload (chat + agentic +
// long-context summarization) arrives at a heterogeneous 4+4 fleet of
// coupled GH200 and discrete Intel+H100 instances; we sweep the
// front-end routing policy and watch fleet-level tail latency, goodput
// under a 500ms TTFT SLO, and load imbalance.
//
// The punchline mirrors the paper's §V characterization: which router
// wins is a property of the platforms' boundedness regimes. Eager-mode
// GH200 serving is dispatch-bound (Grace's weak single-thread launch
// path), so the intuitive "send latency-critical short prompts to the
// coupled nodes" policy saturates them, while load-aware policies that
// watch queues and KV pressure contain the tail.
//
//	go run ./examples/cluster_routing
package main

import (
	"fmt"
	"log"

	skip "github.com/skipsim/skip"
)

func main() {
	model, err := skip.ModelByName("llama-3.2-1B")
	if err != nil {
		log.Fatal(err)
	}
	groups, err := skip.ParseFleet("GH200:4,Intel+H100:4")
	if err != nil {
		log.Fatal(err)
	}
	requests, err := skip.GenerateWorkload(skip.ServeWorkload{
		Scenario: skip.ScenarioMixed, N: 240, RatePerSec: 80, Seed: 29,
	})
	if err != nil {
		log.Fatal(err)
	}

	base := skip.ServeConfig{
		Model: model, Seq: 512, Mode: skip.ModeEager,
		Policy: skip.ContinuousBatch, MaxBatch: 32, LatencyBucket: 256,
	}
	fmt.Println("4×GH200 + 4×Intel+H100, mixed workload, 80 req/s Poisson, 500ms TTFT SLO")
	fmt.Printf("%-18s %7s %12s %12s %9s %16s %10s\n",
		"router", "GH/LC", "P50 TTFT", "P99 TTFT", "tok/s", "goodput (req/s)", "imbalance")
	for _, policy := range skip.RouterPolicies() {
		stats, err := skip.SimulateCluster(skip.ClusterConfig{
			Instances: skip.FleetConfigs(groups, base),
			Policy:    policy,
			TTFTSLO:   500 * skip.Millisecond,
		}, requests)
		if err != nil {
			log.Fatal(err)
		}
		coupled := 0
		for _, is := range stats.Instances {
			if is.Platform == skip.GH200 {
				coupled += is.Routed
			}
		}
		fmt.Printf("%-18s %3d/%-3d %12v %12v %9.0f %11.1f (%3.0f%%) %10.3f\n",
			stats.RouterPolicy, coupled, stats.Routed-coupled,
			stats.P50TTFT, stats.P99TTFT, stats.TokensPerSec,
			stats.Goodput, stats.SLOAttainment*100, stats.LoadImbalance)
	}

	// The same sweep with the front door rate-limited: a 40 req/s token
	// bucket sheds the burst tail before it ever queues.
	fmt.Println("\nwith token-bucket admission control (40 req/s sustained, depth 16):")
	fmt.Printf("%-18s %9s %12s %16s\n", "router", "rejected", "P99 TTFT", "goodput (req/s)")
	for _, policy := range []skip.RouterPolicy{skip.RouterRoundRobin, skip.RouterLeastQueue, skip.RouterLeastKV} {
		stats, err := skip.SimulateCluster(skip.ClusterConfig{
			Instances:       skip.FleetConfigs(groups, base),
			Policy:          policy,
			TTFTSLO:         500 * skip.Millisecond,
			AdmitRatePerSec: 40,
			AdmitBurst:      16,
		}, requests)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %9d %12v %16.1f\n",
			stats.RouterPolicy, stats.Rejected, stats.P99TTFT, stats.Goodput)
	}
}
