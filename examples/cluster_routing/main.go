// Cluster routing: the fleet-scale question behind the paper's
// platform comparison. A mixed production workload (chat + agentic +
// long-context summarization) arrives at a heterogeneous 4+4 fleet of
// coupled GH200 and discrete Intel+H100 instances; we sweep the
// front-end routing policy and watch fleet-level tail latency, goodput
// under a 500ms TTFT SLO, and load imbalance.
//
// The whole fleet — groups, router, admission control — is one
// declarative Spec; the sweep edits a single field between runs.
//
// The punchline mirrors the paper's §V characterization: which router
// wins is a property of the platforms' boundedness regimes. Eager-mode
// GH200 serving is dispatch-bound (Grace's weak single-thread launch
// path), so the intuitive "send latency-critical short prompts to the
// coupled nodes" policy saturates them, while load-aware policies that
// watch queues and KV pressure contain the tail.
//
//	go run ./examples/cluster_routing
package main

import (
	"fmt"
	"log"

	skip "github.com/skipsim/skip"
)

func fleetSpec(router string) *skip.Spec {
	return &skip.Spec{
		Model: "llama-3.2-1B",
		Workload: &skip.WorkloadSpec{
			Scenario: "mixed", Requests: 240, RatePerSec: 80, Seed: 29,
		},
		Serve: &skip.ServeSpec{
			Policy: "continuous", MaxBatch: 32, Seq: 512,
			LatencyBucket: 256, TTFTSLOMs: 500,
		},
		Fleet: &skip.FleetSpec{
			Groups: []skip.FleetGroupSpec{
				{Platform: skip.GH200, Count: 4},
				{Platform: skip.IntelH100, Count: 4},
			},
			Router: router,
		},
	}
}

func main() {
	fmt.Println("4×GH200 + 4×Intel+H100, mixed workload, 80 req/s Poisson, 500ms TTFT SLO")
	fmt.Printf("%-18s %7s %12s %12s %9s %16s %10s\n",
		"router", "GH/LC", "P50 TTFT", "P99 TTFT", "tok/s", "goodput (req/s)", "imbalance")
	for _, policy := range skip.RouterPolicies() {
		rep, err := skip.Simulate(fleetSpec(policy.String()))
		if err != nil {
			log.Fatal(err)
		}
		stats := rep.Cluster
		coupled := 0
		for _, is := range stats.Instances {
			if is.Platform == skip.GH200 {
				coupled += is.Routed
			}
		}
		fmt.Printf("%-18s %3d/%-3d %12v %12v %9.0f %11.1f (%3.0f%%) %10.3f\n",
			stats.RouterPolicy, coupled, stats.Routed-coupled,
			stats.P50TTFT, stats.P99TTFT, stats.TokensPerSec,
			stats.Goodput, stats.SLOAttainment*100, stats.LoadImbalance)
	}

	// The same sweep with the front door rate-limited: a 40 req/s token
	// bucket sheds the burst tail before it ever queues.
	fmt.Println("\nwith token-bucket admission control (40 req/s sustained, depth 16):")
	fmt.Printf("%-18s %9s %12s %16s\n", "router", "rejected", "P99 TTFT", "goodput (req/s)")
	for _, policy := range []skip.RouterPolicy{skip.RouterRoundRobin, skip.RouterLeastQueue, skip.RouterLeastKV} {
		sp := fleetSpec(policy.String())
		sp.Fleet.AdmitRatePerSec = 40
		sp.Fleet.AdmitBurst = 16
		rep, err := skip.Simulate(sp)
		if err != nil {
			log.Fatal(err)
		}
		stats := rep.Cluster
		fmt.Printf("%-18s %9d %12v %16.1f\n",
			stats.RouterPolicy, stats.Rejected, stats.P99TTFT, stats.Goodput)
	}
}
