// Fusion advisor: the paper's proximity-score workflow (§III-C, Figs.
// 7-9). Run a CPU-bound workload, mine deterministic kernel chains from
// its trace, and print the recommended fusion candidates with their
// idealized launch-savings speedups.
//
//	go run ./examples/fusion_advisor
package main

import (
	"fmt"
	"log"
	"strings"

	skip "github.com/skipsim/skip"
)

func main() {
	// GPT-2 prefill at BS=1 on Intel+H100: squarely CPU-bound, the
	// regime where launch-tax reduction pays (paper §V-C).
	res, err := skip.Run(skip.IntelH100, "gpt2", 1, 512, skip.ModeEager)
	if err != nil {
		log.Fatal(err)
	}
	metrics, _, err := skip.Profile(res.Trace)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GPT-2 prefill, Intel+H100, BS=1: %v TTFT, %d kernel launches, %v\n\n",
		res.TTFT, res.KernelCount, skip.ClassifyRun(metrics))

	rep, err := skip.RecommendFusion(res.Trace, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-6s %8s %10s %8s %10s\n", "L", "unique", "instances", "fused", "speedup")
	for _, row := range rep.Rows {
		fmt.Printf("%-6d %8d %10d %8d %9.2fx\n",
			row.Length, row.UniqueChains, row.TotalInstances, row.FusedChains, row.IdealSpeedup)
	}

	best, err := rep.BestSpeedup()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nBest: chain length %d → %.2fx ideal speedup (%d → %d launches)\n",
		best.Length, best.IdealSpeedup, rep.SequenceLen, best.KernelsAfterFusion)

	// Show a few deterministic candidates at a short length, the
	// hand-fusable ones.
	short, err := skip.RecommendFusion(res.Trace, []int{3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nDeterministic 3-kernel chains (PS = 1), ready for a Triton kernel:")
	count := 0
	for _, c := range short.Rows[0].Candidates(1.0) {
		fmt.Printf("  [%3d×] %s\n", c.Frequency, strings.Join(c.Kernels, " → "))
		count++
		if count == 6 {
			break
		}
	}
}
