// Serving policies: the paper's §II-A trade-off made concrete. An
// inference server receives a chat-style request stream (per-request
// prompt and output lengths); we compare the legacy run-to-completion
// policies against iteration-level continuous batching and chunked
// prefill on a loosely- and a closely-coupled platform, watching TTFT,
// TPOT, and E2E percentiles, KV-cache occupancy, and where on the
// batch-size curve each policy operates.
//
// Each cell of the table is one declarative experiment Spec — the same
// document `skip sim -spec` runs — with only the platform, policy, and
// offered rate varying.
//
//	go run ./examples/serving_policies
package main

import (
	"fmt"
	"log"

	skip "github.com/skipsim/skip"
)

// chatSpec is the shared experiment description; platform, policy, max
// batch, and offered rate are the swept fields.
func chatSpec(platform, policy string, maxBatch int, rate float64) *skip.Spec {
	return &skip.Spec{
		Platform: platform,
		Model:    "llama-3.2-1B",
		Workload: &skip.WorkloadSpec{
			Scenario: "chat", Requests: 60, RatePerSec: rate, Seed: 11,
			Prompt: &skip.LengthDistSpec{Mean: 384, Sigma: 0.6, Min: 32, Max: 1024},
			Output: &skip.LengthDistSpec{Mean: 96, Sigma: 0.5, Min: 8, Max: 256},
		},
		Serve: &skip.ServeSpec{
			Policy: policy, MaxBatch: maxBatch, Seq: 384, LatencyBucket: 256,
		},
	}
}

func main() {
	for _, rate := range []float64{5, 20} {
		fmt.Printf("=== offered load %.0f req/s (chat workload) ===\n", rate)
		fmt.Printf("%-12s %-16s %10s %12s %12s %12s %10s\n",
			"platform", "policy", "mean batch", "P95 TTFT", "P50 TPOT", "P95 E2E", "peak KV")
		for _, platform := range []string{skip.IntelH100, skip.GH200} {
			for _, pc := range []struct {
				name     string
				policy   string
				maxBatch int
			}{
				{"continuous≤32", "continuous", 32},
				{"chunked≤32", "chunked-prefill", 32},
				{"run-to-end BS=1", "continuous", 1},
			} {
				rep, err := skip.Simulate(chatSpec(platform, pc.policy, pc.maxBatch, rate))
				if err != nil {
					log.Fatal(err)
				}
				stats := rep.Serve
				fmt.Printf("%-12s %-16s %10.1f %12v %12v %12v %9.1f%%\n",
					platform, pc.name, stats.MeanBatch,
					stats.P95TTFT, stats.P50TPOT, stats.P95E2E, stats.PeakKVFrac*100)
			}
		}
		fmt.Println()
	}

	fmt.Println("Reading the table: run-to-completion BS=1 holds the engine for a")
	fmt.Println("whole generation, so under load TTFT explodes with queueing delay.")
	fmt.Println("Continuous batching admits arrivals between decode iterations and")
	fmt.Println("keeps TTFT near the unloaded prefill latency while decode proceeds")
	fmt.Println("at large batch — the Orca/vLLM regime the paper credits with BS=1-")
	fmt.Println("like latency at high throughput. Chunked prefill trails slightly")
	fmt.Println("here: eager serving is dispatch-bound (paper §V-B), so each extra")
	fmt.Println("chunk iteration re-pays the per-iteration host cost — chunking only")
	fmt.Println("wins where prefill is long enough to be GPU-bound.")
}
