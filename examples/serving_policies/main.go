// Serving policies: the paper's §II-A trade-off made concrete. An
// inference server receives a chat-style request stream (per-request
// prompt and output lengths); we compare the legacy run-to-completion
// policies against iteration-level continuous batching and chunked
// prefill on a loosely- and a closely-coupled platform, watching TTFT,
// TPOT, and E2E percentiles, KV-cache occupancy, and where on the
// batch-size curve each policy operates.
//
//	go run ./examples/serving_policies
package main

import (
	"fmt"
	"log"

	skip "github.com/skipsim/skip"
)

func main() {
	model, err := skip.ModelByName("llama-3.2-1B")
	if err != nil {
		log.Fatal(err)
	}

	for _, rate := range []float64{5, 20} {
		requests, err := skip.GenerateWorkload(skip.ServeWorkload{
			Scenario: skip.ScenarioChat, N: 60, RatePerSec: rate, Seed: 11,
			Prompt: skip.ServeLengthDist{Mean: 384, Sigma: 0.6, Min: 32, Max: 1024},
			Output: skip.ServeLengthDist{Mean: 96, Sigma: 0.5, Min: 8, Max: 256},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== offered load %.0f req/s (chat workload) ===\n", rate)
		fmt.Printf("%-12s %-16s %10s %12s %12s %12s %10s\n",
			"platform", "policy", "mean batch", "P95 TTFT", "P50 TPOT", "P95 E2E", "peak KV")
		for _, platName := range []string{skip.IntelH100, skip.GH200} {
			p, err := skip.PlatformByName(platName)
			if err != nil {
				log.Fatal(err)
			}
			for _, pc := range []struct {
				name     string
				policy   skip.ServePolicy
				maxBatch int
			}{
				{"continuous≤32", skip.ContinuousBatch, 32},
				{"chunked≤32", skip.ChunkedPrefill, 32},
				{"run-to-end BS=1", skip.ContinuousBatch, 1},
			} {
				stats, err := skip.Serve(skip.ServeConfig{
					Platform: p, Model: model, Seq: 384, Mode: skip.ModeEager,
					Policy: pc.policy, MaxBatch: pc.maxBatch, LatencyBucket: 256,
				}, requests)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("%-12s %-16s %10.1f %12v %12v %12v %9.1f%%\n",
					platName, pc.name, stats.MeanBatch,
					stats.P95TTFT, stats.P50TPOT, stats.P95E2E, stats.PeakKVFrac*100)
			}
		}
		fmt.Println()
	}

	fmt.Println("Reading the table: run-to-completion BS=1 holds the engine for a")
	fmt.Println("whole generation, so under load TTFT explodes with queueing delay.")
	fmt.Println("Continuous batching admits arrivals between decode iterations and")
	fmt.Println("keeps TTFT near the unloaded prefill latency while decode proceeds")
	fmt.Println("at large batch — the Orca/vLLM regime the paper credits with BS=1-")
	fmt.Println("like latency at high throughput. Chunked prefill trails slightly")
	fmt.Println("here: eager serving is dispatch-bound (paper §V-B), so each extra")
	fmt.Println("chunk iteration re-pays the per-iteration host cost — chunking only")
	fmt.Println("wins where prefill is long enough to be GPU-bound.")
}
