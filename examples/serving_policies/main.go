// Serving policies: the paper's §II-A trade-off made concrete. An
// inference server receives a Poisson request stream; we compare static
// batching against greedy (continuous-style) batching on a loosely- and
// a closely-coupled platform, watching TTFT percentiles, throughput, and
// where on the batch-size curve each policy operates relative to the
// platform's balanced region.
//
//	go run ./examples/serving_policies
package main

import (
	"fmt"
	"log"

	skip "github.com/skipsim/skip"
)

func main() {
	model, err := skip.ModelByName("bert-base-uncased")
	if err != nil {
		log.Fatal(err)
	}

	for _, rate := range []float64{50, 200} {
		requests := skip.PoissonArrivals(150, rate, 11)
		fmt.Printf("=== offered load %.0f req/s ===\n", rate)
		fmt.Printf("%-12s %-14s %10s %10s %10s %12s\n",
			"platform", "policy", "mean batch", "P50", "P95", "throughput")
		for _, platName := range []string{skip.IntelH100, skip.GH200} {
			p, err := skip.PlatformByName(platName)
			if err != nil {
				log.Fatal(err)
			}
			for _, policy := range []struct {
				name string
				cfg  skip.ServeConfig
			}{
				{"greedy≤32", skip.ServeConfig{
					Platform: p, Model: model, Seq: 512, Mode: skip.ModeEager,
					Policy: skip.GreedyBatch, MaxBatch: 32}},
				{"static 16", skip.ServeConfig{
					Platform: p, Model: model, Seq: 512, Mode: skip.ModeEager,
					Policy: skip.StaticBatch, BatchSize: 16, MaxWait: 100 * 1e6}},
			} {
				stats, err := skip.Serve(policy.cfg, requests)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("%-12s %-14s %10.1f %10v %10v %10.0f/s\n",
					platName, policy.name, stats.MeanBatch,
					stats.P50TTFT, stats.P95TTFT, stats.Throughput)
			}
		}
		fmt.Println()
	}

	fmt.Println("Reading the table: greedy batching tracks the offered load — small")
	fmt.Println("batches (BS≈1 latency) when traffic is light, larger groups under")
	fmt.Println("pressure. The GH200 self-selects larger batches than the LC system:")
	fmt.Println("its per-batch host cost is higher, so work piles up while it runs —")
	fmt.Println("which is exactly the paper's advice to operate CC parts deeper into")
	fmt.Println("their (later) balanced batch region rather than at BS=1.")
}
