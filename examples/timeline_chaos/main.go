// Timeline chaos: watch a fleet lose an instance and recover, window
// by window. One spec (examples/specs/timeline_chaos.json) pairs a
// 2×GH200 fleet under a queue-depth autoscaler with a scheduled crash
// at 400ms and a slow-node fault at 900ms, and turns on the windowed
// telemetry:
//
//	"observability": {"timeline": {"interval_ms": 100, "per_instance": true}}
//
// Report.Timeline then carries one value per 100ms window for every
// fleet signal — goodput, TTFT percentiles, queue depth, KV occupancy,
// active instances — so the crash is visible as a goodput dip and the
// autoscaler's spin-ups as the recovery, without streaming or storing
// any per-event data: the aggregator folds the event stream into
// fixed-size streaming histograms as the simulation runs.
//
// Run from the repository root:
//
//	go run ./examples/timeline_chaos
package main

import (
	"fmt"
	"log"

	skip "github.com/skipsim/skip"
)

func main() {
	sp, err := skip.LoadSpec("examples/specs/timeline_chaos.json")
	if err != nil {
		log.Fatal(err)
	}
	rep, err := skip.Simulate(sp)
	if err != nil {
		log.Fatal(err)
	}
	st, tl := rep.Cluster, rep.Timeline

	fmt.Printf("chaos fleet: %d requests, crash at 400ms, slow-node at 900ms\n", rep.Offered)
	fmt.Printf("churn: %d joins, %d crashes, %d killed = %d requeued + %d dropped\n\n",
		st.Chaos.Joins, st.Chaos.Crashes, st.Chaos.Killed, st.Chaos.Requeued, st.Chaos.Dropped)

	// The fleet story, one row per window: the crash empties a slot at
	// t=400ms, queue depth spikes while goodput stalls, then the
	// autoscaler's spin-ups land and goodput recovers.
	goodput := tl.Series("goodput_rps")
	active := tl.Series("active_instances")
	queue := tl.Series("queue_depth")
	p99 := tl.Series("ttft_p99_ms")
	fmt.Printf("%8s %8s %8s %8s %12s\n", "t_ms", "active", "queue", "goodput", "TTFT p99 ms")
	for w := 0; w < tl.Windows && w < 40; w++ {
		fmt.Printf("%8.0f %8.1f %8.1f %8.1f %12.0f\n",
			float64(w)*tl.IntervalMs, active[w], queue[w], goodput[w], p99[w])
	}

	// The same signals per instance: the crashed member's series go
	// quiet after its window, the spun-up replacements pick up the load.
	fmt.Println("\nper-instance completions by window (first 20 windows):")
	for _, in := range tl.Instances {
		var row string
		for w := 0; w < tl.Windows && w < 20; w++ {
			var v float64
			for _, s := range in.Series {
				if s.Name == "completed" {
					v = s.Values[w]
					break
				}
			}
			row += fmt.Sprintf(" %3.0f", v)
		}
		fmt.Printf("  %-10s%s\n", in.Instance, row)
	}
}
