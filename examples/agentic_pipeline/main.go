// Agentic-pipeline latency: the paper's §I/§II-A motivation. Emerging
// applications chain models — a RAG pipeline runs an embedding encoder,
// then a generator; an agent loop invokes the LLM repeatedly. Cumulative
// latency across stages decides whether the system meets the ~200 ms
// interactive budget the paper cites, and batch-size choices interact
// with each platform's CPU-bound region.
//
//	go run ./examples/agentic_pipeline
package main

import (
	"fmt"
	"log"

	skip "github.com/skipsim/skip"
)

// stage is one model invocation in the pipeline.
type stage struct {
	name  string
	model string
	seq   int64
}

// A retrieval-augmented agent turn: embed the query, generate a plan,
// then generate the final answer with retrieved context.
var pipeline = []stage{
	{"embed query", "xlm-roberta-base", 64},
	{"plan step", "llama-3.2-1B", 256},
	{"generate answer", "llama-3.2-1B", 512},
}

// slaBudget is the interactive-latency target the paper cites (§II-A:
// "System-level objectives constrain the latency to around 200 ms").
const slaBudget = 200.0 // ms

func main() {
	platforms := []string{skip.AMDA100, skip.IntelH100, skip.GH200}
	for _, batch := range []int64{1, 8} {
		fmt.Printf("=== agent turn at batch %d (concurrent conversations) ===\n", batch)
		for _, plat := range platforms {
			total := 0.0
			fmt.Printf("%-12s", plat)
			for _, st := range pipeline {
				res, err := skip.Run(plat, st.model, batch, st.seq, skip.ModeEager)
				if err != nil {
					log.Fatal(err)
				}
				stageMs := res.TTFT.Milliseconds()
				total += stageMs
				fmt.Printf("  %s %7.1fms", st.name, stageMs)
			}
			verdict := "✓ within budget"
			if total > slaBudget {
				verdict = "✗ over budget"
			}
			fmt.Printf("  | total %7.1fms (%s, SLA %.0fms)\n", total, verdict, slaBudget)
		}
		fmt.Println()
	}

	fmt.Println("Kernel fusion rescues the closely-coupled platform at low batch:")
	for _, mode := range []skip.Mode{skip.ModeEager, skip.ModeCompileReduceOverhead} {
		total := 0.0
		for _, st := range pipeline {
			res, err := skip.Run(skip.GH200, st.model, 1, st.seq, mode)
			if err != nil {
				log.Fatal(err)
			}
			total += res.TTFT.Milliseconds()
		}
		fmt.Printf("  GH200, %-28v total %7.1fms\n", mode, total)
	}
	fmt.Println("\nThe chained-latency view explains the paper's emphasis: each stage's")
	fmt.Println("launch tax accumulates, so CPU-bound stages dominate agent turns even")
	fmt.Println("when single-stage latencies look acceptable.")
}
