// Benchmarks: one testing.B benchmark per paper table and figure — each
// iteration regenerates the artifact end to end (simulate → trace →
// profile → analyze) and validates its paper-shape checks — plus
// micro-benchmarks of the library's hot paths.
//
//	go test -bench=. -benchmem ./...
package skip_test

import (
	"testing"

	skip "github.com/skipsim/skip"
)

// benchArtifact regenerates one table/figure per iteration.
func benchArtifact(b *testing.B, id string) {
	b.Helper()
	e, err := skip.ExperimentByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := e.Run()
		if err != nil {
			b.Fatal(err)
		}
		if !r.Passed() {
			b.Fatalf("%s failed its paper-shape checks", id)
		}
	}
}

// Paper tables.

func BenchmarkTable1(b *testing.B) { benchArtifact(b, "table1") }
func BenchmarkTable3(b *testing.B) { benchArtifact(b, "table3") }
func BenchmarkTable4(b *testing.B) { benchArtifact(b, "table4") }
func BenchmarkTable5(b *testing.B) { benchArtifact(b, "table5") }

// Paper figures.

func BenchmarkFig3(b *testing.B)  { benchArtifact(b, "fig3") }
func BenchmarkFig5(b *testing.B)  { benchArtifact(b, "fig5") }
func BenchmarkFig6(b *testing.B)  { benchArtifact(b, "fig6") }
func BenchmarkFig7(b *testing.B)  { benchArtifact(b, "fig7") }
func BenchmarkFig8(b *testing.B)  { benchArtifact(b, "fig8") }
func BenchmarkFig9(b *testing.B)  { benchArtifact(b, "fig9") }
func BenchmarkFig10(b *testing.B) { benchArtifact(b, "fig10") }
func BenchmarkFig11(b *testing.B) { benchArtifact(b, "fig11") }

// Extensions (future work §VI + ablations).

func BenchmarkExt1AppliedFusion(b *testing.B)     { benchArtifact(b, "ext1-applied-fusion") }
func BenchmarkExt2Decode(b *testing.B)            { benchArtifact(b, "ext2-decode") }
func BenchmarkExt3AblationCPU(b *testing.B)       { benchArtifact(b, "ext3-ablation-cpu") }
func BenchmarkExt4AblationLaunch(b *testing.B)    { benchArtifact(b, "ext4-ablation-launch") }
func BenchmarkExt5AblationBandwidth(b *testing.B) { benchArtifact(b, "ext5-ablation-bandwidth") }
func BenchmarkExt6Serving(b *testing.B)           { benchArtifact(b, "ext6-serving") }
func BenchmarkExt7TCProjection(b *testing.B)      { benchArtifact(b, "ext7-tc-projection") }
func BenchmarkExt8Continuous(b *testing.B)        { benchArtifact(b, "ext8-continuous") }
func BenchmarkExt9Cluster(b *testing.B)           { benchArtifact(b, "ext9-cluster") }
func BenchmarkExt10Disagg(b *testing.B)           { benchArtifact(b, "ext10-disagg") }

// Micro-benchmarks of the library's hot paths.

// BenchmarkSimulateEagerPrefill measures one full eager simulation
// (trace construction included) of the largest Table III model.
func BenchmarkSimulateEagerPrefill(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := skip.Run(skip.GH200, "llama-3.2-1B", 8, 512, skip.ModeEager); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProfileTrace measures SKIP's dependency-graph construction and
// metric computation over a ~1200-event trace.
func BenchmarkProfileTrace(b *testing.B) {
	res, err := skip.Run(skip.IntelH100, "gpt2", 1, 512, skip.ModeEager)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := skip.Profile(res.Trace); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChainMining measures the proximity-score sweep over a GPT-2
// kernel sequence at all standard lengths.
func BenchmarkChainMining(b *testing.B) {
	res, err := skip.Run(skip.IntelH100, "gpt2", 1, 512, skip.ModeEager)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := skip.RecommendFusion(res.Trace, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNullKernelMicrobench measures the Table V microbenchmark loop.
func BenchmarkNullKernelMicrobench(b *testing.B) {
	p, err := skip.PlatformByName(skip.GH200)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		skip.MeasureNullKernel(p, 100)
	}
}

// BenchmarkGenerate measures prefill plus 16 decode steps.
func BenchmarkGenerate(b *testing.B) {
	p, err := skip.PlatformByName(skip.GH200)
	if err != nil {
		b.Fatal(err)
	}
	m, err := skip.ModelByName("llama-3.2-1B")
	if err != nil {
		b.Fatal(err)
	}
	req := skip.Request{Platform: p, Model: m, Batch: 1, Seq: 512, Mode: skip.ModeEager}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := skip.RunGenerate(req, 16); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceJSONRoundTrip measures serialization of a full trace.
func BenchmarkTraceJSONRoundTrip(b *testing.B) {
	res, err := skip.Run(skip.IntelH100, "bert-base-uncased", 4, 512, skip.ModeEager)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sink discard
		if err := res.Trace.WriteJSON(&sink); err != nil {
			b.Fatal(err)
		}
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
