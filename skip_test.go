package skip_test

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"testing"

	skip "github.com/skipsim/skip"
	"github.com/skipsim/skip/internal/trace"
)

func TestPublicCatalogs(t *testing.T) {
	if got := len(skip.Platforms()); got != 3 {
		t.Errorf("Platforms = %d, want 3", got)
	}
	if got := len(skip.Models()); got != 4 {
		t.Errorf("Models = %d, want 4 (Table III)", got)
	}
	if got := len(skip.FusionStudyModels()); got != 3 {
		t.Errorf("FusionStudyModels = %d, want 3", got)
	}
	if len(skip.PlatformNames()) < 4 || len(skip.ModelNames()) < 8 {
		t.Error("catalog names incomplete")
	}
	if _, err := skip.PlatformByName(skip.GH200); err != nil {
		t.Error(err)
	}
	if _, err := skip.ModelByName("gpt2"); err != nil {
		t.Error(err)
	}
}

func TestPublicRunProfilePipeline(t *testing.T) {
	res, err := skip.Run(skip.GH200, "bert-base-uncased", 1, 512, skip.ModeEager)
	if err != nil {
		t.Fatal(err)
	}
	m, g, err := skip.Profile(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if m.TKLQT <= 0 || m.AKD <= 0 || m.IL <= 0 {
		t.Errorf("metrics: %+v", m)
	}
	if skip.ClassifyRun(m) != skip.CPUBound {
		t.Error("GH200 BS=1 bert should be CPU-bound")
	}
	top := g.TopKernels(5, 0)
	if len(top) != 5 {
		t.Errorf("TopKernels = %d", len(top))
	}
}

func TestPublicRunRejectsUnknownNames(t *testing.T) {
	if _, err := skip.Run("TPU", "gpt2", 1, 512, skip.ModeEager); err == nil {
		t.Error("unknown platform should fail")
	}
	if _, err := skip.Run(skip.GH200, "gpt5", 1, 512, skip.ModeEager); err == nil {
		t.Error("unknown model should fail")
	}
}

func TestPublicFusionRecommendation(t *testing.T) {
	res, err := skip.Run(skip.IntelH100, "gpt2", 1, 512, skip.ModeEager)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := skip.RecommendFusion(res.Trace, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 9 {
		t.Errorf("standard lengths rows = %d, want 9", len(rep.Rows))
	}
	best, err := rep.BestSpeedup()
	if err != nil {
		t.Fatal(err)
	}
	if best.IdealSpeedup < 2.0 {
		t.Errorf("gpt2 best ideal speedup = %.2f, want >2 (paper: 2.7)", best.IdealSpeedup)
	}
	if got := len(skip.KernelSequence(res.Trace)); got != res.KernelCount {
		t.Errorf("KernelSequence = %d, want %d", got, res.KernelCount)
	}
}

func TestPublicNullKernel(t *testing.T) {
	p, _ := skip.PlatformByName(skip.GH200)
	r := skip.MeasureNullKernel(p, 10)
	if r.LaunchOverheadNs < 2770 || r.LaunchOverheadNs > 2773 {
		t.Errorf("launch overhead = %.1f", r.LaunchOverheadNs)
	}
}

func TestPublicExperiments(t *testing.T) {
	if got := len(skip.Experiments()); got < 12 {
		t.Errorf("Experiments = %d, want ≥12", got)
	}
	e, err := skip.ExperimentByID("table5")
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("empty render")
	}
}

func TestTraceRoundTripThroughPublicAPI(t *testing.T) {
	// Run → save → load → profile: the offline-analysis workflow.
	res, err := skip.Run(skip.IntelH100, "gpt2", 2, 256, skip.ModeEager)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := res.Trace.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := trace.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	m1, _, err := skip.Profile(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	m2, _, err := skip.Profile(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if m1.TKLQT != m2.TKLQT || m1.KernelCount != m2.KernelCount || m1.IL != m2.IL {
		t.Errorf("metrics diverge across save/load: %+v vs %+v", m1, m2)
	}
}

func TestSweepHelpersThroughPublicAPI(t *testing.T) {
	var gh, intel []skip.SeriesPoint
	for _, bs := range []int64{1, 4, 16, 64} {
		for _, tgt := range []struct {
			plat string
			dst  *[]skip.SeriesPoint
		}{{skip.GH200, &gh}, {skip.IntelH100, &intel}} {
			res, err := skip.Run(tgt.plat, "bert-base-uncased", bs, 512, skip.ModeEager)
			if err != nil {
				t.Fatal(err)
			}
			m, _, err := skip.Profile(res.Trace)
			if err != nil {
				t.Fatal(err)
			}
			*tgt.dst = append(*tgt.dst, skip.SeriesPoint{Batch: bs, TKLQT: m.TKLQT, TTFT: res.TTFT, Metrics: m})
		}
	}
	if _, err := skip.TransitionBatch(gh); err != nil {
		t.Error(err)
	}
	cp, err := skip.Crossover(gh, intel)
	if err != nil {
		t.Fatal(err)
	}
	if cp == 0 {
		t.Error("GH200 should overtake Intel within BS≤64")
	}
	if _, _, ok := skip.BalancedRegion(gh, 0.6); !ok {
		t.Error("no balanced region found at generous bound")
	}
}

// TestPublicClusterPipeline drives the fleet simulator end to end
// through the exported API: fleet spec parsing, workload generation,
// routing, and the fleet-level request ledger.
func TestPublicClusterPipeline(t *testing.T) {
	groups, err := skip.ParseFleet("GH200:1,Intel+H100:1")
	if err != nil {
		t.Fatal(err)
	}
	model, err := skip.ModelByName("gpt2")
	if err != nil {
		t.Fatal(err)
	}
	requests, err := skip.GenerateWorkload(skip.ServeWorkload{
		Scenario: skip.ScenarioChat, N: 12, RatePerSec: 100, Seed: 5,
		Prompt: skip.ServeLengthDist{Mean: 48, Sigma: 0.5, Min: 16, Max: 96},
		Output: skip.ServeLengthDist{Mean: 4, Sigma: 0.5, Min: 2, Max: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	base := skip.ServeConfig{
		Model: model, Seq: 64, Mode: skip.ModeEager,
		Policy: skip.ContinuousBatch, MaxBatch: 8,
	}
	instances, err := skip.FleetConfigs(groups, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range skip.RouterPolicies() {
		stats, err := skip.SimulateCluster(skip.ClusterConfig{
			Instances: instances,
			Policy:    policy,
		}, requests)
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		if stats.Completed != 12 || stats.Offered != stats.Routed {
			t.Errorf("%v: ledger %+v", policy, stats)
		}
		if len(stats.Instances) != 2 {
			t.Errorf("%v: %d instances", policy, len(stats.Instances))
		}
	}
	if _, err := skip.ParseRouterPolicy("least-kv"); err != nil {
		t.Error(err)
	}
	if _, err := skip.ParseFleet("GH200"); err == nil {
		t.Error("malformed fleet spec should fail")
	}
}

// TestSpecAPI pins the declarative entry point at the public surface:
// the shipped fleet-replay spec loads, simulates deterministically, and
// round-trips through SaveSpec.
func TestSpecAPI(t *testing.T) {
	sp, err := skip.LoadSpec("examples/specs/fleet_replay.json")
	if err != nil {
		t.Fatal(err)
	}
	if sp.Kind() != skip.KindCluster {
		t.Fatalf("fleet_replay.json kind = %v, want cluster", sp.Kind())
	}

	var completions int
	rep, err := skip.Simulate(sp, skip.WithObserver(func(e skip.Event) {
		if e.Type == skip.EventCompleted {
			completions++
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != skip.KindCluster || rep.Cluster == nil {
		t.Fatalf("report kind = %v", rep.Kind)
	}
	if rep.Cluster.Completed != rep.Offered || completions != rep.Cluster.Completed {
		t.Errorf("completed %d of %d offered (%d completion events)",
			rep.Cluster.Completed, rep.Offered, completions)
	}

	// The acceptance criterion: replaying the same spec reproduces the
	// numbers exactly.
	again, err := skip.Simulate(sp)
	if err != nil {
		t.Fatal(err)
	}
	if again.Cluster.P99TTFT != rep.Cluster.P99TTFT || again.Cluster.TokensPerSec != rep.Cluster.TokensPerSec {
		t.Error("fleet replay is not deterministic across Simulate calls")
	}

	// Round-trip: the saved document must reload to the same spec.
	// (Comparison is via JSON form — the reloaded spec resolves its
	// relative trace path against the temp dir, not the original.)
	saved := filepath.Join(t.TempDir(), "fleet_replay.json")
	if err := skip.SaveSpec(sp, saved); err != nil {
		t.Fatal(err)
	}
	reloaded, err := skip.LoadSpec(saved)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(reloaded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Errorf("SaveSpec∘LoadSpec changed the document:\n want %s\n got  %s", want, got)
	}
	if _, err := skip.ParseSpec([]byte(`{"model":"llama-3.2-1B","bogus":1,"run":{"batch":1,"seq":64}}`)); err == nil {
		t.Error("ParseSpec should reject unknown fields")
	}
}
