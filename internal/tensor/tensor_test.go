package tensor

import (
	"testing"
	"testing/quick"
)

func TestDTypeSizes(t *testing.T) {
	cases := map[DType]int64{FP16: 2, BF16: 2, FP32: 4, INT8: 1, INT32: 4, INT64: 8}
	for d, want := range cases {
		if got := d.Size(); got != want {
			t.Errorf("%v.Size() = %d, want %d", d, got, want)
		}
	}
}

func TestDTypeString(t *testing.T) {
	if FP16.String() != "float16" {
		t.Errorf("FP16.String() = %q", FP16.String())
	}
	if DType(99).String() != "dtype(99)" {
		t.Errorf("unknown dtype string = %q", DType(99).String())
	}
}

func TestShapeElems(t *testing.T) {
	if got := Of(8, 512, 768).Elems(); got != 8*512*768 {
		t.Errorf("Elems = %d", got)
	}
	if got := Of().Elems(); got != 1 {
		t.Errorf("scalar Elems = %d, want 1", got)
	}
	if got := Of(3, 0, 5).Elems(); got != 0 {
		t.Errorf("zero-dim Elems = %d, want 0", got)
	}
	if got := Of(3, -1).Elems(); got != 0 {
		t.Errorf("negative-dim Elems = %d, want 0", got)
	}
}

func TestShapeBytes(t *testing.T) {
	if got := Of(2, 4).Bytes(FP16); got != 16 {
		t.Errorf("Bytes = %d, want 16", got)
	}
	if got := Of(2, 4).Bytes(INT64); got != 64 {
		t.Errorf("Bytes = %d, want 64", got)
	}
}

func TestShapeString(t *testing.T) {
	if got := Of(8, 512, 768).String(); got != "[8, 512, 768]" {
		t.Errorf("String = %q", got)
	}
	if got := Of().String(); got != "[]" {
		t.Errorf("String = %q", got)
	}
}

func TestMatmulFLOPs(t *testing.T) {
	// 2*m*k*n, batched.
	if got := MatmulFLOPs(1, 2, 3, 4); got != 48 {
		t.Errorf("MatmulFLOPs = %v, want 48", got)
	}
	if got := MatmulFLOPs(5, 2, 3, 4); got != 240 {
		t.Errorf("batched MatmulFLOPs = %v, want 240", got)
	}
}

func TestAttentionScoreFLOPs(t *testing.T) {
	// batch=2, heads=12, seq=512, headDim=64:
	// 2 * (2*12) * 512 * 64 * 512
	want := 2.0 * 24 * 512 * 64 * 512
	if got := AttentionScoreFLOPs(2, 12, 512, 64); got != want {
		t.Errorf("AttentionScoreFLOPs = %v, want %v", got, want)
	}
}

func TestElementwiseFLOPs(t *testing.T) {
	if got := ElementwiseFLOPs(100, 2.5); got != 250 {
		t.Errorf("ElementwiseFLOPs = %v, want 250", got)
	}
}

// Property: FLOPs scale linearly in every dimension.
func TestMatmulFLOPsLinearity(t *testing.T) {
	f := func(b, m, k, n uint8) bool {
		bb, mm, kk, nn := int64(b%16+1), int64(m%16+1), int64(k%16+1), int64(n%16+1)
		return MatmulFLOPs(2*bb, mm, kk, nn) == 2*MatmulFLOPs(bb, mm, kk, nn) &&
			MatmulFLOPs(bb, 2*mm, kk, nn) == 2*MatmulFLOPs(bb, mm, kk, nn)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Bytes = Elems * dtype size for random shapes.
func TestShapeBytesProperty(t *testing.T) {
	f := func(a, b, c uint8) bool {
		s := Of(int64(a%32+1), int64(b%32+1), int64(c%32+1))
		return s.Bytes(FP16) == 2*s.Elems() && s.Bytes(FP32) == 4*s.Elems()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
