// Package tensor provides the lightweight shape and dtype arithmetic the
// operator cost models need: element counts, byte sizes, and FLOP
// formulas for the dense kernels that dominate transformer inference.
// There is deliberately no data here — the simulator reasons about
// volumes, not values.
package tensor

import (
	"fmt"
	"strings"
)

// DType identifies an element type, fixing its storage size.
type DType int

const (
	// FP16 is the paper's evaluation precision ("All models used for
	// evaluation are FP16 precision-based PyTorch models").
	FP16 DType = iota
	// FP32 single precision.
	FP32
	// BF16 bfloat16; same size as FP16.
	BF16
	// INT8 quantized.
	INT8
	// INT32 index/mask type.
	INT32
	// INT64 index type used by embedding lookups.
	INT64
)

// Size returns the storage size of one element in bytes.
func (d DType) Size() int64 {
	switch d {
	case FP16, BF16:
		return 2
	case FP32, INT32:
		return 4
	case INT8:
		return 1
	case INT64:
		return 8
	default:
		return 4
	}
}

// String names the dtype as PyTorch would.
func (d DType) String() string {
	switch d {
	case FP16:
		return "float16"
	case FP32:
		return "float32"
	case BF16:
		return "bfloat16"
	case INT8:
		return "int8"
	case INT32:
		return "int32"
	case INT64:
		return "int64"
	default:
		return fmt.Sprintf("dtype(%d)", int(d))
	}
}

// Shape is a tensor extent, outermost dimension first.
type Shape []int64

// Of builds a shape from dims.
func Of(dims ...int64) Shape { return Shape(dims) }

// Elems returns the number of elements (product of dims; empty shape = 1
// scalar). Negative dims are invalid and yield 0.
func (s Shape) Elems() int64 {
	n := int64(1)
	for _, d := range s {
		if d < 0 {
			return 0
		}
		n *= d
	}
	return n
}

// Bytes returns the storage footprint of the shape in the given dtype.
func (s Shape) Bytes(d DType) int64 { return s.Elems() * d.Size() }

// Rank returns the number of dimensions.
func (s Shape) Rank() int { return len(s) }

// String renders like "[8, 512, 768]".
func (s Shape) String() string {
	parts := make([]string, len(s))
	for i, d := range s {
		parts[i] = fmt.Sprintf("%d", d)
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// MatmulFLOPs returns the multiply-accumulate FLOP count (2·m·k·n) of a
// (m×k)·(k×n) matrix product repeated batch times.
func MatmulFLOPs(batch, m, k, n int64) float64 {
	return 2 * float64(batch) * float64(m) * float64(k) * float64(n)
}

// AttentionScoreFLOPs returns FLOPs for Q·Kᵀ over batch·heads matrices of
// (seq×headDim)·(headDim×seq).
func AttentionScoreFLOPs(batch, heads, seq, headDim int64) float64 {
	return MatmulFLOPs(batch*heads, seq, headDim, seq)
}

// ElementwiseFLOPs approximates FLOPs of a pointwise op as opsPerElem per
// element.
func ElementwiseFLOPs(elems int64, opsPerElem float64) float64 {
	return float64(elems) * opsPerElem
}
