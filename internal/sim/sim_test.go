package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{0, "0ns"},
		{999, "999ns"},
		{2261, "2.26µs"},
		{1500 * Microsecond, "1.500ms"},
		{2500 * Millisecond, "2.5000s"},
		{-500, "-500ns"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	tt := 1500 * Microsecond
	if tt.Nanoseconds() != 1_500_000 {
		t.Errorf("Nanoseconds = %d", tt.Nanoseconds())
	}
	if tt.Microseconds() != 1500 {
		t.Errorf("Microseconds = %v", tt.Microseconds())
	}
	if tt.Milliseconds() != 1.5 {
		t.Errorf("Milliseconds = %v", tt.Milliseconds())
	}
	if tt.Seconds() != 0.0015 {
		t.Errorf("Seconds = %v", tt.Seconds())
	}
}

func TestFromNs(t *testing.T) {
	if got := FromNs(2260.5); got != 2261 {
		t.Errorf("FromNs(2260.5) = %d, want 2261", got)
	}
	if got := FromNs(2260.4); got != 2260 {
		t.Errorf("FromNs(2260.4) = %d, want 2260", got)
	}
	if got := FromNs(-5); got != 0 {
		t.Errorf("FromNs(-5) = %d, want 0", got)
	}
	if got := FromNs(0); got != 0 {
		t.Errorf("FromNs(0) = %d, want 0", got)
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock(100)
	if c.Now() != 100 {
		t.Fatalf("Now = %d", c.Now())
	}
	if got := c.Advance(50); got != 150 {
		t.Errorf("Advance(50) = %d", got)
	}
	if got := c.Advance(-10); got != 150 {
		t.Errorf("Advance(-10) = %d, clock must not run backwards", got)
	}
	if got := c.AdvanceTo(120); got != 150 {
		t.Errorf("AdvanceTo(120) = %d, clock must not run backwards", got)
	}
	if got := c.AdvanceTo(500); got != 500 {
		t.Errorf("AdvanceTo(500) = %d", got)
	}
	c.Reset(0)
	if c.Now() != 0 {
		t.Errorf("Reset: Now = %d", c.Now())
	}
}

func TestTimelineFIFO(t *testing.T) {
	tl := NewTimeline(0)
	s, e := tl.Acquire(10, 5)
	if s != 10 || e != 15 {
		t.Fatalf("first grant = [%d,%d), want [10,15)", s, e)
	}
	// Earlier request after a later frontier must queue.
	s, e = tl.Acquire(0, 3)
	if s != 15 || e != 18 {
		t.Fatalf("queued grant = [%d,%d), want [15,18)", s, e)
	}
	// Gap: request far in the future leaves the resource idle in between.
	s, e = tl.Acquire(100, 1)
	if s != 100 || e != 101 {
		t.Fatalf("gapped grant = [%d,%d), want [100,101)", s, e)
	}
	if tl.BusyTime() != 9 {
		t.Errorf("BusyTime = %d, want 9", tl.BusyTime())
	}
	if tl.LastEnd() != 101 {
		t.Errorf("LastEnd = %d, want 101", tl.LastEnd())
	}
}

func TestTimelineZeroAndNegativeDuration(t *testing.T) {
	tl := NewTimeline(0)
	s, e := tl.Acquire(5, 0)
	if s != 5 || e != 5 {
		t.Errorf("zero-duration grant = [%d,%d)", s, e)
	}
	s, e = tl.Acquire(0, -7)
	if s != 5 || e != 5 {
		t.Errorf("negative-duration grant = [%d,%d), want [5,5)", s, e)
	}
	if tl.BusyTime() != 0 {
		t.Errorf("BusyTime = %d, want 0", tl.BusyTime())
	}
}

func TestTimelineReset(t *testing.T) {
	tl := NewTimeline(0)
	tl.Acquire(0, 100)
	tl.Reset(42)
	if tl.FreeAt() != 42 || tl.BusyTime() != 0 || tl.LastEnd() != 0 {
		t.Errorf("after Reset: free=%d busy=%d last=%d", tl.FreeAt(), tl.BusyTime(), tl.LastEnd())
	}
}

// Property: grants never overlap and never start before their earliest
// time; the frontier is monotone.
func TestTimelineProperties(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tl := NewTimeline(0)
		var prevEnd Time
		for i := 0; i < int(n%64)+1; i++ {
			earliest := Time(rng.Int63n(1000))
			d := Time(rng.Int63n(50))
			s, e := tl.Acquire(earliest, d)
			if s < earliest || s < prevEnd || e != s+d {
				return false
			}
			prevEnd = e
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCalendarOrdering(t *testing.T) {
	c := NewCalendar()
	var order []int
	c.Schedule(30, func(Time) { order = append(order, 3) })
	c.Schedule(10, func(Time) { order = append(order, 1) })
	c.Schedule(20, func(Time) { order = append(order, 2) })
	// Same-time events fire in insertion order.
	c.Schedule(20, func(Time) { order = append(order, 4) })
	end := c.Run()
	if end != 30 {
		t.Errorf("Run end = %d, want 30", end)
	}
	want := []int{1, 2, 4, 3}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestCalendarScheduleInPastClamps(t *testing.T) {
	c := NewCalendar()
	c.Schedule(100, func(Time) {})
	c.Step()
	var fired Time
	c.Schedule(5, func(now Time) { fired = now })
	c.Step()
	if fired != 100 {
		t.Errorf("past event fired at %d, want clamped to 100", fired)
	}
}

func TestCalendarCancel(t *testing.T) {
	c := NewCalendar()
	fired := false
	e := c.Schedule(10, func(Time) { fired = true })
	if !c.Cancel(e) {
		t.Fatal("Cancel returned false for pending event")
	}
	if c.Cancel(e) {
		t.Error("second Cancel should return false")
	}
	c.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	if c.Cancel(nil) {
		t.Error("Cancel(nil) should return false")
	}
}

func TestCalendarRunUntil(t *testing.T) {
	c := NewCalendar()
	var fired []Time
	for _, at := range []Time{5, 15, 25} {
		at := at
		c.Schedule(at, func(now Time) { fired = append(fired, now) })
	}
	now := c.RunUntil(15)
	if now != 15 {
		t.Errorf("RunUntil returned %d", now)
	}
	if len(fired) != 2 {
		t.Errorf("fired %v, want 2 events", fired)
	}
	if c.Len() != 1 {
		t.Errorf("pending = %d, want 1", c.Len())
	}
	c.Run()
	if len(fired) != 3 {
		t.Errorf("after Run fired %v", fired)
	}
}

func TestCalendarCascade(t *testing.T) {
	// Events scheduling further events, as the decode scheduler does.
	c := NewCalendar()
	count := 0
	var step func(now Time)
	step = func(now Time) {
		count++
		if count < 5 {
			c.Schedule(now+10, step)
		}
	}
	c.Schedule(0, step)
	end := c.Run()
	if count != 5 || end != 40 {
		t.Errorf("count=%d end=%d, want 5 and 40", count, end)
	}
}

// Property: N random events all fire, in nondecreasing time order.
func TestCalendarProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewCalendar()
		total := int(n%100) + 1
		var fired []Time
		for i := 0; i < total; i++ {
			c.Schedule(Time(rng.Int63n(500)), func(now Time) { fired = append(fired, now) })
		}
		c.Run()
		if len(fired) != total {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
