package sim

import "container/heap"

// Event is a timestamped callback managed by a Calendar. Events with the
// same time fire in insertion order, which keeps simulations deterministic.
type Event struct {
	At   Time
	Fire func(now Time)

	seq   uint64
	index int
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Calendar is a deterministic future-event list. The core inference
// simulation uses timelines directly (see package comment), but the
// calendar supports components that need genuine event interleaving, such
// as the multi-request pipeline example and the decode-phase scheduler.
type Calendar struct {
	heap eventHeap
	now  Time
	seq  uint64
}

// NewCalendar returns an empty calendar positioned at time zero.
func NewCalendar() *Calendar { return &Calendar{} }

// Now reports the time of the most recently fired event (zero initially).
func (c *Calendar) Now() Time { return c.now }

// Len reports the number of pending events.
func (c *Calendar) Len() int { return len(c.heap) }

// Schedule enqueues fire to run at time at. Scheduling in the past (before
// the calendar's current time) clamps to the current time, preserving the
// no-time-travel invariant. It returns the scheduled event.
func (c *Calendar) Schedule(at Time, fire func(now Time)) *Event {
	if at < c.now {
		at = c.now
	}
	e := &Event{At: at, Fire: fire, seq: c.seq}
	c.seq++
	heap.Push(&c.heap, e)
	return e
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op and returns false.
func (c *Calendar) Cancel(e *Event) bool {
	if e == nil || e.index < 0 || e.index >= len(c.heap) || c.heap[e.index] != e {
		return false
	}
	heap.Remove(&c.heap, e.index)
	return true
}

// Step fires the earliest pending event and returns true, or returns false
// if the calendar is empty.
func (c *Calendar) Step() bool {
	if len(c.heap) == 0 {
		return false
	}
	e := heap.Pop(&c.heap).(*Event)
	c.now = e.At
	e.Fire(c.now)
	return true
}

// Run fires events until the calendar drains, returning the final time.
func (c *Calendar) Run() Time {
	for c.Step() {
	}
	return c.now
}

// RunUntil fires events with At <= deadline, returning the final time.
// Pending later events remain queued.
func (c *Calendar) RunUntil(deadline Time) Time {
	for len(c.heap) > 0 && c.heap[0].At <= deadline {
		c.Step()
	}
	if c.now < deadline {
		c.now = deadline
	}
	return c.now
}
