// Package sim provides the virtual-time foundation for the platform
// simulator: a nanosecond clock, busy-until resource timelines, and a
// small event calendar.
//
// All simulated components (the CPU thread that dispatches operators, the
// GPU streams that execute kernels, the interconnect that carries copies)
// are expressed as resources whose occupancy is tracked on a Timeline.
// This is exact for the workloads in this repository: eager-mode inference
// is a single CPU thread feeding FIFO GPU streams, so forward timestamping
// over timelines reproduces precisely the schedule a general
// discrete-event engine would produce, at a fraction of the cost.
package sim

import "fmt"

// Time is a point in virtual time, in nanoseconds since simulation start.
// Durations are also expressed as Time (ns) for arithmetic convenience.
type Time int64

// Common duration units, mirroring time.Nanosecond and friends but in
// virtual time.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Nanoseconds returns t as a plain int64 nanosecond count.
func (t Time) Nanoseconds() int64 { return int64(t) }

// Microseconds returns t in microseconds as a float.
func (t Time) Microseconds() float64 { return float64(t) / 1e3 }

// Milliseconds returns t in milliseconds as a float.
func (t Time) Milliseconds() float64 { return float64(t) / 1e6 }

// Seconds returns t in seconds as a float.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// String renders the time with an adaptive unit, e.g. "2.26µs" or "14.8ms".
func (t Time) String() string {
	switch {
	case t < 0:
		return fmt.Sprintf("-%s", -t)
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.2fµs", t.Microseconds())
	case t < Second:
		return fmt.Sprintf("%.3fms", t.Milliseconds())
	default:
		return fmt.Sprintf("%.4fs", t.Seconds())
	}
}

// FromNs converts a float nanosecond quantity (as used by the hardware
// cost models) to a Time, rounding to the nearest nanosecond.
func FromNs(ns float64) Time {
	if ns <= 0 {
		return 0
	}
	return Time(ns + 0.5)
}

// MaxTime returns the later of two times.
func MaxTime(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// MinTime returns the earlier of two times.
func MinTime(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// Clock tracks the current position of a sequential actor (for example
// the CPU dispatch thread) in virtual time.
type Clock struct {
	now Time
}

// NewClock returns a clock positioned at the given start time.
func NewClock(start Time) *Clock { return &Clock{now: start} }

// Now reports the clock's current virtual time.
func (c *Clock) Now() Time { return c.now }

// Advance moves the clock forward by d and returns the new time.
// Negative d is treated as zero: virtual time never runs backwards.
func (c *Clock) Advance(d Time) Time {
	if d > 0 {
		c.now += d
	}
	return c.now
}

// AdvanceTo moves the clock to t if t is later than the current time.
// It returns the (possibly unchanged) current time.
func (c *Clock) AdvanceTo(t Time) Time {
	if t > c.now {
		c.now = t
	}
	return c.now
}

// Reset rewinds the clock to the given time, for reuse across runs.
func (c *Clock) Reset(t Time) { c.now = t }
