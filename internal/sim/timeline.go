package sim

// Timeline models a serially-reusable resource — a GPU stream, a copy
// engine, a CPU core — as a "busy until" frontier. Work items are granted
// the resource in request order (FIFO), which matches CUDA stream
// semantics: a kernel may not begin before both its launch has reached the
// device and every previously enqueued kernel on the stream has finished.
type Timeline struct {
	free Time // the earliest instant at which the resource is idle
	busy Time // total occupied time, for utilization accounting
	last Time // end of the most recent grant
}

// NewTimeline returns a timeline that is free from t onwards.
func NewTimeline(t Time) *Timeline { return &Timeline{free: t} }

// FreeAt reports the earliest time the resource is available.
func (tl *Timeline) FreeAt() Time { return tl.free }

// BusyTime reports the cumulative time the resource has been occupied.
func (tl *Timeline) BusyTime() Time { return tl.busy }

// LastEnd reports the end time of the most recent grant (zero if none).
func (tl *Timeline) LastEnd() Time { return tl.last }

// Acquire grants the resource for duration d, starting no earlier than
// earliest. It returns the actual [start, end) of the grant and moves the
// frontier to end. A zero or negative duration occupies the resource for
// zero time but still orders after prior grants.
func (tl *Timeline) Acquire(earliest, d Time) (start, end Time) {
	start = MaxTime(earliest, tl.free)
	if d < 0 {
		d = 0
	}
	end = start + d
	tl.free = end
	tl.busy += d
	tl.last = end
	return start, end
}

// Reset rewinds the timeline for reuse across simulation runs.
func (tl *Timeline) Reset(t Time) {
	tl.free = t
	tl.busy = 0
	tl.last = 0
}
