package fusion

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/skipsim/skip/internal/trace"
)

func TestKernelSequence(t *testing.T) {
	b := trace.NewBuilder()
	b.Launch("cudaLaunchKernel", 1, 0, 1, 1)
	b.Kernel("b_kernel", 7, 100, 10, 1, 0, 0)
	b.Launch("cudaLaunchKernel", 1, 5, 1, 2)
	b.Kernel("a_kernel", 7, 50, 10, 2, 0, 0)
	b.Launch("cudaMemcpyAsync", 1, 10, 1, 3)
	b.Memcpy("Memcpy HtoD", 7, 20, 10, 3, 100)
	seq := KernelSequence(b.Trace())
	// Execution order (by kernel start), memcpys excluded.
	if len(seq) != 2 || seq[0] != "a_kernel" || seq[1] != "b_kernel" {
		t.Errorf("seq = %v", seq)
	}
}

func TestAnalyzeSimplePattern(t *testing.T) {
	// A B C repeated 4 times: every bigram within the period is
	// deterministic (PS=1) including the wrap (C→A occurs 3 of 4 C's).
	var seq []string
	for i := 0; i < 4; i++ {
		seq = append(seq, "A", "B", "C")
	}
	a, err := Analyze(seq, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.SequenceLen != 12 {
		t.Errorf("SequenceLen = %d", a.SequenceLen)
	}
	// Bigrams: AB(4), BC(4), CA(3) → 3 unique, 11 instances.
	if a.UniqueChains != 3 || a.TotalInstances != 11 {
		t.Errorf("unique=%d instances=%d, want 3/11", a.UniqueChains, a.TotalInstances)
	}
	// PS: AB = 4/4 = 1, BC = 4/4 = 1, CA = 3/4.
	scores := map[string]float64{}
	for _, c := range a.Chains {
		scores[c.Key()] = c.Score
	}
	if scores["A→B"] != 1.0 || scores["B→C"] != 1.0 {
		t.Errorf("AB/BC scores = %v", scores)
	}
	if s := scores["C→A"]; s < 0.74 || s > 0.76 {
		t.Errorf("CA score = %v, want 0.75", s)
	}
	// Greedy cover: AB fused at 0, BC fused at 4 (after AB covers 0-1,
	// position 2 is CA (not det), 3 is AB (already counted)...
	// C_fused counts distinct deterministic chains fused: AB and BC.
	if a.FusedChains != 2 {
		t.Errorf("FusedChains = %d, want 2", a.FusedChains)
	}
	// Eq. 7: K_fused = 12 − 2·1 = 10; Eq. 8: 12/10 = 1.2.
	if a.KernelsAfterFusion != 10 {
		t.Errorf("KernelsAfterFusion = %d, want 10", a.KernelsAfterFusion)
	}
	if a.IdealSpeedup < 1.19 || a.IdealSpeedup > 1.21 {
		t.Errorf("IdealSpeedup = %f, want 1.2", a.IdealSpeedup)
	}
}

func TestAnalyzeUniqueLeadLongChain(t *testing.T) {
	// A sequence with a unique head makes one long deterministic chain.
	seq := []string{"head"}
	for i := 0; i < 10; i++ {
		seq = append(seq, "x", "y")
	}
	a, err := Analyze(seq, 21)
	if err != nil {
		t.Fatal(err)
	}
	if a.FusedChains != 1 {
		t.Fatalf("FusedChains = %d, want 1 (the whole program from head)", a.FusedChains)
	}
	// Eq. 7: 21 − 1·20 = 1 → speedup 21.
	if a.KernelsAfterFusion != 1 || a.IdealSpeedup != 21 {
		t.Errorf("K_fused=%d speedup=%f", a.KernelsAfterFusion, a.IdealSpeedup)
	}
}

func TestAnalyzeChainLongerThanProgram(t *testing.T) {
	a, err := Analyze([]string{"a", "b", "c"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.UniqueChains != 0 || a.FusedChains != 0 {
		t.Errorf("over-long chain found candidates: %+v", a)
	}
	if a.IdealSpeedup != 1 {
		t.Errorf("speedup = %f, want 1 (plateau past K_eager)", a.IdealSpeedup)
	}
}

func TestAnalyzeRejectsShortLength(t *testing.T) {
	if _, err := Analyze([]string{"a"}, 1); err == nil {
		t.Error("L=1 should be rejected")
	}
}

func TestCandidatesThreshold(t *testing.T) {
	var seq []string
	for i := 0; i < 4; i++ {
		seq = append(seq, "A", "B", "C")
	}
	a, _ := Analyze(seq, 2)
	if got := len(a.Candidates(1.0)); got != 2 {
		t.Errorf("PS≥1 candidates = %d, want 2", got)
	}
	if got := len(a.Candidates(0.7)); got != 3 {
		t.Errorf("PS≥0.7 candidates = %d, want 3", got)
	}
	if got := len(a.Candidates(0.0)); got != a.UniqueChains {
		t.Errorf("PS≥0 candidates = %d, want all %d", got, a.UniqueChains)
	}
}

func TestSweepAndBestSpeedup(t *testing.T) {
	var seq []string
	seq = append(seq, "head")
	for i := 0; i < 50; i++ {
		seq = append(seq, "x", "y", "z")
	}
	r, err := Sweep(seq, StandardLengths())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(StandardLengths()) {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	best, err := r.BestSpeedup()
	if err != nil {
		t.Fatal(err)
	}
	// Long chains anchored at the unique head give the best speedup.
	if best.Length < 32 {
		t.Errorf("best length = %d, want a long chain", best.Length)
	}
	if best.IdealSpeedup <= 1.5 {
		t.Errorf("best speedup = %f", best.IdealSpeedup)
	}
	if _, err := (&Report{}).BestSpeedup(); err == nil {
		t.Error("empty report should fail")
	}
}

func TestDeterministicFlag(t *testing.T) {
	c := Chain{Score: 1.0}
	if !c.Deterministic() {
		t.Error("PS=1 must be deterministic")
	}
	c.Score = 0.99
	if c.Deterministic() {
		t.Error("PS<1 must not be deterministic")
	}
}

// Properties over random sequences.
func TestAnalyzeProperties(t *testing.T) {
	f := func(seed int64, alpha uint8, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		alphabet := int(alpha%6) + 2
		length := int(n%200) + 10
		seq := make([]string, length)
		for i := range seq {
			seq[i] = fmt.Sprintf("k%d", rng.Intn(alphabet))
		}
		for _, l := range []int{2, 4, 8} {
			a, err := Analyze(seq, l)
			if err != nil {
				return false
			}
			// Window accounting: total instances = N−L+1.
			if want := length - l + 1; want >= 0 && a.TotalInstances != want {
				return false
			}
			// PS ∈ (0, 1] for every chain.
			for _, c := range a.Chains {
				if c.Score <= 0 || c.Score > 1 {
					return false
				}
			}
			// Fusion never increases kernel count; speedup ≥ 1.
			if a.KernelsAfterFusion > length || a.IdealSpeedup < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// A periodic trace (transformer-layer-like) must yield: many unique
// chains at short L, stabilizing counts, decreasing fused chains, and
// speedup growing with L — the Fig. 7/8 shape.
func TestLayeredSequenceShape(t *testing.T) {
	var seq []string
	seq = append(seq, "embed")
	for layer := 0; layer < 12; layer++ {
		seq = append(seq, "ln1", "gemm_qkv", "split", "bmm_qk", "softmax",
			"bmm_av", "merge", "gemm_proj", "add1", "ln2", "gemm_fc",
			"gelu", "gemm_out", "add2")
	}
	seq = append(seq, "final_ln", "lm_head")

	var prev *Analysis
	for _, l := range []int{2, 4, 8, 16, 32, 64} {
		a, err := Analyze(seq, l)
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil {
			if a.TotalInstances > prev.TotalInstances {
				t.Errorf("L=%d: instances grew (%d → %d)", l, prev.TotalInstances, a.TotalInstances)
			}
			if a.FusedChains > prev.FusedChains {
				t.Errorf("L=%d: fused chains grew (%d → %d)", l, prev.FusedChains, a.FusedChains)
			}
			// Speedup may dip where L first exceeds the layer period
			// (chains crossing layer boundaries lose determinism) but
			// never drops below 1.
			if a.IdealSpeedup < 1 {
				t.Errorf("L=%d: speedup %f < 1", l, a.IdealSpeedup)
			}
		}
		prev = a
	}
	// At L=2 the per-layer structure yields many deterministic bigrams.
	a2, _ := Analyze(seq, 2)
	if a2.FusedChains < 8 {
		t.Errorf("L=2 fused chains = %d, want many (layer structure)", a2.FusedChains)
	}
	// Long chains: few non-overlapping deterministic chains, big payoff.
	a64, _ := Analyze(seq, 64)
	if a64.FusedChains < 1 {
		t.Error("L=64 should find at least one deterministic chain")
	}
	if a64.IdealSpeedup <= a2.IdealSpeedup {
		t.Errorf("long-chain speedup (%f) should beat short (%f)", a64.IdealSpeedup, a2.IdealSpeedup)
	}
}

func TestInstancePositions(t *testing.T) {
	// A B C repeated 4 times: (A,B) and (B,C) are deterministic; the
	// greedy instance cover fuses at 0 (AB), 3 (AB), 6 (AB), 9 (AB) —
	// each AB claim blocks the following BC overlap.
	var seq []string
	for i := 0; i < 4; i++ {
		seq = append(seq, "A", "B", "C")
	}
	pos, err := InstancePositions(seq, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pos) < 4 {
		t.Fatalf("positions = %v, want ≥4 instances", pos)
	}
	// Non-overlap invariant.
	for i := 1; i < len(pos); i++ {
		if pos[i] < pos[i-1]+2 {
			t.Fatalf("overlapping positions: %v", pos)
		}
	}
	// Chain longer than the program: no instances, no error.
	pos, err = InstancePositions([]string{"a", "b"}, 8)
	if err != nil || len(pos) != 0 {
		t.Errorf("over-long chain: pos=%v err=%v", pos, err)
	}
	if _, err := InstancePositions(seq, 1); err == nil {
		t.Error("L=1 should be rejected")
	}
}

func TestInstancePositionsCoverMoreThanDistinctChains(t *testing.T) {
	// Layered structure: instance count ≥ distinct fused chain count —
	// the gap Eq. 7's accounting leaves on the table.
	var seq []string
	for layer := 0; layer < 12; layer++ {
		seq = append(seq, "ln", "qkv", "attn", "proj", "mlp1", "act", "mlp2", "add")
	}
	a, err := Analyze(seq, 4)
	if err != nil {
		t.Fatal(err)
	}
	pos, err := InstancePositions(seq, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(pos) < a.FusedChains {
		t.Errorf("instances (%d) must be ≥ distinct chains (%d)", len(pos), a.FusedChains)
	}
	if len(pos) <= a.FusedChains {
		t.Errorf("periodic sequence should yield many instances per chain: %d vs %d",
			len(pos), a.FusedChains)
	}
}
