// Package fusion implements the paper's proximity-score kernel-fusion
// recommendation method (§III-C): mine deterministic kernel chains from
// runtime traces, score them by how reliably a chain follows its leading
// kernel (Eq. 6), select non-overlapping deterministic chains, and
// compute the idealized launch-tax savings of fusing them (Eqs. 7-8).
//
// Unlike domain-specific fusion (FlashAttention) or whole-graph capture
// (torch.compile), the method needs no pre-specification: determinism is
// discovered from the executed kernel sequence, where per-layer structure
// makes shape-specialized kernels recur in fixed order.
package fusion

import (
	"fmt"
	"strings"

	"github.com/skipsim/skip/internal/trace"
)

// KernelSequence extracts the kernel-name execution sequence from a
// trace, in device execution order (the timed kernel sequences SKIP
// feeds the recommender). Memcpys are not kernels and are excluded.
func KernelSequence(tr *trace.Trace) []string {
	kernels := tr.Kernels()
	names := make([]string, 0, len(kernels))
	for _, k := range kernels {
		names = append(names, k.Name)
	}
	return names
}

// Chain is one kernel chain candidate of a fixed length.
type Chain struct {
	// Kernels are the chain's kernel names, in order.
	Kernels []string
	// Frequency is f(C): how many windows of the sequence equal C.
	Frequency int
	// LeadFrequency is f(k_i): occurrences of the leading kernel.
	LeadFrequency int
	// Score is the proximity score PS(C) = f(C)/f(k_i) (Eq. 6): the
	// likelihood that executing the leading kernel continues into
	// exactly this chain. PS = 1 marks a deterministic pattern, the
	// ideal fusion candidate.
	Score float64
}

// Key renders the chain as a stable map key / display string.
func (c *Chain) Key() string { return strings.Join(c.Kernels, "→") }

// Deterministic reports whether the chain always follows its lead.
func (c *Chain) Deterministic() bool { return c.Score >= 1.0 }

// Analysis is the result of mining one sequence at one chain length —
// one cell of the paper's Fig. 7 heatmaps.
type Analysis struct {
	// Length is the chain length L.
	Length int
	// SequenceLen is the kernel count of the analyzed trace (K_eager
	// when the trace is an eager run — Fig. 7d).
	SequenceLen int
	// Chains are the distinct chains observed, with scores.
	Chains []Chain
	// UniqueChains = len(Chains) (Fig. 7a).
	UniqueChains int
	// TotalInstances is the summed frequency of all observed chains
	// (Fig. 7b).
	TotalInstances int
	// FusedChains is C_fused of Eq. 7: the number of distinct
	// deterministic (PS=1) chains selected by a greedy non-overlapping
	// left-to-right cover of the sequence (Fig. 7c).
	FusedChains int
	// KernelsAfterFusion is K_fused of Eq. 7:
	// K_eager − C_fused·(L−1).
	KernelsAfterFusion int
	// IdealSpeedup is Eq. 8: K_eager / K_fused — the theoretical
	// maximum from launch-count reduction alone, assuming constant
	// launch overhead per kernel and no other performance impact.
	IdealSpeedup float64
}

// Analyze mines a kernel sequence at chain length L.
func Analyze(seq []string, l int) (*Analysis, error) {
	if l < 2 {
		return nil, fmt.Errorf("fusion: chain length must be ≥ 2, got %d", l)
	}
	a := &Analysis{Length: l, SequenceLen: len(seq)}
	if len(seq) < l {
		// Chain longer than the program: nothing to fuse (the paper's
		// zero cells and the speedup plateau past K_eager).
		a.KernelsAfterFusion = len(seq)
		a.IdealSpeedup = 1
		return a, nil
	}

	lead := make(map[string]int, 64)
	for _, k := range seq {
		lead[k]++
	}
	windows := make(map[string]int, len(seq))
	order := make([]string, 0, 64) // deterministic output order
	for i := 0; i+l <= len(seq); i++ {
		key := strings.Join(seq[i:i+l], "→")
		if _, seen := windows[key]; !seen {
			order = append(order, key)
		}
		windows[key]++
	}

	chainAt := func(i int) string { return strings.Join(seq[i:i+l], "→") }
	for _, key := range order {
		freq := windows[key]
		leadName := strings.SplitN(key, "→", 2)[0]
		a.Chains = append(a.Chains, Chain{
			Kernels:       strings.Split(key, "→"),
			Frequency:     freq,
			LeadFrequency: lead[leadName],
			Score:         float64(freq) / float64(lead[leadName]),
		})
		a.TotalInstances += freq
	}
	a.UniqueChains = len(a.Chains)

	// Greedy left-to-right non-overlapping cover with deterministic
	// chains; C_fused counts the distinct chains fused (Eq. 7 charges
	// one launch saving of L−1 per deterministic chain).
	det := make(map[string]bool, len(a.Chains))
	for _, c := range a.Chains {
		if c.Deterministic() {
			det[c.Key()] = true
		}
	}
	fusedSet := make(map[string]bool)
	for i := 0; i+l <= len(seq); {
		key := chainAt(i)
		if det[key] && !fusedSet[key] {
			fusedSet[key] = true
			i += l
			continue
		}
		i++
	}
	a.FusedChains = len(fusedSet)

	a.KernelsAfterFusion = len(seq) - a.FusedChains*(l-1)
	if a.KernelsAfterFusion < 1 {
		a.KernelsAfterFusion = 1
	}
	a.IdealSpeedup = float64(len(seq)) / float64(a.KernelsAfterFusion)
	return a, nil
}

// Candidates returns the chains with PS ≥ threshold, the recommendation
// rule of §III-C (PS(C) ≥ T).
func (a *Analysis) Candidates(threshold float64) []Chain {
	var out []Chain
	for _, c := range a.Chains {
		if c.Score >= threshold {
			out = append(out, c)
		}
	}
	return out
}

// Report is a chain-length sweep over one trace — the full Fig. 7/8
// dataset for one (model, batch) cell.
type Report struct {
	SequenceLen int
	Rows        []Analysis
}

// Sweep analyzes the sequence at every chain length in lengths.
func Sweep(seq []string, lengths []int) (*Report, error) {
	r := &Report{SequenceLen: len(seq)}
	for _, l := range lengths {
		a, err := Analyze(seq, l)
		if err != nil {
			return nil, err
		}
		r.Rows = append(r.Rows, *a)
	}
	return r, nil
}

// StandardLengths are the paper's Fig. 7 chain lengths.
func StandardLengths() []int {
	return []int{2, 4, 8, 16, 32, 64, 128, 256, 512}
}

// BestSpeedup returns the row with the highest ideal speedup.
func (r *Report) BestSpeedup() (Analysis, error) {
	if len(r.Rows) == 0 {
		return Analysis{}, fmt.Errorf("fusion: empty report")
	}
	best := r.Rows[0]
	for _, row := range r.Rows[1:] {
		if row.IdealSpeedup > best.IdealSpeedup {
			best = row
		}
	}
	return best, nil
}

// InstancePositions returns the start indices of a greedy left-to-right
// non-overlapping cover of the sequence by deterministic (PS=1) chains of
// length l — every fusable instance, not just distinct chains. This is
// the plan an applied fusion prototype executes (the paper implements
// recommendations only; instance-level application is our extension).
func InstancePositions(seq []string, l int) ([]int, error) {
	a, err := Analyze(seq, l)
	if err != nil {
		return nil, err
	}
	det := make(map[string]bool, len(a.Chains))
	for _, c := range a.Chains {
		if c.Deterministic() {
			det[c.Key()] = true
		}
	}
	var positions []int
	for i := 0; i+l <= len(seq); {
		if det[strings.Join(seq[i:i+l], "→")] {
			positions = append(positions, i)
			i += l
			continue
		}
		i++
	}
	return positions, nil
}
