// Package trace defines the profiler trace format the whole system speaks:
// timestamped complete events in the Chrome-trace style emitted by the
// PyTorch Profiler (cpu_op / cuda_runtime / kernel categories, correlation
// IDs linking launch calls to kernels, thread and stream identifiers).
//
// The simulator's executor writes traces; SKIP (internal/core) and the
// fusion recommender (internal/fusion) read them. Nothing downstream of
// this package knows whether a trace came from the simulator or from a
// real profiler export, which is exactly the property the paper's tool
// has.
package trace

import (
	"fmt"
	"sort"

	"github.com/skipsim/skip/internal/sim"
)

// Category classifies an event, mirroring PyTorch Profiler's "cat" field.
type Category string

const (
	// CatOperator marks host-side ATen operator spans (cat "cpu_op").
	CatOperator Category = "cpu_op"
	// CatRuntime marks CUDA runtime API calls, e.g. cudaLaunchKernel
	// (cat "cuda_runtime").
	CatRuntime Category = "cuda_runtime"
	// CatKernel marks device kernel executions (cat "kernel").
	CatKernel Category = "kernel"
	// CatMemcpy marks host↔device copies.
	CatMemcpy Category = "gpu_memcpy"

	// Request-span categories: serving-layer per-request timeline
	// segments assembled from the lifecycle event stream (one TID per
	// serving instance, link TIDs for KV transfers). They carry a Req
	// id instead of a correlation chain and are ignored by the
	// kernel-level analyses above.

	// CatQueue marks time a request spent in a wait queue before
	// admission (including the front-door routing instant).
	CatQueue Category = "queue"
	// CatPrefill marks prompt processing: admission to first token.
	CatPrefill Category = "prefill"
	// CatDecode marks token generation: first token (or a mid-stream
	// resume) to completion.
	CatDecode Category = "decode"
	// CatStall marks time a prefilled request sat finished on its
	// prefill instance waiting for its KV transfer to start moving.
	CatStall Category = "kv_stall"
	// CatTransfer marks a KV cache moving across an interconnect link;
	// these spans live on link TIDs, not instance TIDs.
	CatTransfer Category = "kv_transfer"
	// CatRequeue marks the gap between a preemption or crash eviction
	// and the request's next admission.
	CatRequeue Category = "requeue"
)

// RequestSpan reports whether the category is a serving-layer request
// timeline segment (as opposed to a kernel-level profiler event).
func (c Category) RequestSpan() bool {
	switch c {
	case CatQueue, CatPrefill, CatDecode, CatStall, CatTransfer, CatRequeue:
		return true
	}
	return false
}

// Event is one complete ("ph":"X") trace event.
type Event struct {
	// Name is the operator, runtime call, or kernel symbol.
	Name string `json:"name"`
	// Cat is the event category.
	Cat Category `json:"cat"`
	// Ts is the start timestamp.
	Ts sim.Time `json:"ts"`
	// Dur is the duration.
	Dur sim.Time `json:"dur"`
	// TID identifies the host thread (operators, runtime calls) or the
	// device stream (kernels, copies).
	TID int `json:"tid"`
	// Correlation links a CatRuntime launch to the CatKernel it
	// triggered, as CUPTI correlation IDs do. Zero means unlinked.
	Correlation uint64 `json:"correlation,omitempty"`
	// Stream is the device stream for kernel/memcpy events.
	Stream int `json:"stream,omitempty"`
	// FLOPs and Bytes carry the kernel's cost descriptor so analysis can
	// reason about compute intensity (optional; zero when unknown).
	FLOPs float64 `json:"flops,omitempty"`
	Bytes float64 `json:"bytes,omitempty"`
	// Req identifies the serving request a request-span category event
	// belongs to. Only meaningful when Cat.RequestSpan() — request 0 is
	// real, so presence is keyed on the category, not the value.
	Req int `json:"req,omitempty"`
}

// End returns the event's end timestamp.
func (e *Event) End() sim.Time { return e.Ts + e.Dur }

// Contains reports whether other begins within e's span. Per the paper
// (§IV-A): "An Aten operator p is designated as the parent of a
// subsequent child operator c and/or CUDA runtime call l, if their start
// times fall within p's duration."
func (e *Event) Contains(other *Event) bool {
	return other.Ts >= e.Ts && other.Ts < e.End()
}

// Trace is an ordered collection of events from one profiled run.
type Trace struct {
	// Events holds all events. Build and Sort keep them ordered by
	// (Ts, insertion).
	Events []Event
	// Meta records run provenance: platform, model, batch, mode, etc.
	Meta map[string]string
	// Threads names TIDs for the viewer (instance names, link names).
	// Serialized as Chrome "thread_name" metadata events; nil when the
	// producer assigns no names.
	Threads map[int]string
}

// New returns an empty trace.
func New() *Trace {
	return &Trace{Meta: make(map[string]string)}
}

// Append adds an event.
func (t *Trace) Append(e Event) { t.Events = append(t.Events, e) }

// Sort orders events by start time, stably, so same-timestamp events keep
// emission order.
func (t *Trace) Sort() {
	sort.SliceStable(t.Events, func(i, j int) bool { return t.Events[i].Ts < t.Events[j].Ts })
}

// Filter returns the events of one category, in trace order.
func (t *Trace) Filter(cat Category) []Event {
	var out []Event
	for _, e := range t.Events {
		if e.Cat == cat {
			out = append(out, e)
		}
	}
	return out
}

// Kernels returns kernel events sorted by start time.
func (t *Trace) Kernels() []Event {
	ks := t.Filter(CatKernel)
	sort.SliceStable(ks, func(i, j int) bool { return ks[i].Ts < ks[j].Ts })
	return ks
}

// Span returns the earliest start and latest end across all events.
// An empty trace spans [0,0).
func (t *Trace) Span() (start, end sim.Time) {
	if len(t.Events) == 0 {
		return 0, 0
	}
	start = t.Events[0].Ts
	for _, e := range t.Events {
		if e.Ts < start {
			start = e.Ts
		}
		if e.End() > end {
			end = e.End()
		}
	}
	return start, end
}

// Validate checks structural invariants: non-negative durations, kernels
// carrying correlation IDs, and every kernel correlation matched by
// exactly one runtime launch.
func (t *Trace) Validate() error {
	launches := make(map[uint64]int)
	for i, e := range t.Events {
		if e.Dur < 0 {
			return fmt.Errorf("trace: event %d (%s) has negative duration %d", i, e.Name, e.Dur)
		}
		if e.Cat == CatRuntime && e.Correlation != 0 {
			launches[e.Correlation]++
		}
	}
	for i, e := range t.Events {
		if e.Cat != CatKernel {
			continue
		}
		if e.Correlation == 0 {
			return fmt.Errorf("trace: kernel event %d (%s) lacks a correlation id", i, e.Name)
		}
		if n := launches[e.Correlation]; n != 1 {
			return fmt.Errorf("trace: kernel %s correlation %d matched by %d launches, want 1", e.Name, e.Correlation, n)
		}
	}
	return nil
}

// Builder emits well-formed traces, allocating correlation IDs.
type Builder struct {
	t        *Trace
	nextCorr uint64
}

// NewBuilder returns a builder over a fresh trace.
func NewBuilder() *Builder {
	return &Builder{t: New(), nextCorr: 1}
}

// Meta records a provenance key.
func (b *Builder) Meta(key, value string) { b.t.Meta[key] = value }

// Operator emits a host operator span on thread tid.
func (b *Builder) Operator(name string, tid int, ts, dur sim.Time) {
	b.t.Append(Event{Name: name, Cat: CatOperator, Ts: ts, Dur: dur, TID: tid})
}

// NextCorrelation reserves a fresh correlation ID.
func (b *Builder) NextCorrelation() uint64 {
	c := b.nextCorr
	b.nextCorr++
	return c
}

// Launch emits a cudaLaunchKernel runtime span carrying corr.
func (b *Builder) Launch(name string, tid int, ts, dur sim.Time, corr uint64) {
	b.t.Append(Event{Name: name, Cat: CatRuntime, Ts: ts, Dur: dur, TID: tid, Correlation: corr})
}

// Runtime emits a non-launch runtime span (synchronize, memcpy call).
func (b *Builder) Runtime(name string, tid int, ts, dur sim.Time) {
	b.t.Append(Event{Name: name, Cat: CatRuntime, Ts: ts, Dur: dur, TID: tid})
}

// Kernel emits a device kernel execution on a stream, linked to corr.
func (b *Builder) Kernel(name string, stream int, ts, dur sim.Time, corr uint64, flops, bytes float64) {
	b.t.Append(Event{
		Name: name, Cat: CatKernel, Ts: ts, Dur: dur,
		TID: streamTID(stream), Stream: stream, Correlation: corr,
		FLOPs: flops, Bytes: bytes,
	})
}

// Memcpy emits a copy event on a stream.
func (b *Builder) Memcpy(name string, stream int, ts, dur sim.Time, corr uint64, bytes float64) {
	b.t.Append(Event{
		Name: name, Cat: CatMemcpy, Ts: ts, Dur: dur,
		TID: streamTID(stream), Stream: stream, Correlation: corr, Bytes: bytes,
	})
}

// Trace finalizes and returns the built trace, sorted.
func (b *Builder) Trace() *Trace {
	b.t.Sort()
	return b.t
}

// streamTID maps a stream id into the TID space the Chrome viewer groups
// device lanes under, away from host thread ids.
func streamTID(stream int) int { return 1000 + stream }
