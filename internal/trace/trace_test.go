package trace

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"github.com/skipsim/skip/internal/sim"
)

// buildSample emits a tiny but structurally complete trace: a parent op
// containing a child op containing a launch, plus the launched kernel.
func buildSample() *Trace {
	b := NewBuilder()
	b.Meta("model", "unit-test")
	b.Operator("aten::linear", 1, 0, 100)
	b.Operator("aten::addmm", 1, 10, 80)
	corr := b.NextCorrelation()
	b.Launch("cudaLaunchKernel", 1, 20, 25, corr)
	b.Kernel("gemm_fp16", 7, 60, 500, corr, 1e9, 2e6)
	b.Runtime("cudaDeviceSynchronize", 1, 100, 460)
	return b.Trace()
}

func TestBuilderProducesValidTrace(t *testing.T) {
	tr := buildSample()
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(tr.Events) != 5 {
		t.Fatalf("got %d events", len(tr.Events))
	}
	if tr.Meta["model"] != "unit-test" {
		t.Error("meta lost")
	}
}

func TestEventContains(t *testing.T) {
	parent := &Event{Ts: 10, Dur: 100}
	inside := &Event{Ts: 50, Dur: 500} // start inside is all that matters
	before := &Event{Ts: 5, Dur: 2}
	atEnd := &Event{Ts: 110, Dur: 1}
	if !parent.Contains(inside) {
		t.Error("start-inside event should be contained")
	}
	if parent.Contains(before) {
		t.Error("earlier event should not be contained")
	}
	if parent.Contains(atEnd) {
		t.Error("event at exclusive end should not be contained")
	}
	if inside.End() != 550 {
		t.Errorf("End = %d", inside.End())
	}
}

func TestFilterAndKernels(t *testing.T) {
	tr := buildSample()
	if got := len(tr.Filter(CatOperator)); got != 2 {
		t.Errorf("operators = %d, want 2", got)
	}
	ks := tr.Kernels()
	if len(ks) != 1 || ks[0].Name != "gemm_fp16" {
		t.Errorf("Kernels = %+v", ks)
	}
	if ks[0].Stream != 7 || ks[0].TID != 1007 {
		t.Errorf("kernel stream/tid = %d/%d", ks[0].Stream, ks[0].TID)
	}
}

func TestSpan(t *testing.T) {
	tr := buildSample()
	start, end := tr.Span()
	if start != 0 || end != 560 {
		t.Errorf("Span = [%d,%d), want [0,560)", start, end)
	}
	empty := New()
	if s, e := empty.Span(); s != 0 || e != 0 {
		t.Errorf("empty Span = [%d,%d)", s, e)
	}
}

func TestValidateCatchesBrokenTraces(t *testing.T) {
	tr := New()
	tr.Append(Event{Name: "k", Cat: CatKernel, Ts: 0, Dur: 5, Correlation: 0})
	if tr.Validate() == nil {
		t.Error("kernel without correlation must fail")
	}

	tr = New()
	tr.Append(Event{Name: "k", Cat: CatKernel, Ts: 0, Dur: 5, Correlation: 9})
	if tr.Validate() == nil {
		t.Error("kernel with unmatched correlation must fail")
	}

	tr = New()
	tr.Append(Event{Name: "op", Cat: CatOperator, Ts: 0, Dur: -1})
	if tr.Validate() == nil {
		t.Error("negative duration must fail")
	}

	tr = New()
	tr.Append(Event{Name: "l", Cat: CatRuntime, Ts: 0, Dur: 1, Correlation: 3})
	tr.Append(Event{Name: "l", Cat: CatRuntime, Ts: 2, Dur: 1, Correlation: 3})
	tr.Append(Event{Name: "k", Cat: CatKernel, Ts: 5, Dur: 5, Correlation: 3})
	if tr.Validate() == nil {
		t.Error("duplicated correlation must fail")
	}
}

func TestSortIsStable(t *testing.T) {
	tr := New()
	tr.Append(Event{Name: "b", Ts: 10})
	tr.Append(Event{Name: "a", Ts: 5})
	tr.Append(Event{Name: "c", Ts: 10})
	tr.Sort()
	names := []string{tr.Events[0].Name, tr.Events[1].Name, tr.Events[2].Name}
	if names[0] != "a" || names[1] != "b" || names[2] != "c" {
		t.Errorf("sorted order = %v", names)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := buildSample()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("round-tripped trace invalid: %v", err)
	}
	if len(got.Events) != len(tr.Events) {
		t.Fatalf("event count %d != %d", len(got.Events), len(tr.Events))
	}
	for i := range tr.Events {
		w, g := tr.Events[i], got.Events[i]
		if w.Name != g.Name || w.Cat != g.Cat || w.Ts != g.Ts || w.Dur != g.Dur ||
			w.TID != g.TID || w.Correlation != g.Correlation || w.Stream != g.Stream {
			t.Errorf("event %d mismatch:\n want %+v\n got  %+v", i, w, g)
		}
	}
	if got.Meta["model"] != "unit-test" {
		t.Error("meta did not round-trip")
	}
}

func TestJSONIsChromeShaped(t *testing.T) {
	tr := buildSample()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{`"traceEvents"`, `"ph":"X"`, `"cat":"kernel"`, `"cat":"cpu_op"`, `"correlation"`} {
		if !strings.Contains(s, want) {
			t.Errorf("JSON missing %s", want)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	tr := buildSample()
	if err := tr.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if len(got.Events) != len(tr.Events) {
		t.Errorf("loaded %d events, want %d", len(got.Events), len(tr.Events))
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("LoadFile of missing file should fail")
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Error("garbage should fail")
	}
}

func TestReadJSONSkipsNonCompleteEvents(t *testing.T) {
	doc := `{"traceEvents":[
	  {"name":"meta","cat":"__metadata","ph":"M","ts":0,"dur":0,"pid":1,"tid":0},
	  {"name":"op","cat":"cpu_op","ph":"X","ts":1.0,"dur":2.0,"pid":1,"tid":1}
	]}`
	tr, err := ReadJSON(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 1 || tr.Events[0].Name != "op" {
		t.Errorf("events = %+v", tr.Events)
	}
	// Microsecond float timestamps convert to ns.
	if tr.Events[0].Ts != 1000 || tr.Events[0].Dur != 2000 {
		t.Errorf("ts/dur = %d/%d, want 1000/2000", tr.Events[0].Ts, tr.Events[0].Dur)
	}
}

// Property: round-trip through JSON preserves every field we emit, for
// randomized traces.
func TestJSONRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder()
		total := int(n%20) + 1
		for i := 0; i < total; i++ {
			ts := sim.Time(rng.Int63n(1e6))
			dur := sim.Time(rng.Int63n(1e4))
			switch rng.Intn(3) {
			case 0:
				b.Operator("op", 1, ts, dur)
			case 1:
				corr := b.NextCorrelation()
				b.Launch("cudaLaunchKernel", 1, ts, dur, corr)
				b.Kernel("k", rng.Intn(4), ts+dur, dur+1, corr, float64(rng.Intn(1000)), float64(rng.Intn(1000)))
			default:
				b.Runtime("cudaDeviceSynchronize", 1, ts, dur)
			}
		}
		tr := b.Trace()
		var buf bytes.Buffer
		if err := tr.WriteJSON(&buf); err != nil {
			return false
		}
		got, err := ReadJSON(&buf)
		if err != nil || len(got.Events) != len(tr.Events) {
			return false
		}
		for i := range tr.Events {
			if tr.Events[i].Ts != got.Events[i].Ts || tr.Events[i].Dur != got.Events[i].Dur ||
				tr.Events[i].Correlation != got.Events[i].Correlation {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
