package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"github.com/skipsim/skip/internal/sim"
)

// chromeTrace is the on-disk representation: the Chrome trace-event JSON
// envelope ("traceEvents" + metadata), timestamps in microseconds as the
// format specifies. PyTorch Profiler exports the same envelope, so traces
// written here load in chrome://tracing and Perfetto.
type chromeTrace struct {
	TraceEvents []chromeEvent     `json:"traceEvents"`
	Meta        map[string]string `json:"skipMeta,omitempty"`
	DisplayUnit string            `json:"displayTimeUnit,omitempty"`
}

type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`  // microseconds
	Dur  float64        `json:"dur"` // microseconds
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteJSON serializes the trace in Chrome trace-event format. Named
// threads (Trace.Threads) lead the stream as "thread_name" metadata
// events in TID order, which is how Perfetto labels its tracks.
func (t *Trace) WriteJSON(w io.Writer) error {
	ct := chromeTrace{Meta: t.Meta, DisplayUnit: "ns"}
	ct.TraceEvents = make([]chromeEvent, 0, len(t.Events)+len(t.Threads))
	tids := make([]int, 0, len(t.Threads))
	for tid := range t.Threads {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	for _, tid := range tids {
		ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: tid,
			Args: map[string]any{"name": t.Threads[tid]},
		})
	}
	for _, e := range t.Events {
		ce := chromeEvent{
			Name: e.Name,
			Cat:  string(e.Cat),
			Ph:   "X",
			Ts:   e.Ts.Microseconds(),
			Dur:  e.Dur.Microseconds(),
			PID:  1,
			TID:  e.TID,
		}
		args := make(map[string]any)
		if e.Correlation != 0 {
			args["correlation"] = e.Correlation
		}
		if e.Cat == CatKernel || e.Cat == CatMemcpy {
			args["stream"] = e.Stream
		}
		if e.Cat.RequestSpan() {
			args["req"] = e.Req
		}
		if e.FLOPs > 0 {
			args["flops"] = e.FLOPs
		}
		if e.Bytes > 0 {
			args["bytes"] = e.Bytes
		}
		if len(args) > 0 {
			ce.Args = args
		}
		ct.TraceEvents = append(ct.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(ct)
}

// ReadJSON parses a Chrome trace-event JSON document produced by
// WriteJSON (or a compatible exporter).
func ReadJSON(r io.Reader) (*Trace, error) {
	var ct chromeTrace
	dec := json.NewDecoder(r)
	if err := dec.Decode(&ct); err != nil {
		return nil, fmt.Errorf("trace: decoding JSON: %w", err)
	}
	t := New()
	if ct.Meta != nil {
		t.Meta = ct.Meta
	}
	for i, ce := range ct.TraceEvents {
		if ce.Ph == "M" && ce.Name == "thread_name" {
			if name, ok := ce.Args["name"].(string); ok {
				if t.Threads == nil {
					t.Threads = make(map[int]string)
				}
				t.Threads[ce.TID] = name
			}
			continue
		}
		if ce.Ph != "X" && ce.Ph != "" {
			continue // only complete events carry timing we use
		}
		e := Event{
			Name: ce.Name,
			Cat:  Category(ce.Cat),
			Ts:   sim.Time(ce.Ts*1e3 + 0.5),
			Dur:  sim.Time(ce.Dur*1e3 + 0.5),
			TID:  ce.TID,
		}
		if ce.Args != nil {
			if v, ok := numArg(ce.Args, "correlation"); ok {
				e.Correlation = uint64(v)
			}
			if v, ok := numArg(ce.Args, "stream"); ok {
				e.Stream = int(v)
			}
			if v, ok := numArg(ce.Args, "flops"); ok {
				e.FLOPs = v
			}
			if v, ok := numArg(ce.Args, "bytes"); ok {
				e.Bytes = v
			}
			if v, ok := numArg(ce.Args, "req"); ok {
				e.Req = int(v)
			}
		}
		if e.Dur < 0 {
			return nil, fmt.Errorf("trace: event %d (%s) has negative duration", i, ce.Name)
		}
		t.Append(e)
	}
	t.Sort()
	return t, nil
}

func numArg(args map[string]any, key string) (float64, bool) {
	v, ok := args[key]
	if !ok {
		return 0, false
	}
	switch n := v.(type) {
	case float64:
		return n, true
	case json.Number:
		f, err := n.Float64()
		return f, err == nil
	default:
		return 0, false
	}
}

// SaveFile writes the trace to path as Chrome trace JSON.
func (t *Trace) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	if err := t.WriteJSON(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a Chrome trace JSON file.
func LoadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	return ReadJSON(f)
}
