package disagg

import (
	"fmt"

	"github.com/skipsim/skip/internal/hw"
	"github.com/skipsim/skip/internal/sim"
)

// The KV-transfer cost model. A completed prefill's cache must reach
// its decode instance, and what that costs is exactly the asymmetry the
// paper characterizes: on a coupled platform (GH200's NVLink-C2C at
// 450 GB/s, unified virtual memory) the cache is a pointer handoff away
// from the host, while a discrete PCIe node must stage it GPU → host
// DRAM → wire — a store-and-forward hop per loosely-coupled endpoint.
//
// The model prices a transfer of b bytes from platform S to platform D
// as
//
//	time = (S.IC.LatencyNs + D.IC.LatencyNs) + hop(S)·hop(D)·b/bw
//
// where bw is the slower endpoint's interconnect bandwidth (or an
// explicit override — the knob the ext10 bench sweeps) and hop(P) is
// HostHopMultiplier for a loosely-coupled P, 1 otherwise. Coupled→
// coupled handoffs therefore move at full link rate, while a discrete→
// discrete transfer pays the multiplier twice — once to exfiltrate the
// cache through the source host, once to inject it through the
// destination's.

// DefaultHostHopMultiplier is the store-and-forward penalty per
// loosely-coupled endpoint: the cache crosses the endpoint's PCIe link
// into host DRAM and out again, doubling that endpoint's share of the
// wire time.
const DefaultHostHopMultiplier = 2.0

// TransferModel prices KV-cache movement between instances.
type TransferModel struct {
	// HostHopMultiplier scales the wire time once per loosely-coupled
	// endpoint (0 takes DefaultHostHopMultiplier; 1 disables the
	// penalty).
	HostHopMultiplier float64
	// BandwidthGBps, when positive, overrides both endpoints'
	// interconnect bandwidth — the what-if knob for sweeping the
	// crossover between disaggregated and monolithic serving.
	BandwidthGBps float64
	// OverlapFraction models chunked/layerwise KV shipping: the decode
	// instance starts consuming the cache before the tail arrives, so
	// this fraction of the wire time hides behind decode start. The
	// link stays occupied for the full wire time (the bytes still
	// move); only the request's resume instant advances. 0 — the
	// default — is strict store-and-forward; must stay below 1 (some
	// wire time is always exposed).
	OverlapFraction float64
}

func (tm TransferModel) validate() error {
	if tm.HostHopMultiplier < 0 {
		return fmt.Errorf("disagg: host-hop multiplier must be non-negative, got %g", tm.HostHopMultiplier)
	}
	if tm.BandwidthGBps < 0 {
		return fmt.Errorf("disagg: transfer bandwidth must be non-negative, got %g", tm.BandwidthGBps)
	}
	if tm.OverlapFraction < 0 || tm.OverlapFraction >= 1 {
		return fmt.Errorf("disagg: overlap fraction must be in [0,1), got %g", tm.OverlapFraction)
	}
	return nil
}

// Exposed returns the part of a wire time the request actually waits
// for — the tail not hidden behind decode start. With zero overlap the
// float round-trip multiplies by exactly 1.0, preserving the wire time
// bit for bit.
func (tm TransferModel) Exposed(wire sim.Time) sim.Time {
	if tm.OverlapFraction == 0 {
		return wire
	}
	return sim.Time(float64(wire) * (1 - tm.OverlapFraction))
}

// hop returns the host-hop factor for one endpoint.
func (tm TransferModel) hop(p *hw.Platform) float64 {
	if p.Coupling != hw.LooselyCoupled {
		return 1
	}
	if tm.HostHopMultiplier > 0 {
		return tm.HostHopMultiplier
	}
	return DefaultHostHopMultiplier
}

// Time prices moving bytes of KV cache from src to dst.
func (tm TransferModel) Time(src, dst *hw.Platform, bytes float64) sim.Time {
	if bytes <= 0 {
		return 0
	}
	bw := src.IC.BandwidthGBps
	if dst.IC.BandwidthGBps < bw {
		bw = dst.IC.BandwidthGBps
	}
	if tm.BandwidthGBps > 0 {
		bw = tm.BandwidthGBps
	}
	lat := src.IC.LatencyNs + dst.IC.LatencyNs
	// GB/s == bytes/ns.
	return sim.FromNs(lat + tm.hop(src)*tm.hop(dst)*bytes/bw)
}
