// Package disagg simulates prefill/decode disaggregated serving: fleet
// groups take a role — prefill, decode, or both — and requests routed
// to a prefill-pool instance run prompt processing only, then hand
// their KV cache to a decode-pool instance over an explicit transfer
// model priced from the platforms' interconnects (see TransferModel).
//
// This operationalizes the paper's central asymmetry at fleet scale:
// prefill is compute-bound, decode is memory-bandwidth-bound, and the
// two phases want different hardware — but splitting them (DistServe/
// Splitwise-style) only pays if moving the KV state is cheap enough.
// Coupled architectures change exactly that economics: a GH200's
// NVLink-C2C hands a cache off at 450 GB/s through unified memory,
// while a discrete PCIe node store-and-forwards it through host DRAM.
// The package exists to find the crossover.
//
// The simulator composes serve.Instance (split lifecycle:
// AcceptPrefill / Resume) and cluster's routing and admission
// primitives under one shared calendar; each (source, destination)
// instance pair is a FIFO transfer link, and the request ledger
// reconciles exactly — every prefill completion is matched by exactly
// one decode completion or a reported drop.
package disagg

import (
	"fmt"
	"sort"

	"github.com/skipsim/skip/internal/cluster"
	"github.com/skipsim/skip/internal/hw"
	"github.com/skipsim/skip/internal/serve"
	"github.com/skipsim/skip/internal/sim"
)

// Role assigns a fleet group to a disaggregation pool.
type Role int

const (
	// RoleBoth serves requests end to end — a monolithic instance that
	// participates in prefill placement and can also absorb handoffs.
	RoleBoth Role = iota
	// RolePrefill runs prompt processing only: every admitted request
	// stops at its first token and hands its KV cache away.
	RolePrefill
	// RoleDecode resumes handed-off requests mid-stream; the front door
	// never routes fresh arrivals here.
	RoleDecode
)

func (r Role) String() string {
	switch r {
	case RolePrefill:
		return "prefill"
	case RoleDecode:
		return "decode"
	case RoleBoth:
		return "both"
	default:
		return fmt.Sprintf("role(%d)", int(r))
	}
}

// ParseRole maps a fleet-spec role name to a Role; the empty string is
// RoleBoth (an untagged group serves monolithically).
func ParseRole(name string) (Role, error) {
	switch name {
	case "prefill":
		return RolePrefill, nil
	case "decode":
		return RoleDecode, nil
	case "both", "":
		return RoleBoth, nil
	}
	return 0, fmt.Errorf("disagg: unknown role %q (have prefill|decode|both)", name)
}

// Group is one homogeneous slice of a disaggregated fleet.
type Group struct {
	Platform *hw.Platform
	Count    int
	Role     Role
}

// Config parameterizes a disaggregated fleet simulation.
type Config struct {
	// Groups lists the fleet's slices with their roles. At least one
	// prefill-capable (prefill|both) and one decode-capable
	// (decode|both) group are required.
	Groups []Group
	// Base is the serving config every instance inherits (model, policy,
	// KV knobs, SLO) with its group's platform substituted; it must use
	// a continuous policy.
	Base serve.Config
	// PrefillPolicy places fresh arrivals on the prefill pool. Like
	// cluster.Config's Policy, the zero value is RoundRobin; the spec
	// front door (fleet.disaggregation) defaults to least-queue instead.
	PrefillPolicy cluster.Policy
	// DecodePolicy places completed prefills on the decode pool. Zero
	// value RoundRobin; the spec front door defaults to least-kv —
	// decode placement is a KV-capacity decision.
	DecodePolicy cluster.Policy
	// ShortPrompt is the platform-aware policies' regime boundary in
	// prompt tokens (default 512).
	ShortPrompt int64
	// Transfer prices the KV handoff between pools.
	Transfer TransferModel
	// TTFTSLO is the fleet time-to-first-token objective for goodput
	// accounting (also copied into instance configs that set none).
	TTFTSLO sim.Time
	// AdmitRatePerSec / AdmitBurst enable token-bucket admission control
	// at the front door (0 disables).
	AdmitRatePerSec float64
	AdmitBurst      float64
	// Observer receives front-door events (routed, rejected,
	// unroutable), KV-transfer events (kv-transfer-start/done with the
	// source→destination link), and every instance's lifecycle events
	// with the instance name stamped in.
	Observer serve.Observer
}

func (c *Config) validate() error {
	if err := c.Transfer.validate(); err != nil {
		return err
	}
	if len(c.Groups) == 0 {
		return fmt.Errorf("disagg: config needs at least one group")
	}
	// KV handoffs originate only on RolePrefill instances; an all-"both"
	// fleet never transfers and needs no priceable link.
	var transfersPossible bool
	for _, g := range c.Groups {
		if g.Role == RolePrefill {
			transfersPossible = true
		}
	}
	var prefillable, decodable int
	for i, g := range c.Groups {
		if g.Platform == nil {
			return fmt.Errorf("disagg: group %d needs a platform", i)
		}
		if g.Count <= 0 {
			return fmt.Errorf("disagg: group %d (%s) needs a positive count, got %d", i, g.Platform.Name, g.Count)
		}
		// hw.Validate deliberately permits zero interconnect bandwidth on
		// unified-physical-memory platforms (their CPU↔GPU transfers are
		// free), but a KV handoff between *instances* still crosses a
		// wire: with no override, TransferModel.Time would divide by
		// zero and price every transfer at +Inf. Reject the fleet here,
		// naming the platform, instead of simulating nonsense.
		if transfersPossible && c.Transfer.BandwidthGBps == 0 && g.Platform.IC.BandwidthGBps <= 0 {
			return fmt.Errorf("disagg: platform %q has no interconnect bandwidth to price KV transfers (unified-memory platforms may declare zero); set Transfer.BandwidthGBps or give the platform a positive IC bandwidth", g.Platform.Name)
		}
		if g.Role != RolePrefill {
			decodable += g.Count
		}
		if g.Role != RoleDecode {
			prefillable += g.Count
		}
	}
	if prefillable == 0 {
		return fmt.Errorf("disagg: fleet has no prefill-capable (prefill or both) instances")
	}
	if decodable == 0 {
		return fmt.Errorf("disagg: fleet has no decode-capable (decode or both) instances")
	}
	if c.Base.Model == nil {
		return fmt.Errorf("disagg: base config needs a model")
	}
	if c.AdmitRatePerSec < 0 {
		return fmt.Errorf("disagg: admission rate must be non-negative, got %g", c.AdmitRatePerSec)
	}
	return nil
}

// member is one instance with its disaggregation role.
type member struct {
	in   *serve.Instance
	role Role
}

// Simulate runs the disaggregated fleet over the request stream and
// returns fleet statistics with an exactly reconciled ledger. The whole
// simulation is deterministic for a fixed stream and config.
func Simulate(cfg Config, requests []serve.Request) (*Stats, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(requests) == 0 {
		return nil, fmt.Errorf("disagg: no requests")
	}
	reqs := make([]serve.Request, len(requests))
	copy(reqs, requests)
	sort.Slice(reqs, func(i, j int) bool { return reqs[i].Arrival < reqs[j].Arrival })

	cal := sim.NewCalendar()
	var members []member
	idx := 0
	for _, g := range cfg.Groups {
		for k := 0; k < g.Count; k++ {
			icfg := cfg.Base
			icfg.Platform = g.Platform
			if icfg.TTFTSLO == 0 {
				icfg.TTFTSLO = cfg.TTFTSLO
			}
			name := fmt.Sprintf("%s/%s#%d", g.Platform.Name, g.Role, idx)
			if cfg.Observer != nil {
				icfg.Observer = cluster.StampInstance(name, cfg.Observer, icfg.Observer)
			}
			in, err := serve.NewInstance(name, icfg, cal)
			if err != nil {
				return nil, err
			}
			members = append(members, member{in: in, role: g.Role})
			idx++
		}
	}

	// The pools: prefill-capable instances face the front door,
	// decode-capable ones absorb handoffs. RoleBoth members sit in both.
	var prefillPool, decodePool []*serve.Instance
	var prefillIdx, decodeIdx []int // pool position → member index
	for i, m := range members {
		if m.role != RoleDecode {
			prefillPool = append(prefillPool, m.in)
			prefillIdx = append(prefillIdx, i)
		}
		if m.role != RolePrefill {
			decodePool = append(decodePool, m.in)
			decodeIdx = append(decodeIdx, i)
		}
	}

	prefillRouter := cluster.NewRouter(cfg.PrefillPolicy, cfg.ShortPrompt)
	decodeRouter := cluster.NewRouter(cfg.DecodePolicy, cfg.ShortPrompt)
	var admit *cluster.TokenBucket
	if cfg.AdmitRatePerSec > 0 {
		admit = cluster.NewTokenBucket(cfg.AdmitRatePerSec, cfg.AdmitBurst)
	}

	emit := func(now sim.Time, t serve.EventType, req serve.Request, instance, link string) {
		if cfg.Observer == nil {
			return
		}
		cfg.Observer(serve.Event{
			Time: now, Type: t,
			RequestID: req.ID, SessionID: req.SessionID,
			Instance: instance, Link: link,
		})
	}

	bytesPerTok := serve.KVBytesPerToken(cfg.Base.Model)
	links := make(map[[2]int]sim.Time) // (src,dst) member pair → busy-until
	var rejected, unroutable, transferDrops, transfers int
	var bytesMoved float64
	var wireTotal, stallTotal, wireMax sim.Time
	var simErr error

	// handoff places one completed prefill on the decode pool and ships
	// its KV cache over the (src, dst) link: the transfer starts when
	// the link frees (FIFO per link) and the request resumes the instant
	// the cache lands.
	handoff := func(now sim.Time, src int, h serve.Handoff) {
		if simErr != nil {
			return
		}
		hr := h.Req
		hr.PromptLen, hr.OutputLen = h.PromptLen, h.OutputLen
		d := decodeRouter.Pick(hr, decodePool)
		if d < 0 {
			// No decode instance can ever hold this request: the prefill
			// work is lost and the drop is reported in the ledger.
			transferDrops++
			emit(now, serve.EventUnroutable, h.Req, members[src].in.Name(), "")
			return
		}
		dst := decodeIdx[d]
		dstIn := members[dst].in
		bytes := float64(h.KVLen) * bytesPerTok
		wire := cfg.Transfer.Time(members[src].in.Platform(), dstIn.Platform(), bytes)
		key := [2]int{src, dst}
		start := now
		if links[key] > start {
			start = links[key]
		}
		done := start + wire
		links[key] = done
		transfers++
		bytesMoved += bytes
		wireTotal += wire
		stallTotal += done - now
		if wire > wireMax {
			wireMax = wire
		}
		link := members[src].in.Name() + "→" + dstIn.Name()
		srcName := members[src].in.Name()
		cal.Schedule(start, func(at sim.Time) {
			emit(at, serve.EventKVTransferStart, h.Req, srcName, link)
		})
		cal.Schedule(done, func(at sim.Time) {
			emit(at, serve.EventKVTransferDone, h.Req, dstIn.Name(), link)
			if err := dstIn.Resume(at, h); err != nil {
				// Pick only offers instances that fit, so Resume cannot
				// refuse; treat a refusal as the bug it would be.
				simErr = fmt.Errorf("disagg: %s refused resumed request %d: %w", dstIn.Name(), h.Req.ID, err)
			}
		})
	}

	for i := range reqs {
		req := reqs[i]
		cal.Schedule(req.Arrival, func(now sim.Time) {
			if simErr != nil {
				return
			}
			if admit != nil && !admit.Allow(now) {
				rejected++
				emit(now, serve.EventRejected, req, "", "")
				return
			}
			p := prefillRouter.Pick(req, prefillPool)
			if p < 0 {
				unroutable++
				emit(now, serve.EventUnroutable, req, "", "")
				return
			}
			src := prefillIdx[p]
			m := members[src]
			emit(now, serve.EventRouted, req, m.in.Name(), "")
			var err error
			if m.role == RoleBoth {
				err = m.in.Accept(now, req)
			} else {
				err = m.in.AcceptPrefill(now, req, func(at sim.Time, h serve.Handoff) {
					handoff(at, src, h)
				})
			}
			if err != nil {
				simErr = fmt.Errorf("disagg: %s refused routed request %d: %w", m.in.Name(), req.ID, err)
			}
		})
	}
	cal.Run()
	if simErr != nil {
		return nil, simErr
	}
	for _, m := range members {
		if err := m.in.Err(); err != nil {
			return nil, fmt.Errorf("disagg: instance %s: %w", m.in.Name(), err)
		}
	}

	st := assembleStats(cfg, members, len(reqs), rejected, unroutable, transferDrops)
	st.Transfers = transfers
	st.KVBytesMoved = bytesMoved
	if transfers > 0 {
		st.MeanTransfer = wireTotal / sim.Time(transfers)
		st.MeanTransferStall = stallTotal / sim.Time(transfers)
		st.MaxTransfer = wireMax
	}
	if err := st.reconcile(); err != nil {
		return nil, err
	}
	return st, nil
}
