// Package disagg simulates prefill/decode disaggregated serving: fleet
// groups take a role — prefill, decode, or both — and requests routed
// to a prefill-pool instance run prompt processing only, then hand
// their KV cache to a decode-pool instance over an explicit transfer
// model priced from the platforms' interconnects (see TransferModel).
//
// This operationalizes the paper's central asymmetry at fleet scale:
// prefill is compute-bound, decode is memory-bandwidth-bound, and the
// two phases want different hardware — but splitting them (DistServe/
// Splitwise-style) only pays if moving the KV state is cheap enough.
// Coupled architectures change exactly that economics: a GH200's
// NVLink-C2C hands a cache off at 450 GB/s through unified memory,
// while a discrete PCIe node store-and-forwards it through host DRAM.
// The package exists to find the crossover.
//
// The simulator composes serve.Instance (split lifecycle:
// AcceptPrefill / Resume) and cluster's routing and admission
// primitives under one shared calendar; each (source, destination)
// instance pair is a FIFO transfer link, and the request ledger
// reconciles exactly — every prefill completion is matched by exactly
// one decode completion or a reported drop.
package disagg

import (
	"fmt"
	"sort"

	"github.com/skipsim/skip/internal/cluster"
	"github.com/skipsim/skip/internal/hw"
	"github.com/skipsim/skip/internal/serve"
	"github.com/skipsim/skip/internal/sim"
)

// Role assigns a fleet group to a disaggregation pool.
type Role int

const (
	// RoleBoth serves requests end to end — a monolithic instance that
	// participates in prefill placement and can also absorb handoffs.
	RoleBoth Role = iota
	// RolePrefill runs prompt processing only: every admitted request
	// stops at its first token and hands its KV cache away.
	RolePrefill
	// RoleDecode resumes handed-off requests mid-stream; the front door
	// never routes fresh arrivals here.
	RoleDecode
)

func (r Role) String() string {
	switch r {
	case RolePrefill:
		return "prefill"
	case RoleDecode:
		return "decode"
	case RoleBoth:
		return "both"
	default:
		return fmt.Sprintf("role(%d)", int(r))
	}
}

// ParseRole maps a fleet-spec role name to a Role; the empty string is
// RoleBoth (an untagged group serves monolithically).
func ParseRole(name string) (Role, error) {
	switch name {
	case "prefill":
		return RolePrefill, nil
	case "decode":
		return RoleDecode, nil
	case "both", "":
		return RoleBoth, nil
	}
	return 0, fmt.Errorf("disagg: unknown role %q (have prefill|decode|both)", name)
}

// Group is one homogeneous slice of a disaggregated fleet.
type Group struct {
	Platform *hw.Platform
	Count    int
	Role     Role
}

// Config parameterizes a disaggregated fleet simulation.
type Config struct {
	// Groups lists the fleet's slices with their roles. At least one
	// prefill-capable (prefill|both) and one decode-capable
	// (decode|both) group are required.
	Groups []Group
	// Base is the serving config every instance inherits (model, policy,
	// KV knobs, SLO) with its group's platform substituted; it must use
	// a continuous policy.
	Base serve.Config
	// PrefillPolicy places fresh arrivals on the prefill pool. Like
	// cluster.Config's Policy, the zero value is RoundRobin; the spec
	// front door (fleet.disaggregation) defaults to least-queue instead.
	PrefillPolicy cluster.Policy
	// DecodePolicy places completed prefills on the decode pool. Zero
	// value RoundRobin; the spec front door defaults to least-kv —
	// decode placement is a KV-capacity decision.
	DecodePolicy cluster.Policy
	// LinkAwareDecode, when set, overrides DecodePolicy's pick with a
	// transfer-aware one: each handoff goes to the fitting decode
	// instance with the earliest projected landing — the (src,dst)
	// link's FIFO backlog plus the exposed wire time for the bytes
	// actually shipped (prefix-cached blocks excluded) — ties to the
	// lowest KV pressure, then the lowest index. Off keeps
	// DecodePolicy's placement bit for bit.
	LinkAwareDecode bool
	// ShortPrompt is the platform-aware policies' regime boundary in
	// prompt tokens (default 512).
	ShortPrompt int64
	// Transfer prices the KV handoff between pools.
	Transfer TransferModel
	// TTFTSLO is the fleet time-to-first-token objective for goodput
	// accounting (also copied into instance configs that set none).
	TTFTSLO sim.Time
	// AdmitRatePerSec / AdmitBurst enable token-bucket admission control
	// at the front door (0 disables).
	AdmitRatePerSec float64
	AdmitBurst      float64
	// Observer receives front-door events (routed, rejected,
	// unroutable), KV-transfer events (kv-transfer-start/done with the
	// source→destination link), and every instance's lifecycle events
	// with the instance name stamped in.
	Observer serve.Observer
	// Autoscale, when set, grows and shrinks the AutoscaleRole pool
	// against a load signal while the simulation runs; disaggregated
	// fleets additionally support the transfer-queue signal (pending KV
	// transfers per active decode-capable instance). Nil keeps the
	// fleet static — the pre-refactor behavior, bit for bit.
	Autoscale *cluster.AutoscaleConfig
	// AutoscaleRole names the pool the controller scales. The zero value
	// is RoleBoth (spun-up instances serve end to end); the spec front
	// door defaults to "decode" instead — decode capacity is what
	// transfer pressure starves.
	AutoscaleRole Role
	// Faults, when set, injects crashes, slow-node multipliers, and
	// degraded-link faults (see cluster.FaultsConfig; Target and Dst
	// index the flattened member list in group order).
	Faults *cluster.FaultsConfig
	// CounterfactualK, when positive, records every prefill- and
	// decode-pool routing decision with up to K scored alternatives and
	// counterfactual policy replays (Stats.PrefillRouting /
	// Stats.DecodeRouting). Decode records carry the chosen link's FIFO
	// backlog at pick time. Zero keeps recording off and both sections
	// absent.
	CounterfactualK int
}

func (c *Config) validate() error {
	if err := c.Transfer.validate(); err != nil {
		return err
	}
	if len(c.Groups) == 0 {
		return fmt.Errorf("disagg: config needs at least one group")
	}
	// KV handoffs originate only on RolePrefill instances; an all-"both"
	// fleet never transfers and needs no priceable link. Autoscaled
	// prefill instances count: the controller can mint handoff sources
	// mid-run.
	var transfersPossible bool
	for _, g := range c.Groups {
		if g.Role == RolePrefill {
			transfersPossible = true
		}
	}
	if c.Autoscale != nil && c.AutoscaleRole == RolePrefill {
		transfersPossible = true
	}
	var prefillable, decodable int
	for i, g := range c.Groups {
		if g.Platform == nil {
			return fmt.Errorf("disagg: group %d needs a platform", i)
		}
		if g.Count <= 0 {
			return fmt.Errorf("disagg: group %d (%s) needs a positive count, got %d", i, g.Platform.Name, g.Count)
		}
		// hw.Validate deliberately permits zero interconnect bandwidth on
		// unified-physical-memory platforms (their CPU↔GPU transfers are
		// free), but a KV handoff between *instances* still crosses a
		// wire: with no override, TransferModel.Time would divide by
		// zero and price every transfer at +Inf. Reject the fleet here,
		// naming the platform, instead of simulating nonsense.
		if transfersPossible && c.Transfer.BandwidthGBps == 0 && g.Platform.IC.BandwidthGBps <= 0 {
			return fmt.Errorf("disagg: platform %q has no interconnect bandwidth to price KV transfers (unified-memory platforms may declare zero); set Transfer.BandwidthGBps or give the platform a positive IC bandwidth", g.Platform.Name)
		}
		if g.Role != RolePrefill {
			decodable += g.Count
		}
		if g.Role != RoleDecode {
			prefillable += g.Count
		}
	}
	if prefillable == 0 {
		return fmt.Errorf("disagg: fleet has no prefill-capable (prefill or both) instances")
	}
	if decodable == 0 {
		return fmt.Errorf("disagg: fleet has no decode-capable (decode or both) instances")
	}
	if c.Base.Model == nil {
		return fmt.Errorf("disagg: base config needs a model")
	}
	if c.AdmitRatePerSec < 0 {
		return fmt.Errorf("disagg: admission rate must be non-negative, got %g", c.AdmitRatePerSec)
	}
	if c.Autoscale != nil {
		if err := c.Autoscale.Validate(); err != nil {
			return err
		}
		// An autoscaled instance can be a transfer endpoint too (source
		// when scaling prefill, destination when scaling decode or both),
		// so its platform faces the same zero-bandwidth trap as the base
		// groups.
		if transfersPossible && c.Transfer.BandwidthGBps == 0 && c.Autoscale.Template.Platform.IC.BandwidthGBps <= 0 {
			return fmt.Errorf("disagg: autoscale template platform %q has no interconnect bandwidth to price KV transfers; set Transfer.BandwidthGBps or give the platform a positive IC bandwidth", c.Autoscale.Template.Platform.Name)
		}
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(true); err != nil {
			return err
		}
	}
	return nil
}

// member is one instance with its disaggregation role; managed marks
// members the autoscaler added (the only ones a shrink may drain).
type member struct {
	in      *serve.Instance
	role    Role
	managed bool
}

// dsim is one in-flight disaggregated simulation: the shared calendar,
// the mutable membership view with its role pools, the per-link
// transfer state, and the churn ledger. Like cluster's fleetSim,
// membership is index-stable — members and pools only grow, departed
// instances stay in place as Stopped and are filtered by the routers'
// Accepting checks.
type dsim struct {
	cfg Config
	cal *sim.Calendar

	members     []member
	prefillPool []*serve.Instance
	prefillIdx  []int // pool position → member index
	decodePool  []*serve.Instance
	decodeIdx   []int

	prefillRouter, decodeRouter *cluster.Router
	admit                       *cluster.TokenBucket
	// prefillRec / decodeRec record per-pool routing decisions for
	// counterfactual scoring; nil when Config.CounterfactualK is zero.
	prefillRec, decodeRec *cluster.DecisionRecorder

	bytesPerTok float64
	// links maps a (src,dst) member pair to its busy-until instant
	// (FIFO per link); linkSlow carries degraded-link fault divisors.
	links    map[[2]int]sim.Time
	linkSlow map[[2]int]float64

	reqs        []serve.Request
	lastArrival sim.Time

	rejected, unroutable int
	// placed counts fresh front-door placements only (requeues
	// increment the hosting instance's own routed count instead), so
	// the front-door ledger survives churn.
	placed                   int
	transferDrops, transfers int
	// pendingTransfers counts caches on the wire or queued for it —
	// the transfer-queue autoscale signal.
	pendingTransfers               int
	bytesMoved                     float64
	wireTotal, stallTotal, wireMax sim.Time
	simErr                         error

	// chaos is nil for a static fleet, keeping static reports
	// bit-identical to the pre-refactor path.
	chaos        *cluster.ChaosStats
	pendingJoins int
	lastScale    sim.Time
	scaled       bool
	// Resolved autoscale knobs (defaults applied at setup).
	asInterval, asCooldown, asSpinUp sim.Time
	asWindow                         int
}

func (d *dsim) fail(err error) {
	if d.simErr == nil {
		d.simErr = err
	}
}

func (d *dsim) emit(now sim.Time, t serve.EventType, req serve.Request, instance, link string) {
	if d.cfg.Observer == nil {
		return
	}
	d.cfg.Observer(serve.Event{
		Time: now, Type: t,
		RequestID: req.ID, SessionID: req.SessionID,
		Instance: instance, Link: link,
	})
}

func (d *dsim) emitFleet(e serve.Event) {
	if d.cfg.Observer != nil {
		d.cfg.Observer(e)
	}
}

// addMember constructs an instance on the shared calendar and slots it
// into the membership view and its role pools.
func (d *dsim) addMember(icfg serve.Config, role Role, managed bool) (*serve.Instance, error) {
	if icfg.TTFTSLO == 0 {
		icfg.TTFTSLO = d.cfg.TTFTSLO
	}
	idx := len(d.members)
	name := fmt.Sprintf("%s/%s#%d", icfg.Platform.Name, role, idx)
	if d.cfg.Observer != nil {
		icfg.Observer = cluster.StampInstance(name, d.cfg.Observer, icfg.Observer)
	}
	in, err := serve.NewInstance(name, icfg, d.cal)
	if err != nil {
		return nil, err
	}
	d.members = append(d.members, member{in: in, role: role, managed: managed})
	if role != RoleDecode {
		d.prefillPool = append(d.prefillPool, in)
		d.prefillIdx = append(d.prefillIdx, idx)
	}
	if role != RolePrefill {
		d.decodePool = append(d.decodePool, in)
		d.decodeIdx = append(d.decodeIdx, idx)
	}
	return in, nil
}

// wireTime prices one transfer, degraded-link faults applied.
func (d *dsim) wireTime(src, dst int, bytes float64) sim.Time {
	wire := d.cfg.Transfer.Time(d.members[src].in.Platform(), d.members[dst].in.Platform(), bytes)
	if f, ok := d.linkSlow[[2]int{src, dst}]; ok {
		wire = sim.Time(float64(wire) * f)
	}
	return wire
}

// ship moves one handoff's cache from src to dst: the transfer starts
// when the (src,dst) link frees (FIFO per link) and occupies it for the
// full wire time; the request lands after the exposed tail — with
// overlap, decode starts before the last bytes arrive.
func (d *dsim) ship(now sim.Time, src, dst int, h serve.Handoff, bytes float64) {
	dstIn := d.members[dst].in
	wire := d.wireTime(src, dst, bytes)
	key := [2]int{src, dst}
	start := now
	if d.links[key] > start {
		start = d.links[key]
	}
	done := start + wire
	d.links[key] = done
	land := start + d.cfg.Transfer.Exposed(wire)
	d.transfers++
	d.pendingTransfers++
	d.bytesMoved += bytes
	d.wireTotal += wire
	d.stallTotal += land - now
	if wire > d.wireMax {
		d.wireMax = wire
	}
	link := d.members[src].in.Name() + "→" + dstIn.Name()
	srcName := d.members[src].in.Name()
	d.cal.Schedule(start, func(at sim.Time) {
		d.emit(at, serve.EventKVTransferStart, h.Req, srcName, link)
	})
	d.cal.Schedule(land, func(at sim.Time) { d.land(at, src, dst, h, link) })
}

// land completes one transfer: the request resumes on its destination,
// or — when the destination died while the cache was on the wire — the
// still-staged cache re-ships from the source to a freshly picked
// decode instance (a reported drop when none remains; the bytes are
// re-sized against the new destination's cache).
func (d *dsim) land(at sim.Time, src, dst int, h serve.Handoff, link string) {
	if d.simErr != nil {
		return
	}
	d.pendingTransfers--
	dstIn := d.members[dst].in
	if dstIn.State() == serve.StateStopped {
		hr := h.Req
		hr.PromptLen, hr.OutputLen = h.PromptLen, h.OutputLen
		nd := d.pickDecode(at, src, h, hr)
		if nd < 0 {
			d.transferDrops++
			d.emit(at, serve.EventUnroutable, h.Req, d.members[src].in.Name(), "")
			return
		}
		if d.decodeRec != nil {
			d.decodeRec.Record(at, hr, d.decodePool, nd, true, d.linkWait(at, src, d.decodeIdx[nd]))
		}
		d.ship(at, src, d.decodeIdx[nd], h, d.shipBytes(d.decodeIdx[nd], h))
		return
	}
	d.emit(at, serve.EventKVTransferDone, h.Req, dstIn.Name(), link)
	if err := dstIn.Resume(at, h); err != nil {
		// Pick only offers instances that fit, draining destinations
		// still honor committed transfers, and dead ones re-route
		// above, so Resume cannot refuse; treat a refusal as the bug it
		// would be.
		d.fail(fmt.Errorf("disagg: %s refused resumed request %d: %w", dstIn.Name(), h.Req.ID, err))
	}
}

// handoff places one completed prefill on the decode pool.
func (d *dsim) handoff(now sim.Time, src int, h serve.Handoff) {
	if d.simErr != nil {
		return
	}
	hr := h.Req
	hr.PromptLen, hr.OutputLen = h.PromptLen, h.OutputLen
	p := d.pickDecode(now, src, h, hr)
	if p < 0 {
		// No decode instance can ever hold this request: the prefill
		// work is lost and the drop is reported in the ledger.
		d.transferDrops++
		d.emit(now, serve.EventUnroutable, h.Req, d.members[src].in.Name(), "")
		return
	}
	if d.decodeRec != nil {
		d.decodeRec.Record(now, hr, d.decodePool, p, false, d.linkWait(now, src, d.decodeIdx[p]))
	}
	d.ship(now, src, d.decodeIdx[p], h, d.shipBytes(d.decodeIdx[p], h))
}

// shipBytes sizes one handoff's transfer to a destination member:
// leading prompt blocks the destination's prefix cache already holds
// device-resident never cross the wire — only the uncached tail ships.
// On a cacheless fleet the overlap is always zero and every handoff
// ships its full KV footprint, exactly the pre-cache behavior.
//
// The overlap is frozen at ship time: blocks counted as cached here may
// be evicted before the transfer lands, in which case Acquire
// re-materializes them as misses without the wire ever being charged —
// an optimistic approximation that slightly understates transfer bytes
// under destination cache churn.
func (d *dsim) shipBytes(dst int, h serve.Handoff) float64 {
	hr := h.Req
	hr.PromptLen, hr.OutputLen = h.PromptLen, h.OutputLen
	kv := h.KVLen
	if cached := d.members[dst].in.CachedPrefixTokens(hr); cached > 0 {
		kv -= cached
		if kv < 0 {
			kv = 0
		}
	}
	return float64(kv) * d.bytesPerTok
}

// pickDecode places one handoff on the decode pool: DecodePolicy's
// pick by default, or — with Config.LinkAwareDecode — the fitting
// instance with the earliest projected landing (link FIFO backlog plus
// the exposed wire time for the bytes this destination actually
// needs), ties broken by KV pressure then lowest index. Returns the
// decode-pool index, or -1 when no instance can ever hold the request.
func (d *dsim) pickDecode(now sim.Time, src int, h serve.Handoff, hr serve.Request) int {
	if !d.cfg.LinkAwareDecode {
		return d.decodeRouter.Pick(hr, d.decodePool)
	}
	best := -1
	var bestLand sim.Time
	var bestKV float64
	for i, in := range d.decodePool {
		if !in.Accepting() || !in.Fits(hr) {
			continue
		}
		dst := d.decodeIdx[i]
		start := now
		if busy := d.links[[2]int{src, dst}]; busy > start {
			start = busy
		}
		land := start + d.cfg.Transfer.Exposed(d.wireTime(src, dst, d.shipBytes(dst, h)))
		kv := in.KVPressure()
		if best < 0 || land < bestLand || (land == bestLand && kv < bestKV) {
			best, bestLand, bestKV = i, land, kv
		}
	}
	return best
}

// linkWait reports the (src,dst) link's FIFO backlog at now — how long
// a cache shipped this instant would wait before its wire time starts.
// This is the link-occupancy signal a decode decision record carries
// (the transfer-aware-placement follow-up's observability half).
func (d *dsim) linkWait(now sim.Time, src, dst int) sim.Time {
	if busy := d.links[[2]int{src, dst}]; busy > now {
		return busy - now
	}
	return 0
}

// route places one front-door arrival on the prefill pool.
func (d *dsim) route(now sim.Time, req serve.Request) {
	if d.simErr != nil {
		return
	}
	if d.admit != nil && !d.admit.Allow(now) {
		d.rejected++
		d.emit(now, serve.EventRejected, req, "", "")
		return
	}
	p := d.prefillRouter.Pick(req, d.prefillPool)
	if p < 0 {
		d.unroutable++
		d.emit(now, serve.EventUnroutable, req, "", "")
		return
	}
	if d.prefillRec != nil {
		d.prefillRec.Record(now, req, d.prefillPool, p, false, 0)
	}
	src := d.prefillIdx[p]
	m := d.members[src]
	d.placed++
	d.emit(now, serve.EventRouted, req, m.in.Name(), "")
	var err error
	if m.role == RoleBoth {
		err = m.in.Accept(now, req)
	} else {
		err = m.in.AcceptPrefill(now, req, func(at sim.Time, h serve.Handoff) {
			d.handoff(at, src, h)
		})
	}
	if err != nil {
		d.fail(fmt.Errorf("disagg: %s refused routed request %d: %w", m.in.Name(), req.ID, err))
	}
}

// Simulate runs the disaggregated fleet over the request stream and
// returns fleet statistics with an exactly reconciled ledger. The whole
// simulation — autoscaling and fault injection included — is
// deterministic for a fixed stream and config.
func Simulate(cfg Config, requests []serve.Request) (*Stats, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(requests) == 0 {
		return nil, fmt.Errorf("disagg: no requests")
	}
	reqs := make([]serve.Request, len(requests))
	copy(reqs, requests)
	sort.Slice(reqs, func(i, j int) bool { return reqs[i].Arrival < reqs[j].Arrival })

	d := &dsim{
		cfg:         cfg,
		cal:         sim.NewCalendar(),
		bytesPerTok: serve.KVBytesPerToken(cfg.Base.Model),
		links:       make(map[[2]int]sim.Time),
		linkSlow:    make(map[[2]int]float64),
		reqs:        reqs,
		lastArrival: reqs[len(reqs)-1].Arrival,
	}
	for _, g := range cfg.Groups {
		for k := 0; k < g.Count; k++ {
			icfg := cfg.Base
			icfg.Platform = g.Platform
			if _, err := d.addMember(icfg, g.Role, false); err != nil {
				return nil, err
			}
		}
	}
	d.prefillRouter = cluster.NewRouter(cfg.PrefillPolicy, cfg.ShortPrompt)
	d.decodeRouter = cluster.NewRouter(cfg.DecodePolicy, cfg.ShortPrompt)
	if cfg.CounterfactualK > 0 {
		d.prefillRec = cluster.NewDecisionRecorder(cfg.PrefillPolicy, cfg.ShortPrompt, cfg.CounterfactualK)
		d.decodeRec = cluster.NewDecisionRecorder(cfg.DecodePolicy, cfg.ShortPrompt, cfg.CounterfactualK)
	}
	if cfg.AdmitRatePerSec > 0 {
		d.admit = cluster.NewTokenBucket(cfg.AdmitRatePerSec, cfg.AdmitBurst)
	}
	if cfg.Autoscale != nil || cfg.Faults != nil {
		d.chaos = &cluster.ChaosStats{}
		d.sampleFleet(0)
	}
	if cfg.Autoscale != nil {
		if err := d.setupAutoscale(); err != nil {
			return nil, err
		}
	}
	if cfg.Faults != nil {
		d.setupFaults()
	}

	for i := range reqs {
		req := reqs[i]
		d.cal.Schedule(req.Arrival, func(now sim.Time) { d.route(now, req) })
	}
	d.cal.Run()
	if d.simErr != nil {
		return nil, d.simErr
	}
	for _, m := range d.members {
		if err := m.in.Err(); err != nil {
			return nil, fmt.Errorf("disagg: instance %s: %w", m.in.Name(), err)
		}
	}

	st := d.assembleStats()
	st.Transfers = d.transfers
	st.KVBytesMoved = d.bytesMoved
	if d.transfers > 0 {
		st.MeanTransfer = d.wireTotal / sim.Time(d.transfers)
		st.MeanTransferStall = d.stallTotal / sim.Time(d.transfers)
		st.MaxTransfer = d.wireMax
	}
	if err := st.reconcile(); err != nil {
		return nil, err
	}
	// Cache invariants: every per-instance prefix-cache ledger — and
	// their fleet-level sum — must balance exactly (see
	// serve.KVCacheStats.Reconcile). Nil-safe: cacheless fleets skip.
	for i := range st.Instances {
		is := &st.Instances[i]
		if err := is.Serve.KVCache.Reconcile(); err != nil {
			return nil, fmt.Errorf("disagg: %s: %w", is.Name, err)
		}
	}
	if err := st.KVCache.Reconcile(); err != nil {
		return nil, fmt.Errorf("disagg: %w", err)
	}
	if c := st.Chaos; c != nil {
		// Churn invariants: every crash eviction is requeued or dropped,
		// and every fresh placement still settles exactly once —
		// completed, abandoned, dropped at transfer, or dropped at
		// requeue.
		if c.Killed != c.Requeued+c.Dropped {
			return nil, fmt.Errorf("disagg: churn accounting broken: killed %d != requeued %d + dropped %d",
				c.Killed, c.Requeued, c.Dropped)
		}
		if st.Routed != st.Completed+st.Abandoned+st.TransferDrops+c.Dropped {
			return nil, fmt.Errorf("disagg: churn accounting broken: routed %d != completed %d + abandoned %d + transfer-dropped %d + dropped %d",
				st.Routed, st.Completed, st.Abandoned, st.TransferDrops, c.Dropped)
		}
	}
	return st, nil
}
