package disagg

import (
	"fmt"
	"math/rand"

	"github.com/skipsim/skip/internal/cluster"
	"github.com/skipsim/skip/internal/serve"
	"github.com/skipsim/skip/internal/sim"
)

// Fleet churn for disaggregated serving: the autoscale controller and
// fault injector mirror cluster's (same signals, same hysteresis, same
// seeded-random crash plan) but act on role pools — the controller
// scales one pool, a crash victim's evictions re-route through the pool
// that matches their progress, and link faults degrade one (src,dst)
// transfer link's bandwidth.

// activeCount counts members still accepting fresh work.
func (d *dsim) activeCount() int {
	n := 0
	for _, m := range d.members {
		if m.in.Accepting() {
			n++
		}
	}
	return n
}

// outstanding sums queued plus running requests across non-stopped
// members, draining ones included.
func (d *dsim) outstanding() int {
	n := 0
	for _, m := range d.members {
		if m.in.State() != serve.StateStopped {
			n += m.in.Outstanding()
		}
	}
	return n
}

// sampleFleet records the active-member count in the churn ledger's
// fleet-size series (called at every membership transition).
func (d *dsim) sampleFleet(now sim.Time) {
	act := d.activeCount()
	if act > d.chaos.PeakActive {
		d.chaos.PeakActive = act
	}
	d.chaos.FleetSize = append(d.chaos.FleetSize, serve.SamplePoint{T: now, V: float64(act)})
}

// inPool reports whether a member serves a role pool (RoleBoth members
// serve both).
func inPool(m member, role Role) bool {
	switch role {
	case RolePrefill:
		return m.role != RoleDecode
	case RoleDecode:
		return m.role != RolePrefill
	default:
		return true
	}
}

// poolActive counts accepting members of a role pool.
func (d *dsim) poolActive(role Role) int {
	n := 0
	for _, m := range d.members {
		if inPool(m, role) && m.in.Accepting() {
			n++
		}
	}
	return n
}

// poolOutstanding sums queued plus running requests over a role pool's
// non-stopped members.
func (d *dsim) poolOutstanding(role Role) int {
	n := 0
	for _, m := range d.members {
		if inPool(m, role) && m.in.State() != serve.StateStopped {
			n += m.in.Outstanding()
		}
	}
	return n
}

// setupAutoscale validates the template eagerly (a broken template must
// fail the run at setup, not mid-simulation at first spin-up), resolves
// the controller knobs, and arms the first tick.
func (d *dsim) setupAutoscale() error {
	a := d.cfg.Autoscale
	if _, err := serve.NewInstance("autoscale-template", a.Template, sim.NewCalendar()); err != nil {
		return fmt.Errorf("disagg: autoscale template: %w", err)
	}
	d.asInterval, d.asCooldown, d.asSpinUp, d.asWindow = a.Resolve()
	d.cal.Schedule(d.asInterval, d.scaleTick)
	return nil
}

// scaleTick is one controller period: evaluate the signal (unless
// cooling down), act, and re-arm while the simulation still has work —
// pending KV transfers included, so a tick chain never outlives the
// workload nor abandons a cache on the wire.
func (d *dsim) scaleTick(now sim.Time) {
	if d.simErr != nil {
		return
	}
	if !d.scaled || now-d.lastScale >= d.asCooldown {
		d.scaleDecide(now)
	}
	if now < d.lastArrival || d.outstanding() > 0 || d.pendingJoins > 0 || d.pendingTransfers > 0 {
		d.cal.Schedule(now+d.asInterval, d.scaleTick)
	}
}

// scaleDecide evaluates the signal against its setpoint with the same
// hysteresis bands as cluster's controller and triggers at most one
// action on the scaled pool.
func (d *dsim) scaleDecide(now sim.Time) {
	a := d.cfg.Autoscale
	var grow, shrink bool
	switch a.Signal {
	case cluster.SignalSLOAttainment:
		met, total := 0, 0
		for _, m := range d.members {
			if m.in.State() != serve.StateStopped {
				mm, t := m.in.SLOWindow(d.asWindow)
				met, total = met+mm, total+t
			}
		}
		if total == 0 {
			return // no samples yet: no signal
		}
		att := float64(met) / float64(total)
		grow = att < a.Target
		shrink = att >= (1+a.Target)/2
	case cluster.SignalTransferQueue:
		// Transfer pressure starves decode capacity: the signal is
		// caches on the wire (or queued for it) per active
		// decode-capable instance, whichever pool the controller scales.
		act := d.poolActive(RoleDecode)
		if act == 0 {
			grow = true
			break
		}
		depth := float64(d.pendingTransfers) / float64(act)
		grow = depth > a.Target
		shrink = depth < a.Target/2
	default: // SignalQueueDepth over the scaled pool
		act := d.poolActive(d.cfg.AutoscaleRole)
		if act == 0 {
			grow = true
			break
		}
		depth := float64(d.poolOutstanding(d.cfg.AutoscaleRole)) / float64(act)
		grow = depth > a.Target
		shrink = depth < a.Target/2
	}
	switch {
	case grow:
		d.grow(now)
	case shrink:
		d.shrink(now)
	}
}

// grow schedules one instance join after the spin-up delay.
func (d *dsim) grow(now sim.Time) {
	if d.poolActive(d.cfg.AutoscaleRole)+d.pendingJoins >= d.cfg.Autoscale.Max {
		return
	}
	d.pendingJoins++
	d.lastScale, d.scaled = now, true
	d.cal.Schedule(now+d.asSpinUp, d.join)
}

// join lands a spun-up instance in the scaled pool.
func (d *dsim) join(now sim.Time) {
	d.pendingJoins--
	if d.simErr != nil {
		return
	}
	in, err := d.addMember(d.cfg.Autoscale.Template, d.cfg.AutoscaleRole, true)
	if err != nil {
		d.fail(fmt.Errorf("disagg: autoscale join: %w", err))
		return
	}
	d.chaos.Joins++
	d.emitFleet(serve.Event{Time: now, Type: serve.EventInstanceJoin, Instance: in.Name()})
	d.sampleFleet(now)
}

// shrink drains the highest-index accepting instance the controller
// added. The base fleet is never drained, and the scaled pool's last
// active member never leaves.
func (d *dsim) shrink(now sim.Time) {
	a := d.cfg.Autoscale
	act := d.poolActive(d.cfg.AutoscaleRole)
	if act <= 1 || act <= a.Min {
		return
	}
	for i := len(d.members) - 1; i >= 0; i-- {
		if d.members[i].managed && d.members[i].in.Accepting() {
			d.lastScale, d.scaled = now, true
			d.chaos.Drains++
			d.members[i].in.Drain(now) // emits drain-start via the stamped observer
			d.sampleFleet(now)
			return
		}
	}
}

// setupFaults schedules the whole fault plan before the calendar runs,
// exactly like cluster's injector.
func (d *dsim) setupFaults() {
	fc := d.cfg.Faults
	for _, ft := range fc.Faults {
		ft := ft
		d.cal.Schedule(ft.At, func(now sim.Time) { d.injectFault(now, ft) })
	}
	if fc.CrashRatePerSec > 0 {
		rng := rand.New(rand.NewSource(fc.Seed))
		var t float64 // seconds
		for {
			t += rng.ExpFloat64() / fc.CrashRatePerSec
			at := sim.Time(t * 1e9)
			if at > d.lastArrival {
				break
			}
			pick := rng.Uint64()
			d.cal.Schedule(at, func(now sim.Time) { d.randomCrash(now, pick) })
		}
	}
}

// injectFault applies one scheduled fault. Targets that do not exist at
// fire time — or already stopped — make the fault a deterministic
// no-op.
func (d *dsim) injectFault(now sim.Time, ft cluster.Fault) {
	if d.simErr != nil {
		return
	}
	if ft.Target >= len(d.members) {
		return
	}
	m := d.members[ft.Target]
	if ft.Kind == cluster.FaultLinkDegrade {
		if ft.Dst >= len(d.members) {
			return
		}
		d.linkSlow[[2]int{ft.Target, ft.Dst}] = ft.Factor
		d.chaos.DegradedLinks++
		d.emitFleet(serve.Event{
			Time: now, Type: serve.EventFaultInjected,
			Link:   m.in.Name() + "→" + d.members[ft.Dst].in.Name(),
			Detail: fmt.Sprintf("link-degraded ×%g", ft.Factor),
		})
		return
	}
	if m.in.State() == serve.StateStopped {
		return
	}
	switch ft.Kind {
	case cluster.FaultCrash:
		d.crash(now, ft.Target)
	case cluster.FaultSlowNode:
		if err := m.in.SetSlowFactor(ft.Factor); err != nil {
			d.fail(err)
			return
		}
		d.chaos.SlowNodes++
		d.emitFleet(serve.Event{
			Time: now, Type: serve.EventFaultInjected,
			Instance: m.in.Name(), Detail: fmt.Sprintf("slow-node ×%g", ft.Factor),
		})
	}
}

// randomCrash fires one seeded-random crash: the victim is drawn from
// the members still standing via the pre-drawn pick, and the crash is
// skipped when the fleet could not survive it.
func (d *dsim) randomCrash(now sim.Time, pick uint64) {
	if d.simErr != nil {
		return
	}
	var cands []int
	for i, m := range d.members {
		if m.in.State() != serve.StateStopped {
			cands = append(cands, i)
		}
	}
	if len(cands) == 0 {
		return
	}
	v := cands[int(pick%uint64(len(cands)))]
	if !d.survivable(v) {
		return
	}
	d.crash(now, v)
}

// survivable reports whether killing victim still leaves both pools an
// accepting member — chaos tests the fleet, it does not end the
// service.
func (d *dsim) survivable(victim int) bool {
	for _, role := range []Role{RolePrefill, RoleDecode} {
		n := 0
		for i, m := range d.members {
			if i != victim && inPool(m, role) && m.in.Accepting() {
				n++
			}
		}
		if n == 0 {
			return false
		}
	}
	return true
}

// crash kills one member and re-routes everything it was serving.
func (d *dsim) crash(now sim.Time, idx int) {
	m := d.members[idx]
	d.chaos.Crashes++
	d.emitFleet(serve.Event{
		Time: now, Type: serve.EventFaultInjected,
		Instance: m.in.Name(), Detail: "crash",
	})
	evs := m.in.Kill(now) // emits instance-gone via the stamped observer
	d.chaos.Killed += len(evs)
	d.sampleFleet(now)
	for _, ev := range evs {
		d.requeue(now, ev)
	}
}

// requeue re-places one crash-evicted request through the pool matching
// its progress. A victim whose first token was never served goes back
// through the prefill front door — and hands off again if it lands on a
// prefill-only instance — while a mid-stream victim re-runs on the
// decode pool, recomputing its prompt locally exactly as a post-resume
// preemption would. Either way the routed request carries its resolved
// lengths so the fit check is exact.
func (d *dsim) requeue(now sim.Time, ev serve.Evicted) {
	if d.simErr != nil {
		return
	}
	req := ev.Req
	req.PromptLen, req.OutputLen = ev.PromptLen, ev.OutputLen
	if !ev.HasFirst {
		p := d.prefillRouter.Pick(req, d.prefillPool)
		if p < 0 {
			d.chaos.Dropped++
			d.emit(now, serve.EventUnroutable, req, "", "")
			return
		}
		if d.prefillRec != nil {
			d.prefillRec.Record(now, req, d.prefillPool, p, true, 0)
		}
		src := d.prefillIdx[p]
		m := d.members[src]
		var err error
		if m.role == RoleBoth {
			err = m.in.AcceptRequeued(now, ev)
		} else {
			err = m.in.AcceptRequeuedPrefill(now, ev, func(at sim.Time, h serve.Handoff) {
				d.handoff(at, src, h)
			})
		}
		if err != nil {
			d.fail(fmt.Errorf("disagg: %s refused requeued request %d: %w", m.in.Name(), req.ID, err))
			return
		}
		d.chaos.Requeued++
		d.emit(now, serve.EventRequeued, req, m.in.Name(), "")
		return
	}
	p := d.decodeRouter.Pick(req, d.decodePool)
	if p < 0 {
		d.chaos.Dropped++
		d.emit(now, serve.EventUnroutable, req, "", "")
		return
	}
	if d.decodeRec != nil {
		d.decodeRec.Record(now, req, d.decodePool, p, true, 0)
	}
	dst := d.members[d.decodeIdx[p]]
	if err := dst.in.AcceptRequeued(now, ev); err != nil {
		d.fail(fmt.Errorf("disagg: %s refused requeued request %d: %w", dst.in.Name(), req.ID, err))
		return
	}
	d.chaos.Requeued++
	d.emit(now, serve.EventRequeued, req, dst.in.Name(), "")
}
