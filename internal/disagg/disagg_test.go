package disagg

import (
	"reflect"
	"strings"
	"testing"

	"github.com/skipsim/skip/internal/cluster"
	"github.com/skipsim/skip/internal/hw"
	"github.com/skipsim/skip/internal/models"
	"github.com/skipsim/skip/internal/serve"
	"github.com/skipsim/skip/internal/sim"
)

// testBase is a small, fast per-instance serving config.
func testBase() serve.Config {
	m, err := models.ByName("llama-3.2-1B")
	if err != nil {
		panic(err)
	}
	return serve.Config{
		Model:         m,
		Policy:        serve.ContinuousBatch,
		Seq:           512,
		MaxBatch:      16,
		LatencyBucket: 256,
	}
}

// testWorkload is a deterministic chat stream with real output lengths.
func testWorkload(t *testing.T, n int) []serve.Request {
	t.Helper()
	reqs, err := serve.Workload{
		Scenario: serve.ScenarioChat, N: n, RatePerSec: 30, Seed: 9,
		Prompt: serve.LengthDist{Mean: 256, Sigma: 0.5, Min: 32, Max: 1024},
		Output: serve.LengthDist{Mean: 24, Sigma: 0.5, Min: 4, Max: 64},
	}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

func testConfig() Config {
	return Config{
		Groups: []Group{
			{Platform: hw.GH200(), Count: 1, Role: RolePrefill},
			{Platform: hw.IntelH100(), Count: 2, Role: RoleDecode},
		},
		Base:          testBase(),
		PrefillPolicy: cluster.LeastQueue,
		DecodePolicy:  cluster.LeastKV,
		TTFTSLO:       500 * sim.Millisecond,
	}
}

// TestTransferTimeInterconnectOrdering pins the transfer model to the
// paper's asymmetry: a coupled→coupled handoff (NVLink-C2C, no host
// hop) must beat a mixed pair, which must beat a discrete→discrete
// PCIe transfer that store-and-forwards through both hosts.
func TestTransferTimeInterconnectOrdering(t *testing.T) {
	var tm TransferModel
	gh, intel := hw.GH200(), hw.IntelH100()
	const bytes = 256 << 20 // a 256 MB cache

	cc := tm.Time(gh, gh, bytes)
	mixed := tm.Time(gh, intel, bytes)
	lc := tm.Time(intel, intel, bytes)
	if !(cc < mixed && mixed < lc) {
		t.Errorf("transfer ordering broken: coupled %v, mixed %v, discrete %v", cc, mixed, lc)
	}

	// Exact math: coupled pair moves at NVLink-C2C rate with two
	// initiation latencies and no host hop.
	wantCC := sim.FromNs(2*gh.IC.LatencyNs + bytes/gh.IC.BandwidthGBps)
	if cc != wantCC {
		t.Errorf("coupled transfer = %v, want %v", cc, wantCC)
	}
	// Discrete pair is gated by the slower PCIe link and pays the
	// default host-hop multiplier once per endpoint.
	wantLC := sim.FromNs(2*intel.IC.LatencyNs +
		DefaultHostHopMultiplier*DefaultHostHopMultiplier*bytes/intel.IC.BandwidthGBps)
	if lc != wantLC {
		t.Errorf("discrete transfer = %v, want %v", lc, wantLC)
	}

	// The bandwidth override replaces the link rate but keeps the
	// endpoint topology (latency + hops).
	fat := TransferModel{BandwidthGBps: 900}
	if got, want := fat.Time(gh, gh, bytes), sim.FromNs(2*gh.IC.LatencyNs+bytes/900.0); got != want {
		t.Errorf("override transfer = %v, want %v", got, want)
	}
	// A unit multiplier erases the discrete penalty entirely.
	flat := TransferModel{HostHopMultiplier: 1}
	if got, want := flat.Time(intel, intel, bytes), sim.FromNs(2*intel.IC.LatencyNs+bytes/intel.IC.BandwidthGBps); got != want {
		t.Errorf("flat transfer = %v, want %v", got, want)
	}

	if tm.Time(gh, intel, 0) != 0 {
		t.Error("zero bytes should transfer in zero time")
	}
}

// TestZeroBandwidthPlatformRejected: hw validation deliberately permits
// zero interconnect bandwidth on unified-physical-memory platforms
// (CPU↔GPU transfers are free there), but an instance-to-instance KV
// handoff still crosses a wire — without an override the transfer model
// would divide by zero and price every handoff at +Inf. Such fleets
// must be rejected at config validation with the platform named; an
// explicit Transfer.BandwidthGBps override makes them legal again.
func TestZeroBandwidthPlatformRejected(t *testing.T) {
	unified := hw.MI300A()
	unified.Name = "CustomUnified"
	unified.IC.BandwidthGBps = 0
	if err := unified.Validate(); err != nil {
		t.Fatalf("zero IC bandwidth should pass hw validation on a unified platform: %v", err)
	}

	cfg := testConfig()
	cfg.Groups = []Group{
		{Platform: unified, Count: 1, Role: RolePrefill},
		{Platform: hw.IntelH100(), Count: 1, Role: RoleDecode},
	}
	_, err := Simulate(cfg, testWorkload(t, 4))
	if err == nil {
		t.Fatal("fleet with an unpriceable transfer endpoint should be rejected")
	}
	if !strings.Contains(err.Error(), "CustomUnified") || !strings.Contains(err.Error(), "bandwidth") {
		t.Errorf("error should name the platform and the missing bandwidth, got: %v", err)
	}

	// The override restores a finite price and the fleet simulates.
	cfg.Transfer.BandwidthGBps = 100
	st, err := Simulate(cfg, testWorkload(t, 4))
	if err != nil {
		t.Fatalf("override should make the fleet legal: %v", err)
	}
	if st.Transfers == 0 || st.MeanTransfer <= 0 {
		t.Errorf("overridden fleet should price transfers finitely, got %d transfers, mean %v",
			st.Transfers, st.MeanTransfer)
	}

	// An all-"both" fleet never hands a cache off — no RolePrefill
	// source, no transfers — so the unpriceable link is irrelevant and
	// the fleet stays legal without an override.
	cfg.Transfer.BandwidthGBps = 0
	cfg.Groups = []Group{
		{Platform: unified, Count: 1, Role: RoleBoth},
		{Platform: hw.IntelH100(), Count: 1, Role: RoleBoth},
	}
	st, err = Simulate(cfg, testWorkload(t, 4))
	if err != nil {
		t.Fatalf("transfer-free fleet should not need a priceable link: %v", err)
	}
	if st.Transfers != 0 {
		t.Errorf("all-both fleet moved %d transfers, want 0", st.Transfers)
	}
}

// TestSimulateLedger runs a small disaggregated fleet and checks the
// cross-pool ledger: every prefill completion is matched by exactly one
// decode completion (no drops here), TTFTs come only from the prefill
// pool, and nothing is lost.
func TestSimulateLedger(t *testing.T) {
	reqs := testWorkload(t, 24)
	st, err := Simulate(testConfig(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if st.Offered != 24 || st.Routed != 24 || st.Rejected != 0 || st.Unroutable != 0 {
		t.Errorf("front door: offered %d rejected %d unroutable %d routed %d",
			st.Offered, st.Rejected, st.Unroutable, st.Routed)
	}
	if st.Completed != 24 {
		t.Errorf("completed %d of 24", st.Completed)
	}
	if st.TransferDrops != 0 || st.HandedOff != st.Resumed {
		t.Errorf("handoff ledger: %d handed off, %d resumed, %d dropped",
			st.HandedOff, st.Resumed, st.TransferDrops)
	}
	if st.HandedOff == 0 {
		t.Error("no handoffs: the prefill pool never shipped a cache")
	}
	if st.Transfers != st.HandedOff {
		t.Errorf("%d transfers for %d handoffs", st.Transfers, st.HandedOff)
	}
	if st.KVBytesMoved <= 0 || st.MeanTransfer <= 0 {
		t.Errorf("transfer economics empty: %g bytes, mean %v", st.KVBytesMoved, st.MeanTransfer)
	}
	if st.MeanTransferStall < st.MeanTransfer {
		t.Errorf("stall %v below wire time %v", st.MeanTransferStall, st.MeanTransfer)
	}
	for _, is := range st.Instances {
		switch is.Role {
		case "prefill":
			if is.Serve.Resumed != 0 {
				t.Errorf("%s: prefill instance resumed %d requests", is.Name, is.Serve.Resumed)
			}
			// Multi-token requests hand off; only outputLen==1 requests
			// may complete locally (this workload has none: Min=4).
			if is.Serve.Completed != 0 {
				t.Errorf("%s: prefill instance completed %d requests locally", is.Name, is.Serve.Completed)
			}
		case "decode":
			if is.Routed != 0 {
				t.Errorf("%s: front door routed %d fresh arrivals to a decode instance", is.Name, is.Routed)
			}
			if is.Serve.Completed != is.Resumed {
				t.Errorf("%s: completed %d of %d resumed", is.Name, is.Serve.Completed, is.Resumed)
			}
		}
	}
	if st.P50TTFT <= 0 || st.P50TPOT <= 0 || st.P50E2E <= 0 {
		t.Errorf("pooled percentiles empty: TTFT %v TPOT %v E2E %v", st.P50TTFT, st.P50TPOT, st.P50E2E)
	}
}

// TestSimulateDeterminism: same stream and config, byte-identical
// stats.
func TestSimulateDeterminism(t *testing.T) {
	a, err := Simulate(testConfig(), testWorkload(t, 24))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(testConfig(), testWorkload(t, 24))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("rerun diverged: P95 TTFT %v vs %v, horizon %v vs %v",
			a.P95TTFT, b.P95TTFT, a.Horizon, b.Horizon)
	}
}

// TestSimulateEvents checks the per-request disaggregated lifecycle
// order on the observer stream: routed → arrival@prefill → … →
// first-token@prefill → kv-transfer-start → kv-transfer-done →
// arrival@decode → … → completed@decode, with transfer starts and
// dones balanced.
func TestSimulateEvents(t *testing.T) {
	var events []serve.Event
	cfg := testConfig()
	cfg.Observer = func(e serve.Event) { events = append(events, e) }
	st, err := Simulate(cfg, testWorkload(t, 12))
	if err != nil {
		t.Fatal(err)
	}
	starts, dones := 0, 0
	perReq := make(map[int][]string)
	for _, e := range events {
		switch e.Type {
		case serve.EventKVTransferStart:
			starts++
			if !strings.Contains(e.Link, "→") {
				t.Errorf("transfer event without a link: %v", e)
			}
		case serve.EventKVTransferDone:
			dones++
		}
		perReq[e.RequestID] = append(perReq[e.RequestID], e.Type.String())
	}
	if starts != st.Transfers || dones != st.Transfers {
		t.Errorf("%d starts / %d dones for %d transfers", starts, dones, st.Transfers)
	}
	want := []string{"routed", "arrival", "admitted", "first-token",
		"kv-transfer-start", "kv-transfer-done", "arrival", "admitted", "completed"}
	seq := perReq[0]
	// Preemption-free runs follow the canonical order exactly.
	if st.Preemptions == 0 && !reflect.DeepEqual(seq, want) {
		t.Errorf("request 0 lifecycle = %v, want %v", seq, want)
	}
}

// TestSimulateBothRolesMatchCluster: a fleet of RoleBoth groups is
// monolithic serving — it must reproduce cluster.Simulate exactly
// (per-pool policies and the transfer model never engage).
func TestSimulateBothRolesMatchCluster(t *testing.T) {
	reqs := testWorkload(t, 24)
	dcfg := Config{
		Groups: []Group{
			{Platform: hw.GH200(), Count: 1, Role: RoleBoth},
			{Platform: hw.IntelH100(), Count: 1, Role: RoleBoth},
		},
		Base:          testBase(),
		PrefillPolicy: cluster.LeastQueue,
		TTFTSLO:       500 * sim.Millisecond,
	}
	dst, err := Simulate(dcfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if dst.HandedOff != 0 || dst.Transfers != 0 {
		t.Fatalf("RoleBoth fleet handed off %d / transferred %d", dst.HandedOff, dst.Transfers)
	}

	base := testBase()
	ccfg := cluster.Config{
		Instances: nil,
		Policy:    cluster.LeastQueue,
		TTFTSLO:   500 * sim.Millisecond,
	}
	for _, p := range []*hw.Platform{hw.GH200(), hw.IntelH100()} {
		icfg := base
		icfg.Platform = p
		ccfg.Instances = append(ccfg.Instances, icfg)
	}
	cst, err := cluster.Simulate(ccfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if dst.P95TTFT != cst.P95TTFT || dst.P95E2E != cst.P95E2E ||
		dst.Completed != cst.Completed || dst.Horizon != cst.Horizon ||
		dst.TokensPerSec != cst.TokensPerSec {
		t.Errorf("RoleBoth fleet diverged from cluster: TTFT %v vs %v, E2E %v vs %v, horizon %v vs %v",
			dst.P95TTFT, cst.P95TTFT, dst.P95E2E, cst.P95E2E, dst.Horizon, cst.Horizon)
	}
}

// TestTransferDropReported: a request whose lifetime KV fits the
// prefill pool but no decode instance must surface as a reported drop,
// keeping the ledger exact.
func TestTransferDropReported(t *testing.T) {
	small := hw.IntelH100()
	small.Name = "Tiny+H100"
	small.GPU.HBMGB = 4 // ~1.2 GB of KV budget after fp16 weights

	cfg := Config{
		Groups: []Group{
			{Platform: hw.GH200(), Count: 1, Role: RolePrefill},
			{Platform: small, Count: 1, Role: RoleDecode},
		},
		Base:          testBase(),
		PrefillPolicy: cluster.LeastQueue,
		DecodePolicy:  cluster.LeastKV,
	}
	reqs := []serve.Request{
		{ID: 0, Arrival: 0, PromptLen: 256, OutputLen: 8},
		{ID: 1, Arrival: sim.Millisecond, PromptLen: 48000, OutputLen: 8}, // ~1.6 GB of KV
	}
	st, err := Simulate(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if st.TransferDrops != 1 {
		t.Fatalf("transfer drops = %d, want 1 (stats: %+v)", st.TransferDrops, st)
	}
	if st.HandedOff != 2 || st.Resumed != 1 || st.Completed != 1 {
		t.Errorf("ledger: handed off %d, resumed %d, completed %d", st.HandedOff, st.Resumed, st.Completed)
	}
}
