package disagg

import (
	"fmt"

	"github.com/skipsim/skip/internal/cluster"
	"github.com/skipsim/skip/internal/serve"
	"github.com/skipsim/skip/internal/sim"
)

// InstanceStats pairs one instance's identity, role, and placement
// counts with its full serving statistics.
type InstanceStats struct {
	Name     string
	Platform string
	Role     string
	// Routed counts fresh arrivals the front door placed here; Resumed
	// counts handoffs absorbed from the prefill pool.
	Routed  int
	Resumed int
	Serve   serve.Stats
}

// Stats summarizes a disaggregated fleet simulation. Latency
// percentiles pool the per-request samples across instances: TTFTs come
// from wherever prefill ran — every request whose first token was
// served contributes one, including the rare request later dropped for
// want of a decode instance (its user did receive that token) — while
// TPOT/E2E come from wherever the request finished, so the
// distributions are the fleet's true end-to-end view (transfer stalls
// included in TPOT and E2E). SLO attainment is measured over the same
// TTFT samples.
type Stats struct {
	// PrefillPolicy / DecodePolicy name the placement policies.
	PrefillPolicy string
	DecodePolicy  string

	// The front-door ledger: every offered request is exactly one of
	// rejected (admission control), unroutable (fits no prefill-capable
	// instance), or routed.
	Offered    int
	Rejected   int
	Unroutable int
	Routed     int

	// The handoff ledger: every routed request settles as a completion
	// (single-token prefills and RoleBoth instances complete locally),
	// an abandonment, or a handoff; every handoff becomes exactly one
	// transfer + resumption or one reported drop (no decode instance
	// could ever hold it).
	HandedOff     int
	TransferDrops int
	Resumed       int

	// Completed / Abandoned / Preemptions sum over instances.
	Completed   int
	Abandoned   int
	Preemptions int

	// Transfer economics over the simulation.
	Transfers    int
	KVBytesMoved float64
	// MeanTransfer / MaxTransfer are wire times; MeanTransferStall adds
	// per-link queueing — the delay a request actually experiences
	// between finishing prefill and landing on its decode instance.
	MeanTransfer      sim.Time
	MaxTransfer       sim.Time
	MeanTransferStall sim.Time

	// TTFT / TPOT / E2E over the pooled per-request samples (see the
	// type comment for which requests contribute to each).
	MeanTTFT, P50TTFT, P95TTFT, P99TTFT, MaxTTFT sim.Time
	MeanTPOT, P50TPOT, P95TPOT                   sim.Time
	MeanE2E, P50E2E, P95E2E, MaxE2E              sim.Time

	// Horizon is the last completion across the fleet; rates are fleet
	// totals over it.
	Horizon       sim.Time
	Throughput    float64
	TokensPerSec  float64
	Goodput       float64
	SLOAttainment float64

	// LoadImbalance is the coefficient of variation of per-instance
	// placed work (routed + resumed).
	LoadImbalance float64

	// Chaos is the churn ledger: non-nil only when autoscaling or fault
	// injection ran, so static reports stay bit-identical to the
	// pre-refactor output.
	Chaos *cluster.ChaosStats `json:",omitempty"`

	// PrefillRouting / DecodeRouting carry per-pool decision records and
	// counterfactual replays; nil unless Config.CounterfactualK was set.
	// Decode decisions additionally record the chosen link's FIFO
	// backlog at pick time (Decision.LinkWait).
	PrefillRouting *cluster.RoutingStats `json:",omitempty"`
	DecodeRouting  *cluster.RoutingStats `json:",omitempty"`

	// KVCache sums the per-instance prefix-cache ledgers across both
	// pools (hit rate recomputed over the pooled counts). Nil (and
	// omitted from JSON) for cacheless fleets, so those reports stay
	// bit-identical.
	KVCache *serve.KVCacheStats `json:",omitempty"`

	Instances []InstanceStats
}

// assembleStats pools per-instance results into fleet-level statistics.
func (d *dsim) assembleStats() *Stats {
	cfg, members := d.cfg, d.members
	st := &Stats{
		PrefillPolicy: cfg.PrefillPolicy.String(),
		DecodePolicy:  cfg.DecodePolicy.String(),
		Offered:       len(d.reqs),
		Rejected:      d.rejected,
		Unroutable:    d.unroutable,
		// Routed counts fresh front-door placements; requeues after a
		// crash show up only in the per-instance routed counts.
		Routed:        d.placed,
		TransferDrops: d.transferDrops,
	}
	var ttfts, tpots, e2es []sim.Time
	var tokensOut int64
	var caches []*serve.KVCacheStats
	for _, m := range members {
		is := m.in.Stats()
		caches = append(caches, is.KVCache)
		st.HandedOff += is.HandedOff
		st.Resumed += is.Resumed
		st.Completed += is.Completed
		st.Abandoned += is.Abandoned
		st.Preemptions += is.Preemptions
		if is.Horizon > st.Horizon {
			st.Horizon = is.Horizon
		}
		tokensOut += is.TokensOut
		t, p, e := m.in.Latencies()
		ttfts = append(ttfts, t...)
		tpots = append(tpots, p...)
		e2es = append(e2es, e...)
		st.Instances = append(st.Instances, InstanceStats{
			Name:     m.in.Name(),
			Platform: m.in.Platform().Name,
			Role:     m.role.String(),
			Routed:   m.in.Routed(),
			Resumed:  is.Resumed,
			Serve:    *is,
		})
	}

	st.MeanTTFT, st.MaxTTFT = cluster.MeanMax(ttfts)
	pt := serve.Percentiles(ttfts, 50, 95, 99)
	st.P50TTFT, st.P95TTFT, st.P99TTFT = pt[0], pt[1], pt[2]
	st.MeanTPOT, _ = cluster.MeanMax(tpots)
	pp := serve.Percentiles(tpots, 50, 95)
	st.P50TPOT, st.P95TPOT = pp[0], pp[1]
	st.MeanE2E, st.MaxE2E = cluster.MeanMax(e2es)
	pe := serve.Percentiles(e2es, 50, 95)
	st.P50E2E, st.P95E2E = pe[0], pe[1]

	if st.Horizon > 0 {
		sec := st.Horizon.Seconds()
		st.Throughput = float64(st.Completed) / sec
		st.TokensPerSec = float64(tokensOut) / sec
	}
	st.SLOAttainment, st.Goodput = serve.SLOGoodput(ttfts, cfg.TTFTSLO, st.Horizon, st.Throughput)
	counts := make([]int, len(st.Instances))
	for i, is := range st.Instances {
		counts[i] = is.Routed + is.Resumed
	}
	st.LoadImbalance = cluster.ImbalanceCV(counts)
	if d.chaos != nil {
		d.chaos.Repins = d.prefillRouter.Repins() + d.decodeRouter.Repins()
		d.chaos.FinalActive = d.activeCount()
		st.Chaos = d.chaos
	}
	st.PrefillRouting = d.prefillRec.Stats()
	st.DecodeRouting = d.decodeRec.Stats()
	st.KVCache = serve.MergeKVCacheStats(caches)
	return st
}

// reconcile verifies the cross-pool request ledger: a violation means
// the fleet lost or duplicated a request across routing, handoff,
// transfer, resumption, preemption, or abandonment.
func (st *Stats) reconcile() error {
	if st.Offered != st.Rejected+st.Unroutable+st.Routed {
		return fmt.Errorf("disagg: front-door ledger broken: offered %d != rejected %d + unroutable %d + routed %d",
			st.Offered, st.Rejected, st.Unroutable, st.Routed)
	}
	if st.HandedOff != st.TransferDrops+st.Resumed {
		return fmt.Errorf("disagg: handoff ledger broken: %d handed off != %d dropped + %d resumed",
			st.HandedOff, st.TransferDrops, st.Resumed)
	}
	for i := range st.Instances {
		is := &st.Instances[i]
		// Everything an instance was given (routed arrivals + resumed
		// handoffs) must settle there (completed + abandoned + handed
		// off + killed in a crash).
		settled := is.Serve.Completed + is.Serve.Abandoned + is.Serve.HandedOff + is.Serve.Killed
		if settled != is.Routed+is.Resumed {
			return fmt.Errorf("disagg: %s settled %d of %d placed requests (routed %d + resumed %d)",
				is.Name, settled, is.Routed+is.Resumed, is.Routed, is.Resumed)
		}
	}
	return nil
}
