package disagg

import (
	"reflect"
	"strings"
	"testing"

	"github.com/skipsim/skip/internal/cluster"
	"github.com/skipsim/skip/internal/hw"
	"github.com/skipsim/skip/internal/serve"
	"github.com/skipsim/skip/internal/sim"
)

// TestDisaggStaticNilChaos: without autoscale or faults the churn
// ledger never allocates, keeping static reports bit-identical to the
// pre-lifecycle output.
func TestDisaggStaticNilChaos(t *testing.T) {
	st, err := Simulate(testConfig(), testWorkload(t, 20))
	if err != nil {
		t.Fatal(err)
	}
	if st.Chaos != nil {
		t.Errorf("static disaggregated fleet grew a chaos ledger: %+v", st.Chaos)
	}
}

// chaosConfig is a 2+2 fleet sized so crashes in either pool leave a
// survivor.
func chaosConfig() Config {
	c := testConfig()
	c.Groups = []Group{
		{Platform: hw.GH200(), Count: 2, Role: RolePrefill},
		{Platform: hw.IntelH100(), Count: 2, Role: RoleDecode},
	}
	return c
}

// TestDisaggCrashRequeuesBothPhases: a prefill-pool crash sends its
// victims (first token never served) back through the prefill front
// door — where they hand off again — while a decode-pool crash re-runs
// its mid-stream victims on the surviving decode instance. Both ledgers
// must balance and the fleet must still finish the work.
func TestDisaggCrashRequeuesBothPhases(t *testing.T) {
	cfg := chaosConfig()
	cfg.Faults = &cluster.FaultsConfig{Faults: []cluster.Fault{
		{At: 200 * sim.Millisecond, Kind: cluster.FaultCrash, Target: 0}, // prefill pool
		{At: 400 * sim.Millisecond, Kind: cluster.FaultCrash, Target: 2}, // decode pool
	}}
	var requeues []serve.Event
	cfg.Observer = func(e serve.Event) {
		if e.Type == serve.EventRequeued {
			requeues = append(requeues, e)
		}
	}
	st, err := Simulate(cfg, testWorkload(t, 40))
	if err != nil {
		t.Fatal(err)
	}
	c := st.Chaos
	if c == nil || c.Crashes != 2 {
		t.Fatalf("chaos ledger: %+v", c)
	}
	if c.Killed < 1 {
		t.Fatal("two mid-run crashes evicted nothing; move the fault instants into the busy window")
	}
	if c.Killed != c.Requeued+c.Dropped {
		t.Errorf("killed %d != requeued %d + dropped %d", c.Killed, c.Requeued, c.Dropped)
	}
	if c.FinalActive != 2 {
		t.Errorf("final active %d, want the 2 survivors", c.FinalActive)
	}
	if st.Completed < 1 {
		t.Error("nothing completed across the crashes")
	}
	if len(requeues) != c.Requeued {
		t.Errorf("observer saw %d requeued events, ledger says %d", len(requeues), c.Requeued)
	}
	// Requeue targets must match the victim's progress: nothing lands
	// back on a stopped member, and each landing host is in the right
	// pool for the request's phase (prefill victims on prefill|both,
	// mid-stream victims on decode|both — never a decode-only host for
	// a pre-first-token request).
	for _, e := range requeues {
		if strings.Contains(e.Instance, "#0") || strings.Contains(e.Instance, "#2") {
			t.Errorf("request %d requeued onto dead member %s", e.RequestID, e.Instance)
		}
	}
}

// TestDisaggLinkDegradeFault: degrading one (src,dst) link must raise
// the fleet's mean wire time versus a fault-free run and show up in the
// ledger, without losing work.
func TestDisaggLinkDegradeFault(t *testing.T) {
	reqs := testWorkload(t, 20)
	base, err := Simulate(testConfig(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Faults = &cluster.FaultsConfig{Faults: []cluster.Fault{
		{At: 0, Kind: cluster.FaultLinkDegrade, Target: 0, Dst: 1, Factor: 16},
	}}
	slow, err := Simulate(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Chaos == nil || slow.Chaos.DegradedLinks != 1 {
		t.Fatalf("degraded-link ledger: %+v", slow.Chaos)
	}
	if slow.MeanTransfer <= base.MeanTransfer {
		t.Errorf("16× degraded link: mean wire %v, not slower than the healthy %v",
			slow.MeanTransfer, base.MeanTransfer)
	}
	if slow.Completed != base.Completed {
		t.Errorf("degraded link completed %d vs %d — slowness must not lose work",
			slow.Completed, base.Completed)
	}
	// A link fault aimed at an out-of-range endpoint is a deterministic
	// no-op, not a panic.
	cfg = testConfig()
	cfg.Faults = &cluster.FaultsConfig{Faults: []cluster.Fault{
		{At: 0, Kind: cluster.FaultLinkDegrade, Target: 0, Dst: 99, Factor: 2},
	}}
	noop, err := Simulate(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if noop.Chaos.DegradedLinks != 0 {
		t.Errorf("out-of-range link fault counted: %+v", noop.Chaos)
	}
}

// TestOverlapFractionReducesStall: overlapping decode with the KV
// transfer tail must shrink the stall a request experiences without
// changing the wire time the link is busy for.
func TestOverlapFractionReducesStall(t *testing.T) {
	reqs := testWorkload(t, 20)
	base, err := Simulate(testConfig(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Transfer.OverlapFraction = 0.8
	over, err := Simulate(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if over.MeanTransfer != base.MeanTransfer {
		t.Errorf("overlap changed the wire time: %v vs %v (it may only hide it)",
			over.MeanTransfer, base.MeanTransfer)
	}
	if over.MeanTransferStall >= base.MeanTransferStall {
		t.Errorf("0.8 overlap: mean stall %v, not below the unoverlapped %v",
			over.MeanTransferStall, base.MeanTransferStall)
	}
	if over.Completed != base.Completed {
		t.Errorf("overlap completed %d vs %d", over.Completed, base.Completed)
	}

	// Exposed is exact: zero overlap returns the wire time unchanged
	// (bit-identity for legacy configs), fraction f exposes (1-f)·wire.
	var tm TransferModel
	if got := tm.Exposed(100 * sim.Millisecond); got != 100*sim.Millisecond {
		t.Errorf("zero overlap must expose the full wire time, got %v", got)
	}
	tm.OverlapFraction = 0.75
	if got := tm.Exposed(100 * sim.Millisecond); got != 25*sim.Millisecond {
		t.Errorf("0.75 overlap exposes %v of 100ms, want 25ms", got)
	}
	for _, bad := range []float64{-0.1, 1, 1.5} {
		cfg := testConfig()
		cfg.Transfer.OverlapFraction = bad
		if _, err := Simulate(cfg, reqs); err == nil {
			t.Errorf("overlap fraction %g accepted, want a validation error", bad)
		}
	}
}

// TestMidTransferDestinationDeath: a decode instance dying while a
// cache is on the wire to it must not strand the request — the staged
// cache re-ships from its source to a surviving decode instance,
// visible as more transfers than handoffs.
func TestMidTransferDestinationDeath(t *testing.T) {
	cfg := testConfig()
	// Throttle the wire so caches are in flight for ~100ms+ and the
	// crash window below reliably catches one mid-transfer.
	cfg.Transfer.BandwidthGBps = 0.05
	cfg.Faults = &cluster.FaultsConfig{Faults: []cluster.Fault{
		{At: 300 * sim.Millisecond, Kind: cluster.FaultCrash, Target: 1},
	}}
	st, err := Simulate(cfg, testWorkload(t, 20))
	if err != nil {
		t.Fatal(err)
	}
	c := st.Chaos
	if c == nil || c.Crashes != 1 {
		t.Fatalf("chaos ledger: %+v", c)
	}
	if st.Transfers <= st.HandedOff {
		t.Errorf("transfers %d vs handoffs %d: no re-ship happened; widen the transfer window",
			st.Transfers, st.HandedOff)
	}
	if st.Resumed != st.HandedOff-st.TransferDrops {
		t.Errorf("resumed %d != handed off %d - dropped %d", st.Resumed, st.HandedOff, st.TransferDrops)
	}
}

// TestDisaggAutoscaleGrowsDecodePool: transfer pressure (caches queued
// per active decode instance) must spin up decode capacity, and the
// spun-up instances must actually absorb resumes.
func TestDisaggAutoscaleGrowsDecodePool(t *testing.T) {
	cfg := testConfig()
	cfg.Groups = []Group{
		{Platform: hw.GH200(), Count: 2, Role: RolePrefill},
		{Platform: hw.IntelH100(), Count: 1, Role: RoleDecode},
	}
	cfg.Transfer.BandwidthGBps = 0.1 // slow wire: transfers queue up
	tmpl := testBase()
	tmpl.Platform = hw.IntelH100()
	cfg.Autoscale = &cluster.AutoscaleConfig{
		Template: tmpl, Signal: cluster.SignalTransferQueue,
		Target: 0.5, Max: 3,
		Interval: 20 * sim.Millisecond, Cooldown: 20 * sim.Millisecond,
		SpinUpDelay: 40 * sim.Millisecond,
	}
	cfg.AutoscaleRole = RoleDecode
	st, err := Simulate(cfg, testWorkload(t, 30))
	if err != nil {
		t.Fatal(err)
	}
	c := st.Chaos
	if c == nil {
		t.Fatal("autoscaled fleet has no chaos ledger")
	}
	if c.Joins < 1 {
		t.Fatalf("transfer pressure triggered %d joins, want ≥ 1", c.Joins)
	}
	var joinedResumes int
	for _, is := range st.Instances[3:] { // beyond the 3 base members
		if is.Role != "decode" {
			t.Errorf("autoscaled instance %s joined as %s, want decode", is.Name, is.Role)
		}
		joinedResumes += is.Resumed
	}
	if joinedResumes < 1 {
		t.Error("no handoff ever landed on a spun-up decode instance")
	}
	if st.Completed+st.Abandoned+st.TransferDrops != st.Routed {
		t.Errorf("ledger: completed %d + abandoned %d + transfer-dropped %d != routed %d",
			st.Completed, st.Abandoned, st.TransferDrops, st.Routed)
	}
}

// TestDisaggSeededChaosDeterministic: autoscaling plus seeded-random
// crashes over a disaggregated fleet must reproduce identical stats —
// churn ledger, transfer economics, and per-instance series included —
// run to run. CI runs this under -race as well.
func TestDisaggSeededChaosDeterministic(t *testing.T) {
	mk := func() Config {
		cfg := chaosConfig()
		tmpl := testBase()
		tmpl.Platform = hw.IntelH100()
		cfg.Autoscale = &cluster.AutoscaleConfig{
			Template: tmpl, Signal: cluster.SignalQueueDepth,
			Target: 2, Max: 4,
			Interval: 20 * sim.Millisecond, Cooldown: 20 * sim.Millisecond,
			SpinUpDelay: 40 * sim.Millisecond,
		}
		cfg.AutoscaleRole = RoleDecode
		cfg.Faults = &cluster.FaultsConfig{CrashRatePerSec: 3, Seed: 7}
		return cfg
	}
	a, err := Simulate(mk(), testWorkload(t, 40))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(mk(), testWorkload(t, 40))
	if err != nil {
		t.Fatal(err)
	}
	if a.Chaos == nil {
		t.Fatal("chaos run has no chaos ledger")
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("seeded disaggregated chaos must be deterministic:\n a: %+v\n b: %+v", a.Chaos, b.Chaos)
	}
}
