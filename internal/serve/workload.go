package serve

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/skipsim/skip/internal/sim"
)

// Workload generators: deterministic request streams with per-request
// prompt and output lengths matching serving scenarios — chat traffic,
// agentic multi-turn pipelines, and long-context summarization — plus
// arbitrary mixes. All randomness flows from one seeded source, so a
// (scenario, n, rate, seed) tuple always produces the identical stream.

// LengthDist is a clamped lognormal token-length distribution.
type LengthDist struct {
	// Mean is the distribution's arithmetic mean (tokens).
	Mean float64
	// Sigma is the lognormal shape parameter (0 degenerates to Mean).
	Sigma float64
	// Min and Max clamp samples (Max 0 means unclamped).
	Min, Max int64
}

// sample draws one length. The lognormal's mu is solved from the
// requested arithmetic mean: mean = exp(mu + sigma²/2).
func (d LengthDist) sample(rng *rand.Rand) int64 {
	if d.Mean <= 0 {
		return max(d.Min, 1)
	}
	v := d.Mean
	if d.Sigma > 0 {
		mu := math.Log(d.Mean) - d.Sigma*d.Sigma/2
		v = math.Exp(rng.NormFloat64()*d.Sigma + mu)
	}
	n := int64(v + 0.5)
	if n < d.Min {
		n = d.Min
	}
	if n < 1 {
		n = 1
	}
	if d.Max > 0 && n > d.Max {
		n = d.Max
	}
	return n
}

// Scenario names a workload shape.
type Scenario int

const (
	// ScenarioChat: conversational traffic — moderate prompts, moderate
	// generations (the interactive regime where TTFT and TPOT both
	// matter).
	ScenarioChat Scenario = iota
	// ScenarioAgentic: tool-calling agents — prompts that grow with the
	// turn index as context accumulates, short structured outputs, and
	// bursty arrivals (turns of one trajectory arrive back-to-back).
	ScenarioAgentic
	// ScenarioSummarize: long-context summarization — long prompts,
	// short outputs; prefill- and KV-capacity-dominated.
	ScenarioSummarize
	// ScenarioMixed: a production-style blend of the three.
	ScenarioMixed
)

func (s Scenario) String() string {
	switch s {
	case ScenarioChat:
		return "chat"
	case ScenarioAgentic:
		return "agentic"
	case ScenarioSummarize:
		return "summarize"
	case ScenarioMixed:
		return "mixed"
	default:
		return fmt.Sprintf("scenario(%d)", int(s))
	}
}

// ParseScenario maps a CLI name to a Scenario.
func ParseScenario(name string) (Scenario, error) {
	switch name {
	case "chat":
		return ScenarioChat, nil
	case "agentic":
		return ScenarioAgentic, nil
	case "summarize", "summarization":
		return ScenarioSummarize, nil
	case "mixed", "mix":
		return ScenarioMixed, nil
	}
	return 0, fmt.Errorf("serve: unknown scenario %q (have chat|agentic|summarize|mixed)", name)
}

// Scenarios lists the generator presets in presentation order.
func Scenarios() []Scenario {
	return []Scenario{ScenarioChat, ScenarioAgentic, ScenarioSummarize, ScenarioMixed}
}

// Workload parameterizes a request-stream generator.
type Workload struct {
	Scenario   Scenario
	N          int
	RatePerSec float64
	Seed       int64
	// Prompt / Output override the scenario's length presets when
	// non-zero-valued.
	Prompt, Output LengthDist
	// Turns is the agentic trajectory length (default 4).
	Turns int
	// ContextGrowth is the per-turn prompt growth in tokens for agentic
	// trajectories (default 256).
	ContextGrowth int64
}

// preset fills the scenario's default length distributions.
func (w *Workload) preset() (prompt, output LengthDist) {
	switch w.Scenario {
	case ScenarioAgentic:
		prompt = LengthDist{Mean: 512, Sigma: 0.4, Min: 64, Max: 4096}
		output = LengthDist{Mean: 48, Sigma: 0.5, Min: 4, Max: 256}
	case ScenarioSummarize:
		prompt = LengthDist{Mean: 3072, Sigma: 0.5, Min: 1024, Max: 8192}
		output = LengthDist{Mean: 96, Sigma: 0.4, Min: 16, Max: 512}
	default: // chat and the mixed base
		prompt = LengthDist{Mean: 384, Sigma: 0.8, Min: 16, Max: 4096}
		output = LengthDist{Mean: 128, Sigma: 0.7, Min: 8, Max: 1024}
	}
	if w.Prompt != (LengthDist{}) {
		prompt = w.Prompt
	}
	if w.Output != (LengthDist{}) {
		output = w.Output
	}
	return prompt, output
}

// Generate produces the workload's request stream, sorted by arrival.
func (w Workload) Generate() ([]Request, error) {
	if w.N <= 0 {
		return nil, fmt.Errorf("serve: workload needs a positive request count, got %d", w.N)
	}
	if w.RatePerSec <= 0 {
		return nil, fmt.Errorf("serve: workload needs a positive rate, got %g req/s", w.RatePerSec)
	}
	rng := rand.New(rand.NewSource(w.Seed))
	prompt, output := w.preset()

	var reqs []Request
	switch w.Scenario {
	case ScenarioAgentic:
		reqs = w.generateAgentic(rng, prompt, output)
	case ScenarioMixed:
		// A production blend: 60% chat, 25% agentic-style single turns
		// with grown context, 15% summarization. Caller overrides apply
		// to the chat slice (prompt and output come from the outer
		// preset, which honors them).
		agPrompt, agOutput := (&Workload{Scenario: ScenarioAgentic}).preset()
		suPrompt, suOutput := (&Workload{Scenario: ScenarioSummarize}).preset()
		var t float64
		for i := 0; i < w.N; i++ {
			t += rng.ExpFloat64() / w.RatePerSec
			r := Request{ID: i, Arrival: sim.Time(t * 1e9)}
			switch x := rng.Float64(); {
			case x < 0.60:
				r.PromptLen, r.OutputLen = prompt.sample(rng), output.sample(rng)
			case x < 0.85:
				r.PromptLen, r.OutputLen = agPrompt.sample(rng), agOutput.sample(rng)
			default:
				r.PromptLen, r.OutputLen = suPrompt.sample(rng), suOutput.sample(rng)
			}
			reqs = append(reqs, r)
		}
	default:
		var t float64
		for i := 0; i < w.N; i++ {
			t += rng.ExpFloat64() / w.RatePerSec
			reqs = append(reqs, Request{
				ID:        i,
				Arrival:   sim.Time(t * 1e9),
				PromptLen: prompt.sample(rng),
				OutputLen: output.sample(rng),
			})
		}
	}
	sort.Slice(reqs, func(i, j int) bool { return reqs[i].Arrival < reqs[j].Arrival })
	return reqs, nil
}

// generateAgentic emits multi-turn trajectories: each trajectory starts
// at a Poisson instant, then its turns follow back-to-back with short
// think-time gaps while the prompt grows with accumulated context.
func (w Workload) generateAgentic(rng *rand.Rand, prompt, output LengthDist) []Request {
	turns := w.Turns
	if turns <= 0 {
		turns = 4
	}
	growth := w.ContextGrowth
	if growth <= 0 {
		growth = 256
	}
	var reqs []Request
	var t float64
	id := 0
	session := int64(0)
	for id < w.N {
		// Trajectory starts are Poisson at rate/turns so the offered
		// request rate stays ≈ RatePerSec.
		t += rng.ExpFloat64() / (w.RatePerSec / float64(turns))
		turnAt := t
		base := prompt.sample(rng)
		session++ // 1-based: zero stays "no session"
		for k := 0; k < turns && id < w.N; k++ {
			reqs = append(reqs, Request{
				ID:        id,
				Arrival:   sim.Time(turnAt * 1e9),
				PromptLen: clampLen(base+int64(k)*growth, prompt.Max),
				OutputLen: output.sample(rng),
				SessionID: session,
			})
			id++
			// Tool-execution think time between turns: 50–250 ms.
			turnAt += 0.05 + 0.2*rng.Float64()
		}
	}
	return reqs
}

func clampLen(n, max int64) int64 {
	if max > 0 && n > max {
		return max
	}
	if n < 1 {
		return 1
	}
	return n
}
