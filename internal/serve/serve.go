// Package serve simulates an inference server in front of the platform
// simulator: requests arrive over time, a batching policy groups them,
// and batches execute with the engine's simulated latencies. This
// operationalizes the paper's §II-A discussion — "batch size selection
// profoundly impacts the user experience", large batches buy throughput
// at the cost of individual latency, and serving systems (Orca, vLLM)
// chase BS=1-like latency at high throughput — and its contribution 5:
// operating inside the balanced batch region instead of chasing GPU
// saturation.
//
// Two simulator generations coexist:
//
//   - StaticBatch / GreedyBatch: the legacy prefill-only model. Whole
//     batches run to completion; TTFT is queueing plus batched prefill.
//   - ContinuousBatch / ChunkedPrefill: a discrete-event simulator on
//     sim.Calendar with iteration-level (Orca-style) scheduling, a
//     KV-cache capacity model gating admission, and decode-phase
//     execution — see continuous.go.
package serve

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/skipsim/skip/internal/engine"
	"github.com/skipsim/skip/internal/hw"
	"github.com/skipsim/skip/internal/kvcache"
	"github.com/skipsim/skip/internal/models"
	"github.com/skipsim/skip/internal/sim"
)

// Request is one inference request arriving at the server.
type Request struct {
	ID      int
	Arrival sim.Time
	// PromptLen is the request's input length in tokens. Zero falls back
	// to Config.Seq (every legacy caller's behavior).
	PromptLen int64
	// OutputLen is how many tokens the request generates. Zero falls
	// back to Config.DefaultOutputLen (itself defaulting to 1). The
	// legacy prefill-only policies ignore it.
	OutputLen int64
	// SessionID groups requests belonging to one conversation or agent
	// trajectory so a session-affinity router can pin them to one
	// instance (KV reuse locality). Zero means no session.
	SessionID int64
}

// Policy selects how the server forms batches.
type Policy int

const (
	// StaticBatch waits until exactly BatchSize requests are queued (or
	// MaxWait expires for a partial batch), then runs them together —
	// the throughput-oriented configuration of the paper's large-batch
	// discussion. Legacy prefill-only model.
	StaticBatch Policy = iota
	// GreedyBatch takes whatever is queued (up to MaxBatch) the moment
	// the device frees — batch-level continuous batching. Legacy
	// prefill-only model.
	GreedyBatch
	// ContinuousBatch schedules at iteration granularity (Orca-style):
	// new requests join the running batch between decode steps, finished
	// requests leave immediately, and a KV-cache capacity model gates
	// admission. Simulated on the discrete-event calendar.
	ContinuousBatch
	// ChunkedPrefill is ContinuousBatch with long prompts split into
	// PrefillChunk-token chunks so prefill work interleaves with decode
	// steps instead of stalling them (Sarathi/vLLM-style).
	ChunkedPrefill
)

func (p Policy) String() string {
	switch p {
	case StaticBatch:
		return "static"
	case GreedyBatch:
		return "greedy"
	case ContinuousBatch:
		return "continuous"
	case ChunkedPrefill:
		return "chunked-prefill"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy maps a CLI name to a Policy.
func ParsePolicy(name string) (Policy, error) {
	switch name {
	case "static":
		return StaticBatch, nil
	case "greedy":
		return GreedyBatch, nil
	case "continuous":
		return ContinuousBatch, nil
	case "chunked", "chunked-prefill":
		return ChunkedPrefill, nil
	}
	return 0, fmt.Errorf("serve: unknown policy %q (have static|greedy|continuous|chunked-prefill)", name)
}

// Config parameterizes a serving simulation.
type Config struct {
	Platform *hw.Platform
	Model    *models.Config
	// Seq is the default prompt length for requests with PromptLen == 0.
	Seq    int64
	Mode   engine.Mode
	Policy Policy
	// BatchSize is the target batch for StaticBatch.
	BatchSize int
	// MaxBatch caps GreedyBatch group size and the ContinuousBatch /
	// ChunkedPrefill running-set size.
	MaxBatch int
	// MaxWait bounds how long StaticBatch holds a partial batch.
	MaxWait sim.Time

	// Continuous-batching knobs (ContinuousBatch / ChunkedPrefill).

	// DefaultOutputLen is the generation length for requests with
	// OutputLen == 0 (default 1: prefill-equivalent).
	DefaultOutputLen int64
	// PrefillChunk is the chunk size (tokens) for ChunkedPrefill
	// (default 512).
	PrefillChunk int64
	// KVMemoryUtil is the fraction of GPU HBM usable for weights + KV
	// cache (default 0.9, vLLM's gpu_memory_utilization).
	KVMemoryUtil float64
	// KVCapacityBytes overrides the derived KV budget when positive
	// (tests use it to force tiny caches).
	KVCapacityBytes float64
	// TTFTSLO is the time-to-first-token service-level objective used
	// for goodput accounting (0 disables: goodput == throughput).
	TTFTSLO sim.Time
	// AbandonAfter drops requests never admitted within this window of
	// arrival (0: never). Admission cancels the request's calendar
	// timer for good — a request that started streaming output is
	// served to completion even if KV pressure later preempts and
	// recomputes it.
	AbandonAfter sim.Time
	// LatencyBucket quantizes (seq, kvLen) when caching engine latencies
	// (default 64 tokens). Coarser buckets run faster, finer buckets are
	// more precise.
	LatencyBucket int64
	// KVCache, when set, gives the continuous policies a block-level
	// prefix cache (see internal/kvcache): session-bearing requests pin
	// their prompt-prefix blocks at admission, cached blocks grant
	// prefill reuse credit (shortening TTFT and the admission
	// footprint), and host-tier restores are priced through the
	// platform's interconnect model. The config is shared across a
	// fleet's instances but each instance owns a private cache. Nil —
	// the default — leaves serving exactly as before.
	KVCache *KVCacheConfig
	// Observer, when set, receives lifecycle events (arrival, admission,
	// preemption, first token, completion, abandonment) from the
	// continuous policies as they happen. The legacy prefill-only
	// policies do not emit events.
	Observer Observer
	// EmitStateSamples adds an EventStateSample (queue depth, running
	// batch, KV fraction, cumulative cache counters) to the observer
	// stream at every scheduling event — the windowed timeline
	// aggregator's feed. Off by default: existing event streams are
	// unchanged.
	EmitStateSamples bool
	// SampleWindow, when positive, downsamples the Stats
	// KVOccupancy/QueueDepth series to one time-weighted mean point per
	// window instead of one point per scheduling event — bounding a
	// long run's report size. Zero keeps the legacy per-event series
	// (and byte-identical reports).
	SampleWindow sim.Time
}

// KVCacheConfig sizes the optional block-level prefix cache. Pinned
// cache blocks live in their own block pool — they are not charged
// against the instance's byte-denominated KV budget, which carries only
// each request's uncached remainder.
type KVCacheConfig struct {
	// BlockTokens is the tokens per cache block (default 32).
	BlockTokens int64
	// DeviceBlocks is the device-tier capacity in blocks. Required,
	// positive.
	DeviceBlocks int
	// HostSpillBlocks sizes the host-memory spill tier (0 disables it);
	// restores from it cost Platform.TransferTime over the restored
	// bytes — near-free on unified-memory platforms, interconnect-priced
	// on discrete ones.
	HostSpillBlocks int
	// Policy is the eviction order (default kvcache.LRU).
	Policy kvcache.Policy
}

// KVCacheStats is the per-instance (or fleet-aggregated) prefix-cache
// ledger. Counts reconcile exactly:
//
//	Lookups == Hits + Restored + Misses + Unallocated
//	Evictions ≤ Misses + Restored (every eviction had a placement)
//	Spills ≤ Evictions, HostEvictions ≤ Spills
type KVCacheStats struct {
	// Config echo, so a report names the cache it measured.
	BlockTokens     int64
	DeviceBlocks    int
	HostSpillBlocks int
	Policy          string

	// Block ledger (counts in blocks; see kvcache.Stats).
	Lookups       int64
	Hits          int64
	Restored      int64
	Misses        int64
	Unallocated   int64
	Evictions     int64
	Spills        int64
	HostEvictions int64

	// ReusedTokens is the total prefill work skipped via cached
	// prefixes, in tokens.
	ReusedTokens int64
	// RestoredBytes / RestoreStall price the host-tier restores: bytes
	// copied back to device and the total interconnect stall charged.
	RestoredBytes float64
	RestoreStall  sim.Time
	// HitRate is (Hits+Restored)/Lookups (0 when no lookups).
	HitRate float64
}

// Reconcile checks the cache ledger's conservation laws; nil receivers
// (cache off) pass trivially. The fleet layers run it before returning
// stats, so a broken ledger fails the simulation instead of shipping
// wrong numbers.
func (k *KVCacheStats) Reconcile() error {
	if k == nil {
		return nil
	}
	if k.Lookups != k.Hits+k.Restored+k.Misses+k.Unallocated {
		return fmt.Errorf("kv cache ledger broken: lookups %d != hits %d + restored %d + misses %d + unallocated %d",
			k.Lookups, k.Hits, k.Restored, k.Misses, k.Unallocated)
	}
	if k.Evictions > k.Misses+k.Restored {
		return fmt.Errorf("kv cache ledger broken: evictions %d exceed device placements (misses %d + restored %d)",
			k.Evictions, k.Misses, k.Restored)
	}
	if k.Spills > k.Evictions {
		return fmt.Errorf("kv cache ledger broken: spills %d exceed evictions %d", k.Spills, k.Evictions)
	}
	if k.HostEvictions > k.Spills {
		return fmt.Errorf("kv cache ledger broken: host evictions %d exceed spills %d", k.HostEvictions, k.Spills)
	}
	return nil
}

// MergeKVCacheStats sums per-instance cache ledgers into one aggregate,
// echoing the first non-nil ledger's configuration and recomputing the
// hit rate. Nil when every part is nil, so cache-off fleets keep the
// section absent.
func MergeKVCacheStats(parts []*KVCacheStats) *KVCacheStats {
	var out *KVCacheStats
	for _, p := range parts {
		if p == nil {
			continue
		}
		if out == nil {
			cp := *p
			out = &cp
			continue
		}
		out.Lookups += p.Lookups
		out.Hits += p.Hits
		out.Restored += p.Restored
		out.Misses += p.Misses
		out.Unallocated += p.Unallocated
		out.Evictions += p.Evictions
		out.Spills += p.Spills
		out.HostEvictions += p.HostEvictions
		out.ReusedTokens += p.ReusedTokens
		out.RestoredBytes += p.RestoredBytes
		out.RestoreStall += p.RestoreStall
	}
	if out != nil {
		out.HitRate = 0
		if out.Lookups > 0 {
			out.HitRate = float64(out.Hits+out.Restored) / float64(out.Lookups)
		}
	}
	return out
}

func (c *Config) validate() error {
	switch {
	case c.Platform == nil || c.Model == nil:
		return fmt.Errorf("serve: config needs a platform and a model")
	case c.Seq <= 0:
		return fmt.Errorf("serve: sequence length must be positive")
	case c.Policy == StaticBatch && c.BatchSize <= 0:
		return fmt.Errorf("serve: static policy needs a positive batch size")
	case c.Policy == GreedyBatch && c.MaxBatch <= 0:
		return fmt.Errorf("serve: greedy policy needs a positive max batch")
	case (c.Policy == ContinuousBatch || c.Policy == ChunkedPrefill) && c.MaxBatch <= 0:
		return fmt.Errorf("serve: %s policy needs a positive max batch", c.Policy)
	case c.KVMemoryUtil < 0 || c.KVMemoryUtil > 1:
		return fmt.Errorf("serve: KVMemoryUtil must be in [0,1], got %g", c.KVMemoryUtil)
	}
	return nil
}

// SamplePoint is one (time, value) observation of a server state series.
type SamplePoint struct {
	T sim.Time
	V float64
}

// Stats summarizes a serving simulation. The legacy prefill-only
// policies populate the TTFT block only; the continuous policies fill
// every field.
type Stats struct {
	Requests int
	// Completed counts requests that finished generation (== Requests
	// for the legacy policies, which have no abandonment).
	Completed int
	// Abandoned counts requests dropped after waiting AbandonAfter.
	Abandoned int
	// HandedOff counts prefill completions shipped to a decode instance
	// (disaggregated pools only; such requests settle here without
	// counting as Completed).
	HandedOff int
	// Resumed counts requests this instance picked up mid-stream from
	// another instance's prefill (disaggregated pools only).
	Resumed int
	// Killed counts in-flight requests evicted by an instance kill
	// (dynamic fleets only; such requests settle here without counting
	// as Completed — the fleet layer requeues or drops them).
	Killed int `json:",omitempty"`
	// Preemptions counts KV-pressure evictions of running requests.
	Preemptions int
	Horizon     sim.Time // last completion time

	// TTFT: arrival → first output token.
	MeanTTFT sim.Time
	P50TTFT  sim.Time
	P95TTFT  sim.Time
	P99TTFT  sim.Time
	MaxTTFT  sim.Time

	// TPOT: mean inter-token time per request, aggregated (continuous
	// policies only; zero when no request decodes more than one token).
	MeanTPOT sim.Time
	P50TPOT  sim.Time
	P95TPOT  sim.Time

	// E2E: arrival → final token (continuous policies only).
	MeanE2E sim.Time
	P50E2E  sim.Time
	P95E2E  sim.Time
	MaxE2E  sim.Time

	Throughput float64 // completed requests per second over the horizon
	// TokensOut counts generated tokens delivered to users (continuous
	// only; recomputed-after-preemption tokens count once).
	TokensOut int64
	// TokensPerSec is generated-token throughput (continuous only).
	TokensPerSec float64
	// Goodput is completed-requests-per-second meeting TTFTSLO
	// (== Throughput when no SLO is set).
	Goodput float64
	// SLOAttainment is the fraction of completed requests meeting
	// TTFTSLO (1 when no SLO is set).
	SLOAttainment float64

	// MeanBatch is the average executed batch size — where on the
	// latency/throughput curve the policy actually operated.
	MeanBatch float64
	// Batches counts executed batches (legacy) or iterations
	// (continuous).
	Batches int

	// KV-cache occupancy (continuous policies only).
	KVCapacityBytes float64
	PeakKVBytes     float64
	PeakKVFrac      float64
	MeanKVFrac      float64 // time-weighted over the horizon
	// KVOccupancy samples the KV-used fraction at every scheduling
	// event.
	KVOccupancy []SamplePoint
	// QueueDepth samples the waiting-queue length at every scheduling
	// event.
	QueueDepth    []SamplePoint
	MaxQueueDepth int

	// KVCache is the prefix-cache ledger, present only when the
	// instance was configured with one — reports without a cache stay
	// bit-identical to the pre-cache output.
	KVCache *KVCacheStats `json:",omitempty"`
}

// latencyModel caches per-batch-size prefill latency from the engine:
// the legacy serving layer treats the device as busy for TTFT(batch)
// per batch.
type latencyModel struct {
	cfg   *Config
	cache map[int]sim.Time
}

func (lm *latencyModel) ttft(batch int) (sim.Time, error) {
	if t, ok := lm.cache[batch]; ok {
		return t, nil
	}
	res, err := engine.Run(engine.Request{
		Platform: lm.cfg.Platform, Model: lm.cfg.Model,
		Batch: int64(batch), Seq: lm.cfg.Seq, Mode: lm.cfg.Mode,
	})
	if err != nil {
		return 0, err
	}
	lm.cache[batch] = res.TTFT
	return res.TTFT, nil
}

// Simulate runs the server over the request stream (sorted by arrival)
// and returns latency statistics. Legacy policies use a deterministic
// event walk where the device serves one batch at a time; continuous
// policies run the calendar-driven iteration-level simulator.
func Simulate(cfg Config, requests []Request) (*Stats, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(requests) == 0 {
		return nil, fmt.Errorf("serve: no requests")
	}
	reqs := make([]Request, len(requests))
	copy(reqs, requests)
	sort.Slice(reqs, func(i, j int) bool { return reqs[i].Arrival < reqs[j].Arrival })

	if cfg.Policy == ContinuousBatch || cfg.Policy == ChunkedPrefill {
		return simulateContinuous(cfg, reqs)
	}

	lm := &latencyModel{cfg: &cfg, cache: make(map[int]sim.Time)}
	stats := &Stats{Requests: len(reqs)}
	latencies := make([]sim.Time, 0, len(reqs))

	var deviceFree sim.Time
	var totalBatch int
	next := 0
	for next < len(reqs) {
		// The server considers the queue when the device frees or when
		// enough requests have arrived.
		now := sim.MaxTime(deviceFree, reqs[next].Arrival)

		var batch int
		switch cfg.Policy {
		case StaticBatch:
			// Wait for BatchSize arrivals or the wait bound.
			want := cfg.BatchSize
			if next+want > len(reqs) {
				want = len(reqs) - next
			}
			fullAt := reqs[next+want-1].Arrival
			deadline := reqs[next].Arrival + cfg.MaxWait
			start := sim.MaxTime(now, fullAt)
			if cfg.MaxWait > 0 && deadline < start {
				// Dispatch a partial batch at the deadline: count the
				// arrivals available by then.
				start = sim.MaxTime(now, deadline)
				batch = 0
				for next+batch < len(reqs) && reqs[next+batch].Arrival <= start && batch < cfg.BatchSize {
					batch++
				}
				if batch == 0 {
					batch = 1
					start = sim.MaxTime(now, reqs[next].Arrival)
				}
				now = start
			} else {
				batch = want
				now = start
			}
		case GreedyBatch:
			batch = 0
			for next+batch < len(reqs) && reqs[next+batch].Arrival <= now && batch < cfg.MaxBatch {
				batch++
			}
			if batch == 0 {
				batch = 1
				now = reqs[next].Arrival
			}
		}

		dur, err := lm.ttft(batch)
		if err != nil {
			return nil, err
		}
		done := now + dur
		for i := 0; i < batch; i++ {
			latencies = append(latencies, done-reqs[next+i].Arrival)
		}
		next += batch
		deviceFree = done
		totalBatch += batch
		stats.Batches++
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	stats.Completed = stats.Requests
	stats.MeanTTFT = meanTime(latencies)
	stats.P50TTFT = percentileSorted(latencies, 50)
	stats.P95TTFT = percentileSorted(latencies, 95)
	stats.P99TTFT = percentileSorted(latencies, 99)
	stats.MaxTTFT = latencies[len(latencies)-1]
	stats.Horizon = deviceFree
	stats.Throughput = float64(stats.Requests) / stats.Horizon.Seconds()
	stats.SLOAttainment, stats.Goodput = SLOGoodput(latencies, cfg.TTFTSLO, stats.Horizon, stats.Throughput)
	stats.MeanBatch = float64(totalBatch) / float64(stats.Batches)
	return stats, nil
}

// PoissonArrivals generates n requests with exponential inter-arrival
// times at the given rate (requests/second), deterministically from the
// seed. n and ratePerSec must be positive.
func PoissonArrivals(n int, ratePerSec float64, seed int64) ([]Request, error) {
	if n <= 0 {
		return nil, fmt.Errorf("serve: PoissonArrivals needs a positive request count, got %d", n)
	}
	if ratePerSec <= 0 {
		return nil, fmt.Errorf("serve: PoissonArrivals needs a positive rate, got %g req/s", ratePerSec)
	}
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]Request, n)
	var t float64 // seconds
	for i := range reqs {
		t += rng.ExpFloat64() / ratePerSec
		reqs[i] = Request{ID: i, Arrival: sim.Time(t * 1e9)}
	}
	return reqs, nil
}

// UniformArrivals generates n requests at a fixed positive interval.
// Like PoissonArrivals, invalid arguments return an error: both
// generators feed the same simulation pipelines and callers handle
// their failures uniformly.
func UniformArrivals(n int, interval sim.Time) ([]Request, error) {
	if n <= 0 {
		return nil, fmt.Errorf("serve: UniformArrivals needs a positive request count, got %d", n)
	}
	if interval <= 0 {
		return nil, fmt.Errorf("serve: UniformArrivals needs a positive interval, got %v", interval)
	}
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{ID: i, Arrival: sim.Time(i) * interval}
	}
	return reqs, nil
}
