// Package serve simulates an inference server in front of the platform
// simulator: requests arrive over time, a batching policy groups them,
// and each batch executes with the engine's simulated prefill latency.
// This operationalizes the paper's §II-A discussion — "batch size
// selection profoundly impacts the user experience", large batches buy
// throughput at the cost of individual latency, and serving systems
// (Orca, vLLM) chase BS=1-like latency at high throughput — and its
// contribution 5: operating inside the balanced batch region instead of
// chasing GPU saturation.
package serve

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/skipsim/skip/internal/engine"
	"github.com/skipsim/skip/internal/hw"
	"github.com/skipsim/skip/internal/models"
	"github.com/skipsim/skip/internal/sim"
)

// Request is one inference request arriving at the server.
type Request struct {
	ID      int
	Arrival sim.Time
}

// Policy selects how the server forms batches.
type Policy int

const (
	// StaticBatch waits until exactly BatchSize requests are queued (or
	// MaxWait expires for a partial batch), then runs them together —
	// the throughput-oriented configuration of the paper's large-batch
	// discussion.
	StaticBatch Policy = iota
	// GreedyBatch takes whatever is queued (up to MaxBatch) the moment
	// the device frees — the continuous-batching-style policy that
	// approaches low-batch latency at low load and scales batches with
	// pressure, in the spirit of vLLM/Orca.
	GreedyBatch
)

func (p Policy) String() string {
	if p == StaticBatch {
		return "static"
	}
	return "greedy"
}

// Config parameterizes a serving simulation.
type Config struct {
	Platform *hw.Platform
	Model    *models.Config
	Seq      int64
	Mode     engine.Mode
	Policy   Policy
	// BatchSize is the target batch for StaticBatch.
	BatchSize int
	// MaxBatch caps GreedyBatch group size.
	MaxBatch int
	// MaxWait bounds how long StaticBatch holds a partial batch.
	MaxWait sim.Time
}

func (c *Config) validate() error {
	switch {
	case c.Platform == nil || c.Model == nil:
		return fmt.Errorf("serve: config needs a platform and a model")
	case c.Seq <= 0:
		return fmt.Errorf("serve: sequence length must be positive")
	case c.Policy == StaticBatch && c.BatchSize <= 0:
		return fmt.Errorf("serve: static policy needs a positive batch size")
	case c.Policy == GreedyBatch && c.MaxBatch <= 0:
		return fmt.Errorf("serve: greedy policy needs a positive max batch")
	}
	return nil
}

// Stats summarizes a serving simulation.
type Stats struct {
	Requests   int
	Horizon    sim.Time // last completion time
	MeanTTFT   sim.Time // arrival → batch completion, averaged
	P50TTFT    sim.Time
	P95TTFT    sim.Time
	MaxTTFT    sim.Time
	Throughput float64 // requests per second over the horizon
	// MeanBatch is the average executed batch size — where on the
	// latency/throughput curve the policy actually operated.
	MeanBatch float64
	Batches   int
}

// latencyModel caches per-batch-size prefill latency from the engine:
// the serving layer treats the device as busy for TTFT(batch) per batch.
type latencyModel struct {
	cfg   *Config
	cache map[int]sim.Time
}

func (lm *latencyModel) ttft(batch int) (sim.Time, error) {
	if t, ok := lm.cache[batch]; ok {
		return t, nil
	}
	res, err := engine.Run(engine.Request{
		Platform: lm.cfg.Platform, Model: lm.cfg.Model,
		Batch: int64(batch), Seq: lm.cfg.Seq, Mode: lm.cfg.Mode,
	})
	if err != nil {
		return 0, err
	}
	lm.cache[batch] = res.TTFT
	return res.TTFT, nil
}

// Simulate runs the server over the request stream (sorted by arrival)
// and returns latency statistics. The simulation is a deterministic
// event walk: the device serves one batch at a time (the single-stream
// regime the paper profiles).
func Simulate(cfg Config, requests []Request) (*Stats, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(requests) == 0 {
		return nil, fmt.Errorf("serve: no requests")
	}
	reqs := make([]Request, len(requests))
	copy(reqs, requests)
	sort.Slice(reqs, func(i, j int) bool { return reqs[i].Arrival < reqs[j].Arrival })

	lm := &latencyModel{cfg: &cfg, cache: make(map[int]sim.Time)}
	stats := &Stats{Requests: len(reqs)}
	latencies := make([]sim.Time, 0, len(reqs))

	var deviceFree sim.Time
	var totalBatch int
	next := 0
	for next < len(reqs) {
		// The server considers the queue when the device frees or when
		// enough requests have arrived.
		now := sim.MaxTime(deviceFree, reqs[next].Arrival)

		var batch int
		switch cfg.Policy {
		case StaticBatch:
			// Wait for BatchSize arrivals or the wait bound.
			want := cfg.BatchSize
			if next+want > len(reqs) {
				want = len(reqs) - next
			}
			fullAt := reqs[next+want-1].Arrival
			deadline := reqs[next].Arrival + cfg.MaxWait
			start := sim.MaxTime(now, fullAt)
			if cfg.MaxWait > 0 && deadline < start {
				// Dispatch a partial batch at the deadline: count the
				// arrivals available by then.
				start = sim.MaxTime(now, deadline)
				batch = 0
				for next+batch < len(reqs) && reqs[next+batch].Arrival <= start && batch < cfg.BatchSize {
					batch++
				}
				if batch == 0 {
					batch = 1
					start = sim.MaxTime(now, reqs[next].Arrival)
				}
				now = start
			} else {
				batch = want
				now = start
			}
		case GreedyBatch:
			batch = 0
			for next+batch < len(reqs) && reqs[next+batch].Arrival <= now && batch < cfg.MaxBatch {
				batch++
			}
			if batch == 0 {
				batch = 1
				now = reqs[next].Arrival
			}
		}

		dur, err := lm.ttft(batch)
		if err != nil {
			return nil, err
		}
		done := now + dur
		for i := 0; i < batch; i++ {
			latencies = append(latencies, done-reqs[next+i].Arrival)
		}
		next += batch
		deviceFree = done
		totalBatch += batch
		stats.Batches++
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	var sum sim.Time
	for _, l := range latencies {
		sum += l
	}
	stats.MeanTTFT = sum / sim.Time(len(latencies))
	stats.P50TTFT = latencies[len(latencies)/2]
	stats.P95TTFT = latencies[(len(latencies)*95)/100]
	stats.MaxTTFT = latencies[len(latencies)-1]
	stats.Horizon = deviceFree
	stats.Throughput = float64(stats.Requests) / stats.Horizon.Seconds()
	stats.MeanBatch = float64(totalBatch) / float64(stats.Batches)
	return stats, nil
}

// PoissonArrivals generates n requests with exponential inter-arrival
// times at the given rate (requests/second), deterministically from the
// seed.
func PoissonArrivals(n int, ratePerSec float64, seed int64) []Request {
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]Request, n)
	var t float64 // seconds
	for i := range reqs {
		t += rng.ExpFloat64() / ratePerSec
		reqs[i] = Request{ID: i, Arrival: sim.Time(t * 1e9)}
	}
	return reqs
}

// UniformArrivals generates n requests at a fixed interval.
func UniformArrivals(n int, interval sim.Time) []Request {
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{ID: i, Arrival: sim.Time(i) * interval}
	}
	return reqs
}
