package serve

import (
	"fmt"
	"sort"

	"github.com/skipsim/skip/internal/engine"
	"github.com/skipsim/skip/internal/kvcache"
	"github.com/skipsim/skip/internal/models"
	"github.com/skipsim/skip/internal/sim"
)

// The continuous-batching simulator: a discrete-event loop on
// sim.Calendar implementing iteration-level (Orca-style) scheduling.
// Each iteration the engine processes, for every running request, one
// unit of work — a prefill chunk while the prompt is unconsumed, one
// decode token afterwards. Requests join the running batch between
// iterations as KV-cache capacity allows and leave the moment they
// finish, so the batch composition tracks the offered load instead of
// being frozen at dispatch time (the legacy policies' run-to-completion
// regime).
//
// KV-cache capacity model: each cached token costs
// 2 (K and V) × Layers × KVDim × 2 bytes (fp16); the budget is the
// GPU's HBM × KVMemoryUtil minus the fp16 weights. Admission reserves
// the prompt's KV up front (queue-on-full, FIFO head-of-line), and
// decode growth that overflows the budget preempts the youngest running
// request vLLM-recompute-style: its KV is released and it re-queues at
// the head of the wait queue to be recomputed.

// kvBytesPerToken is the KV-cache cost of one cached token position:
// a key and a value vector of KVDim halves per layer.
func kvBytesPerToken(m *models.Config) float64 {
	return float64(2 * m.Layers * m.KVDim() * 2)
}

// KVBytesPerToken is the per-cached-token KV-cache footprint of a model
// — what one token position costs in HBM, and therefore what one token
// position costs to ship between instances in a disaggregated handoff.
func KVBytesPerToken(m *models.Config) float64 { return kvBytesPerToken(m) }

// contRequest tracks one request through the continuous scheduler.
type contRequest struct {
	req        Request
	promptLen  int64
	outputLen  int64
	promptDone int64 // prefill tokens consumed so far
	generated  int64 // output tokens produced so far
	// delivered is the high-water mark of generated across preemptions:
	// recomputed tokens are regenerated internally but were already
	// streamed to the user, so throughput counts them once.
	delivered int64
	kvBytes   float64
	firstTok  sim.Time // time of first output token (TTFT anchor)
	hasFirst  bool
	abandonEv *sim.Event
	// handoff, when set, marks a prefill-only request: the moment its
	// prefill completes (first token emitted), the request leaves this
	// instance — KV released — and the callback receives the handoff
	// state to resume decoding elsewhere (see Instance.AcceptPrefill).
	handoff func(now sim.Time, h Handoff)
	// resumed marks a request continuing mid-stream from another
	// instance's prefill: TTFT is already anchored and the request never
	// abandons (its user is already streaming tokens).
	resumed bool
	// pinned counts the prefix-cache blocks this request holds pins on
	// (the Grant.Pinned of its admission Acquire); released when the
	// request completes, hands off, preempts, or is killed.
	pinned int
	// restoreStall is the pending host-tier restore penalty, charged
	// once to the request's next iteration.
	restoreStall sim.Time
}

func (r *contRequest) kvLen() int64 { return r.promptLen + r.generated }

type contSim struct {
	cfg         Config
	cal         *sim.Calendar
	sm          *engine.StepModel
	bytesPerTok float64
	capacity    float64

	waiting     []*contRequest
	running     []*contRequest // admission order: oldest first
	kvUsed      float64
	busy        bool
	kickPending bool
	err         error
	// cache is the optional block-level prefix cache (nil when
	// cfg.KVCache is nil); restoredBytes / restoreStall accumulate its
	// host-tier restore economics.
	cache         *kvcache.Cache
	restoredBytes float64
	restoreStall  sim.Time
	// state is the dynamic-fleet lifecycle state (see lifecycle.go);
	// static simulations stay Active forever.
	state InstanceState
	// slowFactor scales iteration durations (slow-node fault; 0 or 1 =
	// full speed).
	slowFactor float64

	// accumulators
	ttfts, tpots, e2es []sim.Time
	completed          int
	abandoned          int
	handedOff          int
	resumed            int
	killed             int
	preemptions        int
	iterations         int
	totalBatch         int
	tokensOut          int64
	lastCompletion     sim.Time
	queueSeries        []SamplePoint
	kvSeries           []SamplePoint
	maxQueue           int
	peakKV             float64
	kvIntegral         float64 // ∫ kvFrac dt
	lastSampleT        sim.Time
	lastKVFrac         float64 // KV fraction as of lastSampleT
	// Windowed downsampling state (cfg.SampleWindow > 0): the open
	// window's start and its queue/KV level integrals. Completed
	// windows flush one time-weighted mean point each.
	winStart   sim.Time
	winQueue   float64
	winKV      float64
	lastQueueN int
}

// newContSim builds a continuous-batching simulator on the given
// calendar. Owning the calendar is the caller's business: Simulate
// creates a private one and drains it, while cluster-level simulations
// share one calendar across many instances (see serve.Instance).
func newContSim(cfg Config, cal *sim.Calendar) (*contSim, error) {
	if cfg.DefaultOutputLen <= 0 {
		cfg.DefaultOutputLen = 1
	}
	if cfg.PrefillChunk <= 0 {
		cfg.PrefillChunk = 512
	}
	if cfg.KVMemoryUtil == 0 {
		cfg.KVMemoryUtil = 0.9
	}
	sm, err := engine.NewStepModel(cfg.Platform, cfg.Model, cfg.Mode, cfg.LatencyBucket)
	if err != nil {
		return nil, err
	}
	s := &contSim{
		cfg:         cfg,
		cal:         cal,
		sm:          sm,
		bytesPerTok: kvBytesPerToken(cfg.Model),
	}
	s.capacity = cfg.KVCapacityBytes
	if s.capacity <= 0 {
		hbm := float64(cfg.Platform.GPU.HBMGB) * 1e9
		weights := float64(cfg.Model.Params()) * 2 // fp16
		s.capacity = hbm*cfg.KVMemoryUtil - weights
	}
	if s.capacity <= 0 {
		return nil, fmt.Errorf("serve: %s does not fit on %s: KV budget %.2f GB after fp16 weights",
			cfg.Model.Name, cfg.Platform.Name, s.capacity/1e9)
	}
	if cfg.KVCache != nil {
		s.cache, err = kvcache.New(kvcache.Config{
			BlockTokens:     cfg.KVCache.BlockTokens,
			DeviceBlocks:    cfg.KVCache.DeviceBlocks,
			HostSpillBlocks: cfg.KVCache.HostSpillBlocks,
			Policy:          cfg.KVCache.Policy,
		})
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
	}
	return s, nil
}

// lifetimeKV is the request's peak KV footprint given the config's
// length fallbacks.
func (s *contSim) lifetimeKV(req Request) float64 {
	promptLen, outputLen := req.PromptLen, req.OutputLen
	if promptLen <= 0 {
		promptLen = s.cfg.Seq
	}
	if outputLen <= 0 {
		outputLen = s.cfg.DefaultOutputLen
	}
	return float64(promptLen+outputLen) * s.bytesPerTok
}

// newRequest resolves a request's effective lengths and checks
// feasibility: a request whose lifetime KV footprint exceeds the whole
// budget would preempt-livelock, so it is rejected up front.
func (s *contSim) newRequest(req Request) (*contRequest, error) {
	cr := &contRequest{
		req:       req,
		promptLen: req.PromptLen,
		outputLen: req.OutputLen,
	}
	if cr.promptLen <= 0 {
		cr.promptLen = s.cfg.Seq
	}
	if cr.outputLen <= 0 {
		cr.outputLen = s.cfg.DefaultOutputLen
	}
	if need := s.lifetimeKV(req); need > s.capacity {
		return nil, fmt.Errorf("serve: request %d needs %.2f GB of KV (prompt %d + output %d tokens) but the budget is %.2f GB",
			cr.req.ID, need/1e9, cr.promptLen, cr.outputLen, s.capacity/1e9)
	}
	return cr, nil
}

// emit reports a lifecycle event for cr to the configured observer.
func (s *contSim) emit(now sim.Time, t EventType, cr *contRequest) {
	if s.cfg.Observer == nil {
		return
	}
	s.cfg.Observer(Event{
		Time:      now,
		Type:      t,
		RequestID: cr.req.ID,
		SessionID: cr.req.SessionID,
	})
}

// simulateContinuous runs the ContinuousBatch / ChunkedPrefill policies
// over the (already sorted) request stream.
func simulateContinuous(cfg Config, reqs []Request) (*Stats, error) {
	s, err := newContSim(cfg, sim.NewCalendar())
	if err != nil {
		return nil, err
	}
	for i := range reqs {
		cr, err := s.newRequest(reqs[i])
		if err != nil {
			return nil, err
		}
		s.cal.Schedule(cr.req.Arrival, func(now sim.Time) { s.arrive(now, cr) })
	}

	s.cal.Run()
	if s.err != nil {
		return nil, s.err
	}
	return s.stats(), nil
}

// arrive enqueues a request, arms its abandonment timer, and pokes the
// scheduler.
func (s *contSim) arrive(now sim.Time, cr *contRequest) {
	if s.err != nil {
		return
	}
	s.waiting = append(s.waiting, cr)
	s.emit(now, EventArrival, cr)
	if s.cfg.AbandonAfter > 0 && !cr.resumed {
		cr.abandonEv = s.cal.Schedule(now+s.cfg.AbandonAfter, func(at sim.Time) { s.abandon(at, cr) })
	}
	if s.busy {
		s.sample(now) // record the deeper queue while the engine runs
		return
	}
	// Defer the scheduling decision to a same-time calendar event: the
	// arrival events were enqueued first, so every request arriving at
	// this instant joins the queue before the iteration forms (real
	// servers coalesce a scheduling tick's arrivals the same way).
	if !s.kickPending {
		s.kickPending = true
		s.cal.Schedule(now, func(at sim.Time) {
			s.kickPending = false
			s.kick(at)
		})
	}
}

// abandon drops a request that is still waiting when its patience
// expires. Requests already admitted cancelled this event, so reaching
// here means cr is in the wait queue.
func (s *contSim) abandon(now sim.Time, cr *contRequest) {
	if s.err != nil || s.state == StateStopped {
		return
	}
	for i, w := range s.waiting {
		if w == cr {
			s.waiting = append(s.waiting[:i], s.waiting[i+1:]...)
			s.abandoned++
			s.emit(now, EventAbandoned, cr)
			s.sample(now)
			s.maybeFinishDrain(now)
			return
		}
	}
}

// admit moves wait-queue heads into the running batch while the KV
// budget and batch cap allow (FIFO: a head that does not fit blocks the
// queue, the queue-or-preempt policy's "queue" side).
//
// With a prefix cache, a session-bearing head first Peeks its cached
// prefix — a read-only, conservative bound — and the fit check uses the
// reduced footprint. Only once the head actually admits does Acquire
// pin blocks; Acquire can only grant more than the Peek (host-tier
// restores, fresh allocations), so the fit decision stays valid and no
// rollback path exists.
func (s *contSim) admit(now sim.Time) {
	for len(s.waiting) > 0 && len(s.running) < s.cfg.MaxBatch {
		head := s.waiting[0]
		// A resumed request's transferred cache (prompt + tokens already
		// generated elsewhere) is reserved whole; fresh requests have
		// generated == 0 and reserve the prompt alone. Cached prefix
		// blocks live in the cache's own block pool and leave the
		// byte-denominated reservation.
		credit := int64(0)
		if s.cache != nil {
			credit = s.cache.Peek(head.req.SessionID, head.promptLen)
		}
		need := float64(head.promptLen-credit+head.generated) * s.bytesPerTok
		if s.kvUsed+need > s.capacity {
			return
		}
		s.waiting = s.waiting[1:]
		if head.abandonEv != nil {
			s.cal.Cancel(head.abandonEv)
			head.abandonEv = nil
		}
		if s.cache != nil && head.req.SessionID != 0 {
			g := s.cache.Acquire(head.req.SessionID, head.promptLen, head.resumed)
			head.pinned = g.Pinned
			need = float64(head.promptLen-int64(g.Pinned)*s.cache.BlockTokens()+head.generated) * s.bytesPerTok
			if !head.resumed {
				// Reuse credit: the contiguous cached prefix counts as
				// already-prefilled, shortening TTFT. Resumed requests
				// arrive with their prefill done.
				if g.CreditTokens > head.promptDone {
					head.promptDone = g.CreditTokens
				}
				if g.Restored > 0 {
					// Host-tier restore: price the copy back to device
					// through the platform interconnect (free on
					// unified-memory platforms) and charge it to the
					// request's next iteration.
					bytes := float64(g.Restored) * float64(s.cache.BlockTokens()) * s.bytesPerTok
					stall := s.cfg.Platform.TransferTime(bytes)
					head.restoreStall += stall
					s.restoredBytes += bytes
					s.restoreStall += stall
				}
			}
			s.emitCache(now, head, g)
		}
		head.kvBytes = need
		s.kvUsed += need
		s.running = append(s.running, head)
		s.emit(now, EventAdmitted, head)
	}
}

// releaseBlocks drops the request's prefix-cache pins (completion,
// handoff, preemption, kill). The blocks stay resident — that residency
// is the session's next-turn hit — but become evictable.
func (s *contSim) releaseBlocks(r *contRequest) {
	if s.cache != nil && r.pinned > 0 {
		s.cache.Release(r.req.SessionID, r.pinned)
		r.pinned = 0
	}
}

// emitCache reports one admission's cache outcome to the observer:
// a block-hit event when cached blocks served the request, a
// block-evict event when the acquire forced evictions, and a
// block-restore event when host-tier blocks were promoted back.
func (s *contSim) emitCache(now sim.Time, cr *contRequest, g kvcache.Grant) {
	if s.cfg.Observer == nil {
		return
	}
	ev := Event{Time: now, RequestID: cr.req.ID, SessionID: cr.req.SessionID}
	if g.Hits+g.Restored > 0 {
		ev.Type = EventBlockHit
		ev.Detail = fmt.Sprintf("hits=%d restored=%d misses=%d credit=%d", g.Hits, g.Restored, g.Misses, g.CreditTokens)
		s.cfg.Observer(ev)
	}
	if g.Evicted > 0 {
		ev.Type = EventBlockEvict
		ev.Detail = fmt.Sprintf("evicted=%d spilled=%d host_dropped=%d", g.Evicted, g.Spilled, g.HostEvicted)
		s.cfg.Observer(ev)
	}
	if g.Restored > 0 {
		ev.Type = EventBlockRestore
		ev.Detail = fmt.Sprintf("blocks=%d bytes=%.0f", g.Restored, float64(g.Restored)*float64(s.cache.BlockTokens())*s.bytesPerTok)
		s.cfg.Observer(ev)
	}
}

// willEmitToken reports whether r produces an output token in the next
// iteration: decoding requests always do, and a prefilling request does
// when this iteration's chunk consumes the rest of its prompt.
func (s *contSim) willEmitToken(r *contRequest) bool {
	remaining := r.promptLen - r.promptDone
	if remaining <= 0 {
		return true
	}
	if s.cfg.Policy == ChunkedPrefill && remaining > s.cfg.PrefillChunk {
		return false
	}
	return true
}

// preemptForGrowth frees KV for the coming iteration's growth — one
// cache entry per token that will be emitted, including first tokens
// from completing prefills — by evicting the youngest running
// request(s) (recompute-style: progress and KV are discarded, the
// request re-queues at the head of the wait queue). The oldest request
// is never evicted — feasibility guarantees it fits alone, so the
// scheduler always makes progress.
func (s *contSim) preemptForGrowth(now sim.Time) {
	for {
		var growth float64
		for _, r := range s.running {
			if s.willEmitToken(r) {
				growth += s.bytesPerTok
			}
		}
		if s.kvUsed+growth <= s.capacity || len(s.running) <= 1 {
			return
		}
		victim := s.running[len(s.running)-1]
		s.running = s.running[:len(s.running)-1]
		s.kvUsed -= victim.kvBytes
		victim.kvBytes = 0
		victim.promptDone = 0
		victim.generated = 0
		// Unpin the victim's cache blocks and drop any uncharged restore
		// stall; re-admission re-acquires (usually hitting the
		// still-resident blocks, the cache's recompute discount).
		s.releaseBlocks(victim)
		victim.restoreStall = 0
		s.waiting = append([]*contRequest{victim}, s.waiting...)
		s.preemptions++
		s.emit(now, EventPreempted, victim)
	}
}

// kick starts the next iteration if the engine is idle and work exists.
func (s *contSim) kick(now sim.Time) {
	if s.busy || s.err != nil || s.state == StateStopped {
		return
	}
	s.admit(now)
	s.preemptForGrowth(now)
	s.sample(now)
	if len(s.running) == 0 {
		s.maybeFinishDrain(now)
		return
	}

	// Plan the iteration: prefill chunks for requests still consuming
	// their prompt, one decode token for the rest.
	var dur sim.Time
	type prefillPlan struct {
		r     *contRequest
		chunk int64
	}
	var prefills []prefillPlan
	decodeBatch := int64(0)
	maxKV := int64(0)
	for _, r := range s.running {
		if r.promptDone < r.promptLen {
			chunk := r.promptLen - r.promptDone
			if s.cfg.Policy == ChunkedPrefill && chunk > s.cfg.PrefillChunk {
				chunk = s.cfg.PrefillChunk
			}
			prefills = append(prefills, prefillPlan{r, chunk})
		} else {
			decodeBatch++
			if kv := r.kvLen(); kv > maxKV {
				maxKV = kv
			}
		}
	}
	for _, p := range prefills {
		d, err := s.sm.Prefill(1, p.chunk)
		if err != nil {
			s.err = err
			return
		}
		dur += d
	}
	if decodeBatch > 0 {
		d, err := s.sm.DecodeStep(decodeBatch, maxKV)
		if err != nil {
			s.err = err
			return
		}
		dur += d
	}
	if s.slowFactor > 1 {
		// A slow-node fault: the whole iteration stretches. Durations are
		// int64 nanoseconds well under 2^53, so the float round-trip is
		// exact at factor 1 and deterministic at any factor.
		dur = sim.Time(float64(dur) * s.slowFactor)
	}
	// Pending host-tier restore penalties stall the iteration their
	// request first executes in. Interconnect time, not compute, so the
	// slow-node factor does not scale it.
	for _, r := range s.running {
		if r.restoreStall > 0 {
			dur += r.restoreStall
			r.restoreStall = 0
		}
	}

	s.busy = true
	s.iterations++
	s.totalBatch += len(s.running)
	batch := append([]*contRequest(nil), s.running...)
	chunks := make(map[*contRequest]int64, len(prefills))
	for _, p := range prefills {
		chunks[p.r] = p.chunk
	}
	s.cal.Schedule(now+dur, func(end sim.Time) { s.finishIteration(end, batch, chunks) })
}

// finishIteration applies one iteration's outcomes at its end time:
// prompt progress, emitted tokens, completions, KV growth.
func (s *contSim) finishIteration(end sim.Time, batch []*contRequest, chunks map[*contRequest]int64) {
	if s.state == StateStopped {
		// Killed mid-iteration: the batch was already evicted and
		// requeued elsewhere; this iteration's outcomes are discarded.
		return
	}
	s.busy = false
	if s.err != nil {
		return
	}
	for _, r := range batch {
		if !s.isRunning(r) {
			continue // preempted while... cannot happen mid-iteration, but stay safe
		}
		if chunk, ok := chunks[r]; ok {
			r.promptDone += chunk
			if r.promptDone >= r.promptLen {
				// Prefill complete: the iteration's forward pass emits
				// the first output token.
				s.emitToken(r, end)
			}
			continue
		}
		s.emitToken(r, end)
	}
	s.sample(end)
	s.kick(end)
}

// emitToken records one generated token for r at time end, growing its
// KV reservation and completing the request when it reaches outputLen.
func (s *contSim) emitToken(r *contRequest, end sim.Time) {
	r.generated++
	r.kvBytes += s.bytesPerTok
	s.kvUsed += s.bytesPerTok
	if r.generated > r.delivered {
		r.delivered = r.generated
		s.tokensOut++
	}
	if !r.hasFirst {
		r.hasFirst = true
		r.firstTok = end
		s.ttfts = append(s.ttfts, end-r.req.Arrival)
		if s.cfg.Observer != nil {
			s.cfg.Observer(Event{
				Time: end, Type: EventFirstToken,
				RequestID: r.req.ID, SessionID: r.req.SessionID,
				TTFT: end - r.req.Arrival,
			})
		}
	}
	if r.generated >= r.outputLen {
		s.completed++
		if s.cfg.Observer != nil {
			ev := Event{
				Time: end, Type: EventCompleted,
				RequestID: r.req.ID, SessionID: r.req.SessionID,
				Tokens: r.delivered,
			}
			if r.hasFirst {
				ev.TTFT = r.firstTok - r.req.Arrival
			}
			if r.outputLen > 1 {
				ev.TPOT = (end - r.firstTok) / sim.Time(r.outputLen-1)
			}
			s.cfg.Observer(ev)
		}
		s.e2es = append(s.e2es, end-r.req.Arrival)
		if r.outputLen > 1 {
			s.tpots = append(s.tpots, (end-r.firstTok)/sim.Time(r.outputLen-1))
		}
		s.kvUsed -= r.kvBytes
		r.kvBytes = 0
		s.releaseBlocks(r)
		s.removeRunning(r)
		if end > s.lastCompletion {
			s.lastCompletion = end
		}
		return
	}
	if r.handoff != nil {
		// Prefill complete on a prefill-pool instance: the request stops
		// here. Its KV leaves this instance's budget — the disaggregation
		// layer now owns the cache and prices its transfer to a decode
		// instance.
		s.handedOff++
		s.kvUsed -= r.kvBytes
		r.kvBytes = 0
		s.releaseBlocks(r)
		s.removeRunning(r)
		if end > s.lastCompletion {
			s.lastCompletion = end
		}
		fn := r.handoff
		r.handoff = nil
		fn(end, Handoff{
			Req:        r.req,
			PromptLen:  r.promptLen,
			OutputLen:  r.outputLen,
			Generated:  r.generated,
			FirstToken: r.firstTok,
			KVLen:      r.kvLen(),
		})
	}
}

func (s *contSim) isRunning(r *contRequest) bool {
	for _, x := range s.running {
		if x == r {
			return true
		}
	}
	return false
}

func (s *contSim) removeRunning(r *contRequest) {
	for i, x := range s.running {
		if x == r {
			s.running = append(s.running[:i], s.running[i+1:]...)
			return
		}
	}
}

// sample records the queue-depth and KV-occupancy series and advances
// the time-weighted KV integral. With SampleWindow set the per-event
// series are downsampled: levels integrate into the open window and
// each completed window flushes one mean point instead of appending a
// point per scheduling event.
func (s *contSim) sample(now sim.Time) {
	frac := s.kvUsed / s.capacity
	if now > s.lastSampleT {
		// Integrate the previous level over the elapsed interval.
		s.kvIntegral += s.lastKVFrac * float64(now-s.lastSampleT)
		if s.cfg.SampleWindow > 0 {
			s.integrateWindows(now)
		}
		s.lastSampleT = now
	}
	if s.cfg.SampleWindow <= 0 {
		s.queueSeries = append(s.queueSeries, SamplePoint{T: now, V: float64(len(s.waiting))})
		s.kvSeries = append(s.kvSeries, SamplePoint{T: now, V: frac})
	}
	s.lastKVFrac = frac
	s.lastQueueN = len(s.waiting)
	if len(s.waiting) > s.maxQueue {
		s.maxQueue = len(s.waiting)
	}
	if s.kvUsed > s.peakKV {
		s.peakKV = s.kvUsed
	}
	if s.cfg.EmitStateSamples && s.cfg.Observer != nil {
		lookups, hits := int64(0), int64(0)
		if s.cache != nil {
			cs := s.cache.Stats()
			lookups, hits = cs.Lookups, cs.Hits+cs.Restored
		}
		s.cfg.Observer(Event{
			Time: now,
			Type: EventStateSample,
			State: &StateSample{
				Queue:        len(s.waiting),
				Running:      len(s.running),
				KVFrac:       frac,
				CacheLookups: lookups,
				CacheHits:    hits,
			},
		})
	}
}

// integrateWindows carries the held levels from lastSampleT to now,
// flushing one mean point per window boundary crossed.
func (s *contSim) integrateWindows(now sim.Time) {
	w := s.cfg.SampleWindow
	t := s.lastSampleT
	for t < now {
		end := s.winStart + w
		if end > now {
			s.winQueue += float64(s.lastQueueN) * float64(now-t)
			s.winKV += s.lastKVFrac * float64(now-t)
			return
		}
		s.winQueue += float64(s.lastQueueN) * float64(end-t)
		s.winKV += s.lastKVFrac * float64(end-t)
		dur := float64(w)
		s.queueSeries = append(s.queueSeries, SamplePoint{T: end, V: s.winQueue / dur})
		s.kvSeries = append(s.kvSeries, SamplePoint{T: end, V: s.winKV / dur})
		s.winQueue, s.winKV = 0, 0
		s.winStart = end
		t = end
	}
}

// flushWindow closes the open, partial sampling window at the end of
// the run (stats assembly).
func (s *contSim) flushWindow() {
	if s.cfg.SampleWindow <= 0 || s.lastSampleT <= s.winStart {
		return
	}
	dur := float64(s.lastSampleT - s.winStart)
	s.queueSeries = append(s.queueSeries, SamplePoint{T: s.lastSampleT, V: s.winQueue / dur})
	s.kvSeries = append(s.kvSeries, SamplePoint{T: s.lastSampleT, V: s.winKV / dur})
	s.winQueue, s.winKV = 0, 0
	s.winStart = s.lastSampleT
}

// cacheStats assembles the prefix-cache ledger; nil when no cache is
// configured, keeping cache-off reports bit-identical.
func (s *contSim) cacheStats() *KVCacheStats {
	if s.cache == nil {
		return nil
	}
	cs := s.cache.Stats()
	st := &KVCacheStats{
		BlockTokens:     s.cache.BlockTokens(),
		DeviceBlocks:    s.cfg.KVCache.DeviceBlocks,
		HostSpillBlocks: s.cfg.KVCache.HostSpillBlocks,
		Policy:          s.cfg.KVCache.Policy.String(),
		Lookups:         cs.Lookups,
		Hits:            cs.Hits,
		Restored:        cs.Restored,
		Misses:          cs.Misses,
		Unallocated:     cs.Unallocated,
		Evictions:       cs.Evictions,
		Spills:          cs.Spills,
		HostEvictions:   cs.HostEvictions,
		ReusedTokens:    cs.ReusedTokens,
		RestoredBytes:   s.restoredBytes,
		RestoreStall:    s.restoreStall,
	}
	if cs.Lookups > 0 {
		st.HitRate = float64(cs.Hits+cs.Restored) / float64(cs.Lookups)
	}
	return st
}

// stats assembles the final Stats from the accumulators.
func (s *contSim) stats() *Stats {
	s.flushWindow()
	st := &Stats{
		Requests:        s.completed + s.abandoned + s.handedOff + s.killed,
		Completed:       s.completed,
		Abandoned:       s.abandoned,
		HandedOff:       s.handedOff,
		Killed:          s.killed,
		Resumed:         s.resumed,
		Preemptions:     s.preemptions,
		Horizon:         s.lastCompletion,
		Batches:         s.iterations,
		KVCapacityBytes: s.capacity,
		PeakKVBytes:     s.peakKV,
		PeakKVFrac:      s.peakKV / s.capacity,
		KVOccupancy:     s.kvSeries,
		QueueDepth:      s.queueSeries,
		MaxQueueDepth:   s.maxQueue,
		KVCache:         s.cacheStats(),
	}
	sort.Slice(s.ttfts, func(i, j int) bool { return s.ttfts[i] < s.ttfts[j] })
	sort.Slice(s.tpots, func(i, j int) bool { return s.tpots[i] < s.tpots[j] })
	sort.Slice(s.e2es, func(i, j int) bool { return s.e2es[i] < s.e2es[j] })
	st.MeanTTFT = meanTime(s.ttfts)
	st.P50TTFT = percentileSorted(s.ttfts, 50)
	st.P95TTFT = percentileSorted(s.ttfts, 95)
	st.P99TTFT = percentileSorted(s.ttfts, 99)
	st.MaxTTFT = maxTimeOf(s.ttfts)
	st.MeanTPOT = meanTime(s.tpots)
	st.P50TPOT = percentileSorted(s.tpots, 50)
	st.P95TPOT = percentileSorted(s.tpots, 95)
	st.MeanE2E = meanTime(s.e2es)
	st.P50E2E = percentileSorted(s.e2es, 50)
	st.P95E2E = percentileSorted(s.e2es, 95)
	st.MaxE2E = maxTimeOf(s.e2es)
	if s.iterations > 0 {
		st.MeanBatch = float64(s.totalBatch) / float64(s.iterations)
	}
	st.TokensOut = s.tokensOut
	if s.lastCompletion > 0 {
		sec := s.lastCompletion.Seconds()
		st.Throughput = float64(s.completed) / sec
		st.TokensPerSec = float64(s.tokensOut) / sec
		st.MeanKVFrac = s.kvIntegral / float64(s.lastCompletion)
	}
	st.SLOAttainment, st.Goodput = SLOGoodput(s.ttfts, s.cfg.TTFTSLO, s.lastCompletion, st.Throughput)
	return st
}
