package serve

import (
	"fmt"

	"github.com/skipsim/skip/internal/hw"
	"github.com/skipsim/skip/internal/sim"
)

// Instance is one continuous-batching server stepped by an external
// shared calendar, the building block for multi-instance cluster
// simulations: a front-end router owns the sim.Calendar, constructs N
// instances on it, and hands each arriving request to one of them with
// Accept. All instances' events interleave in global timestamp order on
// the one calendar, so a fleet simulates under a single shared clock.
//
// The load accessors (QueueDepth, Running, KVFrac, KVPressure) expose
// the scheduler state a router inspects at decision time; they are only
// meaningful while the calendar is between events, which is exactly
// when routing callbacks run.
type Instance struct {
	name   string
	s      *contSim
	routed int
}

// NewInstance builds an instance of the given continuous policy on the
// shared calendar. The legacy run-to-completion policies (StaticBatch,
// GreedyBatch) batch at dispatch time and cannot be externally stepped.
func NewInstance(name string, cfg Config, cal *sim.Calendar) (*Instance, error) {
	if cal == nil {
		return nil, fmt.Errorf("serve: instance %q needs a calendar", name)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Policy != ContinuousBatch && cfg.Policy != ChunkedPrefill {
		return nil, fmt.Errorf("serve: instance %q needs a continuous policy, got %s", name, cfg.Policy)
	}
	s, err := newContSim(cfg, cal)
	if err != nil {
		return nil, err
	}
	return &Instance{name: name, s: s}, nil
}

// Name returns the instance's display name.
func (in *Instance) Name() string { return in.name }

// Platform returns the hardware platform the instance models.
func (in *Instance) Platform() *hw.Platform { return in.s.cfg.Platform }

// Fits reports whether the request's lifetime KV footprint (prompt +
// generation, after the config's length fallbacks) fits the instance's
// KV budget at all. A request that doesn't fit would preempt-livelock
// and must be routed elsewhere or rejected.
func (in *Instance) Fits(req Request) bool {
	return in.s.lifetimeKV(req) <= in.s.capacity
}

// Accept hands the request to the instance at the current calendar
// time: it joins the wait queue (arming its abandonment timer if
// configured) and the scheduler is poked. Accept must be called from
// inside a calendar event at the request's arrival instant — the
// cluster front-end's routing callback. It fails if the request can
// never fit (see Fits).
func (in *Instance) Accept(now sim.Time, req Request) error {
	if !in.Accepting() {
		return fmt.Errorf("serve: instance %s is %s and accepts no new work", in.name, in.s.state)
	}
	cr, err := in.s.newRequest(req)
	if err != nil {
		return err
	}
	in.routed++
	in.s.arrive(now, cr)
	return nil
}

// Routed counts requests accepted so far.
func (in *Instance) Routed() int { return in.routed }

// QueueDepth reports the current wait-queue length.
func (in *Instance) QueueDepth() int { return len(in.s.waiting) }

// Running reports the current running-batch size.
func (in *Instance) Running() int { return len(in.s.running) }

// Outstanding reports queued plus running requests — the in-flight load
// a least-loaded router balances on.
func (in *Instance) Outstanding() int { return len(in.s.waiting) + len(in.s.running) }

// KVFrac reports the admitted KV-cache occupancy as a fraction of the
// budget.
func (in *Instance) KVFrac() float64 { return in.s.kvUsed / in.s.capacity }

// KVPressure adds the wait queue's unreserved prompt footprints to the
// admitted occupancy: the KV demand already committed to this instance,
// as a fraction of its budget. A KV-aware router minimizes this rather
// than KVFrac so queued-but-unadmitted work still repels new requests.
func (in *Instance) KVPressure() float64 {
	pending := in.s.kvUsed
	for _, w := range in.s.waiting {
		pending += float64(w.promptLen) * in.s.bytesPerTok
	}
	return pending / in.s.capacity
}

// KVCapacityBytes reports the instance's KV budget.
func (in *Instance) KVCapacityBytes() float64 { return in.s.capacity }

// CachedPrefixTokens reports how many of the request's leading prompt
// tokens are device-resident in this instance's prefix cache — the
// overlap a prefix-affinity router maximizes at pick time, and the
// tokens a disaggregated handoff to this instance need not ship. It is
// strictly read-only (no refcounts, no LRU order, no ledger), so
// routers and counterfactual scorers may call it freely; 0 when the
// instance has no cache or the request no session.
func (in *Instance) CachedPrefixTokens(req Request) int64 {
	if in.s.cache == nil || req.SessionID == 0 {
		return 0
	}
	promptLen := req.PromptLen
	if promptLen <= 0 {
		promptLen = in.s.cfg.Seq
	}
	return in.s.cache.Peek(req.SessionID, promptLen)
}

// Err reports a latency-model failure inside the event loop, after
// which the instance's state is frozen and its stats are meaningless.
func (in *Instance) Err() error { return in.s.err }

// Stats assembles the instance's serving statistics. Call it after the
// shared calendar has drained.
func (in *Instance) Stats() *Stats { return in.s.stats() }

// Latencies returns copies of the raw per-request samples (TTFT, TPOT,
// E2E) so a cluster can compute exact fleet-level percentiles instead
// of averaging per-instance ones.
func (in *Instance) Latencies() (ttfts, tpots, e2es []sim.Time) {
	return append([]sim.Time(nil), in.s.ttfts...),
		append([]sim.Time(nil), in.s.tpots...),
		append([]sim.Time(nil), in.s.e2es...)
}
