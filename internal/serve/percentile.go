package serve

import (
	"math"
	"sort"

	"github.com/skipsim/skip/internal/sim"
)

// Percentile returns the nearest-rank p-th percentile of the samples
// (p in (0,100]): the smallest value such that at least p% of samples
// are ≤ it. The input need not be sorted; a zero-length input returns 0.
// Both the legacy prefill-only stats and the continuous-batching stats
// report percentiles through this one definition, so policies are
// comparable rank-for-rank.
func Percentile(samples []sim.Time, p float64) sim.Time {
	if len(samples) == 0 {
		return 0
	}
	sorted := make([]sim.Time, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return percentileSorted(sorted, p)
}

// Percentiles returns the nearest-rank percentiles for every p in ps
// with a single copy-and-sort of the samples — the stats assemblers
// ask for three or more percentiles of the same pooled sample set, and
// one sort serves them all. A zero-length input returns all zeros.
func Percentiles(samples []sim.Time, ps ...float64) []sim.Time {
	out := make([]sim.Time, len(ps))
	if len(samples) == 0 {
		return out
	}
	sorted := make([]sim.Time, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, p := range ps {
		out[i] = percentileSorted(sorted, p)
	}
	return out
}

// percentileSorted is the nearest-rank lookup on an already-sorted
// sample slice: rank = ceil(p/100 × n), clamped to [1, n].
func percentileSorted(sorted []sim.Time, p float64) sim.Time {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	rank := int(math.Ceil(float64(n) * p / 100))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

// meanTime averages a sample slice (0 for empty input).
func meanTime(samples []sim.Time) sim.Time {
	if len(samples) == 0 {
		return 0
	}
	var sum sim.Time
	for _, s := range samples {
		sum += s
	}
	return sum / sim.Time(len(samples))
}

// SLOGoodput computes the SLO block shared by the serving and cluster
// stats paths: the fraction of TTFT samples within slo and the
// corresponding goodput over the horizon. slo <= 0 means no SLO: full
// attainment, goodput == throughput. With an SLO configured but zero
// TTFT samples — a server that rejected, abandoned, or never finished
// everything — attainment and goodput are 0: serving nobody is total
// SLO failure, not vacuous perfection.
func SLOGoodput(ttfts []sim.Time, slo, horizon sim.Time, throughput float64) (attainment, goodput float64) {
	if slo <= 0 {
		return 1, throughput
	}
	if len(ttfts) == 0 {
		return 0, 0
	}
	met := 0
	for _, t := range ttfts {
		if t <= slo {
			met++
		}
	}
	attainment = float64(met) / float64(len(ttfts))
	if horizon > 0 {
		goodput = float64(met) / horizon.Seconds()
	}
	return attainment, goodput
}

// maxTimeOf returns the largest sample (0 for empty input).
func maxTimeOf(samples []sim.Time) sim.Time {
	var m sim.Time
	for _, s := range samples {
		if s > m {
			m = s
		}
	}
	return m
}
