package serve

import (
	"strings"
	"testing"

	"github.com/skipsim/skip/internal/engine"
	"github.com/skipsim/skip/internal/hw"
	"github.com/skipsim/skip/internal/models"
	"github.com/skipsim/skip/internal/sim"
)

// contConfig is the continuous-batching test baseline: a small decoder
// on GH200 so engine runs stay cheap.
func contConfig() Config {
	return Config{
		Platform: hw.GH200(), Model: models.GPT2(), Seq: 64, Mode: engine.Eager,
		Policy: ContinuousBatch, MaxBatch: 8, DefaultOutputLen: 4,
	}
}

// gpt2KVBytesPerToken mirrors the scheduler's KV cost model for test
// arithmetic: 2 × layers × kvdim × 2 bytes.
func gpt2KVBytesPerToken() float64 {
	m := models.GPT2()
	return float64(2 * m.Layers * m.KVDim() * 2)
}

func TestContinuousBasics(t *testing.T) {
	reqs := mustUniform(t, 20, 5*sim.Millisecond)
	stats, err := Simulate(contConfig(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Requests != 20 || stats.Completed != 20 || stats.Abandoned != 0 {
		t.Fatalf("conservation broken: %+v", stats)
	}
	if stats.P50TTFT <= 0 || stats.P95TTFT < stats.P50TTFT || stats.MaxTTFT < stats.P95TTFT {
		t.Errorf("TTFT ordering broken: P50 %v P95 %v max %v", stats.P50TTFT, stats.P95TTFT, stats.MaxTTFT)
	}
	if stats.MeanTPOT <= 0 || stats.P95TPOT < stats.P50TPOT {
		t.Errorf("TPOT ordering broken: mean %v P50 %v P95 %v", stats.MeanTPOT, stats.P50TPOT, stats.P95TPOT)
	}
	if stats.P95E2E < stats.P95TTFT {
		t.Errorf("E2E (%v) cannot beat TTFT (%v)", stats.P95E2E, stats.P95TTFT)
	}
	if stats.TokensPerSec <= 0 || stats.Throughput <= 0 {
		t.Errorf("throughput: %+v", stats)
	}
	if stats.PeakKVFrac <= 0 || stats.PeakKVFrac > 1 {
		t.Errorf("peak KV fraction = %v, want (0,1]", stats.PeakKVFrac)
	}
	if len(stats.KVOccupancy) == 0 || len(stats.QueueDepth) == 0 {
		t.Error("state series not recorded")
	}
	for i := 1; i < len(stats.KVOccupancy); i++ {
		if stats.KVOccupancy[i].T < stats.KVOccupancy[i-1].T {
			t.Fatal("KV series timestamps must be non-decreasing")
		}
	}
}

// TestContinuousBeatsRunToCompletion is the deterministic end-to-end
// scenario from the issue: under an identical Poisson stream, iteration
// -level admission must contain P95 TTFT relative to run-to-completion
// BS=1 (which holds the engine for every request's full generation) and
// move more tokens.
func TestContinuousBeatsRunToCompletion(t *testing.T) {
	reqs, err := PoissonArrivals(24, 400, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range reqs {
		reqs[i].OutputLen = 8
	}
	cont := contConfig()
	cont.MaxBatch = 8
	rtc := contConfig()
	rtc.MaxBatch = 1

	cs, err := Simulate(cont, reqs)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Simulate(rtc, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if cs.P95TTFT >= rs.P95TTFT {
		t.Errorf("continuous P95 TTFT (%v) should beat run-to-completion BS=1 (%v)", cs.P95TTFT, rs.P95TTFT)
	}
	if cs.TokensPerSec <= rs.TokensPerSec {
		t.Errorf("continuous tok/s (%.0f) should beat BS=1 (%.0f)", cs.TokensPerSec, rs.TokensPerSec)
	}
	if cs.MeanBatch <= rs.MeanBatch {
		t.Errorf("continuous mean batch (%.1f) should exceed BS=1's (%.1f)", cs.MeanBatch, rs.MeanBatch)
	}
}

func TestContinuousKVAdmissionBoundary(t *testing.T) {
	bpt := gpt2KVBytesPerToken()
	cfg := contConfig()
	// Room for one 64-token prompt plus its 4 output tokens, not two
	// prompts: the second request must queue until the first releases.
	cfg.KVCapacityBytes = 96 * bpt
	reqs := mustUniform(t, 3, sim.Microsecond)
	stats, err := Simulate(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed != 3 {
		t.Fatalf("completed %d of 3", stats.Completed)
	}
	if stats.MaxQueueDepth == 0 {
		t.Error("tiny KV budget must force queueing")
	}
	if stats.MeanBatch > 1.01 {
		t.Errorf("mean batch %.2f: budget fits one request at a time", stats.MeanBatch)
	}
	if stats.PeakKVBytes > cfg.KVCapacityBytes {
		t.Errorf("KV peak %.0f exceeded the %.0f budget", stats.PeakKVBytes, cfg.KVCapacityBytes)
	}
}

func TestContinuousExactBoundaryAdmitsBothPrompts(t *testing.T) {
	bpt := gpt2KVBytesPerToken()
	cfg := contConfig()
	cfg.DefaultOutputLen = 1 // no decode growth: prompts only
	// Exactly two 64-token prompts: admission at the precise boundary.
	cfg.KVCapacityBytes = 2 * 65 * bpt // 64-token prompt + 1 generated token each
	reqs := simultaneousArrivals(2)    // simultaneous arrivals
	stats, err := Simulate(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MaxQueueDepth != 0 {
		t.Errorf("both prompts fit exactly; queue depth %d", stats.MaxQueueDepth)
	}
	if stats.MeanBatch < 1.5 {
		t.Errorf("mean batch %.2f: both should run together", stats.MeanBatch)
	}
}

func TestContinuousPreemptsOnKVGrowth(t *testing.T) {
	bpt := gpt2KVBytesPerToken()
	cfg := contConfig()
	cfg.Seq = 32
	cfg.DefaultOutputLen = 10
	// Both 32-token prompts fit (64 × bpt), each request's lifetime
	// footprint (42) fits alone, but joint decode growth overflows: the
	// younger request must be preempted and recomputed.
	cfg.KVCapacityBytes = 70 * bpt
	reqs := mustUniform(t, 2, sim.Microsecond)
	stats, err := Simulate(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Preemptions == 0 {
		t.Error("joint KV growth past the budget must preempt")
	}
	if stats.Completed != 2 {
		t.Errorf("preempted request must still complete: %d of 2", stats.Completed)
	}
	if stats.PeakKVBytes > cfg.KVCapacityBytes {
		t.Errorf("KV peak %.0f exceeded the %.0f budget", stats.PeakKVBytes, cfg.KVCapacityBytes)
	}
}

// TestContinuousFirstTokenGrowthRespectsBudget pins the overrun found
// in review: two 50-token prompts exactly fill a 100-token budget, and
// the first tokens their prefill completions emit must not push KV past
// capacity — the scheduler has to serialize or preempt instead.
func TestContinuousFirstTokenGrowthRespectsBudget(t *testing.T) {
	bpt := gpt2KVBytesPerToken()
	cfg := contConfig()
	cfg.Seq = 50
	cfg.DefaultOutputLen = 2
	cfg.KVCapacityBytes = 100 * bpt
	stats, err := Simulate(cfg, simultaneousArrivals(2))
	if err != nil {
		t.Fatal(err)
	}
	if stats.PeakKVBytes > cfg.KVCapacityBytes {
		t.Errorf("KV peak %.0f exceeded the %.0f budget", stats.PeakKVBytes, cfg.KVCapacityBytes)
	}
	if stats.PeakKVFrac > 1 {
		t.Errorf("peak KV fraction %v > 1", stats.PeakKVFrac)
	}
	if stats.Completed != 2 {
		t.Errorf("completed %d of 2", stats.Completed)
	}
}

func TestContinuousInfeasibleRequestRejected(t *testing.T) {
	bpt := gpt2KVBytesPerToken()
	cfg := contConfig()
	cfg.KVCapacityBytes = 40 * bpt // less than one 64-token prompt
	_, err := Simulate(cfg, mustUniform(t, 1, sim.Microsecond))
	if err == nil || !strings.Contains(err.Error(), "KV") {
		t.Fatalf("oversized request should be rejected with a KV message, got %v", err)
	}
}

// TestContinuousAbandonment exercises the Calendar.Cancel interaction:
// a queue-blocked request abandons when its patience expires, while
// admitted requests — whose abandon timers were cancelled — never do.
func TestContinuousAbandonment(t *testing.T) {
	bpt := gpt2KVBytesPerToken()
	cfg := contConfig()
	cfg.DefaultOutputLen = 16
	cfg.KVCapacityBytes = 96 * bpt // one request at a time
	cfg.AbandonAfter = 2 * sim.Millisecond
	// Request 0 admits immediately and runs long; request 1 queues
	// behind it past its patience.
	reqs := mustUniform(t, 2, sim.Microsecond)
	stats, err := Simulate(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Abandoned != 1 {
		t.Errorf("abandoned %d, want 1 (the queue-blocked request)", stats.Abandoned)
	}
	if stats.Completed != 1 {
		t.Errorf("completed %d, want 1", stats.Completed)
	}

	// With ample KV both admit instantly: the timers must be cancelled,
	// never fired — no request may be dropped mid-generation.
	cfg2 := contConfig()
	cfg2.DefaultOutputLen = 16
	cfg2.AbandonAfter = 1 * sim.Microsecond // far shorter than a generation
	stats2, err := Simulate(cfg2, simultaneousArrivals(2))
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Abandoned != 0 || stats2.Completed != 2 {
		t.Errorf("admitted requests must not abandon: %+v", stats2)
	}
}

func TestChunkedPrefillSpreadsPromptWork(t *testing.T) {
	cfg := contConfig()
	cfg.Policy = ChunkedPrefill
	cfg.Seq = 512
	cfg.PrefillChunk = 128
	cfg.DefaultOutputLen = 3
	stats, err := Simulate(cfg, mustUniform(t, 1, sim.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	// 512/128 = 4 prefill iterations + 2 further decode iterations.
	if stats.Batches != 6 {
		t.Errorf("iterations = %d, want 6 (4 prefill chunks + 2 decodes)", stats.Batches)
	}

	whole := contConfig()
	whole.Seq = 512
	whole.DefaultOutputLen = 3
	ws, err := Simulate(whole, mustUniform(t, 1, sim.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	if ws.Batches != 3 {
		t.Errorf("whole-prompt iterations = %d, want 3 (1 prefill + 2 decodes)", ws.Batches)
	}
}

func TestContinuousEncoderModelRejected(t *testing.T) {
	cfg := contConfig()
	cfg.Model = models.BertBaseUncased()
	cfg.DefaultOutputLen = 2
	if _, err := Simulate(cfg, mustUniform(t, 2, sim.Millisecond)); err == nil {
		t.Error("decode phase needs a decoder-only model")
	}
}

// TestContinuousGoodput checks SLO accounting: an impossible SLO yields
// zero goodput, an infinite one matches throughput.
func TestContinuousGoodput(t *testing.T) {
	cfg := contConfig()
	cfg.TTFTSLO = sim.Nanosecond
	reqs := mustUniform(t, 8, sim.Millisecond)
	tight, err := Simulate(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if tight.SLOAttainment != 0 || tight.Goodput != 0 {
		t.Errorf("1ns SLO: attainment %.2f goodput %.1f, want 0/0", tight.SLOAttainment, tight.Goodput)
	}
	cfg.TTFTSLO = sim.Time(1) * 3600 * sim.Second
	loose, err := Simulate(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if loose.SLOAttainment != 1 || loose.Goodput != loose.Throughput {
		t.Errorf("1h SLO: attainment %.2f goodput %.1f vs throughput %.1f",
			loose.SLOAttainment, loose.Goodput, loose.Throughput)
	}
}
