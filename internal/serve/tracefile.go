package serve

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"github.com/skipsim/skip/internal/sim"
)

// Request-trace replay: instead of generating a synthetic workload, a
// simulation can replay a logged request stream — arrival instants,
// prompt and output lengths, and optional session IDs — through the
// same serving and cluster pipelines. The format is CSV with a header
// row naming the columns:
//
//	arrival_ms,prompt_tokens,output_tokens,session_id
//	0,384,96,0
//	12.5,2048,64,1
//
// Column order is free; output_tokens and session_id are optional
// (missing output lengths fall back to the config's default, zero
// session means "no session"). Lines starting with '#' are comments.
// Rows must be sorted by arrival_ms: an out-of-order log is rejected
// rather than silently reordered.

// traceColumns maps accepted header names to canonical columns.
var traceColumns = map[string]string{
	"arrival_ms":    "arrival",
	"arrival":       "arrival",
	"prompt_tokens": "prompt",
	"prompt":        "prompt",
	"output_tokens": "output",
	"output":        "output",
	"session_id":    "session",
	"session":       "session",
}

// ParseTrace reads a request trace from r (see the package comment on
// the CSV schema) and returns the stream with IDs assigned in row
// order. Rows must be sorted by arrival — a log whose timestamps go
// backwards is corrupt (or mis-exported), and silently reordering it
// would hide that while changing which request each row's neighbors
// race against — so a non-monotonic arrival_ms is rejected with its
// line number, as are negative token counts. Reported line numbers are
// true file lines (from the reader's field positions), so comment
// lines and the header don't shift them: "line 5" is line 5 of the
// file, not the fifth data record.
func ParseTrace(r io.Reader) ([]Request, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	cr.Comment = '#'

	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("serve: trace: reading header: %w", err)
	}
	cols := make(map[string]int) // canonical column → field index
	for i, h := range header {
		name, ok := traceColumns[strings.ToLower(strings.TrimSpace(h))]
		if !ok {
			return nil, fmt.Errorf("serve: trace: unknown column %q (have arrival_ms|prompt_tokens|output_tokens|session_id)", h)
		}
		if _, dup := cols[name]; dup {
			return nil, fmt.Errorf("serve: trace: duplicate column %q", h)
		}
		cols[name] = i
	}
	for _, required := range []string{"arrival", "prompt"} {
		if _, ok := cols[required]; !ok {
			return nil, fmt.Errorf("serve: trace: missing required column %s", required)
		}
	}

	var reqs []Request
	prevMs := -1.0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			// csv.ParseError already names the true file line and column.
			return nil, fmt.Errorf("serve: trace: %w", err)
		}
		// FieldPos reports where the record actually sits in the file —
		// comment lines and the header have already consumed lines, so a
		// record counter would point the user at the wrong place.
		line, _ := cr.FieldPos(0)
		arrivalMs, err := strconv.ParseFloat(strings.TrimSpace(rec[cols["arrival"]]), 64)
		if err != nil || arrivalMs < 0 {
			return nil, fmt.Errorf("serve: trace: line %d: arrival_ms must be a non-negative number, got %q", line, rec[cols["arrival"]])
		}
		if arrivalMs < prevMs {
			return nil, fmt.Errorf("serve: trace: line %d: arrival_ms %g goes back in time (previous row arrived at %g); traces must be sorted by arrival", line, arrivalMs, prevMs)
		}
		prevMs = arrivalMs
		prompt, err := strconv.ParseInt(strings.TrimSpace(rec[cols["prompt"]]), 10, 64)
		if err != nil || prompt <= 0 {
			return nil, fmt.Errorf("serve: trace: line %d: prompt_tokens must be a positive integer, got %q", line, rec[cols["prompt"]])
		}
		req := Request{
			ID:        len(reqs),
			Arrival:   sim.Time(arrivalMs * 1e6),
			PromptLen: prompt,
		}
		if idx, ok := cols["output"]; ok {
			out, err := strconv.ParseInt(strings.TrimSpace(rec[idx]), 10, 64)
			if err != nil || out < 0 {
				return nil, fmt.Errorf("serve: trace: line %d: output_tokens must be a non-negative integer, got %q", line, rec[idx])
			}
			req.OutputLen = out
		}
		if idx, ok := cols["session"]; ok {
			sess, err := strconv.ParseInt(strings.TrimSpace(rec[idx]), 10, 64)
			if err != nil || sess < 0 {
				return nil, fmt.Errorf("serve: trace: line %d: session_id must be a non-negative integer, got %q", line, rec[idx])
			}
			req.SessionID = sess
		}
		reqs = append(reqs, req)
	}
	if len(reqs) == 0 {
		return nil, fmt.Errorf("serve: trace: no request rows")
	}
	return reqs, nil
}

// LoadTraceFile reads a request-trace CSV file (see ParseTrace).
func LoadTraceFile(path string) ([]Request, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("serve: trace: %w", err)
	}
	defer f.Close()
	reqs, err := ParseTrace(f)
	if err != nil {
		return nil, fmt.Errorf("%w (file %s)", err, path)
	}
	return reqs, nil
}
