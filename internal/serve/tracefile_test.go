package serve

import (
	"strings"
	"testing"

	"github.com/skipsim/skip/internal/sim"
)

func TestParseTrace(t *testing.T) {
	reqs, err := ParseTrace(strings.NewReader(
		"# a comment\n" +
			"arrival_ms,prompt_tokens,output_tokens,session_id\n" +
			"0,128,0,0\n" +
			"12.5,256,32,1\n" +
			"3000,2048,64,2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 3 {
		t.Fatalf("parsed %d requests, want 3", len(reqs))
	}
	if reqs[0].ID != 0 || reqs[0].Arrival != 0 || reqs[0].PromptLen != 128 {
		t.Errorf("first request = %+v", reqs[0])
	}
	if reqs[1].Arrival != sim.Time(12.5*1e6) || reqs[1].OutputLen != 32 || reqs[1].SessionID != 1 {
		t.Errorf("second request = %+v", reqs[1])
	}
	if reqs[2].Arrival != 3*sim.Second || reqs[2].SessionID != 2 {
		t.Errorf("third request = %+v", reqs[2])
	}
}

// TestParseTraceRejectsOutOfOrder: timestamps that go backwards mean a
// corrupt or mis-exported log; the parser names the offending line
// instead of silently reordering the calendar.
func TestParseTraceRejectsOutOfOrder(t *testing.T) {
	// The offending record is the third data row — file line 4, after
	// the header on line 1.
	_, err := ParseTrace(strings.NewReader(
		"arrival_ms,prompt_tokens\n5,128\n12.5,64\n3,256\n"))
	if err == nil {
		t.Fatal("out-of-order trace should fail")
	}
	if !strings.Contains(err.Error(), "line 4") || !strings.Contains(err.Error(), "back in time") {
		t.Errorf("error should name line 4 and the cause, got: %v", err)
	}
	// Equal timestamps are fine: logs often batch at one instant.
	if _, err := ParseTrace(strings.NewReader(
		"arrival_ms,prompt_tokens\n5,128\n5,64\n")); err != nil {
		t.Errorf("equal arrivals should parse: %v", err)
	}
}

// TestParseTraceErrorLineNumbers: reported positions must be true file
// lines — comment lines and the header consume lines too, so a record
// counter would point at the wrong place in an editor.
func TestParseTraceErrorLineNumbers(t *testing.T) {
	cases := []struct {
		name     string
		doc      string
		wantLine string
	}{
		{"comments shift the header", "# exported 2026-07-01\n# source: gateway logs\narrival_ms,prompt_tokens\n5,128\nbad,64\n", "line 5"},
		{"interleaved comment", "arrival_ms,prompt_tokens\n5,128\n# resumed after rotation\n7,0\n", "line 4"},
		{"first data row", "arrival_ms,prompt_tokens\n-1,128\n", "line 2"},
	}
	for _, tc := range cases {
		_, err := ParseTrace(strings.NewReader(tc.doc))
		if err == nil {
			t.Errorf("%s: ParseTrace should fail", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantLine) {
			t.Errorf("%s: error %q does not name %s", tc.name, err, tc.wantLine)
		}
	}
}

func TestParseTraceColumnOrderAndOptionals(t *testing.T) {
	reqs, err := ParseTrace(strings.NewReader(
		"prompt_tokens,arrival_ms\n512,7\n"))
	if err != nil {
		t.Fatal(err)
	}
	if reqs[0].PromptLen != 512 || reqs[0].OutputLen != 0 || reqs[0].SessionID != 0 {
		t.Errorf("request = %+v", reqs[0])
	}
}

func TestParseTraceRejectsBadInput(t *testing.T) {
	for name, doc := range map[string]string{
		"unknown column":   "arrival_ms,prompt_tokens,latency\n1,2,3\n",
		"duplicate column": "arrival_ms,arrival,prompt_tokens\n1,2,3\n",
		"missing arrival":  "prompt_tokens,output_tokens\n128,8\n",
		"missing prompt":   "arrival_ms,output_tokens\n1,8\n",
		"negative arrival": "arrival_ms,prompt_tokens\n-5,128\n",
		"zero prompt":      "arrival_ms,prompt_tokens\n5,0\n",
		"bad number":       "arrival_ms,prompt_tokens\nsoon,128\n",
		"negative output":  "arrival_ms,prompt_tokens,output_tokens\n5,128,-1\n",
		"no rows":          "arrival_ms,prompt_tokens\n",
		"empty":            "",
	} {
		if _, err := ParseTrace(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: ParseTrace should fail", name)
		}
	}
}

func TestTraceReplayThroughSimulate(t *testing.T) {
	reqs, err := ParseTrace(strings.NewReader(
		"arrival_ms,prompt_tokens,output_tokens\n0,128,4\n10,256,4\n20,128,4\n"))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Simulate(contConfig(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed != 3 {
		t.Errorf("completed %d of 3 replayed requests", stats.Completed)
	}
}
