package serve

import (
	"fmt"

	"github.com/skipsim/skip/internal/sim"
)

// Prefill/decode disaggregation support: a request can run its prompt
// phase on one instance (AcceptPrefill), stop the moment prefill
// completes, and resume decoding mid-stream on another (Resume). The
// state crossing instances is a Handoff — the resolved lengths, the
// tokens already streamed, the TTFT anchor, and the KV-cache extent to
// ship. The serving layer itself moves no bytes: pricing the transfer
// over the interconnect model is the disaggregation layer's job
// (internal/disagg), which receives the Handoff in a callback and
// decides where and when the request resumes.

// Handoff is the state of a request leaving a prefill instance: enough
// to resume generation on any instance serving the same model.
type Handoff struct {
	// Req is the original request (arrival instant, session, IDs).
	Req Request
	// PromptLen / OutputLen are the resolved lengths — the prefill
	// instance's config fallbacks already applied, so the decode side
	// needs no defaults of its own.
	PromptLen, OutputLen int64
	// Generated counts tokens already streamed to the user by the
	// prefill instance (the first token, emitted as prefill completes).
	Generated int64
	// FirstToken is the TTFT instant, anchoring downstream TPOT/E2E
	// accounting; the decode instance must not record a second TTFT.
	FirstToken sim.Time
	// KVLen is the cache extent in token positions (prompt + generated)
	// — what the transfer model prices.
	KVLen int64
}

// AcceptPrefill hands the request to the instance for prompt processing
// only: it queues, admits, and prefills exactly like Accept, but the
// moment its first token is emitted the request leaves this instance
// (KV released) and fn receives the handoff state. fn runs inside the
// calendar event that completed the prefill, so it may route, schedule
// transfers, and resume the request elsewhere at calendar time.
// Requests that generate exactly one token never hand off — their
// single token completes them during prefill, and they settle here as
// ordinary completions.
func (in *Instance) AcceptPrefill(now sim.Time, req Request, fn func(now sim.Time, h Handoff)) error {
	if fn == nil {
		return fmt.Errorf("serve: instance %s: AcceptPrefill needs a handoff callback", in.name)
	}
	if !in.Accepting() {
		return fmt.Errorf("serve: instance %s is %s and accepts no new work", in.name, in.s.state)
	}
	cr, err := in.s.newRequest(req)
	if err != nil {
		return err
	}
	cr.handoff = fn
	in.routed++
	in.s.arrive(now, cr)
	return nil
}

// FitsHandoff reports whether a handed-off request's lifetime KV
// footprint (prompt + full generation, lengths already resolved) fits
// this instance's budget at all.
func (in *Instance) FitsHandoff(h Handoff) bool {
	return float64(h.PromptLen+h.OutputLen)*in.s.bytesPerTok <= in.s.capacity
}

// Resume admits a handed-off request mid-stream: its transferred KV
// cache (prompt + tokens generated on the prefill side) is reserved on
// admission and decoding continues from where the prefill instance
// stopped. The request joins the wait queue like any arrival but never
// abandons — its user is already streaming output. Resume must be
// called from inside a calendar event at the instant the KV transfer
// lands.
//
// A resumed request remains preemptible: if KV pressure later evicts
// it, the transferred cache is discarded and this instance recomputes
// the prompt locally (vLLM recompute-style) before decoding on — the
// cache is not re-requested from the prefill pool. Accounting stays
// exact (the TTFT anchor and already-delivered tokens count once), but
// a decode-pool instance under heavy preemption does perform prefill
// compute; keep decode pools sized so preemptions stay rare if strict
// phase isolation matters.
func (in *Instance) Resume(now sim.Time, h Handoff) error {
	// A draining instance still honors transfers already committed to it
	// — a drain must not strand a KV cache in flight — but a stopped one
	// is gone; the caller re-routes or drops.
	if in.s.state == StateStopped {
		return fmt.Errorf("serve: instance %s is stopped and cannot resume request %d", in.name, h.Req.ID)
	}
	if !in.FitsHandoff(h) {
		return fmt.Errorf("serve: instance %s cannot ever fit resumed request %d (prompt %d + output %d tokens)",
			in.name, h.Req.ID, h.PromptLen, h.OutputLen)
	}
	cr := &contRequest{
		req:        h.Req,
		promptLen:  h.PromptLen,
		outputLen:  h.OutputLen,
		promptDone: h.PromptLen,
		generated:  h.Generated,
		delivered:  h.Generated,
		kvBytes:    0, // reserved at admission
		firstTok:   h.FirstToken,
		hasFirst:   true,
		resumed:    true,
	}
	in.s.resumed++
	in.s.arrive(now, cr)
	return nil
}
