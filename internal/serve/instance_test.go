package serve

import (
	"testing"

	"github.com/skipsim/skip/internal/sim"
)

// TestInstanceMatchesSimulate pins the refactor invariant: an Instance
// driven by an external calendar must reproduce Simulate's results
// exactly when every request is handed to it at its arrival time.
func TestInstanceMatchesSimulate(t *testing.T) {
	cfg := contConfig()
	reqs := mustUniform(t, 12, 2*sim.Millisecond)

	want, err := Simulate(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}

	cal := sim.NewCalendar()
	in, err := NewInstance("solo", cfg, cal)
	if err != nil {
		t.Fatal(err)
	}
	for i := range reqs {
		req := reqs[i]
		cal.Schedule(req.Arrival, func(now sim.Time) {
			if err := in.Accept(now, req); err != nil {
				t.Errorf("accept %d: %v", req.ID, err)
			}
		})
	}
	cal.Run()
	if err := in.Err(); err != nil {
		t.Fatal(err)
	}
	got := in.Stats()

	if got.Completed != want.Completed || got.Batches != want.Batches ||
		got.P50TTFT != want.P50TTFT || got.P95TTFT != want.P95TTFT ||
		got.P95E2E != want.P95E2E || got.TokensOut != want.TokensOut ||
		got.Horizon != want.Horizon || got.PeakKVBytes != want.PeakKVBytes {
		t.Errorf("externally-driven instance diverged from Simulate:\n got %+v\nwant %+v", got, want)
	}
	if in.Routed() != len(reqs) {
		t.Errorf("routed %d, want %d", in.Routed(), len(reqs))
	}
	ttfts, _, e2es := in.Latencies()
	if len(ttfts) != want.Completed || len(e2es) != want.Completed {
		t.Errorf("latency samples %d/%d, want %d each", len(ttfts), len(e2es), want.Completed)
	}
}

func TestInstanceSharedCalendarInterleaves(t *testing.T) {
	cfg := contConfig()
	cal := sim.NewCalendar()
	a, err := NewInstance("a", cfg, cal)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewInstance("b", cfg, cal)
	if err != nil {
		t.Fatal(err)
	}
	// Alternate arrivals between the two instances on one clock.
	reqs := mustUniform(t, 10, sim.Millisecond)
	for i := range reqs {
		req := reqs[i]
		dst := a
		if i%2 == 1 {
			dst = b
		}
		cal.Schedule(req.Arrival, func(now sim.Time) {
			if err := dst.Accept(now, req); err != nil {
				t.Errorf("accept %d: %v", req.ID, err)
			}
		})
	}
	cal.Run()
	sa, sb := a.Stats(), b.Stats()
	if sa.Completed != 5 || sb.Completed != 5 {
		t.Errorf("completed %d + %d, want 5 + 5", sa.Completed, sb.Completed)
	}
	if a.Routed()+b.Routed() != len(reqs) {
		t.Errorf("routed %d + %d, want %d total", a.Routed(), b.Routed(), len(reqs))
	}
}

func TestInstanceValidation(t *testing.T) {
	cfg := contConfig()
	if _, err := NewInstance("x", cfg, nil); err == nil {
		t.Error("nil calendar should fail")
	}
	legacy := cfg
	legacy.Policy = GreedyBatch
	if _, err := NewInstance("x", legacy, sim.NewCalendar()); err == nil {
		t.Error("legacy run-to-completion policy cannot be externally stepped")
	}
}

func TestInstanceFitsAndAcceptReject(t *testing.T) {
	bpt := gpt2KVBytesPerToken()
	cfg := contConfig()
	cfg.KVCapacityBytes = 40 * bpt // less than one 64-token default prompt
	cal := sim.NewCalendar()
	in, err := NewInstance("tiny", cfg, cal)
	if err != nil {
		t.Fatal(err)
	}
	big := Request{ID: 0} // falls back to Seq=64 + DefaultOutputLen
	if in.Fits(big) {
		t.Error("64-token lifetime cannot fit a 40-token budget")
	}
	if err := in.Accept(0, big); err == nil {
		t.Error("accepting an infeasible request should fail")
	}
	if in.Routed() != 0 {
		t.Errorf("rejected request must not count as routed: %d", in.Routed())
	}
	small := Request{ID: 1, PromptLen: 16, OutputLen: 2}
	if !in.Fits(small) {
		t.Error("18-token lifetime fits a 40-token budget")
	}
}

func TestInstanceLoadAccessors(t *testing.T) {
	bpt := gpt2KVBytesPerToken()
	cfg := contConfig()
	cfg.KVCapacityBytes = 96 * bpt // one 64+4 request at a time
	cal := sim.NewCalendar()
	in, err := NewInstance("x", cfg, cal)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		req := Request{ID: i}
		cal.Schedule(0, func(now sim.Time) {
			if err := in.Accept(now, req); err != nil {
				t.Errorf("accept: %v", err)
			}
		})
	}
	// Fire the two same-instant arrivals plus the deferred kick, then
	// inspect mid-simulation state: one running, one queued.
	cal.Step()
	cal.Step()
	cal.Step()
	if in.Running() != 1 || in.QueueDepth() != 1 || in.Outstanding() != 2 {
		t.Errorf("running %d queue %d outstanding %d, want 1/1/2",
			in.Running(), in.QueueDepth(), in.Outstanding())
	}
	if in.KVFrac() <= 0 || in.KVFrac() > 1 {
		t.Errorf("KV frac %v", in.KVFrac())
	}
	// Pressure counts the queued prompt too: 64 admitted + 64 queued of
	// the 96 budget.
	if in.KVPressure() <= in.KVFrac() {
		t.Errorf("pressure %v should exceed admitted fraction %v with a queued prompt",
			in.KVPressure(), in.KVFrac())
	}
	cal.Run()
	if s := in.Stats(); s.Completed != 2 {
		t.Errorf("completed %d of 2", s.Completed)
	}
}
