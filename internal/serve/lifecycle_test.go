package serve

import (
	"testing"

	"github.com/skipsim/skip/internal/sim"
)

// TestDrainFinishesInFlightWork: a draining instance refuses fresh
// placements but completes everything already placed, then stops —
// emitting drain-start and instance-gone in order.
func TestDrainFinishesInFlightWork(t *testing.T) {
	var events []Event
	cfg := contConfig()
	cfg.Observer = func(e Event) { events = append(events, e) }
	cal := sim.NewCalendar()
	in, err := NewInstance("d", cfg, cal)
	if err != nil {
		t.Fatal(err)
	}
	reqs := mustUniform(t, 6, 2*sim.Millisecond)
	for i := range reqs {
		req := reqs[i]
		cal.Schedule(req.Arrival, func(now sim.Time) {
			if err := in.Accept(now, req); err != nil {
				t.Errorf("accept %d: %v", req.ID, err)
			}
		})
	}
	drainAt := reqs[len(reqs)-1].Arrival + sim.Microsecond
	cal.Schedule(drainAt, func(now sim.Time) {
		in.Drain(now)
		if in.State() != StateDraining {
			t.Errorf("state after Drain = %v, want draining", in.State())
		}
		if in.Accepting() {
			t.Error("draining instance still reports Accepting")
		}
		if err := in.Accept(now, Request{ID: 999}); err == nil {
			t.Error("draining instance accepted fresh work")
		}
	})
	cal.Run()
	if err := in.Err(); err != nil {
		t.Fatal(err)
	}
	if in.State() != StateStopped {
		t.Errorf("state after running dry = %v, want stopped", in.State())
	}
	st := in.Stats()
	if st.Completed != 6 {
		t.Errorf("completed %d of 6 in-flight requests across the drain", st.Completed)
	}
	var sawDrain, sawGone bool
	for _, e := range events {
		switch e.Type {
		case EventDrainStart:
			sawDrain = true
			if sawGone {
				t.Error("instance-gone before drain-start")
			}
		case EventInstanceGone:
			sawGone = true
			if !sawDrain {
				t.Error("instance-gone without a preceding drain-start")
			}
			if e.Detail != "drained" {
				t.Errorf("instance-gone detail %q, want \"drained\"", e.Detail)
			}
		}
	}
	if !sawDrain || !sawGone {
		t.Errorf("lifecycle events missing: drain-start %v instance-gone %v", sawDrain, sawGone)
	}
}

// TestKillEvictsEverything: a kill stops the instance immediately,
// returning every waiting and running request as an Evicted record with
// resolved lengths, and the instance's ledger counts them as killed.
func TestKillEvictsEverything(t *testing.T) {
	cfg := contConfig()
	cal := sim.NewCalendar()
	in, err := NewInstance("k", cfg, cal)
	if err != nil {
		t.Fatal(err)
	}
	reqs := mustUniform(t, 8, sim.Millisecond)
	for i := range reqs {
		req := reqs[i]
		cal.Schedule(req.Arrival, func(now sim.Time) {
			if err := in.Accept(now, req); err != nil {
				t.Errorf("accept %d: %v", req.ID, err)
			}
		})
	}
	killAt := reqs[len(reqs)-1].Arrival + sim.Microsecond
	var evs []Evicted
	cal.Schedule(killAt, func(now sim.Time) {
		outstanding := in.Outstanding()
		evs = in.Kill(now)
		if len(evs) != outstanding {
			t.Errorf("kill evicted %d, want the %d outstanding", len(evs), outstanding)
		}
		if in.State() != StateStopped {
			t.Errorf("state after Kill = %v, want stopped", in.State())
		}
		if in.Outstanding() != 0 {
			t.Errorf("%d requests still outstanding after Kill", in.Outstanding())
		}
		if again := in.Kill(now); again != nil {
			t.Errorf("second Kill returned %d evictions, want nil", len(again))
		}
	})
	cal.Run()
	if err := in.Err(); err != nil {
		t.Fatal(err)
	}
	st := in.Stats()
	if st.Killed != len(evs) {
		t.Errorf("stats killed %d, want %d", st.Killed, len(evs))
	}
	if st.Completed+st.Killed != len(reqs) {
		t.Errorf("completed %d + killed %d != %d accepted", st.Completed, st.Killed, len(reqs))
	}
	for _, ev := range evs {
		if ev.PromptLen <= 0 || ev.OutputLen <= 0 {
			t.Errorf("eviction %d carries unresolved lengths %d/%d", ev.Req.ID, ev.PromptLen, ev.OutputLen)
		}
		if ev.Prefill {
			t.Errorf("eviction %d marked prefill on a monolithic instance", ev.Req.ID)
		}
	}
}

// TestAcceptRequeuedSettlesExactlyOnce: a request killed on one
// instance and requeued on another completes exactly once, recomputing
// from scratch; a mid-stream victim contributes no second TTFT sample
// on its new host.
func TestAcceptRequeuedSettlesExactlyOnce(t *testing.T) {
	cfg := contConfig()
	cal := sim.NewCalendar()
	a, err := NewInstance("a", cfg, cal)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewInstance("b", cfg, cal)
	if err != nil {
		t.Fatal(err)
	}
	reqs := mustUniform(t, 4, sim.Millisecond)
	for i := range reqs {
		req := reqs[i]
		cal.Schedule(req.Arrival, func(now sim.Time) {
			if err := a.Accept(now, req); err != nil {
				t.Errorf("accept %d: %v", req.ID, err)
			}
		})
	}
	// Kill late enough that some victims are mid-stream (first token
	// served), then requeue everything on b.
	cal.Schedule(reqs[len(reqs)-1].Arrival+20*sim.Millisecond, func(now sim.Time) {
		evs := a.Kill(now)
		for _, ev := range evs {
			if err := b.AcceptRequeued(now, ev); err != nil {
				t.Errorf("requeue %d: %v", ev.Req.ID, err)
			}
		}
	})
	cal.Run()
	if err := a.Err(); err != nil {
		t.Fatal(err)
	}
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
	sa, sb := a.Stats(), b.Stats()
	if sa.Completed+sa.Killed != len(reqs) {
		t.Errorf("a: completed %d + killed %d != %d", sa.Completed, sa.Killed, len(reqs))
	}
	if sb.Completed != sa.Killed {
		t.Errorf("b completed %d, want the %d requeued", sb.Completed, sa.Killed)
	}
	// TTFT samples across both hosts must total one per request: a
	// victim whose first token was served on a keeps that sample; one
	// still waiting samples on b instead.
	ta, _, _ := a.Latencies()
	tb, _, _ := b.Latencies()
	if len(ta)+len(tb) != len(reqs) {
		t.Errorf("TTFT samples %d + %d across hosts, want exactly %d", len(ta), len(tb), len(reqs))
	}
}

// TestSlowFactorStretchesIterations: a slow-node multiplier must
// lengthen the horizon of an identical workload.
func TestSlowFactorStretchesIterations(t *testing.T) {
	run := func(factor float64) sim.Time {
		cfg := contConfig()
		cal := sim.NewCalendar()
		in, err := NewInstance("s", cfg, cal)
		if err != nil {
			t.Fatal(err)
		}
		if factor > 1 {
			if err := in.SetSlowFactor(factor); err != nil {
				t.Fatal(err)
			}
		}
		reqs := mustUniform(t, 10, sim.Millisecond)
		for i := range reqs {
			req := reqs[i]
			cal.Schedule(req.Arrival, func(now sim.Time) {
				if err := in.Accept(now, req); err != nil {
					t.Errorf("accept %d: %v", req.ID, err)
				}
			})
		}
		cal.Run()
		if err := in.Err(); err != nil {
			t.Fatal(err)
		}
		return in.Stats().Horizon
	}
	base, slowed := run(1), run(4)
	if slowed <= base {
		t.Errorf("4× slow node finished in %v, not slower than the %v baseline", slowed, base)
	}
	cal := sim.NewCalendar()
	in, err := NewInstance("s", contConfig(), cal)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.SetSlowFactor(0.5); err == nil {
		t.Error("SetSlowFactor accepted a speed-up factor below 1")
	}
}
