package serve

import (
	"strings"
	"testing"

	"github.com/skipsim/skip/internal/sim"
	"github.com/skipsim/skip/internal/trace"
)

// feed drives a builder with a synthetic event stream.
func feed(b *TimelineBuilder, events []Event) {
	for _, e := range events {
		b.Observe(e)
	}
}

func ms(n int64) sim.Time { return sim.Time(n) * sim.Millisecond }

func TestTimelineSingleInstanceLifecycle(t *testing.T) {
	b := NewTimelineBuilder()
	feed(b, []Event{
		{Time: ms(0), Type: EventArrival, RequestID: 1},
		{Time: ms(5), Type: EventAdmitted, RequestID: 1},
		{Time: ms(30), Type: EventFirstToken, RequestID: 1},
		{Time: ms(90), Type: EventCompleted, RequestID: 1},
	})
	if err := b.Reconcile(); err != nil {
		t.Fatal(err)
	}
	tls := b.Timelines()
	if len(tls) != 1 {
		t.Fatalf("got %d timelines, want 1", len(tls))
	}
	tl := tls[0]
	if tl.Outcome != "completed" || tl.FirstTokens != 1 {
		t.Fatalf("outcome %q firstTokens %d, want completed/1", tl.Outcome, tl.FirstTokens)
	}
	wantKinds := []SegmentKind{SegQueue, SegPrefill, SegDecode}
	if len(tl.Segments) != len(wantKinds) {
		t.Fatalf("got %d segments %v, want %d", len(tl.Segments), tl.Segments, len(wantKinds))
	}
	for i, k := range wantKinds {
		if tl.Segments[i].Kind != k {
			t.Errorf("segment %d kind = %s, want %s", i, tl.Segments[i].Kind, k)
		}
	}
	// The spans tile the request's life exactly: queue 0-5, prefill
	// 5-30, decode 30-90.
	if tl.Segments[0].Start != 0 || tl.Segments[2].End != ms(90) {
		t.Errorf("timeline spans [%v, %v], want [0, 90ms]", tl.Segments[0].Start, tl.Segments[2].End)
	}
	for i := 1; i < len(tl.Segments); i++ {
		if tl.Segments[i].Start != tl.Segments[i-1].End {
			t.Errorf("gap between segment %d and %d", i-1, i)
		}
	}
}

func TestTimelinePreemptionSplitsDecode(t *testing.T) {
	b := NewTimelineBuilder()
	feed(b, []Event{
		{Time: ms(0), Type: EventArrival, RequestID: 7},
		{Time: ms(1), Type: EventAdmitted, RequestID: 7},
		{Time: ms(10), Type: EventFirstToken, RequestID: 7},
		{Time: ms(20), Type: EventPreempted, RequestID: 7},
		{Time: ms(40), Type: EventAdmitted, RequestID: 7},
		{Time: ms(80), Type: EventCompleted, RequestID: 7},
	})
	if err := b.Reconcile(); err != nil {
		t.Fatal(err)
	}
	tl := b.Timelines()[0]
	wantKinds := []SegmentKind{SegQueue, SegPrefill, SegDecode, SegRequeue, SegDecode}
	if len(tl.Segments) != len(wantKinds) {
		t.Fatalf("segments = %v, want kinds %v", tl.Segments, wantKinds)
	}
	for i, k := range wantKinds {
		if tl.Segments[i].Kind != k {
			t.Errorf("segment %d kind = %s, want %s", i, tl.Segments[i].Kind, k)
		}
	}
	// The decode span the preemption cut carries the note; re-admission
	// resumes decode (not prefill) because the first token already went
	// out — and TTFT is still sampled exactly once.
	if tl.Segments[2].Note != "preempted" {
		t.Errorf("cut decode span note = %q, want preempted", tl.Segments[2].Note)
	}
	if tl.FirstTokens != 1 {
		t.Errorf("FirstTokens = %d, want 1", tl.FirstTokens)
	}
}

func TestTimelineTransferRelabelsStallAndUsesLinkThread(t *testing.T) {
	b := NewTimelineBuilder()
	feed(b, []Event{
		{Time: ms(0), Type: EventRouted, RequestID: 3, Instance: "pre#0"},
		{Time: ms(0), Type: EventArrival, RequestID: 3, Instance: "pre#0"},
		{Time: ms(1), Type: EventAdmitted, RequestID: 3, Instance: "pre#0"},
		{Time: ms(10), Type: EventFirstToken, RequestID: 3, Instance: "pre#0"},
		// The wire was busy until 14: the decode-shaped span 10-14 was
		// really a stall.
		{Time: ms(14), Type: EventKVTransferStart, RequestID: 3, Instance: "pre#0", Link: "pre#0->dec#0"},
		{Time: ms(18), Type: EventKVTransferDone, RequestID: 3, Instance: "dec#0", Link: "pre#0->dec#0"},
		{Time: ms(18), Type: EventArrival, RequestID: 3, Instance: "dec#0"},
		{Time: ms(19), Type: EventAdmitted, RequestID: 3, Instance: "dec#0"},
		{Time: ms(60), Type: EventCompleted, RequestID: 3, Instance: "dec#0"},
	})
	if err := b.Reconcile(); err != nil {
		t.Fatal(err)
	}
	tl := b.Timelines()[0]
	wantKinds := []SegmentKind{SegQueue, SegPrefill, SegStall, SegTransfer, SegQueue, SegDecode}
	if len(tl.Segments) != len(wantKinds) {
		t.Fatalf("segments = %v, want kinds %v", tl.Segments, wantKinds)
	}
	for i, k := range wantKinds {
		if tl.Segments[i].Kind != k {
			t.Errorf("segment %d kind = %s, want %s", i, tl.Segments[i].Kind, k)
		}
	}
	tr := b.Trace()
	// Thread layout: instances on TIDs 1..N in first-appearance order,
	// the link on 1001.
	if tr.Threads[1] != "pre#0" || tr.Threads[2] != "dec#0" || tr.Threads[1001] != "link pre#0->dec#0" {
		t.Fatalf("thread layout = %v", tr.Threads)
	}
	for _, ev := range tr.Events {
		if ev.Cat == trace.CatTransfer && ev.TID != 1001 {
			t.Errorf("transfer span on TID %d, want 1001", ev.TID)
		}
		if ev.Req != 3 {
			t.Errorf("span %q carries request %d, want 3", ev.Name, ev.Req)
		}
	}
}

func TestTimelineZeroLengthStallDropped(t *testing.T) {
	b := NewTimelineBuilder()
	feed(b, []Event{
		{Time: ms(0), Type: EventArrival, RequestID: 4, Instance: "pre#0"},
		{Time: ms(1), Type: EventAdmitted, RequestID: 4, Instance: "pre#0"},
		{Time: ms(10), Type: EventFirstToken, RequestID: 4, Instance: "pre#0"},
		// A free link: the transfer starts the instant prefill finished.
		{Time: ms(10), Type: EventKVTransferStart, RequestID: 4, Instance: "pre#0", Link: "l"},
		{Time: ms(12), Type: EventKVTransferDone, RequestID: 4, Instance: "dec#0", Link: "l"},
		{Time: ms(12), Type: EventArrival, RequestID: 4, Instance: "dec#0"},
		{Time: ms(12), Type: EventAdmitted, RequestID: 4, Instance: "dec#0"},
		{Time: ms(40), Type: EventCompleted, RequestID: 4, Instance: "dec#0"},
	})
	if err := b.Reconcile(); err != nil {
		t.Fatal(err)
	}
	for _, seg := range b.Timelines()[0].Segments {
		if seg.Kind == SegStall {
			t.Errorf("zero-length stall survived: %+v", seg)
		}
	}
}

func TestTimelineReconcileCatchesOpenSegment(t *testing.T) {
	b := NewTimelineBuilder()
	feed(b, []Event{
		{Time: ms(0), Type: EventArrival, RequestID: 9},
		{Time: ms(1), Type: EventAdmitted, RequestID: 9},
	})
	err := b.Reconcile()
	if err == nil || !strings.Contains(err.Error(), "open") {
		t.Fatalf("Reconcile() = %v, want open-segment error", err)
	}
}

func TestTimelineTraceRoundTrip(t *testing.T) {
	b := NewTimelineBuilder()
	feed(b, []Event{
		{Time: ms(0), Type: EventRouted, RequestID: 2, Instance: "a"},
		{Time: ms(0), Type: EventArrival, RequestID: 2, Instance: "a"},
		{Time: ms(2), Type: EventAdmitted, RequestID: 2, Instance: "a"},
		{Time: ms(9), Type: EventFirstToken, RequestID: 2, Instance: "a"},
		{Time: ms(30), Type: EventCompleted, RequestID: 2, Instance: "a"},
	})
	tr := b.Trace()
	var buf strings.Builder
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := trace.ReadJSON(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Events) != len(tr.Events) {
		t.Fatalf("round trip kept %d events, want %d", len(back.Events), len(tr.Events))
	}
	if back.Threads[1] != "a" {
		t.Errorf("thread name lost in round trip: %v", back.Threads)
	}
	for i, ev := range back.Events {
		if ev.Req != tr.Events[i].Req || ev.Cat != tr.Events[i].Cat || ev.Name != tr.Events[i].Name {
			t.Errorf("event %d round trip mismatch: got %+v want %+v", i, ev, tr.Events[i])
		}
	}
}
