package serve

import (
	"fmt"
	"sort"

	"github.com/skipsim/skip/internal/sim"
	"github.com/skipsim/skip/internal/trace"
)

// SegmentKind classifies one span of a request's timeline.
type SegmentKind int

const (
	// SegQueue: waiting for admission (front-door routing included).
	SegQueue SegmentKind = iota
	// SegPrefill: prompt processing, admission to first token.
	SegPrefill
	// SegDecode: token generation, first token (or resume) to done.
	SegDecode
	// SegStall: prefill finished, KV transfer not yet on the wire.
	SegStall
	// SegTransfer: KV cache moving across an interconnect link.
	SegTransfer
	// SegRequeue: evicted or preempted, waiting for re-admission.
	SegRequeue
)

func (k SegmentKind) String() string {
	switch k {
	case SegQueue:
		return "queue"
	case SegPrefill:
		return "prefill"
	case SegDecode:
		return "decode"
	case SegStall:
		return "kv-stall"
	case SegTransfer:
		return "kv-transfer"
	case SegRequeue:
		return "requeue"
	default:
		return fmt.Sprintf("segment(%d)", int(k))
	}
}

// Category maps the segment kind onto its Chrome-trace category.
func (k SegmentKind) Category() trace.Category {
	switch k {
	case SegQueue:
		return trace.CatQueue
	case SegPrefill:
		return trace.CatPrefill
	case SegDecode:
		return trace.CatDecode
	case SegStall:
		return trace.CatStall
	case SegTransfer:
		return trace.CatTransfer
	default:
		return trace.CatRequeue
	}
}

// Segment is one closed span of a request's life.
type Segment struct {
	Kind  SegmentKind
	Start sim.Time
	End   sim.Time
	// Where names the serving instance the span ran on, or the
	// source→destination link for transfer segments.
	Where string
	// Note marks an abnormal close: "preempted" (KV pressure evicted
	// the running request) or "evicted" (a crash killed its instance).
	Note string
}

// RequestTimeline is one request's assembled span sequence: ordered,
// non-overlapping segments from first sight to terminal outcome.
type RequestTimeline struct {
	RequestID int
	SessionID int64
	// Routed counts trips through a front door: the initial placement
	// plus one per crash requeue (0 for single-instance serving).
	Routed int
	// Requeues counts crash-driven re-placements.
	Requeues int
	// FirstTokens counts TTFT instants observed — at most one even
	// across preemption and requeue, because arrival anchors persist.
	FirstTokens int
	// Outcome is the terminal state: "completed", "abandoned",
	// "dropped" (evicted and unroutable), "" while still in flight.
	Outcome  string
	Segments []Segment
}

// open is the in-progress segment, nil between spans.
type openSegment struct {
	kind  SegmentKind
	start sim.Time
	where string
}

type timelineState struct {
	tl   *RequestTimeline
	open *openSegment
	// hasFirst: the first token has been delivered, so later admissions
	// resume decode rather than start prefill.
	hasFirst bool
}

// TimelineBuilder assembles per-request span timelines from a lifecycle
// event stream. Install its Observe method as the simulation observer,
// then read Timelines or export Trace once the run completes. The
// builder is a pure consumer of events — it works identically for
// serve, cluster, and disagg runs, and is deterministic because the
// event stream is.
type TimelineBuilder struct {
	byReq map[int]*timelineState
	order []int // request ids in first-sight order

	// Chrome-trace thread layout: instances claim TIDs 1..N and links
	// 1001..1000+M, both in first-appearance order.
	instTID map[string]int
	linkTID map[string]int
	threads map[int]string
}

// linkTIDBase offsets link threads away from instance threads, the same
// convention streamTID uses for device streams in kernel traces.
const linkTIDBase = 1000

// NewTimelineBuilder returns an empty builder.
func NewTimelineBuilder() *TimelineBuilder {
	return &TimelineBuilder{
		byReq:   make(map[int]*timelineState),
		instTID: make(map[string]int),
		linkTID: make(map[string]int),
		threads: make(map[int]string),
	}
}

func (b *TimelineBuilder) instanceTID(name string) int {
	if tid, ok := b.instTID[name]; ok {
		return tid
	}
	tid := len(b.instTID) + 1
	b.instTID[name] = tid
	label := name
	if label == "" {
		label = "server"
	}
	b.threads[tid] = label
	return tid
}

func (b *TimelineBuilder) linkThreadID(name string) int {
	if tid, ok := b.linkTID[name]; ok {
		return tid
	}
	tid := linkTIDBase + len(b.linkTID) + 1
	b.linkTID[name] = tid
	b.threads[tid] = "link " + name
	return tid
}

func (b *TimelineBuilder) state(e Event) *timelineState {
	st := b.byReq[e.RequestID]
	if st == nil {
		st = &timelineState{tl: &RequestTimeline{RequestID: e.RequestID, SessionID: e.SessionID}}
		b.byReq[e.RequestID] = st
		b.order = append(b.order, e.RequestID)
	}
	if st.tl.SessionID == 0 {
		st.tl.SessionID = e.SessionID
	}
	return st
}

// closeOpen ends the in-progress segment at now. Zero-length stall
// segments are dropped — a transfer that hits a free link stalls for
// exactly nothing, and a span of nothing is noise in the viewer.
func (st *timelineState) closeOpen(now sim.Time, note string) {
	if st.open == nil {
		return
	}
	seg := Segment{Kind: st.open.kind, Start: st.open.start, End: now, Where: st.open.where, Note: note}
	st.open = nil
	if seg.Kind == SegStall && seg.Start == seg.End {
		return
	}
	st.tl.Segments = append(st.tl.Segments, seg)
}

func (st *timelineState) openAt(kind SegmentKind, now sim.Time, where string) {
	st.open = &openSegment{kind: kind, start: now, where: where}
}

// Observe consumes one lifecycle event. It is an Observer.
func (b *TimelineBuilder) Observe(e Event) {
	switch e.Type {
	case EventProgress, EventInstanceJoin, EventDrainStart, EventInstanceGone, EventFaultInjected:
		return
	}
	st := b.state(e)
	switch e.Type {
	case EventRouted:
		st.tl.Routed++
		b.instanceTID(e.Instance)
		st.closeOpen(e.Time, "")
		st.openAt(SegQueue, e.Time, e.Instance)
	case EventArrival:
		b.instanceTID(e.Instance)
		switch {
		case st.open == nil:
			// Fresh single-instance arrival, or the decode-side arrival
			// after a KV transfer landed: the request queues again.
			st.openAt(SegQueue, e.Time, e.Instance)
		case st.open.where != e.Instance:
			// A crash killed the open segment's instance; the router
			// re-placed the request here (EventRequeued follows). Close
			// the orphaned span as evicted and start the requeue gap.
			st.closeOpen(e.Time, "evicted")
			st.openAt(SegRequeue, e.Time, e.Instance)
		}
		// Same instance with an open queue span (the routed instant):
		// nothing to do — the queue segment is already running.
	case EventRequeued:
		st.tl.Requeues++
	case EventAdmitted:
		st.closeOpen(e.Time, "")
		if st.hasFirst {
			st.openAt(SegDecode, e.Time, e.Instance)
		} else {
			st.openAt(SegPrefill, e.Time, e.Instance)
		}
	case EventFirstToken:
		st.closeOpen(e.Time, "")
		st.hasFirst = true
		st.tl.FirstTokens++
		st.openAt(SegDecode, e.Time, e.Instance)
	case EventPreempted:
		st.closeOpen(e.Time, "preempted")
		st.openAt(SegRequeue, e.Time, e.Instance)
	case EventKVTransferStart:
		// The span since first-token was decode-shaped but nothing
		// decoded — the prefilled cache sat waiting for the wire.
		if st.open != nil && (st.open.kind == SegDecode || st.open.kind == SegPrefill) {
			st.open.kind = SegStall
		}
		st.closeOpen(e.Time, "")
		b.linkThreadID(e.Link)
		st.openAt(SegTransfer, e.Time, e.Link)
	case EventKVTransferDone:
		st.closeOpen(e.Time, "")
	case EventCompleted:
		st.closeOpen(e.Time, "")
		st.tl.Outcome = "completed"
	case EventAbandoned:
		st.closeOpen(e.Time, "")
		st.tl.Outcome = "abandoned"
	case EventRejected:
		st.tl.Outcome = "rejected"
	case EventUnroutable:
		if len(st.tl.Segments) > 0 || st.open != nil {
			// A requeue that fit nowhere: the eviction is final.
			st.closeOpen(e.Time, "evicted")
			st.tl.Outcome = "dropped"
		} else {
			st.tl.Outcome = "unroutable"
		}
	}
}

// Timelines returns the assembled timelines in first-sight order.
func (b *TimelineBuilder) Timelines() []*RequestTimeline {
	out := make([]*RequestTimeline, 0, len(b.order))
	for _, id := range b.order {
		out = append(out, b.byReq[id].tl)
	}
	return out
}

// Reconcile checks the structural invariants every finished run must
// satisfy: no request still mid-span, segments ordered and
// non-overlapping, at most one TTFT instant per request, and exactly
// one for every completed request.
func (b *TimelineBuilder) Reconcile() error {
	for _, id := range b.order {
		st := b.byReq[id]
		tl := st.tl
		if st.open != nil {
			return fmt.Errorf("timeline: request %d ends with an open %s segment", id, st.open.kind)
		}
		for i, seg := range tl.Segments {
			if seg.End < seg.Start {
				return fmt.Errorf("timeline: request %d segment %d (%s) ends before it starts", id, i, seg.Kind)
			}
			if i > 0 && seg.Start < tl.Segments[i-1].End {
				return fmt.Errorf("timeline: request %d segment %d (%s) overlaps its predecessor", id, i, seg.Kind)
			}
		}
		if tl.FirstTokens > 1 {
			return fmt.Errorf("timeline: request %d sampled TTFT %d times", id, tl.FirstTokens)
		}
		if tl.Outcome == "completed" && tl.FirstTokens != 1 {
			return fmt.Errorf("timeline: completed request %d has %d first-token spans, want 1", id, tl.FirstTokens)
		}
		if tl.Outcome == "" && len(tl.Segments) > 0 {
			return fmt.Errorf("timeline: request %d has spans but no terminal outcome", id)
		}
	}
	return nil
}

// Trace exports every timeline as Chrome-trace complete events: one
// thread per instance (TIDs from 1, named), one thread per transfer
// link (TIDs from 1001), each segment a complete event in its kind's
// category carrying the request id. The result loads in Perfetto /
// chrome://tracing with instances and links as labeled tracks.
func (b *TimelineBuilder) Trace() *trace.Trace {
	t := trace.New()
	t.Threads = make(map[int]string, len(b.threads))
	for tid, name := range b.threads {
		t.Threads[tid] = name
	}
	for _, id := range b.order {
		tl := b.byReq[id].tl
		for _, seg := range tl.Segments {
			tid := b.instTID[seg.Where]
			if seg.Kind == SegTransfer {
				tid = b.linkTID[seg.Where]
			}
			name := seg.Kind.String()
			if seg.Note != "" {
				name += " [" + seg.Note + "]"
			}
			t.Append(trace.Event{
				Name: name, Cat: seg.Kind.Category(),
				Ts: seg.Start, Dur: seg.End - seg.Start,
				TID: tid, Req: tl.RequestID,
			})
		}
	}
	t.Sort()
	// Same-timestamp events sort stably by emission (request) order;
	// re-sorting by (Ts, TID) keeps the file diffable regardless.
	sort.SliceStable(t.Events, func(i, j int) bool {
		if t.Events[i].Ts != t.Events[j].Ts {
			return t.Events[i].Ts < t.Events[j].Ts
		}
		return t.Events[i].TID < t.Events[j].TID
	})
	return t
}
