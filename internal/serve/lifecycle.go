package serve

import (
	"fmt"

	"github.com/skipsim/skip/internal/sim"
)

// Dynamic instance lifecycle: an Instance on a shared calendar can now
// leave a *running* simulation (drain or kill) and new instances can
// join one (NewInstance is callable from inside a calendar event), so a
// fleet's membership is no longer frozen at construction. The fleet
// layers (cluster, disagg) build autoscaling and failure injection on
// these primitives; the serving layer itself only defines the states
// and the exact accounting that keeps the request ledger reconcilable
// under churn.
//
// State machine:
//
//	Active ──Drain──▶ Draining ──(queue+batch run dry)──▶ Stopped
//	   │                  │
//	   └──────Kill────────┴──────────────────────────────▶ Stopped
//
// Active instances accept new work. Draining instances refuse fresh
// placements but finish everything already theirs (committed KV
// handoffs may still Resume on them — a drain must not strand a cache
// already in flight). Stopped instances refuse everything; a kill
// evicts all in-flight work as Evicted records for the fleet layer to
// requeue, so no request is silently lost.

// InstanceState is the lifecycle state of a serving instance.
type InstanceState int

const (
	// StateActive accepts new work (every instance starts here).
	StateActive InstanceState = iota
	// StateDraining refuses fresh placements and leaves once its
	// in-flight work settles.
	StateDraining
	// StateStopped is out of the fleet: drained dry or killed.
	StateStopped
)

func (s InstanceState) String() string {
	switch s {
	case StateActive:
		return "active"
	case StateDraining:
		return "draining"
	case StateStopped:
		return "stopped"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// State reports the instance's lifecycle state.
func (in *Instance) State() InstanceState { return in.s.state }

// Accepting reports whether the router may place fresh work here.
func (in *Instance) Accepting() bool { return in.s.state == StateActive }

// Drain stops fresh placements; in-flight work (wait queue and running
// batch, plus any KV handoff already committed to this instance)
// finishes normally, after which the instance stops. Emits
// EventDrainStart now and EventInstanceGone when the instance runs dry.
// Draining an already draining or stopped instance is a no-op.
func (in *Instance) Drain(now sim.Time) {
	s := in.s
	if s.state != StateActive {
		return
	}
	s.state = StateDraining
	s.emitLifecycle(now, EventDrainStart, "")
	s.maybeFinishDrain(now)
}

// Evicted is one in-flight request a kill pushed out: enough state for
// the fleet layer to requeue it elsewhere with exact accounting. Like a
// preemption, the KV cache and compute progress are lost — the request
// recomputes from scratch wherever it lands — but tokens already
// streamed to the user count once (Delivered high-water) and a request
// whose first token was already served must not record a second TTFT
// sample (HasFirst anchors it).
type Evicted struct {
	// Req is the original request (arrival instant, session, IDs).
	Req Request
	// PromptLen / OutputLen are the resolved lengths, so a requeue onto
	// an instance with different config defaults cannot change them.
	PromptLen, OutputLen int64
	// Delivered counts tokens already streamed to the user.
	Delivered int64
	// FirstToken / HasFirst anchor TTFT accounting across the requeue.
	FirstToken sim.Time
	HasFirst   bool
	// Prefill marks a prefill-only (AcceptPrefill) request that had not
	// yet handed off; the fleet layer re-places it on the prefill pool.
	Prefill bool
}

// Kill stops the instance immediately: every waiting and running
// request is evicted (KV released, abandonment timers cancelled) and
// returned for the fleet layer to requeue, in wait-queue order then
// admission order — a deterministic sequence. An iteration in flight at
// kill time is discarded; its batch members are evicted like the rest.
// Emits EventInstanceGone. Killing an already stopped instance returns
// nil.
func (in *Instance) Kill(now sim.Time) []Evicted {
	s := in.s
	if s.state == StateStopped {
		return nil
	}
	s.state = StateStopped
	var out []Evicted
	evict := func(cr *contRequest) {
		if cr.abandonEv != nil {
			s.cal.Cancel(cr.abandonEv)
			cr.abandonEv = nil
		}
		// Unpin any prefix-cache blocks the request held: a kill must
		// leave the cache ledger balanced even though the instance's
		// cache dies with it.
		s.releaseBlocks(cr)
		s.killed++
		out = append(out, Evicted{
			Req:        cr.req,
			PromptLen:  cr.promptLen,
			OutputLen:  cr.outputLen,
			Delivered:  cr.delivered,
			FirstToken: cr.firstTok,
			HasFirst:   cr.hasFirst,
			Prefill:    cr.handoff != nil,
		})
	}
	for _, w := range s.waiting {
		evict(w)
	}
	for _, r := range s.running {
		evict(r)
	}
	s.waiting, s.running = nil, nil
	s.kvUsed = 0
	s.busy = false
	s.emitLifecycle(now, EventInstanceGone, "killed")
	return out
}

// AcceptRequeued places an evicted request on this instance: it joins
// the wait queue like a fresh arrival but keeps its original arrival
// instant, its TTFT anchor, and its delivered-token high-water, so
// latency samples and token throughput count exactly once across the
// requeue. The request recomputes from scratch (prompt included).
// Requests whose first token was already streamed never abandon — their
// user is mid-stream, exactly like a disaggregated resume.
func (in *Instance) AcceptRequeued(now sim.Time, ev Evicted) error {
	return in.acceptRequeued(now, ev, nil)
}

// AcceptRequeuedPrefill re-places a crash-evicted prefill-only request:
// exactly AcceptRequeued, except the request hands off again when its
// (re-run) prefill completes — fn receives the handoff state just as an
// AcceptPrefill callback would.
func (in *Instance) AcceptRequeuedPrefill(now sim.Time, ev Evicted, fn func(now sim.Time, h Handoff)) error {
	if fn == nil {
		return fmt.Errorf("serve: instance %s: AcceptRequeuedPrefill needs a handoff callback", in.name)
	}
	return in.acceptRequeued(now, ev, fn)
}

func (in *Instance) acceptRequeued(now sim.Time, ev Evicted, fn func(now sim.Time, h Handoff)) error {
	if !in.Accepting() {
		return fmt.Errorf("serve: instance %s is %s and accepts no requeued work", in.name, in.s.state)
	}
	cr := &contRequest{
		req:       ev.Req,
		promptLen: ev.PromptLen,
		outputLen: ev.OutputLen,
		delivered: ev.Delivered,
		firstTok:  ev.FirstToken,
		hasFirst:  ev.HasFirst,
		resumed:   ev.HasFirst, // mid-stream requests never abandon
		handoff:   fn,
	}
	if need := float64(cr.promptLen+cr.outputLen) * in.s.bytesPerTok; need > in.s.capacity {
		return fmt.Errorf("serve: instance %s cannot ever fit requeued request %d (prompt %d + output %d tokens)",
			in.name, ev.Req.ID, cr.promptLen, cr.outputLen)
	}
	in.routed++
	in.s.arrive(now, cr)
	return nil
}

// SetSlowFactor scales every subsequent iteration's duration by factor
// (a slow-node fault: a degraded host, a throttled GPU). Factor 1
// restores full speed; factors below 1 are rejected as nonsensical
// speed-ups. The iteration in flight when the factor changes keeps its
// already-scheduled duration.
func (in *Instance) SetSlowFactor(factor float64) error {
	if factor < 1 {
		return fmt.Errorf("serve: instance %s: slow factor must be ≥ 1, got %g", in.name, factor)
	}
	in.s.slowFactor = factor
	return nil
}

// SlowFactor reports the current slow-node multiplier (1 = full speed).
func (in *Instance) SlowFactor() float64 {
	if in.s.slowFactor == 0 {
		return 1
	}
	return in.s.slowFactor
}

// SLOWindow reports how many of the instance's most recent w first
// tokens met the TTFT SLO, and how many samples that window actually
// holds — the rolling-attainment signal an autoscale controller
// evaluates mid-run. With no SLO configured every sample counts as met.
func (in *Instance) SLOWindow(w int) (met, total int) {
	s := in.s
	n := len(s.ttfts)
	if w <= 0 || w > n {
		w = n
	}
	for _, t := range s.ttfts[n-w:] {
		if s.cfg.TTFTSLO <= 0 || t <= s.cfg.TTFTSLO {
			met++
		}
	}
	return met, w
}

// emitLifecycle reports an instance-scoped event (no request attached).
func (s *contSim) emitLifecycle(now sim.Time, t EventType, detail string) {
	if s.cfg.Observer == nil {
		return
	}
	s.cfg.Observer(Event{Time: now, Type: t, Detail: detail})
}

// maybeFinishDrain completes a drain whose work has run dry.
func (s *contSim) maybeFinishDrain(now sim.Time) {
	if s.state != StateDraining || s.busy || len(s.waiting) > 0 || len(s.running) > 0 {
		return
	}
	s.state = StateStopped
	s.emitLifecycle(now, EventInstanceGone, "drained")
}
