package serve

import (
	"testing"

	"github.com/skipsim/skip/internal/sim"
)

func TestPercentileNearestRank(t *testing.T) {
	samples := []sim.Time{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	cases := []struct {
		p    float64
		want sim.Time
	}{
		{50, 50},   // rank ceil(5) = 5
		{95, 100},  // rank ceil(9.5) = 10
		{99, 100},  // rank ceil(9.9) = 10
		{100, 100}, // rank 10
		{10, 10},   // rank 1
		{1, 10},    // rank ceil(0.1) = 1
	}
	for _, c := range cases {
		if got := Percentile(samples, c.p); got != c.want {
			t.Errorf("P%.0f = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileSmallSamples(t *testing.T) {
	// The legacy index (len*95)/100 read element 0 of a 1-element slice
	// for P95 but overflowed in spirit for other small n; nearest-rank
	// must stay in bounds and return the max for high percentiles.
	if got := Percentile([]sim.Time{7}, 95); got != 7 {
		t.Errorf("P95 of singleton = %v, want 7", got)
	}
	if got := Percentile([]sim.Time{3, 9}, 95); got != 9 {
		t.Errorf("P95 of pair = %v, want 9", got)
	}
	if got := Percentile([]sim.Time{3, 9}, 50); got != 3 {
		t.Errorf("P50 of pair = %v, want 3 (nearest rank 1)", got)
	}
	if got := Percentile(nil, 95); got != 0 {
		t.Errorf("P95 of empty = %v, want 0", got)
	}
}

// TestSLOGoodputNoSamples: with an SLO configured and zero completed
// requests, attainment must be 0, not a vacuous 100% — a fleet that
// rejected or abandoned everything did not meet its objective. Without
// an SLO the no-SLO identity (full attainment, goodput == throughput)
// still holds for any sample count.
func TestSLOGoodputNoSamples(t *testing.T) {
	att, good := SLOGoodput(nil, 500*sim.Millisecond, 10*sim.Second, 0)
	if att != 0 || good != 0 {
		t.Errorf("SLO set, no samples: attainment %g goodput %g, want 0 and 0", att, good)
	}
	att, good = SLOGoodput(nil, 0, 10*sim.Second, 3.5)
	if att != 1 || good != 3.5 {
		t.Errorf("no SLO, no samples: attainment %g goodput %g, want 1 and throughput", att, good)
	}
	att, good = SLOGoodput([]sim.Time{100 * sim.Millisecond, sim.Second},
		500*sim.Millisecond, 10*sim.Second, 0.2)
	if att != 0.5 || good != 0.1 {
		t.Errorf("half in SLO: attainment %g goodput %g, want 0.5 and 0.1", att, good)
	}
}

func TestPercentileUnsortedInput(t *testing.T) {
	samples := []sim.Time{90, 10, 50, 30, 70}
	if got := Percentile(samples, 50); got != 50 {
		t.Errorf("P50 = %v, want 50", got)
	}
	// The input slice must not be reordered.
	if samples[0] != 90 || samples[4] != 70 {
		t.Error("Percentile mutated its input")
	}
}
