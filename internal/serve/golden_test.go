package serve

import (
	"math"
	"testing"
)

// TestContinuousGoldenStats pins the end-to-end behavior of the
// continuous scheduler on a fixed workload: any change to admission
// order, KV accounting, iteration formation, or the latency model moves
// these numbers. Update the constants deliberately when the model
// changes — never to quiet an accidental diff.
func TestContinuousGoldenStats(t *testing.T) {
	reqs, err := Workload{
		Scenario: ScenarioChat, N: 16, RatePerSec: 40, Seed: 21,
		Prompt: LengthDist{Mean: 96, Sigma: 0.5, Min: 16, Max: 256},
		Output: LengthDist{Mean: 8, Sigma: 0.5, Min: 2, Max: 16},
	}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	cfg := contConfig()
	cfg.DefaultOutputLen = 0 // per-request output lengths from the workload
	s, err := Simulate(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}

	intChecks := []struct {
		name string
		got  int64
		want int64
	}{
		{"Completed", int64(s.Completed), 16},
		{"Batches", int64(s.Batches), 30},
		{"Preemptions", int64(s.Preemptions), 0},
		{"MaxQueueDepth", int64(s.MaxQueueDepth), 5},
		{"P50TTFT", int64(s.P50TTFT), 95175568},
		{"P95TTFT", int64(s.P95TTFT), 251558238},
		{"MeanTTFT", int64(s.MeanTTFT), 122083879},
		{"P50TPOT", int64(s.P50TPOT), 25932216},
		{"P95E2E", int64(s.P95E2E), 575623067},
		{"Horizon", int64(s.Horizon), 853479045},
	}
	for _, c := range intChecks {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}
	floatChecks := []struct {
		name string
		got  float64
		want float64
	}{
		{"MeanBatch", s.MeanBatch, 5.3},
		{"TokensPerSec", s.TokensPerSec, 186.29631381283647},
		{"PeakKVBytes", s.PeakKVBytes, 2.7942912e+07},
	}
	for _, c := range floatChecks {
		if math.Abs(c.got-c.want) > 1e-9*math.Max(1, math.Abs(c.want)) {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}

	// The same workload and config must reproduce bit-identically.
	reqs2, err := Workload{
		Scenario: ScenarioChat, N: 16, RatePerSec: 40, Seed: 21,
		Prompt: LengthDist{Mean: 96, Sigma: 0.5, Min: 16, Max: 256},
		Output: LengthDist{Mean: 8, Sigma: 0.5, Min: 2, Max: 16},
	}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Simulate(cfg, reqs2)
	if err != nil {
		t.Fatal(err)
	}
	if s2.P95TTFT != s.P95TTFT || s2.Horizon != s.Horizon || s2.TokensPerSec != s.TokensPerSec {
		t.Errorf("rerun diverged: %v/%v vs %v/%v", s2.P95TTFT, s2.Horizon, s.P95TTFT, s.Horizon)
	}
}
