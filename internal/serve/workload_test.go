package serve

import (
	"testing"
)

func TestWorkloadDeterministic(t *testing.T) {
	for _, scen := range Scenarios() {
		w := Workload{Scenario: scen, N: 40, RatePerSec: 30, Seed: 5}
		a, err := w.Generate()
		if err != nil {
			t.Fatalf("%v: %v", scen, err)
		}
		b, err := w.Generate()
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != 40 || len(b) != 40 {
			t.Fatalf("%v: lengths %d/%d", scen, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: request %d differs between runs with the same seed", scen, i)
			}
		}
		other, err := Workload{Scenario: scen, N: 40, RatePerSec: 30, Seed: 6}.Generate()
		if err != nil {
			t.Fatal(err)
		}
		same := true
		for i := range a {
			if a[i] != other[i] {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%v: different seeds produced identical streams", scen)
		}
	}
}

func TestWorkloadShapes(t *testing.T) {
	for _, scen := range Scenarios() {
		reqs, err := Workload{Scenario: scen, N: 60, RatePerSec: 40, Seed: 1}.Generate()
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range reqs {
			if r.PromptLen <= 0 || r.OutputLen <= 0 {
				t.Fatalf("%v: request %d has empty lengths: %+v", scen, i, r)
			}
			if i > 0 && r.Arrival < reqs[i-1].Arrival {
				t.Fatalf("%v: arrivals must be sorted", scen)
			}
		}
	}

	// Summarization prompts dominate chat prompts; outputs do not.
	chat, _ := Workload{Scenario: ScenarioChat, N: 80, RatePerSec: 40, Seed: 2}.Generate()
	sum, _ := Workload{Scenario: ScenarioSummarize, N: 80, RatePerSec: 40, Seed: 2}.Generate()
	if meanPrompt(sum) <= 2*meanPrompt(chat) {
		t.Errorf("summarize mean prompt %.0f should dwarf chat %.0f", meanPrompt(sum), meanPrompt(chat))
	}
	if meanOutput(sum) >= meanOutput(chat) {
		t.Errorf("summarize mean output %.0f should undercut chat %.0f", meanOutput(sum), meanOutput(chat))
	}
}

func TestWorkloadOverrides(t *testing.T) {
	reqs, err := Workload{
		Scenario: ScenarioChat, N: 50, RatePerSec: 20, Seed: 3,
		Prompt: LengthDist{Mean: 100, Sigma: 0.2, Min: 64, Max: 128},
		Output: LengthDist{Mean: 10, Sigma: 0, Min: 10, Max: 10},
	}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reqs {
		if r.PromptLen < 64 || r.PromptLen > 128 {
			t.Fatalf("prompt %d outside clamp [64,128]", r.PromptLen)
		}
		if r.OutputLen != 10 {
			t.Fatalf("sigma=0 output should be exactly 10, got %d", r.OutputLen)
		}
	}
}

func TestWorkloadAgenticGrowsContext(t *testing.T) {
	reqs, err := Workload{
		Scenario: ScenarioAgentic, N: 40, RatePerSec: 20, Seed: 4,
		Turns: 4, ContextGrowth: 200,
	}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	// Later turns of a trajectory carry more context, so the stream's
	// overall prompt spread must exceed one turn's worth of growth.
	var min, max int64 = 1 << 62, 0
	for _, r := range reqs {
		if r.PromptLen < min {
			min = r.PromptLen
		}
		if r.PromptLen > max {
			max = r.PromptLen
		}
	}
	if max-min < 200 {
		t.Errorf("prompt spread %d–%d: trajectories should grow by ≥200/turn", min, max)
	}
}

func TestWorkloadAgenticSessionIDs(t *testing.T) {
	w := Workload{Scenario: ScenarioAgentic, N: 40, RatePerSec: 20, Seed: 4, Turns: 4}
	reqs, err := w.Generate()
	if err != nil {
		t.Fatal(err)
	}
	sessions := map[int64]int{}
	for _, r := range reqs {
		if r.SessionID == 0 {
			t.Fatal("agentic requests must carry a session ID (zero means none)")
		}
		sessions[r.SessionID]++
	}
	// 40 requests over 4-turn trajectories: 10 sessions of 4 turns.
	if len(sessions) != 10 {
		t.Errorf("distinct sessions = %d, want 10", len(sessions))
	}
	for sid, n := range sessions {
		if n != 4 {
			t.Errorf("session %d has %d turns, want 4", sid, n)
		}
	}
	again, err := w.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for i := range reqs {
		if reqs[i].SessionID != again[i].SessionID {
			t.Fatal("session assignment must be deterministic per seed")
		}
	}

	// Non-agentic scenarios stay sessionless (backward compatible).
	chat, err := Workload{Scenario: ScenarioChat, N: 10, RatePerSec: 20, Seed: 4}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range chat {
		if r.SessionID != 0 {
			t.Errorf("chat request %d has session %d, want 0", r.ID, r.SessionID)
		}
	}
}

func TestWorkloadValidation(t *testing.T) {
	if _, err := (Workload{Scenario: ScenarioChat, N: 0, RatePerSec: 10}).Generate(); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := (Workload{Scenario: ScenarioChat, N: 10, RatePerSec: 0}).Generate(); err == nil {
		t.Error("rate=0 should fail")
	}
	if _, err := ParseScenario("nope"); err == nil {
		t.Error("unknown scenario should fail")
	}
	for _, s := range Scenarios() {
		got, err := ParseScenario(s.String())
		if err != nil || got != s {
			t.Errorf("ParseScenario(%q) = %v, %v", s.String(), got, err)
		}
	}
	for _, p := range []Policy{StaticBatch, GreedyBatch, ContinuousBatch, ChunkedPrefill} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePolicy("nope"); err == nil {
		t.Error("unknown policy should fail")
	}
}

func meanPrompt(reqs []Request) float64 {
	var s int64
	for _, r := range reqs {
		s += r.PromptLen
	}
	return float64(s) / float64(len(reqs))
}

func meanOutput(reqs []Request) float64 {
	var s int64
	for _, r := range reqs {
		s += r.OutputLen
	}
	return float64(s) / float64(len(reqs))
}
