package serve

import (
	"testing"
	"testing/quick"

	"github.com/skipsim/skip/internal/engine"
	"github.com/skipsim/skip/internal/hw"
	"github.com/skipsim/skip/internal/models"
	"github.com/skipsim/skip/internal/sim"
)

// mustUniform wraps UniformArrivals for the many test sites whose
// literal arguments are valid by construction.
func mustUniform(t *testing.T, n int, interval sim.Time) []Request {
	t.Helper()
	reqs, err := UniformArrivals(n, interval)
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

// simultaneousArrivals builds n requests all arriving at time zero
// (UniformArrivals requires a positive interval).
func simultaneousArrivals(n int) []Request {
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{ID: i}
	}
	return reqs
}

func baseConfig(policy Policy) Config {
	return Config{
		Platform:  hw.GH200(),
		Model:     models.BertBaseUncased(),
		Seq:       512,
		Mode:      engine.Eager,
		Policy:    policy,
		BatchSize: 8,
		MaxBatch:  32,
		MaxWait:   50 * sim.Millisecond,
	}
}

func TestSimulateGreedyBasics(t *testing.T) {
	reqs := mustUniform(t, 40, 5*sim.Millisecond)
	stats, err := Simulate(baseConfig(GreedyBatch), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Requests != 40 || stats.Batches == 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.P50TTFT <= 0 || stats.P95TTFT < stats.P50TTFT || stats.MaxTTFT < stats.P95TTFT {
		t.Errorf("latency ordering broken: %+v", stats)
	}
	if stats.Throughput <= 0 || stats.MeanBatch < 1 {
		t.Errorf("throughput/batch: %+v", stats)
	}
}

func TestGreedyBatchesGrowUnderLoad(t *testing.T) {
	cfg := baseConfig(GreedyBatch)
	light, err := Simulate(cfg, mustUniform(t, 30, 40*sim.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := Simulate(cfg, mustUniform(t, 30, 1*sim.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if light.MeanBatch >= heavy.MeanBatch {
		t.Errorf("mean batch should grow with load: light %.1f vs heavy %.1f",
			light.MeanBatch, heavy.MeanBatch)
	}
	// Under light load greedy behaves like BS=1: batches of one.
	if light.MeanBatch > 1.5 {
		t.Errorf("light-load mean batch = %.1f, want ≈1", light.MeanBatch)
	}
}

func TestStaticLargeBatchHurtsLatencyAtLowLoad(t *testing.T) {
	// The paper's point: forcing large batches for throughput inflates
	// individual TTFT when traffic is light.
	reqs := mustUniform(t, 32, 20*sim.Millisecond)
	greedy, err := Simulate(baseConfig(GreedyBatch), reqs)
	if err != nil {
		t.Fatal(err)
	}
	staticCfg := baseConfig(StaticBatch)
	staticCfg.BatchSize = 16
	staticCfg.MaxWait = 500 * sim.Millisecond
	static, err := Simulate(staticCfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if static.P95TTFT <= greedy.P95TTFT {
		t.Errorf("static-16 P95 (%v) should exceed greedy P95 (%v) at low load",
			static.P95TTFT, greedy.P95TTFT)
	}
}

func TestStaticBatchingImprovesThroughputUnderPressure(t *testing.T) {
	// Saturating arrival rate: batching amortizes the launch tax, so
	// larger static batches finish the backlog sooner.
	reqs := mustUniform(t, 64, 100*sim.Microsecond)
	small := baseConfig(StaticBatch)
	small.BatchSize = 1
	big := baseConfig(StaticBatch)
	big.BatchSize = 32
	s1, err := Simulate(small, reqs)
	if err != nil {
		t.Fatal(err)
	}
	s32, err := Simulate(big, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if s32.Throughput <= s1.Throughput {
		t.Errorf("BS=32 throughput (%.1f/s) should beat BS=1 (%.1f/s) under pressure",
			s32.Throughput, s1.Throughput)
	}
}

func TestStaticMaxWaitDispatchesPartialBatches(t *testing.T) {
	cfg := baseConfig(StaticBatch)
	cfg.BatchSize = 8
	cfg.MaxWait = 2 * sim.Millisecond
	// Only 3 requests ever arrive: the wait bound must flush them.
	reqs := mustUniform(t, 3, 1*sim.Millisecond)
	stats, err := Simulate(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Requests != 3 {
		t.Fatalf("served %d", stats.Requests)
	}
	if stats.MeanBatch > 3 {
		t.Errorf("mean batch = %.1f", stats.MeanBatch)
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(Config{}, mustUniform(t, 1, 1)); err == nil {
		t.Error("empty config should fail")
	}
	cfg := baseConfig(GreedyBatch)
	if _, err := Simulate(cfg, nil); err == nil {
		t.Error("no requests should fail")
	}
	cfg.MaxBatch = 0
	if _, err := Simulate(cfg, mustUniform(t, 1, 1)); err == nil {
		t.Error("greedy without MaxBatch should fail")
	}
	cfg = baseConfig(StaticBatch)
	cfg.BatchSize = 0
	if _, err := Simulate(cfg, mustUniform(t, 1, 1)); err == nil {
		t.Error("static without BatchSize should fail")
	}
	cfg = baseConfig(GreedyBatch)
	cfg.Seq = 0
	if _, err := Simulate(cfg, mustUniform(t, 1, 1)); err == nil {
		t.Error("zero seq should fail")
	}
}

func TestPoissonArrivals(t *testing.T) {
	a, err := PoissonArrivals(100, 50, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PoissonArrivals(100, 50, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 100 {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if a[i].Arrival != b[i].Arrival {
			t.Fatal("same seed must reproduce the same stream")
		}
		if i > 0 && a[i].Arrival <= a[i-1].Arrival {
			t.Fatal("arrivals must strictly increase")
		}
	}
	// Mean inter-arrival ≈ 1/rate = 20ms (loose bound over 100 draws).
	mean := a[len(a)-1].Arrival.Seconds() / 100
	if mean < 0.010 || mean > 0.035 {
		t.Errorf("mean inter-arrival = %.4fs, want ≈0.02", mean)
	}
}

func TestPoissonArrivalsValidation(t *testing.T) {
	if _, err := PoissonArrivals(0, 50, 1); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := PoissonArrivals(-3, 50, 1); err == nil {
		t.Error("negative n should fail")
	}
	if _, err := PoissonArrivals(10, 0, 1); err == nil {
		t.Error("rate=0 should fail (previously produced +Inf arrivals)")
	}
	if _, err := PoissonArrivals(10, -5, 1); err == nil {
		t.Error("negative rate should fail")
	}
}

func TestUniformArrivalsValidation(t *testing.T) {
	for _, tc := range []struct {
		n        int
		interval sim.Time
	}{{0, sim.Millisecond}, {-1, sim.Millisecond}, {5, 0}, {5, -sim.Millisecond}} {
		if _, err := UniformArrivals(tc.n, tc.interval); err == nil {
			t.Errorf("UniformArrivals(%d, %v) should fail", tc.n, tc.interval)
		}
	}
	reqs, err := UniformArrivals(3, sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range reqs {
		if r.Arrival != sim.Time(i)*sim.Millisecond {
			t.Errorf("request %d arrives at %v", i, r.Arrival)
		}
	}
}

func TestPolicyStringParseRoundTrip(t *testing.T) {
	for _, p := range []Policy{StaticBatch, GreedyBatch, ContinuousBatch, ChunkedPrefill} {
		got, err := ParsePolicy(p.String())
		if err != nil {
			t.Errorf("ParsePolicy(%q): %v", p.String(), err)
			continue
		}
		if got != p {
			t.Errorf("ParsePolicy(%q) = %v, want %v", p.String(), got, p)
		}
	}
	// The chunked policy's short CLI alias maps to the same policy.
	if p, err := ParsePolicy("chunked"); err != nil || p != ChunkedPrefill {
		t.Errorf("ParsePolicy(chunked) = %v, %v", p, err)
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("unknown policy name should fail")
	}
	if s := Policy(99).String(); s != "policy(99)" {
		t.Errorf("out-of-range String() = %q", s)
	}
}

// Property: every request's latency is at least the batch-1 service time
// floor... more precisely positive, and conservation holds: served
// count equals offered count for any arrival pattern.
func TestSimulateConservation(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		count := int(n%20) + 1
		reqs, err := PoissonArrivals(count, 200, seed)
		if err != nil {
			return false
		}
		stats, err := Simulate(baseConfig(GreedyBatch), reqs)
		if err != nil {
			return false
		}
		return stats.Requests == count && stats.MeanTTFT > 0 && stats.MeanBatch >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
