package serve

import (
	"encoding/json"
	"fmt"

	"github.com/skipsim/skip/internal/sim"
)

// EventType classifies a simulation lifecycle event.
type EventType int

const (
	// EventArrival: a request reached a server's wait queue.
	EventArrival EventType = iota
	// EventRejected: admission control dropped the request at the front
	// door (cluster simulations only).
	EventRejected
	// EventUnroutable: no instance could ever fit the request's KV
	// footprint (cluster simulations only).
	EventUnroutable
	// EventRouted: the front-end placed the request on an instance
	// (cluster simulations only; Instance names it).
	EventRouted
	// EventAdmitted: the request left the wait queue and joined the
	// running batch, reserving its prompt's KV.
	EventAdmitted
	// EventPreempted: KV pressure evicted the request from the running
	// batch; it re-queues for recomputation.
	EventPreempted
	// EventAbandoned: the request waited past its patience and was
	// dropped.
	EventAbandoned
	// EventFirstToken: the request's first output token was emitted (the
	// TTFT instant).
	EventFirstToken
	// EventKVTransferStart: a completed prefill's KV cache started moving
	// toward its decode instance (disaggregated simulations only; Link
	// names the source→destination pair).
	EventKVTransferStart
	// EventKVTransferDone: the KV cache landed on the decode instance,
	// which resumes the request mid-stream (disaggregated simulations
	// only).
	EventKVTransferDone
	// EventCompleted: the request finished generating.
	EventCompleted
	// EventProgress: a periodic completion-count tick (Completed of
	// Total), emitted by the Simulate dispatcher rather than the
	// scheduler.
	EventProgress
	// EventInstanceJoin: a new instance joined the running fleet
	// (autoscale spin-up; dynamic fleets only). Instance names it;
	// RequestID is absent.
	EventInstanceJoin
	// EventDrainStart: the instance stopped accepting new work and will
	// leave once its queue and running batch settle (autoscale
	// shrink; dynamic fleets only).
	EventDrainStart
	// EventInstanceGone: the instance left the fleet — a drain ran dry
	// or a crash killed it outright (dynamic fleets only).
	EventInstanceGone
	// EventFaultInjected: the fault plan fired — a crash, a slow-node
	// latency multiplier, or a degraded transfer link. Detail carries
	// the fault kind; Instance names the victim (empty for link
	// faults).
	EventFaultInjected
	// EventRequeued: a request evicted by a crash was re-placed on
	// another instance through the router (dynamic fleets only;
	// Instance names the new placement). Evictions that fit nowhere
	// emit EventUnroutable instead and are reported dropped.
	EventRequeued
	// EventBlockHit: an admission found cached prefix blocks (prefix
	// cache only). Detail carries the lookup's aggregate counts
	// ("hits=H restored=R misses=M credit=C").
	EventBlockHit
	// EventBlockEvict: an admission's allocations evicted cold blocks
	// (prefix cache only). Detail: "evicted=E spilled=S host_dropped=D".
	EventBlockEvict
	// EventBlockRestore: host-tier blocks were promoted back to device
	// for an admission, stalling the request by the interconnect-priced
	// copy (prefix cache only). Detail: "blocks=N bytes=B".
	EventBlockRestore
	// EventStateSample: a periodic instance-state snapshot (queue depth,
	// running batch, KV occupancy, cumulative cache counters) carried in
	// State. Emitted at every scheduling event only when
	// Config.EmitStateSamples is set — the windowed timeline aggregator's
	// level-signal feed; default event streams never see it.
	EventStateSample
)

func (t EventType) String() string {
	switch t {
	case EventArrival:
		return "arrival"
	case EventRejected:
		return "rejected"
	case EventUnroutable:
		return "unroutable"
	case EventRouted:
		return "routed"
	case EventAdmitted:
		return "admitted"
	case EventPreempted:
		return "preempted"
	case EventAbandoned:
		return "abandoned"
	case EventFirstToken:
		return "first-token"
	case EventKVTransferStart:
		return "kv-transfer-start"
	case EventKVTransferDone:
		return "kv-transfer-done"
	case EventCompleted:
		return "completed"
	case EventProgress:
		return "progress"
	case EventInstanceJoin:
		return "instance-join"
	case EventDrainStart:
		return "drain-start"
	case EventInstanceGone:
		return "instance-gone"
	case EventFaultInjected:
		return "fault-injected"
	case EventRequeued:
		return "requeued"
	case EventBlockHit:
		return "block-hit"
	case EventBlockEvict:
		return "block-evict"
	case EventBlockRestore:
		return "block-restore"
	case EventStateSample:
		return "state-sample"
	default:
		return fmt.Sprintf("event(%d)", int(t))
	}
}

// Event is one observation of a serving or cluster simulation. Events
// are emitted synchronously from inside calendar callbacks, so for a
// fixed spec and seed the event stream is deterministic — order
// included.
type Event struct {
	// Seq numbers the event within its run's stream, starting at 1 and
	// strictly increasing — a total order that survives serialization,
	// so two JSONL dumps of the same spec and seed diff line-for-line.
	// The spec.Simulate dispatcher stamps it; events observed through
	// lower-level entry points carry Seq 0.
	Seq  int64
	Time sim.Time
	Type EventType
	// RequestID identifies the request (absent for EventProgress).
	RequestID int
	// SessionID is the request's session, when it has one.
	SessionID int64
	// Instance names the serving instance involved ("" for
	// single-instance simulations and front-door events). KV-transfer
	// events name the source instance on start and the destination on
	// done.
	Instance string
	// Link names the source→destination instance pair of a KV transfer
	// ("" for every other event type).
	Link string
	// Detail carries event-specific context: the fault kind for
	// EventFaultInjected ("crash", "slow-node ×2", "link-degraded ×4"),
	// "drained" vs "killed" for EventInstanceGone.
	Detail string
	// Completed / Total carry the EventProgress payload.
	Completed int
	Total     int
	// TTFT is the request's time-to-first-token, stamped on
	// EventFirstToken and EventCompleted (0 elsewhere, and on
	// completions that never emitted a token).
	TTFT sim.Time
	// TPOT is the request's mean inter-token time, stamped on
	// EventCompleted when the request decoded more than one token.
	TPOT sim.Time
	// Tokens is the request's delivered output-token count, stamped on
	// EventCompleted.
	Tokens int64
	// State carries the EventStateSample payload (nil for every other
	// event type).
	State *StateSample
}

// StateSample is an instance-state snapshot: the EventStateSample
// payload. Cache counters are cumulative since the start of the run
// (zero when the instance has no prefix cache).
type StateSample struct {
	// Queue / Running are the wait-queue length and running-batch size.
	Queue   int
	Running int
	// KVFrac is the KV budget fraction in use.
	KVFrac float64
	// CacheLookups / CacheHits are the prefix cache's cumulative lookup
	// and hit (device hits + host restores) counts.
	CacheLookups int64
	CacheHits    int64
}

// lifecycle reports whether the event describes an instance rather than
// a request (no RequestID to print).
func (t EventType) lifecycle() bool {
	switch t {
	case EventInstanceJoin, EventDrainStart, EventInstanceGone, EventFaultInjected, EventStateSample:
		return true
	}
	return false
}

func (e Event) String() string {
	s := fmt.Sprintf("%v %s", e.Time, e.Type)
	if e.Type == EventProgress {
		return fmt.Sprintf("%s %d/%d", s, e.Completed, e.Total)
	}
	if e.Type.lifecycle() {
		if e.Instance != "" {
			s += " @" + e.Instance
		}
		if e.Link != "" {
			s += " link=" + e.Link
		}
		if e.Detail != "" {
			s += " (" + e.Detail + ")"
		}
		return s
	}
	s += fmt.Sprintf(" req=%d", e.RequestID)
	if e.SessionID != 0 {
		s += fmt.Sprintf(" session=%d", e.SessionID)
	}
	if e.Instance != "" {
		s += " @" + e.Instance
	}
	if e.Link != "" {
		s += " link=" + e.Link
	}
	return s
}

// MarshalJSON renders the event as one compact JSONL-friendly object
// with stable snake_case keys: `{"seq":…,"t_ns":…,"type":"admitted",…}`.
// The type is its string name, the time its raw virtual-nanosecond
// count. RequestID serializes unconditionally (request 0 is real);
// everything optional is omitted when empty.
func (e Event) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Seq       int64        `json:"seq"`
		TimeNs    int64        `json:"t_ns"`
		Type      string       `json:"type"`
		RequestID int          `json:"req"`
		SessionID int64        `json:"session,omitempty"`
		Instance  string       `json:"instance,omitempty"`
		Link      string       `json:"link,omitempty"`
		Detail    string       `json:"detail,omitempty"`
		Completed int          `json:"completed,omitempty"`
		Total     int          `json:"total,omitempty"`
		TTFT      int64        `json:"ttft_ns,omitempty"`
		TPOT      int64        `json:"tpot_ns,omitempty"`
		Tokens    int64        `json:"tokens,omitempty"`
		State     *StateSample `json:"state,omitempty"`
	}{e.Seq, int64(e.Time), e.Type.String(), e.RequestID,
		e.SessionID, e.Instance, e.Link, e.Detail, e.Completed, e.Total,
		int64(e.TTFT), int64(e.TPOT), e.Tokens, e.State})
}

// Observer receives simulation events as they happen. Observers must
// not retain the simulator's internal state; the Event value is theirs.
type Observer func(Event)
