// Package cluster simulates a multi-instance inference fleet under one
// shared clock: N continuous-batching instances (serve.Instance, each a
// full iteration-level scheduler with its own KV-capacity model) behind
// a front-end that applies token-bucket admission control and a
// pluggable routing policy. Because every instance runs on the same
// sim.Calendar, events interleave in global timestamp order and a fixed
// request stream reproduces byte-identical statistics.
//
// This answers the fleet-scale question the single-instance simulator
// cannot: the paper shows coupled (GH200) and loosely-coupled
// (Intel+H100) platforms win in different regimes — BS=1 TTFT versus
// large-batch decode — so how should a router split live traffic across
// a mixed fleet? The routing policies range from oblivious
// (round-robin) through load- and KV-aware to the platform-aware split
// that encodes the paper's regime boundary directly.
package cluster

import (
	"fmt"
	"sort"

	"github.com/skipsim/skip/internal/serve"
	"github.com/skipsim/skip/internal/sim"
)

// Config parameterizes a cluster simulation.
type Config struct {
	// Instances holds one serving config per instance. Every config
	// must use a continuous policy (ContinuousBatch or ChunkedPrefill);
	// platforms may differ freely — that heterogeneity is the point.
	Instances []serve.Config
	// Policy selects the routing policy (default RoundRobin).
	Policy Policy
	// ShortPrompt is the platform-aware policy's regime boundary in
	// prompt tokens: requests at or below it prefer coupled instances
	// (default 512).
	ShortPrompt int64
	// TTFTSLO is the fleet-level time-to-first-token objective for
	// aggregate goodput accounting; it is also copied into instance
	// configs that set none of their own (0 disables).
	TTFTSLO sim.Time
	// AdmitRatePerSec enables token-bucket admission control: requests
	// beyond this sustained rate are rejected at the front door instead
	// of queueing (0 disables).
	AdmitRatePerSec float64
	// AdmitBurst is the bucket depth in requests (default: one second's
	// refill, minimum 1).
	AdmitBurst float64
	// Observer, when set, receives front-door events (routed, rejected,
	// unroutable) plus every instance's lifecycle events with the
	// instance name stamped in. Per-instance observers set on the
	// instance configs still fire independently.
	Observer serve.Observer
}

func (c *Config) validate() error {
	if len(c.Instances) == 0 {
		return fmt.Errorf("cluster: config needs at least one instance")
	}
	for i := range c.Instances {
		if c.Instances[i].Platform == nil {
			return fmt.Errorf("cluster: instance %d needs a platform", i)
		}
	}
	if c.AdmitRatePerSec < 0 {
		return fmt.Errorf("cluster: admission rate must be non-negative, got %g", c.AdmitRatePerSec)
	}
	return nil
}

// Simulate runs the fleet over the request stream and returns
// fleet-level statistics. Requests are routed at their arrival instant
// against the instances' live scheduler state; the whole simulation is
// deterministic for a fixed stream and config.
func Simulate(cfg Config, requests []serve.Request) (*Stats, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(requests) == 0 {
		return nil, fmt.Errorf("cluster: no requests")
	}
	reqs := make([]serve.Request, len(requests))
	copy(reqs, requests)
	sort.Slice(reqs, func(i, j int) bool { return reqs[i].Arrival < reqs[j].Arrival })

	cal := sim.NewCalendar()
	instances := make([]*serve.Instance, len(cfg.Instances))
	for i, icfg := range cfg.Instances {
		if icfg.TTFTSLO == 0 {
			icfg.TTFTSLO = cfg.TTFTSLO
		}
		name := fmt.Sprintf("%s#%d", icfg.Platform.Name, i)
		if cfg.Observer != nil {
			icfg.Observer = StampInstance(name, cfg.Observer, icfg.Observer)
		}
		in, err := serve.NewInstance(name, icfg, cal)
		if err != nil {
			return nil, err
		}
		instances[i] = in
	}

	rt := newRouter(cfg.Policy, cfg.ShortPrompt)
	var admit *TokenBucket
	if cfg.AdmitRatePerSec > 0 {
		admit = NewTokenBucket(cfg.AdmitRatePerSec, cfg.AdmitBurst)
	}

	frontDoor := func(now sim.Time, t serve.EventType, req serve.Request, instance string) {
		if cfg.Observer == nil {
			return
		}
		cfg.Observer(serve.Event{
			Time: now, Type: t,
			RequestID: req.ID, SessionID: req.SessionID, Instance: instance,
		})
	}

	var rejected, unroutable int
	var routeErr error
	for i := range reqs {
		req := reqs[i]
		cal.Schedule(req.Arrival, func(now sim.Time) {
			if routeErr != nil {
				return
			}
			if admit != nil && !admit.Allow(now) {
				rejected++
				frontDoor(now, serve.EventRejected, req, "")
				return
			}
			idx := rt.pick(req, instances)
			if idx < 0 {
				unroutable++
				frontDoor(now, serve.EventUnroutable, req, "")
				return
			}
			frontDoor(now, serve.EventRouted, req, instances[idx].Name())
			if err := instances[idx].Accept(now, req); err != nil {
				// pick only offers fitting instances, so Accept cannot
				// refuse; treat a refusal as the bug it would be.
				routeErr = fmt.Errorf("cluster: %s refused routed request %d: %w",
					instances[idx].Name(), req.ID, err)
			}
		})
	}
	cal.Run()
	if routeErr != nil {
		return nil, routeErr
	}
	for _, in := range instances {
		if err := in.Err(); err != nil {
			return nil, fmt.Errorf("cluster: instance %s: %w", in.Name(), err)
		}
	}

	st := assembleStats(cfg, instances, len(reqs), rejected, unroutable)

	// Conservation invariant: every offered request is accounted for
	// exactly once — rejected at the door, unroutable, or routed and
	// then completed/abandoned by its instance. A violation means the
	// fleet lost or duplicated a request across routing, queueing,
	// preemption, or abandonment.
	if st.Offered != st.Rejected+st.Unroutable+st.Routed {
		return nil, fmt.Errorf("cluster: request accounting broken: offered %d != rejected %d + unroutable %d + routed %d",
			st.Offered, st.Rejected, st.Unroutable, st.Routed)
	}
	for i := range st.Instances {
		is := &st.Instances[i]
		if is.Serve.Requests != is.Routed {
			return nil, fmt.Errorf("cluster: %s settled %d of %d routed requests",
				is.Name, is.Serve.Requests, is.Routed)
		}
	}
	return st, nil
}

// StampInstance adapts a fleet observer for one instance: events the
// instance emits carry its name, and any observer already set on the
// instance config keeps firing unstamped. Shared by every fleet
// assembler (cluster, disagg).
func StampInstance(name string, fleet, own serve.Observer) serve.Observer {
	return func(e serve.Event) {
		if own != nil {
			own(e)
		}
		e.Instance = name
		fleet(e)
	}
}
