// Package cluster simulates a multi-instance inference fleet under one
// shared clock: N continuous-batching instances (serve.Instance, each a
// full iteration-level scheduler with its own KV-capacity model) behind
// a front-end that applies token-bucket admission control and a
// pluggable routing policy. Because every instance runs on the same
// sim.Calendar, events interleave in global timestamp order and a fixed
// request stream reproduces byte-identical statistics.
//
// This answers the fleet-scale question the single-instance simulator
// cannot: the paper shows coupled (GH200) and loosely-coupled
// (Intel+H100) platforms win in different regimes — BS=1 TTFT versus
// large-batch decode — so how should a router split live traffic across
// a mixed fleet? The routing policies range from oblivious
// (round-robin) through load- and KV-aware to the platform-aware split
// that encodes the paper's regime boundary directly.
package cluster

import (
	"fmt"
	"sort"

	"github.com/skipsim/skip/internal/serve"
	"github.com/skipsim/skip/internal/sim"
)

// Config parameterizes a cluster simulation.
type Config struct {
	// Instances holds one serving config per instance. Every config
	// must use a continuous policy (ContinuousBatch or ChunkedPrefill);
	// platforms may differ freely — that heterogeneity is the point.
	Instances []serve.Config
	// Policy selects the routing policy (default RoundRobin).
	Policy Policy
	// ShortPrompt is the platform-aware policy's regime boundary in
	// prompt tokens: requests at or below it prefer coupled instances
	// (default 512).
	ShortPrompt int64
	// TTFTSLO is the fleet-level time-to-first-token objective for
	// aggregate goodput accounting; it is also copied into instance
	// configs that set none of their own (0 disables).
	TTFTSLO sim.Time
	// AdmitRatePerSec enables token-bucket admission control: requests
	// beyond this sustained rate are rejected at the front door instead
	// of queueing (0 disables).
	AdmitRatePerSec float64
	// AdmitBurst is the bucket depth in requests (default: one second's
	// refill, minimum 1).
	AdmitBurst float64
	// Observer, when set, receives front-door events (routed, rejected,
	// unroutable) plus every instance's lifecycle events with the
	// instance name stamped in. Per-instance observers set on the
	// instance configs still fire independently.
	Observer serve.Observer
	// Autoscale, when set, grows and shrinks the fleet against a load
	// signal while the simulation runs (see AutoscaleConfig). Nil keeps
	// the fleet static — the pre-refactor behavior, bit for bit.
	Autoscale *AutoscaleConfig
	// Faults, when set, injects instance crashes and slow-node
	// multipliers on schedule or at seeded-random instants (see
	// FaultsConfig). Nil injects nothing.
	Faults *FaultsConfig
	// CounterfactualK, when positive, records every routing decision
	// with up to K scored alternatives and counterfactual policy
	// replays in Stats.Routing. Zero keeps recording off and the
	// Routing section absent — the pre-feature report, bit for bit.
	CounterfactualK int
}

func (c *Config) validate() error {
	if len(c.Instances) == 0 {
		return fmt.Errorf("cluster: config needs at least one instance")
	}
	for i := range c.Instances {
		if c.Instances[i].Platform == nil {
			return fmt.Errorf("cluster: instance %d needs a platform", i)
		}
	}
	if c.AdmitRatePerSec < 0 {
		return fmt.Errorf("cluster: admission rate must be non-negative, got %g", c.AdmitRatePerSec)
	}
	if c.Autoscale != nil {
		if err := c.Autoscale.Validate(); err != nil {
			return err
		}
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(false); err != nil {
			return err
		}
	}
	return nil
}

// fleetSim is one in-flight fleet simulation: the shared calendar, the
// mutable membership view, the routing and admission state, and the
// churn ledger. Membership is index-stable — the members slice only
// grows (autoscale joins append) and departed instances stay in place
// as Stopped, filtered by the router's Accepting checks — so session
// pins, the round-robin cursor, and per-instance statistics never
// reindex under churn.
type fleetSim struct {
	cfg Config
	cal *sim.Calendar

	members []*serve.Instance
	// managed marks instances the autoscaler spun up — the only ones a
	// shrink may drain, so the configured base fleet is never scaled
	// away.
	managed []bool

	rt    *router
	admit *TokenBucket
	// rec records routing decisions for counterfactual scoring; nil
	// when Config.CounterfactualK is zero.
	rec *DecisionRecorder

	reqs        []serve.Request
	lastArrival sim.Time

	rejected, unroutable int
	// placed counts fresh front-door placements only. Requeues after a
	// crash increment each instance's own routed count (keeping the
	// per-instance settled==placed invariant) but not this one, so the
	// front-door conservation law survives churn.
	placed   int
	routeErr error

	// chaos is nil for a static fleet (no autoscale, no faults): the
	// ledger then never allocates and the Report omits it, keeping
	// static output bit-identical to the pre-refactor path.
	chaos        *ChaosStats
	pendingJoins int
	lastScale    sim.Time
	scaled       bool
}

func (f *fleetSim) fail(err error) {
	if f.routeErr == nil {
		f.routeErr = err
	}
}

// emitFleet reports a fleet-level event (join, fault, requeue) to the
// config observer.
func (f *fleetSim) emitFleet(e serve.Event) {
	if f.cfg.Observer != nil {
		f.cfg.Observer(e)
	}
}

func (f *fleetSim) frontDoor(now sim.Time, t serve.EventType, req serve.Request, instance string) {
	if f.cfg.Observer == nil {
		return
	}
	f.cfg.Observer(serve.Event{
		Time: now, Type: t,
		RequestID: req.ID, SessionID: req.SessionID, Instance: instance,
	})
}

// addInstance constructs an instance on the shared calendar and appends
// it to the membership view.
func (f *fleetSim) addInstance(icfg serve.Config, managed bool) (*serve.Instance, error) {
	if icfg.TTFTSLO == 0 {
		icfg.TTFTSLO = f.cfg.TTFTSLO
	}
	name := fmt.Sprintf("%s#%d", icfg.Platform.Name, len(f.members))
	if f.cfg.Observer != nil {
		icfg.Observer = StampInstance(name, f.cfg.Observer, icfg.Observer)
	}
	in, err := serve.NewInstance(name, icfg, f.cal)
	if err != nil {
		return nil, err
	}
	f.members = append(f.members, in)
	f.managed = append(f.managed, managed)
	return in, nil
}

// activeCount counts members still accepting fresh work.
func (f *fleetSim) activeCount() int {
	n := 0
	for _, in := range f.members {
		if in.Accepting() {
			n++
		}
	}
	return n
}

// outstanding sums queued plus running requests across the fleet,
// draining members included.
func (f *fleetSim) outstanding() int {
	n := 0
	for _, in := range f.members {
		if in.State() != serve.StateStopped {
			n += in.Outstanding()
		}
	}
	return n
}

// sampleFleet records the active-member count in the churn ledger's
// fleet-size series (called at every membership transition).
func (f *fleetSim) sampleFleet(now sim.Time) {
	act := f.activeCount()
	if act > f.chaos.PeakActive {
		f.chaos.PeakActive = act
	}
	f.chaos.FleetSize = append(f.chaos.FleetSize, serve.SamplePoint{T: now, V: float64(act)})
}

// route places one front-door arrival.
func (f *fleetSim) route(now sim.Time, req serve.Request) {
	if f.routeErr != nil {
		return
	}
	if f.admit != nil && !f.admit.Allow(now) {
		f.rejected++
		f.frontDoor(now, serve.EventRejected, req, "")
		return
	}
	idx := f.rt.pick(req, f.members)
	if idx < 0 {
		f.unroutable++
		f.frontDoor(now, serve.EventUnroutable, req, "")
		return
	}
	if f.rec != nil {
		f.rec.Record(now, req, f.members, idx, false, 0)
	}
	f.placed++
	f.frontDoor(now, serve.EventRouted, req, f.members[idx].Name())
	if err := f.members[idx].Accept(now, req); err != nil {
		// pick only offers accepting, fitting instances, so Accept
		// cannot refuse; treat a refusal as the bug it would be.
		f.fail(fmt.Errorf("cluster: %s refused routed request %d: %w",
			f.members[idx].Name(), req.ID, err))
	}
}

// Simulate runs the fleet over the request stream and returns
// fleet-level statistics. Requests are routed at their arrival instant
// against the instances' live scheduler state; the whole simulation —
// autoscaling and fault injection included — is deterministic for a
// fixed stream and config.
func Simulate(cfg Config, requests []serve.Request) (*Stats, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(requests) == 0 {
		return nil, fmt.Errorf("cluster: no requests")
	}
	reqs := make([]serve.Request, len(requests))
	copy(reqs, requests)
	sort.Slice(reqs, func(i, j int) bool { return reqs[i].Arrival < reqs[j].Arrival })

	f := &fleetSim{
		cfg:         cfg,
		cal:         sim.NewCalendar(),
		rt:          newRouter(cfg.Policy, cfg.ShortPrompt),
		reqs:        reqs,
		lastArrival: reqs[len(reqs)-1].Arrival,
	}
	for _, icfg := range cfg.Instances {
		if _, err := f.addInstance(icfg, false); err != nil {
			return nil, err
		}
	}
	if cfg.AdmitRatePerSec > 0 {
		f.admit = NewTokenBucket(cfg.AdmitRatePerSec, cfg.AdmitBurst)
	}
	if cfg.CounterfactualK > 0 {
		f.rec = NewDecisionRecorder(cfg.Policy, cfg.ShortPrompt, cfg.CounterfactualK)
	}
	if cfg.Autoscale != nil || cfg.Faults != nil {
		f.chaos = &ChaosStats{}
		f.sampleFleet(0)
	}
	if cfg.Autoscale != nil {
		if err := f.setupAutoscale(); err != nil {
			return nil, err
		}
	}
	if cfg.Faults != nil {
		f.setupFaults()
	}

	for i := range reqs {
		req := reqs[i]
		f.cal.Schedule(req.Arrival, func(now sim.Time) { f.route(now, req) })
	}
	f.cal.Run()
	if f.routeErr != nil {
		return nil, f.routeErr
	}
	for _, in := range f.members {
		if err := in.Err(); err != nil {
			return nil, fmt.Errorf("cluster: instance %s: %w", in.Name(), err)
		}
	}

	st := f.assembleStats()

	// Conservation invariant: every offered request is accounted for
	// exactly once — rejected at the door, unroutable, or routed and
	// then completed/abandoned by its instance. A violation means the
	// fleet lost or duplicated a request across routing, queueing,
	// preemption, or abandonment.
	if st.Offered != st.Rejected+st.Unroutable+st.Routed {
		return nil, fmt.Errorf("cluster: request accounting broken: offered %d != rejected %d + unroutable %d + routed %d",
			st.Offered, st.Rejected, st.Unroutable, st.Routed)
	}
	for i := range st.Instances {
		is := &st.Instances[i]
		if is.Serve.Requests != is.Routed {
			return nil, fmt.Errorf("cluster: %s settled %d of %d routed requests",
				is.Name, is.Serve.Requests, is.Routed)
		}
	}
	if c := st.Chaos; c != nil {
		// Churn invariants: every crash eviction is requeued or dropped,
		// and every fresh placement still settles exactly once —
		// completed, abandoned, or dropped after a crash. Requests
		// requeued N times settle N+1 times (once per hosting instance),
		// which the per-instance checks above already balance.
		if c.Killed != c.Requeued+c.Dropped {
			return nil, fmt.Errorf("cluster: churn accounting broken: killed %d != requeued %d + dropped %d",
				c.Killed, c.Requeued, c.Dropped)
		}
		if st.Routed != st.Completed+st.Abandoned+c.Dropped {
			return nil, fmt.Errorf("cluster: churn accounting broken: routed %d != completed %d + abandoned %d + dropped %d",
				st.Routed, st.Completed, st.Abandoned, c.Dropped)
		}
	}
	// The prefix-cache ledger must reconcile exactly (per instance and
	// in the fleet aggregate) — see serve.KVCacheStats.
	for _, is := range st.Instances {
		if err := is.Serve.KVCache.Reconcile(); err != nil {
			return nil, fmt.Errorf("cluster: %s: %w", is.Name, err)
		}
	}
	if err := st.KVCache.Reconcile(); err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	return st, nil
}

// StampInstance adapts a fleet observer for one instance: events the
// instance emits carry its name, and any observer already set on the
// instance config keeps firing unstamped. Shared by every fleet
// assembler (cluster, disagg).
func StampInstance(name string, fleet, own serve.Observer) serve.Observer {
	return func(e serve.Event) {
		if own != nil {
			own(e)
		}
		e.Instance = name
		fleet(e)
	}
}
