package cluster

import (
	"sort"

	"github.com/skipsim/skip/internal/serve"
	"github.com/skipsim/skip/internal/sim"
)

// AltScore is one alternative the router considered but did not choose,
// scored under the active policy's own metric at decision time.
type AltScore struct {
	Instance    string
	Outstanding int
	KVPressure  float64
	// Score is the value the policy minimizes: KV pressure for
	// least-kv, outstanding requests for everything else.
	Score float64
}

// Decision is one routing decision record: where a request went, what
// the chosen instance looked like, and the top-k alternatives ranked
// under the same metric. Records are emitted in pick order, so for a
// fixed spec and seed the sequence is bit-identical across runs.
type Decision struct {
	Time      sim.Time
	RequestID int
	SessionID int64 `json:",omitempty"`
	// Requeue marks a crash-driven re-placement rather than a
	// front-door arrival.
	Requeue bool `json:",omitempty"`
	Chosen  string
	// Outstanding / KVPressure snapshot the chosen instance's load at
	// pick time, before the request lands on it.
	Outstanding int
	KVPressure  float64
	// LinkWait is the FIFO backlog on the chosen transfer link at pick
	// time (disaggregated decode picks only) — how long the shipped
	// cache will sit behind earlier transfers.
	LinkWait     sim.Time   `json:",omitempty"`
	Alternatives []AltScore `json:",omitempty"`
}

// CounterfactualStat replays one alternative policy over the same
// decision points: on how many picks would it have agreed with the
// active policy, and on how many would it have placed differently?
type CounterfactualStat struct {
	Policy   string
	Picks    int
	Agreed   int
	Differed int
}

// RoutingStats is the decision-record section of a cluster or disagg
// report, present only when counterfactual scoring was requested.
type RoutingStats struct {
	// Policy is the active routing policy the decisions came from.
	Policy string
	// K is the alternatives-per-decision cap that was requested.
	K int
	// Picks counts recorded decisions: initial placements plus crash
	// requeues (rejected and unroutable requests never reach a pick).
	Picks int
	// Counterfactuals scores the stateless policies (least-queue,
	// least-kv, platform-aware) against the recorded picks. Stateful
	// policies (round-robin, session-affinity) cannot be replayed
	// read-only and are excluded; the active policy is too.
	Counterfactuals []CounterfactualStat `json:",omitempty"`
	Decisions       []Decision           `json:",omitempty"`
}

// DecisionRecorder captures routing decisions and counterfactual
// replays for one router. It is strictly read-only over fleet state:
// Record must run at pick time — after the policy chose, before the
// instance accepts — so alternative scores see exactly the state the
// real decision saw.
type DecisionRecorder struct {
	policy      Policy
	shortPrompt int64
	k           int
	picks       int
	decisions   []Decision
	counter     map[Policy]*CounterfactualStat
}

// NewDecisionRecorder builds a recorder for the active policy. k caps
// the alternatives stored per decision; shortPrompt is the
// platform-aware regime boundary (≤ 0 takes the router default).
func NewDecisionRecorder(policy Policy, shortPrompt int64, k int) *DecisionRecorder {
	if shortPrompt <= 0 {
		shortPrompt = 512
	}
	r := &DecisionRecorder{policy: policy, shortPrompt: shortPrompt, k: k,
		counter: make(map[Policy]*CounterfactualStat)}
	for _, p := range counterfactualPolicies {
		if p != policy {
			r.counter[p] = &CounterfactualStat{Policy: p.String()}
		}
	}
	return r
}

// counterfactualPolicies are the stateless policies a recorder can
// replay against a live fleet without mutating routing state.
var counterfactualPolicies = []Policy{LeastQueue, LeastKV, PlatformAware}

// statelessPick replays policy p read-only against the instances.
func (r *DecisionRecorder) statelessPick(p Policy, req serve.Request, instances []*serve.Instance) int {
	switch p {
	case LeastKV:
		return leastBy(req, instances, func(in *serve.Instance) float64 { return in.KVPressure() })
	case PlatformAware:
		return pickPlatformAware(req, instances, r.shortPrompt)
	default:
		return leastOutstanding(req, instances)
	}
}

// Record logs one successful pick. chosen indexes instances; linkWait
// is zero except for disaggregated decode picks.
func (r *DecisionRecorder) Record(now sim.Time, req serve.Request, instances []*serve.Instance, chosen int, requeue bool, linkWait sim.Time) {
	r.picks++
	// Iterate the fixed policy list, not the counter map: the stats are
	// per-policy independent, but replaying in map order would still
	// interleave statelessPick calls nondeterministically.
	for _, p := range counterfactualPolicies {
		st, ok := r.counter[p]
		if !ok {
			continue
		}
		st.Picks++
		if r.statelessPick(p, req, instances) == chosen {
			st.Agreed++
		} else {
			st.Differed++
		}
	}
	in := instances[chosen]
	d := Decision{
		Time: now, RequestID: req.ID, SessionID: req.SessionID,
		Requeue: requeue, Chosen: in.Name(),
		Outstanding: in.Outstanding(), KVPressure: in.KVPressure(),
		LinkWait: linkWait,
	}
	score := func(in *serve.Instance) float64 {
		if r.policy == LeastKV {
			return in.KVPressure()
		}
		return float64(in.Outstanding())
	}
	for i, alt := range instances {
		if i == chosen || !alt.Accepting() || !alt.Fits(req) {
			continue
		}
		d.Alternatives = append(d.Alternatives, AltScore{
			Instance: alt.Name(), Outstanding: alt.Outstanding(),
			KVPressure: alt.KVPressure(), Score: score(alt),
		})
	}
	sort.SliceStable(d.Alternatives, func(i, j int) bool {
		return d.Alternatives[i].Score < d.Alternatives[j].Score
	})
	if len(d.Alternatives) > r.k {
		d.Alternatives = d.Alternatives[:r.k]
	}
	r.decisions = append(r.decisions, d)
}

// Stats assembles the routing section, counterfactuals in canonical
// policy order. Nil receivers (recording disabled) return nil, keeping
// reports bit-identical when the feature is off.
func (r *DecisionRecorder) Stats() *RoutingStats {
	if r == nil {
		return nil
	}
	rs := &RoutingStats{Policy: r.policy.String(), K: r.k, Picks: r.picks, Decisions: r.decisions}
	for _, p := range counterfactualPolicies {
		if st, ok := r.counter[p]; ok {
			rs.Counterfactuals = append(rs.Counterfactuals, *st)
		}
	}
	return rs
}
