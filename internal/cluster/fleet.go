package cluster

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/skipsim/skip/internal/hw"
	"github.com/skipsim/skip/internal/serve"
)

// FleetGroup is one homogeneous slice of a fleet: count instances of
// one platform, optionally restricted to a disaggregation role.
type FleetGroup struct {
	Platform *hw.Platform
	Count    int
	// Role is the disaggregation role of the group's instances:
	// "prefill", "decode", "both", or "" (no disaggregation — the plain
	// cluster simulator, which ignores the field). See internal/disagg.
	Role string
}

// fleetRoles lists the role suffixes ParseFleet accepts.
var fleetRoles = map[string]bool{"prefill": true, "decode": true, "both": true}

// ParseFleet parses a CLI fleet spec like "GH200:4,Intel+H100:4" into
// fleet groups, resolving each platform from the catalog. Platform
// names may contain '+' but not ':', ',' or '/'. A disaggregated fleet
// tags each group with a role — "GH200:2/prefill,Intel+H100:6/decode"
// — and the same platform may then appear once per role.
func ParseFleet(spec string) ([]FleetGroup, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("cluster: empty fleet spec")
	}
	var groups []FleetGroup
	seen := make(map[string]bool)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		name, countStr, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("cluster: fleet entry %q needs the form platform:count[/role]", part)
		}
		countStr, role, hasRole := strings.Cut(countStr, "/")
		if hasRole {
			role = strings.TrimSpace(role)
			if !fleetRoles[role] {
				return nil, fmt.Errorf("cluster: fleet entry %q: unknown role %q (have prefill|decode|both)", part, role)
			}
		}
		count, err := strconv.Atoi(strings.TrimSpace(countStr))
		if err != nil || count <= 0 {
			return nil, fmt.Errorf("cluster: fleet entry %q needs a positive instance count", part)
		}
		p, err := hw.ByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		key := p.Name + "/" + role
		if seen[key] {
			return nil, fmt.Errorf("cluster: fleet lists platform %q twice in the same role; merge the counts into one entry", p.Name)
		}
		seen[key] = true
		groups = append(groups, FleetGroup{Platform: p, Count: count, Role: role})
	}
	return groups, nil
}

// FleetConfigs expands fleet groups over a base serving config: every
// instance inherits the base (model, policy, KV knobs, SLO) with its
// group's platform substituted in. This is the common case — a
// heterogeneous fleet serving one model — while callers needing
// per-instance knobs build Config.Instances by hand. Groups with a
// missing platform or a non-positive count are rejected: they used to
// expand to a silently empty (or truncated) fleet that only failed
// later, far from the mistake.
func FleetConfigs(groups []FleetGroup, base serve.Config) ([]serve.Config, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("cluster: fleet needs at least one group")
	}
	var cfgs []serve.Config
	for gi, g := range groups {
		if g.Platform == nil {
			return nil, fmt.Errorf("cluster: fleet group %d needs a platform", gi)
		}
		if g.Count <= 0 {
			return nil, fmt.Errorf("cluster: fleet group %d (%s) needs a positive count, got %d", gi, g.Platform.Name, g.Count)
		}
		for i := 0; i < g.Count; i++ {
			cfg := base
			cfg.Platform = g.Platform
			cfgs = append(cfgs, cfg)
		}
	}
	return cfgs, nil
}
