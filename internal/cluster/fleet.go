package cluster

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/skipsim/skip/internal/hw"
	"github.com/skipsim/skip/internal/serve"
)

// FleetGroup is one homogeneous slice of a fleet: count instances of
// one platform.
type FleetGroup struct {
	Platform *hw.Platform
	Count    int
}

// ParseFleet parses a CLI fleet spec like "GH200:4,Intel+H100:4" into
// fleet groups, resolving each platform from the catalog. Platform
// names may contain '+' but not ':' or ','.
func ParseFleet(spec string) ([]FleetGroup, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("cluster: empty fleet spec")
	}
	var groups []FleetGroup
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		name, countStr, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("cluster: fleet entry %q needs the form platform:count", part)
		}
		count, err := strconv.Atoi(strings.TrimSpace(countStr))
		if err != nil || count <= 0 {
			return nil, fmt.Errorf("cluster: fleet entry %q needs a positive instance count", part)
		}
		p, err := hw.ByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		groups = append(groups, FleetGroup{Platform: p, Count: count})
	}
	return groups, nil
}

// FleetConfigs expands fleet groups over a base serving config: every
// instance inherits the base (model, policy, KV knobs, SLO) with its
// group's platform substituted in. This is the common case — a
// heterogeneous fleet serving one model — while callers needing
// per-instance knobs build Config.Instances by hand.
func FleetConfigs(groups []FleetGroup, base serve.Config) []serve.Config {
	var cfgs []serve.Config
	for _, g := range groups {
		for i := 0; i < g.Count; i++ {
			cfg := base
			cfg.Platform = g.Platform
			cfgs = append(cfgs, cfg)
		}
	}
	return cfgs
}
