package cluster

import (
	"reflect"
	"strings"
	"testing"

	"github.com/skipsim/skip/internal/engine"
	"github.com/skipsim/skip/internal/hw"
	"github.com/skipsim/skip/internal/models"
	"github.com/skipsim/skip/internal/serve"
	"github.com/skipsim/skip/internal/sim"
)

// testServeConfig is the per-instance baseline: a small decoder so
// engine runs stay cheap.
func testServeConfig(p *hw.Platform) serve.Config {
	return serve.Config{
		Platform: p, Model: models.GPT2(), Seq: 64, Mode: engine.Eager,
		Policy: serve.ContinuousBatch, MaxBatch: 8, DefaultOutputLen: 4,
	}
}

func gpt2KVBytesPerToken() float64 {
	m := models.GPT2()
	return float64(2 * m.Layers * m.KVDim() * 2)
}

// mixedFleet is a 1+1 heterogeneous fleet (coupled + loosely coupled).
func mixedFleet() []serve.Config {
	return []serve.Config{
		testServeConfig(hw.GH200()),
		testServeConfig(hw.IntelH100()),
	}
}

func testLoad(t *testing.T, n int, rate float64, seed int64) []serve.Request {
	t.Helper()
	reqs, err := serve.Workload{
		Scenario: serve.ScenarioChat, N: n, RatePerSec: rate, Seed: seed,
		Prompt: serve.LengthDist{Mean: 48, Sigma: 0.5, Min: 16, Max: 96},
		Output: serve.LengthDist{Mean: 4, Sigma: 0.5, Min: 2, Max: 8},
	}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

func TestClusterRoundRobinSpreadsLoad(t *testing.T) {
	reqs := testLoad(t, 20, 200, 7)
	st, err := Simulate(Config{Instances: mixedFleet(), Policy: RoundRobin}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != 20 || st.Routed != 20 || st.Rejected != 0 || st.Unroutable != 0 {
		t.Fatalf("accounting: %+v", st)
	}
	for _, is := range st.Instances {
		if is.Routed != 10 {
			t.Errorf("%s routed %d, want 10 (round-robin over 2 instances)", is.Name, is.Routed)
		}
	}
	if st.LoadImbalance != 0 {
		t.Errorf("even split should have zero imbalance, got %g", st.LoadImbalance)
	}
	if st.P50TTFT <= 0 || st.P99TTFT < st.P95TTFT || st.P95TTFT < st.P50TTFT {
		t.Errorf("TTFT ordering broken: P50 %v P95 %v P99 %v", st.P50TTFT, st.P95TTFT, st.P99TTFT)
	}
	if st.MeanE2E < st.MeanTTFT {
		t.Errorf("E2E (%v) cannot beat TTFT (%v)", st.MeanE2E, st.MeanTTFT)
	}
}

// TestClusterDeterministic pins the acceptance criterion: a fixed seed
// reproduces byte-identical fleet statistics, including every nested
// per-instance series.
func TestClusterDeterministic(t *testing.T) {
	cfg := Config{
		Instances: mixedFleet(), Policy: LeastQueue,
		TTFTSLO: 200 * sim.Millisecond, AdmitRatePerSec: 150, AdmitBurst: 5,
	}
	a, err := Simulate(cfg, testLoad(t, 40, 300, 11))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(cfg, testLoad(t, 40, 300, 11))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed must reproduce byte-identical stats:\n a: %+v\n b: %+v", a, b)
	}
}

// TestClusterReconciliationUnderPressure drives every loss path at once
// — admission rejections, unroutable giants, queueing, preemption, and
// abandonment — and checks the request ledger still balances exactly.
func TestClusterReconciliationUnderPressure(t *testing.T) {
	bpt := gpt2KVBytesPerToken()
	fleet := mixedFleet()
	for i := range fleet {
		fleet[i].KVCapacityBytes = 110 * bpt // ~one request at a time
		fleet[i].AbandonAfter = 3 * sim.Millisecond
		fleet[i].DefaultOutputLen = 10
		fleet[i].Seq = 32
	}
	reqs := testLoad(t, 30, 400, 3)
	for i := range reqs {
		reqs[i].PromptLen = 32
		reqs[i].OutputLen = 10
	}
	// One giant that fits no instance's KV budget, arriving first so
	// the still-full admission bucket passes it through to the router.
	reqs = append(reqs, serve.Request{ID: 1000, Arrival: 0, PromptLen: 500, OutputLen: 10})

	st, err := Simulate(Config{
		Instances: fleet, Policy: LeastKV,
		AdmitRatePerSec: 100, AdmitBurst: 2,
	}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if st.Offered != len(reqs) {
		t.Fatalf("offered %d, want %d", st.Offered, len(reqs))
	}
	if st.Unroutable != 1 {
		t.Errorf("unroutable %d, want 1 (the giant)", st.Unroutable)
	}
	if st.Rejected == 0 {
		t.Error("a 100 req/s bucket under a 400 req/s burst must reject")
	}
	if st.Abandoned == 0 {
		t.Error("a one-request KV budget with 3ms patience must abandon")
	}
	if st.Offered != st.Rejected+st.Unroutable+st.Routed {
		t.Errorf("ledger broken: %d != %d + %d + %d", st.Offered, st.Rejected, st.Unroutable, st.Routed)
	}
	if st.Completed+st.Abandoned != st.Routed {
		t.Errorf("routed %d but settled %d + %d", st.Routed, st.Completed, st.Abandoned)
	}
	var perInstance int
	for _, is := range st.Instances {
		perInstance += is.Serve.Completed + is.Serve.Abandoned
	}
	if perInstance != st.Routed {
		t.Errorf("per-instance settlements %d != routed %d", perInstance, st.Routed)
	}
}

func TestClusterSessionAffinityPinsSessions(t *testing.T) {
	cal := sim.NewCalendar()
	a, err := serve.NewInstance("a", testServeConfig(hw.GH200()), cal)
	if err != nil {
		t.Fatal(err)
	}
	b, err := serve.NewInstance("b", testServeConfig(hw.GH200()), cal)
	if err != nil {
		t.Fatal(err)
	}
	instances := []*serve.Instance{a, b}
	rt := newRouter(SessionAffinity, 0)

	first := serve.Request{ID: 0, SessionID: 9, PromptLen: 32, OutputLen: 2}
	if idx := rt.pick(first, instances); idx != 0 {
		t.Fatalf("empty fleet: first turn should land on instance 0, got %d", idx)
	}
	// Load instance 0 so least-outstanding would now prefer 1 —
	// affinity must still return the pinned instance.
	cal.Schedule(0, func(now sim.Time) {
		if err := a.Accept(now, first); err != nil {
			t.Errorf("accept: %v", err)
		}
	})
	cal.Step()
	if a.Outstanding() != 1 {
		t.Fatalf("instance 0 outstanding = %d, want 1", a.Outstanding())
	}
	later := serve.Request{ID: 1, SessionID: 9, PromptLen: 40, OutputLen: 2}
	if idx := rt.pick(later, instances); idx != 0 {
		t.Errorf("session 9's later turn routed to %d, want its pinned instance 0", idx)
	}
	fresh := serve.Request{ID: 2, SessionID: 10, PromptLen: 32, OutputLen: 2}
	if idx := rt.pick(fresh, instances); idx != 1 {
		t.Errorf("new session should take the least-loaded instance 1, got %d", idx)
	}
	sessionless := serve.Request{ID: 3, PromptLen: 32, OutputLen: 2}
	if idx := rt.pick(sessionless, instances); idx != 1 {
		t.Errorf("sessionless request should balance to instance 1, got %d", idx)
	}
}

func TestClusterPlatformAwareSplitsRegimes(t *testing.T) {
	fleet := mixedFleet() // instance 0 coupled (GH200), instance 1 loose (Intel+H100)
	reqs := []serve.Request{
		{ID: 0, Arrival: 0, PromptLen: 64, OutputLen: 2},
		{ID: 1, Arrival: sim.Millisecond, PromptLen: 900, OutputLen: 2},
		{ID: 2, Arrival: 2 * sim.Millisecond, PromptLen: 128, OutputLen: 2},
		{ID: 3, Arrival: 3 * sim.Millisecond, PromptLen: 700, OutputLen: 2},
	}
	st, err := Simulate(Config{Instances: fleet, Policy: PlatformAware, ShortPrompt: 512}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if st.Instances[0].Routed != 2 || st.Instances[1].Routed != 2 {
		t.Errorf("routed split %d/%d, want 2 short→GH200 and 2 long→Intel+H100",
			st.Instances[0].Routed, st.Instances[1].Routed)
	}
	if st.Completed != 4 {
		t.Errorf("completed %d of 4", st.Completed)
	}
}

func TestClusterPlatformAwareFallsBackAcrossGroups(t *testing.T) {
	bpt := gpt2KVBytesPerToken()
	fleet := mixedFleet()
	fleet[0].KVCapacityBytes = 100 * bpt // coupled budget too small for long prompts
	fleet[1].KVCapacityBytes = 1000 * bpt
	// A short prompt prefers the coupled instance; a long prompt
	// prefers the loose one; a long prompt also *only fits* the loose
	// one. A short prompt when the coupled instance cannot fit it must
	// fall back to the loose group rather than go unroutable.
	reqs := []serve.Request{
		{ID: 0, Arrival: 0, PromptLen: 300, OutputLen: 2}, // short boundary is 512 but exceeds coupled budget
	}
	st, err := Simulate(Config{Instances: fleet, Policy: PlatformAware, ShortPrompt: 512}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if st.Unroutable != 0 || st.Instances[1].Routed != 1 {
		t.Errorf("short-but-big request must fall back to the loose instance: %+v", st)
	}
}

func TestClusterLeastKVPrefersEmptierBudget(t *testing.T) {
	bpt := gpt2KVBytesPerToken()
	fleet := mixedFleet()
	fleet[0].KVCapacityBytes = 200 * bpt  // small budget: pressure rises fast
	fleet[1].KVCapacityBytes = 2000 * bpt // ten times the headroom
	reqs := testLoad(t, 16, 400, 5)
	st, err := Simulate(Config{Instances: fleet, Policy: LeastKV}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if st.Instances[1].Routed <= st.Instances[0].Routed {
		t.Errorf("KV-aware routing should favor the 10x budget: %d vs %d",
			st.Instances[1].Routed, st.Instances[0].Routed)
	}
	if st.Completed != 16 {
		t.Errorf("completed %d of 16", st.Completed)
	}
}

func TestTokenBucket(t *testing.T) {
	tb := NewTokenBucket(10, 2) // 10/s refill, depth 2, starts full
	if !tb.Allow(0) || !tb.Allow(0) {
		t.Fatal("a full depth-2 bucket must admit two instant requests")
	}
	if tb.Allow(0) {
		t.Fatal("the third instant request must be rejected")
	}
	// 100ms refills one token.
	if !tb.Allow(100 * sim.Millisecond) {
		t.Fatal("one token refilled after 100ms")
	}
	if tb.Allow(100 * sim.Millisecond) {
		t.Fatal("only one token refilled")
	}
	// A long gap refills to the cap, not beyond.
	if !tb.Allow(10*sim.Second) || !tb.Allow(10*sim.Second) {
		t.Fatal("burst cap refilled")
	}
	if tb.Allow(10 * sim.Second) {
		t.Fatal("burst cap must bound the refill")
	}
}

func TestParseFleet(t *testing.T) {
	groups, err := ParseFleet("GH200:2,Intel+H100:3")
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 || groups[0].Platform.Name != hw.GH200Name || groups[0].Count != 2 ||
		groups[1].Platform.Name != hw.IntelH100Name || groups[1].Count != 3 {
		t.Errorf("groups = %+v", groups)
	}
	cfgs, err := FleetConfigs(groups, testServeConfig(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 5 {
		t.Fatalf("expanded %d configs, want 5", len(cfgs))
	}
	if cfgs[0].Platform.Name != hw.GH200Name || cfgs[4].Platform.Name != hw.IntelH100Name {
		t.Errorf("platform order broken: %s … %s", cfgs[0].Platform.Name, cfgs[4].Platform.Name)
	}
	for _, bad := range []string{"", "GH200", "GH200:0", "GH200:-1", "GH200:x", "NoSuch:2",
		"GH200:2,GH200:2"} {
		if _, err := ParseFleet(bad); err == nil {
			t.Errorf("ParseFleet(%q) should fail", bad)
		}
	}
}

func TestFleetConfigsRejectsDegenerateGroups(t *testing.T) {
	base := testServeConfig(nil)
	for name, groups := range map[string][]FleetGroup{
		"empty":         nil,
		"zero count":    {{Platform: hw.GH200(), Count: 0}},
		"negative":      {{Platform: hw.GH200(), Count: -3}},
		"nil platform":  {{Platform: nil, Count: 2}},
		"mixed one bad": {{Platform: hw.GH200(), Count: 2}, {Platform: hw.IntelH100(), Count: 0}},
	} {
		if _, err := FleetConfigs(groups, base); err == nil {
			t.Errorf("FleetConfigs(%s) should fail instead of producing a silent empty/truncated fleet", name)
		}
	}
}

func TestRouterPolicyRoundTrip(t *testing.T) {
	for _, p := range Policies() {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	for name, want := range map[string]Policy{
		"rr": RoundRobin, "lq": LeastQueue, "kv": LeastKV,
		"affinity": SessionAffinity, "platform": PlatformAware,
	} {
		if got, err := ParsePolicy(name); err != nil || got != want {
			t.Errorf("alias %q = %v, %v", name, got, err)
		}
	}
	if _, err := ParsePolicy("nope"); err == nil {
		t.Error("unknown policy should fail")
	} else {
		// The error names every valid policy, so a typo is self-serving.
		for _, p := range Policies() {
			if !strings.Contains(err.Error(), p.String()) {
				t.Errorf("ParsePolicy error %q does not list %q", err, p.String())
			}
		}
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := Simulate(Config{}, []serve.Request{{ID: 0}}); err == nil {
		t.Error("empty fleet should fail")
	}
	if _, err := Simulate(Config{Instances: mixedFleet()}, nil); err == nil {
		t.Error("no requests should fail")
	}
	bad := mixedFleet()
	bad[1].Platform = nil
	if _, err := Simulate(Config{Instances: bad}, []serve.Request{{ID: 0}}); err == nil {
		t.Error("nil platform should fail")
	}
	legacy := mixedFleet()
	legacy[0].Policy = serve.GreedyBatch
	if _, err := Simulate(Config{Instances: legacy}, []serve.Request{{ID: 0}}); err == nil ||
		!strings.Contains(err.Error(), "continuous") {
		t.Error("legacy batching policies cannot join a cluster")
	}
	if _, err := Simulate(Config{Instances: mixedFleet(), AdmitRatePerSec: -1}, []serve.Request{{ID: 0}}); err == nil {
		t.Error("negative admission rate should fail")
	}
}

// TestClusterSLOPropagation: the fleet SLO reaches instances that set
// none, and fleet goodput never exceeds throughput.
func TestClusterSLOPropagation(t *testing.T) {
	st, err := Simulate(Config{
		Instances: mixedFleet(), Policy: LeastQueue, TTFTSLO: sim.Nanosecond,
	}, testLoad(t, 10, 100, 2))
	if err != nil {
		t.Fatal(err)
	}
	if st.SLOAttainment != 0 || st.Goodput != 0 {
		t.Errorf("1ns fleet SLO: attainment %.2f goodput %.1f, want 0/0", st.SLOAttainment, st.Goodput)
	}
	for _, is := range st.Instances {
		if is.Serve.SLOAttainment != 0 {
			t.Errorf("%s did not inherit the fleet SLO", is.Name)
		}
	}
	loose, err := Simulate(Config{
		Instances: mixedFleet(), Policy: LeastQueue, TTFTSLO: 3600 * sim.Second,
	}, testLoad(t, 10, 100, 2))
	if err != nil {
		t.Fatal(err)
	}
	if loose.SLOAttainment != 1 || loose.Goodput != loose.Throughput {
		t.Errorf("1h SLO: attainment %.2f goodput %.1f vs throughput %.1f",
			loose.SLOAttainment, loose.Goodput, loose.Throughput)
	}
}
