package cluster

import (
	"math"

	"github.com/skipsim/skip/internal/serve"
	"github.com/skipsim/skip/internal/sim"
)

// InstanceStats pairs one instance's identity and routed count with its
// full serving statistics.
type InstanceStats struct {
	Name     string
	Platform string
	// Routed counts requests the router placed on this instance.
	Routed int
	Serve  serve.Stats
}

// Stats summarizes a fleet simulation. The aggregate latency
// percentiles are computed over the pooled per-request samples from all
// instances — not averaged per-instance percentiles — so they are the
// fleet's true distribution.
type Stats struct {
	// RouterPolicy names the routing policy that produced these stats.
	RouterPolicy string

	// Offered counts requests presented to the front-end; each is then
	// exactly one of: Rejected (admission control), Unroutable (fits no
	// instance's KV budget), or Routed.
	Offered    int
	Rejected   int
	Unroutable int
	Routed     int

	// Completed / Abandoned / Preemptions sum over instances.
	Completed   int
	Abandoned   int
	Preemptions int

	// TTFT / TPOT / E2E over the pooled completed requests.
	MeanTTFT, P50TTFT, P95TTFT, P99TTFT, MaxTTFT sim.Time
	MeanTPOT, P50TPOT, P95TPOT                   sim.Time
	MeanE2E, P50E2E, P95E2E, MaxE2E              sim.Time

	// Horizon is the last completion across the fleet.
	Horizon sim.Time
	// Throughput / TokensPerSec are fleet totals over the horizon.
	Throughput   float64
	TokensPerSec float64
	// Goodput is completed-requests-per-second meeting the fleet TTFT
	// SLO; SLOAttainment is the fraction that met it (1 when unset).
	Goodput       float64
	SLOAttainment float64

	// LoadImbalance is the coefficient of variation (stddev/mean) of
	// per-instance routed counts: 0 for a perfectly even split, growing
	// as the router concentrates load.
	LoadImbalance float64

	Instances []InstanceStats

	// Chaos ledgers fleet churn — autoscale actions, injected faults,
	// and the disposition of every crash-evicted request. Nil (and
	// omitted from JSON) for static fleets, so reports without an
	// autoscale/faults section stay bit-identical to the static path.
	// When present, the headline Goodput above is goodput under chaos.
	Chaos *ChaosStats `json:",omitempty"`

	// Routing carries per-decision records and counterfactual policy
	// replays. Nil (and omitted from JSON) unless Config.CounterfactualK
	// was set, so default reports stay bit-identical.
	Routing *RoutingStats `json:",omitempty"`

	// KVCache sums the per-instance prefix-cache ledgers (hit rate
	// recomputed over the pooled counts). Nil (and omitted from JSON)
	// for cacheless fleets, so those reports stay bit-identical.
	KVCache *serve.KVCacheStats `json:",omitempty"`
}

// ChaosStats is the churn ledger of a dynamic fleet. Counters balance
// exactly: Killed == Requeued + Dropped, and the fleet's fresh
// placements == Completed + Abandoned + Dropped.
type ChaosStats struct {
	// Joins / Drains count autoscale grow and shrink actions.
	Joins  int
	Drains int
	// Crashes / SlowNodes / DegradedLinks count injected faults that
	// actually fired (random crashes skipped to keep the last instance
	// alive do not count; link faults apply to disaggregated fleets
	// only).
	Crashes       int
	SlowNodes     int
	DegradedLinks int
	// Killed counts in-flight requests evicted by crashes; each is then
	// exactly one of Requeued (re-placed through the router) or Dropped
	// (no accepting instance could ever fit it).
	Killed   int
	Requeued int
	Dropped  int
	// Repins counts session-affinity pins moved off departed instances.
	Repins int
	// PeakActive / FinalActive bound the fleet-size trajectory;
	// FleetSize samples the active-member count at every membership
	// transition (start, join, drain, crash).
	PeakActive  int
	FinalActive int
	FleetSize   []serve.SamplePoint
}

// assembleStats pools per-instance results into fleet-level statistics.
func (f *fleetSim) assembleStats() *Stats {
	st := &Stats{
		RouterPolicy: f.cfg.Policy.String(),
		Offered:      len(f.reqs),
		Rejected:     f.rejected,
		Unroutable:   f.unroutable,
		Routed:       f.placed,
	}
	var ttfts, tpots, e2es []sim.Time
	var tokensOut int64
	var caches []*serve.KVCacheStats
	for _, in := range f.members {
		is := in.Stats()
		caches = append(caches, is.KVCache)
		st.Completed += is.Completed
		st.Abandoned += is.Abandoned
		st.Preemptions += is.Preemptions
		if is.Horizon > st.Horizon {
			st.Horizon = is.Horizon
		}
		tokensOut += is.TokensOut
		t, p, e := in.Latencies()
		ttfts = append(ttfts, t...)
		tpots = append(tpots, p...)
		e2es = append(e2es, e...)
		st.Instances = append(st.Instances, InstanceStats{
			Name:     in.Name(),
			Platform: in.Platform().Name,
			Routed:   in.Routed(),
			Serve:    *is,
		})
	}

	st.MeanTTFT, st.MaxTTFT = MeanMax(ttfts)
	pt := serve.Percentiles(ttfts, 50, 95, 99)
	st.P50TTFT, st.P95TTFT, st.P99TTFT = pt[0], pt[1], pt[2]
	st.MeanTPOT, _ = MeanMax(tpots)
	pp := serve.Percentiles(tpots, 50, 95)
	st.P50TPOT, st.P95TPOT = pp[0], pp[1]
	st.MeanE2E, st.MaxE2E = MeanMax(e2es)
	pe := serve.Percentiles(e2es, 50, 95)
	st.P50E2E, st.P95E2E = pe[0], pe[1]

	if st.Horizon > 0 {
		sec := st.Horizon.Seconds()
		st.Throughput = float64(st.Completed) / sec
		st.TokensPerSec = float64(tokensOut) / sec
	}
	st.SLOAttainment, st.Goodput = serve.SLOGoodput(ttfts, f.cfg.TTFTSLO, st.Horizon, st.Throughput)
	counts := make([]int, len(st.Instances))
	for i, is := range st.Instances {
		counts[i] = is.Routed
	}
	st.LoadImbalance = ImbalanceCV(counts)
	if f.chaos != nil {
		f.chaos.Repins = f.rt.repins
		f.chaos.FinalActive = f.activeCount()
		st.Chaos = f.chaos
	}
	st.Routing = f.rec.Stats()
	st.KVCache = serve.MergeKVCacheStats(caches)
	return st
}

// MeanMax returns the mean and maximum of a latency sample set (0, 0
// when empty). Shared by every fleet-statistics assembler (cluster,
// disagg).
func MeanMax(ts []sim.Time) (mean, max sim.Time) {
	if len(ts) == 0 {
		return 0, 0
	}
	var sum sim.Time
	for _, t := range ts {
		sum += t
		if t > max {
			max = t
		}
	}
	return sum / sim.Time(len(ts)), max
}

// ImbalanceCV is the coefficient of variation (stddev/mean) of
// per-instance work counts: 0 for a perfectly even split, growing as
// placement concentrates load.
func ImbalanceCV(counts []int) float64 {
	if len(counts) == 0 {
		return 0
	}
	var sum float64
	for _, c := range counts {
		sum += float64(c)
	}
	mean := sum / float64(len(counts))
	if mean == 0 {
		return 0
	}
	var ss float64
	for _, c := range counts {
		d := float64(c) - mean
		ss += d * d
	}
	return math.Sqrt(ss/float64(len(counts))) / mean
}
