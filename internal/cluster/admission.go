package cluster

import (
	"math"

	"github.com/skipsim/skip/internal/sim"
)

// TokenBucket is the front-end admission controller: requests spend one
// token each, tokens refill continuously at rate per second up to
// burst, and a request arriving to an empty bucket is rejected
// outright. Refill is computed lazily from elapsed simulated time, so
// admission decisions are exactly reproducible for a given arrival
// stream.
type TokenBucket struct {
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   sim.Time
}

// NewTokenBucket starts a full bucket. A non-positive burst defaults to
// one second's refill, but never below a single token.
func NewTokenBucket(rate, burst float64) *TokenBucket {
	if burst <= 0 {
		burst = math.Max(1, rate)
	}
	return &TokenBucket{rate: rate, burst: burst, tokens: burst}
}

// Allow refills for the time elapsed since the last decision and spends
// one token if available.
func (tb *TokenBucket) Allow(now sim.Time) bool {
	if now > tb.last {
		tb.tokens = math.Min(tb.burst, tb.tokens+tb.rate*(now-tb.last).Seconds())
		tb.last = now
	}
	if tb.tokens >= 1 {
		tb.tokens--
		return true
	}
	return false
}
