package cluster

import (
	"fmt"
	"math/rand"

	"github.com/skipsim/skip/internal/serve"
	"github.com/skipsim/skip/internal/sim"
)

// Fault injection: scheduled or seeded-random failures applied to a
// running fleet. A crash kills its victim outright — every in-flight
// request is evicted and re-routed through the front-door policy
// (requeued on whichever instance the router picks, or dropped when
// none can ever fit it), exercising the same mutable-membership path an
// autoscale drain uses. Slow-node faults model the degraded-host case
// (a throttled GPU, a contended CPU side): the victim keeps serving,
// every iteration stretched by a multiplier. Link faults degrade one
// interconnect link's bandwidth and apply to disaggregated fleets only.
//
// Everything is deterministic: scheduled faults fire at fixed calendar
// instants, and the random-crash plan (instants and victim draws) is
// generated from the seed at setup, before the calendar runs.

// FaultKind classifies a fault injection.
type FaultKind int

const (
	// FaultCrash kills the target instance immediately; in-flight work
	// requeues through the router.
	FaultCrash FaultKind = iota
	// FaultSlowNode multiplies the target's iteration durations by
	// Factor from At onward.
	FaultSlowNode
	// FaultLinkDegrade divides one KV-transfer link's bandwidth by
	// Factor from At onward (disaggregated fleets only).
	FaultLinkDegrade
)

func (k FaultKind) String() string {
	switch k {
	case FaultCrash:
		return "crash"
	case FaultSlowNode:
		return "slow-node"
	case FaultLinkDegrade:
		return "link-degraded"
	default:
		return fmt.Sprintf("fault(%d)", int(k))
	}
}

// ParseFaultKind maps a spec name to a fault kind.
func ParseFaultKind(name string) (FaultKind, error) {
	switch name {
	case "crash":
		return FaultCrash, nil
	case "slow-node", "slow":
		return FaultSlowNode, nil
	case "link-degraded", "link":
		return FaultLinkDegrade, nil
	}
	return 0, fmt.Errorf("cluster: unknown fault kind %q (have crash|slow-node|link-degraded)", name)
}

// Fault is one scheduled injection.
type Fault struct {
	// At is the injection instant.
	At sim.Time
	// Kind selects the failure mode.
	Kind FaultKind
	// Target is the victim's member index (for link faults, the
	// source-instance index). A target that does not exist at At — or
	// already stopped — makes the fault a no-op.
	Target int
	// Dst is the destination-instance index of a link fault.
	Dst int
	// Factor is the slow-node iteration multiplier or the link
	// bandwidth divisor (≥ 1).
	Factor float64
}

// FaultsConfig parameterizes fault injection.
type FaultsConfig struct {
	// Faults is the scheduled injection list.
	Faults []Fault
	// CrashRatePerSec adds seeded-random crashes: instants drawn as a
	// Poisson process over the arrival window, victims drawn uniformly
	// from the surviving members at fire time. Crashes that would leave
	// fewer than two accepting instances are skipped — chaos tests the
	// fleet, it does not end the service.
	CrashRatePerSec float64
	// Seed drives the random-crash plan (rate > 0 only).
	Seed int64
}

// validate checks the fault plan; links reports whether the hosting
// fleet has interconnect links to degrade.
func (fc *FaultsConfig) Validate(links bool) error {
	if fc.CrashRatePerSec < 0 {
		return fmt.Errorf("cluster: crash rate must be non-negative, got %g", fc.CrashRatePerSec)
	}
	for i, ft := range fc.Faults {
		switch {
		case ft.At < 0:
			return fmt.Errorf("cluster: fault %d: injection time must be non-negative", i)
		case ft.Target < 0:
			return fmt.Errorf("cluster: fault %d: target must be non-negative, got %d", i, ft.Target)
		}
		switch ft.Kind {
		case FaultCrash:
		case FaultSlowNode:
			if ft.Factor < 1 {
				return fmt.Errorf("cluster: fault %d: slow-node factor must be ≥ 1, got %g", i, ft.Factor)
			}
		case FaultLinkDegrade:
			if !links {
				return fmt.Errorf("cluster: fault %d: link faults apply to disaggregated fleets only", i)
			}
			if ft.Factor < 1 {
				return fmt.Errorf("cluster: fault %d: link degrade factor must be ≥ 1, got %g", i, ft.Factor)
			}
			if ft.Dst < 0 {
				return fmt.Errorf("cluster: fault %d: link destination must be non-negative, got %d", i, ft.Dst)
			}
		default:
			return fmt.Errorf("cluster: fault %d: unknown kind %v", i, ft.Kind)
		}
	}
	return nil
}

// setupFaults schedules the whole fault plan before the calendar runs.
func (f *fleetSim) setupFaults() {
	fc := f.cfg.Faults
	for _, ft := range fc.Faults {
		ft := ft
		f.cal.Schedule(ft.At, func(now sim.Time) { f.injectFault(now, ft) })
	}
	if fc.CrashRatePerSec > 0 {
		rng := rand.New(rand.NewSource(fc.Seed))
		var t float64 // seconds
		for {
			t += rng.ExpFloat64() / fc.CrashRatePerSec
			at := sim.Time(t * 1e9)
			if at > f.lastArrival {
				break
			}
			pick := rng.Uint64()
			f.cal.Schedule(at, func(now sim.Time) { f.randomCrash(now, pick) })
		}
	}
}

// injectFault applies one scheduled fault. Targets that do not exist
// yet (an index beyond the membership at fire time) or already stopped
// make the fault a deterministic no-op.
func (f *fleetSim) injectFault(now sim.Time, ft Fault) {
	if f.routeErr != nil {
		return
	}
	if ft.Target >= len(f.members) {
		return
	}
	in := f.members[ft.Target]
	if in.State() == serve.StateStopped {
		return
	}
	switch ft.Kind {
	case FaultCrash:
		f.crash(now, ft.Target)
	case FaultSlowNode:
		if err := in.SetSlowFactor(ft.Factor); err != nil {
			f.fail(err)
			return
		}
		f.chaos.SlowNodes++
		f.emitFleet(serve.Event{
			Time: now, Type: serve.EventFaultInjected,
			Instance: in.Name(), Detail: fmt.Sprintf("slow-node ×%g", ft.Factor),
		})
	}
}

// randomCrash fires one seeded-random crash: the victim is drawn from
// the members still standing via the pre-drawn pick, and the crash is
// skipped when it would leave fewer than two accepting instances.
func (f *fleetSim) randomCrash(now sim.Time, pick uint64) {
	if f.routeErr != nil {
		return
	}
	var cands []int
	accepting := 0
	for i, in := range f.members {
		if in.State() != serve.StateStopped {
			cands = append(cands, i)
		}
		if in.Accepting() {
			accepting++
		}
	}
	if accepting <= 1 || len(cands) == 0 {
		return
	}
	f.crash(now, cands[int(pick%uint64(len(cands)))])
}

// crash kills one member and re-routes everything it was serving.
func (f *fleetSim) crash(now sim.Time, idx int) {
	in := f.members[idx]
	f.chaos.Crashes++
	f.emitFleet(serve.Event{
		Time: now, Type: serve.EventFaultInjected,
		Instance: in.Name(), Detail: "crash",
	})
	evs := in.Kill(now) // emits instance-gone via the stamped observer
	f.chaos.Killed += len(evs)
	f.sampleFleet(now)
	for _, ev := range evs {
		f.requeue(now, ev)
	}
}

// requeue re-places one crash-evicted request through the routing
// policy, or reports it dropped when no accepting instance can ever
// fit it. The routed request carries its resolved lengths so the fit
// check is exact regardless of the target's config defaults.
func (f *fleetSim) requeue(now sim.Time, ev serve.Evicted) {
	if f.routeErr != nil {
		return
	}
	req := ev.Req
	req.PromptLen, req.OutputLen = ev.PromptLen, ev.OutputLen
	idx := f.rt.pick(req, f.members)
	if idx < 0 {
		f.chaos.Dropped++
		f.frontDoor(now, serve.EventUnroutable, req, "")
		return
	}
	if f.rec != nil {
		f.rec.Record(now, req, f.members, idx, true, 0)
	}
	if err := f.members[idx].AcceptRequeued(now, ev); err != nil {
		f.fail(fmt.Errorf("cluster: %s refused requeued request %d: %w",
			f.members[idx].Name(), req.ID, err))
		return
	}
	f.chaos.Requeued++
	f.frontDoor(now, serve.EventRequeued, req, f.members[idx].Name())
}
