package cluster

import (
	"fmt"
	"strings"

	"github.com/skipsim/skip/internal/hw"
	"github.com/skipsim/skip/internal/serve"
)

// Policy selects how the front-end router places requests on instances.
type Policy int

const (
	// RoundRobin cycles through the instances, skipping those the
	// request can never fit on — the baseline that ignores load and
	// platform asymmetry entirely.
	RoundRobin Policy = iota
	// LeastQueue sends each request to the instance with the fewest
	// outstanding (queued + running) requests, ties to the lowest
	// index.
	LeastQueue
	// LeastKV sends each request to the instance with the lowest
	// committed KV pressure — admitted occupancy plus the queue's
	// unadmitted prompt footprints, as a fraction of that instance's
	// budget. On a heterogeneous fleet this is capacity-aware where
	// LeastQueue is not: an instance with a small KV budget repels load
	// earlier (APEX-style placement by KV asymmetry).
	LeastKV
	// SessionAffinity pins every request of a session (agentic
	// trajectory, multi-turn chat) to the instance that served its
	// first turn, modeling KV-reuse locality; sessionless requests and
	// new sessions fall back to least-outstanding placement.
	SessionAffinity
	// PlatformAware routes by the paper's regime split: short-prompt,
	// latency-critical requests prefer coupled (GH200-class) instances
	// — whose BS=1 TTFT advantage is the paper's headline — while
	// long-context, throughput-oriented requests prefer loosely-coupled
	// discrete instances, keeping the coupled nodes' batches small.
	// Within the preferred group it places least-outstanding, falling
	// back to the other group when no preferred instance fits.
	PlatformAware
	// PrefixAffinity scores cached-block overlap at pick time: each
	// request goes to the accepting instance whose prefix cache already
	// holds the most of its leading prompt tokens (ties to the least
	// outstanding, then the lowest index). Unlike SessionAffinity's
	// static pin, it follows the cache state itself — evicted prefixes
	// release the attraction, and a session whose blocks spilled or
	// dropped re-balances like a fresh one. Requires instances with a
	// KV cache to do better than least-queue; without one every overlap
	// is zero and it degrades to exactly least-outstanding.
	PrefixAffinity
)

func (p Policy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case LeastQueue:
		return "least-queue"
	case LeastKV:
		return "least-kv"
	case SessionAffinity:
		return "session-affinity"
	case PlatformAware:
		return "platform-aware"
	case PrefixAffinity:
		return "prefix-affinity"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy maps a CLI name to a routing policy.
func ParsePolicy(name string) (Policy, error) {
	switch name {
	case "round-robin", "rr":
		return RoundRobin, nil
	case "least-queue", "lq":
		return LeastQueue, nil
	case "least-kv", "kv":
		return LeastKV, nil
	case "session-affinity", "affinity":
		return SessionAffinity, nil
	case "platform-aware", "platform":
		return PlatformAware, nil
	case "prefix-affinity", "prefix":
		return PrefixAffinity, nil
	}
	// The valid-name list derives from Policies() so it can't drift
	// from the policies that actually exist.
	names := make([]string, 0, len(Policies()))
	for _, p := range Policies() {
		names = append(names, p.String())
	}
	return 0, fmt.Errorf("cluster: unknown routing policy %q (have %s)", name, strings.Join(names, "|"))
}

// Policies lists the routing policies in presentation order.
func Policies() []Policy {
	return []Policy{RoundRobin, LeastQueue, LeastKV, SessionAffinity, PlatformAware, PrefixAffinity}
}

// Router is the routing-policy engine behind Simulate's front door,
// exported so layers composing their own fleets — the disaggregation
// simulator routes a prefill pool and a decode pool independently —
// reuse the same placement policies and tie-breaking.
type Router struct {
	r *router
}

// NewRouter builds a router for the policy. shortPrompt is the
// platform-aware regime boundary (≤ 0 takes the 512-token default).
func NewRouter(policy Policy, shortPrompt int64) *Router {
	return &Router{r: newRouter(policy, shortPrompt)}
}

// Pick returns the index of the instance the policy places the request
// on, or -1 when no instance can ever fit it. Decisions are
// deterministic and may mutate routing state (round-robin cursor,
// session pins).
func (rt *Router) Pick(req serve.Request, instances []*serve.Instance) int {
	return rt.r.pick(req, instances)
}

// Repins counts session-affinity pins moved off departed instances.
func (rt *Router) Repins() int { return rt.r.repins }

// router holds the mutable routing state: the round-robin cursor and
// the session→instance pin table. All decisions are deterministic —
// ties break to the lowest instance index and the session table is only
// ever read by key, never iterated. The instance slice a pick sees may
// grow between calls (autoscale joins) and instances in it may have
// stopped accepting (drains, crashes); every policy filters on
// Accepting, so membership is effectively mutable without the slice
// ever reindexing.
type router struct {
	policy      Policy
	shortPrompt int64
	next        int
	sessions    map[int64]int
	// repins counts session pins moved because their target instance
	// stopped accepting — the churn ledger's session-affinity entry.
	repins int
}

func newRouter(policy Policy, shortPrompt int64) *router {
	if shortPrompt <= 0 {
		shortPrompt = 512
	}
	return &router{policy: policy, shortPrompt: shortPrompt, sessions: make(map[int64]int)}
}

// pick returns the instance index for the request, or -1 when no
// instance can ever fit it (the caller counts it unroutable). Only
// instances where the request's lifetime KV footprint fits are
// considered.
func (r *router) pick(req serve.Request, instances []*serve.Instance) int {
	switch r.policy {
	case RoundRobin:
		n := len(instances)
		for k := 0; k < n; k++ {
			idx := (r.next + k) % n
			if instances[idx].Accepting() && instances[idx].Fits(req) {
				r.next = (idx + 1) % n
				return idx
			}
		}
		return -1
	case LeastKV:
		return leastBy(req, instances, func(in *serve.Instance) float64 { return in.KVPressure() })
	case SessionAffinity:
		if req.SessionID != 0 {
			if idx, ok := r.sessions[req.SessionID]; ok {
				if instances[idx].Accepting() && instances[idx].Fits(req) {
					return idx
				}
				// The pin target departed (drained, crashed) or cannot
				// fit this turn: fall back to the policy's secondary
				// choice and re-pin the session there, counting the move
				// when churn caused it.
				nidx := leastOutstanding(req, instances)
				if nidx >= 0 {
					r.sessions[req.SessionID] = nidx
					if !instances[idx].Accepting() {
						r.repins++
					}
				}
				return nidx
			}
			idx := leastOutstanding(req, instances)
			if idx >= 0 {
				r.sessions[req.SessionID] = idx
			}
			return idx
		}
		return leastOutstanding(req, instances)
	case PlatformAware:
		return pickPlatformAware(req, instances, r.shortPrompt)
	case PrefixAffinity:
		return pickPrefixAffinity(req, instances)
	default: // LeastQueue
		return leastOutstanding(req, instances)
	}
}

// pickPrefixAffinity is the stateless cached-overlap pick: maximize the
// instance's device-resident prefix tokens for this request, ties to
// the least outstanding, then the lowest index. The overlap query
// (Instance.CachedPrefixTokens) is strictly read-only, so
// counterfactual scoring could replay this pick without perturbing any
// cache. Sessionless requests — and cacheless fleets, where every
// overlap is zero — place exactly like least-queue.
func pickPrefixAffinity(req serve.Request, instances []*serve.Instance) int {
	best := -1
	var bestOverlap int64
	var bestOut int
	for i, in := range instances {
		if !in.Accepting() || !in.Fits(req) {
			continue
		}
		overlap := in.CachedPrefixTokens(req)
		out := in.Outstanding()
		if best < 0 || overlap > bestOverlap || (overlap == bestOverlap && out < bestOut) {
			best, bestOverlap, bestOut = i, overlap, out
		}
	}
	return best
}

// pickPlatformAware is the stateless regime-split pick, factored out so
// counterfactual scoring can replay it read-only against live fleet
// state without touching router internals.
func pickPlatformAware(req serve.Request, instances []*serve.Instance, shortPrompt int64) int {
	if req.PromptLen <= 0 {
		// Unknown length (the instance will fall back to its
		// configured Seq): no regime signal, balance neutrally.
		return leastOutstanding(req, instances)
	}
	wantCoupled := req.PromptLen <= shortPrompt
	if idx := leastBy(req, instances, func(in *serve.Instance) float64 {
		if coupled(in) != wantCoupled {
			return -1 // filtered
		}
		return float64(in.Outstanding())
	}); idx >= 0 {
		return idx
	}
	return leastOutstanding(req, instances)
}

func coupled(in *serve.Instance) bool {
	return in.Platform().Coupling != hw.LooselyCoupled
}

func leastOutstanding(req serve.Request, instances []*serve.Instance) int {
	return leastBy(req, instances, func(in *serve.Instance) float64 { return float64(in.Outstanding()) })
}

// leastBy returns the accepting, fitting instance minimizing score,
// ties to the lowest index; a negative score excludes the instance.
// Returns -1 when nothing qualifies.
func leastBy(req serve.Request, instances []*serve.Instance, score func(*serve.Instance) float64) int {
	best, bestScore := -1, 0.0
	for i, in := range instances {
		if !in.Accepting() || !in.Fits(req) {
			continue
		}
		s := score(in)
		if s < 0 {
			continue
		}
		if best < 0 || s < bestScore {
			best, bestScore = i, s
		}
	}
	return best
}
