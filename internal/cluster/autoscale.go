package cluster

import (
	"fmt"

	"github.com/skipsim/skip/internal/hw"
	"github.com/skipsim/skip/internal/serve"
	"github.com/skipsim/skip/internal/sim"
)

// The autoscale controller: a periodic feedback loop on the shared
// calendar that grows the fleet when a load signal runs hot and drains
// it when the signal runs cold. Growth is not instantaneous — a spun-up
// instance joins after a per-platform spin-up delay (model load, KV
// allocation; longer on loosely-coupled hosts whose weights cross PCIe)
// — and a cooldown separates consecutive actions so the controller
// cannot thrash on its own transient. Shrinks drain rather than kill:
// the victim finishes everything already placed on it, then leaves.

// ScaleSignal selects the load signal an autoscale controller tracks.
type ScaleSignal int

const (
	// SignalQueueDepth tracks mean outstanding requests (queued +
	// running) per active instance: grow above Target, shrink below
	// Target/2.
	SignalQueueDepth ScaleSignal = iota
	// SignalSLOAttainment tracks the rolling fraction of recent first
	// tokens meeting the TTFT SLO, pooled across instances: grow below
	// Target, shrink at or above the midpoint between Target and 1.
	SignalSLOAttainment
	// SignalTransferQueue tracks mean queued KV transfers per
	// interconnect link (disaggregated fleets only): grow above Target,
	// shrink below Target/2.
	SignalTransferQueue
)

func (s ScaleSignal) String() string {
	switch s {
	case SignalQueueDepth:
		return "queue-depth"
	case SignalSLOAttainment:
		return "slo-attainment"
	case SignalTransferQueue:
		return "transfer-queue"
	default:
		return fmt.Sprintf("signal(%d)", int(s))
	}
}

// ParseScaleSignal maps a spec name to a scale signal.
func ParseScaleSignal(name string) (ScaleSignal, error) {
	switch name {
	case "queue-depth":
		return SignalQueueDepth, nil
	case "slo-attainment":
		return SignalSLOAttainment, nil
	case "transfer-queue":
		return SignalTransferQueue, nil
	}
	return 0, fmt.Errorf("cluster: unknown scale signal %q (have queue-depth|slo-attainment|transfer-queue)", name)
}

// AutoscaleConfig parameterizes the feedback controller.
type AutoscaleConfig struct {
	// Template is the serving config cloned for every spun-up instance
	// (its TTFTSLO falls back to the fleet's, like base instances).
	Template serve.Config
	// Signal selects the tracked load signal.
	Signal ScaleSignal
	// Target is the signal's setpoint: outstanding requests per
	// instance (queue-depth), attainment fraction in (0,1]
	// (slo-attainment), or queued transfers per link (transfer-queue).
	Target float64
	// Min / Max bound the active-instance count. Shrinks only ever
	// drain instances the controller itself added, so the configured
	// base fleet is a floor regardless of Min; Max caps active plus
	// pending joins.
	Min, Max int
	// Interval is the controller period (default 1s).
	Interval sim.Time
	// Cooldown is the minimum time between scale actions (default
	// 2×Interval).
	Cooldown sim.Time
	// SpinUpDelay is the lag between a grow decision and the instance
	// joining. Zero takes the per-platform default: 2s for coupled
	// hosts, 4s for loosely-coupled ones.
	SpinUpDelay sim.Time
	// SLOWindow is the rolling sample window per instance for the
	// slo-attainment signal (default 50).
	SLOWindow int
}

func (a *AutoscaleConfig) Validate() error {
	switch {
	case a.Template.Platform == nil || a.Template.Model == nil:
		return fmt.Errorf("cluster: autoscale template needs a platform and a model")
	case a.Target <= 0:
		return fmt.Errorf("cluster: autoscale target must be positive, got %g", a.Target)
	case a.Signal == SignalSLOAttainment && a.Target > 1:
		return fmt.Errorf("cluster: slo-attainment target must be in (0,1], got %g", a.Target)
	case a.Max <= 0:
		return fmt.Errorf("cluster: autoscale max must be positive, got %d", a.Max)
	case a.Min < 0 || a.Min > a.Max:
		return fmt.Errorf("cluster: autoscale min %d must be in [0, max %d]", a.Min, a.Max)
	case a.Interval < 0 || a.Cooldown < 0 || a.SpinUpDelay < 0:
		return fmt.Errorf("cluster: autoscale interval, cooldown, and spin-up delay must be non-negative")
	case a.SLOWindow < 0:
		return fmt.Errorf("cluster: autoscale SLO window must be non-negative, got %d", a.SLOWindow)
	}
	return nil
}

func (a *AutoscaleConfig) interval() sim.Time {
	if a.Interval > 0 {
		return a.Interval
	}
	return sim.Second
}

func (a *AutoscaleConfig) cooldown() sim.Time {
	if a.Cooldown > 0 {
		return a.Cooldown
	}
	return 2 * a.interval()
}

func (a *AutoscaleConfig) spinUp() sim.Time {
	if a.SpinUpDelay > 0 {
		return a.SpinUpDelay
	}
	if a.Template.Platform.Coupling == hw.LooselyCoupled {
		return 4 * sim.Second
	}
	return 2 * sim.Second
}

func (a *AutoscaleConfig) sloWindow() int {
	if a.SLOWindow > 0 {
		return a.SLOWindow
	}
	return 50
}

// Resolve returns the controller knobs with defaults applied — the
// values the tick loop actually runs on. Shared with the disaggregated
// fleet's controller so both apply identical defaults.
func (a *AutoscaleConfig) Resolve() (interval, cooldown, spinUp sim.Time, window int) {
	return a.interval(), a.cooldown(), a.spinUp(), a.sloWindow()
}

// setupAutoscale validates the template eagerly (a broken template must
// fail the run at setup, not mid-simulation at first spin-up) and arms
// the first controller tick.
func (f *fleetSim) setupAutoscale() error {
	a := f.cfg.Autoscale
	if a.Signal == SignalTransferQueue {
		return fmt.Errorf("cluster: the transfer-queue signal applies to disaggregated fleets only")
	}
	if _, err := serve.NewInstance("autoscale-template", a.Template, sim.NewCalendar()); err != nil {
		return fmt.Errorf("cluster: autoscale template: %w", err)
	}
	f.cal.Schedule(a.interval(), f.scaleTick)
	return nil
}

// scaleTick is one controller period: evaluate the signal (unless
// cooling down), act, and re-arm while the simulation still has work —
// the tick chain ends with the workload, so the calendar drains.
func (f *fleetSim) scaleTick(now sim.Time) {
	if f.routeErr != nil {
		return
	}
	a := f.cfg.Autoscale
	if !f.scaled || now-f.lastScale >= a.cooldown() {
		f.scaleDecide(now)
	}
	if now < f.lastArrival || f.outstanding() > 0 || f.pendingJoins > 0 {
		f.cal.Schedule(now+a.interval(), f.scaleTick)
	}
}

// scaleDecide evaluates the signal against its setpoint with hysteresis
// (the grow and shrink thresholds are separated so the controller does
// not oscillate around Target) and triggers at most one action.
func (f *fleetSim) scaleDecide(now sim.Time) {
	a := f.cfg.Autoscale
	var grow, shrink bool
	switch a.Signal {
	case SignalSLOAttainment:
		met, total := 0, 0
		for _, in := range f.members {
			if in.State() != serve.StateStopped {
				m, t := in.SLOWindow(a.sloWindow())
				met, total = met+m, total+t
			}
		}
		if total == 0 {
			return // no samples yet: no signal
		}
		att := float64(met) / float64(total)
		grow = att < a.Target
		shrink = att >= (1+a.Target)/2
	default: // SignalQueueDepth
		act := f.activeCount()
		if act == 0 {
			grow = true
			break
		}
		depth := float64(f.outstanding()) / float64(act)
		grow = depth > a.Target
		shrink = depth < a.Target/2
	}
	switch {
	case grow:
		f.grow(now)
	case shrink:
		f.shrink(now)
	}
}

// grow schedules one instance join after the spin-up delay.
func (f *fleetSim) grow(now sim.Time) {
	a := f.cfg.Autoscale
	if f.activeCount()+f.pendingJoins >= a.Max {
		return
	}
	f.pendingJoins++
	f.lastScale, f.scaled = now, true
	f.cal.Schedule(now+a.spinUp(), f.join)
}

// join lands a spun-up instance in the running fleet.
func (f *fleetSim) join(now sim.Time) {
	f.pendingJoins--
	if f.routeErr != nil {
		return
	}
	in, err := f.addInstance(f.cfg.Autoscale.Template, true)
	if err != nil {
		f.fail(fmt.Errorf("cluster: autoscale join: %w", err))
		return
	}
	f.chaos.Joins++
	f.emitFleet(serve.Event{Time: now, Type: serve.EventInstanceJoin, Instance: in.Name()})
	f.sampleFleet(now)
}

// shrink drains the highest-index active instance the controller added.
// The base fleet is never drained, and the last active instance never
// leaves.
func (f *fleetSim) shrink(now sim.Time) {
	a := f.cfg.Autoscale
	act := f.activeCount()
	if act <= 1 || act <= a.Min {
		return
	}
	for i := len(f.members) - 1; i >= 0; i-- {
		if f.managed[i] && f.members[i].Accepting() {
			f.lastScale, f.scaled = now, true
			f.chaos.Drains++
			f.members[i].Drain(now) // emits drain-start via the stamped observer
			f.sampleFleet(now)
			return
		}
	}
}
