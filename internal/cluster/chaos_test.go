package cluster

import (
	"reflect"
	"testing"

	"github.com/skipsim/skip/internal/hw"
	"github.com/skipsim/skip/internal/serve"
	"github.com/skipsim/skip/internal/sim"
)

// TestStaticFleetHasNilChaos: without an autoscale or faults section the
// churn ledger must never allocate — the Report then omits it and static
// output stays bit-identical to the pre-lifecycle path.
func TestStaticFleetHasNilChaos(t *testing.T) {
	st, err := Simulate(Config{Instances: mixedFleet(), Policy: RoundRobin}, testLoad(t, 20, 200, 7))
	if err != nil {
		t.Fatal(err)
	}
	if st.Chaos != nil {
		t.Errorf("static fleet grew a chaos ledger: %+v", st.Chaos)
	}
}

// testAutoscale is a fast controller for tests: short period, short
// spin-up, so growth happens inside a sub-second workload.
func testAutoscale(target float64, max int) *AutoscaleConfig {
	return &AutoscaleConfig{
		Template: testServeConfig(hw.GH200()), Signal: SignalQueueDepth,
		Target: target, Max: max,
		Interval: 10 * sim.Millisecond, Cooldown: 10 * sim.Millisecond,
		SpinUpDelay: 20 * sim.Millisecond,
	}
}

// TestAutoscaleGrowsAndDrains: a burst deep enough to swamp one
// instance must trigger joins; once the burst drains and the queue runs
// cold before a late straggler, the controller must drain its own
// spin-ups back out. The base instance is never drained.
func TestAutoscaleGrowsAndDrains(t *testing.T) {
	reqs := testLoad(t, 50, 1000, 3)
	// A straggler long after the burst keeps the controller ticking
	// through the cold period so shrinks actually fire.
	reqs = append(reqs, serve.Request{ID: 1000, Arrival: 2 * sim.Second, PromptLen: 48, OutputLen: 4})
	st, err := Simulate(Config{
		Instances: []serve.Config{testServeConfig(hw.GH200())},
		Policy:    LeastQueue,
		Autoscale: testAutoscale(2, 3),
	}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	c := st.Chaos
	if c == nil {
		t.Fatal("autoscaled fleet has no chaos ledger")
	}
	if c.Joins < 1 {
		t.Errorf("burst of 50 over one instance triggered %d joins, want ≥ 1", c.Joins)
	}
	if c.PeakActive < 2 {
		t.Errorf("peak active %d, want ≥ 2 after a join", c.PeakActive)
	}
	if c.PeakActive > 3 {
		t.Errorf("peak active %d exceeds the configured max 3", c.PeakActive)
	}
	if c.Drains < 1 {
		t.Errorf("cold period before the straggler triggered %d drains, want ≥ 1", c.Drains)
	}
	if c.FinalActive < 1 {
		t.Error("the base instance must never be drained away")
	}
	if len(c.FleetSize) < 1+c.Joins+c.Drains {
		t.Errorf("fleet-size series has %d samples, want ≥ %d (start + every transition)",
			len(c.FleetSize), 1+c.Joins+c.Drains)
	}
	if st.Completed != len(reqs) {
		t.Errorf("completed %d of %d across the scale actions", st.Completed, len(reqs))
	}
	if len(st.Instances) != 1+c.Joins {
		t.Errorf("report shows %d instances, want base + %d joins", len(st.Instances), c.Joins)
	}
}

// TestScheduledCrashRequeuesInOrder: a crash mid-burst must evict the
// victim's in-flight work and re-place it through the router, emitting
// fault-injected → instance-gone → requeued in that exact order; the
// event stream itself must be deterministic across reruns.
func TestScheduledCrashRequeuesInOrder(t *testing.T) {
	run := func() (*Stats, []serve.Event) {
		var events []serve.Event
		st, err := Simulate(Config{
			Instances: mixedFleet(), Policy: RoundRobin,
			Observer: func(e serve.Event) { events = append(events, e) },
			Faults: &FaultsConfig{Faults: []Fault{
				{At: 10 * sim.Millisecond, Kind: FaultCrash, Target: 0},
			}},
		}, testLoad(t, 40, 2000, 11))
		if err != nil {
			t.Fatal(err)
		}
		return st, events
	}
	st, events := run()
	c := st.Chaos
	if c == nil {
		t.Fatal("faulted fleet has no chaos ledger")
	}
	if c.Crashes != 1 {
		t.Fatalf("crashes %d, want exactly 1", c.Crashes)
	}
	if c.Killed < 1 {
		t.Fatal("crash at 10ms into a 2000/s burst evicted nothing")
	}
	if c.Killed != c.Requeued+c.Dropped {
		t.Errorf("killed %d != requeued %d + dropped %d", c.Killed, c.Requeued, c.Dropped)
	}
	if c.FinalActive != 1 {
		t.Errorf("final active %d, want 1 after the crash", c.FinalActive)
	}
	if st.Completed+st.Abandoned+c.Dropped != st.Routed {
		t.Errorf("ledger: completed %d + abandoned %d + dropped %d != routed %d",
			st.Completed, st.Abandoned, c.Dropped, st.Routed)
	}

	victim := st.Instances[0].Name
	fault, gone, requeues := -1, -1, 0
	for i, e := range events {
		switch {
		case e.Type == serve.EventFaultInjected && e.Instance == victim:
			fault = i
		case e.Type == serve.EventInstanceGone && e.Instance == victim:
			gone = i
			if e.Detail != "killed" {
				t.Errorf("instance-gone detail %q, want \"killed\"", e.Detail)
			}
		case e.Type == serve.EventRequeued:
			requeues++
			if gone < 0 {
				t.Error("requeued event before the victim was gone")
			}
		}
	}
	if fault < 0 || gone < 0 || fault > gone {
		t.Errorf("event order broken: fault-injected at %d, instance-gone at %d", fault, gone)
	}
	if requeues != c.Requeued {
		t.Errorf("observer saw %d requeued events, ledger says %d", requeues, c.Requeued)
	}

	st2, events2 := run()
	if !reflect.DeepEqual(st, st2) {
		t.Error("rerun produced different stats under an identical fault plan")
	}
	if !reflect.DeepEqual(events, events2) {
		t.Errorf("event streams diverged across reruns: %d vs %d events", len(events), len(events2))
	}
}

// TestSlowNodeFaultStretchesTheRun: a slow-node multiplier on the only
// instance must push the horizon out versus an identical fault-free run.
func TestSlowNodeFaultStretchesTheRun(t *testing.T) {
	reqs := testLoad(t, 20, 400, 5)
	base, err := Simulate(Config{
		Instances: []serve.Config{testServeConfig(hw.GH200())}, Policy: RoundRobin,
	}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	slowed, err := Simulate(Config{
		Instances: []serve.Config{testServeConfig(hw.GH200())}, Policy: RoundRobin,
		Faults: &FaultsConfig{Faults: []Fault{
			{At: 0, Kind: FaultSlowNode, Target: 0, Factor: 8},
		}},
	}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if slowed.Chaos == nil || slowed.Chaos.SlowNodes != 1 {
		t.Fatalf("slow-node ledger: %+v", slowed.Chaos)
	}
	if slowed.Horizon <= base.Horizon {
		t.Errorf("8× slow node finished at %v, not later than the fault-free %v", slowed.Horizon, base.Horizon)
	}
	if slowed.Completed != base.Completed {
		t.Errorf("slow node completed %d vs %d — slowness must not lose work", slowed.Completed, base.Completed)
	}
}

// TestSeededChaosDeterministic: autoscaling plus seeded-random crashes
// must reproduce identical statistics — FleetSize series, churn
// counters, and every nested per-instance ledger included — run to run.
// CI runs this under -race as well.
func TestSeededChaosDeterministic(t *testing.T) {
	cfg := Config{
		Instances: mixedFleet(), Policy: LeastQueue,
		TTFTSLO:   200 * sim.Millisecond,
		Autoscale: testAutoscale(2, 4),
		Faults:    &FaultsConfig{CrashRatePerSec: 10, Seed: 42},
	}
	a, err := Simulate(cfg, testLoad(t, 60, 300, 9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(cfg, testLoad(t, 60, 300, 9))
	if err != nil {
		t.Fatal(err)
	}
	if a.Chaos == nil {
		t.Fatal("chaos run has no chaos ledger")
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("seeded chaos must be deterministic:\n a: %+v\n b: %+v", a.Chaos, b.Chaos)
	}
}

// TestSessionAffinityRepinsAfterCrash: crashing the instance a session
// is pinned to must move the pin (recorded in the churn ledger), not
// strand the session's later turns.
func TestSessionAffinityRepinsAfterCrash(t *testing.T) {
	var reqs []serve.Request
	for i := 0; i < 10; i++ {
		reqs = append(reqs, serve.Request{
			ID: i, Arrival: sim.Time(i) * 5 * sim.Millisecond,
			PromptLen: 48, OutputLen: 4, SessionID: 7,
		})
	}
	// Session 7's first turn pins to index 0 (least-outstanding tie
	// breaks low); the crash lands mid-session.
	st, err := Simulate(Config{
		Instances: mixedFleet(), Policy: SessionAffinity,
		Faults: &FaultsConfig{Faults: []Fault{
			{At: 12 * sim.Millisecond, Kind: FaultCrash, Target: 0},
		}},
	}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	c := st.Chaos
	if c == nil || c.Crashes != 1 {
		t.Fatalf("chaos ledger: %+v", c)
	}
	if c.Repins < 1 {
		t.Errorf("session pinned to the crashed instance recorded %d repins, want ≥ 1", c.Repins)
	}
	if st.Completed+c.Dropped != st.Routed {
		t.Errorf("ledger: completed %d + dropped %d != routed %d", st.Completed, c.Dropped, st.Routed)
	}
	if got := st.Instances[1].Routed; got < 1 {
		t.Error("no post-crash turn landed on the surviving instance")
	}
}

// TestFaultTargetNoOps: faults aimed at members that do not exist, or
// fired twice at the same victim, must be deterministic no-ops — not
// errors, not double counts.
func TestFaultTargetNoOps(t *testing.T) {
	st, err := Simulate(Config{
		Instances: mixedFleet(), Policy: RoundRobin,
		Faults: &FaultsConfig{Faults: []Fault{
			{At: 5 * sim.Millisecond, Kind: FaultCrash, Target: 99},
			{At: 10 * sim.Millisecond, Kind: FaultCrash, Target: 0},
			{At: 15 * sim.Millisecond, Kind: FaultCrash, Target: 0},
		}},
	}, testLoad(t, 30, 1000, 13))
	if err != nil {
		t.Fatal(err)
	}
	c := st.Chaos
	if c == nil {
		t.Fatal("faulted fleet has no chaos ledger")
	}
	if c.Crashes != 1 {
		t.Errorf("crashes %d, want 1 (out-of-range and already-dead targets are no-ops)", c.Crashes)
	}
	if st.Completed+st.Abandoned+c.Dropped != st.Routed {
		t.Errorf("ledger: completed %d + abandoned %d + dropped %d != routed %d",
			st.Completed, st.Abandoned, c.Dropped, st.Routed)
	}
}
