package engine

import (
	"testing"

	"github.com/skipsim/skip/internal/hw"
	"github.com/skipsim/skip/internal/models"
	"github.com/skipsim/skip/internal/sim"
)

func TestStepModelCachesByBucket(t *testing.T) {
	sm, err := NewStepModel(hw.GH200(), models.GPT2(), Eager, 64)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sm.DecodeStep(4, 100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sm.DecodeStep(4, 120)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("kvLen 100 and 120 share the 128 bucket: %v vs %v", a, b)
	}
	if sm.CachedRuns() != 1 {
		t.Errorf("cached runs = %d, want 1 (one bucket)", sm.CachedRuns())
	}
	// kvLen 200 lands in the 256 bucket: a distinct engine run, even if
	// its duration coincides on CPU-dispatch-bound platforms.
	if _, err := sm.DecodeStep(4, 200); err != nil {
		t.Fatal(err)
	}
	if sm.CachedRuns() != 2 {
		t.Errorf("cached runs = %d, want 2", sm.CachedRuns())
	}
	if _, err := sm.DecodeStep(4, 256); err != nil {
		t.Fatal(err)
	}
	if sm.CachedRuns() != 2 {
		t.Errorf("cached runs = %d after kv=256 re-hit, want 2", sm.CachedRuns())
	}
}

func TestStepModelPrefillMatchesRun(t *testing.T) {
	sm, err := NewStepModel(hw.GH200(), models.GPT2(), Eager, 64)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sm.Prefill(2, 128)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Request{Platform: hw.GH200(), Model: models.GPT2(), Batch: 2, Seq: 128, Mode: Eager})
	if err != nil {
		t.Fatal(err)
	}
	if got != res.TTFT {
		t.Errorf("cached prefill %v != engine.Run TTFT %v", got, res.TTFT)
	}
}

func TestStepModelDecodeScalesWithBatchAndKV(t *testing.T) {
	sm, err := NewStepModel(hw.GH200(), models.Llama32_1B(), Eager, 64)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := sm.DecodeStep(1, 512)
	if err != nil {
		t.Fatal(err)
	}
	d16, err := sm.DecodeStep(16, 512)
	if err != nil {
		t.Fatal(err)
	}
	if d16 <= d1 {
		t.Errorf("decode at BS=16 (%v) should exceed BS=1 (%v)", d16, d1)
	}
	// Batching must amortize: 16 sequences in one step beat 16 steps.
	if d16 >= 16*d1 {
		t.Errorf("batched decode (%v) should beat 16 serial steps (%v)", d16, 16*d1)
	}
	// On GH200's slow host, eager decode is dispatch-bound: a longer KV
	// cache cannot shrink the step (it often doesn't grow it either —
	// the GPU-side attention cost hides under CPU launch time, the
	// paper's CPU-bound regime).
	dLong, err := sm.DecodeStep(1, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if dLong < d1 {
		t.Errorf("decode at kv=4096 (%v) must not undercut kv=512 (%v)", dLong, d1)
	}
}

func TestStepModelValidation(t *testing.T) {
	if _, err := NewStepModel(nil, models.GPT2(), Eager, 0); err == nil {
		t.Error("nil platform should fail")
	}
	sm, err := NewStepModel(hw.GH200(), models.BertBaseUncased(), Eager, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sm.DecodeStep(1, 64); err == nil {
		t.Error("encoder decode step should fail")
	}
	if _, err := sm.Prefill(0, 64); err == nil {
		t.Error("zero batch should fail")
	}
	sm2, _ := NewStepModel(hw.GH200(), models.GPT2(), Eager, 0)
	if sm2.Bucket != 64 {
		t.Errorf("default bucket = %d, want 64", sm2.Bucket)
	}
	if _, err := sm2.DecodeStep(2, 0); err == nil {
		t.Error("zero kvLen should fail")
	}
}

// TestStepModelCacheHitMatchesColdCompute pins the cache transparency
// invariant: a latency served from the cache must be byte-identical to
// the same configuration computed cold on a fresh model.
func TestStepModelCacheHitMatchesColdCompute(t *testing.T) {
	warm, err := NewStepModel(hw.GH200(), models.GPT2(), Eager, 64)
	if err != nil {
		t.Fatal(err)
	}
	coldDecode := func() sim.Time {
		cold, err := NewStepModel(hw.GH200(), models.GPT2(), Eager, 64)
		if err != nil {
			t.Fatal(err)
		}
		d, err := cold.DecodeStep(4, 100)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	first, err := warm.DecodeStep(4, 100)
	if err != nil {
		t.Fatal(err)
	}
	hit, err := warm.DecodeStep(4, 100)
	if err != nil {
		t.Fatal(err)
	}
	if warm.CachedRuns() != 1 {
		t.Fatalf("cached runs = %d, want 1: the repeat must be a hit", warm.CachedRuns())
	}
	if hit != first || hit != coldDecode() {
		t.Errorf("cache hit %v, first compute %v, cold compute %v: all must match", hit, first, coldDecode())
	}

	pFirst, err := warm.Prefill(2, 96)
	if err != nil {
		t.Fatal(err)
	}
	pHit, err := warm.Prefill(2, 96)
	if err != nil {
		t.Fatal(err)
	}
	coldP, err := NewStepModel(hw.GH200(), models.GPT2(), Eager, 64)
	if err != nil {
		t.Fatal(err)
	}
	pCold, err := coldP.Prefill(2, 96)
	if err != nil {
		t.Fatal(err)
	}
	if pHit != pFirst || pHit != pCold {
		t.Errorf("prefill cache hit %v, first %v, cold %v: all must match", pHit, pFirst, pCold)
	}
}
