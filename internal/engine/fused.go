package engine

import (
	"fmt"

	"github.com/skipsim/skip/internal/cuda"
	"github.com/skipsim/skip/internal/fusion"
	"github.com/skipsim/skip/internal/models"
	"github.com/skipsim/skip/internal/ops"
	"github.com/skipsim/skip/internal/trace"
)

// FusionApplication selects how a proximity-score fusion plan is applied
// — the prototype the paper defers to future work.
type FusionApplication int

const (
	// LaunchSavingsOnly fuses launches but leaves the framework's
	// operator walk untouched: the host still interprets every ATen op;
	// only the cudaLaunchKernel calls for fused chains collapse into
	// one. This is the strictly conservative reading of the paper's
	// accounting ("solely through reduced kernel launch counts").
	LaunchSavingsOnly FusionApplication = iota
	// FullRegionFusion replaces each fused chain's operator region with
	// a single compiled dispatch, the way a generated Triton kernel
	// would: one host dispatch + one launch per chain. This is the
	// assumption under which Eq. 8's ideal speedup is reachable.
	FullRegionFusion
)

func (f FusionApplication) String() string {
	if f == FullRegionFusion {
		return "full-region"
	}
	return "launch-savings-only"
}

// FusedRunResult reports an applied-fusion execution.
type FusedRunResult struct {
	Result *Result
	// ChainLength is the applied plan's L.
	ChainLength int
	// FusedInstances is the number of chain instances collapsed.
	FusedInstances int
	// LaunchesSaved is FusedInstances·(L−1).
	LaunchesSaved int
}

// RunFused executes the request's eager graph with a proximity-score
// fusion plan of the given chain length applied, under the chosen
// application model. The plan is mined from the graph's own kernel
// sequence (deterministic chains, greedy non-overlapping instances).
func RunFused(req Request, chainLen int, app FusionApplication) (*FusedRunResult, error) {
	if err := req.validate(); err != nil {
		return nil, err
	}
	if req.Mode != Eager {
		return nil, fmt.Errorf("engine: fusion plans apply to eager mode, got %v", req.Mode)
	}
	graph, err := models.BuildPrefill(req.Model, req.Batch, req.Seq, models.AttnEager)
	if err != nil {
		return nil, err
	}
	kernels := graph.FlattenKernels()
	names := make([]string, len(kernels))
	for i, k := range kernels {
		names[i] = k.Name
	}
	positions, err := fusion.InstancePositions(names, chainLen)
	if err != nil {
		return nil, err
	}
	fusedStart := make(map[int]bool, len(positions))
	for _, p := range positions {
		fusedStart[p] = true
	}

	b := trace.NewBuilder()
	b.Meta("platform", req.Platform.Name)
	b.Meta("model", req.Model.Name)
	b.Meta("mode", fmt.Sprintf("ps-fused-L%d-%s", chainLen, app))
	rt := cuda.NewRuntime(req.Platform, b, mainThreadTID)
	ex := &executor{req: req, rt: rt, builder: b}

	switch app {
	case LaunchSavingsOnly:
		ex.runEagerWithPlan(graph, kernels, fusedStart, chainLen)
	case FullRegionFusion:
		ex.runFullRegionFused(graph, kernels, fusedStart, chainLen)
	default:
		return nil, fmt.Errorf("engine: unknown fusion application %v", app)
	}

	tr := b.Trace()
	start, end := tr.Span()
	res := &Result{
		Request:      req,
		Trace:        tr,
		TTFT:         end - start,
		HostLaunches: rt.Launches(),
		KernelCount:  len(tr.Kernels()),
		GPUBusy:      rt.GPUBusy(),
		CPUBusy:      ex.cpuBusy,
	}
	res.GPUIdle = res.TTFT - res.GPUBusy
	res.CPUIdle = res.TTFT - res.CPUBusy
	return &FusedRunResult{
		Result:         res,
		ChainLength:    chainLen,
		FusedInstances: len(positions),
		LaunchesSaved:  len(positions) * (chainLen - 1),
	}, nil
}

// runEagerWithPlan is the conservative application: the operator walk is
// unchanged; kernels whose flat index starts a fused chain launch the
// merged kernel, interior kernels are skipped (their cost was merged).
func (ex *executor) runEagerWithPlan(g *ops.Graph, kernels []ops.Kernel, fusedStart map[int]bool, l int) {
	merged := mergeChains(kernels, fusedStart, l)
	ex.transferInputs(g)
	idx := 0
	var walk func(n *ops.Node)
	walk = func(n *ops.Node) {
		start := ex.rt.CPU.Now()
		ex.advanceCPU(n.CPUNs)
		for _, c := range n.Children {
			walk(c)
		}
		for range n.Kernels {
			switch mk, ok := merged[idx]; {
			case ok:
				ex.launch(mk)
			case insideChain(idx, fusedStart, l):
				// Interior of a fused chain: the work rides the merged
				// kernel; no launch.
			default:
				ex.launch(kernels[idx])
			}
			idx++
		}
		end := ex.rt.CPU.Now()
		ex.builder.Operator(n.Name, mainThreadTID, start, end-start)
	}
	for _, n := range g.Nodes {
		walk(n)
	}
	ex.rt.Synchronize()
	ex.transferOutputs(g)
}

// runFullRegionFused is the aggressive application: fused regions cost a
// single compiled dispatch + launch; unfused kernels keep a full eager
// dispatch cost approximated by the graph's mean per-kernel host cost.
func (ex *executor) runFullRegionFused(g *ops.Graph, kernels []ops.Kernel, fusedStart map[int]bool, l int) {
	merged := mergeChains(kernels, fusedStart, l)
	// Mean host cost per kernel of the unfused walk: total node CPU over
	// kernel count.
	var totalCPU float64
	for _, n := range g.Nodes {
		n.Walk(func(m *ops.Node) { totalCPU += m.CPUNs })
	}
	perKernel := totalCPU / float64(len(kernels))

	ex.transferInputs(g)
	start := ex.rt.CPU.Now()
	for idx := 0; idx < len(kernels); idx++ {
		mk, isStart := merged[idx]
		if !isStart {
			if insideChain(idx, fusedStart, l) {
				continue
			}
			ex.advanceCPU(perKernel)
			ex.launch(kernels[idx])
			continue
		}
		ex.advanceCPU(perKernel) // one dispatch for the whole region
		ex.launch(mk)
	}
	end := ex.rt.CPU.Now()
	ex.builder.Operator("PSFusedFunction", mainThreadTID, start, end-start)
	ex.rt.Synchronize()
	ex.transferOutputs(g)
}

// mergeChains builds the merged kernel for every fused start index.
func mergeChains(kernels []ops.Kernel, fusedStart map[int]bool, l int) map[int]ops.Kernel {
	merged := make(map[int]ops.Kernel, len(fusedStart))
	for p := range fusedStart {
		mk := ops.Kernel{
			Name:  fmt.Sprintf("ps_fused_chain_L%d", l),
			Class: kernels[p].Class,
		}
		for i := p; i < p+l && i < len(kernels); i++ {
			mk.Cost = mk.Cost.Add(kernels[i].Cost)
		}
		merged[p] = mk
	}
	return merged
}

// insideChain reports whether idx falls in the interior of a fused chain.
func insideChain(idx int, fusedStart map[int]bool, l int) bool {
	for p := idx - l + 1; p < idx; p++ {
		if p >= 0 && fusedStart[p] {
			return true
		}
	}
	return false
}
