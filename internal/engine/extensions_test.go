package engine

import (
	"testing"

	"github.com/skipsim/skip/internal/core"
	"github.com/skipsim/skip/internal/hw"
	"github.com/skipsim/skip/internal/models"
	"github.com/skipsim/skip/internal/sim"
)

func llamaReq(p *hw.Platform, bs int64) Request {
	return Request{Platform: p, Model: models.Llama32_1B(), Batch: bs, Seq: 512, Mode: Eager}
}

func TestRunGenerateBasics(t *testing.T) {
	res, err := RunGenerate(llamaReq(hw.GH200(), 1), 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.TTFT <= 0 || res.DecodeTime <= 0 {
		t.Fatalf("phases: ttft=%v decode=%v", res.TTFT, res.DecodeTime)
	}
	if res.Total != res.TTFT+res.DecodeTime {
		t.Error("total must be the sum of phases")
	}
	if res.TPOT <= 0 || res.TPOT >= res.TTFT {
		t.Errorf("TPOT (%v) should be positive and well below TTFT (%v)", res.TPOT, res.TTFT)
	}
	if res.DecodeKernelsPerStep <= 0 {
		t.Error("decode steps should launch kernels")
	}
	if err := res.Trace.Validate(); err != nil {
		t.Fatalf("generation trace invalid: %v", err)
	}
}

func TestDecodeIsMemoryPressured(t *testing.T) {
	// §II-A: prefill pressures compute; decode pressures memory. The
	// decode phase's arithmetic intensity (FLOPs/byte) must be far below
	// prefill's.
	prefill, err := models.BuildPrefill(models.Llama32_1B(), 1, 512, models.AttnEager)
	if err != nil {
		t.Fatal(err)
	}
	decode, err := models.BuildDecodeStep(models.Llama32_1B(), 1, 512, models.AttnEager)
	if err != nil {
		t.Fatal(err)
	}
	pc, dc := prefill.TotalCost(), decode.TotalCost()
	prefillIntensity := pc.FLOPs / pc.Bytes()
	decodeIntensity := dc.FLOPs / dc.Bytes()
	if decodeIntensity >= prefillIntensity/10 {
		t.Errorf("decode intensity %.2f vs prefill %.2f: want ≥10x lower",
			decodeIntensity, prefillIntensity)
	}
}

func TestDecodeStepRejectsBadInput(t *testing.T) {
	if _, err := models.BuildDecodeStep(models.BertBaseUncased(), 1, 512, models.AttnEager); err == nil {
		t.Error("encoders cannot decode")
	}
	if _, err := models.BuildDecodeStep(models.GPT2(), 0, 512, models.AttnEager); err == nil {
		t.Error("zero batch should fail")
	}
	if _, err := RunGenerate(llamaReq(hw.GH200(), 1), 0); err == nil {
		t.Error("zero tokens should fail")
	}
	if _, err := RunGenerate(Request{Platform: hw.GH200(), Model: models.BertBaseUncased(), Batch: 1, Seq: 128, Mode: Eager}, 4); err == nil {
		t.Error("encoder generation should fail")
	}
	req := llamaReq(hw.GH200(), 1)
	req.Mode = CompileMaxAutotune
	if _, err := RunGenerate(req, 4); err == nil {
		t.Error("compiled generation should fail")
	}
}

func TestDecodeMoreCPUBoundThanPrefill(t *testing.T) {
	// Decode kernels are tiny (one token), so the decode phase sits
	// deeper in the launch-dominated regime — the GPU idles more per
	// step than during prefill on the same platform.
	res, err := RunGenerate(llamaReq(hw.GH200(), 1), 4)
	if err != nil {
		t.Fatal(err)
	}
	prefillIdleFrac := 1 - float64(res.PrefillGPUBusy)/float64(res.TTFT)
	decodeIdleFrac := 1 - float64(res.DecodeGPUBusy)/float64(res.DecodeTime)
	if decodeIdleFrac <= prefillIdleFrac {
		t.Errorf("decode GPU idle frac %.2f should exceed prefill's %.2f",
			decodeIdleFrac, prefillIdleFrac)
	}
}

func TestDecodeGPUWorkScalesWithKVLength(t *testing.T) {
	// Per-step GPU time grows with the cache depth (attention streams
	// the whole KV cache). Wall-clock TPOT at small batch stays pinned
	// to the launch cadence — decode is launch-bound — so the growth
	// shows up in device busy time, not latency.
	short, err := RunGenerate(Request{Platform: hw.IntelH100(), Model: models.Llama32_1B(), Batch: 8, Seq: 128, Mode: Eager}, 2)
	if err != nil {
		t.Fatal(err)
	}
	long, err := RunGenerate(Request{Platform: hw.IntelH100(), Model: models.Llama32_1B(), Batch: 8, Seq: 4096, Mode: Eager}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if long.DecodeGPUBusy <= short.DecodeGPUBusy {
		t.Errorf("decode GPU busy should grow with KV length: %v (kv=128) vs %v (kv=4096)",
			short.DecodeGPUBusy, long.DecodeGPUBusy)
	}
	if long.TPOT < short.TPOT {
		t.Errorf("TPOT must not shrink with KV length: %v vs %v", short.TPOT, long.TPOT)
	}
}

func TestRunFusedConservative(t *testing.T) {
	req := Request{Platform: hw.GH200(), Model: models.GPT2(), Batch: 1, Seq: 512, Mode: Eager}
	eager, err := Run(req)
	if err != nil {
		t.Fatal(err)
	}
	fused, err := RunFused(req, 8, LaunchSavingsOnly)
	if err != nil {
		t.Fatal(err)
	}
	if fused.FusedInstances == 0 {
		t.Fatal("no chains applied")
	}
	if fused.LaunchesSaved != fused.FusedInstances*7 {
		t.Errorf("LaunchesSaved = %d", fused.LaunchesSaved)
	}
	// Kernel count shrinks by exactly the saved launches.
	if got := eager.KernelCount - fused.Result.KernelCount; got != fused.LaunchesSaved {
		t.Errorf("kernel reduction = %d, want %d", got, fused.LaunchesSaved)
	}
	// Conservative application must help, but only by the launch tax.
	if fused.Result.TTFT >= eager.TTFT {
		t.Errorf("fused TTFT %v should beat eager %v", fused.Result.TTFT, eager.TTFT)
	}
	if err := fused.Result.Trace.Validate(); err != nil {
		t.Fatalf("fused trace invalid: %v", err)
	}
}

func TestRunFusedFullRegionApproachesIdeal(t *testing.T) {
	// In the deep CPU-bound region, full-region fusion should realize a
	// large share of the Eq. 8 ideal (which assumes the whole per-kernel
	// cadence scales with launch count).
	req := Request{Platform: hw.GH200(), Model: models.GPT2(), Batch: 1, Seq: 512, Mode: Eager}
	eager, err := Run(req)
	if err != nil {
		t.Fatal(err)
	}
	const l = 16
	full, err := RunFused(req, l, FullRegionFusion)
	if err != nil {
		t.Fatal(err)
	}
	cons, err := RunFused(req, l, LaunchSavingsOnly)
	if err != nil {
		t.Fatal(err)
	}
	fullSpeedup := float64(eager.TTFT) / float64(full.Result.TTFT)
	consSpeedup := float64(eager.TTFT) / float64(cons.Result.TTFT)
	if fullSpeedup <= consSpeedup {
		t.Errorf("full-region speedup %.2f should exceed launch-only %.2f", fullSpeedup, consSpeedup)
	}
	if fullSpeedup < 1.2 {
		t.Errorf("full-region speedup %.2f too small for a CPU-bound run", fullSpeedup)
	}
}

func TestRunFusedRejectsBadRequests(t *testing.T) {
	req := Request{Platform: hw.GH200(), Model: models.GPT2(), Batch: 1, Seq: 512, Mode: Flash}
	if _, err := RunFused(req, 8, LaunchSavingsOnly); err == nil {
		t.Error("non-eager mode should fail")
	}
	req.Mode = Eager
	if _, err := RunFused(req, 1, LaunchSavingsOnly); err == nil {
		t.Error("chain length 1 should fail")
	}
	if _, err := RunFused(Request{}, 8, LaunchSavingsOnly); err == nil {
		t.Error("empty request should fail")
	}
}

func TestFusedTraceStillProfilable(t *testing.T) {
	req := Request{Platform: hw.IntelH100(), Model: models.GPT2(), Batch: 1, Seq: 512, Mode: Eager}
	fused, err := RunFused(req, 4, LaunchSavingsOnly)
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := core.Analyze(fused.Result.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if m.KernelCount != fused.Result.KernelCount {
		t.Errorf("profiler sees %d kernels, engine reports %d", m.KernelCount, fused.Result.KernelCount)
	}
}

func TestFusionApplicationStrings(t *testing.T) {
	if LaunchSavingsOnly.String() != "launch-savings-only" || FullRegionFusion.String() != "full-region" {
		t.Error("FusionApplication strings")
	}
}

// TTFT is non-decreasing in batch size on every platform: more work per
// pass can never finish sooner in a single-stream simulator.
func TestTTFTMonotoneInBatch(t *testing.T) {
	for _, p := range []*hw.Platform{hw.AMDA100(), hw.IntelH100(), hw.GH200()} {
		var prev sim.Time
		for bs := int64(1); bs <= 64; bs *= 2 {
			res, err := Run(Request{Platform: p, Model: models.BertBaseUncased(), Batch: bs, Seq: 512, Mode: Eager})
			if err != nil {
				t.Fatal(err)
			}
			if res.TTFT < prev {
				t.Errorf("%s: TTFT decreased at BS=%d: %v < %v", p.Name, bs, res.TTFT, prev)
			}
			prev = res.TTFT
		}
	}
}

// TTFT grows with sequence length (quadratic attention term included).
func TestTTFTMonotoneInSeq(t *testing.T) {
	var prev sim.Time
	for _, seq := range []int64{128, 256, 512} {
		res, err := Run(Request{Platform: hw.GH200(), Model: models.GPT2(), Batch: 1, Seq: seq, Mode: Eager})
		if err != nil {
			t.Fatal(err)
		}
		if res.TTFT < prev {
			t.Errorf("TTFT decreased at seq=%d", seq)
		}
		prev = res.TTFT
	}
}

// Flash mode dominates eager across platforms and batches: fewer kernels,
// less traffic, never slower.
func TestFlashNeverSlower(t *testing.T) {
	for _, p := range []*hw.Platform{hw.IntelH100(), hw.GH200()} {
		for _, bs := range []int64{1, 8, 32} {
			eager, err := Run(Request{Platform: p, Model: models.BertBaseUncased(), Batch: bs, Seq: 512, Mode: Eager})
			if err != nil {
				t.Fatal(err)
			}
			flash, err := Run(Request{Platform: p, Model: models.BertBaseUncased(), Batch: bs, Seq: 512, Mode: Flash})
			if err != nil {
				t.Fatal(err)
			}
			if flash.TTFT > eager.TTFT {
				t.Errorf("%s BS=%d: flash (%v) slower than eager (%v)", p.Name, bs, flash.TTFT, eager.TTFT)
			}
		}
	}
}
