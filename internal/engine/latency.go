package engine

import (
	"fmt"

	"github.com/skipsim/skip/internal/cuda"
	"github.com/skipsim/skip/internal/hw"
	"github.com/skipsim/skip/internal/models"
	"github.com/skipsim/skip/internal/sim"
	"github.com/skipsim/skip/internal/trace"
)

// StepModel is a cached iteration-latency oracle for serving
// simulators: per-(batch, seq) prefill latency and per-(batch, kvLen)
// decode-step latency, both measured by executing the operator graph on
// the platform model. Sequence and KV lengths are quantized to Bucket
// tokens before caching, so a long simulation touches each engine
// configuration once — the serving layer replays cached iteration
// latencies thousands of times while the engine runs tens of graphs.
type StepModel struct {
	Platform *hw.Platform
	Model    *models.Config
	Mode     Mode
	// Bucket quantizes seq/kvLen for caching (tokens; default 64).
	Bucket int64

	prefill map[stepKey]sim.Time
	decode  map[stepKey]sim.Time
}

type stepKey struct{ batch, tokens int64 }

// NewStepModel validates the configuration and returns an empty cache.
// bucket <= 0 selects the 64-token default.
func NewStepModel(p *hw.Platform, m *models.Config, mode Mode, bucket int64) (*StepModel, error) {
	if p == nil || m == nil {
		return nil, fmt.Errorf("engine: step model needs a platform and a model")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if bucket <= 0 {
		bucket = 64
	}
	return &StepModel{
		Platform: p, Model: m, Mode: mode, Bucket: bucket,
		prefill: make(map[stepKey]sim.Time),
		decode:  make(map[stepKey]sim.Time),
	}, nil
}

// bucketTokens rounds tokens up to the bucket boundary (minimum one
// bucket) so latencies are monotone in the quantized length.
func (sm *StepModel) bucketTokens(tokens int64) int64 {
	b := sm.Bucket
	if tokens <= b {
		return b
	}
	return (tokens + b - 1) / b * b
}

// Prefill returns the latency of one prefill iteration of batch
// sequences at (bucketed) length seq.
func (sm *StepModel) Prefill(batch, seq int64) (sim.Time, error) {
	if batch <= 0 || seq <= 0 {
		return 0, fmt.Errorf("engine: prefill latency needs positive batch (%d) and seq (%d)", batch, seq)
	}
	key := stepKey{batch, sm.bucketTokens(seq)}
	if t, ok := sm.prefill[key]; ok {
		return t, nil
	}
	res, err := Run(Request{
		Platform: sm.Platform, Model: sm.Model,
		Batch: batch, Seq: key.tokens, Mode: sm.Mode,
	})
	if err != nil {
		return 0, err
	}
	sm.prefill[key] = res.TTFT
	return res.TTFT, nil
}

// DecodeStep returns the latency of one decode iteration: batch
// sequences each producing one token against a (bucketed) kvLen-entry
// KV cache. Decode executes eagerly (with fused attention for the
// flash/max-autotune modes), matching RunGenerate's regime.
func (sm *StepModel) DecodeStep(batch, kvLen int64) (sim.Time, error) {
	if batch <= 0 || kvLen <= 0 {
		return 0, fmt.Errorf("engine: decode latency needs positive batch (%d) and kvLen (%d)", batch, kvLen)
	}
	if sm.Model.Kind != models.Decoder {
		return 0, fmt.Errorf("engine: decode step requires a decoder-only model, %s is %v", sm.Model.Name, sm.Model.Kind)
	}
	key := stepKey{batch, sm.bucketTokens(kvLen)}
	if t, ok := sm.decode[key]; ok {
		return t, nil
	}
	attn := models.AttnEager
	switch sm.Mode {
	case Flash, CompileMaxAutotune:
		attn = models.AttnFlash
	}
	g, err := models.BuildDecodeStep(sm.Model, batch, key.tokens, attn)
	if err != nil {
		return 0, err
	}
	b := trace.NewBuilder()
	rt := cuda.NewRuntime(sm.Platform, b, mainThreadTID)
	ex := &executor{
		req: Request{Platform: sm.Platform, Model: sm.Model, Batch: batch, Seq: key.tokens, Mode: sm.Mode},
		rt:  rt, builder: b,
	}
	ex.runEagerOn(rt, g)
	d := rt.CPU.Now()
	sm.decode[key] = d
	return d, nil
}

// CachedRuns reports how many distinct engine configurations have been
// executed (prefill + decode), a proxy for simulation cost.
func (sm *StepModel) CachedRuns() int { return len(sm.prefill) + len(sm.decode) }
