package engine

import (
	"fmt"

	"github.com/skipsim/skip/internal/cuda"
	"github.com/skipsim/skip/internal/models"
	"github.com/skipsim/skip/internal/ops"
	"github.com/skipsim/skip/internal/sim"
	"github.com/skipsim/skip/internal/trace"
)

// GenerateResult reports an autoregressive generation run: a prefill
// over the prompt followed by newTokens decode steps against a growing
// KV cache. The paper's §II-A framing — prefill pressures compute,
// decode pressures the memory subsystem — is directly observable in the
// per-phase metrics.
type GenerateResult struct {
	Request   Request
	NewTokens int
	// TTFT is the prefill latency (time to first token).
	TTFT sim.Time
	// DecodeTime is the summed latency of all decode steps.
	DecodeTime sim.Time
	// Total is TTFT + DecodeTime.
	Total sim.Time
	// TPOT is the mean time per output token over the decode steps.
	TPOT sim.Time
	// PrefillKernels / DecodeKernelsPerStep count launches per phase.
	PrefillKernels, DecodeKernelsPerStep int
	// PrefillGPUBusy / DecodeGPUBusy split device time by phase.
	PrefillGPUBusy, DecodeGPUBusy sim.Time
	// Trace covers the full generation (prefill + all decode steps). Like
	// Result.Trace, it is excluded from JSON reports.
	Trace *trace.Trace `json:"-"`
}

// RunGenerate simulates prefill plus newTokens decode iterations in one
// continuous timeline (eager or flash attention; compiled decode is a
// different serving regime the simulator does not model).
func RunGenerate(req Request, newTokens int) (*GenerateResult, error) {
	if err := req.validate(); err != nil {
		return nil, err
	}
	if req.Model.Kind != models.Decoder {
		return nil, fmt.Errorf("engine: generation requires a decoder-only model")
	}
	if newTokens < 1 {
		return nil, fmt.Errorf("engine: newTokens must be ≥ 1, got %d", newTokens)
	}
	attn := models.AttnEager
	switch req.Mode {
	case Eager:
	case Flash:
		attn = models.AttnFlash
	default:
		return nil, fmt.Errorf("engine: generation supports eager and flash modes, got %v", req.Mode)
	}

	b := trace.NewBuilder()
	b.Meta("platform", req.Platform.Name)
	b.Meta("model", req.Model.Name)
	b.Meta("mode", "generate-"+req.Mode.String())
	rt := cuda.NewRuntime(req.Platform, b, mainThreadTID)
	ex := &executor{req: req, rt: rt, builder: b}

	prefill, err := models.BuildPrefill(req.Model, req.Batch, req.Seq, attn)
	if err != nil {
		return nil, err
	}
	ex.runEagerOn(rt, prefill)
	ttftEnd := rt.CPU.Now()
	prefillBusy := rt.GPUBusy()
	prefillKernels := rt.Launches()

	res := &GenerateResult{
		Request:        req,
		NewTokens:      newTokens,
		TTFT:           ttftEnd,
		PrefillKernels: prefillKernels,
		PrefillGPUBusy: prefillBusy,
	}

	for t := 0; t < newTokens; t++ {
		kvLen := req.Seq + int64(t)
		step, err := models.BuildDecodeStep(req.Model, req.Batch, kvLen, attn)
		if err != nil {
			return nil, err
		}
		ex.runEagerOn(rt, step)
	}
	end := rt.CPU.Now()
	res.DecodeTime = end - ttftEnd
	res.Total = end
	res.TPOT = res.DecodeTime / sim.Time(newTokens)
	res.DecodeGPUBusy = rt.GPUBusy() - prefillBusy
	res.DecodeKernelsPerStep = (rt.Launches() - prefillKernels) / newTokens
	res.Trace = b.Trace()
	return res, nil
}

// runEagerOn walks one graph on an existing runtime (continuing the
// timeline), synchronizing at the end — the per-iteration sync PyTorch
// generation loops perform when sampling the next token on the host.
func (ex *executor) runEagerOn(rt *cuda.Runtime, g *ops.Graph) {
	ex.transferInputs(g)
	for _, n := range g.Nodes {
		ex.execNode(n)
	}
	rt.Synchronize()
	ex.transferOutputs(g)
}
