package engine

import (
	"strings"
	"testing"

	"github.com/skipsim/skip/internal/hw"
	"github.com/skipsim/skip/internal/models"
	"github.com/skipsim/skip/internal/trace"
)

func mustRun(t *testing.T, req Request) *Result {
	t.Helper()
	res, err := Run(req)
	if err != nil {
		t.Fatalf("Run(%v/%v/%v): %v", req.Platform.Name, req.Model.Name, req.Mode, err)
	}
	return res
}

func bertOn(p *hw.Platform, bs int64, mode Mode) Request {
	return Request{Platform: p, Model: models.BertBaseUncased(), Batch: bs, Seq: 512, Mode: mode}
}

func TestEagerRunProducesValidTrace(t *testing.T) {
	res := mustRun(t, bertOn(hw.IntelH100(), 1, Eager))
	if err := res.Trace.Validate(); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	if res.TTFT <= 0 {
		t.Error("TTFT must be positive")
	}
	if res.KernelCount != res.HostLaunches {
		t.Errorf("eager: kernels (%d) should equal host launches (%d)", res.KernelCount, res.HostLaunches)
	}
	if res.GPUIdle < 0 || res.CPUIdle < 0 {
		t.Errorf("idle times must be non-negative: gpu=%v cpu=%v", res.GPUIdle, res.CPUIdle)
	}
	if res.GPUBusy+res.GPUIdle != res.TTFT {
		t.Error("GPU busy + idle must equal TTFT")
	}
}

func TestEagerKernelCountMatchesGraph(t *testing.T) {
	g, _ := models.BuildPrefill(models.BertBaseUncased(), 1, 512, models.AttnEager)
	res := mustRun(t, bertOn(hw.GH200(), 1, Eager))
	// GH200 has unified virtual memory: no memcpy kernels, so trace
	// kernels equal graph kernels exactly.
	if res.KernelCount != g.KernelCount() {
		t.Errorf("kernels = %d, graph has %d", res.KernelCount, g.KernelCount())
	}
}

func TestMemcpyOnlyOnLooselyCoupled(t *testing.T) {
	intel := mustRun(t, bertOn(hw.IntelH100(), 1, Eager))
	gh := mustRun(t, bertOn(hw.GH200(), 1, Eager))
	count := func(tr *trace.Trace) int {
		n := 0
		for _, e := range tr.Events {
			if e.Cat == trace.CatMemcpy {
				n++
			}
		}
		return n
	}
	if count(intel.Trace) == 0 {
		t.Error("LC platform should perform explicit H2D/D2H copies")
	}
	if count(gh.Trace) != 0 {
		t.Error("CC platform with unified virtual memory should not copy")
	}
}

func TestOperatorEventsNestChildren(t *testing.T) {
	res := mustRun(t, bertOn(hw.IntelH100(), 1, Eager))
	operators := res.Trace.Filter(trace.CatOperator)
	var linear, addmm *trace.Event
	for i := range operators {
		switch operators[i].Name {
		case "aten::linear":
			if linear == nil {
				linear = &operators[i]
			}
		case "aten::addmm":
			if addmm == nil && linear != nil {
				addmm = &operators[i]
			}
		}
	}
	if linear == nil || addmm == nil {
		t.Fatal("missing aten::linear / aten::addmm spans")
	}
	if !linear.Contains(addmm) {
		t.Errorf("parent span [%d,%d) must contain child start %d",
			linear.Ts, linear.End(), addmm.Ts)
	}
}

func TestFlashReducesKernelsAndLatency(t *testing.T) {
	eager := mustRun(t, bertOn(hw.IntelH100(), 1, Eager))
	flash := mustRun(t, bertOn(hw.IntelH100(), 1, Flash))
	if flash.KernelCount >= eager.KernelCount {
		t.Errorf("flash kernels (%d) must be fewer than eager (%d)", flash.KernelCount, eager.KernelCount)
	}
	if flash.TTFT >= eager.TTFT {
		t.Errorf("flash TTFT (%v) should beat eager (%v)", flash.TTFT, eager.TTFT)
	}
}

func TestGraphReplayModesLaunchOnce(t *testing.T) {
	for _, mode := range []Mode{CompileReduceOverhead, CompileMaxAutotune} {
		res := mustRun(t, bertOn(hw.GH200(), 1, mode))
		// Unified memory: the only host-visible launch is the graph.
		if res.HostLaunches != 1 {
			t.Errorf("%v: host launches = %d, want 1", mode, res.HostLaunches)
		}
		if res.KernelCount <= 1 {
			t.Errorf("%v: kernel count = %d, want many", mode, res.KernelCount)
		}
	}
}

func TestCompileModesBeatEagerInCPUBoundRegion(t *testing.T) {
	// GH200 at BS=1 is deep in the CPU-bound region: every compiled mode
	// must cut TTFT, ordered eager > default > reduce-overhead.
	p := hw.GH200()
	eager := mustRun(t, bertOn(p, 1, Eager))
	def := mustRun(t, bertOn(p, 1, CompileDefault))
	ro := mustRun(t, bertOn(p, 1, CompileReduceOverhead))
	ma := mustRun(t, bertOn(p, 1, CompileMaxAutotune))
	if !(def.TTFT < eager.TTFT) {
		t.Errorf("default (%v) must beat eager (%v)", def.TTFT, eager.TTFT)
	}
	if !(ro.TTFT <= def.TTFT) {
		t.Errorf("reduce-overhead (%v) must not trail default (%v)", ro.TTFT, def.TTFT)
	}
	if !(ma.TTFT <= ro.TTFT) {
		t.Errorf("max-autotune (%v) must not trail reduce-overhead (%v)", ma.TTFT, ro.TTFT)
	}
}

func TestCompileTimeOrdering(t *testing.T) {
	// Table I: eager ≪ default < reduce-overhead ≪ max-autotune.
	p := hw.IntelH100()
	var prev Result
	for i, mode := range []Mode{Eager, CompileDefault, CompileReduceOverhead, CompileMaxAutotune} {
		res := mustRun(t, Request{Platform: p, Model: models.Gemma2B(), Batch: 1, Seq: 1024, Mode: mode})
		if i > 0 && res.CompileTime <= prev.CompileTime {
			t.Errorf("%v compile time (%v) should exceed previous (%v)", mode, res.CompileTime, prev.CompileTime)
		}
		prev = *res
	}
}

func TestCompileTimeAnchorsTableI(t *testing.T) {
	// On the Gemma-2B/Intel+H100 anchor the Table I values reproduce
	// exactly (±1%).
	p := hw.IntelH100()
	cases := map[Mode]float64{
		Eager:                 0.40644,
		CompileDefault:        6.2844,
		CompileReduceOverhead: 12.7469,
		CompileMaxAutotune:    387.3,
	}
	for mode, wantSec := range cases {
		res := mustRun(t, Request{Platform: p, Model: models.Gemma2B(), Batch: 1, Seq: 1024, Mode: mode})
		got := res.CompileTime.Seconds()
		if got < wantSec*0.99 || got > wantSec*1.01 {
			t.Errorf("%v compile time = %.4fs, want %.4fs", mode, got, wantSec)
		}
	}
}

func TestCompileTimeScalesWithModelAndCPU(t *testing.T) {
	small := mustRun(t, Request{Platform: hw.IntelH100(), Model: models.GPT2(), Batch: 1, Seq: 512, Mode: CompileMaxAutotune})
	big := mustRun(t, Request{Platform: hw.IntelH100(), Model: models.Llama27B(), Batch: 1, Seq: 512, Mode: CompileMaxAutotune})
	if big.CompileTime <= small.CompileTime {
		t.Error("larger model must compile longer")
	}
	grace := mustRun(t, Request{Platform: hw.GH200(), Model: models.GPT2(), Batch: 1, Seq: 512, Mode: CompileMaxAutotune})
	if grace.CompileTime <= small.CompileTime {
		t.Error("slower host must compile longer")
	}
}

func TestRunRejectsBadRequests(t *testing.T) {
	if _, err := Run(Request{}); err == nil {
		t.Error("empty request should fail")
	}
	if _, err := Run(Request{Platform: hw.IntelH100(), Model: models.GPT2(), Batch: 0, Seq: 512, Mode: Eager}); err == nil {
		t.Error("zero batch should fail")
	}
	bad := hw.IntelH100()
	bad.CPU.SingleThreadScore = -1
	if _, err := Run(Request{Platform: bad, Model: models.GPT2(), Batch: 1, Seq: 512, Mode: Eager}); err == nil {
		t.Error("invalid platform should fail")
	}
}

func TestModeStrings(t *testing.T) {
	if len(Modes()) != 5 {
		t.Fatal("want 5 modes")
	}
	for _, m := range Modes() {
		if strings.HasPrefix(m.String(), "mode(") {
			t.Errorf("mode %d lacks a name", int(m))
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := mustRun(t, bertOn(hw.GH200(), 4, Eager))
	b := mustRun(t, bertOn(hw.GH200(), 4, Eager))
	if a.TTFT != b.TTFT || a.KernelCount != b.KernelCount || a.GPUBusy != b.GPUBusy {
		t.Error("simulation must be deterministic")
	}
}

func TestTraceMetaRecordsRun(t *testing.T) {
	res := mustRun(t, bertOn(hw.GH200(), 4, Flash))
	m := res.Trace.Meta
	if m["platform"] != "GH200" || m["model"] != "bert-base-uncased" ||
		m["mode"] != "flash_attention_2" || m["batch"] != "4" || m["seq"] != "512" {
		t.Errorf("meta = %v", m)
	}
}

// The paper-shape integration assertions for Figs. 10/11 live here
// because the engine is the layer that produces TTFT.

func TestPaperShapeEncoderBS1Ratios(t *testing.T) {
	// Fig. 10a at BS=1: GH200 ≈ 2.8x Intel+H100 and ≈ 1.9x AMD+A100 for
	// Bert-Base (we accept ±25%).
	intel := mustRun(t, bertOn(hw.IntelH100(), 1, Eager))
	amd := mustRun(t, bertOn(hw.AMDA100(), 1, Eager))
	gh := mustRun(t, bertOn(hw.GH200(), 1, Eager))
	rIntel := float64(gh.TTFT) / float64(intel.TTFT)
	rAMD := float64(gh.TTFT) / float64(amd.TTFT)
	if rIntel < 2.1 || rIntel > 3.5 {
		t.Errorf("GH200/Intel BS=1 ratio = %.2f, want ≈2.8", rIntel)
	}
	if rAMD < 1.4 || rAMD > 2.4 {
		t.Errorf("GH200/AMD BS=1 ratio = %.2f, want ≈1.9", rAMD)
	}
	// Intel+H100 consumes the least latency for small batches (paper).
	if !(intel.TTFT < amd.TTFT && amd.TTFT < gh.TTFT) {
		t.Errorf("BS=1 ordering: intel %v < amd %v < gh %v violated", intel.TTFT, amd.TTFT, gh.TTFT)
	}
}

func TestPaperShapeEncoderLargeBatchSpeedup(t *testing.T) {
	// Fig. 10a at BS=64: GH200 1.6x/2.4x faster than Intel/AMD.
	intel := mustRun(t, bertOn(hw.IntelH100(), 64, Eager))
	amd := mustRun(t, bertOn(hw.AMDA100(), 64, Eager))
	gh := mustRun(t, bertOn(hw.GH200(), 64, Eager))
	sIntel := float64(intel.TTFT) / float64(gh.TTFT)
	sAMD := float64(amd.TTFT) / float64(gh.TTFT)
	if sIntel < 1.3 || sIntel > 2.0 {
		t.Errorf("GH200 speedup over Intel at BS=64 = %.2f, want ≈1.6", sIntel)
	}
	if sAMD < 1.8 || sAMD > 2.9 {
		t.Errorf("GH200 speedup over AMD at BS=64 = %.2f, want ≈2.4", sAMD)
	}
}

func TestPaperShapeLlamaLargeBatchSpeedup(t *testing.T) {
	// Fig. 11a at BS=16: GH200 1.9x/2.7x faster for Llama-3.2-1B.
	req := func(p *hw.Platform) Request {
		return Request{Platform: p, Model: models.Llama32_1B(), Batch: 16, Seq: 512, Mode: Eager}
	}
	intel := mustRun(t, req(hw.IntelH100()))
	amd := mustRun(t, req(hw.AMDA100()))
	gh := mustRun(t, req(hw.GH200()))
	sIntel := float64(intel.TTFT) / float64(gh.TTFT)
	sAMD := float64(amd.TTFT) / float64(gh.TTFT)
	if sIntel < 1.4 || sIntel > 2.3 {
		t.Errorf("GH200 speedup over Intel = %.2f, want ≈1.9", sIntel)
	}
	if sAMD < 2.0 || sAMD > 3.2 {
		t.Errorf("GH200 speedup over AMD = %.2f, want ≈2.7", sAMD)
	}
}

func TestPaperShapeLlamaNoCrossover(t *testing.T) {
	// Fig. 11a: Llama-3.2-1B latencies are similar at BS=1 (no CP) and
	// GH200 leads from small batch sizes.
	reqAt := func(p *hw.Platform, bs int64) Request {
		return Request{Platform: p, Model: models.Llama32_1B(), Batch: bs, Seq: 512, Mode: Eager}
	}
	intel1 := mustRun(t, reqAt(hw.IntelH100(), 1))
	gh1 := mustRun(t, reqAt(hw.GH200(), 1))
	ratio := float64(gh1.TTFT) / float64(intel1.TTFT)
	if ratio > 1.5 {
		t.Errorf("Llama BS=1 GH200/Intel = %.2f, want near parity", ratio)
	}
	intel4 := mustRun(t, reqAt(hw.IntelH100(), 4))
	gh4 := mustRun(t, reqAt(hw.GH200(), 4))
	if gh4.TTFT >= intel4.TTFT {
		t.Errorf("GH200 must lead by BS=4: %v vs %v", gh4.TTFT, intel4.TTFT)
	}
}

func TestPaperShapeGH200GPUIdleAtLowBatch(t *testing.T) {
	// Fig. 10b: GH200 shows large GPU idle at small batch (CPU-bound),
	// shrinking as batch grows.
	gh1 := mustRun(t, bertOn(hw.GH200(), 1, Eager))
	gh64 := mustRun(t, bertOn(hw.GH200(), 64, Eager))
	idleFrac1 := float64(gh1.GPUIdle) / float64(gh1.TTFT)
	idleFrac64 := float64(gh64.GPUIdle) / float64(gh64.TTFT)
	if idleFrac1 < 0.5 {
		t.Errorf("GH200 BS=1 GPU idle fraction = %.2f, want CPU-bound (>0.5)", idleFrac1)
	}
	if idleFrac64 > 0.3 {
		t.Errorf("GH200 BS=64 GPU idle fraction = %.2f, want GPU-bound (<0.3)", idleFrac64)
	}
	// CPU idle moves the other way.
	if gh1.CPUIdle >= gh64.CPUIdle {
		t.Errorf("CPU idle should grow with batch: %v vs %v", gh1.CPUIdle, gh64.CPUIdle)
	}
}
