// Package engine executes model operator graphs on simulated platforms,
// reproducing the PyTorch execution modes the paper compares (§II-C,
// Fig. 2): eager kernel-to-kernel offload, domain-specific fusion
// (FlashAttention-2), and whole-graph synthesis (torch.compile with CUDA
// Graphs), including the compile-time cost model of Table I.
package engine

import (
	"fmt"
	"math"

	"github.com/skipsim/skip/internal/cuda"
	"github.com/skipsim/skip/internal/hw"
	"github.com/skipsim/skip/internal/models"
	"github.com/skipsim/skip/internal/ops"
	"github.com/skipsim/skip/internal/sim"
	"github.com/skipsim/skip/internal/trace"
)

// Mode is a PyTorch execution mode.
type Mode int

const (
	// Eager launches kernels as operators are interpreted (the paper's
	// baseline for every figure).
	Eager Mode = iota
	// Flash is eager execution with FlashAttention-2 fused attention.
	Flash
	// CompileDefault is torch.compile mode="default": Triton pointwise
	// fusion, compiled host code, no CUDA graph.
	CompileDefault
	// CompileReduceOverhead is mode="reduce-overhead": pointwise fusion
	// plus CUDA-graph capture/replay.
	CompileReduceOverhead
	// CompileMaxAutotune is mode="max-autotune": fusion, autotuned GEMM
	// templates, fused attention, CUDA-graph replay.
	CompileMaxAutotune
)

// String names the mode as the paper's tables do.
func (m Mode) String() string {
	switch m {
	case Eager:
		return "eager"
	case Flash:
		return "flash_attention_2"
	case CompileDefault:
		return "compile-default"
	case CompileReduceOverhead:
		return "compile-reduce-overhead"
	case CompileMaxAutotune:
		return "compile-max-autotune"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Modes lists all execution modes in comparison order.
func Modes() []Mode {
	return []Mode{Eager, Flash, CompileDefault, CompileReduceOverhead, CompileMaxAutotune}
}

// ParseMode maps a mode name — a String() result or the common CLI
// shorthands — back to the Mode.
func ParseMode(name string) (Mode, error) {
	switch name {
	case "eager":
		return Eager, nil
	case "flash", "flash_attention_2":
		return Flash, nil
	case "compile-default":
		return CompileDefault, nil
	case "compile-reduce-overhead":
		return CompileReduceOverhead, nil
	case "compile-max-autotune":
		return CompileMaxAutotune, nil
	}
	return 0, fmt.Errorf("engine: unknown mode %q (have eager|flash|compile-default|compile-reduce-overhead|compile-max-autotune)", name)
}

// Compile-time model (Table I): measured on Gemma-2B (BS=1, seq 1024,
// Intel+H100). Other models scale by parameter count; slower CPUs scale
// inversely by single-thread score, since graph tracing and Triton
// compilation are host-bound.
const (
	warmupEagerSec            = 0.40644
	compileDefaultSec         = 6.2844
	compileReduceOverheadSec  = 12.7469
	compileMaxAutotuneSec     = 387.3
	compileParamScaleExponent = 0.85
)

// compiledDispatchNs is the per-kernel host cost of inductor-generated
// wrapper code in CompileDefault (no Python dispatcher, no ATen stack).
const compiledDispatchNs = 800.0

// maxAutotuneGemmSpeedup is the throughput edge of autotuned GEMM
// templates over stock library kernels.
const maxAutotuneGemmSpeedup = 1.12

// mainThreadTID identifies the dispatch thread in traces.
const mainThreadTID = 1

// Request describes one simulated inference run.
type Request struct {
	Platform *hw.Platform
	Model    *models.Config
	Batch    int64
	Seq      int64
	Mode     Mode
}

// Result is the outcome of a run.
type Result struct {
	Request Request
	// Trace is the profiler trace of the steady-state iteration. It is
	// excluded from JSON reports — Chrome-trace files have their own
	// serialization (Trace.SaveFile, the CLI's -o flag).
	Trace *trace.Trace `json:"-"`
	// TTFT is the prefill latency: first operator start to last kernel
	// end (matches SKIP's IL, Eq. 4).
	TTFT sim.Time
	// CompileTime is the one-time warmup/compilation cost of the mode
	// (Table I); not part of TTFT.
	CompileTime sim.Time
	// HostLaunches counts host-visible launch calls (1 for a replayed
	// CUDA graph).
	HostLaunches int
	// KernelCount counts kernels executed on the device.
	KernelCount int
	// GPUBusy is total kernel execution time.
	GPUBusy sim.Time
	// CPUBusy is total host dispatch + launch-call time.
	CPUBusy sim.Time
	// GPUIdle is TTFT − GPUBusy (Eq. 5).
	GPUIdle sim.Time
	// CPUIdle is TTFT − CPUBusy.
	CPUIdle sim.Time
}

// Run simulates one prefill iteration of the request and returns timing
// plus the trace.
func (r Request) validate() error {
	if r.Platform == nil || r.Model == nil {
		return fmt.Errorf("engine: request needs a platform and a model")
	}
	if err := r.Platform.Validate(); err != nil {
		return err
	}
	return nil
}

// Run executes the request.
func Run(req Request) (*Result, error) {
	if err := req.validate(); err != nil {
		return nil, err
	}
	attn := models.AttnEager
	switch req.Mode {
	case Flash, CompileMaxAutotune:
		attn = models.AttnFlash
	}
	graph, err := models.BuildPrefill(req.Model, req.Batch, req.Seq, attn)
	if err != nil {
		return nil, err
	}

	b := trace.NewBuilder()
	b.Meta("platform", req.Platform.Name)
	b.Meta("model", req.Model.Name)
	b.Meta("mode", req.Mode.String())
	b.Meta("batch", fmt.Sprintf("%d", req.Batch))
	b.Meta("seq", fmt.Sprintf("%d", req.Seq))
	rt := cuda.NewRuntime(req.Platform, b, mainThreadTID)

	ex := &executor{req: req, rt: rt, builder: b}
	switch req.Mode {
	case Eager, Flash:
		ex.runEager(graph)
	case CompileDefault:
		ex.runCompiledEagerHost(graph)
	case CompileReduceOverhead, CompileMaxAutotune:
		ex.runGraphReplay(graph)
	default:
		return nil, fmt.Errorf("engine: unknown mode %v", req.Mode)
	}

	tr := b.Trace()
	start, end := tr.Span()
	res := &Result{
		Request:      req,
		Trace:        tr,
		TTFT:         end - start,
		CompileTime:  compileTime(req),
		HostLaunches: rt.Launches(),
		KernelCount:  len(tr.Kernels()),
		GPUBusy:      rt.GPUBusy(),
		CPUBusy:      ex.cpuBusy,
	}
	res.GPUIdle = res.TTFT - res.GPUBusy
	res.CPUIdle = res.TTFT - res.CPUBusy
	return res, nil
}

type executor struct {
	req     Request
	rt      *cuda.Runtime
	builder *trace.Builder
	cpuBusy sim.Time
}

// advanceCPU spends host time (scaled by the platform's single-thread
// score) and accounts it as busy.
func (ex *executor) advanceCPU(baseNs float64) {
	d := ex.req.Platform.CPUTime(baseNs)
	ex.rt.CPU.Advance(d)
	ex.cpuBusy += d
}

// launch issues one kernel, accounting the launch-call CPU time.
func (ex *executor) launch(k ops.Kernel) {
	before := ex.rt.CPU.Now()
	ex.rt.LaunchKernel(k.Name, k.Cost, cuda.DefaultStream)
	ex.cpuBusy += ex.rt.CPU.Now() - before
}

// transferInputs moves token ids/masks to the device on platforms
// without unified virtual memory (the GH200 reads host memory directly
// over NVLink-C2C; MI300A shares physical memory).
func (ex *executor) transferInputs(g *ops.Graph) {
	if ex.req.Platform.UnifiedVirtualMemory {
		return
	}
	before := ex.rt.CPU.Now()
	ex.rt.Memcpy(cuda.HostToDevice, g.InputBytes, cuda.DefaultStream)
	ex.cpuBusy += ex.rt.CPU.Now() - before
}

// transferOutputs copies results back after synchronization.
func (ex *executor) transferOutputs(g *ops.Graph) {
	if ex.req.Platform.UnifiedVirtualMemory {
		return
	}
	before := ex.rt.CPU.Now()
	ex.rt.Memcpy(cuda.DeviceToHost, g.OutputBytes, cuda.DefaultStream)
	ex.cpuBusy += ex.rt.CPU.Now() - before
	ex.rt.Synchronize()
}

// runEager walks the operator tree in PyTorch-eager order: each operator
// costs host dispatch time, children execute in order, then the
// operator's kernels launch. Operator trace spans cover their children,
// which is the containment structure SKIP's parent linking relies on.
func (ex *executor) runEager(g *ops.Graph) {
	ex.transferInputs(g)
	for _, n := range g.Nodes {
		ex.execNode(n)
	}
	ex.rt.Synchronize()
	ex.transferOutputs(g)
}

func (ex *executor) execNode(n *ops.Node) {
	start := ex.rt.CPU.Now()
	ex.advanceCPU(n.CPUNs)
	for _, c := range n.Children {
		ex.execNode(c)
	}
	for _, k := range n.Kernels {
		ex.launch(k)
	}
	end := ex.rt.CPU.Now()
	ex.builder.Operator(n.Name, mainThreadTID, start, end-start)
}

// compiledKernels lowers the graph to the kernel list a torch.compile
// backend would emit for the mode: pointwise fusion always; autotuned
// GEMM/attention templates for max-autotune.
func (ex *executor) compiledKernels(g *ops.Graph) []ops.Kernel {
	ks := ops.FuseElementwise(g.FlattenKernels(), 2)
	if ex.req.Mode == CompileMaxAutotune {
		for i := range ks {
			if ks[i].Class == ops.ClassGemm || ks[i].Class == ops.ClassAttention {
				ks[i].Cost = ks[i].Cost.Scale(1 / maxAutotuneGemmSpeedup)
				ks[i].Name = "autotuned_" + ks[i].Name
			}
		}
	}
	return ks
}

// runCompiledEagerHost models torch.compile mode="default": compiled
// host code dispatches the fused kernel list one launch at a time — no
// Python/ATen overhead, but still a launch call per kernel.
func (ex *executor) runCompiledEagerHost(g *ops.Graph) {
	ex.transferInputs(g)
	start := ex.rt.CPU.Now()
	for _, k := range ex.compiledKernels(g) {
		ex.advanceCPU(compiledDispatchNs)
		ex.launch(k)
	}
	end := ex.rt.CPU.Now()
	ex.builder.Operator("CompiledFunction", mainThreadTID, start, end-start)
	ex.rt.Synchronize()
	ex.transferOutputs(g)
}

// runGraphReplay models reduce-overhead/max-autotune: the fused kernel
// list is captured once into a CUDA graph and replayed with a single
// launch.
func (ex *executor) runGraphReplay(g *ops.Graph) {
	ex.transferInputs(g)
	if err := ex.rt.BeginCapture(); err != nil {
		panic("engine: " + err.Error()) // impossible: fresh runtime
	}
	for _, k := range ex.compiledKernels(g) {
		ex.rt.LaunchKernel(k.Name, k.Cost, cuda.DefaultStream)
	}
	graph, err := ex.rt.EndCapture()
	if err != nil {
		panic("engine: " + err.Error())
	}
	start := ex.rt.CPU.Now()
	before := ex.rt.CPU.Now()
	ex.rt.LaunchGraph(graph, cuda.DefaultStream)
	ex.cpuBusy += ex.rt.CPU.Now() - before
	end := ex.rt.CPU.Now()
	ex.builder.Operator("CUDAGraphReplay", mainThreadTID, start, end-start)
	ex.rt.Synchronize()
	ex.transferOutputs(g)
}

// compileTime models Table I: one-time tracing/compilation cost, scaled
// from the Gemma-2B anchor by parameter count and host speed.
func compileTime(req Request) sim.Time {
	var baseSec float64
	switch req.Mode {
	case Eager, Flash:
		baseSec = warmupEagerSec
	case CompileDefault:
		baseSec = compileDefaultSec
	case CompileReduceOverhead:
		baseSec = compileReduceOverheadSec
	case CompileMaxAutotune:
		baseSec = compileMaxAutotuneSec
	}
	refParams := float64(models.Gemma2B().Params())
	scale := math.Pow(float64(req.Model.Params())/refParams, compileParamScaleExponent)
	score := req.Platform.CPU.SingleThreadScore
	if score <= 0 {
		score = 1
	}
	return sim.FromNs(baseSec * 1e9 * scale / score)
}
