package metrics

import (
	"testing"

	"github.com/skipsim/skip/internal/serve"
	"github.com/skipsim/skip/internal/sim"
)

// lcg is a tiny deterministic generator so the test needs no seed
// plumbing.
type lcg uint64

func (r *lcg) next() uint64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint64(*r)
}

// TestQuantileMatchesExactPercentile records a skewed sample set into
// both the streaming histogram and a plain slice, then checks every
// interesting quantile against the exact nearest-rank percentile within
// the histogram's bucket resolution (~3.2% relative, halved by midpoint
// representatives — allow the full 3.2% plus slack for the rank-vs-rank
// off-by-one at bucket edges).
func TestQuantileMatchesExactPercentile(t *testing.T) {
	var h Histogram
	var exact []sim.Time
	var r lcg
	for i := 0; i < 20000; i++ {
		// Log-uniform-ish spread: microseconds to tens of seconds.
		shift := r.next() % 35
		v := int64(r.next()%1000+1) << shift
		h.Record(v)
		exact = append(exact, sim.Time(v))
	}
	for _, p := range []float64{10, 50, 90, 99, 99.9} {
		want := float64(serve.Percentile(exact, p))
		got := float64(h.Quantile(p))
		if want == 0 {
			t.Fatalf("p%v: exact percentile is 0, bad test data", p)
		}
		rel := (got - want) / want
		if rel < 0 {
			rel = -rel
		}
		if rel > 0.04 {
			t.Errorf("p%v: histogram %v vs exact %v (relative error %.4f > 0.04)", p, got, want, rel)
		}
	}
}

func TestSmallValuesExact(t *testing.T) {
	var h Histogram
	for v := int64(0); v < 64; v++ {
		h.Record(v)
	}
	// Values below 2*subBuckets land in unit-width buckets: quantiles
	// are exact.
	if got := h.Quantile(50); got != 31 {
		t.Errorf("p50 of 0..63 = %d, want 31", got)
	}
	if got := h.Quantile(100); got != 63 {
		t.Errorf("p100 of 0..63 = %d, want 63", got)
	}
	if h.Max() != 63 {
		t.Errorf("max = %d, want 63", h.Max())
	}
	if got := h.Mean(); got != 31.5 {
		t.Errorf("mean = %v, want 31.5", got)
	}
}

func TestRecordClampsAndCounts(t *testing.T) {
	var h Histogram
	h.Record(-5)
	h.Record(0)
	if h.Count() != 2 {
		t.Fatalf("count = %d, want 2", h.Count())
	}
	if h.Quantile(100) != 0 {
		t.Errorf("negative values should clamp to 0")
	}
	var empty Histogram
	if empty.Quantile(50) != 0 || empty.Mean() != 0 || empty.Max() != 0 {
		t.Errorf("empty histogram should report zeros")
	}
}

func TestMergeEquivalentToCombinedRecording(t *testing.T) {
	var a, b, both Histogram
	var r lcg
	for i := 0; i < 5000; i++ {
		v := int64(r.next() % 1e9)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
		both.Record(v)
	}
	a.Merge(&b)
	if a.Count() != both.Count() {
		t.Fatalf("merged count %d != combined %d", a.Count(), both.Count())
	}
	if a.Mean() != both.Mean() || a.Max() != both.Max() {
		t.Errorf("merged mean/max (%v, %d) != combined (%v, %d)", a.Mean(), a.Max(), both.Mean(), both.Max())
	}
	for _, p := range []float64{25, 50, 75, 99} {
		if a.Quantile(p) != both.Quantile(p) {
			t.Errorf("p%v: merged %d != combined %d", p, a.Quantile(p), both.Quantile(p))
		}
	}
}

// TestBucketRoundTrip checks the index/representative math across the
// full int64 range: every value's representative must land in the same
// bucket and within the guaranteed relative error.
func TestBucketRoundTrip(t *testing.T) {
	var r lcg
	check := func(v int64) {
		idx := bucketIndex(v)
		rep := bucketValue(idx)
		if bucketIndex(rep) != idx {
			t.Fatalf("value %d: representative %d maps to bucket %d, want %d", v, rep, bucketIndex(rep), idx)
		}
		if v >= 64 {
			rel := float64(rep-v) / float64(v)
			if rel < 0 {
				rel = -rel
			}
			if rel > 1.0/32 {
				t.Fatalf("value %d: representative %d off by %.4f (> 1/32)", v, rep, rel)
			}
		} else if rep != v {
			t.Fatalf("small value %d: representative %d, want exact", v, rep)
		}
	}
	for v := int64(0); v < 4096; v++ {
		check(v)
	}
	for i := 0; i < 100000; i++ {
		check(int64(r.next() >> 1)) // any non-negative int64
	}
	check(1<<63 - 1)
}
