package metrics

// Profile is the simulator's self-measurement for one Simulate call:
// how fast the discrete-event engine chewed through the run, and what
// it allocated doing so. Events are observer emissions (the engine's
// externally visible work units); allocation counters are
// runtime.MemStats deltas across the run, so they include workload
// generation and stats assembly. Wall time makes the report
// machine-dependent by construction — profiling is opt-in precisely so
// default reports stay deterministic.
type Profile struct {
	// WallNs is the elapsed wall-clock time of the simulation dispatch.
	WallNs int64 `json:"wall_ns"`
	// SimulatedNs is the virtual time covered (the run's horizon; for a
	// sweep, the sum of point horizons).
	SimulatedNs int64 `json:"simulated_ns"`
	// Events counts observer events emitted during the run.
	Events int64 `json:"events"`
	// EventsPerSec is Events over wall time.
	EventsPerSec float64 `json:"events_per_sec"`
	// Mallocs / AllocBytes are the heap-allocation count and byte
	// deltas across the run.
	Mallocs    int64 `json:"mallocs"`
	AllocBytes int64 `json:"alloc_bytes"`
	// HeapAllocBytes is the live-heap size after the run — the peak
	// retained footprint a capacity planner sizes against.
	HeapAllocBytes int64 `json:"heap_alloc_bytes"`
	// AllocsPerEvent is Mallocs over Events — the per-event allocation
	// churn ROADMAP's perf trajectory tracks.
	AllocsPerEvent float64 `json:"allocs_per_event"`
}
