// Package metrics holds the streaming telemetry layer: an HDR-style
// log-bucketed histogram, the windowed fleet-timeline aggregator that
// turns the observer event stream into per-interval time series, and
// the simulator self-profiling report. Everything here is exact-count
// streaming state — no per-sample storage — so a 10M-request replay
// pays a fixed memory cost per window, not per request.
package metrics

import "math/bits"

// Histogram bucket layout (HDR-histogram style, 5 sub-bucket bits):
// values 0..31 land in exact unit buckets; beyond that, each power-of-2
// magnitude splits into 32 sub-buckets, so the relative quantization
// error is bounded by 1/32 (halved again by midpoint representatives).
// The bucket count covers all of int64, so Record never range-checks.
const (
	subBucketBits  = 5
	subBuckets     = 1 << subBucketBits // 32
	histBucketsLen = (64 - subBucketBits - 1 + 1) * subBuckets
)

// Histogram is a streaming log-bucketed histogram over non-negative
// int64 samples (virtual nanoseconds, token counts, ...). The zero
// value is ready to use. It answers count, exact mean and max, and
// nearest-rank quantiles within ~±1.6% relative error, without storing
// samples — and two histograms merge by adding their bucket arrays, so
// per-instance and fleet-level views share one recording pass.
type Histogram struct {
	counts [histBucketsLen]uint64
	count  uint64
	sum    int64
	max    int64
}

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < subBuckets {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - subBucketBits - 1
	return (exp+1)*subBuckets + int(uint64(v)>>uint(exp)) - subBuckets
}

// bucketValue is the bucket's representative: the exact value for unit
// buckets, the bucket midpoint otherwise (halving the worst-case
// quantization error).
func bucketValue(idx int) int64 {
	if idx < 2*subBuckets {
		return int64(idx)
	}
	exp := idx/subBuckets - 1
	mant := int64(idx%subBuckets + subBuckets)
	return mant<<uint(exp) + int64(1)<<uint(exp)/2
}

// Record adds one sample. Negative samples clamp to zero — latencies
// and counts are non-negative by construction, so a negative value is
// a caller bug this keeps visible (a spike at zero) rather than fatal.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the exact sample mean (0 when empty): the sum is
// tracked exactly alongside the buckets.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Max returns the exact largest recorded sample (0 when empty).
func (h *Histogram) Max() int64 { return h.max }

// Quantile returns the nearest-rank p-th percentile's bucket
// representative (p in (0,100]; 0 when empty) — the same rank
// definition as serve.Percentile, quantized to the bucket grid.
func (h *Histogram) Quantile(p float64) int64 {
	if h.count == 0 {
		return 0
	}
	rank := uint64(float64(h.count) * p / 100)
	if float64(rank) < float64(h.count)*p/100 {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			return bucketValue(i)
		}
	}
	return h.max
}

// Merge adds other's samples into h. Count, sum, and max stay exact;
// bucket counts add element-wise.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.count == 0 {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.count += other.count
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}
