package metrics

import (
	"sort"

	"github.com/skipsim/skip/internal/serve"
	"github.com/skipsim/skip/internal/sim"
)

// The windowed fleet-timeline aggregator. It consumes the existing
// observer event stream — completions, first tokens, instance state
// samples, KV-transfer and membership events — and folds each into
// fixed-interval windows as it arrives, so a whole-run time series
// costs O(windows) memory regardless of request count. Counters
// (completions, tokens, SLO hits) attribute to the window containing
// the event; level signals (queue depth, KV occupancy, transfer
// backlog, fleet size) integrate piecewise-constant over time, so a
// window's value is the true time-weighted mean, not a point sample.

// Series is one named windowed series: Values[w] is the series value
// for window w. Times are reported in milliseconds (float), rates per
// second, fractions in [0,1].
type Series struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values"`
}

// InstanceSeries carries one instance's windowed series subset.
type InstanceSeries struct {
	Instance string   `json:"instance"`
	Series   []Series `json:"series"`
}

// Timeline is the finished windowed view of a run: exactly
// ceil(horizon/interval) windows, a fleet-merged series set, and —
// when per-instance aggregation was requested — one series subset per
// instance, sorted by name.
type Timeline struct {
	IntervalMs float64          `json:"interval_ms"`
	Windows    int              `json:"windows"`
	Fleet      []Series         `json:"fleet"`
	Instances  []InstanceSeries `json:"instances,omitempty"`
}

// Series returns the named fleet series (nil when absent).
func (t *Timeline) Series(name string) []float64 {
	if t == nil {
		return nil
	}
	for _, s := range t.Fleet {
		if s.Name == name {
			return s.Values
		}
	}
	return nil
}

// AggregatorConfig parameterizes a timeline aggregation.
type AggregatorConfig struct {
	// Interval is the window width. Required, positive.
	Interval sim.Time
	// PerInstance additionally keeps a per-instance series subset for
	// every named instance seen in the stream.
	PerInstance bool
	// SLO is the TTFT objective goodput windows count against (0: no
	// SLO; goodput == throughput and attainment is 1).
	SLO sim.Time
	// InitialInstances seeds the active-fleet-size level: instances
	// present at t=0 emit no join event.
	InitialInstances int
	// FleetSeries includes the active_instances series (fleet kinds).
	FleetSeries bool
	// TransferSeries includes the transfer_backlog series (disagg).
	TransferSeries bool
	// CacheSeries includes the cache_hit_rate series (prefix cache on).
	CacheSeries bool
}

// integrator accumulates ∫ level dt per window for a piecewise-constant
// level signal. Set levels through advance-then-set so each constant
// stretch lands in the windows it actually spans.
type integrator struct {
	lastT    sim.Time
	level    float64
	integral []float64
}

func (g *integrator) advance(t, interval sim.Time) {
	for g.lastT < t {
		w := int(g.lastT / interval)
		end := sim.Time(w+1) * interval
		if end > t {
			end = t
		}
		for len(g.integral) <= w {
			g.integral = append(g.integral, 0)
		}
		g.integral[w] += g.level * float64(end-g.lastT)
		g.lastT = end
	}
}

func (g *integrator) set(t, interval sim.Time, level float64) {
	g.advance(t, interval)
	g.level = level
}

// windowCounts is a growable per-window int64 counter.
type windowCounts []int64

func (c *windowCounts) add(w int, v int64) {
	for len(*c) <= w {
		*c = append(*c, 0)
	}
	(*c)[w] += v
}

// scopeState accumulates one scope's (the fleet's, or one instance's)
// windowed state.
type scopeState struct {
	completed windowCounts
	sloMet    windowCounts
	tokens    windowCounts
	ttft      []*Histogram
	tpot      []*Histogram
	queue     integrator
	kv        integrator
	// cacheLookups / cacheHits hold the latest cumulative cache
	// counters seen in each window (-1: no sample); Finish forward-fills
	// and differences them into per-window hit rates.
	cacheLookups windowCounts
	cacheHits    windowCounts
	cacheSeen    []bool
}

func (s *scopeState) hist(hs *[]*Histogram, w int) *Histogram {
	for len(*hs) <= w {
		*hs = append(*hs, nil)
	}
	if (*hs)[w] == nil {
		(*hs)[w] = &Histogram{}
	}
	return (*hs)[w]
}

func (s *scopeState) cacheSample(w int, lookups, hits int64) {
	for len(s.cacheSeen) <= w {
		s.cacheSeen = append(s.cacheSeen, false)
	}
	s.cacheLookups.add(w, 0)
	s.cacheHits.add(w, 0)
	s.cacheLookups[w] = lookups
	s.cacheHits[w] = hits
	s.cacheSeen[w] = true
}

// Aggregator folds an observer event stream into a windowed Timeline.
// It is deterministic: for a fixed spec and seed the event stream —
// order included — is deterministic, and every aggregation step is
// exact integer or order-independent float arithmetic, so two runs
// produce byte-identical timelines. Not safe for concurrent use; wire
// it into a single simulation's observer chain.
type Aggregator struct {
	cfg       AggregatorConfig
	fleet     scopeState
	instances map[string]*scopeState
	// active / transfers are fleet-level level signals driven by
	// membership and transfer events.
	active    integrator
	transfers integrator
	nTransfer int
	// Per-instance latest state, plus running fleet sums maintained
	// incrementally (one delta per sample, in event order) so the
	// fleet-level levels are bit-deterministic — summing a map each
	// sample would add floats in random iteration order.
	instKV      map[string]float64
	instQueue   map[string]float64
	latestCache map[string]cachePair
	qSum, kvSum float64
	cacheL      int64
	cacheH      int64
}

type cachePair struct{ lookups, hits int64 }

// NewAggregator builds an aggregator for one simulation run.
func NewAggregator(cfg AggregatorConfig) *Aggregator {
	a := &Aggregator{
		cfg:         cfg,
		instances:   make(map[string]*scopeState),
		instKV:      make(map[string]float64),
		instQueue:   make(map[string]float64),
		latestCache: make(map[string]cachePair),
	}
	a.active.level = float64(cfg.InitialInstances)
	return a
}

func (a *Aggregator) window(t sim.Time) int {
	return int(t / a.cfg.Interval)
}

func (a *Aggregator) scope(instance string) *scopeState {
	if !a.cfg.PerInstance || instance == "" {
		return nil
	}
	s, ok := a.instances[instance]
	if !ok {
		s = &scopeState{}
		a.instances[instance] = s
	}
	return s
}

// Observe consumes one simulation event. Install it on the observer
// chain of the run being timed.
func (a *Aggregator) Observe(e serve.Event) {
	switch e.Type {
	case serve.EventFirstToken:
		w := a.window(e.Time)
		a.fleet.hist(&a.fleet.ttft, w).Record(int64(e.TTFT))
		if s := a.scope(e.Instance); s != nil {
			s.hist(&s.ttft, w).Record(int64(e.TTFT))
		}
	case serve.EventCompleted:
		w := a.window(e.Time)
		met := int64(0)
		if a.cfg.SLO <= 0 || e.TTFT <= a.cfg.SLO {
			met = 1
		}
		a.fleet.completed.add(w, 1)
		a.fleet.sloMet.add(w, met)
		a.fleet.tokens.add(w, e.Tokens)
		if e.TPOT > 0 {
			a.fleet.hist(&a.fleet.tpot, w).Record(int64(e.TPOT))
		}
		if s := a.scope(e.Instance); s != nil {
			s.completed.add(w, 1)
			s.sloMet.add(w, met)
			s.tokens.add(w, e.Tokens)
			if e.TPOT > 0 {
				s.hist(&s.tpot, w).Record(int64(e.TPOT))
			}
		}
	case serve.EventStateSample:
		if e.State == nil {
			return
		}
		a.stateSample(e)
	case serve.EventKVTransferStart:
		a.nTransfer++
		a.transfers.set(e.Time, a.cfg.Interval, float64(a.nTransfer))
	case serve.EventKVTransferDone:
		a.nTransfer--
		a.transfers.set(e.Time, a.cfg.Interval, float64(a.nTransfer))
	case serve.EventInstanceJoin:
		a.active.set(e.Time, a.cfg.Interval, a.active.level+1)
	case serve.EventInstanceGone:
		a.active.set(e.Time, a.cfg.Interval, a.active.level-1)
		a.dropInstanceState(e.Time, e.Instance)
	}
}

func (a *Aggregator) stateSample(e serve.Event) {
	st := e.State
	key := e.Instance // "" for single-instance runs: one implicit scope
	a.qSum += float64(st.Queue) - a.instQueue[key]
	a.kvSum += st.KVFrac - a.instKV[key]
	a.instQueue[key] = float64(st.Queue)
	a.instKV[key] = st.KVFrac
	prev := a.latestCache[key]
	a.cacheL += st.CacheLookups - prev.lookups
	a.cacheH += st.CacheHits - prev.hits
	a.latestCache[key] = cachePair{st.CacheLookups, st.CacheHits}
	a.fleet.queue.set(e.Time, a.cfg.Interval, a.qSum)
	a.fleet.kv.set(e.Time, a.cfg.Interval, a.kvSum/float64(len(a.instKV)))
	w := a.window(e.Time)
	a.fleet.cacheSample(w, a.cacheL, a.cacheH)
	if s := a.scope(e.Instance); s != nil {
		s.queue.set(e.Time, a.cfg.Interval, float64(st.Queue))
		s.kv.set(e.Time, a.cfg.Interval, st.KVFrac)
		s.cacheSample(w, st.CacheLookups, st.CacheHits)
	}
}

// dropInstanceState removes a departed instance's contribution to the
// fleet queue and KV levels: its waiting requests were requeued (or
// dropped) and its KV is gone. Its cumulative cache counters stay in
// the fleet total — that history happened.
func (a *Aggregator) dropInstanceState(t sim.Time, instance string) {
	if _, ok := a.instQueue[instance]; !ok {
		return
	}
	a.qSum -= a.instQueue[instance]
	a.kvSum -= a.instKV[instance]
	delete(a.instQueue, instance)
	delete(a.instKV, instance)
	a.fleet.queue.set(t, a.cfg.Interval, a.qSum)
	level := 0.0
	if len(a.instKV) > 0 {
		level = a.kvSum / float64(len(a.instKV))
	}
	a.fleet.kv.set(t, a.cfg.Interval, level)
}

// windowSeconds is window w's true duration in seconds (the last
// window may be partial).
func windowSeconds(w, n int, interval, horizon sim.Time) float64 {
	start := sim.Time(w) * interval
	end := start + interval
	if w == n-1 && horizon > start && horizon < end {
		end = horizon
	}
	return (end - start).Seconds()
}

// Finish closes the aggregation at the run's horizon and assembles the
// Timeline: exactly ceil(horizon/interval) windows (at least one),
// with any event landing at or past the horizon folded into the last
// window.
func (a *Aggregator) Finish(horizon sim.Time) *Timeline {
	interval := a.cfg.Interval
	n := int((horizon + interval - 1) / interval)
	if n < 1 {
		n = 1
	}
	// Integrate every level signal out to the horizon (not the window
	// end): the last window's mean divides by its true, possibly
	// partial, duration.
	a.fleet.queue.advance(horizon, interval)
	a.fleet.kv.advance(horizon, interval)
	a.active.advance(horizon, interval)
	a.transfers.advance(horizon, interval)
	names := make([]string, 0, len(a.instances))
	for name := range a.instances {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := a.instances[name]
		s.queue.advance(horizon, interval)
		s.kv.advance(horizon, interval)
	}

	tl := &Timeline{
		IntervalMs: float64(interval) / 1e6,
		Windows:    n,
	}
	tl.Fleet = a.fleetSeries(n, horizon)
	if a.cfg.PerInstance {
		for _, name := range names {
			tl.Instances = append(tl.Instances, InstanceSeries{
				Instance: name,
				Series:   a.instanceSeries(a.instances[name], n, horizon),
			})
		}
	}
	return tl
}

// fold truncates a per-raw-window counter to n windows, folding any
// tail into window n-1.
func fold(c windowCounts, n int) []int64 {
	out := make([]int64, n)
	for w, v := range c {
		if w >= n {
			w = n - 1
		}
		out[w] += v
	}
	return out
}

// foldHists folds per-raw-window histograms to n windows.
func foldHists(hs []*Histogram, n int) []*Histogram {
	out := make([]*Histogram, n)
	for w, h := range hs {
		if h == nil {
			continue
		}
		i := w
		if i >= n {
			i = n - 1
		}
		if out[i] == nil {
			out[i] = &Histogram{}
		}
		out[i].Merge(h)
	}
	return out
}

// foldIntegral averages an integrator's per-window integrals over each
// window's true duration, folding any tail integral into the last
// window.
func foldIntegral(g *integrator, n int, interval, horizon sim.Time) []float64 {
	out := make([]float64, n)
	for w, v := range g.integral {
		i := w
		if i >= n {
			i = n - 1
		}
		out[i] += v
	}
	for w := range out {
		if sec := windowSeconds(w, n, interval, horizon); sec > 0 {
			out[w] /= sec * 1e9 // integral is in level-ns
		}
	}
	return out
}

func histQuantileMs(hs []*Histogram, w int, p float64) float64 {
	if hs[w] == nil {
		return 0
	}
	return float64(hs[w].Quantile(p)) / 1e6
}

func (a *Aggregator) fleetSeries(n int, horizon sim.Time) []Series {
	interval := a.cfg.Interval
	completed := fold(a.fleet.completed, n)
	sloMet := fold(a.fleet.sloMet, n)
	tokens := fold(a.fleet.tokens, n)
	ttft := foldHists(a.fleet.ttft, n)
	tpot := foldHists(a.fleet.tpot, n)

	mk := func(name string, f func(w int) float64) Series {
		vals := make([]float64, n)
		for w := range vals {
			vals[w] = f(w)
		}
		return Series{Name: name, Values: vals}
	}
	sec := func(w int) float64 { return windowSeconds(w, n, interval, horizon) }

	out := []Series{
		mk("completed", func(w int) float64 { return float64(completed[w]) }),
		mk("throughput_rps", func(w int) float64 { return float64(completed[w]) / sec(w) }),
		mk("goodput_rps", func(w int) float64 { return float64(sloMet[w]) / sec(w) }),
		mk("slo_attainment", func(w int) float64 {
			if completed[w] == 0 {
				if a.cfg.SLO > 0 {
					return 0
				}
				return 1
			}
			return float64(sloMet[w]) / float64(completed[w])
		}),
		mk("ttft_p50_ms", func(w int) float64 { return histQuantileMs(ttft, w, 50) }),
		mk("ttft_p90_ms", func(w int) float64 { return histQuantileMs(ttft, w, 90) }),
		mk("ttft_p99_ms", func(w int) float64 { return histQuantileMs(ttft, w, 99) }),
		mk("ttft_mean_ms", func(w int) float64 {
			if ttft[w] == nil {
				return 0
			}
			return ttft[w].Mean() / 1e6
		}),
		mk("ttft_max_ms", func(w int) float64 {
			if ttft[w] == nil {
				return 0
			}
			return float64(ttft[w].Max()) / 1e6
		}),
		mk("tpot_p50_ms", func(w int) float64 { return histQuantileMs(tpot, w, 50) }),
		mk("tpot_p90_ms", func(w int) float64 { return histQuantileMs(tpot, w, 90) }),
		mk("tpot_p99_ms", func(w int) float64 { return histQuantileMs(tpot, w, 99) }),
		mk("tokens_per_sec", func(w int) float64 { return float64(tokens[w]) / sec(w) }),
	}
	queue := foldIntegral(&a.fleet.queue, n, interval, horizon)
	kv := foldIntegral(&a.fleet.kv, n, interval, horizon)
	out = append(out,
		Series{Name: "queue_depth", Values: queue},
		Series{Name: "kv_occupancy", Values: kv},
	)
	if a.cfg.FleetSeries {
		out = append(out, Series{Name: "active_instances", Values: foldIntegral(&a.active, n, interval, horizon)})
	}
	if a.cfg.TransferSeries {
		out = append(out, Series{Name: "transfer_backlog", Values: foldIntegral(&a.transfers, n, interval, horizon)})
	}
	if a.cfg.CacheSeries {
		out = append(out, Series{Name: "cache_hit_rate", Values: cacheRates(&a.fleet, n)})
	}
	return out
}

func (a *Aggregator) instanceSeries(s *scopeState, n int, horizon sim.Time) []Series {
	interval := a.cfg.Interval
	completed := fold(s.completed, n)
	tokens := fold(s.tokens, n)
	ttft := foldHists(s.ttft, n)
	tpot := foldHists(s.tpot, n)
	mk := func(name string, f func(w int) float64) Series {
		vals := make([]float64, n)
		for w := range vals {
			vals[w] = f(w)
		}
		return Series{Name: name, Values: vals}
	}
	sec := func(w int) float64 { return windowSeconds(w, n, interval, horizon) }
	out := []Series{
		mk("completed", func(w int) float64 { return float64(completed[w]) }),
		mk("throughput_rps", func(w int) float64 { return float64(completed[w]) / sec(w) }),
		mk("ttft_p50_ms", func(w int) float64 { return histQuantileMs(ttft, w, 50) }),
		mk("ttft_p99_ms", func(w int) float64 { return histQuantileMs(ttft, w, 99) }),
		mk("tpot_p50_ms", func(w int) float64 { return histQuantileMs(tpot, w, 50) }),
		mk("tokens_per_sec", func(w int) float64 { return float64(tokens[w]) / sec(w) }),
		Series{Name: "queue_depth", Values: foldIntegral(&s.queue, n, interval, horizon)},
		Series{Name: "kv_occupancy", Values: foldIntegral(&s.kv, n, interval, horizon)},
	}
	if a.cfg.CacheSeries {
		out = append(out, Series{Name: "cache_hit_rate", Values: cacheRates(s, n)})
	}
	return out
}

// cacheRates turns the per-window cumulative cache counters into
// per-window hit rates: forward-fill the cumulative counts across
// sampleless windows, then difference adjacent windows. A window with
// no lookups reports rate 0.
func cacheRates(s *scopeState, n int) []float64 {
	lookups := make([]int64, n)
	hits := make([]int64, n)
	var curL, curH int64
	for w := 0; w < n; w++ {
		if w < len(s.cacheSeen) && s.cacheSeen[w] {
			curL, curH = s.cacheLookups[w], s.cacheHits[w]
		}
		lookups[w], hits[w] = curL, curH
	}
	// Cumulative tails past n fold into the last window.
	for w := n; w < len(s.cacheSeen); w++ {
		if s.cacheSeen[w] {
			lookups[n-1], hits[n-1] = s.cacheLookups[w], s.cacheHits[w]
		}
	}
	out := make([]float64, n)
	var prevL, prevH int64
	for w := 0; w < n; w++ {
		dl, dh := lookups[w]-prevL, hits[w]-prevH
		if dl > 0 {
			out[w] = float64(dh) / float64(dl)
		}
		prevL, prevH = lookups[w], hits[w]
	}
	return out
}
