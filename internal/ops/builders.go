package ops

import (
	"fmt"

	"github.com/skipsim/skip/internal/hw"
)

// The constructors below mirror the ATen operator structures PyTorch
// eager mode produces for the building blocks of transformer inference.
// Shape arguments follow the convention: b = batch, s = sequence length,
// k/n = GEMM inner/outer dims, h = heads, hd = head dim.

// Linear builds aten::linear over a (b·s × k) input and (k × n) weight:
// the composite dispatches aten::t (a view) and aten::addmm, which
// launches one shape-specialized GEMM kernel.
func Linear(label string, b, s, k, n int64) *Node {
	return &Node{
		Name:  "aten::linear",
		CPUNs: CPUComposite,
		Children: []*Node{
			{Name: "aten::t", CPUNs: CPUView},
			{
				Name:  "aten::addmm",
				CPUNs: CPUKernelOp,
				Kernels: []Kernel{{
					Name:  fmt.Sprintf("gemm_f16_%s_%dx%d", label, k, n),
					Class: ClassGemm,
					Cost:  gemmCost(b, s, k, n),
				}},
			},
		},
	}
}

// Conv1D builds the transformers.Conv1D used by GPT-2 (a transposed
// linear): aten::addmm directly under the module call.
func Conv1D(label string, b, s, k, n int64) *Node {
	return &Node{
		Name:  "aten::addmm",
		CPUNs: CPUKernelOp,
		Kernels: []Kernel{{
			Name:  fmt.Sprintf("gemm_f16_%s_%dx%d", label, k, n),
			Class: ClassGemm,
			Cost:  gemmCost(b, s, k, n),
		}},
	}
}

// BMM builds aten::matmul → aten::bmm over (batch × m × k)·(batch × k × n).
func BMM(label string, batch, m, k, n int64) *Node {
	return &Node{
		Name:  "aten::matmul",
		CPUNs: CPUComposite,
		Children: []*Node{{
			Name:  "aten::bmm",
			CPUNs: CPUKernelOp,
			Kernels: []Kernel{{
				Name:  fmt.Sprintf("bmm_f16_%s_%dx%d", label, k, n),
				Class: ClassGemm,
				Cost:  bmmCost(batch, m, k, n),
			}},
		}},
	}
}

// Softmax builds aten::softmax → aten::_softmax over scores of
// (rows × cols): one warp-parallel reduction kernel reading and writing
// the score matrix.
func Softmax(label string, rows, cols int64) *Node {
	_ = label // kernel symbols are functor-generic, as in real traces
	elems := rows * cols
	return &Node{
		Name:  "aten::softmax",
		CPUNs: CPUComposite,
		Children: []*Node{{
			Name:  "aten::_softmax",
			CPUNs: CPUKernelOp,
			Kernels: []Kernel{{
				Name:  "softmax_warp_forward",
				Class: ClassReduction,
				// Online softmax: one read for max/sum, one read+write
				// for normalization.
				Cost: kcost(float64(elems)*5, float64(2*elems*elemSize), float64(elems*elemSize)),
			}},
		}},
	}
}

// LayerNorm builds aten::layer_norm → aten::native_layer_norm: one
// reduction kernel over (rows × hidden).
func LayerNorm(label string, rows, hidden int64) *Node {
	_ = label
	elems := rows * hidden
	return &Node{
		Name:  "aten::layer_norm",
		CPUNs: CPUComposite,
		Children: []*Node{{
			Name:  "aten::native_layer_norm",
			CPUNs: CPUKernelOp,
			Kernels: []Kernel{{
				Name:  "vectorized_layer_norm_kernel",
				Class: ClassReduction,
				Cost:  kcost(float64(elems)*8, float64(2*elems*elemSize), float64(elems*elemSize)),
			}},
		}},
	}
}

// RMSNorm builds the LlamaRMSNorm eager decomposition: pow/mean variance
// reduction then the scaled multiply — two kernels, as HF traces show.
func RMSNorm(label string, rows, hidden int64) *Node {
	_ = label
	elems := rows * hidden
	return &Node{
		Name:  "aten::rms_norm",
		CPUNs: CPUComposite,
		Children: []*Node{
			{
				Name:  "aten::mean",
				CPUNs: CPUKernelOp,
				Kernels: []Kernel{{
					Name:  "reduce_variance_kernel",
					Class: ClassReduction,
					Cost:  kcost(float64(elems)*3, float64(elems*elemSize), float64(rows*4)),
				}},
			},
			{
				Name:  "aten::mul",
				CPUNs: CPUPointwise,
				Kernels: []Kernel{{
					Name:  "rms_norm_scale_kernel",
					Class: ClassElementwise,
					Cost:  pointwiseCost(elems, 2, 2),
				}},
			},
		},
	}
}

// Pointwise builds a single-kernel elementwise op (aten::add, aten::mul,
// aten::div, aten::tanh, …) over elems elements with ins input tensors.
func Pointwise(aten, kernelLabel string, elems int64, ins int, flopsPerElem float64) *Node {
	_ = kernelLabel
	return &Node{
		Name:  "aten::" + aten,
		CPUNs: CPUPointwise,
		Kernels: []Kernel{{
			Name:  "elementwise_" + aten,
			Class: ClassElementwise,
			Cost:  pointwiseCost(elems, ins, flopsPerElem),
		}},
	}
}

// GELU builds aten::gelu (exact): one fused kernel.
func GELU(label string, elems int64) *Node {
	n := Pointwise("gelu", "gelu_"+label, elems, 1, 8)
	n.Name = "aten::gelu"
	return n
}

// NewGELU builds the GPT-2 "gelu_new" tanh approximation, which HF
// computes with a chain of seven eager pointwise ops (pow, mul, add, mul,
// tanh, add, mul) — the reason GPT-2 launches far more kernels per layer
// than BERT.
func NewGELU(label string, elems int64) *Node {
	mk := func(aten, k string, ins int, fl float64) *Node {
		return Pointwise(aten, k+"_"+label, elems, ins, fl)
	}
	return &Node{
		Name:  "NewGELUActivation",
		CPUNs: CPUComposite,
		Children: []*Node{
			mk("pow", "pow3", 1, 2),
			mk("mul", "mul_c", 1, 1),
			mk("add", "add_x", 2, 1),
			mk("mul", "mul_s", 1, 1),
			mk("tanh", "tanh", 1, 6),
			mk("add", "add_1", 1, 1),
			mk("mul", "mul_half", 2, 2),
		},
	}
}

// SiLUMul builds the Llama/Mistral gated MLP activation: aten::silu then
// aten::mul over the intermediate activations.
func SiLUMul(label string, elems int64) *Node {
	return &Node{
		Name:  "aten::silu_mul",
		CPUNs: CPUComposite,
		Children: []*Node{
			Pointwise("silu", "silu_"+label, elems, 1, 5),
			Pointwise("mul", "gate_mul_"+label, elems, 2, 1),
		},
	}
}

// Copy builds a layout-materializing op (contiguous after permute, split
// with copy, cat): one copy kernel moving elems elements.
func Copy(aten, label string, elems int64) *Node {
	_ = label
	return &Node{
		Name:  "aten::" + aten,
		CPUNs: CPUPointwise,
		Kernels: []Kernel{{
			Name:  copyKernelName(aten),
			Class: ClassCopy,
			Cost:  pointwiseCost(elems, 1, 0),
		}},
	}
}

// View builds a metadata-only op: host cost, no kernel.
func View(aten string) *Node {
	return &Node{Name: "aten::" + aten, CPUNs: CPUView}
}

// Embedding builds aten::embedding: an index gather of (rows × hidden)
// from a (vocab × hidden) table.
func Embedding(label string, rows, hidden int64) *Node {
	_ = label
	elems := rows * hidden
	return &Node{
		Name:  "aten::embedding",
		CPUNs: CPUComposite,
		Children: []*Node{{
			Name:  "aten::index_select",
			CPUNs: CPUKernelOp,
			Kernels: []Kernel{{
				Name:  fmt.Sprintf("embedding_gather_%s", label),
				Class: ClassEmbedding,
				Cost: kcost(0,
					float64(elems*elemSize+rows*8), // table rows + int64 indices
					float64(elems*elemSize)),
			}},
		}},
	}
}

// RoPE builds the rotary position embedding application for one
// projection (q or k): HF's eager rotate_half produces a cat plus two
// muls and an add — modeled as two fused-ish kernels plus the cat copy,
// matching observed kernel counts.
func RoPE(label string, elems int64) *Node {
	return &Node{
		Name:  "apply_rotary_pos_emb",
		CPUNs: CPUComposite,
		Children: []*Node{
			Copy("cat", "rope_rotate_"+label, elems),
			Pointwise("mul", "rope_cos_"+label, elems, 2, 2),
			Pointwise("add", "rope_add_"+label, elems, 2, 1),
		},
	}
}

// FlashAttention builds a fused scaled-dot-product attention: one kernel
// computing softmax(QKᵀ/√d)·V without materializing the score matrix in
// HBM (IO-aware, per FlashAttention-2). Kernel count and memory traffic
// drop; FLOPs are conserved.
func FlashAttention(label string, b, h, s, hd int64) *Node {
	_ = label
	qkFLOPs := 2 * float64(b*h) * float64(s) * float64(hd) * float64(s)
	avFLOPs := qkFLOPs
	softmaxFLOPs := 5 * float64(b*h*s*s)
	qkvBytes := float64(3 * b * h * s * hd * elemSize)
	outBytes := float64(b * h * s * hd * elemSize)
	return &Node{
		Name:  "aten::scaled_dot_product_attention",
		CPUNs: CPUComposite,
		Children: []*Node{{
			Name:  "aten::_flash_attention_forward",
			CPUNs: CPUKernelOp,
			Kernels: []Kernel{{
				Name:  "flash_fwd_kernel",
				Class: ClassAttention,
				Cost: kcost(qkFLOPs+avFLOPs+softmaxFLOPs,
					qkvBytes, outBytes),
			}},
		}},
	}
}

// kcost is shorthand for a KernelCost literal.
func kcost(flops, read, write float64) hw.KernelCost {
	return hw.KernelCost{FLOPs: flops, BytesRead: read, BytesWrite: write}
}

// copyKernelName maps layout ops to the shared copy kernel symbols real
// PyTorch traces show: everything materializes through the same
// direct-copy kernel except concatenation.
func copyKernelName(aten string) string {
	if aten == "cat" {
		return "CatArrayBatchedCopy"
	}
	return "direct_copy_kernel"
}

// DecodeFlashAttention builds the single-token flash-decoding kernel: one
// query row per head attends over a kvLen-deep cache. Entirely
// memory-bound — the whole K/V cache streams through the SMs once.
func DecodeFlashAttention(b, h, kvLen, hd int64) *Node {
	flops := 4 * float64(b*h) * float64(kvLen) * float64(hd)
	cacheBytes := float64(2 * b * h * kvLen * hd * elemSize)
	outBytes := float64(b * h * hd * elemSize)
	return &Node{
		Name:  "aten::scaled_dot_product_attention",
		CPUNs: CPUComposite,
		Children: []*Node{{
			Name:  "aten::_flash_attention_forward",
			CPUNs: CPUKernelOp,
			Kernels: []Kernel{{
				Name:  "flash_fwd_splitkv_kernel",
				Class: ClassAttention,
				Cost:  kcost(flops, cacheBytes+outBytes, outBytes),
			}},
		}},
	}
}
