package ops

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestLinearStructure(t *testing.T) {
	n := Linear("q", 2, 512, 768, 768)
	if n.Name != "aten::linear" {
		t.Errorf("Name = %q", n.Name)
	}
	if n.CountKernels() != 1 {
		t.Errorf("kernels = %d, want 1", n.CountKernels())
	}
	if n.CountNodes() != 3 { // linear + t + addmm
		t.Errorf("nodes = %d, want 3", n.CountNodes())
	}
	k := n.FlattenKernels()[0]
	if k.Class != ClassGemm {
		t.Errorf("class = %v", k.Class)
	}
	if !strings.Contains(k.Name, "768x768") {
		t.Errorf("kernel name %q lacks shape signature", k.Name)
	}
	// 2*b*s*k*n FLOPs.
	if want := 2.0 * 2 * 512 * 768 * 768; k.Cost.FLOPs != want {
		t.Errorf("FLOPs = %g, want %g", k.Cost.FLOPs, want)
	}
	if k.Cost.BytesWrite != 2*2*512*768 {
		t.Errorf("BytesWrite = %g", k.Cost.BytesWrite)
	}
}

func TestLinearScalesWithBatch(t *testing.T) {
	k1 := Linear("q", 1, 512, 768, 768).FlattenKernels()[0]
	k8 := Linear("q", 8, 512, 768, 768).FlattenKernels()[0]
	if k8.Cost.FLOPs != 8*k1.Cost.FLOPs {
		t.Errorf("FLOPs should scale 8x: %g vs %g", k8.Cost.FLOPs, k1.Cost.FLOPs)
	}
	// Weight read is batch-invariant, so bytes grow sublinearly.
	if k8.Cost.Bytes() >= 8*k1.Cost.Bytes() {
		t.Error("bytes should scale sublinearly (weights shared)")
	}
	if k8.Cost.Bytes() <= k1.Cost.Bytes() {
		t.Error("bytes must still grow with batch")
	}
}

func TestBMMCost(t *testing.T) {
	n := BMM("qk", 24, 512, 64, 512)
	k := n.FlattenKernels()[0]
	if want := 2.0 * 24 * 512 * 64 * 512; k.Cost.FLOPs != want {
		t.Errorf("FLOPs = %g, want %g", k.Cost.FLOPs, want)
	}
	if k.Cost.BytesWrite != 24*512*512*2 {
		t.Errorf("BytesWrite = %g", k.Cost.BytesWrite)
	}
}

func TestSoftmaxAndNorms(t *testing.T) {
	sm := Softmax("attn", 24*512, 512)
	if sm.CountKernels() != 1 || sm.FlattenKernels()[0].Class != ClassReduction {
		t.Error("softmax should launch one reduction kernel")
	}
	ln := LayerNorm("ln1", 1024, 768)
	if ln.CountKernels() != 1 {
		t.Error("layer_norm should launch one kernel")
	}
	rms := RMSNorm("input", 512, 2048)
	if rms.CountKernels() != 2 {
		t.Errorf("rms_norm kernels = %d, want 2 (eager decomposition)", rms.CountKernels())
	}
}

func TestNewGELUKernelExplosion(t *testing.T) {
	// GPT-2's tanh GELU must decompose into 7 pointwise kernels.
	n := NewGELU("mlp", 512*3072)
	if got := n.CountKernels(); got != 7 {
		t.Errorf("NewGELU kernels = %d, want 7", got)
	}
	exact := GELU("mlp", 512*3072)
	if got := exact.CountKernels(); got != 1 {
		t.Errorf("exact GELU kernels = %d, want 1", got)
	}
}

func TestFlashAttentionReducesTraffic(t *testing.T) {
	b, h, s, hd := int64(1), int64(12), int64(512), int64(64)
	flash := FlashAttention("l0", b, h, s, hd)
	if flash.CountKernels() != 1 {
		t.Fatalf("flash kernels = %d, want 1", flash.CountKernels())
	}
	fk := flash.FlattenKernels()[0]
	if fk.Class != ClassAttention {
		t.Errorf("class = %v", fk.Class)
	}

	// The eager equivalent: QK bmm + softmax + AV bmm.
	var eager Graph
	eager.Nodes = []*Node{
		BMM("qk", b*h, s, hd, s),
		Softmax("attn", b*h*s, s),
		BMM("av", b*h, s, s, hd),
	}
	eagerCost := eager.TotalCost()

	// FLOPs conserved (within the softmax accounting).
	if fk.Cost.FLOPs < eagerCost.FLOPs*0.8 || fk.Cost.FLOPs > eagerCost.FLOPs*1.2 {
		t.Errorf("flash FLOPs %g vs eager %g: should be conserved", fk.Cost.FLOPs, eagerCost.FLOPs)
	}
	// HBM traffic must drop sharply (no S matrix materialization).
	if fk.Cost.Bytes() >= eagerCost.Bytes()/2 {
		t.Errorf("flash bytes %g vs eager %g: want <50%%", fk.Cost.Bytes(), eagerCost.Bytes())
	}
}

func TestViewHasNoKernel(t *testing.T) {
	v := View("view")
	if v.CountKernels() != 0 {
		t.Error("view must not launch kernels")
	}
	if v.CPUNs <= 0 {
		t.Error("view still costs host time")
	}
}

func TestEmbeddingGather(t *testing.T) {
	e := Embedding("wte", 512, 768)
	k := e.FlattenKernels()[0]
	if k.Class != ClassEmbedding {
		t.Errorf("class = %v", k.Class)
	}
	if k.Cost.BytesWrite != 512*768*2 {
		t.Errorf("BytesWrite = %g", k.Cost.BytesWrite)
	}
}

func TestRoPEKernels(t *testing.T) {
	r := RoPE("q", 512*2048)
	if got := r.CountKernels(); got != 3 {
		t.Errorf("RoPE kernels = %d, want 3", got)
	}
}

func TestGraphAccounting(t *testing.T) {
	g := Graph{Name: "test"}
	g.Nodes = append(g.Nodes, Linear("a", 1, 128, 64, 64), Pointwise("add", "res", 128*64, 2, 1))
	if g.KernelCount() != 2 {
		t.Errorf("KernelCount = %d", g.KernelCount())
	}
	if g.NodeCount() != 4 {
		t.Errorf("NodeCount = %d", g.NodeCount())
	}
	if got := len(g.FlattenKernels()); got != 2 {
		t.Errorf("FlattenKernels = %d", got)
	}
	if g.TotalCost().FLOPs <= 0 {
		t.Error("TotalCost should accumulate")
	}
}

func TestWalkOrder(t *testing.T) {
	n := Linear("q", 1, 4, 4, 4)
	var names []string
	n.Walk(func(m *Node) { names = append(names, m.Name) })
	want := []string{"aten::linear", "aten::t", "aten::addmm"}
	if len(names) != len(want) {
		t.Fatalf("walk = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("walk = %v, want %v", names, want)
		}
	}
}

func TestKernelClassStrings(t *testing.T) {
	for c, want := range map[KernelClass]string{
		ClassGemm: "gemm", ClassAttention: "attention", ClassElementwise: "elementwise",
		ClassReduction: "reduction", ClassCopy: "copy", ClassEmbedding: "embedding",
	} {
		if c.String() != want {
			t.Errorf("%d.String() = %q", int(c), c.String())
		}
	}
	if KernelClass(42).String() != "class(42)" {
		t.Error("unknown class string")
	}
}

func TestFusible(t *testing.T) {
	if !ClassElementwise.Fusible() || !ClassCopy.Fusible() {
		t.Error("pointwise and copy must be fusible")
	}
	if ClassGemm.Fusible() || ClassAttention.Fusible() || ClassReduction.Fusible() {
		t.Error("gemm/attention/reduction must not be fusible")
	}
}

func elemK(name string, bytes float64) Kernel {
	return Kernel{Name: name, Class: ClassElementwise,
		Cost: kcost(bytes/2, bytes, bytes)}
}

func gemmK(name string) Kernel {
	return Kernel{Name: name, Class: ClassGemm, Cost: kcost(1e9, 1e6, 1e6)}
}

func TestFuseElementwiseMergesRuns(t *testing.T) {
	ks := []Kernel{
		gemmK("g1"),
		elemK("e1", 100), elemK("e2", 100), elemK("e3", 100),
		gemmK("g2"),
		elemK("e4", 100),
		gemmK("g3"),
	}
	fused := FuseElementwise(ks, 2)
	// g1, fused(e1..e3), g2, e4 (run of 1 untouched), g3.
	if len(fused) != 5 {
		t.Fatalf("fused length = %d, want 5: %+v", len(fused), fused)
	}
	if !strings.HasPrefix(fused[1].Name, "triton_fused_pointwise") {
		t.Errorf("fused[1] = %q", fused[1].Name)
	}
	// FLOPs conserved across the fused run.
	if fused[1].Cost.FLOPs != 150 {
		t.Errorf("fused FLOPs = %g, want 150", fused[1].Cost.FLOPs)
	}
	// Intermediate traffic eliminated: boundary tensors only.
	if fused[1].Cost.Bytes() != 200 {
		t.Errorf("fused bytes = %g, want 200", fused[1].Cost.Bytes())
	}
	if fused[3].Name != "e4" {
		t.Errorf("singleton run should be untouched, got %q", fused[3].Name)
	}
}

func TestFuseElementwiseMinRun(t *testing.T) {
	ks := []Kernel{elemK("a", 10), elemK("b", 10), gemmK("g")}
	if got := len(FuseElementwise(ks, 3)); got != 3 {
		t.Errorf("minRun=3 should leave 2-run alone, got %d kernels", got)
	}
	if got := len(FuseElementwise(ks, 0)); got != 2 {
		t.Errorf("minRun<2 clamps to 2, got %d kernels", got)
	}
}

func TestFuseElementwiseEmptyAndAllFusible(t *testing.T) {
	if got := FuseElementwise(nil, 2); len(got) != 0 {
		t.Errorf("empty input → %v", got)
	}
	all := []Kernel{elemK("a", 10), elemK("b", 10), elemK("c", 10), elemK("d", 10)}
	fused := FuseElementwise(all, 2)
	if len(fused) != 1 {
		t.Errorf("all-fusible should collapse to 1, got %d", len(fused))
	}
}

// Property: fusion never increases kernel count or byte traffic, and
// conserves FLOPs.
func TestFuseElementwiseProperties(t *testing.T) {
	f := func(pattern []bool) bool {
		if len(pattern) > 100 {
			pattern = pattern[:100]
		}
		var ks []Kernel
		for i, fusible := range pattern {
			if fusible {
				ks = append(ks, elemK("e", float64(10+i)))
			} else {
				ks = append(ks, gemmK("g"))
			}
		}
		fused := FuseElementwise(ks, 2)
		if len(fused) > len(ks) {
			return false
		}
		var fb, fa, flopsB, flopsA float64
		for _, k := range ks {
			fb += k.Cost.Bytes()
			flopsB += k.Cost.FLOPs
		}
		for _, k := range fused {
			fa += k.Cost.Bytes()
			flopsA += k.Cost.FLOPs
		}
		return fa <= fb && flopsA == flopsB
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	before := []Kernel{elemK("a", 100), elemK("b", 100)}
	after := FuseElementwise(before, 2)
	s := Summarize(before, after)
	if s.KernelsBefore != 2 || s.KernelsAfter != 1 {
		t.Errorf("Summarize kernels = %+v", s)
	}
	if s.BytesAfter >= s.BytesBefore {
		t.Errorf("Summarize bytes = %+v", s)
	}
}
