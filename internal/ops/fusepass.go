package ops

import "fmt"

// FuseElementwise merges maximal runs of fusible kernels (pointwise maps
// and layout copies) into single fused kernels, the way torch.compile's
// Triton backend collapses eager pointwise chains. The fused kernel keeps
// the sum of FLOPs but eliminates the intermediate HBM round trips: it
// reads the first kernel's inputs, writes the last kernel's output.
//
// Runs shorter than minRun are left alone (fusing a single kernel is a
// no-op; real compilers also skip trivial regions). The returned slice is
// a fresh allocation; the input is not modified.
func FuseElementwise(kernels []Kernel, minRun int) []Kernel {
	if minRun < 2 {
		minRun = 2
	}
	out := make([]Kernel, 0, len(kernels))
	i := 0
	for i < len(kernels) {
		if !kernels[i].Class.Fusible() {
			out = append(out, kernels[i])
			i++
			continue
		}
		j := i
		for j < len(kernels) && kernels[j].Class.Fusible() {
			j++
		}
		run := kernels[i:j]
		if len(run) < minRun {
			out = append(out, run...)
			i = j
			continue
		}
		fused := Kernel{
			Name:  fmt.Sprintf("triton_fused_pointwise_%d", len(run)),
			Class: ClassElementwise,
		}
		for _, k := range run {
			fused.Cost.FLOPs += k.Cost.FLOPs
		}
		// Memory traffic: boundary tensors only.
		fused.Cost.BytesRead = run[0].Cost.BytesRead
		fused.Cost.BytesWrite = run[len(run)-1].Cost.BytesWrite
		out = append(out, fused)
		i = j
	}
	return out
}

// FusionSavings summarizes what a fusion pass achieved.
type FusionSavings struct {
	KernelsBefore int
	KernelsAfter  int
	BytesBefore   float64
	BytesAfter    float64
}

// Summarize compares kernel lists before/after a fusion pass.
func Summarize(before, after []Kernel) FusionSavings {
	s := FusionSavings{KernelsBefore: len(before), KernelsAfter: len(after)}
	for _, k := range before {
		s.BytesBefore += k.Cost.Bytes()
	}
	for _, k := range after {
		s.BytesAfter += k.Cost.Bytes()
	}
	return s
}
