// Package ops models PyTorch ATen operators as trees of host-side nodes
// that launch GPU kernels — the structure SKIP's dependency graphs
// recover from traces. Each node carries a host dispatch cost (calibrated
// at the Intel reference platform and scaled by CPU single-thread score at
// execution time) and an ordered list of kernels with roofline cost
// descriptors.
//
// Kernel names follow the convention <class>_f16_<shape-signature>, which
// mirrors how shape-specialized CUDA kernels recur identically across
// transformer layers — the repetition the paper's proximity-score miner
// exploits.
package ops

import (
	"fmt"

	"github.com/skipsim/skip/internal/hw"
	"github.com/skipsim/skip/internal/tensor"
)

// KernelClass categorizes a kernel for fusion passes and analysis.
type KernelClass int

const (
	// ClassGemm is a dense matrix multiply (tensor-core bound).
	ClassGemm KernelClass = iota
	// ClassAttention is a fused attention kernel (FlashAttention).
	ClassAttention
	// ClassElementwise is a pointwise map (add, mul, gelu, copies feed
	// through here for fusion eligibility).
	ClassElementwise
	// ClassReduction is a normalization/softmax-style reduction.
	ClassReduction
	// ClassCopy is a layout change (permute/contiguous/split/cat).
	ClassCopy
	// ClassEmbedding is a gather.
	ClassEmbedding
)

// String names the class.
func (c KernelClass) String() string {
	switch c {
	case ClassGemm:
		return "gemm"
	case ClassAttention:
		return "attention"
	case ClassElementwise:
		return "elementwise"
	case ClassReduction:
		return "reduction"
	case ClassCopy:
		return "copy"
	case ClassEmbedding:
		return "embedding"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Fusible reports whether a kernel of this class may be merged into a
// pointwise fusion group by the compile pass: pointwise maps and layout
// copies can; GEMMs, attention, reductions and gathers cannot (Triton
// fuses epilogues in reality, but the paper's accounting — and ours —
// is at whole-kernel granularity).
func (c KernelClass) Fusible() bool {
	return c == ClassElementwise || c == ClassCopy
}

// Kernel describes one GPU kernel launch.
type Kernel struct {
	Name  string
	Class KernelClass
	Cost  hw.KernelCost
}

// Node is one ATen operator: host-side dispatch work, nested child
// operators, and the kernels the operator launches after its children
// complete (the common ATen pattern: setup children — views, transposes —
// then the compute launch).
type Node struct {
	// Name is the ATen symbol, e.g. "aten::linear".
	Name string
	// CPUNs is the host dispatch cost of this node itself, in
	// Intel-reference nanoseconds (framework overhead: Python binding,
	// dispatcher, shape checks, allocator).
	CPUNs float64
	// Children are nested operators, executed in order.
	Children []*Node
	// Kernels are launched by this node after its children.
	Kernels []Kernel
}

// Host dispatch cost tiers (Intel-reference ns). Calibrated so the
// per-kernel CPU cadence — operator framework time plus the launch call —
// lands near the ~5-6µs/kernel a tuned PyTorch eager loop achieves on a
// modern x86 server, which in turn places the encoder CPU→GPU-bound
// transition near BS=8 on the LC systems (Fig. 6).
const (
	// CPUComposite is a user-facing composite op (aten::linear,
	// aten::layer_norm): HF Python module call, dispatcher, shape
	// checks, allocator.
	CPUComposite = 16500.0
	// CPUKernelOp is a mid-level op that launches a kernel
	// (aten::addmm, aten::bmm, aten::_softmax).
	CPUKernelOp = 12000.0
	// CPUPointwise is a simple elementwise op (aten::add, aten::mul).
	CPUPointwise = 10000.0
	// CPUView is a metadata-only op (aten::view, aten::transpose as
	// view): no kernel.
	CPUView = 5000.0
)

// Walk visits the tree in execution order, calling visit for every node.
func (n *Node) Walk(visit func(*Node)) {
	visit(n)
	for _, c := range n.Children {
		c.Walk(visit)
	}
}

// FlattenKernels returns every kernel in execution order.
func (n *Node) FlattenKernels() []Kernel {
	var out []Kernel
	n.Walk(func(m *Node) { out = append(out, m.Kernels...) })
	return out
}

// CountNodes returns the number of operator nodes in the tree.
func (n *Node) CountNodes() int {
	count := 0
	n.Walk(func(*Node) { count++ })
	return count
}

// CountKernels returns the number of kernels the tree launches.
func (n *Node) CountKernels() int {
	count := 0
	n.Walk(func(m *Node) { count += len(m.Kernels) })
	return count
}

// TotalCost sums kernel costs over the tree.
func (n *Node) TotalCost() hw.KernelCost {
	var total hw.KernelCost
	n.Walk(func(m *Node) {
		for _, k := range m.Kernels {
			total = total.Add(k.Cost)
		}
	})
	return total
}

// Graph is the ordered top-level operator list of one forward pass, the
// unit the executor runs and SKIP treats as "parent ATen operators".
type Graph struct {
	// Name labels the graph (model + phase).
	Name string
	// Nodes are the top-level parent operators in execution order.
	Nodes []*Node
	// InputBytes is the host→device input volume (tokens, masks) moved
	// before execution on non-unified-memory platforms.
	InputBytes float64
	// OutputBytes is the device→host result volume.
	OutputBytes float64
}

// KernelCount sums kernels over all parent nodes.
func (g *Graph) KernelCount() int {
	total := 0
	for _, n := range g.Nodes {
		total += n.CountKernels()
	}
	return total
}

// NodeCount sums operator nodes over all parents.
func (g *Graph) NodeCount() int {
	total := 0
	for _, n := range g.Nodes {
		total += n.CountNodes()
	}
	return total
}

// FlattenKernels returns the graph's full kernel sequence.
func (g *Graph) FlattenKernels() []Kernel {
	var out []Kernel
	for _, n := range g.Nodes {
		out = append(out, n.FlattenKernels()...)
	}
	return out
}

// TotalCost sums kernel costs across the graph.
func (g *Graph) TotalCost() hw.KernelCost {
	var total hw.KernelCost
	for _, n := range g.Nodes {
		total = total.Add(n.TotalCost())
	}
	return total
}

const elemSize = 2 // FP16 evaluation precision throughout (paper §IV-B)

// gemmCost computes the roofline cost of a (b·m × k) · (k × n) matmul:
// activations and weights read once, output written once.
func gemmCost(b, m, k, n int64) hw.KernelCost {
	return hw.KernelCost{
		FLOPs:      tensor.MatmulFLOPs(b, m, k, n),
		BytesRead:  float64((b*m*k + k*n) * elemSize),
		BytesWrite: float64(b * m * n * elemSize),
		Rows:       float64(b * m),
	}
}

// bmmCost is a batched matmul where both operands are activations.
func bmmCost(batch, m, k, n int64) hw.KernelCost {
	return hw.KernelCost{
		FLOPs:      tensor.MatmulFLOPs(batch, m, k, n),
		BytesRead:  float64(batch * (m*k + k*n) * elemSize),
		BytesWrite: float64(batch * m * n * elemSize),
		Rows:       float64(batch * m),
	}
}

// pointwiseCost reads inputs ins times and writes once over elems.
func pointwiseCost(elems int64, ins int, flopsPerElem float64) hw.KernelCost {
	return hw.KernelCost{
		FLOPs:      tensor.ElementwiseFLOPs(elems, flopsPerElem),
		BytesRead:  float64(int64(ins) * elems * elemSize),
		BytesWrite: float64(elems * elemSize),
	}
}
