package hw

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// WriteJSON serializes the platform definition, so users can derive
// custom systems from the catalog (what-if hardware: faster Grace,
// wider NVLink, a hypothetical GB200) and feed them back to the CLI.
func (p *Platform) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// ReadPlatformJSON parses a platform definition and validates it.
func ReadPlatformJSON(r io.Reader) (*Platform, error) {
	var p Platform
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("hw: decoding platform JSON: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// SavePlatformFile writes the platform to a JSON file.
func (p *Platform) SavePlatformFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("hw: %w", err)
	}
	defer f.Close()
	if err := p.WriteJSON(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadPlatformFile reads a platform definition from a JSON file.
func LoadPlatformFile(path string) (*Platform, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("hw: %w", err)
	}
	defer f.Close()
	return ReadPlatformJSON(f)
}
