package hw

import (
	"fmt"
	"sort"
)

// Platform names for the three evaluation systems of Table IV, plus the
// tightly-coupled projection the paper names as future work (§VI).
const (
	AMDA100Name   = "AMD+A100"
	IntelH100Name = "Intel+H100"
	GH200Name     = "GH200"
	MI300AName    = "MI300A"
)

// Calibration notes
//
// Launch overheads and null-kernel durations are the paper's own Table V
// measurements and are used verbatim. GPU peaks come from vendor spec
// sheets; the paper states the H100 PCIe and GH200 GPU are
// compute-equivalent with the GH200 enjoying higher-bandwidth HBM3.
// Single-thread scores and the saturation knees are calibrated against
// the paper's reported shapes:
//
//   - BS=1 Bert TTFT: GH200 ≈ 2.8× Intel+H100, ≈ 1.9× AMD+A100 (Fig 10a)
//   - encoder CPU→GPU-bound transition: ≈ BS 8 on LC, ≈ BS 32 on GH200
//     (Fig 6 — "4x more CPU-bound")
//   - Bert BS=64 TTFT: GH200 1.6×/2.4× faster than Intel/AMD (Fig 10a)
//   - Llama-3.2-1B BS=16: GH200 1.9×/2.7× faster (Fig 11a)

// AMDA100 returns the loosely-coupled AMD EPYC 7313 + A100-SXM4-80GB
// platform (Table IV, system 1).
func AMDA100() *Platform {
	return &Platform{
		Name:     AMDA100Name,
		Coupling: LooselyCoupled,
		CPU: CPUSpec{
			Name:              "AMD EPYC 7313 16-Core",
			Arch:              "x86_64",
			Cores:             16,
			Sockets:           1,
			MemGB:             512,
			MemType:           "DDR4",
			SingleThreadScore: 0.68,
		},
		GPU: GPUSpec{
			Name:            "A100-SXM4-80GB",
			PeakFP16TFLOPS:  312,
			HBMGBps:         2039,
			HBMGB:           80,
			NullKernelNs:    1440.0, // Table V
			ComputeEff:      0.42,   // 500W SXM sustains near-rated MFU
			MemoryEff:       0.70,   // ~1.4 TB/s achievable streaming bandwidth
			ComputeSatFLOPs: 2.0e8,
			MemorySatBytes:  1.5e6,
			RowSatRows:      1024, // 108 SMs saturate at fewer rows than Hopper

		},
		IC:                Interconnect{Name: "PCIe Gen4 x16", BandwidthGBps: 32, LatencyNs: 1500},
		LaunchOverheadNs:  2260.5, // Table V
		LaunchCPUFraction: 0.62,
		PowerW:            500,
	}
}

// IntelH100 returns the loosely-coupled 2P Intel Xeon Platinum 8468V +
// H100 PCIe platform (Table IV, system 2).
func IntelH100() *Platform {
	return &Platform{
		Name:     IntelH100Name,
		Coupling: LooselyCoupled,
		CPU: CPUSpec{
			Name:              "2P Intel Xeon Platinum 8468V (48-core)",
			Arch:              "x86_64",
			Cores:             96,
			Sockets:           2,
			MemGB:             512,
			MemType:           "DDR5",
			SingleThreadScore: 1.00, // reference
		},
		GPU: GPUSpec{
			Name:            "H100 PCIe",
			PeakFP16TFLOPS:  756,
			HBMGBps:         2000,
			HBMGB:           80,
			NullKernelNs:    1235.2, // Table V
			ComputeEff:      0.29,   // 350W PCIe part throttles well below SXM MFU
			MemoryEff:       0.80,
			ComputeSatFLOPs: 2.0e8,
			MemorySatBytes:  1.5e6,
			RowSatRows:      1536,
		},
		IC:                Interconnect{Name: "PCIe Gen5 x16", BandwidthGBps: 64, LatencyNs: 1200},
		LaunchOverheadNs:  2374.6, // Table V
		LaunchCPUFraction: 0.62,
		PowerW:            350,
	}
}

// GH200 returns the closely-coupled NVIDIA Grace Hopper Superchip
// (Table IV, system 3): 72-core Neoverse V2 Grace + H100 with HBM3,
// joined by NVLink-C2C with unified virtual memory.
func GH200() *Platform {
	return &Platform{
		Name:     GH200Name,
		Coupling: CloselyCoupled,
		CPU: CPUSpec{
			Name:              "Grace 72-core Arm Neoverse V2",
			Arch:              "aarch64",
			Cores:             72,
			Sockets:           1,
			MemGB:             480,
			MemType:           "LPDDR5X",
			SingleThreadScore: 0.31,
		},
		GPU: GPUSpec{
			Name: "H100 (GH200, HBM3)",
			// The paper describes the GH200 GPU as compute-equivalent to
			// the H100 PCIe; its own large-batch speedups (1.9x for
			// Llama-3.2-1B at BS=16 over Intel+H100) additionally imply
			// the SXM-class clock/power advantage of the 900W module, so
			// we carry the SXM spec here. The dominant factor remains
			// the 2x HBM3 bandwidth.
			PeakFP16TFLOPS: 990,
			HBMGBps:        4000,
			HBMGB:          96,
			NullKernelNs:   1171.2, // Table V
			ComputeEff:     0.42,   // 900W module, SXM-class sustained MFU
			// Achievable HBM3 bandwidth on GH200 measures well below the
			// 4 TB/s plate rating (~2.4 TB/s streaming; cf. Fusco et al.,
			// "Understanding Data Movement in Tightly Coupled
			// Heterogeneous Systems"), which also matches the blended
			// ~1.5-1.6x large-batch advantage the paper reports.
			MemoryEff:       0.60,
			ComputeSatFLOPs: 2.0e8,
			MemorySatBytes:  1.5e6,
			RowSatRows:      2048,
		},
		IC:                   Interconnect{Name: "NVLink-C2C", BandwidthGBps: 450, LatencyNs: 400},
		UnifiedVirtualMemory: true,
		LaunchOverheadNs:     2771.6, // Table V
		LaunchCPUFraction:    0.62,
		PowerW:               900,
	}
}

// MI300A returns a projected tightly-coupled platform in the mold of the
// AMD Instinct MI300A (paper §II-B and future work §VI): Zen4 cores and a
// CDNA3 GPU in one package sharing physically unified HBM3. The paper
// could not evaluate this system; parameters follow its §II-B description
// (1 TB/s Infinity Fabric, unified HBM3, no explicit CPU-GPU transfers)
// and public spec sheets, and are provided for the ablation benches.
func MI300A() *Platform {
	return &Platform{
		Name:     MI300AName,
		Coupling: TightlyCoupled,
		CPU: CPUSpec{
			Name:              "MI300A Zen4 24-core (on-package)",
			Arch:              "x86_64",
			Cores:             24,
			Sockets:           1,
			MemGB:             128,
			MemType:           "HBM3 (unified)",
			SingleThreadScore: 0.85,
		},
		GPU: GPUSpec{
			Name:            "CDNA3 (MI300A)",
			PeakFP16TFLOPS:  760,
			HBMGBps:         5300,
			HBMGB:           128,
			NullKernelNs:    1300.0,
			ComputeEff:      0.40,
			MemoryEff:       0.65,
			ComputeSatFLOPs: 2.0e8,
			MemorySatBytes:  1.5e6,
			RowSatRows:      2048,
		},
		IC:                    Interconnect{Name: "Infinity Fabric (on-package)", BandwidthGBps: 1000, LatencyNs: 150},
		UnifiedVirtualMemory:  true,
		UnifiedPhysicalMemory: true,
		LaunchOverheadNs:      2400.0,
		LaunchCPUFraction:     0.62,
		PowerW:                760,
	}
}

// EvaluationPlatforms returns the paper's three Table IV systems, in the
// order the figures present them.
func EvaluationPlatforms() []*Platform {
	return []*Platform{AMDA100(), IntelH100(), GH200()}
}

// ByName returns a fresh instance of the named platform.
func ByName(name string) (*Platform, error) {
	switch name {
	case AMDA100Name:
		return AMDA100(), nil
	case IntelH100Name:
		return IntelH100(), nil
	case GH200Name:
		return GH200(), nil
	case MI300AName:
		return MI300A(), nil
	}
	return nil, fmt.Errorf("hw: unknown platform %q (have %v)", name, PlatformNames())
}

// PlatformNames lists all cataloged platforms, sorted.
func PlatformNames() []string {
	names := []string{AMDA100Name, IntelH100Name, GH200Name, MI300AName}
	sort.Strings(names)
	return names
}
