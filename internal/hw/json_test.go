package hw

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestPlatformJSONRoundTrip(t *testing.T) {
	want := GH200()
	var buf bytes.Buffer
	if err := want.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPlatformJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != want.Name || got.LaunchOverheadNs != want.LaunchOverheadNs ||
		got.GPU.HBMGBps != want.GPU.HBMGBps || got.CPU.SingleThreadScore != want.CPU.SingleThreadScore ||
		got.Coupling != want.Coupling || got.UnifiedVirtualMemory != want.UnifiedVirtualMemory {
		t.Errorf("round trip mismatch:\n want %+v\n got  %+v", want, got)
	}
}

func TestPlatformFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "custom.json")
	p := MI300A()
	p.Name = "MI300A-custom"
	p.GPU.HBMGBps = 6000
	if err := p.SavePlatformFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPlatformFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "MI300A-custom" || got.GPU.HBMGBps != 6000 {
		t.Errorf("loaded %+v", got)
	}
	if _, err := LoadPlatformFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestReadPlatformJSONValidates(t *testing.T) {
	// A platform that parses but fails validation must be rejected.
	bad := `{"Name":"broken","CPU":{"SingleThreadScore":0},"GPU":{"PeakFP16TFLOPS":1,"HBMGBps":1},"IC":{"BandwidthGBps":1},"LaunchOverheadNs":1,"LaunchCPUFraction":0.5}`
	if _, err := ReadPlatformJSON(strings.NewReader(bad)); err == nil {
		t.Error("invalid platform should fail validation")
	}
	if _, err := ReadPlatformJSON(strings.NewReader("not json")); err == nil {
		t.Error("garbage should fail")
	}
	if _, err := ReadPlatformJSON(strings.NewReader(`{"Nome":"typo"}`)); err == nil {
		t.Error("unknown fields should fail (catches schema typos)")
	}
}
