// Package hw models the hardware of CPU-GPU coupled platforms: CPUs,
// GPUs, interconnects, and the coupling paradigm (loosely, closely, or
// tightly coupled, Fig. 1 of the paper). It also houses the kernel
// duration cost model — a saturating roofline over peak FP16 throughput
// and HBM bandwidth — and the catalog of the three evaluation platforms
// from Table IV, anchored to the paper's Table V microbenchmarks.
package hw

import (
	"fmt"

	"github.com/skipsim/skip/internal/sim"
)

// Coupling classifies the CPU-GPU integration paradigm (paper Fig. 1).
type Coupling int

const (
	// LooselyCoupled: discrete PUs over PCIe, separate memory pools.
	LooselyCoupled Coupling = iota
	// CloselyCoupled: same board, high-speed chip-to-chip link, unified
	// virtual memory over NUMA domains (e.g. GH200 with NVLink-C2C).
	CloselyCoupled
	// TightlyCoupled: same package, physically unified memory
	// (e.g. MI300A).
	TightlyCoupled
)

// String returns the paper's abbreviation for the coupling class.
func (c Coupling) String() string {
	switch c {
	case LooselyCoupled:
		return "LC"
	case CloselyCoupled:
		return "CC"
	case TightlyCoupled:
		return "TC"
	default:
		return fmt.Sprintf("Coupling(%d)", int(c))
	}
}

// CPUSpec describes the host processor.
//
// SingleThreadScore is the workload-effective single-thread performance of
// the CPU running the PyTorch dispatch loop, relative to the Intel Xeon
// Platinum 8468V (= 1.0). It divides every CPU-side cost (operator
// dispatch, launch-call execution). The paper attributes GH200's high
// low-batch latency to "the single-thread performance of the Grace CPU
// ... relative to the CPUs on LC systems" and/or software-stack maturity;
// the scores below are calibrated so BS=1 TTFT ratios match Fig. 10a
// (GH200 ≈ 2.8× Intel+H100, ≈ 1.9× AMD+A100 for Bert-Base).
type CPUSpec struct {
	Name              string
	Arch              string // "x86_64" or "aarch64"
	Cores             int
	Sockets           int
	MemGB             int
	MemType           string
	SingleThreadScore float64
}

// GPUSpec describes the accelerator.
type GPUSpec struct {
	Name string
	// PeakFP16TFLOPS is dense FP16 tensor-core throughput. The paper
	// treats the H100 PCIe and the GH200's H100 as compute-equivalent
	// ("the compute capabilities of the H100 and the GPU portion of the
	// GH200 are equivalent"), differing in memory bandwidth.
	PeakFP16TFLOPS float64
	// HBMGBps is peak memory bandwidth in GB/s.
	HBMGBps float64
	// HBMGB is memory capacity.
	HBMGB int
	// NullKernelNs is the measured duration of an empty kernel (paper
	// Table V), modeling fixed per-kernel execution overhead: scheduling
	// a grid, instruction fetch, and retirement.
	NullKernelNs float64
	// ComputeEff is the achievable fraction of peak FP16 throughput for
	// well-shaped dense kernels (MFU ceiling; ~0.4-0.5 for cuBLAS-class
	// GEMMs on transformer shapes).
	ComputeEff float64
	// MemoryEff is the achievable fraction of peak HBM bandwidth for
	// streaming kernels.
	MemoryEff float64
	// ComputeSatFLOPs is the FLOP count at which a kernel reaches half
	// of its achievable compute throughput (saturating-efficiency knee,
	// see KernelDuration).
	ComputeSatFLOPs float64
	// MemorySatBytes is the byte volume at which a kernel reaches half
	// of its achievable memory bandwidth.
	MemorySatBytes float64
	// RowSatRows is the GEMM row count (batch×rows of the output) at
	// which a matrix kernel reaches half of its achievable compute
	// throughput. Models occupancy/wave quantization: small-batch GEMMs
	// cannot fill the SM array, the effect that keeps low-batch
	// inference launch-dominated and makes batching pay.
	RowSatRows float64
}

// Interconnect describes the CPU↔GPU link.
type Interconnect struct {
	Name string
	// BandwidthGBps is per-direction bandwidth in GB/s.
	BandwidthGBps float64
	// LatencyNs is the one-way transfer initiation latency.
	LatencyNs float64
}

// KernelCost describes the resource demand of one GPU kernel, the input
// to the duration cost model.
type KernelCost struct {
	FLOPs      float64 // floating-point operations
	BytesRead  float64 // bytes read from HBM
	BytesWrite float64 // bytes written to HBM
	// Rows is the output-row parallelism of a matrix kernel (batch×m).
	// Zero means fully parallel (elementwise kernels): no occupancy
	// penalty.
	Rows float64
}

// Add accumulates another cost (used by fusion passes, which merge kernel
// bodies).
func (k KernelCost) Add(o KernelCost) KernelCost {
	sum := KernelCost{
		FLOPs:      k.FLOPs + o.FLOPs,
		BytesRead:  k.BytesRead + o.BytesRead,
		BytesWrite: k.BytesWrite + o.BytesWrite,
		Rows:       k.Rows,
	}
	if o.Rows > 0 && (sum.Rows == 0 || o.Rows < sum.Rows) {
		sum.Rows = o.Rows // fused kernel is gated by its narrowest member
	}
	return sum
}

// Bytes returns total HBM traffic.
func (k KernelCost) Bytes() float64 { return k.BytesRead + k.BytesWrite }

// Scale multiplies every component by f (used to model fusion savings in
// memory round-trips).
func (k KernelCost) Scale(f float64) KernelCost {
	return KernelCost{FLOPs: k.FLOPs * f, BytesRead: k.BytesRead * f, BytesWrite: k.BytesWrite * f, Rows: k.Rows}
}

// minOccupancy floors the row-occupancy penalty in KernelDuration.
const minOccupancy = 0.1

// KernelDuration returns the execution time of a kernel with cost c on
// this GPU. The model is a roofline — the kernel is limited by whichever
// of compute or memory takes longer — with two refinements:
//
//  1. A fixed floor of NullKernelNs, the measured empty-kernel duration
//     (Table V): even a kernel that does nothing occupies the GPU.
//  2. Saturating efficiency: small kernels cannot fill the machine, so
//     effective throughput ramps as work/(work+sat). This is what makes
//     low-batch kernels overhead-dominated and large-batch kernels
//     approach peak — the mechanism behind the CPU-bound→GPU-bound
//     transition the paper characterizes.
func (g *GPUSpec) KernelDuration(c KernelCost) sim.Time {
	var computeNs, memNs float64
	if c.FLOPs > 0 {
		sat := c.FLOPs / (c.FLOPs + g.ComputeSatFLOPs)
		occ := 1.0
		if c.Rows > 0 && g.RowSatRows > 0 {
			occ = c.Rows / (c.Rows + g.RowSatRows)
			// Tiny GEMMs are latency-bound, not occupancy-starved to
			// zero: a single thread block still streams through the
			// machine at a bounded fraction of peak.
			if occ < minOccupancy {
				occ = minOccupancy
			}
		}
		// TFLOPS = 1e12 FLOP/s = 1e3 FLOP/ns.
		computeNs = c.FLOPs / (g.PeakFP16TFLOPS * 1e3 * g.effCompute() * sat * occ)
	}
	if b := c.Bytes(); b > 0 {
		sat := b / (b + g.MemorySatBytes)
		// GB/s = bytes/ns.
		memNs = b / (g.HBMGBps * g.effMemory() * sat)
	}
	body := computeNs
	if memNs > body {
		body = memNs
	}
	return sim.FromNs(g.NullKernelNs + body)
}

// effCompute returns the MFU ceiling, defaulting to 1 when unset so bare
// GPUSpec literals in tests behave as ideal machines.
func (g *GPUSpec) effCompute() float64 {
	if g.ComputeEff <= 0 || g.ComputeEff > 1 {
		return 1
	}
	return g.ComputeEff
}

func (g *GPUSpec) effMemory() float64 {
	if g.MemoryEff <= 0 || g.MemoryEff > 1 {
		return 1
	}
	return g.MemoryEff
}

// Platform is a complete CPU-GPU coupled evaluation system (Table IV).
type Platform struct {
	Name     string
	Coupling Coupling
	CPU      CPUSpec
	GPU      GPUSpec
	IC       Interconnect
	// UnifiedVirtualMemory: CC/TC platforms expose one virtual address
	// space (NVLink-C2C NUMA domains on GH200; physically unified HBM on
	// MI300A), eliminating explicit duplication copies.
	UnifiedVirtualMemory bool
	// UnifiedPhysicalMemory: TC only — no H2D traffic at all.
	UnifiedPhysicalMemory bool
	// LaunchOverheadNs is the measured null-kernel launch overhead
	// (Table V): time from the start of the cudaLaunchKernel call to the
	// start of kernel execution on an idle stream. It bundles CPU launch
	// call time, driver overhead, and link traversal.
	LaunchOverheadNs float64
	// LaunchCPUFraction is the share of LaunchOverheadNs during which
	// the CPU itself is occupied executing the launch call (the rest is
	// driver/link propagation that overlaps with the CPU moving on).
	LaunchCPUFraction float64
	// PowerW is the module's rated power (reported, not modeled).
	PowerW int
}

// LaunchCPUTime is how long a cudaLaunchKernel call occupies the host
// thread. This — together with per-operator framework time — sets the
// maximum rate at which a single CPU thread can feed the GPU, the
// quantity that bounds CPU-bound workloads.
func (p *Platform) LaunchCPUTime() sim.Time {
	return sim.FromNs(p.LaunchOverheadNs * p.LaunchCPUFraction)
}

// LaunchPropagation is the remaining launch latency after the CPU is
// released: driver queue + interconnect traversal until the command
// reaches the stream.
func (p *Platform) LaunchPropagation() sim.Time {
	return sim.FromNs(p.LaunchOverheadNs * (1 - p.LaunchCPUFraction))
}

// CPUTime scales a baseline CPU cost (calibrated on the Intel reference)
// by this platform's single-thread performance.
func (p *Platform) CPUTime(baseNs float64) sim.Time {
	if p.CPU.SingleThreadScore <= 0 {
		return sim.FromNs(baseNs)
	}
	return sim.FromNs(baseNs / p.CPU.SingleThreadScore)
}

// TransferTime returns the time to move n bytes across the CPU↔GPU link.
// Tightly-coupled platforms share physical memory: transfers are free.
func (p *Platform) TransferTime(bytes float64) sim.Time {
	if p.UnifiedPhysicalMemory || bytes <= 0 {
		return 0
	}
	return sim.FromNs(p.IC.LatencyNs + bytes/p.IC.BandwidthGBps)
}

// Validate checks the platform for parameter sanity.
func (p *Platform) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("hw: platform has no name")
	case p.CPU.SingleThreadScore <= 0:
		return fmt.Errorf("hw: %s: CPU SingleThreadScore must be positive", p.Name)
	case p.GPU.PeakFP16TFLOPS <= 0 || p.GPU.HBMGBps <= 0:
		return fmt.Errorf("hw: %s: GPU peaks must be positive", p.Name)
	case p.GPU.NullKernelNs < 0 || p.LaunchOverheadNs <= 0:
		return fmt.Errorf("hw: %s: kernel/launch overheads must be non-negative/positive", p.Name)
	case p.LaunchCPUFraction <= 0 || p.LaunchCPUFraction > 1:
		return fmt.Errorf("hw: %s: LaunchCPUFraction must be in (0,1]", p.Name)
	case p.IC.BandwidthGBps <= 0 && !p.UnifiedPhysicalMemory:
		return fmt.Errorf("hw: %s: interconnect bandwidth must be positive", p.Name)
	}
	return nil
}

func (p *Platform) String() string {
	return fmt.Sprintf("%s (%s: %s + %s over %s)", p.Name, p.Coupling, p.CPU.Name, p.GPU.Name, p.IC.Name)
}
