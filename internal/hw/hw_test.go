package hw

import (
	"testing"
	"testing/quick"

	"github.com/skipsim/skip/internal/sim"
)

func TestCouplingString(t *testing.T) {
	cases := map[Coupling]string{LooselyCoupled: "LC", CloselyCoupled: "CC", TightlyCoupled: "TC"}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(c), got, want)
		}
	}
	if got := Coupling(9).String(); got != "Coupling(9)" {
		t.Errorf("unknown coupling = %q", got)
	}
}

func TestCatalogValidates(t *testing.T) {
	for _, p := range []*Platform{AMDA100(), IntelH100(), GH200(), MI300A()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestTableVAnchors(t *testing.T) {
	// The catalog must carry the paper's Table V values verbatim.
	cases := []struct {
		p              *Platform
		launch, nullNs float64
	}{
		{AMDA100(), 2260.5, 1440.0},
		{IntelH100(), 2374.6, 1235.2},
		{GH200(), 2771.6, 1171.2},
	}
	for _, c := range cases {
		if c.p.LaunchOverheadNs != c.launch {
			t.Errorf("%s launch overhead = %v, want %v", c.p.Name, c.p.LaunchOverheadNs, c.launch)
		}
		if c.p.GPU.NullKernelNs != c.nullNs {
			t.Errorf("%s null duration = %v, want %v", c.p.Name, c.p.GPU.NullKernelNs, c.nullNs)
		}
	}
}

func TestTableVOrderings(t *testing.T) {
	amd, intel, gh := AMDA100(), IntelH100(), GH200()
	// Launch overhead: AMD < Intel < GH200 (paper §V-A).
	if !(amd.LaunchOverheadNs < intel.LaunchOverheadNs && intel.LaunchOverheadNs < gh.LaunchOverheadNs) {
		t.Error("launch overhead ordering violated")
	}
	// Null duration: GH200 < H100 < A100 ("lowest nullKernel execution
	// durations" on GH200, "highest kernel execution durations" on AMD).
	if !(gh.GPU.NullKernelNs < intel.GPU.NullKernelNs && intel.GPU.NullKernelNs < amd.GPU.NullKernelNs) {
		t.Error("null duration ordering violated")
	}
}

func TestPaperArchitecturalClaims(t *testing.T) {
	intel, gh := IntelH100(), GH200()
	// GH200 carries the SXM-class module: moderately faster compute
	// (≤1.35x, see catalog comment) — the HBM3 bandwidth is the dominant
	// advantage at 2x.
	if ratio := gh.GPU.PeakFP16TFLOPS / intel.GPU.PeakFP16TFLOPS; ratio < 1.0 || ratio > 1.35 {
		t.Errorf("GH200/H100 compute ratio = %.2f, want within [1, 1.35]", ratio)
	}
	if gh.GPU.HBMGBps <= 1.5*intel.GPU.HBMGBps {
		t.Error("GH200 HBM3 bandwidth should be ~2x H100 PCIe")
	}
	if gh.CPU.SingleThreadScore >= intel.CPU.SingleThreadScore {
		t.Error("Grace single-thread score must trail Intel (paper §V-D)")
	}
	if !gh.UnifiedVirtualMemory || gh.UnifiedPhysicalMemory {
		t.Error("GH200 is virtually unified only")
	}
	if !MI300A().UnifiedPhysicalMemory {
		t.Error("MI300A is physically unified")
	}
}

func TestKernelDurationFloor(t *testing.T) {
	g := IntelH100().GPU
	// Empty kernel costs exactly the null duration.
	if got := g.KernelDuration(KernelCost{}); got != sim.FromNs(g.NullKernelNs) {
		t.Errorf("null kernel = %v, want %v", got, sim.FromNs(g.NullKernelNs))
	}
}

func TestKernelDurationRoofline(t *testing.T) {
	g := IntelH100().GPU
	// A very large compute-bound kernel approaches the achievable
	// (MFU-capped) throughput.
	flops := 1e13 // 10 TFLOP
	d := g.KernelDuration(KernelCost{FLOPs: flops})
	ideal := flops / (g.PeakFP16TFLOPS * 1e3 * g.ComputeEff) // ns
	if ratio := float64(d) / ideal; ratio < 1.0 || ratio > 1.05 {
		t.Errorf("large compute kernel %.3gx ideal, want within 5%%", ratio)
	}
	// A very large memory-bound kernel approaches achievable bandwidth.
	bytes := 1e11 // 100 GB
	d = g.KernelDuration(KernelCost{BytesRead: bytes})
	ideal = bytes / (g.HBMGBps * g.MemoryEff)
	if ratio := float64(d) / ideal; ratio < 1.0 || ratio > 1.05 {
		t.Errorf("large memory kernel %.3gx ideal, want within 5%%", ratio)
	}
	// Unset efficiency fields behave as an ideal machine (no cap).
	bare := GPUSpec{PeakFP16TFLOPS: 100, HBMGBps: 1000, ComputeSatFLOPs: 1, MemorySatBytes: 1}
	d = bare.KernelDuration(KernelCost{FLOPs: 1e12})
	if ratio := float64(d) / (1e12 / 1e5); ratio < 1.0 || ratio > 1.05 {
		t.Errorf("bare spec kernel %.3gx ideal", ratio)
	}
}

func TestKernelDurationBandwidthAdvantage(t *testing.T) {
	// Same memory-bound kernel: GH200 HBM3 must beat H100 PCIe. The
	// achievable ratio is (4000·0.60)/(2000·0.80) = 1.5 — plate-rated
	// 2x derated by measured streaming efficiency (see catalog notes).
	cost := KernelCost{BytesRead: 1e9, BytesWrite: 1e9}
	dIntel := IntelH100().GPU.KernelDuration(cost)
	dGH := GH200().GPU.KernelDuration(cost)
	ratio := float64(dIntel) / float64(dGH)
	if ratio < 1.35 || ratio > 1.65 {
		t.Errorf("HBM advantage ratio = %.2f, want ~1.5", ratio)
	}
}

func TestKernelDurationMonotone(t *testing.T) {
	g := GH200().GPU
	f := func(a, b uint32) bool {
		fa, fb := float64(a), float64(b)
		if fa > fb {
			fa, fb = fb, fa
		}
		return g.KernelDuration(KernelCost{FLOPs: fa}) <= g.KernelDuration(KernelCost{FLOPs: fb}) &&
			g.KernelDuration(KernelCost{BytesRead: fa}) <= g.KernelDuration(KernelCost{BytesRead: fb})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKernelCostArithmetic(t *testing.T) {
	a := KernelCost{FLOPs: 10, BytesRead: 4, BytesWrite: 2}
	b := KernelCost{FLOPs: 5, BytesRead: 1, BytesWrite: 1}
	sum := a.Add(b)
	if sum.FLOPs != 15 || sum.BytesRead != 5 || sum.BytesWrite != 3 {
		t.Errorf("Add = %+v", sum)
	}
	if a.Bytes() != 6 {
		t.Errorf("Bytes = %v", a.Bytes())
	}
	s := a.Scale(0.5)
	if s.FLOPs != 5 || s.BytesRead != 2 || s.BytesWrite != 1 {
		t.Errorf("Scale = %+v", s)
	}
}

func TestLaunchSplit(t *testing.T) {
	p := IntelH100()
	total := p.LaunchCPUTime() + p.LaunchPropagation()
	want := sim.FromNs(p.LaunchOverheadNs)
	// Rounding may cost at most 1ns.
	if diff := total - want; diff < -1 || diff > 1 {
		t.Errorf("launch split sums to %v, want %v", total, want)
	}
	if p.LaunchCPUTime() <= 0 || p.LaunchPropagation() <= 0 {
		t.Error("both launch components must be positive")
	}
}

func TestCPUTimeScaling(t *testing.T) {
	intel, gh := IntelH100(), GH200()
	base := 10000.0
	ti, tg := intel.CPUTime(base), gh.CPUTime(base)
	ratio := float64(tg) / float64(ti)
	want := intel.CPU.SingleThreadScore / gh.CPU.SingleThreadScore
	if ratio < want*0.99 || ratio > want*1.01 {
		t.Errorf("CPU scaling ratio = %.3f, want %.3f", ratio, want)
	}
	// Degenerate score falls back to base.
	bad := &Platform{CPU: CPUSpec{SingleThreadScore: 0}}
	if got := bad.CPUTime(base); got != sim.FromNs(base) {
		t.Errorf("zero-score CPUTime = %v", got)
	}
}

func TestTransferTime(t *testing.T) {
	intel, gh, mi := IntelH100(), GH200(), MI300A()
	b := 1e9 // 1 GB
	ti, tg := intel.TransferTime(b), gh.TransferTime(b)
	if tg >= ti {
		t.Errorf("NVLink-C2C transfer (%v) should beat PCIe (%v)", tg, ti)
	}
	if got := mi.TransferTime(b); got != 0 {
		t.Errorf("TC transfer = %v, want 0 (unified physical memory)", got)
	}
	if got := intel.TransferTime(0); got != 0 {
		t.Errorf("zero-byte transfer = %v", got)
	}
}

func TestByName(t *testing.T) {
	for _, name := range PlatformNames() {
		p, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		if p.Name != name {
			t.Errorf("ByName(%q).Name = %q", name, p.Name)
		}
	}
	if _, err := ByName("TPUv4"); err == nil {
		t.Error("ByName with unknown platform should fail")
	}
}

func TestEvaluationPlatformsOrder(t *testing.T) {
	ps := EvaluationPlatforms()
	if len(ps) != 3 {
		t.Fatalf("want 3 evaluation platforms, got %d", len(ps))
	}
	want := []string{AMDA100Name, IntelH100Name, GH200Name}
	for i, p := range ps {
		if p.Name != want[i] {
			t.Errorf("platform[%d] = %s, want %s", i, p.Name, want[i])
		}
	}
}

func TestValidateCatchesBadPlatforms(t *testing.T) {
	good := IntelH100()
	bad := *good
	bad.CPU.SingleThreadScore = 0
	if bad.Validate() == nil {
		t.Error("zero CPU score must fail validation")
	}
	bad = *good
	bad.LaunchCPUFraction = 1.5
	if bad.Validate() == nil {
		t.Error("LaunchCPUFraction > 1 must fail validation")
	}
	bad = *good
	bad.Name = ""
	if bad.Validate() == nil {
		t.Error("empty name must fail validation")
	}
	bad = *good
	bad.GPU.PeakFP16TFLOPS = 0
	if bad.Validate() == nil {
		t.Error("zero TFLOPS must fail validation")
	}
}

func TestPlatformString(t *testing.T) {
	s := GH200().String()
	if s == "" {
		t.Error("empty String()")
	}
}
