// Package kvcache models a block-level, prefix-aware KV cache with
// refcounted pinning, LRU/FIFO eviction, and a two-tier capacity model:
// a fixed pool of device blocks plus an optional host-memory spill tier.
//
// The prompt prefix of a session is split into fixed-size token blocks
// and each block is addressed by a chain hash over (parent block,
// session, block index) — the simulator has no token content, so a
// session's prefix identity *is* its (session, index) chain, exactly
// the way a real prefix cache keys blocks by the hash chain of their
// token contents. A request Acquires its prefix blocks at admission:
// resident device blocks pin in place (hits), host-tier blocks promote
// back to device (restores, priced by the caller through the platform
// interconnect model), and missing blocks allocate fresh (misses),
// evicting cold unpinned blocks to the host tier — or dropping them
// when no spill capacity is configured. Release unpins; blocks with a
// zero refcount become eviction candidates but stay resident, which is
// what makes a later turn of the same session hit.
//
// The cache is observer-free and fully deterministic: eviction order is
// a doubly-linked list ordered by explicit pin/unpin operations (LRU)
// or block creation order (FIFO), never map iteration or wall-clock
// time. All counters form an exact ledger (see Stats).
package kvcache

import "fmt"

// Policy selects the eviction order among unpinned device blocks.
type Policy int

const (
	// LRU evicts the block least recently released (the default).
	LRU Policy = iota
	// FIFO evicts the oldest-created unpinned block.
	FIFO
)

func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case FIFO:
		return "fifo"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Policies lists the parseable eviction policy names.
func Policies() []string { return []string{"lru", "fifo"} }

// ParsePolicy parses an eviction policy name.
func ParsePolicy(name string) (Policy, error) {
	switch name {
	case "lru":
		return LRU, nil
	case "fifo":
		return FIFO, nil
	default:
		return 0, fmt.Errorf("kvcache: unknown eviction policy %q (have lru|fifo)", name)
	}
}

// Config sizes a cache.
type Config struct {
	// BlockTokens is the tokens per block (default 32).
	BlockTokens int64
	// DeviceBlocks is the device-tier capacity in blocks. Required,
	// positive.
	DeviceBlocks int
	// HostSpillBlocks is the host-tier capacity in blocks; evicted
	// device blocks spill there instead of dropping. 0 disables the
	// tier.
	HostSpillBlocks int
	// Policy is the eviction order (default LRU).
	Policy Policy
}

// Grant reports what one Acquire did: how many prefix blocks were
// pinned for the request and where they came from. Counts are in
// blocks.
type Grant struct {
	// Pinned is the number of prefix blocks now pinned device-resident
	// for this request; pass it back to Release when the request leaves.
	Pinned int
	// Hits pinned already-device-resident blocks.
	Hits int
	// Restored promoted host-tier blocks back to device; the caller
	// prices the copy through its interconnect model.
	Restored int
	// Misses allocated fresh device blocks (the prefill will fill
	// them).
	Misses int
	// Unallocated counts wanted blocks that could not be placed because
	// every device block was pinned; the request computes those tokens
	// through the ordinary KV pool instead.
	Unallocated int
	// CreditTokens is the prefill reuse credit: the contiguous run of
	// cached (hit or restored) blocks from the prompt start, in tokens.
	// Blocks cached beyond the first gap still pin, but grant no credit
	// — prefill progress is a scalar.
	CreditTokens int64
	// Evicted / Spilled / HostEvicted count the evictions this Acquire
	// forced: device blocks evicted, the subset that spilled to host,
	// and host blocks dropped to make room for spills.
	Evicted     int
	Spilled     int
	HostEvicted int
}

// Stats is the cache ledger. Every counter is cumulative and the set
// reconciles exactly:
//
//	Lookups     == Hits + Restored + Misses + Unallocated
//	Evictions   == Spills + device drops, and every evicted block had a
//	               prior device placement, so Evictions ≤ Misses + Restored
//	HostEvictions ≤ Spills
type Stats struct {
	// Lookups counts prefix blocks wanted across all Acquires.
	Lookups int64
	// Hits / Restored / Misses / Unallocated partition Lookups.
	Hits        int64
	Restored    int64
	Misses      int64
	Unallocated int64
	// Evictions counts device blocks evicted; Spills the subset moved
	// to the host tier; HostEvictions host blocks dropped.
	Evictions     int64
	Spills        int64
	HostEvictions int64
	// ReusedTokens is the total prefill reuse credit granted (fresh
	// requests only; transferred caches arrive with their prefill done).
	ReusedTokens int64
}

// block is one cached prefix block. A block is either device-resident
// (possibly pinned) or on the host tier (never pinned). Unpinned blocks
// sit in their tier's eviction list; pinned blocks are off-list.
type block struct {
	key    uint64
	refs   int
	onHost bool
	// born orders FIFO eviction: a monotonic creation tick, never
	// wall-clock or virtual time.
	born uint64
	// prev/next link the block into its tier's eviction list (front =
	// evict first). nil links plus list membership tracked by inList.
	prev, next *block
	inList     bool
}

// evictList is a tiny intrusive doubly-linked list over blocks, front =
// next eviction victim.
type evictList struct {
	front, back *block
	n           int
}

func (l *evictList) pushBack(b *block) {
	b.prev, b.next, b.inList = l.back, nil, true
	if l.back != nil {
		l.back.next = b
	} else {
		l.front = b
	}
	l.back = b
	l.n++
}

func (l *evictList) pushFront(b *block) {
	b.prev, b.next, b.inList = nil, l.front, true
	if l.front != nil {
		l.front.prev = b
	} else {
		l.back = b
	}
	l.front = b
	l.n++
}

// insertAfter links b after at (at must be in the list).
func (l *evictList) insertAfter(b, at *block) {
	b.prev, b.next, b.inList = at, at.next, true
	if at.next != nil {
		at.next.prev = b
	} else {
		l.back = b
	}
	at.next = b
	l.n++
}

func (l *evictList) remove(b *block) {
	if b.prev != nil {
		b.prev.next = b.next
	} else {
		l.front = b.next
	}
	if b.next != nil {
		b.next.prev = b.prev
	} else {
		l.back = b.prev
	}
	b.prev, b.next, b.inList = nil, nil, false
	l.n--
}

// Cache is a two-tier block cache. Not safe for concurrent use; every
// serving instance owns its own Cache on the single simulation thread.
type Cache struct {
	blockTokens int64
	deviceCap   int
	hostCap     int
	policy      Policy

	blocks     map[uint64]*block
	deviceFree evictList // unpinned device blocks
	hostList   evictList // host-tier blocks (always unpinned)
	deviceUsed int       // device blocks resident, pinned or not
	tick       uint64
	stats      Stats
}

// New builds a cache, applying the BlockTokens default (32).
func New(cfg Config) (*Cache, error) {
	if cfg.BlockTokens < 0 {
		return nil, fmt.Errorf("kvcache: block tokens must be non-negative, got %d", cfg.BlockTokens)
	}
	if cfg.BlockTokens == 0 {
		cfg.BlockTokens = 32
	}
	if cfg.DeviceBlocks <= 0 {
		return nil, fmt.Errorf("kvcache: device blocks must be positive, got %d", cfg.DeviceBlocks)
	}
	if cfg.HostSpillBlocks < 0 {
		return nil, fmt.Errorf("kvcache: host spill blocks must be non-negative, got %d", cfg.HostSpillBlocks)
	}
	if cfg.Policy != LRU && cfg.Policy != FIFO {
		return nil, fmt.Errorf("kvcache: unknown eviction policy %d", int(cfg.Policy))
	}
	return &Cache{
		blockTokens: cfg.BlockTokens,
		deviceCap:   cfg.DeviceBlocks,
		hostCap:     cfg.HostSpillBlocks,
		policy:      cfg.Policy,
		blocks:      make(map[uint64]*block),
	}, nil
}

// BlockTokens is the configured tokens per block.
func (c *Cache) BlockTokens() int64 { return c.blockTokens }

// Stats returns a copy of the ledger.
func (c *Cache) Stats() Stats { return c.stats }

// FNV-1a over fixed-width words: the chain hash folding (parent,
// session, index) into a block key.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

// blockKey chains block i of a session's prefix onto its parent:
// key_0 = H(0, session, 0), key_i = H(key_{i-1}, session, i).
func blockKey(parent uint64, session int64, index int64) uint64 {
	h := fnvMix(uint64(fnvOffset), parent)
	h = fnvMix(h, uint64(session))
	return fnvMix(h, uint64(index))
}

// wantBlocks is how many prefix blocks a prompt covers. The final
// prompt token is never cached, so every request computes at least one
// prefill token — full-credit requests would otherwise skip prefill
// entirely.
func (c *Cache) wantBlocks(promptLen int64) int64 {
	if promptLen <= 1 {
		return 0
	}
	return (promptLen - 1) / c.blockTokens
}

// Peek reports the request's cached prefix without touching the cache:
// the contiguous run of device-resident blocks from the prompt start,
// in tokens. It is strictly read-only — no refcounts, no eviction
// order, no ledger — so routers and admission checks may call it
// freely. Host-tier blocks are excluded: Peek is the conservative
// lower bound on what Acquire will pin, which keeps an admission
// decision made on Peek valid after Acquire grants more.
func (c *Cache) Peek(session, promptLen int64) int64 {
	if c == nil || session == 0 {
		return 0
	}
	want := c.wantBlocks(promptLen)
	parent := uint64(0)
	var run int64
	for i := int64(0); i < want; i++ {
		key := blockKey(parent, session, i)
		parent = key
		b := c.blocks[key]
		if b == nil || b.onHost {
			break
		}
		run++
	}
	return run * c.blockTokens
}

// Acquire pins the request's prefix blocks for the duration of its
// residency: hits pin in place, host blocks promote back to device,
// misses allocate (evicting unpinned blocks as needed). The walk stops
// at the first block that cannot be placed (every device block pinned);
// the remainder counts as unallocated and the request carries those
// tokens in the ordinary KV pool.
//
// transferred marks a request whose prefix KV arrived over the wire (a
// disaggregated handoff): blocks still pin and allocate — populating
// the destination's cache — but host promotions count as plain hits
// (the bytes were already paid for on the link, not the host
// interconnect) and no reuse credit accrues (its prefill is done).
func (c *Cache) Acquire(session, promptLen int64, transferred bool) Grant {
	var g Grant
	if session == 0 {
		return g
	}
	want := c.wantBlocks(promptLen)
	c.stats.Lookups += want
	parent := uint64(0)
	contiguous := true
	for i := int64(0); i < want; i++ {
		key := blockKey(parent, session, i)
		parent = key
		b := c.blocks[key]
		switch {
		case b != nil && !b.onHost:
			c.pin(b)
			g.Hits++
			if contiguous {
				g.CreditTokens += c.blockTokens
			}
		case b != nil && b.onHost:
			if !c.canFreeDeviceSlot() {
				g.Unallocated = int(want - i)
				c.finish(&g, transferred, want-i)
				return g
			}
			// Pull the promoting block off the host tier before evicting:
			// a spill forced by this promotion must never pick b as its
			// host-eviction victim, and b's freed host slot absorbs the
			// spilled block instead of dropping another host block.
			c.hostList.remove(b)
			b.onHost = false
			c.freeDeviceSlot(&g)
			b.refs = 1
			c.deviceUsed++
			if transferred {
				g.Hits++
			} else {
				g.Restored++
			}
			if contiguous {
				g.CreditTokens += c.blockTokens
			}
		default:
			if !c.freeDeviceSlot(&g) {
				g.Unallocated = int(want - i)
				c.finish(&g, transferred, want-i)
				return g
			}
			c.tick++
			b = &block{key: key, refs: 1, born: c.tick}
			c.blocks[key] = b
			c.deviceUsed++
			g.Misses++
			contiguous = false
		}
		g.Pinned++
	}
	c.finish(&g, transferred, 0)
	return g
}

// finish folds a grant into the ledger.
func (c *Cache) finish(g *Grant, transferred bool, unallocated int64) {
	c.stats.Hits += int64(g.Hits)
	c.stats.Restored += int64(g.Restored)
	c.stats.Misses += int64(g.Misses)
	c.stats.Unallocated += unallocated
	if !transferred {
		c.stats.ReusedTokens += g.CreditTokens
	}
}

// canFreeDeviceSlot reports whether freeDeviceSlot would succeed: a
// device slot is open or an unpinned block can be evicted. It never
// mutates, so callers may check it before touching tier state.
func (c *Cache) canFreeDeviceSlot() bool {
	return c.deviceUsed < c.deviceCap || c.deviceFree.front != nil
}

// freeDeviceSlot makes room for one device block, evicting the coldest
// unpinned block if the tier is full — spilling it to the host tier
// when one is configured (dropping the coldest host block if that tier
// is full too), dropping it otherwise. Returns false when every device
// block is pinned.
func (c *Cache) freeDeviceSlot(g *Grant) bool {
	if c.deviceUsed < c.deviceCap {
		return true
	}
	victim := c.deviceFree.front
	if victim == nil {
		return false
	}
	c.deviceFree.remove(victim)
	c.deviceUsed--
	c.stats.Evictions++
	g.Evicted++
	if c.hostCap > 0 {
		if c.hostList.n >= c.hostCap {
			hv := c.hostList.front
			c.hostList.remove(hv)
			delete(c.blocks, hv.key)
			c.stats.HostEvictions++
			g.HostEvicted++
		}
		victim.onHost = true
		c.hostList.pushBack(victim)
		c.stats.Spills++
		g.Spilled++
	} else {
		delete(c.blocks, victim.key)
	}
	return true
}

// pin takes a reference on a device-resident block, removing it from
// the eviction list on the 0→1 transition.
func (c *Cache) pin(b *block) {
	if b.refs == 0 && b.inList {
		c.deviceFree.remove(b)
	}
	b.refs++
}

// Release drops the request's pins on its first `pinned` prefix blocks
// (the Grant.Pinned count from its Acquire). Blocks whose refcount
// reaches zero join the eviction list — LRU at the warm end, FIFO in
// creation order — but stay resident: that residency is the next
// turn's hit.
func (c *Cache) Release(session int64, pinned int) {
	parent := uint64(0)
	for i := 0; i < pinned; i++ {
		key := blockKey(parent, session, int64(i))
		parent = key
		b := c.blocks[key]
		if b == nil || b.onHost || b.refs == 0 {
			continue // defensive: a pinned block cannot be evicted or spilled
		}
		b.refs--
		if b.refs == 0 {
			c.unpinned(b)
		}
	}
}

// unpinned inserts a newly-unpinned block into the device eviction
// list according to the policy.
func (c *Cache) unpinned(b *block) {
	if c.policy == FIFO {
		for at := c.deviceFree.back; at != nil; at = at.prev {
			if at.born <= b.born {
				c.deviceFree.insertAfter(b, at)
				return
			}
		}
		c.deviceFree.pushFront(b)
		return
	}
	c.deviceFree.pushBack(b)
}

// DeviceResident / HostResident report current occupancy in blocks.
func (c *Cache) DeviceResident() int { return c.deviceUsed }
func (c *Cache) HostResident() int   { return c.hostList.n }
