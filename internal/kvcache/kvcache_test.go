package kvcache

import "testing"

func mustNew(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	return c
}

func checkLedger(t *testing.T, c *Cache) {
	t.Helper()
	s := c.Stats()
	if s.Lookups != s.Hits+s.Restored+s.Misses+s.Unallocated {
		t.Fatalf("ledger: lookups %d != hits %d + restored %d + misses %d + unallocated %d",
			s.Lookups, s.Hits, s.Restored, s.Misses, s.Unallocated)
	}
	if s.Evictions > s.Misses+s.Restored {
		t.Fatalf("ledger: evictions %d > placements (misses %d + restored %d)", s.Evictions, s.Misses, s.Restored)
	}
	if s.Spills > s.Evictions {
		t.Fatalf("ledger: spills %d > evictions %d", s.Spills, s.Evictions)
	}
	if s.HostEvictions > s.Spills {
		t.Fatalf("ledger: host evictions %d > spills %d", s.HostEvictions, s.Spills)
	}
}

func TestNewValidates(t *testing.T) {
	cases := []Config{
		{BlockTokens: -1, DeviceBlocks: 4},
		{DeviceBlocks: 0},
		{DeviceBlocks: -2},
		{DeviceBlocks: 4, HostSpillBlocks: -1},
		{DeviceBlocks: 4, Policy: Policy(9)},
	}
	for _, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v): want error, got nil", cfg)
		}
	}
	c := mustNew(t, Config{DeviceBlocks: 4})
	if c.BlockTokens() != 32 {
		t.Errorf("default block tokens: got %d, want 32", c.BlockTokens())
	}
}

func TestParsePolicy(t *testing.T) {
	for _, name := range Policies() {
		p, err := ParsePolicy(name)
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", name, err)
		}
		if p.String() != name {
			t.Errorf("round-trip %q: got %q", name, p.String())
		}
	}
	if _, err := ParsePolicy("mru"); err == nil {
		t.Error("ParsePolicy(mru): want error")
	}
}

// A second acquire of the same prefix hits every block the first one
// created, and the contiguous credit covers them.
func TestRepeatAcquireHits(t *testing.T) {
	c := mustNew(t, Config{BlockTokens: 16, DeviceBlocks: 32})
	g1 := c.Acquire(7, 100, false)
	// 100 tokens → (100-1)/16 = 6 blocks, all misses.
	if g1.Pinned != 6 || g1.Misses != 6 || g1.Hits != 0 || g1.CreditTokens != 0 {
		t.Fatalf("first acquire: %+v", g1)
	}
	c.Release(7, g1.Pinned)
	g2 := c.Acquire(7, 132, false)
	// 132 tokens → 8 blocks: 6 hits + 2 misses, credit 6*16.
	if g2.Pinned != 8 || g2.Hits != 6 || g2.Misses != 2 {
		t.Fatalf("second acquire: %+v", g2)
	}
	if g2.CreditTokens != 96 {
		t.Fatalf("credit: got %d, want 96", g2.CreditTokens)
	}
	checkLedger(t, c)
}

// Sessions do not share blocks: the chain hash keys on session.
func TestSessionsIsolated(t *testing.T) {
	c := mustNew(t, Config{BlockTokens: 16, DeviceBlocks: 32})
	g := c.Acquire(1, 100, false)
	c.Release(1, g.Pinned)
	g2 := c.Acquire(2, 100, false)
	if g2.Hits != 0 || g2.Misses != 6 {
		t.Fatalf("session 2 saw session 1's blocks: %+v", g2)
	}
	checkLedger(t, c)
}

// Sessionless requests and single-token prompts bypass the cache, and
// the final prompt token is never covered by a block.
func TestNoCacheCases(t *testing.T) {
	c := mustNew(t, Config{BlockTokens: 16, DeviceBlocks: 32})
	if g := c.Acquire(0, 100, false); g.Pinned != 0 {
		t.Errorf("sessionless acquire pinned %d blocks", g.Pinned)
	}
	if g := c.Acquire(3, 1, false); g.Pinned != 0 {
		t.Errorf("one-token acquire pinned %d blocks", g.Pinned)
	}
	// Exactly one block of tokens: the final token keeps it at 0 blocks.
	if g := c.Acquire(3, 16, false); g.Pinned != 0 {
		t.Errorf("16-token acquire with 16-token blocks pinned %d blocks", g.Pinned)
	}
	// One past: (17-1)/16 = 1 block.
	if g := c.Acquire(3, 17, false); g.Pinned != 1 {
		t.Errorf("17-token acquire pinned %d blocks, want 1", g.Pinned)
	}
	checkLedger(t, c)
}

// Pinned blocks never evict: with every device block pinned, a new
// acquire reports unallocated blocks instead of evicting.
func TestPinnedBlocksDoNotEvict(t *testing.T) {
	c := mustNew(t, Config{BlockTokens: 16, DeviceBlocks: 4})
	g1 := c.Acquire(1, 65, false) // 4 blocks, fills the device tier
	if g1.Pinned != 4 {
		t.Fatalf("setup: %+v", g1)
	}
	g2 := c.Acquire(2, 65, false)
	if g2.Pinned != 0 || g2.Unallocated != 4 || g2.Evicted != 0 {
		t.Fatalf("acquire against fully pinned tier: %+v", g2)
	}
	// Release session 1; session 2 can now allocate by evicting.
	c.Release(1, g1.Pinned)
	g3 := c.Acquire(2, 65, false)
	if g3.Pinned != 4 || g3.Misses != 4 || g3.Evicted != 4 {
		t.Fatalf("acquire after release: %+v", g3)
	}
	checkLedger(t, c)
}

// LRU evicts the coldest session; the reused one survives.
func TestLRUOrder(t *testing.T) {
	c := mustNew(t, Config{BlockTokens: 16, DeviceBlocks: 4})
	gA := c.Acquire(1, 33, false) // 2 blocks
	c.Release(1, gA.Pinned)
	gB := c.Acquire(2, 33, false) // 2 blocks
	c.Release(2, gB.Pinned)
	// Touch session 1 again: it becomes most recently used.
	gA2 := c.Acquire(1, 33, false)
	if gA2.Hits != 2 {
		t.Fatalf("retouch: %+v", gA2)
	}
	c.Release(1, gA2.Pinned)
	// Two new blocks must evict session 2's, not session 1's.
	g3 := c.Acquire(3, 33, false)
	c.Release(3, g3.Pinned)
	if got := c.Acquire(1, 33, false); got.Hits != 2 {
		t.Fatalf("LRU evicted the recently used session: %+v", got)
	}
	checkLedger(t, c)
}

// FIFO evicts in creation order even when the oldest block was just
// reused.
func TestFIFOOrder(t *testing.T) {
	c := mustNew(t, Config{BlockTokens: 16, DeviceBlocks: 4, Policy: FIFO})
	gA := c.Acquire(1, 33, false) // blocks born 1,2
	c.Release(1, gA.Pinned)
	gB := c.Acquire(2, 33, false) // blocks born 3,4
	c.Release(2, gB.Pinned)
	gA2 := c.Acquire(1, 33, false) // reuse does not refresh FIFO order
	c.Release(1, gA2.Pinned)
	g3 := c.Acquire(3, 33, false) // evicts session 1's blocks (oldest born)
	c.Release(3, g3.Pinned)
	if got := c.Acquire(2, 33, false); got.Hits != 2 {
		t.Fatalf("FIFO evicted the younger session: %+v", got)
	}
	checkLedger(t, c)
}

// With a host tier, evicted blocks spill and a later acquire restores
// them instead of missing.
func TestSpillAndRestore(t *testing.T) {
	c := mustNew(t, Config{BlockTokens: 16, DeviceBlocks: 4, HostSpillBlocks: 8})
	g1 := c.Acquire(1, 65, false) // 4 blocks
	c.Release(1, g1.Pinned)
	g2 := c.Acquire(2, 65, false) // evicts session 1's 4 blocks to host
	if g2.Evicted != 4 || g2.Spilled != 4 {
		t.Fatalf("spill: %+v", g2)
	}
	if c.HostResident() != 4 {
		t.Fatalf("host resident: got %d, want 4", c.HostResident())
	}
	c.Release(2, g2.Pinned)
	g3 := c.Acquire(1, 65, false)
	if g3.Restored != 4 || g3.Misses != 0 {
		t.Fatalf("restore: %+v", g3)
	}
	if g3.CreditTokens != 64 {
		t.Fatalf("restored credit: got %d, want 64", g3.CreditTokens)
	}
	checkLedger(t, c)
}

// Without a host tier the same eviction drops the blocks and the
// re-acquire misses.
func TestDropWithoutSpill(t *testing.T) {
	c := mustNew(t, Config{BlockTokens: 16, DeviceBlocks: 4})
	g1 := c.Acquire(1, 65, false)
	c.Release(1, g1.Pinned)
	g2 := c.Acquire(2, 65, false)
	if g2.Evicted != 4 || g2.Spilled != 0 {
		t.Fatalf("drop: %+v", g2)
	}
	c.Release(2, g2.Pinned)
	g3 := c.Acquire(1, 65, false)
	if g3.Misses != 4 || g3.Restored != 0 {
		t.Fatalf("re-acquire after drop: %+v", g3)
	}
	checkLedger(t, c)
}

// The host tier itself evicts when full.
func TestHostEviction(t *testing.T) {
	c := mustNew(t, Config{BlockTokens: 16, DeviceBlocks: 2, HostSpillBlocks: 2})
	for s := int64(1); s <= 3; s++ {
		g := c.Acquire(s, 33, false) // 2 blocks each, each acquire evicts the prior pair
		c.Release(s, g.Pinned)
	}
	st := c.Stats()
	if st.Spills != 4 || st.HostEvictions != 2 {
		t.Fatalf("host eviction: %+v", st)
	}
	if c.HostResident() != 2 {
		t.Fatalf("host resident: got %d, want 2", c.HostResident())
	}
	checkLedger(t, c)
}

// Regression: promoting a host block whose own promotion forces a spill
// into a full host tier must never pick the promoted block as the
// host-eviction victim. With one device block and one host block, two
// alternating sessions make every acquire a promotion whose spill lands
// in the slot the promotion just freed — no host block is ever dropped,
// and the cache keeps serving restores forever.
func TestPromoteWithFullHostTier(t *testing.T) {
	c := mustNew(t, Config{BlockTokens: 16, DeviceBlocks: 1, HostSpillBlocks: 1})
	for s := int64(1); s <= 2; s++ {
		g := c.Acquire(s, 17, false) // 1 block each; session 2 spills session 1 to host
		c.Release(s, g.Pinned)
	}
	for turn := 0; turn < 6; turn++ {
		s := int64(1 + turn%2)
		g := c.Acquire(s, 17, false)
		if g.Restored != 1 || g.Unallocated != 0 || g.HostEvicted != 0 {
			t.Fatalf("turn %d session %d: %+v", turn, s, g)
		}
		if c.DeviceResident() != 1 || c.HostResident() != 1 {
			t.Fatalf("turn %d occupancy: device %d host %d, want 1/1",
				turn, c.DeviceResident(), c.HostResident())
		}
		c.Release(s, g.Pinned)
	}
	if st := c.Stats(); st.HostEvictions != 0 {
		t.Fatalf("promotions dropped host blocks: %+v", st)
	}
	checkLedger(t, c)
}

// Transferred acquires count host promotions as hits, not restores, and
// grant no reuse credit toward the ledger's ReusedTokens.
func TestTransferredAcquire(t *testing.T) {
	c := mustNew(t, Config{BlockTokens: 16, DeviceBlocks: 4, HostSpillBlocks: 8})
	g1 := c.Acquire(1, 65, false)
	c.Release(1, g1.Pinned)
	g2 := c.Acquire(2, 65, false) // spills session 1 to host
	c.Release(2, g2.Pinned)
	g3 := c.Acquire(1, 65, true)
	if g3.Hits != 4 || g3.Restored != 0 {
		t.Fatalf("transferred promote: %+v", g3)
	}
	if got := c.Stats().ReusedTokens; got != 0 {
		t.Fatalf("transferred acquire accrued reuse credit: %d", got)
	}
	checkLedger(t, c)
}

// Peek is read-only and reports only the contiguous device-resident
// run from the prompt start.
func TestPeek(t *testing.T) {
	c := mustNew(t, Config{BlockTokens: 16, DeviceBlocks: 8, HostSpillBlocks: 8})
	before := c.Stats()
	if got := c.Peek(1, 100); got != 0 {
		t.Fatalf("peek on empty cache: %d", got)
	}
	g := c.Acquire(1, 100, false) // 6 blocks
	c.Release(1, g.Pinned)
	if got := c.Peek(1, 100); got != 96 {
		t.Fatalf("peek after fill: got %d, want 96", got)
	}
	// Shorter prompt peeks fewer blocks.
	if got := c.Peek(1, 33); got != 32 {
		t.Fatalf("short peek: got %d, want 32", got)
	}
	after := c.Stats()
	// Only the Acquire moved the ledger; the Peeks did not.
	if after.Lookups != before.Lookups+6 {
		t.Fatalf("peek moved the ledger: %+v → %+v", before, after)
	}
	if c.Peek(0, 100) != 0 {
		t.Fatal("sessionless peek must be 0")
	}
	var nilCache *Cache
	if nilCache.Peek(1, 100) != 0 {
		t.Fatal("nil-cache peek must be 0")
	}
}

// Shared pins: two in-flight requests of one session share refcounts;
// blocks free only after both release.
func TestSharedPins(t *testing.T) {
	c := mustNew(t, Config{BlockTokens: 16, DeviceBlocks: 4})
	gA := c.Acquire(1, 65, false)
	gB := c.Acquire(1, 65, false)
	if gB.Hits != 4 {
		t.Fatalf("second in-flight acquire: %+v", gB)
	}
	c.Release(1, gA.Pinned)
	// Still pinned by B: a foreign acquire cannot evict.
	g2 := c.Acquire(2, 65, false)
	if g2.Unallocated != 4 {
		t.Fatalf("eviction under shared pin: %+v", g2)
	}
	c.Release(1, gB.Pinned)
	g3 := c.Acquire(2, 65, false)
	if g3.Misses != 4 {
		t.Fatalf("acquire after full release: %+v", g3)
	}
	checkLedger(t, c)
}

// Two identical operation sequences produce identical ledgers and
// occupancy — no hidden nondeterminism.
func TestDeterministicReplay(t *testing.T) {
	run := func() (Stats, int, int) {
		c := mustNew(t, Config{BlockTokens: 16, DeviceBlocks: 6, HostSpillBlocks: 4})
		for i := 0; i < 50; i++ {
			s := int64(i%5 + 1)
			g := c.Acquire(s, int64(40+i*7%120), false)
			if i%3 != 0 {
				c.Release(s, g.Pinned)
			}
		}
		return c.Stats(), c.DeviceResident(), c.HostResident()
	}
	s1, d1, h1 := run()
	s2, d2, h2 := run()
	if s1 != s2 || d1 != d2 || h1 != h2 {
		t.Fatalf("replay diverged: %+v/%d/%d vs %+v/%d/%d", s1, d1, h1, s2, d2, h2)
	}
}
