package spec

import (
	"path/filepath"
	"testing"
)

// TestExampleSpecsValidate walks every shipped example spec and runs it
// through Load + Validate: a spec that no longer parses or validates is
// a broken example (and would fail the CI smoke run anyway — this test
// fails faster and names the file). Trace files referenced by the
// specs must load too, so checked-in artifacts stay consistent.
func TestExampleSpecsValidate(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "specs", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no example specs found under examples/specs/")
	}
	for _, path := range paths {
		s, err := Load(path)
		if err != nil {
			t.Errorf("%s: %v", filepath.Base(path), err)
			continue
		}
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", filepath.Base(path), err)
		}
		if s.Workload != nil && s.Workload.TraceFile != "" {
			if _, err := s.requests(); err != nil {
				t.Errorf("%s: trace artifact: %v", filepath.Base(path), err)
			}
		}
	}
}
