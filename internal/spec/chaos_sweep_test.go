package spec

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// chaosFleetBase is a one-instance fleet with an autoscale controller
// and a scheduled crash — every dynamic-lifecycle mechanism a sweep
// point can exercise.
func chaosFleetBase(t *testing.T) *Spec {
	t.Helper()
	s, err := Parse([]byte(`{
	  "model": "llama-3.2-1B",
	  "workload": {
	    "scenario": "chat",
	    "requests": 30,
	    "rate_per_sec": 200,
	    "seed": 7,
	    "prompt": {"mean": 128, "sigma": 0.5, "min": 32, "max": 256},
	    "output": {"mean": 8, "sigma": 0.4, "min": 4, "max": 16}
	  },
	  "serve": {
	    "max_batch": 8,
	    "seq": 256,
	    "latency_bucket": 256,
	    "ttft_slo_ms": 500
	  },
	  "fleet": {
	    "groups": [{"platform": "GH200", "count": 2}],
	    "router": "least-queue",
	    "autoscale": {
	      "platform": "GH200",
	      "target": 2,
	      "max": 4,
	      "interval_ms": 10,
	      "cooldown_ms": 10,
	      "spin_up_delay_ms": 20
	    },
	    "faults": {
	      "schedule": [{"at_ms": 40, "kind": "crash", "instance": 0}]
	    }
	  }
	}`))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestChaosSweepParallelDeterminism: sweeping the autoscale setpoint —
// each point running its own joins, drains, and a crash — on a
// multi-worker pool must be byte-identical to the one-worker run, and
// every point's report must carry the churn ledger with its fleet-size
// series. Run under -race in CI, this also proves the dynamic-lifecycle
// state (calendar, membership, routers, fault plan) is per-point.
func TestChaosSweepParallelDeterminism(t *testing.T) {
	s := chaosFleetBase(t)
	s.Sweep = &SweepSpec{Field: "fleet.autoscale.target", Values: []any{1.0, 2.0, 4.0, 8.0}}

	parallel, err := Simulate(s, WithSweepWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Simulate(s, WithSweepWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	pj, err := ReportJSON(parallel)
	if err != nil {
		t.Fatal(err)
	}
	sj, err := ReportJSON(serial)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pj, sj) {
		t.Error("parallel chaos sweep report is not byte-identical to the one-worker run")
	}
	if len(parallel.Sweep) != 4 {
		t.Fatalf("series has %d points, want 4", len(parallel.Sweep))
	}
	for i, pt := range parallel.Sweep {
		c := pt.Report.Cluster
		if c == nil {
			t.Fatalf("point %d has no cluster report", i)
		}
		if c.Chaos == nil {
			t.Fatalf("point %d report omits the churn ledger", i)
		}
		if len(c.Chaos.FleetSize) == 0 {
			t.Errorf("point %d has an empty fleet-size series", i)
		}
		if c.Chaos.Crashes != 1 {
			t.Errorf("point %d recorded %d crashes, want the 1 scheduled", i, c.Chaos.Crashes)
		}
	}
	// The swept knob must actually steer the controller: the extreme
	// setpoints cannot produce identical fleet trajectories.
	lo, hi := parallel.Sweep[0].Report.Cluster.Chaos, parallel.Sweep[3].Report.Cluster.Chaos
	if reflect.DeepEqual(lo.FleetSize, hi.FleetSize) {
		t.Error("target 1 and target 8 produced identical fleet-size series — the setpoint is not steering")
	}
}

// TestChaosSpecValidation walks the autoscale and faults sections'
// failure modes; every error must name the offending field by JSON
// path.
func TestChaosSpecValidation(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(s *Spec)
		wantErr string
	}{
		{"autoscale without platform", func(s *Spec) { s.Fleet.Autoscale.Platform = "" }, "fleet.autoscale.platform"},
		{"unknown autoscale platform", func(s *Spec) { s.Fleet.Autoscale.Platform = "TPU" }, "fleet.autoscale.platform"},
		{"unknown signal", func(s *Spec) { s.Fleet.Autoscale.Signal = "vibes" }, "fleet.autoscale.signal"},
		{"transfer-queue without disagg", func(s *Spec) { s.Fleet.Autoscale.Signal = "transfer-queue" }, "fleet.autoscale.signal"},
		{"zero target", func(s *Spec) { s.Fleet.Autoscale.Target = 0 }, "fleet.autoscale.target"},
		{"slo target above one", func(s *Spec) {
			s.Fleet.Autoscale.Signal = "slo-attainment"
			s.Fleet.Autoscale.Target = 1.5
		}, "fleet.autoscale.target"},
		{"zero max", func(s *Spec) { s.Fleet.Autoscale.Max = 0 }, "fleet.autoscale.max"},
		{"min above max", func(s *Spec) { s.Fleet.Autoscale.Min = 9 }, "fleet.autoscale.min"},
		{"negative interval", func(s *Spec) { s.Fleet.Autoscale.IntervalMs = -1 }, "fleet.autoscale.interval_ms"},
		{"role without disagg", func(s *Spec) { s.Fleet.Autoscale.Role = "decode" }, "fleet.autoscale.role"},
		{"empty faults section", func(s *Spec) { s.Fleet.Faults.Schedule = nil }, "fleet.faults"},
		{"negative crash rate", func(s *Spec) {
			s.Fleet.Faults.Schedule = nil
			s.Fleet.Faults.CrashRatePerSec = -1
		}, "fleet.faults.crash_rate_per_sec"},
		{"negative fault time", func(s *Spec) { s.Fleet.Faults.Schedule[0].AtMs = -5 }, "fleet.faults.schedule[0].at_ms"},
		{"unknown fault kind", func(s *Spec) { s.Fleet.Faults.Schedule[0].Kind = "gremlin" }, "fleet.faults.schedule[0].kind"},
		{"negative fault target", func(s *Spec) { s.Fleet.Faults.Schedule[0].Instance = -1 }, "fleet.faults.schedule[0].instance"},
		{"crash with factor", func(s *Spec) { s.Fleet.Faults.Schedule[0].Factor = 2 }, "fleet.faults.schedule[0]"},
		{"slow-node factor below one", func(s *Spec) {
			s.Fleet.Faults.Schedule[0].Kind = "slow-node"
			s.Fleet.Faults.Schedule[0].Factor = 0.5
		}, "fleet.faults.schedule[0].factor"},
		{"link fault without disagg", func(s *Spec) {
			s.Fleet.Faults.Schedule[0].Kind = "link-degraded"
			s.Fleet.Faults.Schedule[0].Factor = 2
		}, "fleet.faults.schedule[0].kind"},
	}
	for _, tc := range cases {
		s := chaosFleetBase(t)
		tc.mutate(s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: Validate should fail", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}

	// slo-attainment needs a TTFT SLO to measure against.
	s := chaosFleetBase(t)
	s.Fleet.Autoscale.Signal = "slo-attainment"
	s.Fleet.Autoscale.Target = 0.9
	s.Serve.TTFTSLOMs = 0
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "ttft_slo_ms") {
		t.Errorf("slo-attainment without an SLO: %v", err)
	}

	// overlap_fraction is validated in [0,1).
	for _, bad := range []float64{-0.1, 1, 2} {
		s := chaosFleetBase(t)
		s.Fleet.Router = ""
		s.Fleet.Groups[0].Role = "prefill"
		s.Fleet.Groups = append(s.Fleet.Groups, FleetGroupSpec{Platform: "Intel+H100", Count: 1, Role: "decode"})
		s.Fleet.Autoscale = nil
		s.Fleet.Faults = nil
		s.Fleet.Disaggregation = &DisaggregationSpec{OverlapFraction: bad}
		if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "overlap_fraction") {
			t.Errorf("overlap fraction %g: %v", bad, err)
		}
	}
}
