package spec

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/skipsim/skip/internal/hw"
	"github.com/skipsim/skip/internal/serve"
)

// testDisaggSpec is a small disaggregated fleet: coupled prefill pool,
// discrete decode pool.
func testDisaggSpec() *Spec {
	s := testServeSpec()
	s.Platform = ""
	s.Fleet = &FleetSpec{
		Groups: []FleetGroupSpec{
			{Platform: hw.GH200Name, Count: 1, Role: "prefill"},
			{Platform: hw.IntelH100Name, Count: 1, Role: "decode"},
		},
		Disaggregation: &DisaggregationSpec{},
	}
	return s
}

func TestDisaggSpecValidation(t *testing.T) {
	good := testDisaggSpec()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid disagg spec rejected: %v", err)
	}
	if good.Kind() != KindDisagg {
		t.Fatalf("kind = %v, want disagg", good.Kind())
	}

	cases := []struct {
		name    string
		mutate  func(*Spec)
		wantErr string
	}{
		{"role without disaggregation", func(s *Spec) { s.Fleet.Disaggregation = nil }, "fleet.groups[0].role"},
		{"unknown role", func(s *Spec) { s.Fleet.Groups[0].Role = "prefil" }, "unknown role"},
		{"no decode pool", func(s *Spec) { s.Fleet.Groups[1].Role = "prefill" }, "no decode-capable"},
		{"no prefill pool", func(s *Spec) { s.Fleet.Groups[0].Role = "decode" }, "no prefill-capable"},
		{"fleet router conflicts", func(s *Spec) { s.Fleet.Router = "least-queue" }, "per pool"},
		{"bad prefill router", func(s *Spec) { s.Fleet.Disaggregation.PrefillRouter = "fastest" }, "prefill_router"},
		{"bad decode router", func(s *Spec) { s.Fleet.Disaggregation.DecodeRouter = "fastest" }, "decode_router"},
		{"negative host hop", func(s *Spec) { s.Fleet.Disaggregation.HostHopMultiplier = -1 }, "host_hop_multiplier"},
		{"negative bandwidth", func(s *Spec) { s.Fleet.Disaggregation.BandwidthGBps = -4 }, "bandwidth_gbps"},
		{"duplicate platform same role", func(s *Spec) {
			s.Fleet.Groups = append(s.Fleet.Groups, FleetGroupSpec{Platform: hw.GH200Name, Count: 1, Role: "prefill"})
		}, "appears twice"},
	}
	for _, c := range cases {
		s := testDisaggSpec()
		c.mutate(s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: spec should fail validation", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q should mention %q", c.name, err, c.wantErr)
		}
	}

	// The same platform may serve both pools — one group per role.
	split := testDisaggSpec()
	split.Fleet.Groups = []FleetGroupSpec{
		{Platform: hw.GH200Name, Count: 1, Role: "prefill"},
		{Platform: hw.GH200Name, Count: 1, Role: "decode"},
	}
	if err := split.Validate(); err != nil {
		t.Errorf("per-role platform split rejected: %v", err)
	}
}

func TestSimulateDisaggDispatch(t *testing.T) {
	rep, err := Simulate(testDisaggSpec())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != KindDisagg || rep.Disagg == nil || rep.Cluster != nil || rep.Serve != nil {
		t.Fatalf("disagg spec: kind %v, sections disagg=%v cluster=%v serve=%v",
			rep.Kind, rep.Disagg != nil, rep.Cluster != nil, rep.Serve != nil)
	}
	st := rep.Disagg
	if st.Offered != 10 || st.Completed != 10 {
		t.Errorf("ledger: offered %d completed %d", st.Offered, st.Completed)
	}
	if st.HandedOff == 0 || st.HandedOff != st.Resumed+st.TransferDrops {
		t.Errorf("handoffs %d, resumed %d, drops %d", st.HandedOff, st.Resumed, st.TransferDrops)
	}
	if st.PrefillPolicy != "least-queue" || st.DecodePolicy != "least-kv" {
		t.Errorf("default pool policies = %s / %s", st.PrefillPolicy, st.DecodePolicy)
	}
}

// TestDisaggSpecRoundTrip: Save∘Load is the identity for the new
// sections.
func TestDisaggSpecRoundTrip(t *testing.T) {
	s := testDisaggSpec()
	s.Fleet.Disaggregation.HostHopMultiplier = 1.5
	s.Fleet.Disaggregation.BandwidthGBps = 128
	path := filepath.Join(t.TempDir(), "disagg.json")
	if err := Save(s, path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	s.baseDir, back.baseDir = "", ""
	if !reflect.DeepEqual(s, back) {
		t.Errorf("round trip changed the spec:\n  saved  %+v\n  loaded %+v", s, back)
	}
}

// TestObserverEventOrderGolden pins the deterministic per-request
// lifecycle sequences on the observer stream — the serve path's
// arrival → admitted → first-token → completed and the disaggregated
// path extended with routing and the kv-transfer pair — and checks the
// full stream reproduces event-for-event across runs.
func TestObserverEventOrderGolden(t *testing.T) {
	collect := func(s *Spec) []serve.Event {
		var events []serve.Event
		if _, err := Simulate(s, WithObserver(func(e serve.Event) { events = append(events, e) })); err != nil {
			t.Fatal(err)
		}
		// Strict Seq ordering: the stamp numbers the stream 1, 2, 3, …
		// with no gaps or repeats.
		for i, e := range events {
			if e.Seq != int64(i+1) {
				t.Fatalf("event %d has Seq %d, want %d", i, e.Seq, i+1)
			}
		}
		return events
	}
	perRequest := func(events []serve.Event) map[int][]string {
		seqs := make(map[int][]string)
		for _, e := range events {
			if e.Type == serve.EventProgress {
				continue
			}
			seqs[e.RequestID] = append(seqs[e.RequestID], e.Type.String())
		}
		return seqs
	}

	// One serving instance: no routing, no transfers.
	serveEvents := collect(testServeSpec())
	want := []string{"arrival", "admitted", "first-token", "completed"}
	for id, seq := range perRequest(serveEvents) {
		if !reflect.DeepEqual(seq, want) {
			t.Errorf("serve request %d lifecycle = %v, want %v", id, seq, want)
		}
	}

	// A disaggregated fleet: the front door routes, prefill emits the
	// first token, the KV transfer bridges to the decode instance where
	// the request arrives again, re-admits, and completes.
	disaggEvents := collect(testDisaggSpec())
	wantDisagg := []string{"routed", "arrival", "admitted", "first-token",
		"kv-transfer-start", "kv-transfer-done", "arrival", "admitted", "completed"}
	for id, seq := range perRequest(disaggEvents) {
		if !reflect.DeepEqual(seq, wantDisagg) {
			t.Errorf("disagg request %d lifecycle = %v, want %v", id, seq, wantDisagg)
		}
	}

	// The whole stream — order, timestamps, instances, links — must
	// reproduce exactly.
	if again := collect(testDisaggSpec()); !reflect.DeepEqual(disaggEvents, again) {
		t.Error("rerun produced a different event stream")
	}
}

// TestReportJSON: the shared marshaller renders a stable, stringly-
// kinded document.
func TestReportJSON(t *testing.T) {
	rep, err := Simulate(testDisaggSpec())
	if err != nil {
		t.Fatal(err)
	}
	a, err := ReportJSON(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(a, []byte(`"kind": "disagg"`)) {
		t.Errorf("report JSON should name its kind; got prefix %.120s", a)
	}
	if !bytes.Contains(a, []byte(`"disagg": {`)) || bytes.Contains(a, []byte(`"cluster"`)) {
		t.Error("report JSON should carry exactly the populated section")
	}
	b, err := ReportJSON(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("marshalling is not stable")
	}
}
