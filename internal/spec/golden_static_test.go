package spec

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestStaticReportsBitIdentical is the lifecycle refactor's core
// invariant: a spec with no fleet.autoscale and no fleet.faults section
// must produce a Report byte-identical to the pre-refactor static path.
// The goldens under testdata/ were captured from the shipped example
// specs before instances could join or leave a running calendar; any
// diff here means the dynamic-membership machinery leaked into the
// static code path (a new JSON field, a changed routing decision, a
// perturbed event order).
func TestStaticReportsBitIdentical(t *testing.T) {
	cases := []struct {
		spec   string
		golden string
	}{
		{"fleet_replay.json", "golden_fleet_replay.json"},
		{"disagg_chat.json", "golden_disagg_chat.json"},
	}
	for _, tc := range cases {
		t.Run(tc.spec, func(t *testing.T) {
			s, err := Load(filepath.Join("..", "..", "examples", "specs", tc.spec))
			if err != nil {
				t.Fatal(err)
			}
			rep, err := Simulate(s)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ReportJSON(rep)
			if err != nil {
				t.Fatal(err)
			}
			want, err := os.ReadFile(filepath.Join("testdata", tc.golden))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("report diverged from the pre-refactor golden %s (%d bytes vs %d); the static path must stay bit-identical",
					tc.golden, len(got), len(want))
			}
		})
	}
}
