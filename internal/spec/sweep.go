package spec

import (
	"encoding/json"
	"fmt"
	"math"
	"reflect"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// The sweep engine. A sweep names one leaf of the document by its JSON
// path and a value series; Simulate clones the base spec once per
// value, substitutes the leaf, and runs every point as an independent
// experiment. Because each point is a fully deterministic simulation
// sharing no state with its neighbors, the points execute concurrently
// on a bounded worker pool and the series is reassembled in value
// order — the resulting Report is bit-identical to a serial run, so
// parallelism is purely a wall-clock win (the repo's first).

// SweepPoint is one entry of a sweep series: the substituted value and
// the point's full Report.
type SweepPoint struct {
	Value  any     `json:"value"`
	Report *Report `json:"report"`
}

// pathSeg is one segment of a JSON path: a field name with an optional
// list index ("groups[2]").
type pathSeg struct {
	name string
	idx  int // -1 when the segment carries no index
}

// splitPath parses a JSON path like "fleet.groups[0].count" into
// segments.
func splitPath(path string) ([]pathSeg, error) {
	parts := strings.Split(path, ".")
	segs := make([]pathSeg, 0, len(parts))
	for _, raw := range parts {
		seg := pathSeg{name: raw, idx: -1}
		if i := strings.IndexByte(raw, '['); i >= 0 {
			n, err := strconv.Atoi(strings.TrimSuffix(raw[i+1:], "]"))
			if !strings.HasSuffix(raw, "]") || err != nil || n < 0 {
				return nil, fmt.Errorf("malformed index in segment %q", raw)
			}
			seg.name, seg.idx = raw[:i], n
		}
		if seg.name == "" {
			return nil, fmt.Errorf("empty segment in path %q", path)
		}
		segs = append(segs, seg)
	}
	return segs, nil
}

// fieldByJSONTag finds the struct field whose json tag names seg.
func fieldByJSONTag(v reflect.Value, name string) (reflect.Value, bool) {
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		sf := t.Field(i)
		if sf.PkgPath != "" {
			continue // unexported (baseDir)
		}
		if tag, _, _ := strings.Cut(sf.Tag.Get("json"), ","); tag == name {
			return v.Field(i), true
		}
	}
	return reflect.Value{}, false
}

// resolveField walks the spec document along a JSON path and returns
// the addressed leaf, settable in place. The walk fails on unknown
// field names, sections absent from the base document, out-of-range
// indices, and targets that are not numeric or string leaves.
func resolveField(s *Spec, path string) (reflect.Value, error) {
	segs, err := splitPath(path)
	if err != nil {
		return reflect.Value{}, err
	}
	v := reflect.ValueOf(s).Elem()
	walked := "" // the path resolved so far, for error messages
	for _, seg := range segs {
		for v.Kind() == reflect.Pointer {
			if v.IsNil() {
				return reflect.Value{}, fmt.Errorf("section %q is not present in the base document", walked)
			}
			v = v.Elem()
		}
		if v.Kind() != reflect.Struct {
			return reflect.Value{}, fmt.Errorf("%q does not contain fields", walked)
		}
		f, ok := fieldByJSONTag(v, seg.name)
		if !ok {
			where := "the document root"
			if walked != "" {
				where = fmt.Sprintf("%q", walked)
			}
			return reflect.Value{}, fmt.Errorf("no field %q under %s", seg.name, where)
		}
		if walked != "" {
			walked += "."
		}
		walked += seg.name
		v = f
		if seg.idx >= 0 {
			for v.Kind() == reflect.Pointer {
				if v.IsNil() {
					return reflect.Value{}, fmt.Errorf("section %q is not present in the base document", walked)
				}
				v = v.Elem()
			}
			if v.Kind() != reflect.Slice {
				return reflect.Value{}, fmt.Errorf("%q is not a list", walked)
			}
			if seg.idx >= v.Len() {
				return reflect.Value{}, fmt.Errorf("index %d out of range for %q (%d entries)", seg.idx, walked, v.Len())
			}
			v = v.Index(seg.idx)
			walked += fmt.Sprintf("[%d]", seg.idx)
		}
	}
	for v.Kind() == reflect.Pointer {
		if v.IsNil() {
			return reflect.Value{}, fmt.Errorf("section %q is not present in the base document", walked)
		}
		v = v.Elem()
	}
	switch v.Kind() {
	case reflect.String, reflect.Int, reflect.Int32, reflect.Int64,
		reflect.Float32, reflect.Float64:
		return v, nil
	}
	return reflect.Value{}, fmt.Errorf("%q is not a numeric or string leaf (it is a %s)", walked, v.Kind())
}

// toFloat widens any numeric sweep value. JSON decoding always yields
// float64; in-code callers may hand over native integer types.
func toFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case float32:
		return float64(x), true
	case int:
		return float64(x), true
	case int32:
		return float64(x), true
	case int64:
		return float64(x), true
	case json.Number:
		f, err := x.Float64()
		return f, err == nil
	}
	return 0, false
}

// setLeaf writes one sweep value into a resolved leaf, enforcing type
// compatibility: string leaves take strings, integer leaves take
// integral numbers, float leaves take any number.
func setLeaf(leaf reflect.Value, v any) error {
	switch leaf.Kind() {
	case reflect.String:
		s, ok := v.(string)
		if !ok {
			return fmt.Errorf("the field is a string, got %T value %v", v, v)
		}
		leaf.SetString(s)
	case reflect.Int, reflect.Int32, reflect.Int64:
		f, ok := toFloat(v)
		if !ok {
			return fmt.Errorf("the field is an integer, got %T value %v", v, v)
		}
		if f != math.Trunc(f) {
			return fmt.Errorf("the field is an integer, got non-integral %g", f)
		}
		// Range-check in float space first: int64(f) is implementation-
		// defined for out-of-range floats (MinInt64 on amd64), which
		// would slip past OverflowInt as a silently wrong value.
		if f < math.MinInt64 || f >= math.MaxInt64 {
			return fmt.Errorf("value %g overflows the field", f)
		}
		if leaf.OverflowInt(int64(f)) {
			return fmt.Errorf("value %g overflows the field", f)
		}
		leaf.SetInt(int64(f))
	case reflect.Float32, reflect.Float64:
		f, ok := toFloat(v)
		if !ok {
			return fmt.Errorf("the field is numeric, got %T value %v", v, v)
		}
		leaf.SetFloat(f)
	default:
		return fmt.Errorf("field kind %s is not sweepable", leaf.Kind())
	}
	return nil
}

// checkAssignable type-checks a sweep value against a leaf without
// mutating the document: setLeaf against a scratch copy of the leaf's
// type.
func checkAssignable(leaf reflect.Value, v any) error {
	return setLeaf(reflect.New(leaf.Type()).Elem(), v)
}

// maxSweepSteps bounds the range form: beyond it a typoed steps value
// would allocate the series (and launch that many simulations) before
// anything useful happened. Explicit value lists carry their own cost
// in the document and are not capped.
const maxSweepSteps = 10000

// points materializes the sweep's value series: the explicit list, or
// Steps points from From to To spaced by Scale. Validate guarantees
// exactly one form is present and well-formed.
func (sw *SweepSpec) points() []any {
	if len(sw.Values) > 0 {
		return sw.Values
	}
	vals := make([]any, sw.Steps)
	for i := range vals {
		frac := float64(i) / float64(sw.Steps-1)
		if sw.Scale == "log" {
			vals[i] = sw.From * math.Pow(sw.To/sw.From, frac)
		} else {
			vals[i] = sw.From + (sw.To-sw.From)*frac
		}
	}
	return vals
}

// rangeForm reports whether any range-form knob is set (Values absent
// alone does not distinguish "range" from "forgot both").
func (sw *SweepSpec) rangeForm() bool {
	return sw.From != 0 || sw.To != 0 || sw.Steps != 0 || sw.Scale != ""
}

// clone deep-copies the spec through its JSON form — the document is
// fully JSON-serializable by construction — preserving the unexported
// base directory so relative trace_file / platform_file references keep
// resolving.
func (s *Spec) clone() (*Spec, error) {
	data, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("spec: cloning sweep base: %w", err)
	}
	c := &Spec{}
	if err := json.Unmarshal(data, c); err != nil {
		return nil, fmt.Errorf("spec: cloning sweep base: %w", err)
	}
	c.baseDir = s.baseDir
	return c, nil
}

// pointSpec builds the document one sweep point simulates: the base
// cloned, the swept leaf substituted, the sweep section removed.
func (s *Spec) pointSpec(v any) (*Spec, error) {
	c, err := s.clone()
	if err != nil {
		return nil, err
	}
	c.Sweep = nil
	// Metrics are extracted once over the assembled series; a point
	// carrying the report section would duplicate them per point.
	c.Report = nil
	leaf, err := resolveField(c, s.Sweep.Field)
	if err != nil {
		return nil, err
	}
	if err := setLeaf(leaf, v); err != nil {
		return nil, err
	}
	return c, nil
}

// pointOptions rebuilds the option list a sweep point's Simulate call
// inherits. The worker knob stays at the sweep level; the profile flag
// does too (one MemStats envelope around the whole sweep), but the
// event counter is shared so every point's events land in the parent
// tally — atomic, so concurrent workers may bump it freely.
func pointOptions(o *options) []Option {
	var opts []Option
	if o.observer != nil {
		opts = append(opts, WithObserver(o.observer))
		if o.progressEvery > 0 {
			opts = append(opts, WithProgressEvery(o.progressEvery))
		}
	}
	if o.counter != nil {
		opts = append(opts, withCounter(o.counter))
	}
	return opts
}

// simulateSweep runs every sweep point and assembles the ordered
// series. Points run concurrently on a bounded worker pool; results
// land in per-point slots, so the assembled Report (and the first
// error, chosen in value order) is identical to a serial run. An
// observer forces one worker: the event stream then arrives point by
// point in value order instead of interleaved across goroutines.
func (s *Spec) simulateSweep(o *options) (*Report, error) {
	pts := s.Sweep.points()
	workers := o.sweepWorkers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if o.observer != nil {
		workers = 1
	}
	if workers > len(pts) {
		workers = len(pts)
	}

	field := s.Sweep.Field
	reports := make([]*Report, len(pts))
	errs := make([]error, len(pts))
	// minFail tracks the lowest failed point index so the pool stops
	// burning compute on a sweep that already died. A point is skipped
	// only when a strictly lower index has failed, so the lowest failing
	// point always runs and the returned error is deterministic — the
	// same one a serial run would report.
	var minFail atomic.Int64
	minFail.Store(int64(len(pts)))
	runPoint := func(i int) {
		if minFail.Load() < int64(i) {
			return
		}
		pt, err := s.pointSpec(pts[i])
		if err == nil {
			reports[i], err = Simulate(pt, pointOptions(o)...)
		}
		if err != nil {
			errs[i] = fmt.Errorf("sweep point %d (%s = %v): %w", i, field, pts[i], err)
			for {
				cur := minFail.Load()
				if int64(i) >= cur || minFail.CompareAndSwap(cur, int64(i)) {
					break
				}
			}
		}
	}
	if workers == 1 {
		for i := range pts {
			runPoint(i)
			if errs[i] != nil {
				break
			}
		}
	} else {
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for i := range pts {
			wg.Add(1)
			//skiplint:allow goroutine — the sweep worker pool: each point simulates an independent spec clone and lands in its own slot; reassembly is by index, proven bit-identical to serial at any worker count
			go func(i int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				runPoint(i)
			}(i)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	series := make([]SweepPoint, len(pts))
	for i := range pts {
		series[i] = SweepPoint{Value: pts[i], Report: reports[i]}
	}
	return &Report{Kind: KindSweep, SweepField: field, Sweep: series}, nil
}
