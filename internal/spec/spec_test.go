package spec

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// serveSpecJSON is a fully-populated serve spec document.
const serveSpecJSON = `{
  "platform": "GH200",
  "model": "llama-3.2-1B",
  "mode": "eager",
  "workload": {
    "scenario": "chat",
    "requests": 12,
    "rate_per_sec": 20,
    "seed": 7,
    "prompt": {"mean": 256, "sigma": 0.5, "min": 32, "max": 512},
    "output": {"mean": 32, "sigma": 0.4, "min": 4, "max": 64}
  },
  "serve": {
    "policy": "continuous",
    "max_batch": 16,
    "seq": 256,
    "latency_bucket": 256,
    "ttft_slo_ms": 500
  }
}`

func TestSpecRoundTrip(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "a.json")
	if err := os.WriteFile(src, []byte(serveSpecJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	first, err := Load(src)
	if err != nil {
		t.Fatal(err)
	}
	saved := filepath.Join(dir, "b.json")
	if err := Save(first, saved); err != nil {
		t.Fatal(err)
	}
	second, err := Load(saved)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("Load∘Save∘Load is not the identity:\n first %+v\nsecond %+v", first, second)
	}
	third, err := Parse([]byte(serveSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Workload, third.Workload) || !reflect.DeepEqual(first.Serve, third.Serve) {
		t.Error("Parse and Load disagree on the same document")
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	for name, doc := range map[string]string{
		"top-level": `{"platform": "GH200", "model": "llama-3.2-1B", "bogus": 1,
			"run": {"batch": 1, "seq": 128}}`,
		"nested serve": `{"platform": "GH200", "model": "llama-3.2-1B",
			"workload": {"requests": 4, "rate_per_sec": 1},
			"serve": {"polcy": "continuous"}}`,
		"nested workload": `{"platform": "GH200", "model": "llama-3.2-1B",
			"workload": {"requests": 4, "rate": 1}, "serve": {}}`,
		"trailing content": `{"platform": "GH200", "model": "llama-3.2-1B",
			"run": {"batch": 1, "seq": 128}} {"again": true}`,
	} {
		if _, err := Parse([]byte(doc)); err == nil {
			t.Errorf("%s: Parse should reject the document", name)
		}
	}
}

func TestValidateErrorPaths(t *testing.T) {
	base := func() *Spec {
		s, err := Parse([]byte(serveSpecJSON))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	cases := []struct {
		name     string
		mutate   func(*Spec)
		wantPath string
	}{
		{"no sections", func(s *Spec) { s.Workload, s.Serve = nil, nil }, "needs a run, serve, or fleet"},
		{"run plus serve", func(s *Spec) { s.Run = &RunSpec{Batch: 1, Seq: 128} }, "run"},
		{"missing workload", func(s *Spec) { s.Workload = nil }, "workload"},
		{"missing model", func(s *Spec) { s.Model = "" }, "model"},
		{"unknown model", func(s *Spec) { s.Model = "nope" }, "model"},
		{"unknown mode", func(s *Spec) { s.Mode = "warp" }, "mode"},
		{"unknown platform", func(s *Spec) { s.Platform = "nope" }, "platform"},
		{"missing platform", func(s *Spec) { s.Platform = "" }, "platform"},
		{"both platforms", func(s *Spec) { s.PlatformFile = "x.json" }, "platform"},
		{"bad rate", func(s *Spec) { s.Workload.RatePerSec = -3 }, "workload.rate_per_sec"},
		{"bad requests", func(s *Spec) { s.Workload.Requests = 0 }, "workload.requests"},
		{"bad scenario", func(s *Spec) { s.Workload.Scenario = "nope" }, "workload.scenario"},
		{"bad arrival", func(s *Spec) {
			s.Workload.Scenario, s.Workload.Arrival = "", "sometimes"
			s.Workload.Prompt, s.Workload.Output = nil, nil
		}, "workload.arrival"},
		{"bad prompt mean", func(s *Spec) { s.Workload.Prompt.Mean = 0 }, "workload.prompt.mean"},
		{"interval on scenario", func(s *Spec) { s.Workload.IntervalMs = 50 }, "workload.interval_ms"},
		{"turns on chat", func(s *Spec) { s.Workload.Turns = 8 }, "workload.turns"},
		{"bad policy", func(s *Spec) { s.Serve.Policy = "nope" }, "serve.policy"},
		{"bad kv util", func(s *Spec) { s.Serve.KVMemoryUtil = 1.5 }, "serve.kv_memory_util"},
		{"bad slo", func(s *Spec) { s.Serve.TTFTSLOMs = -1 }, "serve.ttft_slo_ms"},
		{"prefill-only scenario", func(s *Spec) { s.Serve.Policy = "static"; s.Serve.BatchSize = 4 }, "serve.policy"},
		{"trace plus scenario", func(s *Spec) { s.Workload.TraceFile = "t.csv" }, "workload.trace_file"},
	}
	for _, tc := range cases {
		s := base()
		tc.mutate(s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: Validate should fail", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantPath) {
			t.Errorf("%s: error %q does not name %q", tc.name, err, tc.wantPath)
		}
	}
}

func TestValidateFleet(t *testing.T) {
	base := func() *Spec {
		s, err := Parse([]byte(serveSpecJSON))
		if err != nil {
			t.Fatal(err)
		}
		s.Platform = ""
		s.Fleet = &FleetSpec{Groups: []FleetGroupSpec{
			{Platform: "GH200", Count: 1},
			{Platform: "Intel+H100", Count: 2},
		}}
		return s
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("fleet spec should validate: %v", err)
	}
	cases := []struct {
		name     string
		mutate   func(*Spec)
		wantPath string
	}{
		{"top-level platform", func(s *Spec) { s.Platform = "GH200" }, "platform"},
		{"no groups", func(s *Spec) { s.Fleet.Groups = nil }, "fleet.groups"},
		{"zero count", func(s *Spec) { s.Fleet.Groups[0].Count = 0 }, "fleet.groups[0].count"},
		{"unknown group platform", func(s *Spec) { s.Fleet.Groups[1].Platform = "nope" }, "fleet.groups[1].platform"},
		{"duplicate platform", func(s *Spec) { s.Fleet.Groups[1].Platform = "GH200" }, "fleet.groups[1].platform"},
		{"bad router", func(s *Spec) { s.Fleet.Router = "nope" }, "fleet.router"},
		{"bad admit rate", func(s *Spec) { s.Fleet.AdmitRatePerSec = -1 }, "fleet.admit_rate_per_sec"},
		{"legacy policy in fleet", func(s *Spec) { s.Serve.Policy = "greedy" }, "serve.policy"},
	}
	for _, tc := range cases {
		s := base()
		tc.mutate(s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: Validate should fail", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantPath) {
			t.Errorf("%s: error %q does not name %q", tc.name, err, tc.wantPath)
		}
	}
}

func TestKindSelection(t *testing.T) {
	run := &Spec{Run: &RunSpec{Batch: 1, Seq: 128}}
	srv := &Spec{Serve: &ServeSpec{}}
	fleet := &Spec{Serve: &ServeSpec{}, Fleet: &FleetSpec{}}
	if run.Kind() != KindRun || srv.Kind() != KindServe || fleet.Kind() != KindCluster {
		t.Errorf("kinds = %v/%v/%v, want run/serve/cluster", run.Kind(), srv.Kind(), fleet.Kind())
	}
}
