package spec

import (
	"fmt"
	"reflect"
	"strings"

	"github.com/skipsim/skip/internal/cluster"
	"github.com/skipsim/skip/internal/disagg"
	"github.com/skipsim/skip/internal/engine"
	"github.com/skipsim/skip/internal/hw"
	"github.com/skipsim/skip/internal/kvcache"
	"github.com/skipsim/skip/internal/models"
	"github.com/skipsim/skip/internal/serve"
)

// errAt prefixes a validation failure with its JSON path, so "which
// field, why" is one string: `spec: workload.rate_per_sec: must be
// positive, got -3`.
func errAt(path, format string, args ...any) error {
	msg := fmt.Sprintf(format, args...)
	if path == "" {
		return fmt.Errorf("spec: %s", msg)
	}
	return fmt.Errorf("spec: %s: %s", path, msg)
}

// Validate checks the spec for structural coherence (which sections may
// coexist), resolvable catalog names, and field ranges. Every failure
// names the offending field by its JSON path.
func (s *Spec) Validate() error {
	// Section coherence first: the dispatch rules of Kind.
	switch {
	case s.Run != nil && (s.Serve != nil || s.Fleet != nil || s.Workload != nil):
		return errAt("run", "mutually exclusive with workload/serve/fleet sections")
	case s.Run == nil && s.Serve == nil && s.Fleet == nil:
		return errAt("", "needs a run, serve, or fleet section")
	case s.baseKind() != KindRun && s.Workload == nil:
		return errAt("workload", "required for %s specs", s.baseKind())
	}

	if s.Model == "" {
		return errAt("model", "required")
	}
	if _, err := models.ByName(s.Model); err != nil {
		return errAt("model", "%v", err)
	}
	if s.Mode != "" {
		if _, err := engine.ParseMode(s.Mode); err != nil {
			return errAt("mode", "%v", err)
		}
	}

	// Platform: run and serve specs name one (or load a file); fleet
	// specs name platforms per group instead.
	if s.Fleet != nil {
		if s.Platform != "" || s.PlatformFile != "" {
			return errAt("platform", "fleet specs name platforms per group; drop the top-level platform")
		}
	} else {
		switch {
		case s.Platform != "" && s.PlatformFile != "":
			return errAt("platform", "platform and platform_file are mutually exclusive")
		case s.Platform == "" && s.PlatformFile == "":
			return errAt("platform", "required (or set platform_file)")
		case s.Platform != "":
			if _, err := hw.ByName(s.Platform); err != nil {
				return errAt("platform", "%v", err)
			}
		}
	}

	if s.Run != nil {
		if err := s.Run.validate(); err != nil {
			return err
		}
	}
	if s.Workload != nil {
		if err := s.Workload.validate(); err != nil {
			return err
		}
	}
	if s.Serve != nil {
		if err := s.Serve.validate(s.Fleet != nil); err != nil {
			return err
		}
	}
	if s.Fleet != nil {
		if err := s.Fleet.validate(); err != nil {
			return err
		}
	}

	// Cross-section: the legacy prefill-only policies ignore
	// per-request lengths, so scenario and trace workloads (whose whole
	// point is those lengths) refuse to feed them.
	if s.baseKind() == KindServe && s.Serve != nil && s.Workload != nil {
		policy, _ := serve.ParsePolicy(s.Serve.policyName())
		if policy == serve.StaticBatch || policy == serve.GreedyBatch {
			if s.Workload.Scenario != "" || s.Workload.TraceFile != "" {
				return errAt("serve.policy", "%q is prefill-only and ignores per-request lengths; use a bare arrival workload with it", s.Serve.policyName())
			}
		}
	}

	// Cross-section: the slo-attainment signal is meaningless without a
	// TTFT objective — every sample would count as met and the
	// controller could only ever shrink.
	if s.Fleet != nil && s.Fleet.Autoscale != nil && s.Fleet.Autoscale.signalName() == "slo-attainment" {
		if s.Serve == nil || s.Serve.TTFTSLOMs == 0 {
			return errAt("fleet.autoscale.signal", "the slo-attainment signal needs serve.ttft_slo_ms")
		}
	}

	if s.Observability != nil {
		if err := s.Observability.validate(s); err != nil {
			return err
		}
	}
	if s.Report != nil {
		if err := s.Report.validate(s); err != nil {
			return err
		}
	}

	// The sweep section last: its field path resolves against the
	// now-known-coherent base document.
	if s.Sweep != nil {
		if err := s.Sweep.validate(s); err != nil {
			return err
		}
	}
	return nil
}

func (ob *ObservabilitySpec) validate(s *Spec) error {
	if ob.CounterfactualK < 0 {
		return errAt("observability.counterfactual_k", "must be non-negative, got %d", ob.CounterfactualK)
	}
	if ob.CounterfactualK > 0 && s.Fleet == nil {
		return errAt("observability.counterfactual_k", "routing decision records need a fleet section")
	}
	if tl := ob.Timeline; tl != nil {
		if s.baseKind() == KindRun {
			return errAt("observability.timeline", "windowed timelines need a workload (serve or fleet spec)")
		}
		if tl.IntervalMs <= 0 {
			return errAt("observability.timeline.interval_ms", "must be positive, got %g", tl.IntervalMs)
		}
		// The legacy prefill-only policies emit no events, so there is
		// nothing to window.
		if s.baseKind() == KindServe && s.Serve != nil {
			if policy, _ := serve.ParsePolicy(s.Serve.policyName()); policy == serve.StaticBatch || policy == serve.GreedyBatch {
				return errAt("observability.timeline", "the %q policy emits no events; timelines need a continuous policy", s.Serve.policyName())
			}
		}
	}
	return nil
}

// validate checks the report section: every metric path must type-check
// against the report shape the spec's base kind produces, and series
// names must be unique. Presence (a nil Chaos section, an index past the
// instance count) is a property of the finished report and surfaces at
// extraction time with the offending path named.
func (r *ReportSpec) validate(s *Spec) error {
	if len(r.Metrics) == 0 {
		return errAt("report.metrics", "needs at least one metric")
	}
	seen := make(map[string]bool)
	for i, m := range r.Metrics {
		path := fmt.Sprintf("report.metrics[%d]", i)
		if m.Path == "" {
			return errAt(path+".path", "required")
		}
		if err := checkMetricPath(s.baseKind(), m.Path); err != nil {
			return errAt(path+".path", "%v", err)
		}
		name := m.name()
		if seen[name] {
			return errAt(path+".name", "duplicate metric name %q", name)
		}
		seen[name] = true
	}
	return nil
}

// validate checks the sweep section against the base document: the
// field path must resolve to a present numeric or string leaf, exactly
// one of the values / range forms must be given, and every point must
// be assignable to the leaf (integer leaves reject fractional range
// points rather than silently rounding).
func (sw *SweepSpec) validate(s *Spec) error {
	if sw.Field == "" {
		return errAt("sweep.field", "required")
	}
	// The sweep cannot sweep itself: each point's document drops the
	// sweep section, so a path rooted there would validate against the
	// base and then fail every point with a misleading error.
	if sw.Field == "sweep" || strings.HasPrefix(sw.Field, "sweep.") || strings.HasPrefix(sw.Field, "sweep[") {
		return errAt("sweep.field", "cannot sweep the sweep section itself")
	}
	// The report section is extracted once over the assembled series (a
	// point document drops it), so a path rooted there has nothing to
	// substitute into.
	if sw.Field == "report" || strings.HasPrefix(sw.Field, "report.") || strings.HasPrefix(sw.Field, "report[") {
		return errAt("sweep.field", "cannot sweep the report section; metrics are extracted per point already")
	}
	leaf, err := resolveField(s, sw.Field)
	if err != nil {
		return errAt("sweep.field", "%v", err)
	}
	switch {
	case len(sw.Values) == 0 && !sw.rangeForm():
		return errAt("sweep", "needs a values list or a from/to/steps range")
	case len(sw.Values) > 0 && sw.rangeForm():
		return errAt("sweep.values", "mutually exclusive with the from/to/steps range form")
	}
	if len(sw.Values) > 0 {
		for i, v := range sw.Values {
			if err := checkAssignable(leaf, v); err != nil {
				return errAt(fmt.Sprintf("sweep.values[%d]", i), "%v", err)
			}
		}
		return nil
	}
	if leaf.Kind() == reflect.String {
		return errAt("sweep.field", "%q is a string leaf; the range form needs a numeric one — list values explicitly", sw.Field)
	}
	switch {
	case sw.Steps < 2:
		return errAt("sweep.steps", "must be at least 2, got %d", sw.Steps)
	case sw.Steps > maxSweepSteps:
		return errAt("sweep.steps", "must be at most %d, got %d", maxSweepSteps, sw.Steps)
	case sw.Scale != "" && sw.Scale != "linear" && sw.Scale != "log":
		return errAt("sweep.scale", "unknown scale %q (have linear|log)", sw.Scale)
	case sw.Scale == "log" && (sw.From <= 0 || sw.To <= 0):
		return errAt("sweep.from", "log scale needs positive from and to, got %g..%g", sw.From, sw.To)
	}
	for i, v := range sw.points() {
		if err := checkAssignable(leaf, v); err != nil {
			return errAt("sweep.steps", "range point %d: %v", i, err)
		}
	}
	return nil
}

func (r *RunSpec) validate() error {
	switch {
	case r.Batch <= 0:
		return errAt("run.batch", "must be positive, got %d", r.Batch)
	case r.Seq <= 0:
		return errAt("run.seq", "must be positive, got %d", r.Seq)
	case r.NewTokens < 0:
		return errAt("run.new_tokens", "must be non-negative, got %d", r.NewTokens)
	}
	return nil
}

func (w *WorkloadSpec) validate() error {
	if w.TraceFile != "" {
		// A trace is the complete stream: generator knobs contradict it.
		switch {
		case w.Scenario != "":
			return errAt("workload.trace_file", "mutually exclusive with scenario")
		case w.Arrival != "" || w.Requests != 0 || w.RatePerSec != 0 || w.IntervalMs != 0:
			return errAt("workload.trace_file", "the trace defines arrivals; drop arrival/requests/rate_per_sec/interval_ms")
		case w.Prompt != nil || w.Output != nil:
			return errAt("workload.trace_file", "the trace defines lengths; drop prompt/output")
		case w.Seed != 0:
			return errAt("workload.seed", "a replayed trace has no randomness; drop the seed")
		}
		return nil
	}

	if w.Requests <= 0 {
		return errAt("workload.requests", "must be positive, got %d", w.Requests)
	}
	if w.Scenario != "" {
		if _, err := serve.ParseScenario(w.Scenario); err != nil {
			return errAt("workload.scenario", "%v", err)
		}
		if w.Arrival != "" && w.Arrival != "poisson" {
			return errAt("workload.arrival", "scenario generators use poisson arrivals, got %q", w.Arrival)
		}
		if w.RatePerSec <= 0 {
			return errAt("workload.rate_per_sec", "must be positive, got %g", w.RatePerSec)
		}
		if w.IntervalMs != 0 {
			return errAt("workload.interval_ms", "scenario generators use rate_per_sec, not interval_ms")
		}
		if w.Prompt != nil {
			if err := w.Prompt.validate("workload.prompt"); err != nil {
				return err
			}
		}
		if w.Output != nil {
			if err := w.Output.validate("workload.output"); err != nil {
				return err
			}
		}
		if (w.Turns != 0 || w.ContextGrowth != 0) && w.Scenario != "agentic" {
			return errAt("workload.turns", "agentic knobs need scenario \"agentic\", got %q", w.Scenario)
		}
		if w.Turns < 0 {
			return errAt("workload.turns", "must be non-negative, got %d", w.Turns)
		}
		if w.ContextGrowth < 0 {
			return errAt("workload.context_growth", "must be non-negative, got %d", w.ContextGrowth)
		}
		return nil
	}

	// Bare arrival process: lengths come from the serve config.
	if w.Prompt != nil || w.Output != nil {
		return errAt("workload.prompt", "length distributions need a scenario; bare arrivals use the serve config's lengths")
	}
	if w.Turns != 0 || w.ContextGrowth != 0 {
		return errAt("workload.turns", "agentic knobs need scenario \"agentic\"")
	}
	switch w.Arrival {
	case "", "poisson":
		if w.RatePerSec <= 0 {
			return errAt("workload.rate_per_sec", "must be positive, got %g", w.RatePerSec)
		}
		if w.IntervalMs != 0 {
			return errAt("workload.interval_ms", "poisson arrivals use rate_per_sec, not interval_ms")
		}
	case "uniform":
		if w.IntervalMs <= 0 {
			return errAt("workload.interval_ms", "must be positive, got %g", w.IntervalMs)
		}
		if w.RatePerSec != 0 {
			return errAt("workload.rate_per_sec", "uniform arrivals use interval_ms, not rate_per_sec")
		}
		if w.Seed != 0 {
			return errAt("workload.seed", "uniform arrivals are deterministic; drop the seed")
		}
	default:
		return errAt("workload.arrival", "unknown arrival process %q (have poisson|uniform)", w.Arrival)
	}
	return nil
}

func (d *LengthDistSpec) validate(path string) error {
	switch {
	case d.Mean <= 0:
		return errAt(path+".mean", "must be positive, got %g", d.Mean)
	case d.Sigma < 0:
		return errAt(path+".sigma", "must be non-negative, got %g", d.Sigma)
	case d.Min < 0:
		return errAt(path+".min", "must be non-negative, got %d", d.Min)
	case d.Max < 0:
		return errAt(path+".max", "must be non-negative, got %d", d.Max)
	case d.Max > 0 && d.Max < d.Min:
		return errAt(path+".max", "must be ≥ min (%d), got %d", d.Min, d.Max)
	}
	return nil
}

// policyName is the serve policy with its default applied.
func (v *ServeSpec) policyName() string {
	if v.Policy == "" {
		return "continuous"
	}
	return v.Policy
}

func (v *ServeSpec) validate(inFleet bool) error {
	policy, err := serve.ParsePolicy(v.policyName())
	if err != nil {
		return errAt("serve.policy", "%v", err)
	}
	if inFleet && policy != serve.ContinuousBatch && policy != serve.ChunkedPrefill {
		return errAt("serve.policy", "fleet instances need a continuous policy, got %q", v.policyName())
	}
	switch {
	case v.MaxBatch < 0:
		return errAt("serve.max_batch", "must be non-negative, got %d", v.MaxBatch)
	case v.BatchSize < 0:
		return errAt("serve.batch_size", "must be non-negative, got %d", v.BatchSize)
	case v.MaxWaitMs < 0:
		return errAt("serve.max_wait_ms", "must be non-negative, got %g", v.MaxWaitMs)
	case v.Seq < 0:
		return errAt("serve.seq", "must be non-negative, got %d", v.Seq)
	case v.DefaultOutputTokens < 0:
		return errAt("serve.default_output_tokens", "must be non-negative, got %d", v.DefaultOutputTokens)
	case v.PrefillChunk < 0:
		return errAt("serve.prefill_chunk", "must be non-negative, got %d", v.PrefillChunk)
	case v.KVMemoryUtil < 0 || v.KVMemoryUtil > 1:
		return errAt("serve.kv_memory_util", "must be in [0,1], got %g", v.KVMemoryUtil)
	case v.KVCapacityBytes < 0:
		return errAt("serve.kv_capacity_bytes", "must be non-negative, got %g", v.KVCapacityBytes)
	case v.TTFTSLOMs < 0:
		return errAt("serve.ttft_slo_ms", "must be non-negative, got %g", v.TTFTSLOMs)
	case v.AbandonAfterMs < 0:
		return errAt("serve.abandon_after_ms", "must be non-negative, got %g", v.AbandonAfterMs)
	case v.LatencyBucket < 0:
		return errAt("serve.latency_bucket", "must be non-negative, got %d", v.LatencyBucket)
	}
	return nil
}

// routerName is the fleet router with its default applied.
func (f *FleetSpec) routerName() string {
	if f.Router == "" {
		return "least-queue"
	}
	return f.Router
}

func (f *FleetSpec) validate() error {
	if len(f.Groups) == 0 {
		return errAt("fleet.groups", "needs at least one group")
	}
	seen := make(map[string]bool)
	var prefillable, decodable int
	for i, g := range f.Groups {
		path := fmt.Sprintf("fleet.groups[%d]", i)
		if g.Platform == "" {
			return errAt(path+".platform", "required")
		}
		p, err := hw.ByName(g.Platform)
		if err != nil {
			return errAt(path+".platform", "%v", err)
		}
		if g.Count <= 0 {
			return errAt(path+".count", "must be positive, got %d", g.Count)
		}
		role, err := disagg.ParseRole(g.Role)
		if err != nil {
			return errAt(path+".role", "%v", err)
		}
		if g.Role != "" && f.Disaggregation == nil {
			return errAt(path+".role", "group roles need a fleet.disaggregation section")
		}
		if role != disagg.RolePrefill {
			decodable += g.Count
		}
		if role != disagg.RoleDecode {
			prefillable += g.Count
		}
		// A disaggregated fleet may field the same platform once per
		// role; a monolithic fleet may not repeat a platform at all.
		key := p.Name
		if f.Disaggregation != nil {
			key += "/" + role.String()
			if seen[key] {
				return errAt(path+".platform", "%q appears twice in role %q; merge the counts into one group", p.Name, role)
			}
		} else if seen[key] {
			return errAt(path+".platform", "%q appears twice; merge the counts into one group", p.Name)
		}
		seen[key] = true
	}
	if _, err := cluster.ParsePolicy(f.routerName()); err != nil {
		return errAt("fleet.router", "%v", err)
	}
	switch {
	case f.ShortPrompt < 0:
		return errAt("fleet.short_prompt", "must be non-negative, got %d", f.ShortPrompt)
	case f.AdmitRatePerSec < 0:
		return errAt("fleet.admit_rate_per_sec", "must be non-negative, got %g", f.AdmitRatePerSec)
	case f.AdmitBurst < 0:
		return errAt("fleet.admit_burst", "must be non-negative, got %g", f.AdmitBurst)
	}
	if d := f.Disaggregation; d != nil {
		if f.Router != "" {
			return errAt("fleet.router", "disaggregated fleets route per pool; use disaggregation.prefill_router / decode_router")
		}
		if prefillable == 0 {
			return errAt("fleet.disaggregation", "fleet has no prefill-capable (role prefill or both) instances")
		}
		if decodable == 0 {
			return errAt("fleet.disaggregation", "fleet has no decode-capable (role decode or both) instances")
		}
		if _, err := cluster.ParsePolicy(d.prefillRouterName()); err != nil {
			return errAt("fleet.disaggregation.prefill_router", "%v", err)
		}
		if _, err := cluster.ParsePolicy(d.decodeRouterName()); err != nil {
			return errAt("fleet.disaggregation.decode_router", "%v", err)
		}
		if d.HostHopMultiplier < 0 {
			return errAt("fleet.disaggregation.host_hop_multiplier", "must be non-negative, got %g", d.HostHopMultiplier)
		}
		if d.BandwidthGBps < 0 {
			return errAt("fleet.disaggregation.bandwidth_gbps", "must be non-negative, got %g", d.BandwidthGBps)
		}
		if d.OverlapFraction < 0 || d.OverlapFraction >= 1 {
			return errAt("fleet.disaggregation.overlap_fraction", "must be in [0,1), got %g", d.OverlapFraction)
		}
	}
	if f.Autoscale != nil {
		if err := f.Autoscale.validate(f.Disaggregation != nil); err != nil {
			return err
		}
	}
	if f.Faults != nil {
		if err := f.Faults.validate(f.Disaggregation != nil); err != nil {
			return err
		}
	}
	if k := f.KVCache; k != nil {
		if k.BlockTokens < 0 {
			return errAt("fleet.kv_cache.block_tokens", "must be non-negative, got %d", k.BlockTokens)
		}
		if k.DeviceBlocks <= 0 {
			return errAt("fleet.kv_cache.device_blocks", "must be positive, got %d", k.DeviceBlocks)
		}
		if k.HostSpillBlocks < 0 {
			return errAt("fleet.kv_cache.host_spill_blocks", "must be non-negative, got %d", k.HostSpillBlocks)
		}
		if _, err := kvcache.ParsePolicy(k.policyName()); err != nil {
			return errAt("fleet.kv_cache.policy", "%v", err)
		}
	}
	return nil
}

// policyName is the cache eviction policy with its default applied.
func (k *KVCacheSpec) policyName() string {
	if k.Policy == "" {
		return "lru"
	}
	return k.Policy
}

// signalName is the autoscale signal with its default applied.
func (a *AutoscaleSpec) signalName() string {
	if a.Signal == "" {
		return "queue-depth"
	}
	return a.Signal
}

// roleName is the scaled pool with its default applied.
func (a *AutoscaleSpec) roleName() string {
	if a.Role == "" {
		return "decode"
	}
	return a.Role
}

func (a *AutoscaleSpec) validate(disaggregated bool) error {
	if a.Platform == "" {
		return errAt("fleet.autoscale.platform", "required")
	}
	if _, err := hw.ByName(a.Platform); err != nil {
		return errAt("fleet.autoscale.platform", "%v", err)
	}
	signal, err := cluster.ParseScaleSignal(a.signalName())
	if err != nil {
		return errAt("fleet.autoscale.signal", "%v", err)
	}
	if signal == cluster.SignalTransferQueue && !disaggregated {
		return errAt("fleet.autoscale.signal", "the transfer-queue signal needs a fleet.disaggregation section")
	}
	switch {
	case a.Target <= 0:
		return errAt("fleet.autoscale.target", "must be positive, got %g", a.Target)
	case signal == cluster.SignalSLOAttainment && a.Target > 1:
		return errAt("fleet.autoscale.target", "slo-attainment targets are fractions in (0,1], got %g", a.Target)
	case a.Max <= 0:
		return errAt("fleet.autoscale.max", "must be positive, got %d", a.Max)
	case a.Min < 0 || a.Min > a.Max:
		return errAt("fleet.autoscale.min", "must be in [0, max %d], got %d", a.Max, a.Min)
	case a.IntervalMs < 0:
		return errAt("fleet.autoscale.interval_ms", "must be non-negative, got %g", a.IntervalMs)
	case a.CooldownMs < 0:
		return errAt("fleet.autoscale.cooldown_ms", "must be non-negative, got %g", a.CooldownMs)
	case a.SpinUpDelayMs < 0:
		return errAt("fleet.autoscale.spin_up_delay_ms", "must be non-negative, got %g", a.SpinUpDelayMs)
	case a.SLOWindow < 0:
		return errAt("fleet.autoscale.slo_window", "must be non-negative, got %d", a.SLOWindow)
	}
	if !disaggregated && a.Role != "" {
		return errAt("fleet.autoscale.role", "scaled-pool roles need a fleet.disaggregation section")
	}
	if _, err := disagg.ParseRole(a.roleName()); err != nil {
		return errAt("fleet.autoscale.role", "%v", err)
	}
	return nil
}

func (fc *FaultsSpec) validate(disaggregated bool) error {
	if fc.CrashRatePerSec < 0 {
		return errAt("fleet.faults.crash_rate_per_sec", "must be non-negative, got %g", fc.CrashRatePerSec)
	}
	if len(fc.Schedule) == 0 && fc.CrashRatePerSec == 0 {
		return errAt("fleet.faults", "needs a schedule or a positive crash_rate_per_sec")
	}
	for i, ft := range fc.Schedule {
		path := fmt.Sprintf("fleet.faults.schedule[%d]", i)
		if ft.AtMs < 0 {
			return errAt(path+".at_ms", "must be non-negative, got %g", ft.AtMs)
		}
		kind, err := cluster.ParseFaultKind(ft.Kind)
		if err != nil {
			return errAt(path+".kind", "%v", err)
		}
		if ft.Instance < 0 {
			return errAt(path+".instance", "must be non-negative, got %d", ft.Instance)
		}
		switch kind {
		case cluster.FaultCrash:
			if ft.Factor != 0 || ft.Dst != 0 {
				return errAt(path+".kind", "crash faults take no factor or dst")
			}
		case cluster.FaultSlowNode:
			if ft.Dst != 0 {
				return errAt(path+".dst", "slow-node faults take no dst")
			}
			if ft.Factor < 1 {
				return errAt(path+".factor", "must be ≥ 1, got %g", ft.Factor)
			}
		case cluster.FaultLinkDegrade:
			if !disaggregated {
				return errAt(path+".kind", "link faults need a fleet.disaggregation section")
			}
			if ft.Dst < 0 {
				return errAt(path+".dst", "must be non-negative, got %d", ft.Dst)
			}
			if ft.Factor < 1 {
				return errAt(path+".factor", "must be ≥ 1, got %g", ft.Factor)
			}
		}
	}
	return nil
}

// prefillRouterName / decodeRouterName apply the per-pool router
// defaults.
func (d *DisaggregationSpec) prefillRouterName() string {
	if d.PrefillRouter == "" {
		return "least-queue"
	}
	return d.PrefillRouter
}

func (d *DisaggregationSpec) decodeRouterName() string {
	if d.DecodeRouter == "" {
		return "least-kv"
	}
	return d.DecodeRouter
}
