package spec

import (
	"fmt"
	"reflect"
	"strings"
)

// Derived-metric extraction: a report.metrics section names numeric
// leaves of the finished report by JSON path, and Simulate surfaces each
// as a flat named series (Report.Metrics) — one value for a single run,
// one per point for a sweep — so consumers plotting a sweep need not
// walk nested report documents.
//
// Paths address sections by their report JSON keys ("serve", "cluster",
// "disagg", "offered") and struct fields by their Go names (the stats
// structs serialize field names verbatim), e.g. "serve.P95TTFT",
// "cluster.Chaos.Killed", "disagg.Instances[0].Serve.TokensPerSec".

// name is the metric's series label with its default applied.
func (m *MetricSpec) name() string {
	if m.Name != "" {
		return m.Name
	}
	return m.Path
}

// metricRoots lists the report sections a base kind populates. The
// timeline and profile sections are addressable for every workload kind
// (presence still depends on the matching observability section or
// WithProfile, checked at extraction time like any nil section).
func metricRoots(k Kind) []string {
	switch k {
	case KindRun:
		return []string{"run", "generate", "profile"}
	case KindServe:
		return []string{"serve", "offered", "timeline", "profile"}
	case KindCluster:
		return []string{"cluster", "offered", "timeline", "profile"}
	case KindDisagg:
		return []string{"disagg", "offered", "timeline", "profile"}
	}
	return nil
}

// metricField finds the struct field a path segment names: the json tag
// key where one exists, the exact Go field name otherwise.
func metricField(t reflect.Type, name string) (reflect.StructField, bool) {
	for i := 0; i < t.NumField(); i++ {
		sf := t.Field(i)
		if sf.PkgPath != "" {
			continue // unexported
		}
		tag, _, _ := strings.Cut(sf.Tag.Get("json"), ",")
		if tag == name || (tag == "" && sf.Name == name) {
			return sf, true
		}
	}
	return reflect.StructField{}, false
}

func numericKind(k reflect.Kind) bool {
	switch k {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Float32, reflect.Float64:
		return true
	}
	return false
}

// joinWalked extends the resolved-so-far path for error messages.
func joinWalked(walked, name string) string {
	if walked == "" {
		return name
	}
	return walked + "." + name
}

// checkMetricPath type-checks a metric path against the static report
// shape for a base kind: the root must be a section that kind populates,
// every segment must name a field, indexed segments must address lists,
// and the leaf must be numeric. Whether the addressed value is present
// (a nil Chaos section, an index past the instance count) depends on the
// finished report and is checked at extraction time instead.
func checkMetricPath(k Kind, path string) error {
	segs, err := splitPath(path)
	if err != nil {
		return err
	}
	roots := metricRoots(k)
	rootOK := false
	for _, r := range roots {
		if segs[0].name == r {
			rootOK = true
		}
	}
	if !rootOK {
		return fmt.Errorf("no section %q in a %s report (have %s)", segs[0].name, k, strings.Join(roots, "|"))
	}
	t := reflect.TypeOf(Report{})
	walked := ""
	for _, seg := range segs {
		for t.Kind() == reflect.Pointer {
			t = t.Elem()
		}
		if t.Kind() != reflect.Struct {
			return fmt.Errorf("%q does not contain fields", walked)
		}
		sf, ok := metricField(t, seg.name)
		if !ok {
			return fmt.Errorf("no field %q under %q", seg.name, walked)
		}
		walked = joinWalked(walked, seg.name)
		t = sf.Type
		if seg.idx >= 0 {
			for t.Kind() == reflect.Pointer {
				t = t.Elem()
			}
			if t.Kind() != reflect.Slice {
				return fmt.Errorf("%q is not a list", walked)
			}
			t = t.Elem()
			walked += fmt.Sprintf("[%d]", seg.idx)
		}
	}
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	if !numericKind(t.Kind()) {
		return fmt.Errorf("%q is not a numeric leaf (it is a %s)", walked, t.Kind())
	}
	return nil
}

// extractMetric walks one finished (non-sweep) report along a validated
// metric path and widens the numeric leaf to float64. Virtual times
// (sim.Time) extract as nanoseconds.
func extractMetric(r *Report, path string) (float64, error) {
	segs, err := splitPath(path)
	if err != nil {
		return 0, err
	}
	v := reflect.ValueOf(r).Elem()
	walked := ""
	for _, seg := range segs {
		for v.Kind() == reflect.Pointer {
			if v.IsNil() {
				return 0, fmt.Errorf("section %q is not present in the report", walked)
			}
			v = v.Elem()
		}
		if v.Kind() != reflect.Struct {
			return 0, fmt.Errorf("%q does not contain fields", walked)
		}
		sf, ok := metricField(v.Type(), seg.name)
		if !ok {
			return 0, fmt.Errorf("no field %q under %q", seg.name, walked)
		}
		walked = joinWalked(walked, seg.name)
		v = v.FieldByIndex(sf.Index)
		if seg.idx >= 0 {
			for v.Kind() == reflect.Pointer {
				if v.IsNil() {
					return 0, fmt.Errorf("section %q is not present in the report", walked)
				}
				v = v.Elem()
			}
			if v.Kind() != reflect.Slice {
				return 0, fmt.Errorf("%q is not a list", walked)
			}
			if seg.idx >= v.Len() {
				return 0, fmt.Errorf("index %d out of range for %q (%d entries)", seg.idx, walked, v.Len())
			}
			v = v.Index(seg.idx)
			walked += fmt.Sprintf("[%d]", seg.idx)
		}
	}
	for v.Kind() == reflect.Pointer {
		if v.IsNil() {
			return 0, fmt.Errorf("section %q is not present in the report", walked)
		}
		v = v.Elem()
	}
	switch {
	case v.CanInt():
		return float64(v.Int()), nil
	case v.CanUint():
		return float64(v.Uint()), nil
	case v.CanFloat():
		return v.Float(), nil
	}
	return 0, fmt.Errorf("%q is not a numeric leaf (it is a %s)", walked, v.Kind())
}

// attachMetrics extracts every report.metrics leaf from the finished
// report and appends the named series: one value for a single run, one
// per point (in value order) for a sweep.
func (s *Spec) attachMetrics(rep *Report) error {
	for i, m := range s.Report.Metrics {
		var vals []float64
		if rep.Kind == KindSweep {
			vals = make([]float64, len(rep.Sweep))
			for j, pt := range rep.Sweep {
				v, err := extractMetric(pt.Report, m.Path)
				if err != nil {
					return fmt.Errorf("spec: report.metrics[%d] (%s): sweep point %d: %w", i, m.Path, j, err)
				}
				vals[j] = v
			}
		} else {
			v, err := extractMetric(rep, m.Path)
			if err != nil {
				return fmt.Errorf("spec: report.metrics[%d] (%s): %w", i, m.Path, err)
			}
			vals = []float64{v}
		}
		rep.Metrics = append(rep.Metrics, Metric{Name: m.name(), Path: m.Path, Values: vals})
	}
	return nil
}
