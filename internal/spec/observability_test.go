package spec

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/skipsim/skip/internal/serve"
)

// TestChaosTimelineContiguous: a request killed by a crash and requeued
// on a surviving instance must assemble into one contiguous timeline —
// an eviction-noted span, a requeue gap starting the same instant, and
// exactly one TTFT span — and the timeline population must reconcile
// with the report's ledger.
func TestChaosTimelineContiguous(t *testing.T) {
	s := chaosFleetBase(t)
	tb := serve.NewTimelineBuilder()
	rep, err := Simulate(s, WithObserver(tb.Observe))
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Reconcile(); err != nil {
		t.Fatal(err)
	}
	st := rep.Cluster
	if st.Chaos == nil || st.Chaos.Requeued == 0 {
		t.Fatalf("chaos spec produced no requeues (chaos=%+v); the test needs a crashed-and-requeued request", st.Chaos)
	}

	var requeued, completed, dropped, rejected int
	for _, tl := range tb.Timelines() {
		switch tl.Outcome {
		case "completed":
			completed++
		case "dropped":
			dropped++
		case "rejected":
			rejected++
		}
		requeued += tl.Requeues
		if tl.Requeues == 0 {
			continue
		}
		// The eviction gap: an "evicted" close immediately followed by a
		// requeue span starting the same instant — no hole, no overlap.
		evictions := 0
		for i, seg := range tl.Segments {
			if seg.Note != "evicted" {
				continue
			}
			evictions++
			if i+1 >= len(tl.Segments) {
				t.Fatalf("request %d: eviction is the last segment of a requeued timeline: %+v", tl.RequestID, tl.Segments)
			}
			next := tl.Segments[i+1]
			if next.Kind != serve.SegRequeue {
				t.Errorf("request %d: segment after eviction is %s, want requeue", tl.RequestID, next.Kind)
			}
			if next.Start != seg.End {
				t.Errorf("request %d: requeue gap starts at %v, eviction ended at %v", tl.RequestID, next.Start, seg.End)
			}
		}
		if evictions == 0 {
			t.Errorf("request %d requeued %d times but carries no evicted span", tl.RequestID, tl.Requeues)
		}
		if tl.Outcome == "completed" && tl.FirstTokens != 1 {
			t.Errorf("requeued-and-completed request %d has %d TTFT spans, want exactly 1", tl.RequestID, tl.FirstTokens)
		}
	}

	// Ledger reconciliation: every outcome class in the timelines matches
	// the report's counters, and killed = requeued + dropped.
	if completed != st.Completed {
		t.Errorf("timelines show %d completions, ledger says %d", completed, st.Completed)
	}
	if requeued != st.Chaos.Requeued {
		t.Errorf("timelines show %d requeues, chaos ledger says %d", requeued, st.Chaos.Requeued)
	}
	if dropped != st.Chaos.Dropped {
		t.Errorf("timelines show %d drops, chaos ledger says %d", dropped, st.Chaos.Dropped)
	}
	if rejected != st.Rejected {
		t.Errorf("timelines show %d rejections, ledger says %d", rejected, st.Rejected)
	}
	if st.Chaos.Killed != st.Chaos.Requeued+st.Chaos.Dropped {
		t.Errorf("chaos ledger broken: killed %d != requeued %d + dropped %d",
			st.Chaos.Killed, st.Chaos.Requeued, st.Chaos.Dropped)
	}
}

// TestCounterfactualDecisionsBitIdentical: the decision-record section
// must reproduce byte for byte across two seeded runs — under chaos,
// requeues included — and the pick count must cover every placement.
func TestCounterfactualDecisionsBitIdentical(t *testing.T) {
	run := func() *Report {
		s := chaosFleetBase(t)
		s.Observability = &ObservabilitySpec{CounterfactualK: 3}
		rep, err := Simulate(s)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Cluster.Routing == nil {
		t.Fatal("counterfactual_k set but the report carries no routing section")
	}
	aj, err := json.Marshal(a.Cluster.Routing)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.Marshal(b.Cluster.Routing)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Fatal("routing decision records differ across two runs of the same seeded spec")
	}

	rt := a.Cluster.Routing
	if want := a.Cluster.Routed + a.Cluster.Chaos.Requeued; rt.Picks != want {
		t.Errorf("Picks = %d, want routed %d + requeued %d = %d",
			rt.Picks, a.Cluster.Routed, a.Cluster.Chaos.Requeued, want)
	}
	if len(rt.Decisions) != rt.Picks {
		t.Errorf("recorded %d decisions for %d picks", len(rt.Decisions), rt.Picks)
	}
	for _, cf := range rt.Counterfactuals {
		if cf.Picks != rt.Picks || cf.Agreed+cf.Differed != cf.Picks {
			t.Errorf("counterfactual %s: picks %d (agreed %d + differed %d), want %d",
				cf.Policy, cf.Picks, cf.Agreed, cf.Differed, rt.Picks)
		}
		if cf.Policy == rt.Policy {
			t.Errorf("active policy %s replayed against itself", cf.Policy)
		}
	}
	for _, d := range rt.Decisions {
		if len(d.Alternatives) > rt.K {
			t.Errorf("decision for request %d stores %d alternatives, cap is %d",
				d.RequestID, len(d.Alternatives), rt.K)
		}
	}
}

// TestRoutingGolden pins the full decision-record JSON of a small static
// fleet run. A diff here means the routing observability surface changed
// shape or the decision sequence itself moved — both are
// report-breaking and must be deliberate.
func TestRoutingGolden(t *testing.T) {
	s := testFleetSpec()
	s.Observability = &ObservabilitySpec{CounterfactualK: 2}
	rep, err := Simulate(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.MarshalIndent(rep.Cluster.Routing, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	golden := filepath.Join("testdata", "golden_routing_decisions.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with UPDATE_GOLDEN=1 go test ./internal/spec -run TestRoutingGolden)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("routing decision records drifted from the golden file\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestObservabilityOffKeepsReportsIdentical: a spec with no
// observability section and one with counterfactual_k 0 must produce
// byte-identical reports — the feature leaves no residue when off.
func TestObservabilityOffKeepsReportsIdentical(t *testing.T) {
	plain, err := Simulate(testFleetSpec())
	if err != nil {
		t.Fatal(err)
	}
	s := testFleetSpec()
	s.Observability = &ObservabilitySpec{}
	zero, err := Simulate(s)
	if err != nil {
		t.Fatal(err)
	}
	pj, _ := ReportJSON(plain)
	zj, _ := ReportJSON(zero)
	if !bytes.Equal(pj, zj) {
		t.Fatal("counterfactual_k 0 changed the report")
	}
	if strings.Contains(string(pj), "Routing") {
		t.Fatal("default report carries a Routing section")
	}
}

func TestObservabilityValidation(t *testing.T) {
	s := testFleetSpec()
	s.Observability = &ObservabilitySpec{CounterfactualK: -1}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "counterfactual_k") {
		t.Errorf("negative counterfactual_k: err = %v", err)
	}
	sv := testServeSpec()
	sv.Observability = &ObservabilitySpec{CounterfactualK: 2}
	if err := sv.Validate(); err == nil || !strings.Contains(err.Error(), "fleet") {
		t.Errorf("counterfactual_k without a fleet: err = %v", err)
	}
	// k = 0 on a serve spec is a no-op, not an error.
	sv.Observability.CounterfactualK = 0
	if err := sv.Validate(); err != nil {
		t.Errorf("counterfactual_k 0 should validate, got %v", err)
	}
}

// TestDisaggCounterfactualPerPool: a disaggregated run records decisions
// per pool, and decode decisions carry the link backlog.
func TestDisaggCounterfactualPerPool(t *testing.T) {
	s := testDisaggSpec()
	s.Observability = &ObservabilitySpec{CounterfactualK: 2}
	rep, err := Simulate(s)
	if err != nil {
		t.Fatal(err)
	}
	st := rep.Disagg
	if st.PrefillRouting == nil || st.DecodeRouting == nil {
		t.Fatalf("per-pool routing sections missing: prefill=%v decode=%v", st.PrefillRouting, st.DecodeRouting)
	}
	if st.PrefillRouting.Picks != st.Routed {
		t.Errorf("prefill picks %d, want routed %d", st.PrefillRouting.Picks, st.Routed)
	}
	// Static fleet: every handoff is picked exactly once and resumes.
	if st.DecodeRouting.Picks != st.Resumed {
		t.Errorf("decode picks %d, want resumed %d", st.DecodeRouting.Picks, st.Resumed)
	}
}
