package spec

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/skipsim/skip/internal/serve"
)

// cachedFleetBase is a two-instance fleet serving multi-turn agentic
// sessions through a deliberately small prefix cache — every cache
// mechanism (hit, miss, eviction, host spill, restore credit) is live.
func cachedFleetBase(t *testing.T) *Spec {
	t.Helper()
	s, err := Parse([]byte(`{
	  "model": "llama-3.2-1B",
	  "workload": {
	    "scenario": "agentic",
	    "requests": 48,
	    "rate_per_sec": 8,
	    "turns": 8,
	    "seed": 7
	  },
	  "serve": {
	    "max_batch": 4,
	    "seq": 512,
	    "latency_bucket": 256,
	    "ttft_slo_ms": 500
	  },
	  "fleet": {
	    "groups": [{"platform": "GH200", "count": 2}],
	    "router": "prefix-affinity",
	    "kv_cache": {
	      "block_tokens": 32,
	      "device_blocks": 128,
	      "host_spill_blocks": 1024
	    }
	  }
	}`))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// blockEventStream runs the spec and returns the serialized stream of
// block-level cache events, in emission order.
func blockEventStream(t *testing.T, s *Spec) []string {
	t.Helper()
	var lines []string
	rep, err := Simulate(s, WithObserver(func(e serve.Event) {
		switch e.Type {
		case serve.EventBlockHit, serve.EventBlockEvict, serve.EventBlockRestore:
			b, err := json.Marshal(e)
			if err != nil {
				t.Fatal(err)
			}
			lines = append(lines, string(b))
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cluster.KVCache == nil {
		t.Fatal("cached spec produced no kv-cache report section")
	}
	return lines
}

// TestKVCacheEventStreamDeterministic: two runs of the same seeded spec
// must emit byte-identical block-event streams — same events, same
// order, same sequence numbers. The cache keeps no wall-clock or
// map-iteration state, so nothing may diverge.
func TestKVCacheEventStreamDeterministic(t *testing.T) {
	first := blockEventStream(t, cachedFleetBase(t))
	if len(first) == 0 {
		t.Fatal("cached agentic spec emitted no block events; the determinism check needs a live cache")
	}
	var hits, evicts bool
	for _, l := range first {
		if strings.Contains(l, `"block-hit"`) {
			hits = true
		}
		if strings.Contains(l, `"block-evict"`) {
			evicts = true
		}
	}
	if !hits || !evicts {
		t.Fatalf("block stream exercised hits=%v evicts=%v; the fixture must drive both", hits, evicts)
	}
	second := blockEventStream(t, cachedFleetBase(t))
	if len(first) != len(second) {
		t.Fatalf("rerun emitted %d block events, first run %d", len(second), len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("block event %d diverged:\n  first:  %s\n  second: %s", i, first[i], second[i])
		}
	}
}

// TestKVCacheSweepParallelDeterminism: sweeping the device-tier size on
// a multi-worker pool must be byte-identical to the one-worker run.
// Under -race this also proves each sweep point owns its cache state.
func TestKVCacheSweepParallelDeterminism(t *testing.T) {
	s := cachedFleetBase(t)
	s.Sweep = &SweepSpec{Field: "fleet.kv_cache.device_blocks", Values: []any{64.0, 128.0, 256.0, 1024.0}}

	parallel, err := Simulate(s, WithSweepWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Simulate(s, WithSweepWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	pj, err := ReportJSON(parallel)
	if err != nil {
		t.Fatal(err)
	}
	sj, err := ReportJSON(serial)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pj, sj) {
		t.Error("parallel kv_cache sweep report is not byte-identical to the one-worker run")
	}
	for i, point := range parallel.Sweep {
		if point.Report.Cluster.KVCache == nil {
			t.Fatalf("sweep point %d (device_blocks=%v) lost its kv-cache section", i, point.Value)
		}
		if err := point.Report.Cluster.KVCache.Reconcile(); err != nil {
			t.Errorf("sweep point %d: %v", i, err)
		}
	}
}

// TestKVCacheLedgerReconciles: the aggregate and per-instance ledgers
// of a cached run must balance exactly, and the cache must have done
// real work on this fixture.
func TestKVCacheLedgerReconciles(t *testing.T) {
	rep, err := Simulate(cachedFleetBase(t))
	if err != nil {
		t.Fatal(err)
	}
	k := rep.Cluster.KVCache
	if err := k.Reconcile(); err != nil {
		t.Fatal(err)
	}
	if k.Lookups == 0 || k.Hits == 0 || k.Evictions == 0 {
		t.Fatalf("fixture under-exercised the cache: %+v", *k)
	}
	for _, is := range rep.Cluster.Instances {
		if err := is.Serve.KVCache.Reconcile(); err != nil {
			t.Errorf("instance %s: %v", is.Name, err)
		}
	}
}

// TestKVCacheSpecValidation walks the error paths of the fleet.kv_cache
// section.
func TestKVCacheSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		spec string
		want string
	}{
		{
			name: "missing device_blocks",
			spec: `{"kv_cache": {"block_tokens": 32}}`,
			want: "fleet.kv_cache.device_blocks",
		},
		{
			name: "negative device_blocks",
			spec: `{"kv_cache": {"device_blocks": -4}}`,
			want: "fleet.kv_cache.device_blocks",
		},
		{
			name: "negative block_tokens",
			spec: `{"kv_cache": {"block_tokens": -1, "device_blocks": 64}}`,
			want: "fleet.kv_cache.block_tokens",
		},
		{
			name: "negative host_spill_blocks",
			spec: `{"kv_cache": {"device_blocks": 64, "host_spill_blocks": -1}}`,
			want: "fleet.kv_cache.host_spill_blocks",
		},
		{
			name: "unknown policy",
			spec: `{"kv_cache": {"device_blocks": 64, "policy": "clock"}}`,
			want: "fleet.kv_cache.policy",
		},
		{
			name: "unknown field",
			spec: `{"kv_cache": {"device_blocks": 64, "host_blocks": 9}}`,
			want: "host_blocks",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			doc := `{
			  "model": "llama-3.2-1B",
			  "workload": {"scenario": "chat", "requests": 4, "rate_per_sec": 10, "seed": 1},
			  "serve": {"max_batch": 4, "seq": 256, "latency_bucket": 256, "ttft_slo_ms": 500},
			  "fleet": ` + strings.Replace(tc.spec, "{", `{"groups": [{"platform": "GH200", "count": 1}], `, 1) + `
			}`
			s, err := Parse([]byte(doc))
			if err == nil {
				err = s.Validate()
			}
			if err == nil {
				t.Fatalf("spec with %s validated", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name %q", err, tc.want)
			}
		})
	}
}
