package spec

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestMetricsSingleRun(t *testing.T) {
	s := testServeSpec()
	s.Report = &ReportSpec{Metrics: []MetricSpec{
		{Name: "p95_ttft", Path: "serve.P95TTFT"},
		{Path: "serve.TokensPerSec"},
		{Path: "offered"},
	}}
	rep, err := Simulate(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Metrics) != 3 {
		t.Fatalf("got %d metrics, want 3", len(rep.Metrics))
	}
	m := rep.Metrics[0]
	if m.Name != "p95_ttft" || len(m.Values) != 1 || m.Values[0] != float64(rep.Serve.P95TTFT) {
		t.Errorf("metric 0 = %+v, want p95_ttft [%v]", m, float64(rep.Serve.P95TTFT))
	}
	// Name defaults to the path.
	if rep.Metrics[1].Name != "serve.TokensPerSec" {
		t.Errorf("unnamed metric labeled %q, want its path", rep.Metrics[1].Name)
	}
	if rep.Metrics[1].Values[0] != rep.Serve.TokensPerSec {
		t.Errorf("TokensPerSec = %v, want %v", rep.Metrics[1].Values[0], rep.Serve.TokensPerSec)
	}
	if rep.Metrics[2].Values[0] != float64(rep.Offered) {
		t.Errorf("offered = %v, want %v", rep.Metrics[2].Values[0], rep.Offered)
	}
}

func TestMetricsSweepSeries(t *testing.T) {
	s := testServeSpec()
	s.Sweep = &SweepSpec{Field: "workload.rate_per_sec", Values: []any{10.0, 20.0, 40.0}}
	s.Report = &ReportSpec{Metrics: []MetricSpec{{Name: "goodput", Path: "serve.Goodput"}}}
	rep, err := Simulate(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Metrics) != 1 || len(rep.Metrics[0].Values) != 3 {
		t.Fatalf("metrics = %+v, want one series of 3 values", rep.Metrics)
	}
	for i, pt := range rep.Sweep {
		if got, want := rep.Metrics[0].Values[i], pt.Report.Serve.Goodput; got != want {
			t.Errorf("point %d: series value %v, report leaf %v", i, got, want)
		}
		// Points must not duplicate the extraction.
		if pt.Report.Metrics != nil {
			t.Errorf("point %d carries its own metrics section", i)
		}
	}
}

func TestMetricsIndexedPath(t *testing.T) {
	s := testFleetSpec()
	s.Report = &ReportSpec{Metrics: []MetricSpec{
		{Name: "inst0_tokps", Path: "cluster.Instances[0].Serve.TokensPerSec"},
	}}
	rep, err := Simulate(s)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rep.Metrics[0].Values[0], rep.Cluster.Instances[0].Serve.TokensPerSec; got != want {
		t.Errorf("indexed extraction = %v, want %v", got, want)
	}

	// Out of range indexes validate (the shape is right) but fail at
	// extraction with the offending path named.
	s = testFleetSpec()
	s.Report = &ReportSpec{Metrics: []MetricSpec{{Path: "cluster.Instances[9].Serve.TokensPerSec"}}}
	if _, err := Simulate(s); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("out-of-range index: err = %v", err)
	}
}

func TestMetricsAbsentSectionFailsAtExtraction(t *testing.T) {
	// Chaos.Killed type-checks against the report shape, but a static
	// fleet's report has no chaos ledger.
	s := testFleetSpec()
	s.Report = &ReportSpec{Metrics: []MetricSpec{{Path: "cluster.Chaos.Killed"}}}
	if _, err := Simulate(s); err == nil || !strings.Contains(err.Error(), "not present") {
		t.Errorf("absent section: err = %v", err)
	}
}

func TestMetricsValidationErrors(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Spec)
		wantErr string
	}{
		{"empty metrics", func(s *Spec) {
			s.Report = &ReportSpec{}
		}, "needs at least one metric"},
		{"missing path", func(s *Spec) {
			s.Report = &ReportSpec{Metrics: []MetricSpec{{Name: "x"}}}
		}, "required"},
		{"wrong section for the kind", func(s *Spec) {
			s.Report = &ReportSpec{Metrics: []MetricSpec{{Path: "cluster.Goodput"}}}
		}, "no section"},
		{"unknown field", func(s *Spec) {
			s.Report = &ReportSpec{Metrics: []MetricSpec{{Path: "serve.Nope"}}}
		}, "no field"},
		{"non-numeric leaf", func(s *Spec) {
			s.Report = &ReportSpec{Metrics: []MetricSpec{{Path: "serve"}}}
		}, "not a numeric leaf"},
		{"duplicate names", func(s *Spec) {
			s.Report = &ReportSpec{Metrics: []MetricSpec{
				{Name: "a", Path: "serve.Goodput"},
				{Name: "a", Path: "serve.Throughput"},
			}}
		}, "duplicate metric name"},
		{"index into a scalar", func(s *Spec) {
			s.Report = &ReportSpec{Metrics: []MetricSpec{{Path: "serve.Goodput[0]"}}}
		}, "not a list"},
	}
	for _, tc := range cases {
		s := testServeSpec()
		tc.mutate(s)
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}

	// The sweep cannot target the report section: points drop it.
	s := testServeSpec()
	s.Report = &ReportSpec{Metrics: []MetricSpec{{Path: "serve.Goodput"}}}
	s.Sweep = &SweepSpec{Field: "report.metrics[0].name", Values: []any{"a", "b"}}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "cannot sweep the report section") {
		t.Errorf("sweeping report.*: err = %v", err)
	}
}

func TestMetricsSpecRoundTrip(t *testing.T) {
	s := testServeSpec()
	s.Observability = &ObservabilitySpec{CounterfactualK: 3}
	s.Report = &ReportSpec{Metrics: []MetricSpec{{Name: "g", Path: "serve.Goodput"}}}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Observability == nil || back.Observability.CounterfactualK != 3 {
		t.Errorf("observability section lost: %+v", back.Observability)
	}
	if back.Report == nil || len(back.Report.Metrics) != 1 || back.Report.Metrics[0].Path != "serve.Goodput" {
		t.Errorf("report section lost: %+v", back.Report)
	}
}
