package spec

import (
	"encoding/json"
	"runtime"
	"sync/atomic"
	"time"

	"github.com/skipsim/skip/internal/cluster"
	"github.com/skipsim/skip/internal/disagg"
	"github.com/skipsim/skip/internal/engine"
	"github.com/skipsim/skip/internal/hw"
	"github.com/skipsim/skip/internal/kvcache"
	"github.com/skipsim/skip/internal/metrics"
	"github.com/skipsim/skip/internal/models"
	"github.com/skipsim/skip/internal/serve"
	"github.com/skipsim/skip/internal/sim"
)

// Report is the unified outcome of Simulate: one type for all three
// layers, discriminated by Kind. Exactly the matching section is
// populated.
type Report struct {
	Kind Kind `json:"kind"`

	// KindRun: the engine result — Run for prefill-only specs,
	// Generate when run.new_tokens is positive (then Run is nil).
	Run      *engine.Result         `json:"run,omitempty"`
	Generate *engine.GenerateResult `json:"generate,omitempty"`

	// KindServe: the serving statistics.
	Serve *serve.Stats `json:"serve,omitempty"`

	// KindCluster: the fleet statistics.
	Cluster *cluster.Stats `json:"cluster,omitempty"`

	// KindDisagg: the disaggregated-fleet statistics.
	Disagg *disagg.Stats `json:"disagg,omitempty"`

	// KindSweep: the swept field's JSON path and the ordered series,
	// one full Report per substituted value.
	SweepField string       `json:"sweep_field,omitempty"`
	Sweep      []SweepPoint `json:"sweep,omitempty"`

	// Metrics is the derived series a report.metrics section selects:
	// one entry per requested path, absent otherwise.
	Metrics []Metric `json:"metrics,omitempty"`

	// Offered is the workload's request count (serve, cluster, and
	// disagg kinds).
	Offered int `json:"offered,omitempty"`

	// Timeline is the windowed fleet time series an
	// observability.timeline section requests; absent otherwise, so
	// timeline-off reports stay bit-identical.
	Timeline *metrics.Timeline `json:"timeline,omitempty"`

	// Profile is the simulator's self-measurement (wall time, events
	// processed, allocation churn); present only under WithProfile /
	// `skip sim -profile`, because wall time is machine-dependent by
	// nature.
	Profile *metrics.Profile `json:"profile,omitempty"`
}

// Metric is one extracted series: Values holds a single element for a
// plain run and one element per sweep point (in value order) for a
// sweep. Values carries legitimate zeros, so it has no omitempty.
type Metric struct {
	Name   string    `json:"name"`
	Path   string    `json:"path"`
	Values []float64 `json:"values"`
}

// ReportJSON renders a Report as indented JSON with a stable field
// order (struct declaration order; times are virtual nanoseconds). The
// CLI's -json flag and library consumers share this one marshaller.
func ReportJSON(r *Report) ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// options collects Simulate's functional options.
type options struct {
	observer      serve.Observer
	progressEvery int
	sweepWorkers  int
	profile       bool
	counter       *atomic.Int64
}

// Option customizes a Simulate call without touching the Spec — the
// Spec stays a pure, serializable experiment description while
// process-local concerns (event hooks) ride alongside.
type Option func(*options)

// WithObserver streams simulation events (arrival, routing, admission,
// preemption, first token, completion, progress ticks) to fn as they
// happen, in deterministic order for a fixed spec.
func WithObserver(fn serve.Observer) Option {
	return func(o *options) { o.observer = fn }
}

// WithProgressEvery emits an EventProgress tick every n completions
// (default: every 10% of the workload). Only meaningful with
// WithObserver.
func WithProgressEvery(n int) Option {
	return func(o *options) { o.progressEvery = n }
}

// WithSweepWorkers bounds the sweep worker pool (default: one worker
// per CPU, capped at the point count). The assembled series is
// bit-identical at any worker count — this is a resource knob, not a
// results knob. An observer overrides it to one worker so the event
// stream stays in point order. Ignored for non-sweep specs.
func WithSweepWorkers(n int) Option {
	return func(o *options) { o.sweepWorkers = n }
}

// WithProfile records the simulator's own cost into Report.Profile:
// wall time, events processed, events/sec, allocation churn, and heap
// high-water mark. The simulated results are unaffected — only the
// profile block itself is machine-dependent.
func WithProfile() Option {
	return func(o *options) {
		o.profile = true
		if o.counter == nil {
			o.counter = new(atomic.Int64)
		}
	}
}

// withCounter shares an existing event counter: sweep points feed the
// parent run's tally instead of opening their own.
func withCounter(c *atomic.Int64) Option {
	return func(o *options) { o.counter = c }
}

// chainObs composes two observers, tolerating nils, so internal taps
// (timeline aggregator, profile counter) ride the event stream without
// disturbing the user's observer.
func chainObs(a, b serve.Observer) serve.Observer {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return func(e serve.Event) { a(e); b(e) }
}

// countObs appends the profile event counter to obs when profiling.
func (o *options) countObs(obs serve.Observer) serve.Observer {
	if o.counter == nil {
		return obs
	}
	c := o.counter
	return chainObs(obs, func(serve.Event) { c.Add(1) })
}

// timelineAgg builds the windowed aggregator an observability.timeline
// section requests (nil when absent). initial seeds the active-instance
// level before any join/leave events; fleet-shape series are only
// emitted for multi-instance kinds, and the cache series only when a
// prefix cache is actually configured.
func (s *Spec) timelineAgg(kind Kind, initial int) *metrics.Aggregator {
	if s.Observability == nil || s.Observability.Timeline == nil {
		return nil
	}
	tl := s.Observability.Timeline
	var slo sim.Time
	if s.Serve != nil {
		slo = sim.Time(s.Serve.TTFTSLOMs * 1e6)
	}
	fleet := kind == KindCluster || kind == KindDisagg
	return metrics.NewAggregator(metrics.AggregatorConfig{
		Interval:         sim.Time(tl.IntervalMs * 1e6),
		PerInstance:      tl.PerInstance,
		SLO:              slo,
		InitialInstances: initial,
		FleetSeries:      fleet,
		TransferSeries:   kind == KindDisagg,
		CacheSeries:      fleet && s.Fleet.KVCache != nil,
	})
}

// timelineWindow is the spec's window width as virtual time.
func (s *Spec) timelineWindow() sim.Time {
	return sim.Time(s.Observability.Timeline.IntervalMs * 1e6)
}

// Simulate validates the spec and dispatches it to the engine, serving,
// or cluster layer (see Kind), returning a unified Report; a spec with
// a sweep section runs once per swept value and returns the ordered
// series. The simulation is deterministic for a fixed spec — sweep
// points included, at any worker count: CLI, bench, and library callers
// sharing a spec reproduce identical numbers.
func Simulate(s *Spec, opts ...Option) (*Report, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	if o.observer != nil {
		o.observer = stampSeq(o.observer)
	}
	var before runtime.MemStats
	var start time.Time
	if o.profile {
		runtime.ReadMemStats(&before)
		//skiplint:allow walltime — WithProfile measures the simulator itself (real wall time around the run), not simulated time
		start = time.Now()
	}
	var rep *Report
	var err error
	switch s.Kind() {
	case KindSweep:
		rep, err = s.simulateSweep(&o)
	case KindRun:
		rep, err = s.simulateRun()
	case KindServe:
		rep, err = s.simulateServe(&o)
	case KindDisagg:
		rep, err = s.simulateDisagg(&o)
	default:
		rep, err = s.simulateCluster(&o)
	}
	if err != nil {
		return nil, err
	}
	if o.profile {
		//skiplint:allow walltime — closes the WithProfile wall-clock envelope opened above; profiling-only, never feeds sim results
		wall := time.Since(start)
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		events := o.counter.Load()
		p := &metrics.Profile{
			WallNs:         wall.Nanoseconds(),
			SimulatedNs:    simulatedNs(rep),
			Events:         events,
			Mallocs:        int64(after.Mallocs - before.Mallocs),
			AllocBytes:     int64(after.TotalAlloc - before.TotalAlloc),
			HeapAllocBytes: int64(after.HeapAlloc),
		}
		if wall > 0 {
			p.EventsPerSec = float64(events) / wall.Seconds()
		}
		if events > 0 {
			p.AllocsPerEvent = float64(p.Mallocs) / float64(events)
		}
		rep.Profile = p
	}
	if s.Report != nil {
		if err := s.attachMetrics(rep); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// stampSeq numbers the event stream: every event the observer sees
// carries a strictly increasing Seq, starting at 1. Sweep points
// re-wrap the already-stamped observer; the outer (whole-run) stamp is
// applied last, so one global sequence spans all points in order.
func stampSeq(obs serve.Observer) serve.Observer {
	var seq int64
	return func(e serve.Event) {
		seq++
		e.Seq = seq
		obs(e)
	}
}

// platform resolves the top-level platform reference.
func (s *Spec) platform() (*hw.Platform, error) {
	if s.PlatformFile != "" {
		return hw.LoadPlatformFile(s.resolve(s.PlatformFile))
	}
	return hw.ByName(s.Platform)
}

// mode resolves the execution mode, defaulting to eager.
func (s *Spec) mode() (engine.Mode, error) {
	if s.Mode == "" {
		return engine.Eager, nil
	}
	return engine.ParseMode(s.Mode)
}

func (s *Spec) simulateRun() (*Report, error) {
	p, err := s.platform()
	if err != nil {
		return nil, err
	}
	m, err := models.ByName(s.Model)
	if err != nil {
		return nil, err
	}
	mode, err := s.mode()
	if err != nil {
		return nil, err
	}
	req := engine.Request{Platform: p, Model: m, Batch: s.Run.Batch, Seq: s.Run.Seq, Mode: mode}
	if s.Run.NewTokens > 0 {
		g, err := engine.RunGenerate(req, s.Run.NewTokens)
		if err != nil {
			return nil, err
		}
		return &Report{Kind: KindRun, Generate: g}, nil
	}
	res, err := engine.Run(req)
	if err != nil {
		return nil, err
	}
	return &Report{Kind: KindRun, Run: res}, nil
}

// requests materializes the workload's request stream.
func (s *Spec) requests() ([]serve.Request, error) {
	w := s.Workload
	if w.TraceFile != "" {
		return serve.LoadTraceFile(s.resolve(w.TraceFile))
	}
	if w.Scenario != "" {
		scen, err := serve.ParseScenario(w.Scenario)
		if err != nil {
			return nil, err
		}
		sw := serve.Workload{
			Scenario: scen, N: w.Requests, RatePerSec: w.RatePerSec, Seed: w.Seed,
			Turns: w.Turns, ContextGrowth: w.ContextGrowth,
		}
		if w.Prompt != nil {
			sw.Prompt = w.Prompt.dist()
		}
		if w.Output != nil {
			sw.Output = w.Output.dist()
		}
		return sw.Generate()
	}
	if w.Arrival == "uniform" {
		return serve.UniformArrivals(w.Requests, sim.Time(w.IntervalMs*1e6))
	}
	return serve.PoissonArrivals(w.Requests, w.RatePerSec, w.Seed)
}

func (d *LengthDistSpec) dist() serve.LengthDist {
	return serve.LengthDist{Mean: d.Mean, Sigma: d.Sigma, Min: d.Min, Max: d.Max}
}

// serveConfig builds the serve.Config a ServeSpec describes (platform
// left to the caller: fleet expansion substitutes per-group platforms).
// A nil ServeSpec yields the defaults.
func (s *Spec) serveConfig(obs serve.Observer) (serve.Config, error) {
	v := s.Serve
	if v == nil {
		v = &ServeSpec{}
	}
	policy, err := serve.ParsePolicy(v.policyName())
	if err != nil {
		return serve.Config{}, err
	}
	mode, err := s.mode()
	if err != nil {
		return serve.Config{}, err
	}
	m, err := models.ByName(s.Model)
	if err != nil {
		return serve.Config{}, err
	}
	cfg := serve.Config{
		Model: m, Mode: mode, Policy: policy,
		Seq:              v.Seq,
		MaxBatch:         v.MaxBatch,
		BatchSize:        v.BatchSize,
		MaxWait:          sim.Time(v.MaxWaitMs * 1e6),
		DefaultOutputLen: v.DefaultOutputTokens,
		PrefillChunk:     v.PrefillChunk,
		KVMemoryUtil:     v.KVMemoryUtil,
		KVCapacityBytes:  v.KVCapacityBytes,
		TTFTSLO:          sim.Time(v.TTFTSLOMs * 1e6),
		AbandonAfter:     sim.Time(v.AbandonAfterMs * 1e6),
		LatencyBucket:    v.LatencyBucket,
		Observer:         obs,
	}
	if cfg.Seq == 0 {
		cfg.Seq = 512
	}
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = 32
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 8
	}
	if policy == serve.StaticBatch && cfg.MaxWait == 0 {
		cfg.MaxWait = 100 * sim.Millisecond
	}
	return cfg, nil
}

func (s *Spec) simulateServe(o *options) (*Report, error) {
	reqs, err := s.requests()
	if err != nil {
		return nil, err
	}
	agg := s.timelineAgg(KindServe, 1)
	obs := progressObserver(o.observer, len(reqs), o.progressEvery)
	if agg != nil {
		obs = chainObs(obs, agg.Observe)
	}
	cfg, err := s.serveConfig(o.countObs(obs))
	if err != nil {
		return nil, err
	}
	if agg != nil {
		cfg.EmitStateSamples = true
		cfg.SampleWindow = s.timelineWindow()
	}
	cfg.Platform, err = s.platform()
	if err != nil {
		return nil, err
	}
	st, err := serve.Simulate(cfg, reqs)
	if err != nil {
		return nil, err
	}
	rep := &Report{Kind: KindServe, Serve: st, Offered: len(reqs)}
	if agg != nil {
		rep.Timeline = agg.Finish(st.Horizon)
	}
	return rep, nil
}

func (s *Spec) simulateCluster(o *options) (*Report, error) {
	reqs, err := s.requests()
	if err != nil {
		return nil, err
	}
	base, err := s.serveConfig(nil)
	if err != nil {
		return nil, err
	}
	f := s.Fleet
	if f.KVCache != nil {
		base.KVCache, err = f.KVCache.config()
		if err != nil {
			return nil, err
		}
	}
	initial := 0
	for _, g := range f.Groups {
		initial += g.Count
	}
	agg := s.timelineAgg(KindCluster, initial)
	if agg != nil {
		base.EmitStateSamples = true
		base.SampleWindow = s.timelineWindow()
	}
	groups := make([]cluster.FleetGroup, len(f.Groups))
	for i, g := range f.Groups {
		p, err := hw.ByName(g.Platform)
		if err != nil {
			return nil, err
		}
		groups[i] = cluster.FleetGroup{Platform: p, Count: g.Count}
	}
	instances, err := cluster.FleetConfigs(groups, base)
	if err != nil {
		return nil, err
	}
	router, err := cluster.ParsePolicy(f.routerName())
	if err != nil {
		return nil, err
	}
	obs := progressObserver(o.observer, len(reqs), o.progressEvery)
	if agg != nil {
		obs = chainObs(obs, agg.Observe)
	}
	ccfg := cluster.Config{
		Instances:       instances,
		Policy:          router,
		ShortPrompt:     f.ShortPrompt,
		TTFTSLO:         base.TTFTSLO,
		AdmitRatePerSec: f.AdmitRatePerSec,
		AdmitBurst:      f.AdmitBurst,
		Observer:        o.countObs(obs),
	}
	if s.Observability != nil {
		ccfg.CounterfactualK = s.Observability.CounterfactualK
	}
	if f.Autoscale != nil {
		ccfg.Autoscale, err = f.Autoscale.config(base)
		if err != nil {
			return nil, err
		}
	}
	if f.Faults != nil {
		ccfg.Faults = f.Faults.config()
	}
	st, err := cluster.Simulate(ccfg, reqs)
	if err != nil {
		return nil, err
	}
	rep := &Report{Kind: KindCluster, Cluster: st, Offered: len(reqs)}
	if agg != nil {
		rep.Timeline = agg.Finish(st.Horizon)
	}
	return rep, nil
}

func (s *Spec) simulateDisagg(o *options) (*Report, error) {
	reqs, err := s.requests()
	if err != nil {
		return nil, err
	}
	base, err := s.serveConfig(nil)
	if err != nil {
		return nil, err
	}
	f := s.Fleet
	d := f.Disaggregation
	if f.KVCache != nil {
		base.KVCache, err = f.KVCache.config()
		if err != nil {
			return nil, err
		}
	}
	initial := 0
	for _, g := range f.Groups {
		initial += g.Count
	}
	agg := s.timelineAgg(KindDisagg, initial)
	if agg != nil {
		base.EmitStateSamples = true
		base.SampleWindow = s.timelineWindow()
	}
	groups := make([]disagg.Group, len(f.Groups))
	for i, g := range f.Groups {
		p, err := hw.ByName(g.Platform)
		if err != nil {
			return nil, err
		}
		role, err := disagg.ParseRole(g.Role)
		if err != nil {
			return nil, err
		}
		groups[i] = disagg.Group{Platform: p, Count: g.Count, Role: role}
	}
	prefillRouter, err := cluster.ParsePolicy(d.prefillRouterName())
	if err != nil {
		return nil, err
	}
	decodeRouter, err := cluster.ParsePolicy(d.decodeRouterName())
	if err != nil {
		return nil, err
	}
	obs := progressObserver(o.observer, len(reqs), o.progressEvery)
	if agg != nil {
		obs = chainObs(obs, agg.Observe)
	}
	dcfg := disagg.Config{
		Groups:        groups,
		Base:          base,
		PrefillPolicy: prefillRouter,
		DecodePolicy:  decodeRouter,
		ShortPrompt:   f.ShortPrompt,
		Transfer: disagg.TransferModel{
			HostHopMultiplier: d.HostHopMultiplier,
			BandwidthGBps:     d.BandwidthGBps,
			OverlapFraction:   d.OverlapFraction,
		},
		LinkAwareDecode: d.LinkAwareDecode,
		TTFTSLO:         base.TTFTSLO,
		AdmitRatePerSec: f.AdmitRatePerSec,
		AdmitBurst:      f.AdmitBurst,
		Observer:        o.countObs(obs),
	}
	if s.Observability != nil {
		dcfg.CounterfactualK = s.Observability.CounterfactualK
	}
	if f.Autoscale != nil {
		dcfg.Autoscale, err = f.Autoscale.config(base)
		if err != nil {
			return nil, err
		}
		dcfg.AutoscaleRole, err = disagg.ParseRole(f.Autoscale.roleName())
		if err != nil {
			return nil, err
		}
	}
	if f.Faults != nil {
		dcfg.Faults = f.Faults.config()
	}
	st, err := disagg.Simulate(dcfg, reqs)
	if err != nil {
		return nil, err
	}
	rep := &Report{Kind: KindDisagg, Disagg: st, Offered: len(reqs)}
	if agg != nil {
		rep.Timeline = agg.Finish(st.Horizon)
	}
	return rep, nil
}

// config builds the cluster.AutoscaleConfig an AutoscaleSpec describes:
// the spun-up template clones the base serving config with the named
// platform substituted.
func (a *AutoscaleSpec) config(base serve.Config) (*cluster.AutoscaleConfig, error) {
	p, err := hw.ByName(a.Platform)
	if err != nil {
		return nil, err
	}
	tmpl := base
	tmpl.Platform = p
	signal, err := cluster.ParseScaleSignal(a.signalName())
	if err != nil {
		return nil, err
	}
	return &cluster.AutoscaleConfig{
		Template:    tmpl,
		Signal:      signal,
		Target:      a.Target,
		Min:         a.Min,
		Max:         a.Max,
		Interval:    sim.Time(a.IntervalMs * 1e6),
		Cooldown:    sim.Time(a.CooldownMs * 1e6),
		SpinUpDelay: sim.Time(a.SpinUpDelayMs * 1e6),
		SLOWindow:   a.SLOWindow,
	}, nil
}

// config builds the serve.KVCacheConfig a KVCacheSpec describes.
func (k *KVCacheSpec) config() (*serve.KVCacheConfig, error) {
	policy, err := kvcache.ParsePolicy(k.policyName())
	if err != nil {
		return nil, err
	}
	return &serve.KVCacheConfig{
		BlockTokens:     k.BlockTokens,
		DeviceBlocks:    k.DeviceBlocks,
		HostSpillBlocks: k.HostSpillBlocks,
		Policy:          policy,
	}, nil
}

// config builds the cluster.FaultsConfig a FaultsSpec describes.
func (fc *FaultsSpec) config() *cluster.FaultsConfig {
	out := &cluster.FaultsConfig{
		CrashRatePerSec: fc.CrashRatePerSec,
		Seed:            fc.Seed,
	}
	for _, ft := range fc.Schedule {
		kind, _ := cluster.ParseFaultKind(ft.Kind) // validated already
		out.Faults = append(out.Faults, cluster.Fault{
			At:     sim.Time(ft.AtMs * 1e6),
			Kind:   kind,
			Target: ft.Instance,
			Dst:    ft.Dst,
			Factor: ft.Factor,
		})
	}
	return out
}

// simulatedNs extracts the virtual span a report covers (sweeps sum
// their points), giving Profile a simulated-vs-wall time ratio.
func simulatedNs(rep *Report) int64 {
	switch {
	case rep.Serve != nil:
		return int64(rep.Serve.Horizon)
	case rep.Cluster != nil:
		return int64(rep.Cluster.Horizon)
	case rep.Disagg != nil:
		return int64(rep.Disagg.Horizon)
	case rep.Sweep != nil:
		var total int64
		for i := range rep.Sweep {
			if rep.Sweep[i].Report != nil {
				total += simulatedNs(rep.Sweep[i].Report)
			}
		}
		return total
	}
	return 0
}

// progressObserver forwards events to obs and interleaves an
// EventProgress tick every `every` completions (default: every 10% of
// total, at least 1). A nil obs disables observation entirely.
func progressObserver(obs serve.Observer, total, every int) serve.Observer {
	if obs == nil {
		return nil
	}
	if every <= 0 {
		every = total / 10
		if every < 1 {
			every = 1
		}
	}
	done := 0
	return func(e serve.Event) {
		obs(e)
		if e.Type != serve.EventCompleted {
			return
		}
		done++
		if done%every == 0 || done == total {
			obs(serve.Event{Time: e.Time, Type: serve.EventProgress, Completed: done, Total: total})
		}
	}
}
