package spec

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/skipsim/skip/internal/engine"
	"github.com/skipsim/skip/internal/hw"
	"github.com/skipsim/skip/internal/models"
	"github.com/skipsim/skip/internal/serve"
)

// testServeSpec is a small, fast serve experiment.
func testServeSpec() *Spec {
	return &Spec{
		Platform: hw.GH200Name,
		Model:    "llama-3.2-1B",
		Workload: &WorkloadSpec{
			Scenario: "chat", Requests: 10, RatePerSec: 20, Seed: 7,
			Prompt: &LengthDistSpec{Mean: 256, Sigma: 0.5, Min: 32, Max: 512},
			Output: &LengthDistSpec{Mean: 16, Sigma: 0.4, Min: 4, Max: 32},
		},
		Serve: &ServeSpec{MaxBatch: 16, Seq: 256, LatencyBucket: 256},
	}
}

func testFleetSpec() *Spec {
	s := testServeSpec()
	s.Platform = ""
	s.Fleet = &FleetSpec{Groups: []FleetGroupSpec{
		{Platform: hw.GH200Name, Count: 1},
		{Platform: hw.IntelH100Name, Count: 1},
	}}
	return s
}

func TestSimulateDispatch(t *testing.T) {
	runSpec := &Spec{
		Platform: hw.GH200Name, Model: "llama-3.2-1B",
		Run: &RunSpec{Batch: 1, Seq: 128},
	}
	rep, err := Simulate(runSpec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != KindRun || rep.Run == nil || rep.Serve != nil || rep.Cluster != nil {
		t.Errorf("run spec: kind %v, sections run=%v serve=%v cluster=%v",
			rep.Kind, rep.Run != nil, rep.Serve != nil, rep.Cluster != nil)
	}

	runSpec.Run.NewTokens = 4
	rep, err = Simulate(runSpec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != KindRun || rep.Generate == nil || rep.Run != nil {
		t.Error("run spec with new_tokens should fill Generate, not Run")
	}

	rep, err = Simulate(testServeSpec())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != KindServe || rep.Serve == nil || rep.Offered != 10 {
		t.Errorf("serve spec: kind %v, serve=%v, offered %d", rep.Kind, rep.Serve != nil, rep.Offered)
	}

	rep, err = Simulate(testFleetSpec())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != KindCluster || rep.Cluster == nil {
		t.Errorf("fleet spec: kind %v, cluster=%v", rep.Kind, rep.Cluster != nil)
	}
	if rep.Cluster.Routed != 10 || len(rep.Cluster.Instances) != 2 {
		t.Errorf("fleet routed %d over %d instances", rep.Cluster.Routed, len(rep.Cluster.Instances))
	}
}

// TestSimulateMatchesLegacyPath pins the redesign's compatibility
// promise: a Spec reproduces exactly what the imperative entry points
// produce from the equivalent config.
func TestSimulateMatchesLegacyPath(t *testing.T) {
	rep, err := Simulate(testServeSpec())
	if err != nil {
		t.Fatal(err)
	}

	p, err := hw.ByName(hw.GH200Name)
	if err != nil {
		t.Fatal(err)
	}
	m, err := models.ByName("llama-3.2-1B")
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := serve.Workload{
		Scenario: serve.ScenarioChat, N: 10, RatePerSec: 20, Seed: 7,
		Prompt: serve.LengthDist{Mean: 256, Sigma: 0.5, Min: 32, Max: 512},
		Output: serve.LengthDist{Mean: 16, Sigma: 0.4, Min: 4, Max: 32},
	}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := serve.Simulate(serve.Config{
		Platform: p, Model: m, Seq: 256, Mode: engine.Eager,
		Policy: serve.ContinuousBatch, MaxBatch: 16, BatchSize: 8, LatencyBucket: 256,
	}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.Serve, legacy) {
		t.Errorf("spec path diverged from legacy path:\n spec   %+v\n legacy %+v", rep.Serve, legacy)
	}
}

func TestObserverEventOrdering(t *testing.T) {
	record := func() []serve.Event {
		var events []serve.Event
		_, err := Simulate(testFleetSpec(), WithObserver(func(e serve.Event) {
			events = append(events, e)
		}), WithProgressEvery(4))
		if err != nil {
			t.Fatal(err)
		}
		return events
	}

	events := record()
	if !reflect.DeepEqual(events, record()) {
		t.Fatal("event stream is not deterministic across reruns of the same spec")
	}

	// Times never go backwards: events fire from the shared calendar.
	for i := 1; i < len(events); i++ {
		if events[i].Time < events[i-1].Time {
			t.Fatalf("event %d at %v precedes event %d at %v", i, events[i].Time, i-1, events[i-1].Time)
		}
	}

	// Seq numbers the stream 1, 2, 3, … with no gaps or repeats, so a
	// JSONL dump diffs cleanly across runs.
	for i, e := range events {
		if e.Seq != int64(i+1) {
			t.Fatalf("event %d has Seq %d, want %d", i, e.Seq, i+1)
		}
	}

	// Per-request lifecycle order: routed → arrival → admitted →
	// first-token → completed, with the routed instance matching the
	// serving instance.
	type lifecycle struct {
		order    []serve.EventType
		instance string
	}
	byReq := map[int]*lifecycle{}
	progress := 0
	for _, e := range events {
		if e.Type == serve.EventProgress {
			progress++
			continue
		}
		lc := byReq[e.RequestID]
		if lc == nil {
			lc = &lifecycle{}
			byReq[e.RequestID] = lc
		}
		lc.order = append(lc.order, e.Type)
		if e.Type == serve.EventRouted {
			lc.instance = e.Instance
		} else if e.Instance != lc.instance {
			t.Errorf("request %d: %s on %q but routed to %q", e.RequestID, e.Type, e.Instance, lc.instance)
		}
	}
	if len(byReq) != 10 {
		t.Fatalf("saw %d requests, want 10", len(byReq))
	}
	want := []serve.EventType{
		serve.EventRouted, serve.EventArrival, serve.EventAdmitted,
		serve.EventFirstToken, serve.EventCompleted,
	}
	for id, lc := range byReq {
		if !reflect.DeepEqual(lc.order, want) {
			t.Errorf("request %d lifecycle = %v, want %v", id, lc.order, want)
		}
	}
	// 10 completions at a tick every 4 → ticks at 4, 8, and the final
	// completion.
	if progress != 3 {
		t.Errorf("got %d progress ticks, want 3", progress)
	}
}

func TestTraceReplaySpec(t *testing.T) {
	dir := t.TempDir()
	trace := "arrival_ms,prompt_tokens,output_tokens,session_id\n" +
		"0,128,4,1\n5,256,4,2\n9,128,4,1\n20,512,8,0\n"
	if err := os.WriteFile(filepath.Join(dir, "t.csv"), []byte(trace), 0o644); err != nil {
		t.Fatal(err)
	}
	doc := fmt.Sprintf(`{
	  "platform": %q, "model": "llama-3.2-1B",
	  "workload": {"trace_file": "t.csv"},
	  "serve": {"max_batch": 8, "seq": 256, "latency_bucket": 256}
	}`, hw.GH200Name)
	path := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	sp, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Simulate(sp)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Offered != 4 || rep.Serve.Completed != 4 {
		t.Errorf("trace replay completed %d of %d offered, want 4 of 4", rep.Serve.Completed, rep.Offered)
	}

	// Replay is deterministic: no seed, same trace, same stats.
	again, err := Simulate(sp)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.Serve, again.Serve) {
		t.Error("trace replay is not deterministic")
	}
}

func TestUniformArrivalSpec(t *testing.T) {
	s := testServeSpec()
	s.Workload = &WorkloadSpec{Arrival: "uniform", Requests: 6, IntervalMs: 50}
	s.Serve.DefaultOutputTokens = 4
	rep, err := Simulate(s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Serve.Completed != 6 {
		t.Errorf("completed %d of 6 uniform arrivals", rep.Serve.Completed)
	}
}
