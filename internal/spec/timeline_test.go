package spec

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/skipsim/skip/internal/sim"
)

// TestTimelineDeterministic: the windowed timeline of a chaotic fleet —
// autoscale joins, a crash, requeues — must reproduce byte for byte
// across two runs of the same seeded spec, per-instance series
// included. Run under -race in CI this also proves the aggregator holds
// no shared state across runs.
func TestTimelineDeterministic(t *testing.T) {
	run := func() *Report {
		s := chaosFleetBase(t)
		s.Observability = &ObservabilitySpec{
			Timeline: &TimelineSpec{IntervalMs: 20, PerInstance: true},
		}
		rep, err := Simulate(s)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Timeline == nil {
			t.Fatal("observability.timeline set but the report carries no timeline")
		}
		return rep
	}
	a, b := run(), run()
	aj, err := json.Marshal(a.Timeline)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.Marshal(b.Timeline)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Fatal("timelines differ across two runs of the same seeded spec")
	}

	tl := a.Timeline
	iv := sim.Time(20 * 1e6)
	want := int((a.Cluster.Horizon + iv - 1) / iv)
	if tl.Windows != want {
		t.Errorf("windows = %d, want ceil(horizon/interval) = %d", tl.Windows, want)
	}
	for _, s := range tl.Fleet {
		if len(s.Values) != tl.Windows {
			t.Errorf("fleet series %q has %d values, want %d", s.Name, len(s.Values), tl.Windows)
		}
	}

	// Event-derived counters must reconcile with the report ledger.
	var completed float64
	for _, v := range tl.Series("completed") {
		completed += v
	}
	if int(completed) != a.Cluster.Completed {
		t.Errorf("timeline completions sum to %v, ledger says %d", completed, a.Cluster.Completed)
	}

	// A dynamic fleet carries the membership series, and the crash plus
	// autoscale activity must move it.
	active := tl.Series("active_instances")
	if active == nil {
		t.Fatal("cluster timeline lacks the active_instances series")
	}
	min, max := active[0], active[0]
	for _, v := range active {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if min == max {
		t.Errorf("active_instances is flat at %v under autoscale + crash", min)
	}

	if len(tl.Instances) == 0 {
		t.Fatal("per_instance set but no per-instance series present")
	}
	for _, in := range tl.Instances {
		for _, s := range in.Series {
			if len(s.Values) != tl.Windows {
				t.Errorf("instance %s series %q has %d values, want %d", in.Instance, s.Name, len(s.Values), tl.Windows)
			}
		}
	}
}

// TestTimelineServeKind: a single-instance serve spec gets the same
// windowed fleet series (no instance breakdown — a lone unnamed
// instance has nothing to key on).
func TestTimelineServeKind(t *testing.T) {
	s := testServeSpec()
	s.Serve.Policy = "continuous"
	s.Observability = &ObservabilitySpec{Timeline: &TimelineSpec{IntervalMs: 50, PerInstance: true}}
	rep, err := Simulate(s)
	if err != nil {
		t.Fatal(err)
	}
	tl := rep.Timeline
	if tl == nil {
		t.Fatal("no timeline on a serve-kind report")
	}
	if len(tl.Instances) != 0 {
		t.Errorf("serve kind produced %d per-instance blocks, want 0", len(tl.Instances))
	}
	if tl.Series("queue_depth") == nil || tl.Series("kv_occupancy") == nil {
		t.Error("serve timeline lacks the state-sample series")
	}
	if tl.Series("active_instances") != nil {
		t.Error("serve timeline carries a fleet-membership series")
	}
	var completed float64
	for _, v := range tl.Series("completed") {
		completed += v
	}
	if int(completed) != rep.Serve.Completed {
		t.Errorf("timeline completions sum to %v, ledger says %d", completed, rep.Serve.Completed)
	}
}

// TestTimelineOffLeavesNoResidue: without an observability.timeline
// section the report must not mention timelines at all (the golden
// tests then pin full byte-identity).
func TestTimelineOffLeavesNoResidue(t *testing.T) {
	rep, err := Simulate(testFleetSpec())
	if err != nil {
		t.Fatal(err)
	}
	data, err := ReportJSON(rep)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "\"timeline\"") {
		t.Error("timeline-off report mentions a timeline section")
	}
	if strings.Contains(string(data), "\"profile\"") {
		t.Error("profile-off report mentions a profile section")
	}
}

func TestTimelineValidation(t *testing.T) {
	s := testFleetSpec()
	s.Observability = &ObservabilitySpec{Timeline: &TimelineSpec{}}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "interval_ms") {
		t.Errorf("zero interval_ms: err = %v", err)
	}

	run := &Spec{Platform: "GH200", Model: "llama-3.2-1B", Run: &RunSpec{Batch: 1, Seq: 128}}
	run.Observability = &ObservabilitySpec{Timeline: &TimelineSpec{IntervalMs: 100}}
	if err := run.Validate(); err == nil || !strings.Contains(err.Error(), "workload") {
		t.Errorf("timeline on a run spec: err = %v", err)
	}

	sv := &Spec{
		Platform: "GH200", Model: "llama-3.2-1B",
		Workload: &WorkloadSpec{Requests: 10, RatePerSec: 20},
		Serve:    &ServeSpec{Policy: "static"},
	}
	sv.Observability = &ObservabilitySpec{Timeline: &TimelineSpec{IntervalMs: 100}}
	if err := sv.Validate(); err == nil || !strings.Contains(err.Error(), "continuous") {
		t.Errorf("timeline on a static serve policy: err = %v", err)
	}
}

// TestProfileAttached: WithProfile fills the self-measurement block;
// the simulated numbers are untouched.
func TestProfileAttached(t *testing.T) {
	plain, err := Simulate(testFleetSpec())
	if err != nil {
		t.Fatal(err)
	}
	prof, err := Simulate(testFleetSpec(), WithProfile())
	if err != nil {
		t.Fatal(err)
	}
	p := prof.Profile
	if p == nil {
		t.Fatal("WithProfile set but the report carries no profile")
	}
	if p.Events <= 0 || p.EventsPerSec <= 0 {
		t.Errorf("profile counted no events: %+v", p)
	}
	if p.SimulatedNs != int64(prof.Cluster.Horizon) {
		t.Errorf("simulated_ns = %d, want horizon %d", p.SimulatedNs, prof.Cluster.Horizon)
	}
	if p.WallNs <= 0 {
		t.Errorf("wall_ns = %d, want > 0", p.WallNs)
	}
	// The profile tap must not perturb the simulation itself.
	prof.Profile = nil
	pj, _ := ReportJSON(plain)
	qj, _ := ReportJSON(prof)
	if !bytes.Equal(pj, qj) {
		t.Error("profiling changed the simulated report")
	}
}
