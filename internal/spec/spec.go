// Package spec is the declarative front door of SKIP-Sim: one
// JSON-serializable Spec describes an experiment — the platform, model,
// and execution mode, the workload that arrives (scenario generators,
// Poisson/uniform arrival processes, or a logged request trace), the
// serving configuration, and optionally a multi-instance fleet — and
// Simulate dispatches it to the engine, serving, or cluster layer based
// on which sections are present.
//
// The Spec replaces three parallel entry points (skip.Run, skip.Serve,
// skip.SimulateCluster), each with its own config plumbing: a CLI
// subcommand, a bench experiment, and a library caller can now share
// one document, round-trippable via Load/Save, and consume one Report.
package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Spec is a complete, JSON-serializable experiment description.
//
// Section presence selects the simulation layer (see Kind):
//
//   - run only                 → a single engine inference (KindRun)
//   - workload + serve         → one serving instance (KindServe)
//   - workload + fleet [+serve] → a routed multi-instance fleet
//     (KindCluster; serve acts as the per-instance base config)
type Spec struct {
	// Platform names a catalog platform (see hw.PlatformNames) for run
	// and serve specs; fleet specs name platforms per group instead.
	Platform string `json:"platform,omitempty"`
	// PlatformFile loads a custom platform definition (JSON) instead of
	// Platform, for what-if hardware studies. Relative paths resolve
	// against the spec file's directory.
	PlatformFile string `json:"platform_file,omitempty"`
	// Model names a catalog model (see models.ModelNames). Required.
	Model string `json:"model"`
	// Mode is the execution mode name ("eager", "flash",
	// "compile-default", "compile-reduce-overhead",
	// "compile-max-autotune"). Empty means eager.
	Mode string `json:"mode,omitempty"`

	// Run describes a single inference (mutually exclusive with
	// Workload/Serve/Fleet).
	Run *RunSpec `json:"run,omitempty"`
	// Workload describes the request stream for serve and fleet specs.
	Workload *WorkloadSpec `json:"workload,omitempty"`
	// Serve configures the serving instance (or, with Fleet, the base
	// config every instance inherits).
	Serve *ServeSpec `json:"serve,omitempty"`
	// Fleet configures a multi-instance fleet behind a router.
	Fleet *FleetSpec `json:"fleet,omitempty"`
	// Sweep runs the experiment once per value of one document field and
	// returns a Report series (Kind "sweep") instead of a single result.
	Sweep *SweepSpec `json:"sweep,omitempty"`
	// Observability turns on request-level instrumentation that default
	// runs omit: routing decision records with counterfactual scoring.
	Observability *ObservabilitySpec `json:"observability,omitempty"`
	// Report derives named metric series from the result document:
	// report leaves selected by JSON path, extracted per sweep point.
	Report *ReportSpec `json:"report,omitempty"`

	// baseDir is the directory relative file references (trace_file,
	// platform_file) resolve against; Load sets it to the spec file's
	// directory, Parse leaves it empty (the process working directory).
	baseDir string
}

// SweepSpec sweeps one document field across a value series: the base
// spec is cloned once per value, the named leaf substituted, and every
// point simulated as an independent experiment. Points execute
// concurrently on a bounded worker pool (see WithSweepWorkers) and the
// series is reassembled in value order, so a sweep Report is
// bit-identical to running the points serially by hand.
//
// The base document must be valid standalone — the swept field keeps
// its base value as a placeholder — and each point is re-validated
// after substitution, so a value that would make the document invalid
// fails with the offending point named.
type SweepSpec struct {
	// Field names the swept leaf by its JSON path from the document
	// root, e.g. "workload.rate_per_sec", "serve.max_batch",
	// "fleet.disaggregation.bandwidth_gbps", or an indexed
	// "fleet.groups[0].count". The section holding the leaf must be
	// present in the base document; only numeric and string leaves are
	// sweepable.
	Field string `json:"field"`
	// Values lists the points explicitly — numbers or strings, matching
	// the leaf's type (integer leaves need integral values). Mutually
	// exclusive with the range form.
	Values []any `json:"values,omitempty"`
	// From/To/Steps is the range form: Steps points from From to To
	// inclusive, for numeric leaves only.
	From  float64 `json:"from,omitempty"`
	To    float64 `json:"to,omitempty"`
	Steps int     `json:"steps,omitempty"`
	// Scale spaces the range points: "linear" (the default) or "log"
	// (geometric spacing; needs positive from and to).
	Scale string `json:"scale,omitempty"`
}

// ObservabilitySpec enables request-level instrumentation. All knobs
// default off, so a spec without this section reports bit-identically
// to one that never had it.
type ObservabilitySpec struct {
	// CounterfactualK, when positive, records every routing decision
	// (fleet specs only) with up to K scored alternatives, plus replays
	// of the stateless policies over the same picks — the report then
	// carries cluster.Routing or disagg.PrefillRouting/DecodeRouting.
	CounterfactualK int `json:"counterfactual_k,omitempty"`
	// Timeline, when present, aggregates the run into per-interval
	// windowed fleet series (TTFT/TPOT percentiles, throughput, SLO
	// attainment, queue depth, KV occupancy, and — per layer — fleet
	// size, transfer backlog, cache hit rate): the report then carries
	// Report.Timeline. Serve and fleet specs with a continuous policy
	// only.
	Timeline *TimelineSpec `json:"timeline,omitempty"`
}

// TimelineSpec configures windowed timeline aggregation.
type TimelineSpec struct {
	// IntervalMs is the window width in milliseconds. Required,
	// positive.
	IntervalMs float64 `json:"interval_ms"`
	// PerInstance additionally emits a per-instance series subset for
	// every instance that appears in the run (fleet specs).
	PerInstance bool `json:"per_instance,omitempty"`
}

// MetricSpec names one report leaf to extract as a flat series.
type MetricSpec struct {
	// Name labels the series; empty defaults to Path.
	Name string `json:"name,omitempty"`
	// Path is the leaf's JSON path from the report root, e.g.
	// "serve.P95TTFT", "cluster.Goodput", "cluster.Chaos.Killed",
	// "disagg.Instances[0].Serve.TokensPerSec". Section names use the
	// report's JSON keys; struct fields use their Go names (the report
	// structs serialize field names verbatim). Only numeric leaves are
	// extractable.
	Path string `json:"path"`
}

// ReportSpec selects derived metrics: each named leaf is extracted from
// the finished report — once for a single run, once per point for a
// sweep — and surfaced as Report.Metrics, a flat named series that
// spares consumers walking nested report documents.
type ReportSpec struct {
	Metrics []MetricSpec `json:"metrics"`
}

// RunSpec describes a single engine inference.
type RunSpec struct {
	// Batch is the batch size. Required, positive.
	Batch int64 `json:"batch"`
	// Seq is the input sequence length in tokens. Required, positive.
	Seq int64 `json:"seq"`
	// NewTokens, when positive, runs prefill plus that many
	// autoregressive decode steps (RunGenerate) instead of prefill only.
	NewTokens int `json:"new_tokens,omitempty"`
}

// LengthDistSpec is a clamped lognormal token-length distribution
// (serve.LengthDist in JSON form).
type LengthDistSpec struct {
	Mean  float64 `json:"mean"`
	Sigma float64 `json:"sigma,omitempty"`
	Min   int64   `json:"min,omitempty"`
	Max   int64   `json:"max,omitempty"`
}

// WorkloadSpec describes the request stream. Exactly one source
// applies: a scenario generator (Scenario set), a logged request trace
// (TraceFile set), or a bare arrival process with config-default
// lengths (neither set).
type WorkloadSpec struct {
	// Scenario selects a workload generator: "chat", "agentic",
	// "summarize", or "mixed".
	Scenario string `json:"scenario,omitempty"`
	// TraceFile replays a logged request stream instead of generating
	// one: CSV with an arrival_ms,prompt_tokens,output_tokens,session_id
	// header (see serve.ParseTrace). Relative paths resolve against the
	// spec file's directory.
	TraceFile string `json:"trace_file,omitempty"`
	// Arrival selects the arrival process for non-trace workloads:
	// "poisson" (default) or "uniform" (fixed interval; no scenario).
	Arrival string `json:"arrival,omitempty"`
	// Requests is the stream length. Required unless TraceFile is set.
	Requests int `json:"requests,omitempty"`
	// RatePerSec is the Poisson arrival rate.
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// IntervalMs is the uniform arrival interval in milliseconds.
	IntervalMs float64 `json:"interval_ms,omitempty"`
	// Seed drives all workload randomness; a fixed (scenario, requests,
	// rate, seed) tuple reproduces the identical stream.
	Seed int64 `json:"seed,omitempty"`
	// Prompt / Output override the scenario's length distributions.
	Prompt *LengthDistSpec `json:"prompt,omitempty"`
	Output *LengthDistSpec `json:"output,omitempty"`
	// Turns is the agentic trajectory length (default 4).
	Turns int `json:"turns,omitempty"`
	// ContextGrowth is the agentic per-turn prompt growth in tokens
	// (default 256).
	ContextGrowth int64 `json:"context_growth,omitempty"`
}

// ServeSpec configures a serving instance (serve.Config in JSON form).
// Zero fields take the documented defaults.
type ServeSpec struct {
	// Policy is the batching policy: "continuous" (default),
	// "chunked-prefill", "static", or "greedy". Fleet instances need a
	// continuous policy.
	Policy string `json:"policy,omitempty"`
	// MaxBatch caps the running-set (or greedy group) size. Default 32.
	MaxBatch int `json:"max_batch,omitempty"`
	// BatchSize is the static policy's target batch. Default 8.
	BatchSize int `json:"batch_size,omitempty"`
	// MaxWaitMs bounds how long static holds a partial batch. Default
	// 100ms.
	MaxWaitMs float64 `json:"max_wait_ms,omitempty"`
	// Seq is the prompt length for requests without one. Default 512.
	Seq int64 `json:"seq,omitempty"`
	// DefaultOutputTokens is the generation length for requests without
	// one. Default 1 (prefill-equivalent).
	DefaultOutputTokens int64 `json:"default_output_tokens,omitempty"`
	// PrefillChunk is the chunked-prefill chunk size in tokens. Default
	// 512.
	PrefillChunk int64 `json:"prefill_chunk,omitempty"`
	// KVMemoryUtil is the HBM fraction usable for weights + KV cache.
	// Like every spec field, zero means unset and takes the default
	// (0.9); set KVCapacityBytes to force a specific budget.
	KVMemoryUtil float64 `json:"kv_memory_util,omitempty"`
	// KVCapacityBytes overrides the derived KV budget when positive.
	KVCapacityBytes float64 `json:"kv_capacity_bytes,omitempty"`
	// TTFTSLOMs is the time-to-first-token objective for goodput
	// accounting, in milliseconds (0 disables). For fleet specs it is
	// also the fleet-level SLO.
	TTFTSLOMs float64 `json:"ttft_slo_ms,omitempty"`
	// AbandonAfterMs drops requests still queued after this many
	// milliseconds (0: never).
	AbandonAfterMs float64 `json:"abandon_after_ms,omitempty"`
	// LatencyBucket quantizes the cached iteration-latency oracle in
	// tokens. Default 64; coarser runs faster.
	LatencyBucket int64 `json:"latency_bucket,omitempty"`
}

// FleetGroupSpec is one homogeneous slice of a fleet.
type FleetGroupSpec struct {
	// Platform names a catalog platform.
	Platform string `json:"platform"`
	// Count is the number of instances. Required, positive.
	Count int `json:"count"`
	// Role assigns the group to a disaggregation pool: "prefill",
	// "decode", or "both" (the default). Only valid when the fleet has a
	// disaggregation section; the same platform may then appear once per
	// role.
	Role string `json:"role,omitempty"`
}

// FleetSpec configures a multi-instance fleet behind a front-end
// router with optional token-bucket admission control.
type FleetSpec struct {
	// Groups lists the fleet's homogeneous slices. Required, non-empty,
	// no duplicate platforms.
	Groups []FleetGroupSpec `json:"groups"`
	// Router is the routing policy: "least-queue" (default),
	// "round-robin", "least-kv", "session-affinity", "platform-aware",
	// "prefix-affinity" (scores cached-block overlap; needs kv_cache to
	// beat least-queue).
	Router string `json:"router,omitempty"`
	// ShortPrompt is the platform-aware regime boundary in prompt
	// tokens. Default 512.
	ShortPrompt int64 `json:"short_prompt,omitempty"`
	// AdmitRatePerSec enables token-bucket admission control (0: off).
	AdmitRatePerSec float64 `json:"admit_rate_per_sec,omitempty"`
	// AdmitBurst is the bucket depth in requests (default: one second's
	// refill).
	AdmitBurst float64 `json:"admit_burst,omitempty"`
	// Disaggregation enables prefill/decode disaggregated serving:
	// groups take roles, completed prefills hand their KV cache to a
	// decode-pool instance over the interconnect-priced transfer model,
	// and the report carries the cross-pool ledger and transfer
	// economics. Without it, Router places requests on a monolithic
	// fleet and group roles are rejected.
	Disaggregation *DisaggregationSpec `json:"disaggregation,omitempty"`
	// Autoscale grows and shrinks the fleet against a load signal while
	// the simulation runs; the report then carries the churn ledger and
	// fleet-size series. Without it (and without faults) membership is
	// static and the report is bit-identical to the pre-lifecycle
	// output.
	Autoscale *AutoscaleSpec `json:"autoscale,omitempty"`
	// Faults injects instance crashes, slow-node multipliers, and (for
	// disaggregated fleets) degraded links on schedule or at
	// seeded-random instants.
	Faults *FaultsSpec `json:"faults,omitempty"`
	// KVCache gives every instance a block-level prefix cache
	// (internal/kvcache): repeated session prefixes earn prefill reuse
	// credit, and the report carries the cache ledger. Without it no
	// instance caches and reports are bit-identical to the pre-cache
	// output.
	KVCache *KVCacheSpec `json:"kv_cache,omitempty"`
}

// KVCacheSpec configures the per-instance block-level prefix cache
// (serve.KVCacheConfig in JSON form). Every instance in the fleet gets
// its own private cache with these dimensions.
type KVCacheSpec struct {
	// BlockTokens is the tokens-per-block granularity. Default 32.
	BlockTokens int64 `json:"block_tokens,omitempty"`
	// DeviceBlocks is the device-tier capacity in blocks. Required,
	// positive.
	DeviceBlocks int `json:"device_blocks"`
	// HostSpillBlocks is the host-memory spill tier's capacity in
	// blocks (0 — the default — drops evicted blocks instead of
	// spilling; restores from the spill tier are priced through the
	// platform interconnect, near-free on coupled parts).
	HostSpillBlocks int `json:"host_spill_blocks,omitempty"`
	// Policy is the eviction policy: "lru" (default) or "fifo".
	Policy string `json:"policy,omitempty"`
}

// AutoscaleSpec configures the fleet autoscale controller
// (cluster.AutoscaleConfig in JSON form). Spun-up instances clone the
// spec's serve section with the named platform substituted.
type AutoscaleSpec struct {
	// Platform names the catalog platform spun-up instances run on.
	// Required.
	Platform string `json:"platform"`
	// Signal selects the tracked load signal: "queue-depth" (the
	// default; outstanding requests per active instance),
	// "slo-attainment" (rolling TTFT-SLO fraction; needs
	// serve.ttft_slo_ms), or "transfer-queue" (pending KV transfers per
	// active decode instance; disaggregated fleets only).
	Signal string `json:"signal,omitempty"`
	// Target is the signal's setpoint. Required, positive; in (0,1] for
	// slo-attainment.
	Target float64 `json:"target"`
	// Min / Max bound the active-instance count. Max is required; the
	// configured base fleet is a floor regardless of Min.
	Min int `json:"min,omitempty"`
	Max int `json:"max"`
	// IntervalMs is the controller period (default 1000ms); CooldownMs
	// the minimum time between scale actions (default 2× interval).
	IntervalMs float64 `json:"interval_ms,omitempty"`
	CooldownMs float64 `json:"cooldown_ms,omitempty"`
	// SpinUpDelayMs is the lag between a grow decision and the instance
	// joining (default: 2000ms coupled, 4000ms loosely-coupled).
	SpinUpDelayMs float64 `json:"spin_up_delay_ms,omitempty"`
	// SLOWindow is the rolling per-instance sample window of the
	// slo-attainment signal (default 50).
	SLOWindow int `json:"slo_window,omitempty"`
	// Role names the pool the controller scales in a disaggregated
	// fleet: "prefill", "decode" (the default — decode capacity is what
	// transfer pressure starves), or "both". Rejected for monolithic
	// fleets.
	Role string `json:"role,omitempty"`
}

// FaultSpec is one scheduled fault injection.
type FaultSpec struct {
	// AtMs is the injection instant in milliseconds.
	AtMs float64 `json:"at_ms"`
	// Kind is the failure mode: "crash", "slow-node", or
	// "link-degraded" (disaggregated fleets only).
	Kind string `json:"kind"`
	// Instance is the victim's index in the flattened fleet (groups in
	// order; for link faults, the transfer source). An index that does
	// not exist at fire time — or an already stopped instance — makes
	// the fault a no-op.
	Instance int `json:"instance"`
	// Dst is a link fault's destination-instance index.
	Dst int `json:"dst,omitempty"`
	// Factor is the slow-node iteration multiplier or the link
	// bandwidth divisor (≥ 1).
	Factor float64 `json:"factor,omitempty"`
}

// FaultsSpec configures fault injection (cluster.FaultsConfig in JSON
// form).
type FaultsSpec struct {
	// Schedule lists deterministic injections.
	Schedule []FaultSpec `json:"schedule,omitempty"`
	// CrashRatePerSec adds seeded-random crashes: a Poisson process
	// over the arrival window, victims drawn uniformly from the
	// survivors; crashes the fleet could not survive are skipped.
	CrashRatePerSec float64 `json:"crash_rate_per_sec,omitempty"`
	// Seed drives the random-crash plan.
	Seed int64 `json:"seed,omitempty"`
}

// DisaggregationSpec configures prefill/decode disaggregation for a
// fleet (see internal/disagg).
type DisaggregationSpec struct {
	// PrefillRouter places fresh arrivals on the prefill pool:
	// "least-queue" (default), "round-robin", "least-kv",
	// "session-affinity", "platform-aware".
	PrefillRouter string `json:"prefill_router,omitempty"`
	// DecodeRouter places completed prefills on the decode pool
	// (default "least-kv" — decode placement is a KV-capacity
	// decision).
	DecodeRouter string `json:"decode_router,omitempty"`
	// HostHopMultiplier scales KV-transfer wire time once per
	// loosely-coupled endpoint (default 2: store-and-forward through
	// host DRAM; 1 disables the penalty).
	HostHopMultiplier float64 `json:"host_hop_multiplier,omitempty"`
	// BandwidthGBps, when positive, overrides both endpoints'
	// interconnect bandwidth for transfers — the what-if knob for
	// sweeping the disaggregation crossover.
	BandwidthGBps float64 `json:"bandwidth_gbps,omitempty"`
	// OverlapFraction models chunked/layerwise KV shipping: this
	// fraction of each transfer's wire time hides behind decode start
	// (the link stays busy for the full time; only the resume instant
	// advances). Must be in [0,1); 0 — the default — is strict
	// store-and-forward.
	OverlapFraction float64 `json:"overlap_fraction,omitempty"`
	// LinkAwareDecode replaces DecodeRouter's pick with a
	// transfer-aware one: each handoff goes to the fitting decode
	// instance with the earliest projected landing (link FIFO backlog
	// plus exposed wire time for the bytes actually shipped), ties to
	// the lowest KV pressure. Off (the default) keeps DecodeRouter's
	// placement bit for bit.
	LinkAwareDecode bool `json:"link_aware_decode,omitempty"`
}

// Kind is the simulation layer a Spec dispatches to.
type Kind int

const (
	// KindRun is a single engine inference (prefill, optionally plus
	// decode).
	KindRun Kind = iota
	// KindServe is one serving instance under a request stream.
	KindServe
	// KindCluster is a routed multi-instance fleet.
	KindCluster
	// KindDisagg is a prefill/decode disaggregated fleet with
	// interconnect-priced KV handoff.
	KindDisagg
	// KindSweep is a one-field sweep: an ordered series of independent
	// simulations of the base document.
	KindSweep
)

func (k Kind) String() string {
	switch k {
	case KindRun:
		return "run"
	case KindServe:
		return "serve"
	case KindCluster:
		return "cluster"
	case KindDisagg:
		return "disagg"
	case KindSweep:
		return "sweep"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// MarshalJSON renders the kind as its name, so machine-consumed Reports
// read "cluster" rather than an enum ordinal.
func (k Kind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// Kind reports the layer the spec dispatches to, from section presence:
// a sweep section means a Report series, a fleet section means cluster
// (disagg when it has a disaggregation section), a serve section means
// serve, otherwise run. Validate enforces that the sections present are
// coherent.
func (s *Spec) Kind() Kind {
	if s.Sweep != nil {
		return KindSweep
	}
	return s.baseKind()
}

// baseKind is the layer one sweep point dispatches to — the kind of the
// document with the sweep section ignored.
func (s *Spec) baseKind() Kind {
	switch {
	case s.Fleet != nil && s.Fleet.Disaggregation != nil:
		return KindDisagg
	case s.Fleet != nil:
		return KindCluster
	case s.Serve != nil:
		return KindServe
	default:
		return KindRun
	}
}

// Parse decodes a Spec from JSON. Unknown fields anywhere in the
// document are rejected — a typoed knob must not silently fall back to
// a default — as is trailing content. Relative file references in a
// parsed spec resolve against the process working directory; prefer
// Load for file-based specs.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	s := &Spec{}
	if err := dec.Decode(s); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, fmt.Errorf("spec: trailing content after the spec document")
	}
	return s, nil
}

// Load reads and parses a spec file. Relative trace_file and
// platform_file references resolve against the file's directory, so a
// spec can ship next to its trace.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%w (file %s)", err, path)
	}
	s.baseDir = filepath.Dir(path)
	return s, nil
}

// Save writes the spec as indented JSON. Save∘Load is the identity:
// a loaded spec saved next to its source parses back equal.
func Save(s *Spec, path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("spec: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// resolve joins a relative file reference with the spec's base
// directory.
func (s *Spec) resolve(path string) string {
	if s.baseDir == "" || filepath.IsAbs(path) {
		return path
	}
	return filepath.Join(s.baseDir, path)
}
