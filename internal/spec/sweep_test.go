package spec

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// sweepBase is a small, fast serve spec to hang sweeps off.
func sweepBase(t *testing.T) *Spec {
	t.Helper()
	s, err := Parse([]byte(`{
	  "platform": "GH200",
	  "model": "llama-3.2-1B",
	  "workload": {
	    "scenario": "chat",
	    "requests": 10,
	    "rate_per_sec": 20,
	    "seed": 7,
	    "prompt": {"mean": 256, "sigma": 0.5, "min": 32, "max": 512},
	    "output": {"mean": 16, "sigma": 0.4, "min": 4, "max": 32}
	  },
	  "serve": {
	    "max_batch": 16,
	    "seq": 256,
	    "latency_bucket": 256,
	    "ttft_slo_ms": 500
	  }
	}`))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSweepParallelDeterminism is the acceptance criterion for the
// parallel execution path: a sweep run on a multi-worker pool must
// produce a JSON report byte-identical to the same sweep run with one
// worker (i.e. serially). The worker count is forced above one — the
// default pool is sized by NumCPU and would degenerate to serial on a
// single-core machine. Run under -race in CI, this also proves the
// pool shares no mutable state between points.
func TestSweepParallelDeterminism(t *testing.T) {
	s := sweepBase(t)
	s.Sweep = &SweepSpec{Field: "workload.rate_per_sec", Values: []any{2.0, 8.0, 16.0, 24.0, 32.0, 40.0}}

	parallel, err := Simulate(s, WithSweepWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Simulate(s, WithSweepWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	pj, err := ReportJSON(parallel)
	if err != nil {
		t.Fatal(err)
	}
	sj, err := ReportJSON(serial)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pj, sj) {
		t.Error("parallel sweep report is not byte-identical to the one-worker run")
	}
	if parallel.Kind != KindSweep || parallel.SweepField != "workload.rate_per_sec" {
		t.Errorf("report kind %v field %q", parallel.Kind, parallel.SweepField)
	}
	if len(parallel.Sweep) != 6 {
		t.Fatalf("series has %d points, want 6", len(parallel.Sweep))
	}
}

// TestSweepMatchesHandRolledLoop: each sweep point must reproduce the
// exact Report of editing the field by hand and simulating — the
// contract that let examples/spec_replay, examples/batch_sweep, and
// bench ext10 port their loops without moving a number.
func TestSweepMatchesHandRolledLoop(t *testing.T) {
	rates := []float64{5, 15, 30}
	s := sweepBase(t)
	vals := make([]any, len(rates))
	for i, r := range rates {
		vals[i] = r
	}
	s.Sweep = &SweepSpec{Field: "workload.rate_per_sec", Values: vals}
	rep, err := Simulate(s)
	if err != nil {
		t.Fatal(err)
	}
	for i, rate := range rates {
		hand := sweepBase(t)
		hand.Workload.RatePerSec = rate
		want, err := Simulate(hand)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rep.Sweep[i].Report, want) {
			t.Errorf("point %d (rate %g) diverges from the hand-rolled run", i, rate)
		}
		if rep.Sweep[i].Value != any(rate) {
			t.Errorf("point %d carries value %v, want %g", i, rep.Sweep[i].Value, rate)
		}
	}
}

// TestSweepRangeForms pins the range generator: linear spacing hits the
// endpoints and even intervals, log spacing is geometric.
func TestSweepRangeForms(t *testing.T) {
	lin := &SweepSpec{From: 0, To: 10, Steps: 5}
	want := []any{0.0, 2.5, 5.0, 7.5, 10.0}
	if got := lin.points(); !reflect.DeepEqual(got, want) {
		t.Errorf("linear points = %v, want %v", got, want)
	}
	log := &SweepSpec{From: 1, To: 100, Steps: 3, Scale: "log"}
	wantLog := []float64{1, 10, 100}
	got := log.points()
	if len(got) != len(wantLog) {
		t.Fatalf("log points = %v, want %d entries", got, len(wantLog))
	}
	for i, w := range wantLog {
		g := got[i].(float64)
		if g < w*(1-1e-12) || g > w*(1+1e-12) {
			t.Errorf("log point %d = %v, want ≈%g", i, g, w)
		}
	}
}

// TestSweepOverRunAndStringLeaves: the sweep is layer-agnostic (a run
// spec sweeps batch size) and type-aware (a string leaf like the
// platform name sweeps across the catalog).
func TestSweepOverRunAndStringLeaves(t *testing.T) {
	run := &Spec{
		Platform: "GH200", Model: "llama-3.2-1B",
		Run:   &RunSpec{Batch: 1, Seq: 128},
		Sweep: &SweepSpec{Field: "run.batch", Values: []any{int64(1), int64(4)}},
	}
	rep, err := Simulate(run)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Sweep) != 2 || rep.Sweep[0].Report.Run == nil {
		t.Fatalf("run sweep series malformed: %+v", rep.Sweep)
	}
	b0 := rep.Sweep[0].Report.Run.Request.Batch
	b1 := rep.Sweep[1].Report.Run.Request.Batch
	if b0 != 1 || b1 != 4 {
		t.Errorf("swept batches = %d, %d; want 1, 4", b0, b1)
	}

	plats := sweepBase(t)
	plats.Sweep = &SweepSpec{Field: "platform", Values: []any{"GH200", "Intel+H100"}}
	prep, err := Simulate(plats)
	if err != nil {
		t.Fatal(err)
	}
	if len(prep.Sweep) != 2 {
		t.Fatalf("platform sweep has %d points, want 2", len(prep.Sweep))
	}
	if reflect.DeepEqual(prep.Sweep[0].Report.Serve, prep.Sweep[1].Report.Serve) {
		t.Error("different platforms produced identical serving stats")
	}
}

// TestSweepValidateErrors walks the sweep section's failure modes;
// every error must name the offending field by JSON path.
func TestSweepValidateErrors(t *testing.T) {
	cases := []struct {
		name     string
		sweep    *SweepSpec
		wantPath string
	}{
		{"missing field", &SweepSpec{Values: []any{1.0}}, "sweep.field"},
		{"unknown path", &SweepSpec{Field: "workload.nope", Values: []any{1.0}}, "sweep.field"},
		{"unknown root", &SweepSpec{Field: "turbo", Values: []any{1.0}}, "sweep.field"},
		{"absent section", &SweepSpec{Field: "fleet.router", Values: []any{"least-kv"}}, "not present"},
		{"self-referential", &SweepSpec{Field: "sweep.steps", Values: []any{3.0}}, "sweep section itself"},
		{"non-leaf target", &SweepSpec{Field: "workload.prompt", Values: []any{1.0}}, "not a numeric or string leaf"},
		{"index on non-list", &SweepSpec{Field: "workload[0].requests", Values: []any{1.0}}, "not a list"},
		{"malformed index", &SweepSpec{Field: "workload.requests[x]", Values: []any{1.0}}, "malformed index"},
		{"neither form", &SweepSpec{Field: "workload.rate_per_sec"}, "values list or a from/to/steps range"},
		{"both forms", &SweepSpec{Field: "workload.rate_per_sec", Values: []any{1.0}, Steps: 3, From: 1, To: 2}, "mutually exclusive"},
		{"string into numeric", &SweepSpec{Field: "workload.rate_per_sec", Values: []any{"fast"}}, "sweep.values[0]"},
		{"fractional into integer", &SweepSpec{Field: "serve.max_batch", Values: []any{8.0, 2.5}}, "sweep.values[1]"},
		{"int64-overflowing value", &SweepSpec{Field: "workload.seed", Values: []any{1e19}}, "overflows"},
		{"one step", &SweepSpec{Field: "workload.rate_per_sec", From: 1, To: 10, Steps: 1}, "sweep.steps"},
		{"absurd steps", &SweepSpec{Field: "workload.rate_per_sec", From: 1, To: 10, Steps: 2_000_000_000}, "sweep.steps"},
		{"bad scale", &SweepSpec{Field: "workload.rate_per_sec", From: 1, To: 10, Steps: 3, Scale: "cubic"}, "sweep.scale"},
		{"log from zero", &SweepSpec{Field: "workload.rate_per_sec", From: 0, To: 10, Steps: 3, Scale: "log"}, "sweep.from"},
		{"range on string leaf", &SweepSpec{Field: "platform", From: 1, To: 2, Steps: 2}, "sweep.field"},
		{"fractional range point on integer leaf", &SweepSpec{Field: "serve.max_batch", From: 1, To: 2, Steps: 3}, "sweep.steps"},
	}
	for _, tc := range cases {
		s := sweepBase(t)
		s.Sweep = tc.sweep
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: Validate should fail", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantPath) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantPath)
		}
	}
}

// TestSweepIndexedField: an indexed path reaches into fleet groups —
// the static fleet-size sweep.
func TestSweepIndexedField(t *testing.T) {
	s := sweepBase(t)
	s.Platform = ""
	s.Fleet = &FleetSpec{Groups: []FleetGroupSpec{{Platform: "GH200", Count: 1}}}
	s.Sweep = &SweepSpec{Field: "fleet.groups[0].count", Values: []any{1.0, 2.0}}
	rep, err := Simulate(s)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(rep.Sweep[1].Report.Cluster.Instances); n != 2 {
		t.Errorf("second point fields %d instances, want 2", n)
	}

	s.Sweep.Field = "fleet.groups[3].count"
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("out-of-range index should fail with a named path, got: %v", err)
	}
}

// TestSweepPointFailureNamesThePoint: a swept value that makes the
// document invalid fails the whole sweep with the offending point and
// value named, in value order regardless of workers.
func TestSweepPointFailureNamesThePoint(t *testing.T) {
	s := sweepBase(t)
	s.Sweep = &SweepSpec{Field: "workload.rate_per_sec", Values: []any{5.0, -3.0, 10.0}}
	_, err := Simulate(s)
	if err == nil {
		t.Fatal("negative swept rate should fail the point")
	}
	want := fmt.Sprintf("sweep point 1 (%s = -3)", "workload.rate_per_sec")
	if !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not name the failing point as %q", err, want)
	}
}

// TestSweepSpecRoundTrip: a spec with a sweep section survives
// Save∘Load like every other document.
func TestSweepSpecRoundTrip(t *testing.T) {
	doc := []byte(`{
	  "platform": "GH200",
	  "model": "llama-3.2-1B",
	  "workload": {"requests": 4, "rate_per_sec": 1},
	  "serve": {},
	  "sweep": {"field": "workload.rate_per_sec", "from": 1, "to": 16, "steps": 3, "scale": "log"}
	}`)
	s, err := Parse(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Kind() != KindSweep {
		t.Errorf("kind = %v, want sweep", s.Kind())
	}
	clone, err := s.clone()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.Sweep, clone.Sweep) || !reflect.DeepEqual(s.Workload, clone.Workload) {
		t.Error("clone diverges from the original document")
	}
}
