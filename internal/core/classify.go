package core

import (
	"fmt"

	"github.com/skipsim/skip/internal/sim"
)

// Boundedness classifies which processing unit limits a workload (§V-B,
// §V-D): CPU-bound (GPU under-utilized), GPU-bound (CPU waits on a
// saturated device), or the balanced sweet spot in between where both
// PUs are effectively utilized (paper contribution 5).
type Boundedness int

const (
	// CPUBound: the GPU sits idle waiting for launches; the host
	// dispatch rate limits latency.
	CPUBound Boundedness = iota
	// GPUBound: the device is saturated and the host waits on
	// synchronization; kernel queuing dominates TKLQT.
	GPUBound
	// Balanced: neither PU idles significantly — the paper's "effective
	// region" where operating maximizes system efficiency.
	Balanced
)

func (b Boundedness) String() string {
	switch b {
	case CPUBound:
		return "CPU-bound"
	case GPUBound:
		return "GPU-bound"
	default:
		return "balanced"
	}
}

// boundedIdleFrac: a PU idling more than this fraction of the inference
// latency marks the run as bound by the other PU.
const boundedIdleFrac = 0.30

// ClassifyRun labels a single run from its metrics. The CPU-bound region
// is "characterized by GPU under-utilization" (§I): large GPU idle time.
// The GPU-bound region leaves the CPU waiting for the device to drain.
// Runs where both PUs stay busy fall in the balanced region.
func ClassifyRun(m *Metrics) Boundedness {
	if m.IL <= 0 {
		return Balanced
	}
	gpuIdle := float64(m.GPUIdle) / float64(m.IL)
	cpuIdle := float64(m.CPUIdle) / float64(m.IL)
	switch {
	case gpuIdle > boundedIdleFrac && gpuIdle >= cpuIdle:
		return CPUBound
	case cpuIdle > boundedIdleFrac:
		return GPUBound
	default:
		return Balanced
	}
}

// SeriesPoint is one batch-size sample of a workload sweep (the unit of
// Figs. 6, 10, 11).
type SeriesPoint struct {
	Batch int64
	TKLQT sim.Time
	TTFT  sim.Time
	// Metrics optionally carries the full per-run metrics.
	Metrics *Metrics
}

// transitionSlopeFactor: the TKLQT knee is declared at the first sampled
// batch size whose TKLQT grew at least this many times faster than the
// batch size itself since the previous sample. In the CPU-bound region
// TKLQT is near-constant (pure launch overheads: sub-linear in batch); at
// the inflection, sustained queuing makes TKLQT explode super-linearly —
// the queue grows with every launch, so TKLQT jumps by an order of
// magnitude per batch doubling (§V-B, the starred points of Fig. 6).
const transitionSlopeFactor = 4.0

// TransitionBatch finds the CPU→GPU-bound inflection point of a TKLQT
// series: the smallest batch at which the batch-normalized TKLQT growth
// rate exceeds transitionSlopeFactor. It returns the batch size, or 0 if
// the series never inflects (the workload stays CPU-bound over the
// sweep).
func TransitionBatch(series []SeriesPoint) (int64, error) {
	if len(series) < 2 {
		return 0, fmt.Errorf("core: transition detection needs ≥2 points, got %d", len(series))
	}
	for i := 1; i < len(series); i++ {
		if series[i].Batch <= series[i-1].Batch {
			return 0, fmt.Errorf("core: series must be sorted by increasing batch")
		}
		if series[i-1].TKLQT <= 0 {
			return 0, fmt.Errorf("core: non-positive TKLQT at batch %d", series[i-1].Batch)
		}
	}
	for i := 1; i < len(series); i++ {
		growth := float64(series[i].TKLQT) / float64(series[i-1].TKLQT)
		batchGrowth := float64(series[i].Batch) / float64(series[i-1].Batch)
		if growth >= transitionSlopeFactor*batchGrowth {
			return series[i].Batch, nil
		}
	}
	return 0, nil
}

// Crossover finds the performance crossover point (CP) between two TTFT
// series over the same batch sweep: the smallest batch at which
// challenger's TTFT drops below incumbent's. Returns 0 when the
// challenger never wins.
func Crossover(challenger, incumbent []SeriesPoint) (int64, error) {
	if len(challenger) != len(incumbent) {
		return 0, fmt.Errorf("core: crossover needs equal-length series (%d vs %d)", len(challenger), len(incumbent))
	}
	for i := range challenger {
		if challenger[i].Batch != incumbent[i].Batch {
			return 0, fmt.Errorf("core: series batches misaligned at %d: %d vs %d",
				i, challenger[i].Batch, incumbent[i].Batch)
		}
		if challenger[i].TTFT < incumbent[i].TTFT {
			return challenger[i].Batch, nil
		}
	}
	return 0, nil
}

// BalancedRegion returns the batch range [lo, hi] over which both PUs are
// effectively utilized (§I contribution 5: the "sweet spot"): the batches
// where GPU idle and CPU idle are each below maxIdleFrac of IL. Returns
// ok=false when no sampled batch qualifies.
func BalancedRegion(series []SeriesPoint, maxIdleFrac float64) (lo, hi int64, ok bool) {
	for _, p := range series {
		if p.Metrics == nil || p.Metrics.IL <= 0 {
			continue
		}
		gpuIdle := float64(p.Metrics.GPUIdle) / float64(p.Metrics.IL)
		cpuIdle := float64(p.Metrics.CPUIdle) / float64(p.Metrics.IL)
		if gpuIdle <= maxIdleFrac && cpuIdle <= maxIdleFrac {
			if !ok {
				lo, ok = p.Batch, true
			}
			hi = p.Batch
		}
	}
	return lo, hi, ok
}
