package core

import (
	"strings"
	"testing"

	"github.com/skipsim/skip/internal/trace"
)

func TestAttributeHandTrace(t *testing.T) {
	// CPU busy [0,100); kernel [50,150): overlap 50, cpu-only 50,
	// gpu-only 50... window = IL = [0, 150).
	b := trace.NewBuilder()
	b.Operator("op", 1, 0, 100)
	b.Launch("cudaLaunchKernel", 1, 10, 5, 1)
	b.Kernel("k", 7, 50, 100, 1, 0, 0)
	a, err := Attribute(b.Trace())
	if err != nil {
		t.Fatal(err)
	}
	if a.IL != 150 {
		t.Fatalf("IL = %d", a.IL)
	}
	if a.CPUOnly != 50 || a.Overlap != 50 || a.GPUOnly != 50 || a.Bubble != 0 {
		t.Errorf("attribution = %+v", a)
	}
	c, g, o, bub := a.Fractions()
	if c+g+o+bub < 0.999 || c+g+o+bub > 1.001 {
		t.Errorf("fractions sum to %f", c+g+o+bub)
	}
	if !strings.Contains(a.String(), "IL") {
		t.Error("String() should describe the window")
	}
}

func TestAttributeWithBubble(t *testing.T) {
	// CPU [0,20), kernel [60,100): bubble [20,60) = 40.
	b := trace.NewBuilder()
	b.Operator("op", 1, 0, 20)
	b.Launch("cudaLaunchKernel", 1, 5, 5, 1)
	b.Kernel("k", 7, 60, 40, 1, 0, 0)
	a, err := Attribute(b.Trace())
	if err != nil {
		t.Fatal(err)
	}
	if a.Bubble != 40 {
		t.Errorf("bubble = %d, want 40", a.Bubble)
	}
	if a.CPUOnly != 20 || a.GPUOnly != 40 {
		t.Errorf("attribution = %+v", a)
	}
}

func TestAttributeSyncExcludedFromCPUBusy(t *testing.T) {
	// A sync span must count as idle host time (GPU-only while the
	// kernel runs).
	b := trace.NewBuilder()
	b.Operator("op", 1, 0, 10)
	b.Launch("cudaLaunchKernel", 1, 2, 5, 1)
	b.Kernel("k", 7, 10, 90, 1, 0, 0)
	b.Runtime("cudaDeviceSynchronize", 1, 10, 90)
	a, err := Attribute(b.Trace())
	if err != nil {
		t.Fatal(err)
	}
	if a.GPUOnly != 90 {
		t.Errorf("GPUOnly = %d, want 90 (sync is not host work)", a.GPUOnly)
	}
}

func TestAttributeDegenerate(t *testing.T) {
	b := trace.NewBuilder()
	b.Operator("op", 1, 0, 10)
	if _, err := Attribute(b.Trace()); err == nil {
		t.Error("kernel-free trace should fail")
	}
	var zero Attribution
	c, g, o, bub := zero.Fractions()
	if c != 0 || g != 0 || o != 0 || bub != 0 {
		t.Error("zero attribution fractions")
	}
}

func TestAttributionSumsToIL(t *testing.T) {
	// On a real simulated trace the four phases partition IL exactly.
	tr := handTrace()
	a, err := Attribute(tr)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.CPUOnly + a.GPUOnly + a.Overlap + a.Bubble; got != a.IL {
		t.Errorf("phases sum to %d, IL = %d", got, a.IL)
	}
}
