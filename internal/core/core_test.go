package core

import (
	"testing"

	"github.com/skipsim/skip/internal/sim"
	"github.com/skipsim/skip/internal/trace"
)

// handTrace builds a trace with exactly known metric values:
//
//	parent op  [0, 100)
//	  child op   [10, 60)
//	    launch A   [20, 25) corr 1 → kernel A [50, 150)  t_l = 30
//	launch B (top level op 2) [200, 205) corr 2 → kernel B [230, 430) t_l = 30... see below
func handTrace() *trace.Trace {
	b := trace.NewBuilder()
	b.Operator("aten::linear", 1, 0, 100)
	b.Operator("aten::addmm", 1, 10, 50)
	b.Launch("cudaLaunchKernel", 1, 20, 5, 1)
	b.Kernel("gemm_a", 7, 50, 100, 1, 1e6, 2e3)

	b.Operator("aten::add", 1, 200, 40)
	b.Launch("cudaLaunchKernel", 1, 210, 5, 2)
	b.Kernel("ew_b", 7, 260, 200, 2, 5e5, 1e3)
	b.Runtime("cudaDeviceSynchronize", 1, 240, 220)
	return b.Trace()
}

func TestBuildGraphStructure(t *testing.T) {
	g, err := BuildGraph(handTrace())
	if err != nil {
		t.Fatal(err)
	}
	if g.ParentCount() != 2 {
		t.Fatalf("parents = %d, want 2", g.ParentCount())
	}
	if g.OpCount() != 3 {
		t.Errorf("ops = %d, want 3", g.OpCount())
	}
	// First parent: linear → addmm → launch.
	lin := g.Parents[0]
	if lin.Event.Name != "aten::linear" || len(lin.Children) != 1 {
		t.Fatalf("parent 0 = %+v", lin.Event)
	}
	addmm := lin.Children[0]
	if addmm.Event.Name != "aten::addmm" || len(addmm.Launches) != 1 {
		t.Fatalf("child = %+v with %d launches", addmm.Event, len(addmm.Launches))
	}
	if addmm.Launches[0].Kernel == nil || addmm.Launches[0].Kernel.Name != "gemm_a" {
		t.Error("launch→kernel correlation broken")
	}
	if addmm.Launches[0].Op != addmm {
		t.Error("launch should attribute to innermost operator")
	}
	// Second parent holds launch B.
	if len(g.Parents[1].Launches) != 1 {
		t.Error("second parent should own one launch")
	}
	if len(g.Launches) != 2 || len(g.Kernels) != 2 {
		t.Errorf("launches=%d kernels=%d", len(g.Launches), len(g.Kernels))
	}
}

func TestLaunchDelayEquation(t *testing.T) {
	g, _ := BuildGraph(handTrace())
	// Eq. 1: t_l = tsb(k) − tsb(l).
	wants := []sim.Time{30, 50}
	for i, lr := range g.KernelLaunches() {
		if got := lr.LaunchDelay(); got != wants[i] {
			t.Errorf("launch %d delay = %d, want %d", i, got, wants[i])
		}
	}
}

func TestMetricsEquations(t *testing.T) {
	m, _, err := Analyze(handTrace())
	if err != nil {
		t.Fatal(err)
	}
	// TKLQT (Eq. 2) = 30 + 50 = 80.
	if m.TKLQT != 80 {
		t.Errorf("TKLQT = %d, want 80", m.TKLQT)
	}
	// AKD (Eq. 3) = (100 + 200)/2 = 150.
	if m.AKD != 150 {
		t.Errorf("AKD = %d, want 150", m.AKD)
	}
	// IL (Eq. 4) = last kernel end (460) − first parent start (0).
	if m.IL != 460 {
		t.Errorf("IL = %d, want 460", m.IL)
	}
	// GPU idle (Eq. 5) = IL − Σ t_k = 460 − 300 = 160.
	if m.GPUIdle != 160 {
		t.Errorf("GPUIdle = %d, want 160", m.GPUIdle)
	}
	// Host busy: union of [0,100) ∪ [10,60) ∪ [20,25) ∪ [200,240) ∪
	// [210,215) = 100 + 40 = 140 (sync excluded).
	if m.CPUBusy != 140 {
		t.Errorf("CPUBusy = %d, want 140", m.CPUBusy)
	}
	if m.CPUIdle != 460-140 {
		t.Errorf("CPUIdle = %d, want %d", m.CPUIdle, 460-140)
	}
	if m.KernelCount != 2 || m.ParentOps != 2 || m.TotalOps != 3 {
		t.Errorf("counts: %+v", m)
	}
	if m.MinDelay != 30 || m.MaxDelay != 50 || m.MeanDelay != 40 {
		t.Errorf("delays: min=%d mean=%d max=%d", m.MinDelay, m.MeanDelay, m.MaxDelay)
	}
	// QueueShare = 1 − 2·30/80 = 0.25.
	if m.QueueShare < 0.249 || m.QueueShare > 0.251 {
		t.Errorf("QueueShare = %f, want 0.25", m.QueueShare)
	}
}

func TestAnalyzeRejectsKernelFreeTrace(t *testing.T) {
	b := trace.NewBuilder()
	b.Operator("aten::add", 1, 0, 10)
	if _, _, err := Analyze(b.Trace()); err == nil {
		t.Error("kernel-free trace should be rejected")
	}
}

func TestBuildGraphRejectsInvalidTrace(t *testing.T) {
	tr := trace.New()
	tr.Append(trace.Event{Name: "k", Cat: trace.CatKernel, Ts: 0, Dur: 1, Correlation: 99})
	if _, err := BuildGraph(tr); err == nil {
		t.Error("invalid trace should be rejected")
	}
}

func TestGraphHandlesOperatorFreeTrace(t *testing.T) {
	// Compiled-mode traces may have launches outside operator spans.
	b := trace.NewBuilder()
	b.Launch("cudaGraphLaunch", 1, 0, 5, 1)
	b.Kernel("k", 7, 10, 100, 1, 0, 0)
	m, g, err := Analyze(b.Trace())
	if err != nil {
		t.Fatal(err)
	}
	if g.ParentCount() != 0 {
		t.Errorf("parents = %d, want 0", g.ParentCount())
	}
	if len(g.Launches) != 1 || g.Launches[0].Op != nil {
		t.Error("orphan launch should have nil Op")
	}
	// IL falls back to the launch start.
	if m.IL != 110 {
		t.Errorf("IL = %d, want 110", m.IL)
	}
}

func TestTopKernels(t *testing.T) {
	b := trace.NewBuilder()
	b.Operator("op", 1, 0, 1000)
	corr := uint64(1)
	// 3× fast kernel, 1× slow kernel.
	for i := 0; i < 3; i++ {
		ts := sim.Time(10 + i*100)
		b.Launch("cudaLaunchKernel", 1, ts, 5, corr)
		b.Kernel("fast", 7, ts+20, 10, corr, 100, 200)
		corr++
	}
	b.Launch("cudaLaunchKernel", 1, 500, 5, corr)
	b.Kernel("slow", 7, 530, 400, corr, 1e6, 1e4)

	g, err := BuildGraph(b.Trace())
	if err != nil {
		t.Fatal(err)
	}
	byCount := g.TopKernels(1, ByCount)
	if len(byCount) != 1 || byCount[0].Name != "fast" || byCount[0].Count != 3 {
		t.Errorf("ByCount top = %+v", byCount)
	}
	byTime := g.TopKernels(1, ByTotalTime)
	if byTime[0].Name != "slow" || byTime[0].TotalTime != 400 {
		t.Errorf("ByTotalTime top = %+v", byTime)
	}
	byDelay := g.TopKernels(0, ByTotalDelay)
	if len(byDelay) != 2 {
		t.Errorf("k≤0 should return all: %d", len(byDelay))
	}
	// fast: 3 × 20 = 60 total delay; slow: 30.
	if byDelay[0].Name != "fast" || byDelay[0].TotalDelay != 60 {
		t.Errorf("ByTotalDelay top = %+v", byDelay[0])
	}
	// Share of time sums to 1.
	var share float64
	for _, st := range byDelay {
		share += st.ShareOfTime
	}
	if share < 0.999 || share > 1.001 {
		t.Errorf("shares sum to %f", share)
	}
}

func TestClassifyRun(t *testing.T) {
	// GPU starved → CPU-bound.
	if got := ClassifyRun(&Metrics{IL: 100, GPUIdle: 80, CPUIdle: 5}); got != CPUBound {
		t.Errorf("GPU-starved run = %v, want CPU-bound", got)
	}
	// CPU waiting on a saturated device → GPU-bound.
	if got := ClassifyRun(&Metrics{IL: 100, GPUIdle: 2, CPUIdle: 70}); got != GPUBound {
		t.Errorf("CPU-waiting run = %v, want GPU-bound", got)
	}
	// Both busy → balanced sweet spot.
	if got := ClassifyRun(&Metrics{IL: 100, GPUIdle: 10, CPUIdle: 15}); got != Balanced {
		t.Errorf("both-busy run = %v, want balanced", got)
	}
	// Degenerate.
	if got := ClassifyRun(&Metrics{}); got != Balanced {
		t.Errorf("zero-IL run = %v, want balanced", got)
	}
	// When both idle heavily, the larger idle wins.
	if got := ClassifyRun(&Metrics{IL: 100, GPUIdle: 60, CPUIdle: 40}); got != CPUBound {
		t.Errorf("both-idle run = %v, want CPU-bound (GPU idles more)", got)
	}
	if CPUBound.String() != "CPU-bound" || GPUBound.String() != "GPU-bound" || Balanced.String() != "balanced" {
		t.Error("Boundedness strings")
	}
}

func TestTransitionBatch(t *testing.T) {
	// A flat launch-overhead plateau followed by the queue explosion: at
	// BS=16 TKLQT grows 25x while batch only doubles → knee.
	series := []SeriesPoint{
		{Batch: 1, TKLQT: 1000},
		{Batch: 2, TKLQT: 1020},
		{Batch: 4, TKLQT: 990},
		{Batch: 8, TKLQT: 1400},
		{Batch: 16, TKLQT: 35000},
		{Batch: 32, TKLQT: 300000},
	}
	got, err := TransitionBatch(series)
	if err != nil {
		t.Fatal(err)
	}
	if got != 16 {
		t.Errorf("transition = %d, want 16", got)
	}
	// Mild (sub-4x-per-doubling) growth must not trigger.
	mild := []SeriesPoint{
		{Batch: 1, TKLQT: 1000},
		{Batch: 2, TKLQT: 3000},
		{Batch: 4, TKLQT: 9000},
	}
	got, err = TransitionBatch(mild)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("mild growth transition = %d, want 0", got)
	}
}

func TestTransitionBatchFlatSeries(t *testing.T) {
	series := []SeriesPoint{
		{Batch: 1, TKLQT: 1000},
		{Batch: 2, TKLQT: 1010},
		{Batch: 4, TKLQT: 1005},
	}
	got, err := TransitionBatch(series)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("flat series transition = %d, want 0 (never)", got)
	}
}

func TestTransitionBatchErrors(t *testing.T) {
	if _, err := TransitionBatch([]SeriesPoint{{Batch: 1, TKLQT: 1}}); err == nil {
		t.Error("single point should fail")
	}
	bad := []SeriesPoint{{Batch: 4, TKLQT: 1}, {Batch: 2, TKLQT: 1}}
	if _, err := TransitionBatch(bad); err == nil {
		t.Error("unsorted series should fail")
	}
	zero := []SeriesPoint{{Batch: 1, TKLQT: 0}, {Batch: 2, TKLQT: 0}}
	if _, err := TransitionBatch(zero); err == nil {
		t.Error("zero TKLQT should fail")
	}
}

func TestCrossover(t *testing.T) {
	gh := []SeriesPoint{
		{Batch: 1, TTFT: 280}, {Batch: 8, TTFT: 290}, {Batch: 32, TTFT: 300}, {Batch: 64, TTFT: 400},
	}
	intel := []SeriesPoint{
		{Batch: 1, TTFT: 100}, {Batch: 8, TTFT: 200}, {Batch: 32, TTFT: 500}, {Batch: 64, TTFT: 900},
	}
	cp, err := Crossover(gh, intel)
	if err != nil {
		t.Fatal(err)
	}
	if cp != 32 {
		t.Errorf("crossover = %d, want 32", cp)
	}
	// Never crossing.
	cp, err = Crossover(intel[:2], intel[:2])
	if err != nil || cp != 0 {
		t.Errorf("self-crossover = %d/%v, want 0", cp, err)
	}
	if _, err := Crossover(gh[:2], intel[:3]); err == nil {
		t.Error("length mismatch should fail")
	}
	misaligned := []SeriesPoint{{Batch: 2, TTFT: 1}, {Batch: 8, TTFT: 1}}
	if _, err := Crossover(misaligned, intel[:2]); err == nil {
		t.Error("batch misalignment should fail")
	}
}

func TestBalancedRegion(t *testing.T) {
	mk := func(il, gpuIdle, cpuIdle sim.Time) *Metrics {
		return &Metrics{IL: il, GPUIdle: gpuIdle, CPUIdle: cpuIdle}
	}
	series := []SeriesPoint{
		{Batch: 1, Metrics: mk(100, 80, 1)},  // GPU starved
		{Batch: 4, Metrics: mk(100, 20, 10)}, // balanced
		{Batch: 8, Metrics: mk(100, 10, 25)}, // balanced
		{Batch: 32, Metrics: mk(100, 1, 80)}, // CPU starved
	}
	lo, hi, ok := BalancedRegion(series, 0.3)
	if !ok || lo != 4 || hi != 8 {
		t.Errorf("balanced region = [%d,%d] ok=%v, want [4,8]", lo, hi, ok)
	}
	_, _, ok = BalancedRegion(series, 0.001)
	if ok {
		t.Error("impossible idle bound should find nothing")
	}
	_, _, ok = BalancedRegion([]SeriesPoint{{Batch: 1}}, 0.3)
	if ok {
		t.Error("missing metrics should find nothing")
	}
}

func TestMultiThreadTraceNesting(t *testing.T) {
	// Operators on different threads must not nest across threads.
	b := trace.NewBuilder()
	b.Operator("op_t1", 1, 0, 100)
	b.Operator("op_t2", 2, 50, 100) // starts inside op_t1's span but on tid 2
	b.Launch("cudaLaunchKernel", 2, 60, 5, 1)
	b.Kernel("k", 7, 80, 10, 1, 0, 0)
	g, err := BuildGraph(b.Trace())
	if err != nil {
		t.Fatal(err)
	}
	if g.ParentCount() != 2 {
		t.Fatalf("parents = %d, want 2 (no cross-thread nesting)", g.ParentCount())
	}
	// The launch belongs to the tid-2 operator.
	var t2 *OpNode
	for _, p := range g.Parents {
		if p.Event.Name == "op_t2" {
			t2 = p
		}
	}
	if t2 == nil || len(t2.Launches) != 1 {
		t.Error("launch should attribute to the same-thread operator")
	}
}
