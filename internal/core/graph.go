// Package core implements SKIP, the System-Aware Kernel Inference
// Profiler — the paper's primary contribution. It consumes profiler
// traces (package trace), reconstructs the operator→kernel dependency
// graph the way the paper describes (§IV-A: parent operators contain the
// start times of their children and runtime calls; kernels link to launch
// calls via CUPTI correlation IDs), and derives the paper's metrics:
// TKLQT (Eq. 2), AKD (Eq. 3), IL (Eq. 4), GPU idle time (Eq. 5), top-k
// kernel tracking, and the CPU-bound/GPU-bound workload classification of
// §V-B.
package core

import (
	"fmt"
	"sort"

	"github.com/skipsim/skip/internal/sim"
	"github.com/skipsim/skip/internal/trace"
)

// OpNode is one host operator in the dependency graph, with its nested
// children and the kernel launches attributed to it.
type OpNode struct {
	Event    trace.Event
	Children []*OpNode
	Launches []*LaunchRecord
}

// Walk visits the subtree in start-time order.
func (n *OpNode) Walk(visit func(*OpNode)) {
	visit(n)
	for _, c := range n.Children {
		c.Walk(visit)
	}
}

// LaunchRecord pairs a runtime launch call with the device work it
// triggered.
type LaunchRecord struct {
	// Launch is the cudaLaunchKernel / cudaGraphLaunch /cudaMemcpyAsync
	// runtime event.
	Launch trace.Event
	// Kernel is the correlated device event (kernel or copy); nil when
	// the launch never materialized device work.
	Kernel *trace.Event
	// Op is the innermost operator containing the launch; nil for
	// launches outside any operator span (e.g. captured-graph replays
	// emitted by compiled host code).
	Op *OpNode
}

// LaunchDelay is t_l of Eq. 1: kernel start minus launch-call start. It
// includes the launch overhead and any queuing the kernel suffered.
func (lr *LaunchRecord) LaunchDelay() sim.Time {
	if lr.Kernel == nil {
		return 0
	}
	return lr.Kernel.Ts - lr.Launch.Ts
}

// Graph is the reconstructed operator-kernel dependency graph of one
// trace.
type Graph struct {
	// Parents are the top-level ATen operators, in execution order.
	Parents []*OpNode
	// Launches are all launch records, in launch order.
	Launches []*LaunchRecord
	// Kernels are the device kernel events, in execution order.
	Kernels []trace.Event
	// Trace is the source trace.
	Trace *trace.Trace
}

// BuildGraph reconstructs the dependency graph from a trace: operators
// nest by start-time containment per thread, launches attach to their
// innermost containing operator, kernels attach to launches by
// correlation ID.
func BuildGraph(tr *trace.Trace) (*Graph, error) {
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	g := &Graph{Trace: tr, Kernels: tr.Kernels()}

	// Index kernels (and copies) by correlation.
	kernelByCorr := make(map[uint64]*trace.Event)
	for i := range tr.Events {
		e := &tr.Events[i]
		if (e.Cat == trace.CatKernel || e.Cat == trace.CatMemcpy) && e.Correlation != 0 {
			kernelByCorr[e.Correlation] = e
		}
	}

	// Group host events by thread, in (start, emission) order. The trace
	// is already sorted stably by Ts.
	type hostEvent struct {
		ev      trace.Event
		op      bool
		seqOrig int
	}
	byTID := make(map[int][]hostEvent)
	var tids []int
	for i, e := range tr.Events {
		switch e.Cat {
		case trace.CatOperator, trace.CatRuntime:
			if _, ok := byTID[e.TID]; !ok {
				tids = append(tids, e.TID)
			}
			byTID[e.TID] = append(byTID[e.TID], hostEvent{ev: e, op: e.Cat == trace.CatOperator, seqOrig: i})
		}
	}
	sort.Ints(tids)

	for _, tid := range tids {
		events := byTID[tid]
		// Containment stack: an operator is the parent of every later
		// host event whose start falls inside its span (§IV-A).
		var stack []*OpNode
		for _, he := range events {
			// Pop operators that ended before this event starts.
			for len(stack) > 0 && !stack[len(stack)-1].Event.Contains(&he.ev) {
				stack = stack[:len(stack)-1]
			}
			if he.op {
				node := &OpNode{Event: he.ev}
				if len(stack) == 0 {
					g.Parents = append(g.Parents, node)
				} else {
					top := stack[len(stack)-1]
					top.Children = append(top.Children, node)
				}
				stack = append(stack, node)
				continue
			}
			// Runtime call: record launches (events carrying a
			// correlation — launch/memcpy calls; sync calls carry none).
			if he.ev.Correlation == 0 {
				continue
			}
			lr := &LaunchRecord{Launch: he.ev, Kernel: kernelByCorr[he.ev.Correlation]}
			if len(stack) > 0 {
				lr.Op = stack[len(stack)-1]
				stack[len(stack)-1].Launches = append(stack[len(stack)-1].Launches, lr)
			}
			g.Launches = append(g.Launches, lr)
		}
	}
	return g, nil
}

// ParentCount returns the number of top-level operators.
func (g *Graph) ParentCount() int { return len(g.Parents) }

// OpCount returns the total number of operator nodes.
func (g *Graph) OpCount() int {
	total := 0
	for _, p := range g.Parents {
		p.Walk(func(*OpNode) { total++ })
	}
	return total
}

// KernelLaunches returns launch records that produced a device kernel
// (excluding memcpys), in launch order.
func (g *Graph) KernelLaunches() []*LaunchRecord {
	var out []*LaunchRecord
	for _, lr := range g.Launches {
		if lr.Kernel != nil && lr.Kernel.Cat == trace.CatKernel {
			out = append(out, lr)
		}
	}
	return out
}
