package core

import (
	"fmt"
	"sort"

	"github.com/skipsim/skip/internal/sim"
	"github.com/skipsim/skip/internal/trace"
)

// Attribution decomposes the inference latency into mutually exclusive
// phases by sweeping the host and device busy intervals together. It
// answers the question behind the paper's idle-time plots (Figs. 10b/c,
// 11b/c) at a finer grain: of every nanosecond of IL, who was working?
type Attribution struct {
	// IL is the attributed window (first parent op → last kernel end).
	IL sim.Time
	// CPUOnly: host working, device idle — the launch-dominated share.
	CPUOnly sim.Time
	// GPUOnly: device working, host idle or blocked — the saturated
	// share.
	GPUOnly sim.Time
	// Overlap: both processing units busy — the balanced share.
	Overlap sim.Time
	// Bubble: neither busy — pipeline stalls (launch propagation, sync
	// edges).
	Bubble sim.Time
}

// Fractions returns the four shares normalized by IL.
func (a *Attribution) Fractions() (cpuOnly, gpuOnly, overlap, bubble float64) {
	if a.IL <= 0 {
		return 0, 0, 0, 0
	}
	il := float64(a.IL)
	return float64(a.CPUOnly) / il, float64(a.GPUOnly) / il,
		float64(a.Overlap) / il, float64(a.Bubble) / il
}

// String renders the decomposition compactly.
func (a *Attribution) String() string {
	c, g, o, b := a.Fractions()
	return fmt.Sprintf("IL %v: cpu-only %.0f%%, gpu-only %.0f%%, overlap %.0f%%, bubble %.0f%%",
		a.IL, c*100, g*100, o*100, b*100)
}

// Attribute computes the latency decomposition of a trace.
func Attribute(tr *trace.Trace) (*Attribution, error) {
	g, err := BuildGraph(tr)
	if err != nil {
		return nil, err
	}
	m, err := g.Metrics()
	if err != nil {
		return nil, err
	}

	var start sim.Time
	if len(g.Parents) > 0 {
		start = g.Parents[0].Event.Ts
	} else if launches := g.KernelLaunches(); len(launches) > 0 {
		start = launches[0].Launch.Ts
	}
	end := start + m.IL

	cpu := busyIntervals(tr, func(e *trace.Event) bool {
		return (e.Cat == trace.CatOperator || e.Cat == trace.CatRuntime) &&
			e.Name != "cudaDeviceSynchronize"
	})
	gpu := busyIntervals(tr, func(e *trace.Event) bool {
		return e.Cat == trace.CatKernel || e.Cat == trace.CatMemcpy
	})

	a := &Attribution{IL: m.IL}
	// Sweep the window over the union of boundaries.
	bounds := []sim.Time{start, end}
	for _, iv := range cpu {
		bounds = append(bounds, iv.s, iv.e)
	}
	for _, iv := range gpu {
		bounds = append(bounds, iv.s, iv.e)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	for i := 0; i+1 < len(bounds); i++ {
		lo, hi := bounds[i], bounds[i+1]
		if hi <= lo || hi <= start || lo >= end {
			continue
		}
		if lo < start {
			lo = start
		}
		if hi > end {
			hi = end
		}
		d := hi - lo
		mid := lo + d/2
		cBusy := covered(cpu, mid)
		gBusy := covered(gpu, mid)
		switch {
		case cBusy && gBusy:
			a.Overlap += d
		case cBusy:
			a.CPUOnly += d
		case gBusy:
			a.GPUOnly += d
		default:
			a.Bubble += d
		}
	}
	return a, nil
}

type interval struct{ s, e sim.Time }

// busyIntervals returns the merged union of spans selected by keep.
func busyIntervals(tr *trace.Trace, keep func(*trace.Event) bool) []interval {
	var ivs []interval
	for i := range tr.Events {
		e := &tr.Events[i]
		if keep(e) && e.Dur > 0 {
			ivs = append(ivs, interval{e.Ts, e.End()})
		}
	}
	if len(ivs) == 0 {
		return nil
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].s < ivs[j].s })
	merged := ivs[:1]
	for _, iv := range ivs[1:] {
		last := &merged[len(merged)-1]
		if iv.s <= last.e {
			if iv.e > last.e {
				last.e = iv.e
			}
			continue
		}
		merged = append(merged, iv)
	}
	return merged
}

// covered reports whether t falls inside any interval (binary search).
func covered(ivs []interval, t sim.Time) bool {
	lo, hi := 0, len(ivs)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case t < ivs[mid].s:
			hi = mid
		case t >= ivs[mid].e:
			lo = mid + 1
		default:
			return true
		}
	}
	return false
}
