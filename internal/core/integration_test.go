package core_test

import (
	"testing"

	"github.com/skipsim/skip/internal/core"
	"github.com/skipsim/skip/internal/engine"
	"github.com/skipsim/skip/internal/hw"
	"github.com/skipsim/skip/internal/models"
)

// sweep runs a batch sweep and returns the TKLQT/TTFT series SKIP's
// classifier consumes (the Fig. 6 pipeline, end to end).
func sweep(t *testing.T, p *hw.Platform, m *models.Config, batches []int64) []core.SeriesPoint {
	t.Helper()
	var series []core.SeriesPoint
	for _, bs := range batches {
		res, err := engine.Run(engine.Request{Platform: p, Model: m, Batch: bs, Seq: 512, Mode: engine.Eager})
		if err != nil {
			t.Fatal(err)
		}
		metrics, _, err := core.Analyze(res.Trace)
		if err != nil {
			t.Fatal(err)
		}
		series = append(series, core.SeriesPoint{
			Batch: bs, TKLQT: metrics.TKLQT, TTFT: res.TTFT, Metrics: metrics,
		})
	}
	return series
}

var encoderBatches = []int64{1, 2, 4, 8, 16, 32, 64}

func TestFig6EncoderTransitions(t *testing.T) {
	// Paper Fig. 6: encoder-only models transition from CPU-bound to
	// GPU-bound around BS=8 on the LC systems and around BS=32 on the
	// GH200 — "4x more CPU-bound".
	bert := models.BertBaseUncased()

	intel := sweep(t, hw.IntelH100(), bert, encoderBatches)
	amd := sweep(t, hw.AMDA100(), bert, encoderBatches)
	gh := sweep(t, hw.GH200(), bert, encoderBatches)

	tIntel, err := core.TransitionBatch(intel)
	if err != nil {
		t.Fatal(err)
	}
	tAMD, err := core.TransitionBatch(amd)
	if err != nil {
		t.Fatal(err)
	}
	tGH, err := core.TransitionBatch(gh)
	if err != nil {
		t.Fatal(err)
	}

	if tIntel < 4 || tIntel > 16 {
		t.Errorf("Intel+H100 transition = %d, want ≈8", tIntel)
	}
	if tAMD < 4 || tAMD > 16 {
		t.Errorf("AMD+A100 transition = %d, want ≈8", tAMD)
	}
	if tGH < 16 || tGH > 64 {
		t.Errorf("GH200 transition = %d, want ≈32", tGH)
	}
	if tGH < 2*tIntel {
		t.Errorf("GH200 transition (%d) should be several times the LC transition (%d)", tGH, tIntel)
	}
}

func TestFig6TKLQTShape(t *testing.T) {
	// TKLQT is near-flat in the CPU-bound region (sub-linear in batch)
	// and explodes super-linearly past the knee.
	gh := sweep(t, hw.GH200(), models.BertBaseUncased(), encoderBatches)
	// Over BS 1→8 (8x batch growth, inside GH200's CPU-bound region)
	// TKLQT grows far slower than batch.
	plateauGrowth := float64(gh[3].TKLQT) / float64(gh[0].TKLQT)
	if plateauGrowth > 4 {
		t.Errorf("GH200 TKLQT grew %.1fx over BS 1→8, want sub-linear (<4x)", plateauGrowth)
	}
	// Over BS 8→64 (another 8x) it explodes.
	explosion := float64(gh[6].TKLQT) / float64(gh[3].TKLQT)
	if explosion < 50 {
		t.Errorf("GH200 TKLQT grew only %.1fx over BS 8→64, want queue explosion (>50x)", explosion)
	}
	// At BS=1 TKLQT sits on the pure launch-overhead floor.
	floor := float64(gh[0].Metrics.KernelCount) * hw.GH200().LaunchOverheadNs
	if got := float64(gh[0].TKLQT); got > floor*1.05 {
		t.Errorf("GH200 BS=1 TKLQT = %.0f, want ≈ launch floor %.0f", got, floor)
	}
}

func TestFig6PerRunClassification(t *testing.T) {
	bert := models.BertBaseUncased()
	gh := sweep(t, hw.GH200(), bert, encoderBatches)
	if got := core.ClassifyRun(gh[0].Metrics); got != core.CPUBound {
		t.Errorf("GH200 BS=1 classified %v, want CPU-bound", got)
	}
	if got := core.ClassifyRun(gh[len(gh)-1].Metrics); got != core.GPUBound {
		t.Errorf("GH200 BS=64 classified %v, want GPU-bound", got)
	}
	intel := sweep(t, hw.IntelH100(), bert, encoderBatches)
	if got := core.ClassifyRun(intel[len(intel)-1].Metrics); got != core.GPUBound {
		t.Errorf("Intel BS=64 classified %v, want GPU-bound", got)
	}
}

func TestFig10CrossoverPoint(t *testing.T) {
	// Paper §V-D: GH200 overtakes the LC systems for encoders beyond
	// BS=16 (CP at 16; first strictly-better sampled batch is 32).
	bert := models.BertBaseUncased()
	gh := sweep(t, hw.GH200(), bert, encoderBatches)
	intel := sweep(t, hw.IntelH100(), bert, encoderBatches)
	cp, err := core.Crossover(gh, intel)
	if err != nil {
		t.Fatal(err)
	}
	if cp < 16 || cp > 32 {
		t.Errorf("encoder crossover = %d, want 16-32", cp)
	}
}

func TestFig11DecoderCrossovers(t *testing.T) {
	decBatches := []int64{1, 2, 4, 8, 16}
	// Llama-3.2-1B: crossover at (or near) BS=1 — GH200 competitive
	// immediately.
	llama := models.Llama32_1B()
	ghL := sweep(t, hw.GH200(), llama, decBatches)
	intelL := sweep(t, hw.IntelH100(), llama, decBatches)
	cpL, err := core.Crossover(ghL, intelL)
	if err != nil {
		t.Fatal(err)
	}
	if cpL == 0 || cpL > 4 {
		t.Errorf("llama crossover = %d, want ≤4 (paper: 1)", cpL)
	}

	// GPT-2 crosses later than Llama but the GH200 does eventually win.
	gpt2 := models.GPT2()
	ghG := sweep(t, hw.GH200(), gpt2, decBatches)
	intelG := sweep(t, hw.IntelH100(), gpt2, decBatches)
	cpG, err := core.Crossover(ghG, intelG)
	if err != nil {
		t.Fatal(err)
	}
	if cpG == 0 {
		t.Error("gpt2: GH200 should overtake Intel within BS≤16")
	}
	if cpG < cpL {
		t.Errorf("gpt2 crossover (%d) should not precede llama's (%d)", cpG, cpL)
	}
}

func TestBalancedRegionMovesRightOnGH200(t *testing.T) {
	// Paper §V-D: GH200 reaches balanced CPU/GPU utilization at higher
	// batch sizes than the LC systems (encoders: LC 4-8, CC 16-32).
	bert := models.BertBaseUncased()
	intel := sweep(t, hw.IntelH100(), bert, encoderBatches)
	gh := sweep(t, hw.GH200(), bert, encoderBatches)
	loI, _, okI := core.BalancedRegion(intel, 0.45)
	loG, _, okG := core.BalancedRegion(gh, 0.45)
	if !okI || !okG {
		t.Fatalf("no balanced region found: intel=%v gh=%v", okI, okG)
	}
	if loG <= loI {
		t.Errorf("GH200 balanced region (from %d) should sit at larger batches than Intel's (from %d)", loG, loI)
	}
}

func TestTKLQTFloorIsLaunchOverhead(t *testing.T) {
	// In the deep CPU-bound region, TKLQT ≈ kernel count × Table V
	// launch overhead: queuing contributes almost nothing (§V-B).
	res, err := engine.Run(engine.Request{
		Platform: hw.GH200(), Model: models.BertBaseUncased(), Batch: 1, Seq: 512, Mode: engine.Eager,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := core.Analyze(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	floor := float64(m.KernelCount) * hw.GH200().LaunchOverheadNs
	got := float64(m.TKLQT)
	if got < floor*0.99 || got > floor*1.3 {
		t.Errorf("CPU-bound TKLQT = %.0fns, want ≈ floor %.0fns (kernels × launch overhead)", got, floor)
	}
	// The minimum observed delay is the queue-free launch overhead.
	if diff := float64(m.MinDelay) - hw.GH200().LaunchOverheadNs; diff < -1 || diff > 1 {
		t.Errorf("min delay %v should equal the Table V launch overhead", m.MinDelay)
	}
}
