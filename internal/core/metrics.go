package core

import (
	"fmt"
	"sort"

	"github.com/skipsim/skip/internal/sim"
	"github.com/skipsim/skip/internal/trace"
)

// KernelStat aggregates one kernel symbol across a trace, for the top-k
// kernel tracking of §III-A5.
type KernelStat struct {
	Name        string
	Count       int
	TotalTime   sim.Time
	TotalDelay  sim.Time // summed launch delay t_l across instances
	MeanTime    sim.Time
	MeanDelay   sim.Time
	TotalFLOPs  float64
	TotalBytes  float64
	ShareOfTime float64 // fraction of total kernel execution time
}

// Metrics are SKIP's per-run measurements (§III-A).
type Metrics struct {
	// TKLQT is the Total Kernel Launch and Queuing Time (Eq. 2): the sum
	// over kernels of t_l = tsb(k) − tsb(l).
	TKLQT sim.Time
	// AKD is the Average Kernel Duration (Eq. 3).
	AKD sim.Time
	// IL is the Inference Latency (Eq. 4): last kernel end − first
	// parent operator start.
	IL sim.Time
	// GPUBusy is the summed kernel execution time Σ t_k.
	GPUBusy sim.Time
	// GPUIdle is Eq. 5: IL − Σ t_k.
	GPUIdle sim.Time
	// CPUBusy is the union coverage of host operator and runtime spans.
	CPUBusy sim.Time
	// CPUIdle is IL − CPUBusy.
	CPUIdle sim.Time
	// MinDelay/MeanDelay/MaxDelay summarize per-kernel launch delays.
	// MinDelay approximates the pure (queue-free) launch overhead.
	MinDelay, MeanDelay, MaxDelay sim.Time
	// QueueShare is the fraction of TKLQT attributable to queuing rather
	// than the launch-overhead floor: 1 − n·MinDelay/TKLQT.
	QueueShare float64
	// KernelCount is the number of device kernels executed.
	KernelCount int
	// LaunchCount is the number of host-visible launch calls.
	LaunchCount int
	// ParentOps / TotalOps count the operator tree.
	ParentOps, TotalOps int
}

// Analyze builds the dependency graph and computes SKIP's metrics.
func Analyze(tr *trace.Trace) (*Metrics, *Graph, error) {
	g, err := BuildGraph(tr)
	if err != nil {
		return nil, nil, err
	}
	m, err := g.Metrics()
	if err != nil {
		return nil, nil, err
	}
	return m, g, nil
}

// Metrics computes the paper's metrics over the graph.
func (g *Graph) Metrics() (*Metrics, error) {
	m := &Metrics{
		ParentOps:   g.ParentCount(),
		TotalOps:    g.OpCount(),
		LaunchCount: len(g.Launches),
	}

	launches := g.KernelLaunches()
	m.KernelCount = len(launches)
	if m.KernelCount == 0 {
		return nil, fmt.Errorf("core: trace contains no kernel launches")
	}

	var lastKernelEnd sim.Time
	m.MinDelay = launches[0].LaunchDelay()
	for _, lr := range launches {
		d := lr.LaunchDelay()
		m.TKLQT += d
		if d < m.MinDelay {
			m.MinDelay = d
		}
		if d > m.MaxDelay {
			m.MaxDelay = d
		}
		m.GPUBusy += lr.Kernel.Dur
		if end := lr.Kernel.End(); end > lastKernelEnd {
			lastKernelEnd = end
		}
	}
	m.MeanDelay = m.TKLQT / sim.Time(m.KernelCount)
	m.AKD = m.GPUBusy / sim.Time(m.KernelCount)
	if m.TKLQT > 0 {
		floor := sim.Time(m.KernelCount) * m.MinDelay
		m.QueueShare = float64(m.TKLQT-floor) / float64(m.TKLQT)
	}

	// IL (Eq. 4): from the first parent ATen operator to the last kernel
	// end. Compiled traces may lack operator spans; fall back to the
	// first launch.
	var start sim.Time
	switch {
	case len(g.Parents) > 0:
		start = g.Parents[0].Event.Ts
	default:
		start = launches[0].Launch.Ts
	}
	m.IL = lastKernelEnd - start
	m.GPUIdle = m.IL - m.GPUBusy
	m.CPUBusy = hostBusy(g.Trace)
	m.CPUIdle = m.IL - m.CPUBusy
	if m.CPUIdle < 0 {
		m.CPUIdle = 0
	}
	return m, nil
}

// hostBusy returns the union coverage of host-side spans (operators and
// runtime calls), so nested operator spans are not double-counted.
// Synchronize spans are excluded: the host is blocked, not working.
func hostBusy(tr *trace.Trace) sim.Time {
	type iv struct{ s, e sim.Time }
	var ivs []iv
	for _, e := range tr.Events {
		switch e.Cat {
		case trace.CatOperator, trace.CatRuntime:
			if e.Name == "cudaDeviceSynchronize" {
				continue
			}
			ivs = append(ivs, iv{e.Ts, e.End()})
		}
	}
	if len(ivs) == 0 {
		return 0
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].s < ivs[j].s })
	var busy sim.Time
	cur := ivs[0]
	for _, v := range ivs[1:] {
		if v.s <= cur.e {
			if v.e > cur.e {
				cur.e = v.e
			}
			continue
		}
		busy += cur.e - cur.s
		cur = v
	}
	busy += cur.e - cur.s
	return busy
}

// TopKernels aggregates kernel statistics by symbol and returns the top
// k by the chosen ordering (§III-A5). k ≤ 0 returns all.
type TopKOrder int

const (
	// ByCount orders by invocation count (most frequently launched).
	ByCount TopKOrder = iota
	// ByTotalTime orders by cumulative execution time.
	ByTotalTime
	// ByTotalDelay orders by cumulative launch delay (highest offload
	// tax).
	ByTotalDelay
)

// TopKernels computes per-symbol aggregates over the graph.
func (g *Graph) TopKernels(k int, order TopKOrder) []KernelStat {
	agg := make(map[string]*KernelStat)
	var totalTime sim.Time
	for _, lr := range g.KernelLaunches() {
		st, ok := agg[lr.Kernel.Name]
		if !ok {
			st = &KernelStat{Name: lr.Kernel.Name}
			agg[lr.Kernel.Name] = st
		}
		st.Count++
		st.TotalTime += lr.Kernel.Dur
		st.TotalDelay += lr.LaunchDelay()
		st.TotalFLOPs += lr.Kernel.FLOPs
		st.TotalBytes += lr.Kernel.Bytes
		totalTime += lr.Kernel.Dur
	}
	stats := make([]KernelStat, 0, len(agg))
	for _, st := range agg {
		st.MeanTime = st.TotalTime / sim.Time(st.Count)
		st.MeanDelay = st.TotalDelay / sim.Time(st.Count)
		if totalTime > 0 {
			st.ShareOfTime = float64(st.TotalTime) / float64(totalTime)
		}
		stats = append(stats, *st)
	}
	sort.Slice(stats, func(i, j int) bool {
		a, b := stats[i], stats[j]
		switch order {
		case ByTotalTime:
			if a.TotalTime != b.TotalTime {
				return a.TotalTime > b.TotalTime
			}
		case ByTotalDelay:
			if a.TotalDelay != b.TotalDelay {
				return a.TotalDelay > b.TotalDelay
			}
		default:
			if a.Count != b.Count {
				return a.Count > b.Count
			}
		}
		return a.Name < b.Name
	})
	if k > 0 && k < len(stats) {
		stats = stats[:k]
	}
	return stats
}
