// Package analysis is skip's in-tree static analysis framework: a
// small, stdlib-only analogue of golang.org/x/tools/go/analysis that
// exists to enforce the simulator's determinism contract at review
// time instead of discovering violations in golden-test diffs.
//
// Every published result assumes a seeded run is bit-identical across
// reruns, worker counts, and refactors. The contract that guarantees
// it — sim time only from sim.Calendar, seeded *rand.Rand values
// threaded from configs, no map-iteration-ordered output, no
// unsupervised goroutines — previously lived in convention and code
// review. The checks in this package reject those bug classes
// statically; `cmd/skiplint` is the command-line driver and CI runs it
// on every push.
//
// Intentional exceptions are annotated in source with
//
//	//skiplint:allow <check>[,<check>...] — <reason>
//
// placed on the flagged line or the line immediately above it. The
// reason is mandatory: an allow directive is a reviewed waiver, not a
// mute button, and a directive without one (or naming an unknown
// check) is itself reported as a `directive` diagnostic.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named determinism check. Run inspects a single
// type-checked package through its Pass and reports findings with
// Pass.Reportf; it must not retain the Pass.
type Analyzer struct {
	// Name is the check's identifier: what -checks selects, what
	// diagnostics are tagged with, and what an allow directive names.
	Name string
	// Doc is a short description of the rule and why it exists,
	// shown by `skiplint -list`.
	Doc string
	// Run inspects one package and reports diagnostics.
	Run func(*Pass) error
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos, tagged with the running
// analyzer's name.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Check:    p.Analyzer.Name,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding: which check fired, where, and why.
type Diagnostic struct {
	Check    string
	Position token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Position, d.Check, d.Message)
}

// All returns the registered determinism checks in stable order. The
// set doubles as the directive validator's vocabulary: an allow
// directive may only name checks listed here.
func All() []*Analyzer {
	return []*Analyzer{Walltime, GlobalRand, MapRange, Goroutine, FloatOrder}
}

// Select resolves a comma-separated -checks value against the
// registry, returning the named analyzers in registry order. An empty
// value selects everything.
func Select(names string) ([]*Analyzer, error) {
	all := All()
	if strings.TrimSpace(names) == "" {
		return all, nil
	}
	want := map[string]bool{}
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		found := false
		for _, a := range all {
			if a.Name == n {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown check %q (known: %s)", n, strings.Join(checkNames(), ", "))
		}
		want[n] = true
	}
	var sel []*Analyzer
	for _, a := range all {
		if want[a.Name] {
			sel = append(sel, a)
		}
	}
	return sel, nil
}

func checkNames() []string {
	var names []string
	for _, a := range All() {
		names = append(names, a.Name)
	}
	return names
}

// directivePrefix introduces a suppression comment. The comment form
// is directive-style (no space after //) so gofmt leaves it pinned to
// its line and ast.CommentGroup.Text omits it from godoc.
const directivePrefix = "skiplint:allow"

// An allowDirective is one parsed //skiplint:allow comment.
type allowDirective struct {
	pos    token.Position
	checks []string
	reason string
	used   bool
}

// parseDirectives extracts every skiplint:allow directive from the
// file's comments, reporting malformed ones (missing reason, unknown
// check name) as `directive` diagnostics. known is the full check
// registry — validation is against everything registered, not just the
// checks selected for this run.
func parseDirectives(fset *token.FileSet, files []*ast.File, known map[string]bool) (dirs []*allowDirective, bad []Diagnostic) {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(text, directivePrefix))
				d, err := parseDirective(rest, known)
				if err != nil {
					bad = append(bad, Diagnostic{
						Check:    "directive",
						Position: pos,
						Message:  err.Error(),
					})
					continue
				}
				d.pos = pos
				dirs = append(dirs, d)
			}
		}
	}
	return dirs, bad
}

// parseDirective parses the text after "skiplint:allow": a
// comma-separated check list, an optional "—"/"--"/"-" separator, and
// a mandatory reason.
func parseDirective(rest string, known map[string]bool) (*allowDirective, error) {
	if rest == "" {
		return nil, fmt.Errorf("malformed %s directive: missing check name and reason", directivePrefix)
	}
	fields := strings.Fields(rest)
	checks := strings.Split(fields[0], ",")
	for _, c := range checks {
		if !known[c] {
			return nil, fmt.Errorf("malformed %s directive: unknown check %q (known: %s)",
				directivePrefix, c, strings.Join(checkNames(), ", "))
		}
	}
	reason := strings.TrimSpace(rest[len(fields[0]):])
	for _, sep := range []string{"—", "--", "-"} {
		if strings.HasPrefix(reason, sep) {
			reason = strings.TrimSpace(strings.TrimPrefix(reason, sep))
			break
		}
	}
	if reason == "" {
		return nil, fmt.Errorf("malformed %s directive: a reason is required (//%s %s — why this exception is sound)",
			directivePrefix, directivePrefix, fields[0])
	}
	return &allowDirective{checks: checks, reason: reason}, nil
}

// covers reports whether the directive suppresses a diagnostic from
// check at pos: same file, same or immediately following line.
func (d *allowDirective) covers(check string, pos token.Position) bool {
	if d.pos.Filename != pos.Filename {
		return false
	}
	if d.pos.Line != pos.Line && d.pos.Line != pos.Line-1 {
		return false
	}
	for _, c := range d.checks {
		if c == check {
			return true
		}
	}
	return false
}

// Run executes the selected analyzers over each loaded package (scope
// permitting — see Scopes), applies allow directives, and returns the
// surviving diagnostics sorted by position. Malformed directives are
// reported alongside; directives that suppressed nothing are reported
// too, so stale waivers can't linger after the code they excused is
// gone.
func Run(pkgs []*Package, analyzers []*Analyzer, scopes map[string][]string) ([]Diagnostic, error) {
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		var raw []Diagnostic
		for _, a := range analyzers {
			if !InScope(scopes[a.Name], pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &raw,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
			}
		}
		dirs, bad := parseDirectives(pkg.Fset, pkg.Files, known)
		out = append(out, bad...)
		for _, d := range raw {
			suppressed := false
			for _, dir := range dirs {
				if dir.covers(d.Check, d.Position) {
					dir.used = true
					suppressed = true
				}
			}
			if !suppressed {
				out = append(out, d)
			}
		}
		// A directive may cover a check this run didn't select; only
		// call it stale when every check it names actually ran.
		for _, dir := range dirs {
			if dir.used || !allSelected(dir.checks, analyzers) {
				continue
			}
			out = append(out, Diagnostic{
				Check:    "directive",
				Position: dir.pos,
				Message: fmt.Sprintf("stale %s directive: no %s diagnostic on this or the next line — remove it or move it to the code it excuses",
					directivePrefix, strings.Join(dir.checks, "/")),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Check < b.Check
	})
	return out, nil
}

func allSelected(checks []string, analyzers []*Analyzer) bool {
	for _, c := range checks {
		found := false
		for _, a := range analyzers {
			if a.Name == c {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
