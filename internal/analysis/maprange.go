package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapRange rejects order-sensitive `for range` over maps in the
// report/stats/event-emitting packages. Go randomizes map iteration
// order per run on purpose; any output assembled in that order
// (appending to a slice, emitting events, accumulating floats) differs
// between bit-identical reruns. This is exactly the bug class the
// telemetry aggregator dodged by hand with running sums.
//
// Two shapes are recognized as order-insensitive and pass without a
// directive:
//
//   - commutative bodies: exact-integer accumulation (n++, total += v
//     on integer types), stores into another map keyed by the range
//     key, delete calls, and call-free locals/conditionals composed
//     from those — each iteration's effect is independent of order;
//   - collect-then-sort: a body that only appends the key (or value)
//     to a slice, where the statement immediately following the loop
//     sorts that slice (sort.Strings/Ints/Slice/..., slices.Sort*).
//
// Anything else needs either a rewrite (sort the keys first) or an
// allow directive arguing why order cannot reach an observable result.
var MapRange = &Analyzer{
	Name: "maprange",
	Doc: "`for range` over a map in report/stats/event-emitting packages must be order-insensitive " +
		"(commutative body, or collect-then-sort); map iteration order is randomized per run",
	Run: runMapRange,
}

func runMapRange(pass *Pass) error {
	c := &mapRangeChecker{pass: pass}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var list []ast.Stmt
			switch v := n.(type) {
			case *ast.BlockStmt:
				list = v.List
			case *ast.CaseClause:
				list = v.Body
			case *ast.CommClause:
				list = v.Body
			default:
				return true
			}
			for i, stmt := range list {
				if lab, ok := stmt.(*ast.LabeledStmt); ok {
					stmt = lab.Stmt
				}
				rs, ok := stmt.(*ast.RangeStmt)
				if !ok || !isMapRange(pass.Info, rs) {
					continue
				}
				if c.insensitiveStmts(rs.Body.List, rs) {
					continue
				}
				if c.collectThenSorted(rs, list, i) {
					continue
				}
				pass.Reportf(rs.Pos(),
					"order-sensitive range over map (%s); map iteration order is randomized per run — sort the keys first or make the body commutative",
					pass.Info.TypeOf(rs.X))
			}
			return true
		})
	}
	return nil
}

type mapRangeChecker struct {
	pass *Pass
}

// insensitiveStmts reports whether every statement's effect is
// independent of the iteration order of rs.
func (c *mapRangeChecker) insensitiveStmts(stmts []ast.Stmt, rs *ast.RangeStmt) bool {
	for _, s := range stmts {
		if !c.insensitiveStmt(s, rs) {
			return false
		}
	}
	return true
}

func (c *mapRangeChecker) insensitiveStmt(s ast.Stmt, rs *ast.RangeStmt) bool {
	info := c.pass.Info
	switch v := s.(type) {
	case *ast.IncDecStmt:
		// n++ / n-- on exact integers commutes.
		return isIntegerType(info.TypeOf(v.X))
	case *ast.AssignStmt:
		return c.insensitiveAssign(v, rs)
	case *ast.ExprStmt:
		// delete(m, k) commutes (distinct keys per iteration).
		if call, ok := v.X.(*ast.CallExpr); ok {
			if id, ok := unparen(call.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "delete" {
					return true
				}
			}
		}
		return false
	case *ast.IfStmt:
		if v.Init != nil && !c.insensitiveStmt(v.Init, rs) {
			return false
		}
		if !callFree(info, v.Cond) {
			return false
		}
		if !c.insensitiveStmts(v.Body.List, rs) {
			return false
		}
		if v.Else != nil {
			return c.insensitiveStmt(v.Else, rs)
		}
		return true
	case *ast.BlockStmt:
		return c.insensitiveStmts(v.List, rs)
	case *ast.BranchStmt:
		// continue skips one order-independent iteration; break makes
		// "which iterations ran" order-dependent.
		return v.Tok == token.CONTINUE
	case *ast.DeclStmt:
		gd, ok := v.Decl.(*ast.GenDecl)
		if !ok {
			return false
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				return false
			}
			for _, val := range vs.Values {
				if !callFree(info, val) {
					return false
				}
			}
		}
		return true
	case *ast.RangeStmt:
		// A nested range inherits the outer order question; its own
		// body must satisfy the same rules.
		return callFree(info, v.X) && c.insensitiveStmts(v.Body.List, rs)
	case *ast.ForStmt:
		if v.Init != nil && !c.insensitiveStmt(v.Init, rs) {
			return false
		}
		if !callFree(info, v.Cond) {
			return false
		}
		if v.Post != nil && !c.insensitiveStmt(v.Post, rs) {
			return false
		}
		return c.insensitiveStmts(v.Body.List, rs)
	default:
		return false
	}
}

// insensitiveAssign classifies one assignment inside the body of rs.
func (c *mapRangeChecker) insensitiveAssign(a *ast.AssignStmt, rs *ast.RangeStmt) bool {
	info := c.pass.Info
	switch a.Tok {
	case token.DEFINE:
		// New locals die with the iteration; only their initializers
		// must be pure.
		for _, rhs := range a.Rhs {
			if !callFree(info, rhs) {
				return false
			}
		}
		return true
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN, token.AND_NOT_ASSIGN:
		// Exact-integer accumulation commutes; float accumulation
		// does not (rounding is order-dependent — see floatorder).
		return len(a.Lhs) == 1 && isIntegerType(info.TypeOf(a.Lhs[0])) && callFree(info, a.Rhs[0])
	case token.ASSIGN:
		if len(a.Lhs) != 1 || !callFree(info, a.Rhs[0]) {
			return false
		}
		lhs := unparen(a.Lhs[0])
		// Writes to state local to the body are invisible outside one
		// iteration.
		if obj := rootObject(info, lhs); declaredWithin(obj, rs.Body) {
			return true
		}
		// m2[k] = v keyed by the range key touches each slot exactly
		// once, so last-writer-wins never races across iterations.
		idx, ok := lhs.(*ast.IndexExpr)
		if !ok {
			return false
		}
		if t := info.TypeOf(idx.X); t == nil {
			return false
		} else if _, isMap := t.Underlying().(*types.Map); !isMap {
			return false
		}
		keyIdent, ok := unparen(idx.Index).(*ast.Ident)
		if !ok {
			return false
		}
		rangeKey, ok := rs.Key.(*ast.Ident)
		if !ok {
			return false
		}
		return info.Uses[keyIdent] != nil && info.Uses[keyIdent] == info.Defs[rangeKey]
	default:
		return false
	}
}

// collectThenSorted recognizes the canonical deterministic idiom:
//
//	for k := range m {
//		keys = append(keys, k)
//	}
//	sort.Strings(keys)
//
// rs is list[i]; the loop body must be a single self-append of the
// range key or value, and list[i+1] must sort the same slice via the
// sort or slices package.
func (c *mapRangeChecker) collectThenSorted(rs *ast.RangeStmt, list []ast.Stmt, i int) bool {
	info := c.pass.Info
	if len(rs.Body.List) != 1 || i+1 >= len(list) {
		return false
	}
	a, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || a.Tok != token.ASSIGN || len(a.Lhs) != 1 || len(a.Rhs) != 1 {
		return false
	}
	target, ok := unparen(a.Lhs[0]).(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := unparen(a.Rhs[0]).(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	fn, ok := unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := info.Uses[fn].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	first, ok := unparen(call.Args[0]).(*ast.Ident)
	if !ok || info.Uses[first] != info.Uses[target] || info.Uses[target] == nil {
		return false
	}
	// The appended element must be the range key or value itself, so
	// the slice is a permutation of the map's keys/values regardless
	// of order.
	elem, ok := unparen(call.Args[1]).(*ast.Ident)
	if !ok {
		return false
	}
	elemObj := info.Uses[elem]
	if elemObj == nil || !(matchesRangeVar(info, elemObj, rs.Key) || matchesRangeVar(info, elemObj, rs.Value)) {
		return false
	}
	// Next statement: a sort of the same slice.
	next := list[i+1]
	es, ok := next.(*ast.ExprStmt)
	if !ok {
		return false
	}
	sortCall, ok := es.X.(*ast.CallExpr)
	if !ok || len(sortCall.Args) == 0 {
		return false
	}
	sel, ok := unparen(sortCall.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	sfn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || sfn.Pkg() == nil {
		return false
	}
	if p := sfn.Pkg().Path(); p != "sort" && p != "slices" {
		return false
	}
	arg, ok := unparen(sortCall.Args[0]).(*ast.Ident)
	return ok && info.Uses[arg] == info.Uses[target]
}

func matchesRangeVar(info *types.Info, obj types.Object, rangeVar ast.Expr) bool {
	id, ok := rangeVar.(*ast.Ident)
	if !ok {
		return false
	}
	return info.Defs[id] != nil && info.Defs[id] == obj
}
