package analysis

import (
	"go/ast"
	"go/types"
)

// globalRandOK are the package-level math/rand functions that do not
// touch the process-global source: constructors for explicit, seedable
// generators (NewZipf takes the *rand.Rand it uses as an argument).
var globalRandOK = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// GlobalRand rejects package-level math/rand (and math/rand/v2) calls.
// The global source is shared process state: any draw from it is
// ordered by whatever else ran first, so two structurally identical
// runs diverge. Every random stream in the simulator must be a seeded
// *rand.Rand threaded down from a config — methods on an explicit
// generator are always fine.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc: "package-level math/rand functions (rand.Intn, rand.Float64, ...) draw from the shared global source; " +
		"use a seeded *rand.Rand threaded from the config",
	Run: runGlobalRand,
}

func runGlobalRand(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if p := fn.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true
			}
			if !globalRandOK[fn.Name()] {
				pass.Reportf(sel.Pos(),
					"package-level rand.%s draws from the unseeded process-global source; use a seeded *rand.Rand threaded from the config",
					fn.Name())
			}
			return true
		})
	}
	return nil
}
