package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

const fixtureImportPrefix = "github.com/skipsim/skip/internal/analysis/testdata/src/"

// loadFixture type-checks one testdata package under its real
// in-module import path so DefaultScopes applies exactly as it would
// through cmd/skiplint.
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	pkg, err := NewLoader().Load(dir, fixtureImportPrefix+name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return pkg
}

// wantRe matches one expectation comment: // want `regex`
var wantRe = regexp.MustCompile("// want `([^`]+)`")

// parseWants returns the expected-diagnostic regexes per file:line.
func parseWants(t *testing.T, dir string) map[string][]*regexp.Regexp {
	t.Helper()
	wants := map[string][]*regexp.Regexp{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				key := fmt.Sprintf("%s:%d", path, i+1)
				wants[key] = append(wants[key], regexp.MustCompile(m[1]))
			}
		}
	}
	return wants
}

// TestFixtures runs each check alone over its fixture package and
// holds the diagnostics to the want comments exactly: every finding
// must be wanted on its line, every want must fire. Positive,
// negative, and allow-directive cases all live in the fixtures.
func TestFixtures(t *testing.T) {
	for _, a := range All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			pkg := loadFixture(t, a.Name)
			diags, err := Run([]*Package{pkg}, []*Analyzer{a}, DefaultScopes)
			if err != nil {
				t.Fatal(err)
			}
			wants := parseWants(t, pkg.Dir)
			matched := map[string]int{}
			for _, d := range diags {
				if d.Check != a.Name {
					t.Errorf("unexpected %s diagnostic from a %s-only run: %s", d.Check, a.Name, d)
					continue
				}
				key := fmt.Sprintf("%s:%d", d.Position.Filename, d.Position.Line)
				ok := false
				for _, re := range wants[key] {
					if re.MatchString(d.Message) {
						ok = true
						matched[key]++
					}
				}
				if !ok {
					t.Errorf("unwanted diagnostic: %s", d)
				}
			}
			for key, res := range wants {
				if matched[key] < len(res) {
					t.Errorf("%s: wanted %d diagnostic(s), matched %d", key, len(res), matched[key])
				}
			}
			if len(diags) == 0 {
				t.Errorf("fixture produced no diagnostics; positive cases missing?")
			}
		})
	}
}

// TestDirectiveFixture checks directive validation through the full
// driver: missing check list, missing reason, unknown check, and a
// stale (unused) waiver. Expectations are positional because directive
// diagnostics point at the comments themselves, where a want comment
// cannot live.
func TestDirectiveFixture(t *testing.T) {
	pkg := loadFixture(t, "directive")
	diags, err := Run([]*Package{pkg}, All(), DefaultScopes)
	if err != nil {
		t.Fatal(err)
	}
	wants := []string{
		`missing check name and reason`,
		`a reason is required`,
		`unknown check "nosuchcheck"`,
		`stale skiplint:allow directive`,
	}
	if len(diags) != len(wants) {
		t.Fatalf("got %d diagnostics, want %d:\n%v", len(diags), len(wants), diags)
	}
	for i, d := range diags {
		if d.Check != "directive" {
			t.Errorf("diagnostic %d: check %q, want \"directive\"", i, d.Check)
		}
		if !strings.Contains(d.Message, wants[i]) {
			t.Errorf("diagnostic %d: %q does not contain %q", i, d.Message, wants[i])
		}
	}
}

// TestSelfLint asserts the repository is clean under the full suite —
// the determinism contract holds, and the two sanctioned exemptions
// (the WithProfile wall-clock envelope, the sweep worker pool) are
// properly annotated rather than silently ignored.
func TestSelfLint(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := NewLoader().LoadPatterns(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded from module root")
	}
	diags, err := Run(pkgs, All(), DefaultScopes)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("repo not clean: %s", d)
	}
}

func TestSelect(t *testing.T) {
	all, err := Select("")
	if err != nil || len(all) != len(All()) {
		t.Fatalf("Select(\"\") = %d checks, err %v; want all %d", len(all), err, len(All()))
	}
	two, err := Select("floatorder, walltime")
	if err != nil {
		t.Fatal(err)
	}
	if len(two) != 2 || two[0].Name != "walltime" || two[1].Name != "floatorder" {
		t.Fatalf("Select order/content wrong: %v", names(two))
	}
	if _, err := Select("walltime,bogus"); err == nil {
		t.Fatal("Select accepted unknown check")
	}
}

func names(as []*Analyzer) []string {
	var out []string
	for _, a := range as {
		out = append(out, a.Name)
	}
	return out
}

func TestInScope(t *testing.T) {
	cases := []struct {
		patterns []string
		path     string
		want     bool
	}{
		{[]string{"..."}, "anything/at/all", true},
		{[]string{"a/b"}, "a/b", true},
		{[]string{"a/b"}, "a/b/c", false},
		{[]string{"a/..."}, "a", true},
		{[]string{"a/..."}, "a/b/c", true},
		{[]string{"a/..."}, "ab", false},
		{nil, "a", false},
	}
	for _, c := range cases {
		if got := InScope(c.patterns, c.path); got != c.want {
			t.Errorf("InScope(%v, %q) = %v, want %v", c.patterns, c.path, got, c.want)
		}
	}
}

// TestScopesCoverAllChecks: a check without a Scopes entry silently
// never runs; hold the config to the registry.
func TestScopesCoverAllChecks(t *testing.T) {
	for _, a := range All() {
		if len(DefaultScopes[a.Name]) == 0 {
			t.Errorf("check %s has no DefaultScopes entry and would never run", a.Name)
		}
	}
}

func TestParseDirective(t *testing.T) {
	known := map[string]bool{"walltime": true, "goroutine": true}
	for _, sep := range []string{"—", "--", "-"} {
		d, err := parseDirective("walltime "+sep+" profiling envelope", known)
		if err != nil {
			t.Fatalf("separator %q: %v", sep, err)
		}
		if d.reason != "profiling envelope" {
			t.Errorf("separator %q: reason %q", sep, d.reason)
		}
	}
	d, err := parseDirective("walltime,goroutine reason with no separator", known)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.checks) != 2 || d.checks[1] != "goroutine" {
		t.Errorf("checks = %v", d.checks)
	}
	for _, bad := range []string{"", "walltime", "walltime —", "mystery — why"} {
		if _, err := parseDirective(bad, known); err == nil {
			t.Errorf("parseDirective(%q) accepted", bad)
		}
	}
}
