package analysis

import "go/ast"

// Goroutine rejects go statements. The simulator is single-threaded
// by design — one event at a time off one calendar — and every
// deterministic parallel path so far (the sweep worker pool in
// internal/spec/sweep.go) earned its place by proving bit-identical
// output at any worker count. A new go statement is a design decision,
// not an optimization, so each one must carry an explicit allow
// directive naming why its results are order-independent.
var Goroutine = &Analyzer{
	Name: "goroutine",
	Doc: "go statements are banned outside explicitly allow-listed worker pools; " +
		"every parallel path must prove bit-identical output before earning its directive",
	Run: runGoroutine,
}

func runGoroutine(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(),
					"go statement outside an approved worker pool; prove the results are order-independent, then allow-list it")
			}
			return true
		})
	}
	return nil
}
