package analysis

import "strings"

// Scopes maps each check to the import-path patterns it applies to: a
// pattern is "..." (everything), an exact import path, or a prefix
// ending in "/..." . DefaultScopes encodes where each rule is law in
// this repository:
//
//   - walltime applies to the simulation tree (internal/...): the CLI
//     may read the wall clock to report its own runtime, the simulator
//     may not. The one sanctioned exception — the WithProfile envelope
//     in internal/spec/simulate.go, whose whole job is measuring real
//     wall time around a run — carries allow directives.
//   - globalrand, goroutine, and floatorder apply module-wide: an
//     unseeded random stream, an unsupervised goroutine, or a
//     map-ordered float sum is never acceptable in non-test code.
//   - maprange applies to the report/stats/event-emitting packages,
//     where iteration order leaks straight into published artifacts.
//     Pure-compute packages (engine, ops, fusion, models, sim) are out
//     of scope until a map range there can reach an output.
//
// Every scope also covers internal/analysis/testdata/... so the CI
// bad-fixture smoke exercises each check through the real driver; the
// go tool's own testdata convention keeps those fixtures out of
// normal builds and of skiplint's "./..." expansion.
var DefaultScopes = map[string][]string{
	"walltime": {
		"github.com/skipsim/skip/internal/...",
	},
	"globalrand": {"..."},
	"goroutine":  {"..."},
	"floatorder": {"..."},
	"maprange": {
		"github.com/skipsim/skip/internal/serve",
		"github.com/skipsim/skip/internal/cluster",
		"github.com/skipsim/skip/internal/disagg",
		"github.com/skipsim/skip/internal/spec",
		"github.com/skipsim/skip/internal/metrics",
		"github.com/skipsim/skip/internal/trace",
		"github.com/skipsim/skip/internal/kvcache",
		"github.com/skipsim/skip/internal/analysis/testdata/...",
	},
}

// InScope reports whether the import path matches any pattern. A nil
// or empty pattern list means the check is scoped nowhere (it never
// runs), so forgetting a Scopes entry fails loud in the self-lint
// test rather than silently linting the world.
func InScope(patterns []string, path string) bool {
	for _, pat := range patterns {
		switch {
		case pat == "...":
			return true
		case pat == path:
			return true
		default:
			if prefix, ok := strings.CutSuffix(pat, "/..."); ok {
				if path == prefix || strings.HasPrefix(path, prefix+"/") {
					return true
				}
			}
		}
	}
	return false
}
