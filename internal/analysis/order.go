package analysis

// Shared helpers for the two map-iteration-order checks (maprange,
// floatorder): map-range detection, side-effect-free expression
// classification, and lvalue root resolution.

import (
	"go/ast"
	"go/types"
)

// isMapRange reports whether rs ranges over a map.
func isMapRange(info *types.Info, rs *ast.RangeStmt) bool {
	t := info.TypeOf(rs.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// callFree reports whether the expression contains no function calls
// other than pure builtins (len, cap, min, max) and type conversions.
// Any other call could observe or mutate state in map-iteration order.
func callFree(info *types.Info, e ast.Expr) bool {
	if e == nil {
		return true
	}
	free := true
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
			return true // conversion
		}
		if id, ok := unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok {
				switch b.Name() {
				case "len", "cap", "min", "max":
					return true
				}
			}
		}
		free = false
		return false
	})
	return free
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// rootObject resolves the variable at the base of an lvalue —
// x, x.f, x[i], (*x).f all root at x — so the order checks can ask
// where the mutated state was declared. Returns nil when no single
// root identifier exists.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch v := unparen(e).(type) {
		case *ast.Ident:
			if obj := info.Uses[v]; obj != nil {
				return obj
			}
			return info.Defs[v]
		case *ast.SelectorExpr:
			if _, ok := info.Selections[v]; ok {
				e = v.X // field access roots at the receiver
				continue
			}
			// Package-qualified name: the object is the root.
			return info.Uses[v.Sel]
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// declaredWithin reports whether obj's declaration lies inside the
// node span [pos, end]. Mutating state declared inside the loop body
// is invisible outside one iteration and therefore order-independent.
func declaredWithin(obj types.Object, n ast.Node) bool {
	return obj != nil && obj.Pos() != 0 && n.Pos() <= obj.Pos() && obj.Pos() <= n.End()
}

// isIntegerType reports whether t is an integer kind (signed or
// unsigned); integer accumulation is exactly commutative, float
// accumulation is not.
func isIntegerType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// isFloatType reports whether t is a float or complex kind.
func isFloatType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}
