package analysis

import (
	"go/ast"
	"go/token"
)

// FloatOrder flags float compound accumulation (`+=`, `-=`, `*=`,
// `/=`) inside the body of a map range when the accumulator outlives
// the loop. Float addition is not associative: summing the same values
// in a different order changes the rounding, so a map-ordered float
// sum is bit-nondeterministic even though it is "the same math". This
// is the composite failure — maprange supplies the random order,
// the float accumulator turns it into a different published number.
//
// Accumulators declared inside the loop body are fine (they cannot
// carry state across iterations); so is integer accumulation, which
// commutes exactly. The fix is the running-sum idiom: extract the
// keys, sort them, and accumulate in sorted order.
var FloatOrder = &Analyzer{
	Name: "floatorder",
	Doc: "float `+=` accumulation inside a map-range body is order-dependent rounding; " +
		"sort the keys first or keep the accumulator local to the body",
	Run: runFloatOrder,
}

func runFloatOrder(pass *Pass) error {
	// An accumulation nested under several map ranges would be flagged
	// once per enclosing loop; dedupe by position.
	seen := map[token.Pos]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !isMapRange(pass.Info, rs) {
				return true
			}
			ast.Inspect(rs.Body, func(m ast.Node) bool {
				a, ok := m.(*ast.AssignStmt)
				if !ok || seen[a.Pos()] {
					return true
				}
				switch a.Tok {
				case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				default:
					return true
				}
				if len(a.Lhs) != 1 {
					return true
				}
				t := pass.Info.TypeOf(a.Lhs[0])
				if t == nil || !isFloatType(t) {
					return true
				}
				obj := rootObject(pass.Info, a.Lhs[0])
				if obj != nil && declaredWithin(obj, rs.Body) {
					return true // iteration-local accumulator
				}
				seen[a.Pos()] = true
				pass.Reportf(a.Pos(),
					"float accumulation (%s) inside a map-range body follows randomized iteration order; "+
						"sort the keys first or keep the accumulator local",
					a.Tok)
				return true
			})
			return true
		})
	}
	return nil
}
