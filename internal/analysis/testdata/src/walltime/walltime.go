// Package fixture exercises the walltime check: wall-clock reads are
// flagged, duration arithmetic is not, and an allow directive with a
// reason suppresses a finding.
package fixture

import "time"

var epoch time.Time

func bad() time.Duration {
	start := time.Now()              // want `wall-clock call time\.Now`
	time.Sleep(5 * time.Millisecond) // want `wall-clock call time\.Sleep`
	<-time.After(time.Second)        // want `wall-clock call time\.After`
	return time.Since(start)         // want `wall-clock call time\.Since`
}

func good(d time.Duration) time.Duration {
	// Types, constants, and arithmetic on time values are fine; the
	// contract bans reading the host clock, not describing durations.
	deadline := epoch.Add(d)
	_ = deadline.Unix()
	return 2 * time.Millisecond
}

func allowed() time.Time {
	//skiplint:allow walltime — fixture: sanctioned profiling envelope measuring the tool itself, not the simulation
	return time.Now()
}
