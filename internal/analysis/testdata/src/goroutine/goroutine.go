// Package fixture exercises the goroutine check: every go statement
// is flagged unless it carries an allow directive with a reason.
package fixture

func work() {}

func bad() {
	go work() // want `go statement outside an approved worker pool`
}

func alsoBad(ch chan int) {
	go func() { // want `go statement outside an approved worker pool`
		ch <- 1
	}()
}

func good() {
	work() // synchronous call: fine
}

func allowed() {
	//skiplint:allow goroutine — fixture: bounded worker pool with index-ordered reassembly, bit-identical to serial
	go work()
}
