// Package fixture exercises directive validation: a directive with no
// check or reason, a directive missing its reason, a directive naming
// an unknown check, and a well-formed directive that suppresses
// nothing (stale). Expectations live in the analyzer test, not in want
// comments, because directive diagnostics point at the comments
// themselves.
package fixture

//skiplint:allow

//skiplint:allow walltime

//skiplint:allow nosuchcheck — believed fine

//skiplint:allow walltime — stale: nothing on this or the next line to suppress

func nothing() {}
