// Package fixture exercises the floatorder check: float accumulation
// into state that outlives a map-range body is flagged, iteration-local
// and integer accumulators pass, and an allow directive with a reason
// suppresses a finding.
package fixture

type totals struct{ Total float64 }

func badSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `float accumulation`
	}
	return sum
}

func badNestedField(m map[string][]float64, out *totals) {
	for _, vs := range m {
		for _, v := range vs {
			out.Total += v // want `float accumulation`
		}
	}
}

func goodLocal(m map[string][]float64) int {
	n := 0
	for _, vs := range m {
		s := 0.0
		for _, v := range vs {
			s += v // accumulator is local to the map-range body: order never escapes
		}
		if s > 1 {
			n++
		}
	}
	return n
}

func goodInt(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v // exact-integer accumulation commutes
	}
	return total
}

func allowed(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		//skiplint:allow floatorder — fixture: values are exact powers of two, so addition is exact in any order
		sum += v
	}
	return sum
}
