// Package fixture exercises the maprange check: order-sensitive map
// iteration is flagged, the commutative and collect-then-sort shapes
// pass, and an allow directive with a reason suppresses a finding.
package fixture

import "sort"

func process(string) {}

func badAppendNoSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want `order-sensitive range over map`
		keys = append(keys, k)
	}
	return keys // never sorted: map insertion order leaks out
}

func badCall(m map[string]int) {
	for k := range m { // want `order-sensitive range over map`
		process(k)
	}
}

func badBreak(m map[string]int) string {
	found := ""
	for k := range m { // want `order-sensitive range over map`
		if k != "" {
			found = k
			break
		}
	}
	return found
}

func goodCollectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func goodCommutative(m map[string]int64) (int64, int) {
	var total int64
	count := 0
	for _, v := range m {
		total += v
		count++
	}
	return total, count
}

func goodKeyedStore(m map[string]int) map[string]int {
	doubled := make(map[string]int, len(m))
	for k, v := range m {
		doubled[k] = v * 2
	}
	return doubled
}

func goodDelete(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

func allowed(m map[string]int) {
	//skiplint:allow maprange — fixture: side effects proven order-independent by construction
	for k := range m {
		process(k)
	}
}
