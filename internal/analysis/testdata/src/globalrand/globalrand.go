// Package fixture exercises the globalrand check: package-level
// math/rand calls are flagged, seeded *rand.Rand generators are not,
// and an allow directive with a reason suppresses a finding.
package fixture

import "math/rand"

func bad() float64 {
	n := rand.Intn(10)                 // want `package-level rand\.Intn`
	return float64(n) + rand.Float64() // want `package-level rand\.Float64`
}

func good(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

func goodZipf(rng *rand.Rand) *rand.Zipf {
	// Constructors for explicit generators never touch the global
	// source; NewZipf draws from the *rand.Rand it is handed.
	return rand.NewZipf(rng, 1.1, 1, 100)
}

func allowed() float64 {
	//skiplint:allow globalrand — fixture: demonstration of a reviewed waiver
	return rand.ExpFloat64()
}
