package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one parsed, type-checked, non-test package ready for
// analysis. Test files are excluded on purpose: the contract governs
// simulation code; tests may use wall clocks and ad-hoc randomness
// freely.
type Package struct {
	// Dir is the package directory on disk.
	Dir string
	// Path is the import path (module path + relative directory),
	// the unit Scopes patterns match against.
	Path string
	Fset *token.FileSet
	// Files are the parsed non-test Go files, comments included.
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Loader parses and type-checks packages with a shared FileSet and a
// shared go/importer source importer, so one run type-checks each
// dependency once no matter how many roots import it.
type Loader struct {
	fset *token.FileSet
	imp  types.Importer
}

func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// ModuleRoot walks upward from dir to the enclosing go.mod, returning
// the module root directory and module path.
func ModuleRoot(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod: no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// ExpandPatterns resolves skiplint's package arguments — "./...",
// "dir/...", or plain directories, relative to cwd — into the list of
// package directories to analyze. Recursive patterns follow the go
// tool's conventions: directories named "testdata", hidden directories,
// and "_"-prefixed directories are skipped, as are directories with no
// non-test Go files. A directory named explicitly (no "...") is always
// accepted, which is how the CI smoke points the linter at a bad
// fixture inside testdata.
func ExpandPatterns(cwd string, patterns []string) ([]string, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		base, recursive := pat, false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			base, recursive = rest, true
		} else if pat == "..." {
			base, recursive = ".", true
		}
		if !filepath.IsAbs(base) {
			base = filepath.Join(cwd, base)
		}
		fi, err := os.Stat(base)
		if err != nil {
			return nil, fmt.Errorf("pattern %q: %w", pat, err)
		}
		if !fi.IsDir() {
			return nil, fmt.Errorf("pattern %q: not a directory", pat)
		}
		if !recursive {
			if !hasGoFiles(base) {
				return nil, fmt.Errorf("pattern %q: no non-test Go files in %s", pat, base)
			}
			add(base)
			continue
		}
		err = filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("pattern %q: %w", pat, err)
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && isSourceFile(e.Name()) {
			return true
		}
	}
	return false
}

func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") &&
		!strings.HasPrefix(name, "_")
}

// Load parses and type-checks the package in dir under the given
// import path. Parse or type errors are fatal: the linter only makes
// claims about code the compiler would accept.
func (l *Loader) Load(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !isSourceFile(e.Name()) {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("%s: no non-test Go files", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l.imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", importPath, err)
	}
	return &Package{Dir: dir, Path: importPath, Fset: l.fset, Files: files, Types: tpkg, Info: info}, nil
}

// LoadPatterns expands patterns relative to cwd and loads every
// matched directory as a package, deriving import paths from the
// enclosing module.
func (l *Loader) LoadPatterns(cwd string, patterns []string) ([]*Package, error) {
	root, modPath, err := ModuleRoot(cwd)
	if err != nil {
		return nil, err
	}
	dirs, err := ExpandPatterns(cwd, patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("%s: outside module %s", dir, modPath)
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.Load(dir, importPath)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
