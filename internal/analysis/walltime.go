package analysis

import (
	"go/ast"
	"go/types"
)

// wallFuncs are the package-level time functions that read or act on
// the host's real clock. Types, constants, and arithmetic (time.Time,
// time.Duration, 5*time.Millisecond, d.Seconds()) are all fine — the
// contract bans reading wall time, not describing durations.
var wallFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// Walltime rejects wall-clock reads in simulation packages. Simulated
// time advances only through sim.Calendar; a time.Now anywhere in a
// simulation path couples results to host speed and breaks
// bit-identical reruns. The WithProfile envelope in
// internal/spec/simulate.go is the sanctioned exception (it measures
// the simulator itself, not the simulation) and carries allow
// directives.
var Walltime = &Analyzer{
	Name: "walltime",
	Doc: "wall-clock reads (time.Now/Since/Until/Sleep/After/Tick/timers) are banned in simulation packages; " +
		"sim time comes from sim.Calendar",
	Run: runWalltime,
}

func runWalltime(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true
			}
			if wallFuncs[fn.Name()] {
				pass.Reportf(sel.Pos(),
					"wall-clock call time.%s in a simulation package; simulated time must come from sim.Calendar",
					fn.Name())
			}
			return true
		})
	}
	return nil
}
