package cuda

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/skipsim/skip/internal/hw"
	"github.com/skipsim/skip/internal/sim"
	"github.com/skipsim/skip/internal/trace"
)

func newTestRuntime(p *hw.Platform) (*Runtime, *trace.Builder) {
	b := trace.NewBuilder()
	return NewRuntime(p, b, 1), b
}

func TestLaunchOnIdleStream(t *testing.T) {
	p := hw.IntelH100()
	rt, b := newTestRuntime(p)
	start, end := rt.LaunchKernel("k1", hw.KernelCost{}, DefaultStream)

	// Kernel starts exactly LaunchOverheadNs after the call started.
	if want := sim.FromNs(p.LaunchOverheadNs); start != want {
		t.Errorf("kernel start = %v, want %v", start, want)
	}
	// Null-cost kernel runs for the null duration.
	if want := start + sim.FromNs(p.GPU.NullKernelNs); end != want {
		t.Errorf("kernel end = %v, want %v", end, want)
	}
	// CPU advanced by only the launch-call portion.
	if got, want := rt.CPU.Now(), p.LaunchCPUTime(); got != want {
		t.Errorf("CPU now = %v, want %v", got, want)
	}
	tr := b.Trace()
	if err := tr.Validate(); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	if rt.Launches() != 1 {
		t.Errorf("Launches = %d", rt.Launches())
	}
}

func TestLaunchQueuesBehindBusyStream(t *testing.T) {
	p := hw.IntelH100()
	rt, _ := newTestRuntime(p)
	// First kernel: big, occupies the stream for a long time.
	big := hw.KernelCost{BytesRead: 1e9}
	_, end1 := rt.LaunchKernel("big", big, DefaultStream)
	// Second kernel launched immediately after must queue until end1.
	start2, _ := rt.LaunchKernel("small", hw.KernelCost{}, DefaultStream)
	if start2 != end1 {
		t.Errorf("queued kernel start = %v, want %v (FIFO)", start2, end1)
	}
}

func TestIndependentStreams(t *testing.T) {
	p := hw.IntelH100()
	rt, _ := newTestRuntime(p)
	big := hw.KernelCost{BytesRead: 1e9}
	rt.LaunchKernel("big", big, 1)
	start2, _ := rt.LaunchKernel("other-stream", hw.KernelCost{}, 2)
	// Stream 2 is idle: no queuing behind stream 1.
	lower := rt.StreamByID(2)
	_ = lower
	wantMax := rt.CPU.Now() + sim.FromNs(p.LaunchOverheadNs)
	if start2 > wantMax {
		t.Errorf("cross-stream kernel queued: start=%v", start2)
	}
}

func TestSynchronizeBlocksHost(t *testing.T) {
	p := hw.GH200()
	rt, b := newTestRuntime(p)
	_, end := rt.LaunchKernel("k", hw.KernelCost{BytesRead: 1e8}, DefaultStream)
	resume := rt.Synchronize()
	if resume != end {
		t.Errorf("Synchronize resumed at %v, want %v", resume, end)
	}
	if rt.CPU.Now() != end {
		t.Errorf("CPU now = %v, want %v", rt.CPU.Now(), end)
	}
	// Synchronize with everything drained is instant.
	again := rt.Synchronize()
	if again != end {
		t.Errorf("idle Synchronize moved time to %v", again)
	}
	tr := b.Trace()
	var syncs int
	for _, e := range tr.Events {
		if e.Name == "cudaDeviceSynchronize" {
			syncs++
		}
	}
	if syncs != 2 {
		t.Errorf("synchronize events = %d, want 2", syncs)
	}
}

func TestMemcpyUsesInterconnect(t *testing.T) {
	intel := hw.IntelH100()
	gh := hw.GH200()
	bytes := 1e8 // 100 MB

	rtI, _ := newTestRuntime(intel)
	sI, eI := rtI.Memcpy(HostToDevice, bytes, DefaultStream)
	rtG, _ := newTestRuntime(gh)
	sG, eG := rtG.Memcpy(HostToDevice, bytes, DefaultStream)

	durI, durG := eI-sI, eG-sG
	if durG >= durI {
		t.Errorf("NVLink-C2C copy (%v) should beat PCIe (%v)", durG, durI)
	}
	ratio := float64(durI) / float64(durG)
	wantRatio := gh.IC.BandwidthGBps / intel.IC.BandwidthGBps
	if ratio < wantRatio*0.8 || ratio > wantRatio*1.2 {
		t.Errorf("copy speed ratio %.2f, want ≈%.2f", ratio, wantRatio)
	}
}

func TestMemcpyElidedOnUnifiedMemory(t *testing.T) {
	rt, b := newTestRuntime(hw.MI300A())
	s, e := rt.Memcpy(HostToDevice, 1e9, DefaultStream)
	if s != e {
		t.Errorf("TC memcpy took time: [%v,%v)", s, e)
	}
	if got := len(b.Trace().Events); got != 0 {
		t.Errorf("TC memcpy emitted %d events, want 0", got)
	}
}

func TestGraphCaptureAndReplay(t *testing.T) {
	p := hw.IntelH100()
	rt, b := newTestRuntime(p)
	if err := rt.BeginCapture(); err != nil {
		t.Fatal(err)
	}
	if err := rt.BeginCapture(); err == nil {
		t.Error("nested capture should fail")
	}
	for i := 0; i < 5; i++ {
		rt.LaunchKernel("k", hw.KernelCost{FLOPs: 1e6}, DefaultStream)
	}
	g, err := rt.EndCapture()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.EndCapture(); err == nil {
		t.Error("EndCapture without capture should fail")
	}
	if g.Len() != 5 {
		t.Fatalf("captured %d kernels, want 5", g.Len())
	}
	if names := g.KernelNames(); len(names) != 5 || names[0] != "k" {
		t.Errorf("KernelNames = %v", names)
	}
	// Capture must not have executed anything.
	if rt.Launches() != 0 || rt.CPU.Now() != 0 {
		t.Errorf("capture executed: launches=%d cpu=%v", rt.Launches(), rt.CPU.Now())
	}

	start, end := rt.LaunchGraph(g, DefaultStream)
	if end <= start {
		t.Fatalf("graph span [%v,%v)", start, end)
	}
	// One host-visible launch for the whole graph.
	if rt.Launches() != 1 {
		t.Errorf("graph replay Launches = %d, want 1", rt.Launches())
	}
	tr := b.Trace()
	if err := tr.Validate(); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	if got := len(tr.Kernels()); got != 5 {
		t.Errorf("kernel events = %d, want 5", got)
	}
}

func TestGraphReplayBeatsEagerLaunchTax(t *testing.T) {
	// The same 50-kernel sequence must finish sooner via graph replay
	// than via eager launches when kernels are tiny enough that the CPU
	// launch cadence is the bottleneck (CPU-bound regime). Null-cost
	// kernels are the purest such case.
	p := hw.GH200()
	tiny := hw.KernelCost{}

	rtE, _ := newTestRuntime(p)
	for i := 0; i < 50; i++ {
		rtE.LaunchKernel("k", tiny, DefaultStream)
	}
	eagerEnd := rtE.Synchronize()

	rtG, _ := newTestRuntime(p)
	rtG.BeginCapture()
	for i := 0; i < 50; i++ {
		rtG.LaunchKernel("k", tiny, DefaultStream)
	}
	g, _ := rtG.EndCapture()
	rtG.LaunchGraph(g, DefaultStream)
	graphEnd := rtG.Synchronize()

	if graphEnd >= eagerEnd {
		t.Errorf("graph replay (%v) should beat eager (%v) for tiny kernels", graphEnd, eagerEnd)
	}
}

func TestEmptyGraphLaunch(t *testing.T) {
	rt, _ := newTestRuntime(hw.IntelH100())
	g := &Graph{}
	s, e := rt.LaunchGraph(g, DefaultStream)
	if s != e || rt.Launches() != 0 {
		t.Errorf("empty graph launch did work: [%v,%v) launches=%d", s, e, rt.Launches())
	}
}

func TestMeasureNullKernelMatchesTableV(t *testing.T) {
	cases := []struct {
		p *hw.Platform
	}{{hw.AMDA100()}, {hw.IntelH100()}, {hw.GH200()}}
	for _, c := range cases {
		res := MeasureNullKernel(c.p, 100)
		// ±1ns for integer rounding of the virtual clock.
		if math.Abs(res.LaunchOverheadNs-c.p.LaunchOverheadNs) > 1.0 {
			t.Errorf("%s measured launch overhead %.1f, want %.1f",
				c.p.Name, res.LaunchOverheadNs, c.p.LaunchOverheadNs)
		}
		if math.Abs(res.DurationNs-c.p.GPU.NullKernelNs) > 1.0 {
			t.Errorf("%s measured null duration %.1f, want %.1f",
				c.p.Name, res.DurationNs, c.p.GPU.NullKernelNs)
		}
	}
}

func TestMeasureNullKernelZeroRuns(t *testing.T) {
	res := MeasureNullKernel(hw.IntelH100(), 0)
	if res.LaunchOverheadNs != 0 || res.DurationNs != 0 {
		t.Errorf("zero-run microbench = %+v", res)
	}
}

func TestGPUBusyAccounting(t *testing.T) {
	p := hw.IntelH100()
	rt, _ := newTestRuntime(p)
	cost := hw.KernelCost{BytesRead: 1e7}
	want := p.GPU.KernelDuration(cost) + p.GPU.KernelDuration(hw.KernelCost{})
	rt.LaunchKernel("a", cost, 1)
	rt.LaunchKernel("b", hw.KernelCost{}, 2)
	if got := rt.GPUBusy(); got != want {
		t.Errorf("GPUBusy = %v, want %v", got, want)
	}
	if rt.StreamByID(1).KernelCount() != 1 || rt.StreamByID(2).KernelCount() != 1 {
		t.Error("per-stream kernel counts wrong")
	}
}

// Property: kernels on one stream never overlap and respect launch order.
func TestStreamFIFOProperty(t *testing.T) {
	p := hw.GH200()
	f := func(costs []uint32) bool {
		if len(costs) == 0 || len(costs) > 64 {
			return true
		}
		rt, b := newTestRuntime(p)
		for _, c := range costs {
			rt.LaunchKernel("k", hw.KernelCost{FLOPs: float64(c)}, DefaultStream)
		}
		ks := b.Trace().Kernels()
		for i := 1; i < len(ks); i++ {
			if ks[i].Ts < ks[i-1].End() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: measured launch overhead from any single idle-stream launch
// equals the platform constant (no drift from bookkeeping).
func TestLaunchOverheadProperty(t *testing.T) {
	f := func(which uint8) bool {
		ps := []*hw.Platform{hw.AMDA100(), hw.IntelH100(), hw.GH200(), hw.MI300A()}
		p := ps[int(which)%len(ps)]
		rt, b := newTestRuntime(p)
		rt.LaunchKernel("k", hw.KernelCost{}, DefaultStream)
		tr := b.Trace()
		var launchTs, kernelTs sim.Time
		for _, e := range tr.Events {
			switch e.Cat {
			case trace.CatRuntime:
				launchTs = e.Ts
			case trace.CatKernel:
				kernelTs = e.Ts
			}
		}
		tl := float64(kernelTs - launchTs)
		return math.Abs(tl-p.LaunchOverheadNs) <= 1.0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
