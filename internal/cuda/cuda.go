// Package cuda simulates the CUDA runtime surface the executor needs:
// kernel launches with launch latency, FIFO stream queues, host↔device
// copies over the platform interconnect, device synchronization, and CUDA
// Graph capture/replay (the mechanism behind torch.compile's
// reduce-overhead mode).
//
// Timing semantics (paper Fig. 4): a cudaLaunchKernel call occupies the
// host thread for the platform's launch-CPU time; the kernel may begin
// executing LaunchOverheadNs after the call started — unless earlier
// kernels still occupy the stream, in which case it queues. SKIP later
// measures t_l = tsb(kernel) − tsb(launch) from the trace (Eq. 1), which
// equals the pure launch overhead on an idle stream and grows with
// queuing delay on a saturated one.
package cuda

import (
	"fmt"

	"github.com/skipsim/skip/internal/hw"
	"github.com/skipsim/skip/internal/sim"
	"github.com/skipsim/skip/internal/trace"
)

// DefaultStream is the stream PyTorch eager mode uses for compute.
const DefaultStream = 7

// Stream is a FIFO device work queue.
type Stream struct {
	ID       int
	timeline *sim.Timeline
	lastEnd  sim.Time
	kernels  int
}

// KernelCount reports how many kernels have executed on the stream.
func (s *Stream) KernelCount() int { return s.kernels }

// BusyTime reports cumulative kernel execution time on the stream.
func (s *Stream) BusyTime() sim.Time { return s.timeline.BusyTime() }

// FreeAt reports when the stream drains.
func (s *Stream) FreeAt() sim.Time { return s.timeline.FreeAt() }

// Runtime is a simulated CUDA runtime bound to one platform, one host
// thread (the dispatch thread PyTorch eager mode uses), and one trace
// builder.
type Runtime struct {
	Platform *hw.Platform
	CPU      *sim.Clock

	builder *trace.Builder
	streams map[int]*Stream
	tid     int

	launches  int
	capturing *Graph
}

// NewRuntime creates a runtime for the platform, recording into b.
// tid identifies the host dispatch thread in emitted events.
func NewRuntime(p *hw.Platform, b *trace.Builder, tid int) *Runtime {
	return &Runtime{
		Platform: p,
		CPU:      sim.NewClock(0),
		builder:  b,
		streams:  make(map[int]*Stream),
		tid:      tid,
	}
}

// StreamByID returns (creating on first use) the stream with the given id.
func (rt *Runtime) StreamByID(id int) *Stream {
	s, ok := rt.streams[id]
	if !ok {
		s = &Stream{ID: id, timeline: sim.NewTimeline(0)}
		rt.streams[id] = s
	}
	return s
}

// Launches reports how many cudaLaunchKernel calls have been issued.
func (rt *Runtime) Launches() int { return rt.launches }

// LaunchKernel simulates one cudaLaunchKernel call of the named kernel
// with the given cost onto stream id. It occupies the CPU for the launch
// call, enqueues the kernel behind prior stream work, and emits the
// runtime + kernel trace events. It returns the kernel's [start, end).
//
// During graph capture the kernel is recorded instead of executed,
// mirroring cudaStreamBeginCapture semantics.
func (rt *Runtime) LaunchKernel(name string, cost hw.KernelCost, streamID int) (start, end sim.Time) {
	if rt.capturing != nil {
		rt.capturing.nodes = append(rt.capturing.nodes, graphNode{name: name, cost: cost, stream: streamID})
		return rt.CPU.Now(), rt.CPU.Now()
	}

	p := rt.Platform
	callStart := rt.CPU.Now()
	callDur := p.LaunchCPUTime()
	rt.CPU.Advance(callDur)

	corr := rt.builder.NextCorrelation()
	rt.builder.Launch("cudaLaunchKernel", rt.tid, callStart, callDur, corr)

	s := rt.StreamByID(streamID)
	earliest := callStart + sim.FromNs(p.LaunchOverheadNs)
	dur := p.GPU.KernelDuration(cost)
	start, end = s.timeline.Acquire(earliest, dur)
	s.lastEnd = end
	s.kernels++
	rt.launches++

	rt.builder.Kernel(name, streamID, start, dur, corr, cost.FLOPs, cost.Bytes())
	return start, end
}

// MemcpyDir identifies a copy direction.
type MemcpyDir int

const (
	// HostToDevice moves input tensors to the GPU.
	HostToDevice MemcpyDir = iota
	// DeviceToHost moves results back.
	DeviceToHost
)

func (d MemcpyDir) String() string {
	if d == HostToDevice {
		return "Memcpy HtoD"
	}
	return "Memcpy DtoH"
}

// Memcpy simulates cudaMemcpyAsync of n bytes on stream id. On
// tightly-coupled platforms with unified physical memory the copy is
// elided entirely (no event, no time), matching MI300A semantics.
func (rt *Runtime) Memcpy(dir MemcpyDir, bytes float64, streamID int) (start, end sim.Time) {
	p := rt.Platform
	if p.UnifiedPhysicalMemory || bytes <= 0 {
		return rt.CPU.Now(), rt.CPU.Now()
	}
	callStart := rt.CPU.Now()
	callDur := p.LaunchCPUTime()
	rt.CPU.Advance(callDur)

	corr := rt.builder.NextCorrelation()
	rt.builder.Launch("cudaMemcpyAsync", rt.tid, callStart, callDur, corr)

	s := rt.StreamByID(streamID)
	earliest := callStart + sim.FromNs(p.LaunchOverheadNs)
	dur := p.TransferTime(bytes)
	start, end = s.timeline.Acquire(earliest, dur)
	s.lastEnd = end

	rt.builder.Memcpy(dir.String(), streamID, start, dur, corr, bytes)
	return start, end
}

// Synchronize simulates cudaDeviceSynchronize: the host blocks until all
// streams drain. It emits a runtime span covering the wait and returns
// the time at which the host resumes.
func (rt *Runtime) Synchronize() sim.Time {
	callStart := rt.CPU.Now()
	var latest sim.Time
	for _, s := range rt.streams {
		if s.timeline.FreeAt() > latest {
			latest = s.timeline.FreeAt()
		}
	}
	resume := sim.MaxTime(callStart, latest)
	rt.builder.Runtime("cudaDeviceSynchronize", rt.tid, callStart, resume-callStart)
	rt.CPU.AdvanceTo(resume)
	return resume
}

// GPUBusy sums kernel/copy execution time across streams.
func (rt *Runtime) GPUBusy() sim.Time {
	var total sim.Time
	for _, s := range rt.streams {
		total += s.timeline.BusyTime()
	}
	return total
}

// Graph is a captured kernel sequence, replayable with one launch — the
// simulator's CUDA Graph. Device-side dispatch between graph nodes is
// already captured by each kernel's NullKernelNs floor (the same floor
// stream-queued kernels pay), so replay adds no extra inter-kernel gap;
// the whole saving is on the host side.
type Graph struct {
	nodes []graphNode
}

type graphNode struct {
	name   string
	cost   hw.KernelCost
	stream int
}

// Len reports the number of captured kernels.
func (g *Graph) Len() int { return len(g.nodes) }

// KernelNames lists captured kernel names in order.
func (g *Graph) KernelNames() []string {
	names := make([]string, len(g.nodes))
	for i, n := range g.nodes {
		names[i] = n.name
	}
	return names
}

// BeginCapture starts recording launches into a graph. Launches issued
// until EndCapture are captured, not executed.
func (rt *Runtime) BeginCapture() error {
	if rt.capturing != nil {
		return fmt.Errorf("cuda: capture already in progress")
	}
	rt.capturing = &Graph{}
	return nil
}

// EndCapture stops recording and returns the captured graph.
func (rt *Runtime) EndCapture() (*Graph, error) {
	if rt.capturing == nil {
		return nil, fmt.Errorf("cuda: no capture in progress")
	}
	g := rt.capturing
	rt.capturing = nil
	return g, nil
}

// LaunchGraph replays a captured graph with a single cudaGraphLaunch
// call: one host launch, then every node back-to-back on its stream with
// only the replay gap between nodes. Returns the graph's [start, end).
func (rt *Runtime) LaunchGraph(g *Graph, streamID int) (start, end sim.Time) {
	if g.Len() == 0 {
		return rt.CPU.Now(), rt.CPU.Now()
	}
	p := rt.Platform
	callStart := rt.CPU.Now()
	callDur := p.LaunchCPUTime()
	rt.CPU.Advance(callDur)

	corr := rt.builder.NextCorrelation()
	rt.builder.Launch("cudaGraphLaunch", rt.tid, callStart, callDur, corr)

	s := rt.StreamByID(streamID)
	earliest := callStart + sim.FromNs(p.LaunchOverheadNs)

	first := true
	for _, n := range g.nodes {
		dur := p.GPU.KernelDuration(n.cost)
		var kStart, kEnd sim.Time
		if first {
			kStart, kEnd = s.timeline.Acquire(earliest, dur)
			start = kStart
			first = false
		} else {
			kStart, kEnd = s.timeline.Acquire(s.timeline.FreeAt(), dur)
		}
		kcorr := rt.builder.NextCorrelation()
		// Graph-node kernels correlate to the single graph launch via a
		// shared parent correlation recorded in the name; each node still
		// gets its own kernel event. We link them all to the one launch
		// by emitting per-node launches of zero CPU cost at the graph
		// launch call time, which preserves trace validity (one launch
		// per kernel correlation) while charging the host only once.
		rt.builder.Launch("cudaGraphNodeLaunch", rt.tid, callStart+callDur, 0, kcorr)
		rt.builder.Kernel(n.name, streamID, kStart, dur, kcorr, n.cost.FLOPs, n.cost.Bytes())
		s.kernels++
		end = kEnd
	}
	rt.launches++ // one host-visible launch for the whole graph
	s.lastEnd = end
	return start, end
}

// NullKernelResult reports the Table V microbenchmark outcome.
type NullKernelResult struct {
	Platform string
	// LaunchOverheadNs is mean t_l = tsb(kernel) − tsb(launch).
	LaunchOverheadNs float64
	// DurationNs is mean kernel execution duration.
	DurationNs float64
}

// MeasureNullKernel reproduces the paper's §V-A microbenchmark: launch n
// empty kernels on an idle stream, synchronizing after each so no queuing
// occurs, and measure mean launch overhead and duration from the trace.
func MeasureNullKernel(p *hw.Platform, n int) NullKernelResult {
	b := trace.NewBuilder()
	rt := NewRuntime(p, b, 1)
	for i := 0; i < n; i++ {
		rt.LaunchKernel("nullKernel", hw.KernelCost{}, DefaultStream)
		rt.Synchronize()
	}
	tr := b.Trace()

	var launchSum, durSum float64
	var kernels int
	launches := make(map[uint64]sim.Time)
	for _, e := range tr.Events {
		if e.Cat == trace.CatRuntime && e.Name == "cudaLaunchKernel" {
			launches[e.Correlation] = e.Ts
		}
	}
	for _, e := range tr.Kernels() {
		if ls, ok := launches[e.Correlation]; ok {
			launchSum += float64(e.Ts - ls)
			durSum += float64(e.Dur)
			kernels++
		}
	}
	if kernels == 0 {
		return NullKernelResult{Platform: p.Name}
	}
	return NullKernelResult{
		Platform:         p.Name,
		LaunchOverheadNs: launchSum / float64(kernels),
		DurationNs:       durSum / float64(kernels),
	}
}
