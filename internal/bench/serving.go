package bench

import (
	"fmt"

	"github.com/skipsim/skip/internal/engine"
	"github.com/skipsim/skip/internal/hw"
	"github.com/skipsim/skip/internal/models"
	"github.com/skipsim/skip/internal/serve"
	"github.com/skipsim/skip/internal/sim"
)

func init() {
	register(&Experiment{
		ID:    "ext6-serving",
		Title: "Serving-policy study: batching policy vs TTFT percentiles under load (Bert, GH200 vs Intel+H100)",
		Paper: "§II-A — large batches buy throughput at individual-latency cost; continuous batching approaches BS=1 latency",
		Run:   runExtServing,
	})
}

func runExtServing() (*Result, error) {
	res := &Result{ID: "ext6-serving", Title: "Extension 6"}
	model, err := models.ByName("bert-base-uncased")
	if err != nil {
		return nil, err
	}

	type policyCase struct {
		label string
		cfg   func(p *hw.Platform) serve.Config
	}
	cases := []policyCase{
		{"greedy (continuous-style)", func(p *hw.Platform) serve.Config {
			return serve.Config{Platform: p, Model: model, Seq: 512, Mode: engine.Eager,
				Policy: serve.GreedyBatch, MaxBatch: 32}
		}},
		{"static BS=16", func(p *hw.Platform) serve.Config {
			return serve.Config{Platform: p, Model: model, Seq: 512, Mode: engine.Eager,
				Policy: serve.StaticBatch, BatchSize: 16, MaxWait: 200 * sim.Millisecond}
		}},
		{"static BS=1", func(p *hw.Platform) serve.Config {
			return serve.Config{Platform: p, Model: model, Seq: 512, Mode: engine.Eager,
				Policy: serve.StaticBatch, BatchSize: 1}
		}},
	}

	// A moderate Poisson load: 120 requests at 150 req/s.
	requests, err := serve.PoissonArrivals(120, 150, 7)
	if err != nil {
		return nil, err
	}

	tbl := Table{
		Title:   "TTFT percentiles and throughput by batching policy (Bert, seq 512, 150 req/s Poisson)",
		Columns: []string{"Platform", "Policy", "mean batch", "P50 (ms)", "P95 (ms)", "throughput (req/s)"},
	}
	type key struct{ plat, policy string }
	stats := map[key]*serve.Stats{}
	for _, p := range []*hw.Platform{hw.IntelH100(), hw.GH200()} {
		for _, pc := range cases {
			s, err := serve.Simulate(pc.cfg(p), requests)
			if err != nil {
				return nil, err
			}
			stats[key{p.Name, pc.label}] = s
			tbl.Rows = append(tbl.Rows, []string{
				p.Name, pc.label, f1(s.MeanBatch),
				ms(s.P50TTFT.Milliseconds()), ms(s.P95TTFT.Milliseconds()),
				f1(s.Throughput),
			})
		}
	}
	res.Tables = append(res.Tables, tbl)

	ghGreedy := stats[key{hw.GH200Name, cases[0].label}]
	ghStatic1 := stats[key{hw.GH200Name, cases[2].label}]
	intelGreedy := stats[key{hw.IntelH100Name, cases[0].label}]

	res.Checks = append(res.Checks,
		checkBool("greedy beats static BS=1 P95 on GH200 under load",
			ghGreedy.P95TTFT < ghStatic1.P95TTFT,
			fmt.Sprintf("%v vs %v", ghGreedy.P95TTFT, ghStatic1.P95TTFT),
			"adaptive batching contains tail latency"),
		checkBool("GH200 greedy runs at larger mean batches than Intel",
			ghGreedy.MeanBatch > intelGreedy.MeanBatch,
			fmt.Sprintf("%.1f vs %.1f", ghGreedy.MeanBatch, intelGreedy.MeanBatch),
			"slower per-batch host pushes GH200 to bigger groups"),
		checkBool("greedy sustains the offered load on both platforms",
			ghGreedy.Throughput > 100 && intelGreedy.Throughput > 100,
			fmt.Sprintf("%.0f / %.0f req/s", intelGreedy.Throughput, ghGreedy.Throughput),
			"≈150 req/s offered"),
	)
	return res, nil
}
