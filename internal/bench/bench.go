// Package bench is the experiment harness: one registered experiment per
// table and figure of the paper's evaluation, each regenerating the
// artifact from the simulator + SKIP pipeline and rendering the same
// rows/series the paper reports, with paper-shape checks attached.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"
)

// Table is one renderable result table (or one figure's data series).
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Columns, "\t"))
	underline := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		underline[i] = strings.Repeat("-", len(c))
	}
	fmt.Fprintln(tw, strings.Join(underline, "\t"))
	for _, row := range t.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "  note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Check is one paper-shape assertion evaluated by an experiment.
type Check struct {
	Name string
	Got  string
	Want string
	Pass bool
}

// Result is an experiment's output.
type Result struct {
	ID     string
	Title  string
	Tables []Table
	Checks []Check
}

// Passed reports whether all checks passed.
func (r *Result) Passed() bool {
	for _, c := range r.Checks {
		if !c.Pass {
			return false
		}
	}
	return true
}

// Render writes the whole result as text.
func (r *Result) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "==== %s: %s ====\n\n", r.ID, r.Title); err != nil {
		return err
	}
	for i := range r.Tables {
		if err := r.Tables[i].Render(w); err != nil {
			return err
		}
	}
	for _, c := range r.Checks {
		status := "PASS"
		if !c.Pass {
			status = "FAIL"
		}
		if _, err := fmt.Fprintf(w, "  [%s] %s: got %s, paper %s\n", status, c.Name, c.Got, c.Want); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Experiment regenerates one paper artifact.
type Experiment struct {
	// ID is the artifact key: "table1", "fig6", …
	ID string
	// Title describes the artifact.
	Title string
	// Paper summarizes what the paper reports for it.
	Paper string
	// Run executes the experiment.
	Run func() (*Result, error)
}

var registry = map[string]*Experiment{}

func register(e *Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("bench: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// ByID returns the experiment with the given artifact key.
func ByID(id string) (*Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("bench: unknown experiment %q (have %s)",
			id, strings.Join(IDs(), ", "))
	}
	return e, nil
}

// IDs lists registered experiments in presentation order: tables first,
// then figures, then extensions, each numerically.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		ri, rj := idRank(ids[i]), idRank(ids[j])
		if ri != rj {
			return ri < rj
		}
		return ids[i] < ids[j]
	})
	return ids
}

func idRank(id string) int {
	switch {
	case strings.HasPrefix(id, "table"):
		return 0
	case strings.HasPrefix(id, "fig"):
		return 1
	default:
		return 2
	}
}

// All returns every experiment in presentation order.
func All() []*Experiment {
	var out []*Experiment
	for _, id := range IDs() {
		out = append(out, registry[id])
	}
	return out
}

// check builds a Check from a measured value and an accepted band.
func checkBand(name string, got, lo, hi float64, paperWant string) Check {
	return Check{
		Name: name,
		Got:  fmt.Sprintf("%.2f", got),
		Want: paperWant,
		Pass: got >= lo && got <= hi,
	}
}

func checkBool(name string, pass bool, got, paperWant string) Check {
	return Check{Name: name, Got: got, Want: paperWant, Pass: pass}
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func d(v int) string       { return fmt.Sprintf("%d", v) }
func d64(v int64) string   { return fmt.Sprintf("%d", v) }
func ms(v float64) string  { return fmt.Sprintf("%.3f", v) }
func sec(v float64) string { return fmt.Sprintf("%.4f", v) }
