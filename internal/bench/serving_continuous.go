package bench

import (
	"fmt"

	"github.com/skipsim/skip/internal/engine"
	"github.com/skipsim/skip/internal/hw"
	"github.com/skipsim/skip/internal/models"
	"github.com/skipsim/skip/internal/serve"
	"github.com/skipsim/skip/internal/sim"
)

func init() {
	register(&Experiment{
		ID:    "ext8-continuous",
		Title: "Continuous-batching study: iteration-level scheduling vs run-to-completion under chat load (Llama-3.2-1B, GH200 vs Intel+H100)",
		Paper: "§II-A — Orca/vLLM-style serving approaches BS=1 latency at high throughput; decode is memory-bound and KV capacity binds",
		Run:   runExtContinuous,
	})
}

// contStudyLoad is the paper-style chat load: Poisson arrivals far above
// what run-to-completion BS=1 can sustain, well within what
// iteration-level batching can.
func contStudyLoad() ([]serve.Request, error) {
	w := serve.Workload{
		Scenario:   serve.ScenarioChat,
		N:          80,
		RatePerSec: 20,
		Seed:       13,
		Prompt:     serve.LengthDist{Mean: 384, Sigma: 0.6, Min: 32, Max: 1024},
		Output:     serve.LengthDist{Mean: 96, Sigma: 0.5, Min: 8, Max: 256},
	}
	return w.Generate()
}

func contStudyConfig(p *hw.Platform, m *models.Config, policy serve.Policy, maxBatch int) serve.Config {
	return serve.Config{
		Platform: p, Model: m, Seq: 384, Mode: engine.Eager,
		Policy: policy, MaxBatch: maxBatch,
		LatencyBucket: 256,
		TTFTSLO:       500 * sim.Millisecond,
	}
}

func runExtContinuous() (*Result, error) {
	res := &Result{ID: "ext8-continuous", Title: "Extension 8"}
	model, err := models.ByName("llama-3.2-1B")
	if err != nil {
		return nil, err
	}
	requests, err := contStudyLoad()
	if err != nil {
		return nil, err
	}

	type policyCase struct {
		label    string
		policy   serve.Policy
		maxBatch int
	}
	cases := []policyCase{
		{"continuous ≤32", serve.ContinuousBatch, 32},
		{"chunked-prefill ≤32 (chunk 128)", serve.ChunkedPrefill, 32},
		{"static BS=1 (run-to-completion)", serve.ContinuousBatch, 1},
	}

	tbl := Table{
		Title: "TTFT/TPOT/E2E and KV occupancy by scheduling policy (Llama-3.2-1B chat load, 20 req/s Poisson)",
		Columns: []string{"Platform", "Policy", "mean batch", "P50 TTFT (ms)", "P95 TTFT (ms)",
			"P50 TPOT (ms)", "P95 E2E (ms)", "tok/s", "goodput (req/s)", "peak KV %", "preempt"},
	}
	type key struct{ plat, policy string }
	stats := map[key]*serve.Stats{}
	for _, p := range []*hw.Platform{hw.IntelH100(), hw.GH200()} {
		for _, pc := range cases {
			cfg := contStudyConfig(p, model, pc.policy, pc.maxBatch)
			if pc.policy == serve.ChunkedPrefill {
				cfg.PrefillChunk = 128
			}
			s, err := serve.Simulate(cfg, requests)
			if err != nil {
				return nil, err
			}
			stats[key{p.Name, pc.label}] = s
			tbl.Rows = append(tbl.Rows, []string{
				p.Name, pc.label, f1(s.MeanBatch),
				ms(s.P50TTFT.Milliseconds()), ms(s.P95TTFT.Milliseconds()),
				ms(s.P50TPOT.Milliseconds()), ms(s.P95E2E.Milliseconds()),
				f1(s.TokensPerSec), f1(s.Goodput),
				f1(s.PeakKVFrac * 100), fmt.Sprintf("%d", s.Preemptions),
			})
		}
	}
	tbl.Notes = append(tbl.Notes,
		"static BS=1 is the run-to-completion baseline: one request holds the engine for its whole generation",
		"goodput counts completed requests whose TTFT met the 500ms SLO",
		"chunked prefill pays a host tax here: eager serving is dispatch-bound (§V-B), so every extra chunk iteration re-pays the per-iteration launch cost — chunking only wins where prefill is GPU-bound")
	res.Tables = append(res.Tables, tbl)

	// Determinism: the whole pipeline (workload generation + calendar
	// simulation) must reproduce bit-identical stats for a fixed seed.
	requests2, err := contStudyLoad()
	if err != nil {
		return nil, err
	}
	gh := hw.GH200()
	again, err := serve.Simulate(contStudyConfig(gh, model, serve.ContinuousBatch, 32), requests2)
	if err != nil {
		return nil, err
	}

	ghCont := stats[key{hw.GH200Name, cases[0].label}]
	ghChunk := stats[key{hw.GH200Name, cases[1].label}]
	ghBS1 := stats[key{hw.GH200Name, cases[2].label}]
	intelCont := stats[key{hw.IntelH100Name, cases[0].label}]

	res.Checks = append(res.Checks,
		checkBool("continuous batching beats static BS=1 P95 TTFT on GH200",
			ghCont.P95TTFT < ghBS1.P95TTFT,
			fmt.Sprintf("%v vs %v", ghCont.P95TTFT, ghBS1.P95TTFT),
			"iteration-level admission removes run-to-completion queueing"),
		checkBool("continuous batching beats static BS=1 P95 TTFT on Intel+H100",
			intelCont.P95TTFT < stats[key{hw.IntelH100Name, cases[2].label}].P95TTFT,
			fmt.Sprintf("%v vs %v", intelCont.P95TTFT, stats[key{hw.IntelH100Name, cases[2].label}].P95TTFT),
			"the gap is architectural, not platform-specific"),
		checkBool("continuous sustains more token throughput than BS=1 on GH200",
			ghCont.TokensPerSec > ghBS1.TokensPerSec,
			fmt.Sprintf("%.0f vs %.0f tok/s", ghCont.TokensPerSec, ghBS1.TokensPerSec),
			"batched decode amortizes weight streaming"),
		checkBool("chunked prefill defers the first token in the host-bound eager regime",
			ghChunk.MeanTTFT > ghCont.MeanTTFT,
			fmt.Sprintf("mean TTFT %v vs %v", ghChunk.MeanTTFT, ghCont.MeanTTFT),
			"the first token waits for the last chunk, and each chunk re-pays dispatch cost"),
		checkBool("simulation is deterministic for a fixed seed",
			again.P95TTFT == ghCont.P95TTFT && again.Batches == ghCont.Batches &&
				again.TokensPerSec == ghCont.TokensPerSec,
			fmt.Sprintf("rerun P95 TTFT %v vs %v", again.P95TTFT, ghCont.P95TTFT),
			"bit-identical stats across reruns"),
		checkBool("KV occupancy is tracked and bounded",
			ghCont.PeakKVFrac > 0 && ghCont.PeakKVFrac <= 1,
			fmt.Sprintf("peak %.1f%%", ghCont.PeakKVFrac*100),
			"admission keeps the cache within budget"),
	)
	return res, nil
}
