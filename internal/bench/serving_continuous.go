package bench

import (
	"fmt"

	"github.com/skipsim/skip/internal/hw"
	"github.com/skipsim/skip/internal/serve"
	"github.com/skipsim/skip/internal/spec"
)

func init() {
	register(&Experiment{
		ID:    "ext8-continuous",
		Title: "Continuous-batching study: iteration-level scheduling vs run-to-completion under chat load (Llama-3.2-1B, GH200 vs Intel+H100)",
		Paper: "§II-A — Orca/vLLM-style serving approaches BS=1 latency at high throughput; decode is memory-bound and KV capacity binds",
		Run:   runExtContinuous,
	})
}

// contStudySpec is the paper-style chat study as one declarative spec:
// Poisson arrivals far above what run-to-completion BS=1 can sustain,
// well within what iteration-level batching can.
func contStudySpec(platform, policy string, maxBatch int, chunk int64) *spec.Spec {
	return &spec.Spec{
		Platform: platform,
		Model:    "llama-3.2-1B",
		Workload: &spec.WorkloadSpec{
			Scenario:   "chat",
			Requests:   80,
			RatePerSec: 20,
			Seed:       13,
			Prompt:     &spec.LengthDistSpec{Mean: 384, Sigma: 0.6, Min: 32, Max: 1024},
			Output:     &spec.LengthDistSpec{Mean: 96, Sigma: 0.5, Min: 8, Max: 256},
		},
		Serve: &spec.ServeSpec{
			Policy:        policy,
			MaxBatch:      maxBatch,
			Seq:           384,
			PrefillChunk:  chunk,
			LatencyBucket: 256,
			TTFTSLOMs:     500,
		},
	}
}

func runExtContinuous() (*Result, error) {
	res := &Result{ID: "ext8-continuous", Title: "Extension 8"}

	type policyCase struct {
		label    string
		policy   string
		maxBatch int
		chunk    int64
	}
	cases := []policyCase{
		{"continuous ≤32", "continuous", 32, 0},
		{"chunked-prefill ≤32 (chunk 128)", "chunked-prefill", 32, 128},
		{"static BS=1 (run-to-completion)", "continuous", 1, 0},
	}

	tbl := Table{
		Title: "TTFT/TPOT/E2E and KV occupancy by scheduling policy (Llama-3.2-1B chat load, 20 req/s Poisson)",
		Columns: []string{"Platform", "Policy", "mean batch", "P50 TTFT (ms)", "P95 TTFT (ms)",
			"P50 TPOT (ms)", "P95 E2E (ms)", "tok/s", "goodput (req/s)", "peak KV %", "preempt"},
	}
	type key struct{ plat, policy string }
	stats := map[key]*serve.Stats{}
	for _, plat := range []string{hw.IntelH100Name, hw.GH200Name} {
		for _, pc := range cases {
			rep, err := spec.Simulate(contStudySpec(plat, pc.policy, pc.maxBatch, pc.chunk))
			if err != nil {
				return nil, err
			}
			s := rep.Serve
			stats[key{plat, pc.label}] = s
			tbl.Rows = append(tbl.Rows, []string{
				plat, pc.label, f1(s.MeanBatch),
				ms(s.P50TTFT.Milliseconds()), ms(s.P95TTFT.Milliseconds()),
				ms(s.P50TPOT.Milliseconds()), ms(s.P95E2E.Milliseconds()),
				f1(s.TokensPerSec), f1(s.Goodput),
				f1(s.PeakKVFrac * 100), fmt.Sprintf("%d", s.Preemptions),
			})
		}
	}
	tbl.Notes = append(tbl.Notes,
		"static BS=1 is the run-to-completion baseline: one request holds the engine for its whole generation",
		"goodput counts completed requests whose TTFT met the 500ms SLO",
		"chunked prefill pays a host tax here: eager serving is dispatch-bound (§V-B), so every extra chunk iteration re-pays the per-iteration launch cost — chunking only wins where prefill is GPU-bound")
	res.Tables = append(res.Tables, tbl)

	// Determinism: the whole declarative pipeline (spec → workload
	// generation → calendar simulation) must reproduce bit-identical
	// stats for a fixed seed.
	rep, err := spec.Simulate(contStudySpec(hw.GH200Name, "continuous", 32, 0))
	if err != nil {
		return nil, err
	}
	again := rep.Serve

	ghCont := stats[key{hw.GH200Name, cases[0].label}]
	ghChunk := stats[key{hw.GH200Name, cases[1].label}]
	ghBS1 := stats[key{hw.GH200Name, cases[2].label}]
	intelCont := stats[key{hw.IntelH100Name, cases[0].label}]

	res.Checks = append(res.Checks,
		checkBool("continuous batching beats static BS=1 P95 TTFT on GH200",
			ghCont.P95TTFT < ghBS1.P95TTFT,
			fmt.Sprintf("%v vs %v", ghCont.P95TTFT, ghBS1.P95TTFT),
			"iteration-level admission removes run-to-completion queueing"),
		checkBool("continuous batching beats static BS=1 P95 TTFT on Intel+H100",
			intelCont.P95TTFT < stats[key{hw.IntelH100Name, cases[2].label}].P95TTFT,
			fmt.Sprintf("%v vs %v", intelCont.P95TTFT, stats[key{hw.IntelH100Name, cases[2].label}].P95TTFT),
			"the gap is architectural, not platform-specific"),
		checkBool("continuous sustains more token throughput than BS=1 on GH200",
			ghCont.TokensPerSec > ghBS1.TokensPerSec,
			fmt.Sprintf("%.0f vs %.0f tok/s", ghCont.TokensPerSec, ghBS1.TokensPerSec),
			"batched decode amortizes weight streaming"),
		checkBool("chunked prefill defers the first token in the host-bound eager regime",
			ghChunk.MeanTTFT > ghCont.MeanTTFT,
			fmt.Sprintf("mean TTFT %v vs %v", ghChunk.MeanTTFT, ghCont.MeanTTFT),
			"the first token waits for the last chunk, and each chunk re-pays dispatch cost"),
		checkBool("simulation is deterministic for a fixed seed",
			again.P95TTFT == ghCont.P95TTFT && again.Batches == ghCont.Batches &&
				again.TokensPerSec == ghCont.TokensPerSec,
			fmt.Sprintf("rerun P95 TTFT %v vs %v", again.P95TTFT, ghCont.P95TTFT),
			"bit-identical stats across reruns"),
		checkBool("KV occupancy is tracked and bounded",
			ghCont.PeakKVFrac > 0 && ghCont.PeakKVFrac <= 1,
			fmt.Sprintf("peak %.1f%%", ghCont.PeakKVFrac*100),
			"admission keeps the cache within budget"),
	)
	return res, nil
}
