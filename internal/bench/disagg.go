package bench

import (
	"fmt"
	"reflect"

	"github.com/skipsim/skip/internal/cluster"
	"github.com/skipsim/skip/internal/disagg"
	"github.com/skipsim/skip/internal/hw"
	"github.com/skipsim/skip/internal/spec"
)

func init() {
	register(&Experiment{
		ID:    "ext10-disagg",
		Title: "Prefill/decode disaggregation study: interconnect-priced KV handoff vs monolithic serving, with the bandwidth crossover",
		Paper: "§V — prefill is compute-bound, decode memory-bandwidth-bound; coupled architectures (NVLink-C2C) change the cost of moving KV state, which decides whether a DistServe-style phase split pays",
		Run:   runExtDisagg,
	})
}

// disaggWorkload builds the study's request stream section for one
// scenario. Rates are tuned so the 4-node fleet operates loaded but not
// collapsing.
func disaggWorkload(scenario string) *spec.WorkloadSpec {
	w := &spec.WorkloadSpec{Scenario: scenario, Requests: 96, RatePerSec: 32, Seed: 19}
	if scenario == "summarize" {
		// Long-context prefill dominates: offer fewer, heavier requests.
		w.Requests, w.RatePerSec = 48, 8
	}
	return w
}

// disaggStudySpec assembles one experiment document: groups + an
// optional disaggregation section over the shared serving base.
func disaggStudySpec(scenario string, groups []spec.FleetGroupSpec, d *spec.DisaggregationSpec) *spec.Spec {
	return &spec.Spec{
		Model:    "llama-3.2-1B",
		Workload: disaggWorkload(scenario),
		Serve: &spec.ServeSpec{
			Policy:        "continuous",
			MaxBatch:      32,
			Seq:           512,
			LatencyBucket: 256,
			TTFTSLOMs:     500,
		},
		Fleet: &spec.FleetSpec{Groups: groups, Disaggregation: d},
	}
}

// The three 4-node fleet shapes under comparison: the monolithic mixed
// fleet, and the two possible phase assignments of the same hardware.
func monolithicGroups() []spec.FleetGroupSpec {
	return []spec.FleetGroupSpec{
		{Platform: hw.IntelH100Name, Count: 2},
		{Platform: hw.GH200Name, Count: 2},
	}
}

func prefillDiscreteGroups() []spec.FleetGroupSpec {
	return []spec.FleetGroupSpec{
		{Platform: hw.IntelH100Name, Count: 2, Role: "prefill"},
		{Platform: hw.GH200Name, Count: 2, Role: "decode"},
	}
}

func prefillCoupledGroups() []spec.FleetGroupSpec {
	return []spec.FleetGroupSpec{
		{Platform: hw.GH200Name, Count: 2, Role: "prefill"},
		{Platform: hw.IntelH100Name, Count: 2, Role: "decode"},
	}
}

func runExtDisagg() (*Result, error) {
	res := &Result{ID: "ext10-disagg", Title: "Extension 10"}

	// Part 1: monolithic vs both disaggregated phase assignments, per
	// workload, at native interconnect pricing.
	tbl := Table{
		Title: "Monolithic vs disaggregated serving, 2×Intel+H100 + 2×GH200 (Llama-3.2-1B, native interconnects)",
		Columns: []string{"Workload", "Fleet", "P95 TTFT (ms)", "P50 TPOT (ms)", "P95 E2E (ms)",
			"goodput (req/s)", "transfers", "wire mean (ms)"},
	}
	monoStats := map[string]*cluster.Stats{}
	disaggStats := map[string]*disagg.Stats{} // scenario/config → stats
	for _, scenario := range []string{"chat", "agentic", "summarize"} {
		monoRep, err := spec.Simulate(disaggStudySpec(scenario, monolithicGroups(), nil))
		if err != nil {
			return nil, err
		}
		mc := monoRep.Cluster
		monoStats[scenario] = mc
		tbl.Rows = append(tbl.Rows, []string{
			scenario, "monolithic (least-queue)",
			ms(mc.P95TTFT.Milliseconds()), ms(mc.P50TPOT.Milliseconds()), ms(mc.P95E2E.Milliseconds()),
			f1(mc.Goodput), "0", "-",
		})
		for _, split := range []struct {
			label  string
			groups []spec.FleetGroupSpec
		}{
			{"prefill=Intel+H100", prefillDiscreteGroups()},
			{"prefill=GH200", prefillCoupledGroups()},
		} {
			label, groups := split.label, split.groups
			rep, err := spec.Simulate(disaggStudySpec(scenario, groups, &spec.DisaggregationSpec{}))
			if err != nil {
				return nil, err
			}
			st := rep.Disagg
			disaggStats[scenario+"/"+label] = st
			tbl.Rows = append(tbl.Rows, []string{
				scenario, label,
				ms(st.P95TTFT.Milliseconds()), ms(st.P50TPOT.Milliseconds()), ms(st.P95E2E.Milliseconds()),
				f1(st.Goodput), fmt.Sprintf("%d", st.Transfers), ms(st.MeanTransfer.Milliseconds()),
			})
		}
	}
	tbl.Notes = append(tbl.Notes,
		"prefill=X names the pool assignment: X runs prompt processing, the other platform decodes; KV caches cross pools over the interconnect-priced transfer model",
		"the winning assignment inverts the naive bandwidth intuition: decode belongs on the discrete Intel nodes, not the high-HBM GH200s, because eager-mode decode is dispatch-bound (§V-B — Grace's weak single-thread launches gate the many small decode kernels) while big-batch prefill GEMMs amortize GH200's launch cost",
		"the mixed-pair transfer pays one host hop (Intel side store-and-forwards over PCIe); goodput counts completions whose TTFT met the 500ms SLO")
	res.Tables = append(res.Tables, tbl)

	// Part 2: the same split on homogeneous fleets — what the handoff
	// costs when both endpoints are coupled (NVLink-C2C) vs both
	// discrete (PCIe, two host hops).
	homTbl := Table{
		Title:   "Homogeneous 4-node fleets, chat workload: what the KV handoff costs per platform",
		Columns: []string{"Fleet", "Config", "P95 TTFT (ms)", "P95 E2E (ms)", "goodput (req/s)", "wire mean (ms)", "stall mean (ms)"},
	}
	homo := map[string]*disagg.Stats{}
	for _, platform := range []string{hw.GH200Name, hw.IntelH100Name} {
		monoRep, err := spec.Simulate(disaggStudySpec("chat",
			[]spec.FleetGroupSpec{{Platform: platform, Count: 4}}, nil))
		if err != nil {
			return nil, err
		}
		mc := monoRep.Cluster
		homTbl.Rows = append(homTbl.Rows, []string{
			platform + ":4", "monolithic",
			ms(mc.P95TTFT.Milliseconds()), ms(mc.P95E2E.Milliseconds()), f1(mc.Goodput), "-", "-",
		})
		rep, err := spec.Simulate(disaggStudySpec("chat",
			[]spec.FleetGroupSpec{
				{Platform: platform, Count: 2, Role: "prefill"},
				{Platform: platform, Count: 2, Role: "decode"},
			}, &spec.DisaggregationSpec{}))
		if err != nil {
			return nil, err
		}
		st := rep.Disagg
		homo[platform] = st
		homTbl.Rows = append(homTbl.Rows, []string{
			platform + ":4", "2/prefill + 2/decode",
			ms(st.P95TTFT.Milliseconds()), ms(st.P95E2E.Milliseconds()), f1(st.Goodput),
			ms(st.MeanTransfer.Milliseconds()), ms(st.MeanTransferStall.Milliseconds()),
		})
	}
	homTbl.Notes = append(homTbl.Notes,
		"GH200↔GH200 handoffs ride NVLink-C2C at 450 GB/s with no host hop; Intel+H100 pairs are gated by PCIe Gen5 and pay the store-and-forward multiplier at both endpoints",
		"this isolates the paper's coupling asymmetry: identical schedulers and workload, only the interconnect pricing differs between rows")
	res.Tables = append(res.Tables, homTbl)

	// Part 3: sweep the transfer-link bandwidth to locate the crossover
	// where disaggregation starts beating monolithic serving on P95 E2E
	// (chat, the winning prefill=GH200 assignment): a starved link
	// serializes every handoff and erases the phase-split win; the
	// question is how much interconnect buys it back. The loop is the
	// spec's sweep section: one document, one Simulate call, the points
	// executed concurrently and returned as an ordered series.
	swTbl := Table{
		Title:   "KV-transfer bandwidth sweep, chat workload, prefill=GH200 + decode=Intel+H100 (host hops disabled to isolate the link)",
		Columns: []string{"link GB/s", "P95 TTFT (ms)", "P50 TPOT (ms)", "P95 E2E (ms)", "goodput (req/s)", "wire mean (ms)", "stall mean (ms)"},
	}
	monoChat := monoStats["chat"]
	sweep := []float64{0.01, 0.05, 0.25, 1, 64, 450}
	swSpec := disaggStudySpec("chat", prefillCoupledGroups(), &spec.DisaggregationSpec{HostHopMultiplier: 1})
	values := make([]any, len(sweep))
	for i, bw := range sweep {
		values[i] = bw
	}
	swSpec.Sweep = &spec.SweepSpec{Field: "fleet.disaggregation.bandwidth_gbps", Values: values}
	swRep, err := spec.Simulate(swSpec)
	if err != nil {
		return nil, err
	}
	var crossover float64 = -1
	var sweepStats []*disagg.Stats
	for i, pt := range swRep.Sweep {
		bw := sweep[i]
		st := pt.Report.Disagg
		sweepStats = append(sweepStats, st)
		if crossover < 0 && st.P95E2E <= monoChat.P95E2E {
			crossover = bw
		}
		swTbl.Rows = append(swTbl.Rows, []string{
			fmt.Sprintf("%g", bw),
			ms(st.P95TTFT.Milliseconds()), ms(st.P50TPOT.Milliseconds()), ms(st.P95E2E.Milliseconds()),
			f1(st.Goodput), ms(st.MeanTransfer.Milliseconds()), ms(st.MeanTransferStall.Milliseconds()),
		})
	}
	swTbl.Rows = append(swTbl.Rows, []string{
		"monolithic", ms(monoChat.P95TTFT.Milliseconds()), ms(monoChat.P50TPOT.Milliseconds()),
		ms(monoChat.P95E2E.Milliseconds()), f1(monoChat.Goodput), "-", "-",
	})
	if crossover >= 0 {
		swTbl.Notes = append(swTbl.Notes, fmt.Sprintf(
			"crossover: disaggregation beats monolithic P95 E2E from %g GB/s of link bandwidth upward — below it serialized KV handoffs erase the phase-split win; PCIe Gen5 (64 GB/s) and NVLink-C2C (450 GB/s) both sit comfortably past it for this workload's ~10 MB caches", crossover))
	} else {
		swTbl.Notes = append(swTbl.Notes,
			"no crossover within the sweep: the handoff never recovers the monolithic P95 E2E at these rates")
	}
	res.Tables = append(res.Tables, swTbl)

	// Determinism: the acceptance criterion — same spec, byte-identical
	// disaggregated stats.
	againRep, err := spec.Simulate(disaggStudySpec("chat", prefillDiscreteGroups(), &spec.DisaggregationSpec{}))
	if err != nil {
		return nil, err
	}

	chatSplit := disaggStats["chat/prefill=Intel+H100"]
	ledgerOK := true
	for _, st := range disaggStats {
		if st.Offered != st.Rejected+st.Unroutable+st.Routed ||
			st.HandedOff != st.TransferDrops+st.Resumed {
			ledgerOK = false
		}
	}
	slowest, fastest := sweepStats[0], sweepStats[len(sweepStats)-1]

	res.Checks = append(res.Checks,
		checkBool("same spec reproduces byte-identical disaggregated stats",
			reflect.DeepEqual(againRep.Disagg, chatSplit),
			fmt.Sprintf("rerun P95 E2E %v vs %v", againRep.Disagg.P95E2E, chatSplit.P95E2E),
			"shared-clock simulation with transfer links is deterministic"),
		checkBool("every prefill completion matches one decode completion or a reported drop",
			ledgerOK,
			fmt.Sprintf("chat split: %d handed off = %d resumed + %d dropped",
				chatSplit.HandedOff, chatSplit.Resumed, chatSplit.TransferDrops),
			"the cross-pool ledger reconciles exactly for every config"),
		checkBool("coupled NVLink-C2C handoff is cheaper than the discrete PCIe handoff",
			homo[hw.GH200Name].MeanTransfer < homo[hw.IntelH100Name].MeanTransfer,
			fmt.Sprintf("GH200 wire mean %v vs Intel+H100 %v",
				homo[hw.GH200Name].MeanTransfer, homo[hw.IntelH100Name].MeanTransfer),
			"the interconnect model prices the paper's coupling asymmetry into the handoff"),
		checkBool("starving the transfer link degrades E2E monotonically toward the fat-link result",
			slowest.P95E2E > fastest.P95E2E && slowest.MeanTransferStall > fastest.MeanTransferStall,
			fmt.Sprintf("P95 E2E %v at %g GB/s vs %v at %g GB/s",
				slowest.P95E2E, sweep[0], fastest.P95E2E, sweep[len(sweep)-1]),
			"the crossover sweep spans a regime where the link visibly gates serving"),
		checkBool("the monolithic-vs-disaggregated crossover sits inside the sweep",
			crossover > sweep[0] && sweepStats[0].P95E2E > monoChat.P95E2E,
			fmt.Sprintf("disaggregation loses at %g GB/s (P95 E2E %v vs monolithic %v) and wins from %g GB/s",
				sweep[0], sweepStats[0].P95E2E, monoChat.P95E2E, crossover),
			"the phase split pays exactly when the interconnect can carry the KV handoff"),
		checkBool("disaggregation isolates prefill from decode interference on TTFT",
			chatSplit.P95TTFT < monoChat.P95TTFT,
			fmt.Sprintf("split P95 TTFT %v vs monolithic %v", chatSplit.P95TTFT, monoChat.P95TTFT),
			"a dedicated prefill pool answers first tokens without queueing behind running decodes"),
	)
	return res, nil
}
