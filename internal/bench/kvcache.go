package bench

import (
	"fmt"
	"reflect"

	"github.com/skipsim/skip/internal/hw"
	"github.com/skipsim/skip/internal/serve"
	"github.com/skipsim/skip/internal/spec"
)

func init() {
	register(&Experiment{
		ID:    "ext12-kvcache",
		Title: "Prefix-aware KV cache study: agentic reuse credit on/off per platform, affinity routing, handoff shrinkage, and tiered host-memory spill",
		Paper: "§V — agentic trajectories re-send their growing context every turn; a block-level prefix cache converts that redundancy into prefill reuse credit, and the cost of restoring spilled blocks from host memory is exactly the paper's coupling asymmetry (near-free over NVLink-C2C, PCIe-priced on discrete parts)",
		Run:   runExtKVCache,
	})
}

// agenticStream is the study's workload: multi-turn tool-calling
// sessions whose prompts grow every turn — the maximally cache-friendly
// stream, because each turn re-sends the previous turn's context as its
// prefix.
func agenticStream(n int, rate float64) *spec.WorkloadSpec {
	return &spec.WorkloadSpec{Scenario: "agentic", Requests: n, RatePerSec: rate, Seed: 7}
}

// kvStudySpec assembles one experiment document over the shared serving
// base.
func kvStudySpec(w *spec.WorkloadSpec, fleet *spec.FleetSpec) *spec.Spec {
	return &spec.Spec{
		Model:    "llama-3.2-1B",
		Workload: w,
		Serve: &spec.ServeSpec{
			Policy:        "continuous",
			MaxBatch:      32,
			Seq:           512,
			LatencyBucket: 256,
			TTFTSLOMs:     500,
		},
		Fleet: fleet,
	}
}

// The cache configurations under comparison: an ample device tier
// (every reusable prefix stays resident) and a deliberately starved
// device tier backed by host spill (blocks churn through eviction,
// spill, and interconnect-priced restore).
func deviceCache() *spec.KVCacheSpec {
	return &spec.KVCacheSpec{BlockTokens: 32, DeviceBlocks: 4096}
}

func spillCache() *spec.KVCacheSpec {
	return &spec.KVCacheSpec{BlockTokens: 32, DeviceBlocks: 128, HostSpillBlocks: 4096}
}

// kvSpillSpec is the Part-1 regime: deep 8-turn trajectories on a
// saturated small-batch instance. Queueing delay is what exposes a live
// session's unpinned blocks to eviction — with think times of 50–250ms
// and no queue, LRU only ever evicts finished sessions' blocks and the
// host tier sees spills but no restores.
func kvSpillSpec(platform string, kv *spec.KVCacheSpec) *spec.Spec {
	return &spec.Spec{
		Model:    "llama-3.2-1B",
		Workload: &spec.WorkloadSpec{Scenario: "agentic", Requests: 64, RatePerSec: 8, Seed: 7, Turns: 8},
		Serve: &spec.ServeSpec{
			Policy:        "continuous",
			MaxBatch:      4,
			Seq:           512,
			LatencyBucket: 256,
			TTFTSLOMs:     500,
		},
		Fleet: &spec.FleetSpec{
			Groups:  []spec.FleetGroupSpec{{Platform: platform, Count: 1}},
			KVCache: kv,
		},
	}
}

func runExtKVCache() (*Result, error) {
	res := &Result{ID: "ext12-kvcache", Title: "Extension 12"}

	// Part 1: one instance per platform, deep agentic trajectories at
	// saturation, cache off vs ample device tier vs starved-device +
	// host-spill tier. The spill rows isolate the paper's coupling
	// asymmetry: restores cross the CPU↔GPU interconnect, NVLink-C2C
	// priced on GH200 and PCIe-priced on Intel+H100.
	tbl := Table{
		Title: "Agentic serving with a prefix cache, single saturated instance per platform (Llama-3.2-1B, 8-turn trajectories, 64 requests @ 8 req/s, batch 4)",
		Columns: []string{"Platform", "Cache", "mean TTFT (ms)", "P95 TTFT (ms)",
			"hit rate", "tokens reused", "restore stall (ms)", "goodput (req/s)"},
	}
	type cacheRow struct {
		label string
		kv    *spec.KVCacheSpec
	}
	configs := []cacheRow{
		{"off", nil},
		{"4096 device blocks", deviceCache()},
		{"128 device + 4096 host-spill", spillCache()},
	}
	single := map[string]*serve.KVCacheStats{} // platform/label → ledger
	ttfts := map[string]float64{}              // platform/label → mean TTFT ms
	for _, platform := range []string{hw.GH200Name, hw.IntelH100Name} {
		for _, cfg := range configs {
			rep, err := spec.Simulate(kvSpillSpec(platform, cfg.kv))
			if err != nil {
				return nil, err
			}
			st := rep.Cluster
			key := platform + "/" + cfg.label
			ttfts[key] = st.MeanTTFT.Milliseconds()
			hit, reused, stall := "-", "-", "-"
			if k := st.KVCache; k != nil {
				single[key] = k
				hit = fmt.Sprintf("%.0f%%", k.HitRate*100)
				reused = fmt.Sprintf("%d", k.ReusedTokens)
				stall = ms(k.RestoreStall.Milliseconds())
			}
			tbl.Rows = append(tbl.Rows, []string{
				platform, cfg.label,
				ms(st.MeanTTFT.Milliseconds()), ms(st.P95TTFT.Milliseconds()),
				hit, reused, stall, f1(st.Goodput),
			})
		}
	}
	tbl.Notes = append(tbl.Notes,
		"hit rate counts device hits plus host restores over all block lookups; tokens reused is the prefill work the credit skipped",
		"restore stall prices host→device block movement through the platform interconnect — NVLink-C2C (450 GB/s) on GH200 vs PCIe Gen5 (64 GB/s) on Intel+H100, the same coupling asymmetry the paper measures for CPU↔GPU tensor movement",
		"batch 4 puts both platforms in the paper's small-batch CPU/launch-bound regime, where Intel+H100's faster host cores win outright; the cache comparison is within-platform")
	res.Tables = append(res.Tables, tbl)

	// Part 2: affinity routing on a 4×GH200 fleet — the cache makes
	// placement policy matter, because only the instance that served a
	// session's earlier turns holds its blocks.
	affTbl := Table{
		Title:   "Routing policy vs cache locality, 4×GH200 fleet, agentic workload (ample device tier)",
		Columns: []string{"Router", "mean TTFT (ms)", "P95 TTFT (ms)", "hit rate", "tokens reused", "imbalance"},
	}
	affCache := map[string]*serve.KVCacheStats{}
	for _, router := range []string{"least-queue", "session-affinity", "prefix-affinity"} {
		sp := kvStudySpec(agenticStream(96, 24), &spec.FleetSpec{
			Groups:  []spec.FleetGroupSpec{{Platform: hw.GH200Name, Count: 4}},
			Router:  router,
			KVCache: deviceCache(),
		})
		rep, err := spec.Simulate(sp)
		if err != nil {
			return nil, err
		}
		st := rep.Cluster
		affCache[router] = st.KVCache
		affTbl.Rows = append(affTbl.Rows, []string{
			router,
			ms(st.MeanTTFT.Milliseconds()), ms(st.P95TTFT.Milliseconds()),
			fmt.Sprintf("%.0f%%", st.KVCache.HitRate*100),
			fmt.Sprintf("%d", st.KVCache.ReusedTokens),
			fmt.Sprintf("%.3f", st.LoadImbalance),
		})
	}
	affTbl.Notes = append(affTbl.Notes,
		"least-queue scatters a session's turns across the fleet, so each instance re-prefills the context the others already cached",
		"prefix-affinity follows the cache state itself: evicted prefixes release the attraction, so it degrades gracefully to least-queue when nothing is cached")
	res.Tables = append(res.Tables, affTbl)

	// Part 3: the disaggregation handoff with and without the cache —
	// resumes populate the decode pool's caches, so repeat-turn handoffs
	// ship only the blocks the destination lacks, and the
	// monolithic-vs-disagg comparison moves.
	mixedGroups := []spec.FleetGroupSpec{
		{Platform: hw.GH200Name, Count: 2},
		{Platform: hw.IntelH100Name, Count: 2},
	}
	splitGroups := []spec.FleetGroupSpec{
		{Platform: hw.GH200Name, Count: 2, Role: "prefill"},
		{Platform: hw.IntelH100Name, Count: 2, Role: "decode"},
	}
	dsTbl := Table{
		Title: "Monolithic vs disaggregated agentic serving, cache off/on (prefill=GH200, decode=Intel+H100, session-affinity decode placement)",
		Columns: []string{"Fleet", "Cache", "P95 TTFT (ms)", "P95 E2E (ms)",
			"goodput (req/s)", "KV moved (GB)", "hit rate"},
	}
	monoTTFT := map[bool]float64{}  // cached? → P95 TTFT ms
	disagTTFT := map[bool]float64{} // cached? → P95 TTFT ms
	bytesMoved := map[bool]float64{}
	var cachedDisagg *spec.Spec
	for _, cached := range []bool{false, true} {
		var kv *spec.KVCacheSpec
		label := "off"
		if cached {
			kv, label = deviceCache(), "on"
		}
		monoRep, err := spec.Simulate(kvStudySpec(agenticStream(96, 24), &spec.FleetSpec{
			Groups: mixedGroups, KVCache: kv,
		}))
		if err != nil {
			return nil, err
		}
		mc := monoRep.Cluster
		monoTTFT[cached] = mc.P95TTFT.Milliseconds()
		hit := "-"
		if mc.KVCache != nil {
			hit = fmt.Sprintf("%.0f%%", mc.KVCache.HitRate*100)
		}
		dsTbl.Rows = append(dsTbl.Rows, []string{
			"monolithic", label,
			ms(mc.P95TTFT.Milliseconds()), ms(mc.P95E2E.Milliseconds()),
			f1(mc.Goodput), "-", hit,
		})
		dsp := kvStudySpec(agenticStream(96, 24), &spec.FleetSpec{
			Groups:         splitGroups,
			KVCache:        kv,
			Disaggregation: &spec.DisaggregationSpec{DecodeRouter: "session-affinity"},
		})
		if cached {
			cachedDisagg = dsp
		}
		rep, err := spec.Simulate(dsp)
		if err != nil {
			return nil, err
		}
		st := rep.Disagg
		disagTTFT[cached] = st.P95TTFT.Milliseconds()
		bytesMoved[cached] = st.KVBytesMoved
		hit = "-"
		if st.KVCache != nil {
			hit = fmt.Sprintf("%.0f%%", st.KVCache.HitRate*100)
		}
		dsTbl.Rows = append(dsTbl.Rows, []string{
			"prefill=GH200 / decode=Intel+H100", label,
			ms(st.P95TTFT.Milliseconds()), ms(st.P95E2E.Milliseconds()),
			f1(st.Goodput), f2(st.KVBytesMoved / 1e9), hit,
		})
	}
	dsTbl.Notes = append(dsTbl.Notes,
		"with the cache on, a resume populates the decode instance's cache, so a session's later handoffs transfer only the blocks the destination lacks — KV moved shrinks without any transfer-model change",
		"session-affinity decode placement keeps repeat turns landing where their blocks already live; the monolithic rows gain reuse credit at prefill instead")
	res.Tables = append(res.Tables, dsTbl)

	// Determinism: same cached disaggregated spec, byte-identical stats.
	onceRep, err := spec.Simulate(cachedDisagg)
	if err != nil {
		return nil, err
	}
	againRep, err := spec.Simulate(cachedDisagg)
	if err != nil {
		return nil, err
	}

	// The cache ledger conservation law, over every configuration that
	// carried one.
	ledgerOK := true
	for _, k := range single {
		if k.Lookups != k.Hits+k.Restored+k.Misses+k.Unallocated || k.Evictions > k.Misses+k.Restored {
			ledgerOK = false
		}
	}

	gh := single[hw.GH200Name+"/128 device + 4096 host-spill"]
	intel := single[hw.IntelH100Name+"/128 device + 4096 host-spill"]
	gapOff := monoTTFT[false] - disagTTFT[false]
	gapOn := monoTTFT[true] - disagTTFT[true]

	res.Checks = append(res.Checks,
		checkBool("prefix reuse credit shortens agentic TTFT on both platforms",
			ttfts[hw.GH200Name+"/4096 device blocks"] < ttfts[hw.GH200Name+"/off"] &&
				ttfts[hw.IntelH100Name+"/4096 device blocks"] < ttfts[hw.IntelH100Name+"/off"],
			fmt.Sprintf("GH200 mean TTFT %.3f→%.3f ms, Intel+H100 %.3f→%.3f ms",
				ttfts[hw.GH200Name+"/off"], ttfts[hw.GH200Name+"/4096 device blocks"],
				ttfts[hw.IntelH100Name+"/off"], ttfts[hw.IntelH100Name+"/4096 device blocks"]),
			"cached prefix blocks skip prompt processing, so repeat turns prefill only their growth"),
		checkBool("the cache ledger reconciles in every configuration",
			ledgerOK,
			fmt.Sprintf("GH200 spill tier: %d lookups = %d hits + %d restored + %d misses + %d unallocated",
				gh.Lookups, gh.Hits, gh.Restored, gh.Misses, gh.Unallocated),
			"hits + restores + misses + unallocated account for every block lookup exactly"),
		checkBool("the starved device tier actually spills and restores through host memory",
			gh.Restored > 0 && intel.Restored > 0 && gh.Spills > 0 && intel.Spills > 0,
			fmt.Sprintf("GH200 %d spills / %d restores, Intel+H100 %d spills / %d restores",
				gh.Spills, gh.Restored, intel.Spills, intel.Restored),
			"the spill configuration exercises the full evict→spill→restore path on both platforms"),
		checkBool("tiered host spill is near-free on the coupled platform and priced on the discrete one",
			gh.RestoreStall > 0 && intel.RestoreStall > 0 && gh.RestoreStall < intel.RestoreStall,
			fmt.Sprintf("restore stall GH200 %v vs Intel+H100 %v over %d and %d restored blocks",
				gh.RestoreStall, intel.RestoreStall, gh.Restored, intel.Restored),
			"block restores cross the CPU↔GPU interconnect: NVLink-C2C moves them ~7× cheaper than PCIe Gen5"),
		checkBool("prefix-affinity routing beats least-queue on cache locality",
			affCache["prefix-affinity"].HitRate > affCache["least-queue"].HitRate &&
				affCache["prefix-affinity"].ReusedTokens > affCache["least-queue"].ReusedTokens,
			fmt.Sprintf("hit rate %.0f%% vs %.0f%%, tokens reused %d vs %d",
				affCache["prefix-affinity"].HitRate*100, affCache["least-queue"].HitRate*100,
				affCache["prefix-affinity"].ReusedTokens, affCache["least-queue"].ReusedTokens),
			"scoring cached-block overlap at pick time keeps sessions where their blocks live"),
		checkBool("cached handoffs ship fewer KV bytes than uncached ones",
			bytesMoved[true] < bytesMoved[false] && bytesMoved[true] > 0,
			fmt.Sprintf("%.2f GB moved with the cache vs %.2f GB without",
				bytesMoved[true]/1e9, bytesMoved[false]/1e9),
			"disaggregated handoffs transfer only the blocks the destination's cache lacks"),
		checkBool("the cache swings the monolithic-vs-disaggregated comparison",
			gapOn != gapOff,
			fmt.Sprintf("monolithic−disagg P95 TTFT gap %.3f ms cache-off vs %.3f ms cache-on",
				gapOff, gapOn),
			"reuse credit lands at different points of the two topologies (local prefill vs shipped handoff), so the crossover moves"),
		checkBool("same cached spec reproduces byte-identical disaggregated stats",
			reflect.DeepEqual(onceRep.Disagg, againRep.Disagg),
			fmt.Sprintf("rerun P95 E2E %v vs %v", againRep.Disagg.P95E2E, onceRep.Disagg.P95E2E),
			"cache state lives on the shared virtual clock; no wall-clock or map-order leaks"),
	)
	return res, nil
}
