package bench

import (
	"fmt"

	"github.com/skipsim/skip/internal/core"
	"github.com/skipsim/skip/internal/engine"
	"github.com/skipsim/skip/internal/hw"
	"github.com/skipsim/skip/internal/models"
)

func init() {
	register(&Experiment{
		ID:    "fig6",
		Title: "TKLQT vs batch size for encoder models, with CPU→GPU-bound transition points",
		Paper: "transition ≈ BS 8 on LC systems, ≈ BS 32 on GH200 (4x more CPU-bound)",
		Run:   runFig6,
	})
	register(&Experiment{
		ID:    "fig10",
		Title: "Encoder prefill TTFT, GPU idle, CPU idle vs batch size (3 platforms)",
		Paper: "GH200 worst at BS=1 (2.8x/1.9x), best at BS=64 (1.6x/2.4x); CP ≈ 16",
		Run:   runFig10,
	})
	register(&Experiment{
		ID:    "fig11",
		Title: "Decoder prefill TTFT, GPU idle, CPU idle vs batch size (3 platforms)",
		Paper: "GPT2 CP ≈ 4; Llama-3.2-1B similar at BS=1, GH200 1.9x/2.7x at BS=16",
		Run:   runFig11,
	})
}

// charPoint is one (platform, batch) measurement.
type charPoint struct {
	res     *engine.Result
	metrics *core.Metrics
}

// sweepChar runs the characterization sweep for one model on the three
// evaluation platforms.
func sweepChar(model *models.Config, batches []int64) (map[string][]charPoint, error) {
	out := make(map[string][]charPoint)
	for _, p := range hw.EvaluationPlatforms() {
		for _, bs := range batches {
			r, err := engine.Run(engine.Request{Platform: p, Model: model, Batch: bs, Seq: 512, Mode: engine.Eager})
			if err != nil {
				return nil, err
			}
			m, _, err := core.Analyze(r.Trace)
			if err != nil {
				return nil, err
			}
			out[p.Name] = append(out[p.Name], charPoint{res: r, metrics: m})
		}
	}
	return out, nil
}

func toSeries(points []charPoint, batches []int64) []core.SeriesPoint {
	series := make([]core.SeriesPoint, len(points))
	for i, pt := range points {
		series[i] = core.SeriesPoint{
			Batch: batches[i], TKLQT: pt.metrics.TKLQT, TTFT: pt.res.TTFT, Metrics: pt.metrics,
		}
	}
	return series
}

var (
	encoderBatches = []int64{1, 2, 4, 8, 16, 32, 64}
	decoderBatches = []int64{1, 2, 4, 8, 16}
	platformOrder  = []string{hw.AMDA100Name, hw.IntelH100Name, hw.GH200Name}
)

func runFig6() (*Result, error) {
	res := &Result{ID: "fig6", Title: "Fig. 6"}
	transitions := make(map[string]map[string]int64) // model → platform → batch
	for _, name := range []string{"bert-base-uncased", "xlm-roberta-base"} {
		model, err := models.ByName(name)
		if err != nil {
			return nil, err
		}
		points, err := sweepChar(model, encoderBatches)
		if err != nil {
			return nil, err
		}
		tbl := Table{
			Title:   fmt.Sprintf("TKLQT (ms) vs batch size — %s (seq 512, eager)", name),
			Columns: append([]string{"Platform"}, batchCols(encoderBatches, "transition★")...),
		}
		transitions[name] = make(map[string]int64)
		for _, pname := range platformOrder {
			series := toSeries(points[pname], encoderBatches)
			tb, err := core.TransitionBatch(series)
			if err != nil {
				return nil, err
			}
			transitions[name][pname] = tb
			row := []string{pname}
			for _, pt := range series {
				row = append(row, ms(pt.TKLQT.Milliseconds()))
			}
			row = append(row, fmt.Sprintf("BS=%d", tb))
			tbl.Rows = append(tbl.Rows, row)
		}
		res.Tables = append(res.Tables, tbl)
	}

	for _, name := range []string{"bert-base-uncased", "xlm-roberta-base"} {
		tr := transitions[name]
		res.Checks = append(res.Checks,
			checkBand(name+" Intel transition", float64(tr[hw.IntelH100Name]), 4, 16, "≈8"),
			checkBand(name+" AMD transition", float64(tr[hw.AMDA100Name]), 4, 16, "≈8"),
			checkBand(name+" GH200 transition", float64(tr[hw.GH200Name]), 16, 64, "≈32"),
			checkBool(name+" GH200 ~4x more CPU-bound",
				tr[hw.GH200Name] >= 2*tr[hw.IntelH100Name],
				fmt.Sprintf("%dx", tr[hw.GH200Name]/max64(tr[hw.IntelH100Name], 1)), "4x"),
		)
	}
	return res, nil
}

func runFig10() (*Result, error) {
	return runCharFig("fig10", "Fig. 10",
		[]string{"bert-base-uncased", "xlm-roberta-base"}, encoderBatches, checkFig10)
}

func runFig11() (*Result, error) {
	return runCharFig("fig11", "Fig. 11",
		[]string{"gpt2", "llama-3.2-1B"}, decoderBatches, checkFig11)
}

func runCharFig(id, title string, modelNames []string, batches []int64,
	mkChecks func(map[string]map[string][]charPoint) []Check) (*Result, error) {
	res := &Result{ID: id, Title: title}
	all := make(map[string]map[string][]charPoint)
	for _, name := range modelNames {
		model, err := models.ByName(name)
		if err != nil {
			return nil, err
		}
		points, err := sweepChar(model, batches)
		if err != nil {
			return nil, err
		}
		all[name] = points

		for _, metric := range []struct {
			title string
			get   func(charPoint) float64
		}{
			{"Inference time (ms)", func(p charPoint) float64 { return p.res.TTFT.Milliseconds() }},
			{"GPU idle time (ms)", func(p charPoint) float64 { return p.res.GPUIdle.Milliseconds() }},
			{"CPU idle time (ms)", func(p charPoint) float64 { return p.res.CPUIdle.Milliseconds() }},
		} {
			tbl := Table{
				Title:   fmt.Sprintf("%s vs batch size — %s (seq 512, eager)", metric.title, name),
				Columns: append([]string{"Platform"}, batchCols(batches)...),
			}
			for _, pname := range platformOrder {
				row := []string{pname}
				for _, pt := range points[pname] {
					row = append(row, ms(metric.get(pt)))
				}
				tbl.Rows = append(tbl.Rows, row)
			}
			res.Tables = append(res.Tables, tbl)
		}
	}
	res.Checks = mkChecks(all)
	return res, nil
}

func checkFig10(all map[string]map[string][]charPoint) []Check {
	var checks []Check
	for name, points := range all {
		intel, amd, gh := points[hw.IntelH100Name], points[hw.AMDA100Name], points[hw.GH200Name]
		last := len(encoderBatches) - 1
		bs1Intel := float64(gh[0].res.TTFT) / float64(intel[0].res.TTFT)
		bs1AMD := float64(gh[0].res.TTFT) / float64(amd[0].res.TTFT)
		spIntel := float64(intel[last].res.TTFT) / float64(gh[last].res.TTFT)
		spAMD := float64(amd[last].res.TTFT) / float64(gh[last].res.TTFT)
		checks = append(checks,
			checkBand(name+" BS=1 GH200/Intel latency ratio", bs1Intel, 2.1, 3.5, "2.8 (Bert)"),
			checkBand(name+" BS=1 GH200/AMD latency ratio", bs1AMD, 1.4, 2.4, "1.9 (Bert)"),
			checkBand(name+" BS=64 GH200 speedup over Intel", spIntel, 1.3, 2.0, "1.6 (Bert)"),
			checkBand(name+" BS=64 GH200 speedup over AMD", spAMD, 1.8, 2.9, "2.4 (Bert)"),
		)
		// Crossover: GH200 overtakes Intel beyond BS=16.
		ghS := toSeries(gh, encoderBatches)
		intelS := toSeries(intel, encoderBatches)
		cp, err := core.Crossover(ghS, intelS)
		checks = append(checks, checkBool(name+" crossover (GH200 vs Intel)",
			err == nil && cp >= 16 && cp <= 32, fmt.Sprintf("BS=%d", cp), "BS>16"))
	}
	return checks
}

func checkFig11(all map[string]map[string][]charPoint) []Check {
	var checks []Check
	gpt2 := all["gpt2"]
	llama := all["llama-3.2-1B"]
	last := len(decoderBatches) - 1

	gpt2CP, _ := core.Crossover(toSeries(gpt2[hw.GH200Name], decoderBatches),
		toSeries(gpt2[hw.IntelH100Name], decoderBatches))
	llamaCP, _ := core.Crossover(toSeries(llama[hw.GH200Name], decoderBatches),
		toSeries(llama[hw.IntelH100Name], decoderBatches))

	llamaBS1 := float64(llama[hw.GH200Name][0].res.TTFT) / float64(llama[hw.IntelH100Name][0].res.TTFT)
	spIntel := float64(llama[hw.IntelH100Name][last].res.TTFT) / float64(llama[hw.GH200Name][last].res.TTFT)
	spAMD := float64(llama[hw.AMDA100Name][last].res.TTFT) / float64(llama[hw.GH200Name][last].res.TTFT)

	checks = append(checks,
		checkBool("gpt2 crossover exists", gpt2CP != 0, fmt.Sprintf("BS=%d", gpt2CP), "BS=4"),
		checkBand("llama crossover", float64(llamaCP), 1, 4, "BS=1"),
		checkBand("llama BS=1 GH200/Intel ratio (no CP: similar latency)", llamaBS1, 0.7, 1.5, "≈1"),
		checkBand("llama BS=16 GH200 speedup over Intel", spIntel, 1.4, 2.3, "1.9"),
		checkBand("llama BS=16 GH200 speedup over AMD", spAMD, 2.0, 3.2, "2.7"),
		checkBool("llama GPU idle significant at BS=1 on GH200",
			float64(llama[hw.GH200Name][0].res.GPUIdle) > 0.1*float64(llama[hw.GH200Name][0].res.TTFT),
			f2(float64(llama[hw.GH200Name][0].res.GPUIdle)/float64(llama[hw.GH200Name][0].res.TTFT)),
			"significant GPU idle"),
	)
	return checks
}

func batchCols(batches []int64, extra ...string) []string {
	var cols []string
	for _, b := range batches {
		cols = append(cols, fmt.Sprintf("BS=%d", b))
	}
	return append(cols, extra...)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
