package bench

import (
	"fmt"

	"github.com/skipsim/skip/internal/cuda"
	"github.com/skipsim/skip/internal/engine"
	"github.com/skipsim/skip/internal/hw"
	"github.com/skipsim/skip/internal/models"
)

func init() {
	register(&Experiment{
		ID:    "table1",
		Title: "torch.compile mode compilation time and TTFT speedup (Gemma-2B, BS=1, seq=1024, Intel+H100)",
		Paper: "compile time 0.41s/6.28s/12.75s/387.3s; speedup 1/1.203/1.239/1.317",
		Run:   runTable1,
	})
	register(&Experiment{
		ID:    "table3",
		Title: "LLM models used for workload benchmarking",
		Paper: "Bert-Base-Uncased 110M, XLM-Roberta-Base 279M, GPT2 137M, Llama-3.2-1B 1.24B",
		Run:   runTable3,
	})
	register(&Experiment{
		ID:    "table4",
		Title: "System specifications of CPU-GPU coupled platforms",
		Paper: "AMD+A100 (LC), Intel+H100 (LC), GH200 (CC)",
		Run:   runTable4,
	})
	register(&Experiment{
		ID:    "table5",
		Title: "nullKernel launch overhead and duration across platforms",
		Paper: "overhead 2260.5/2374.6/2771.6 ns; duration 1440.0/1235.2/1171.2 ns",
		Run:   runTable5,
	})
}

func runTable1() (*Result, error) {
	res := &Result{ID: "table1", Title: "Table I"}
	p := hw.IntelH100()
	m := models.Gemma2B()
	modes := []engine.Mode{engine.Eager, engine.CompileDefault, engine.CompileReduceOverhead, engine.CompileMaxAutotune}

	var eagerTTFT float64
	tbl := Table{
		Title:   "TTFT compilation time and speedup vs eager (Gemma-2B, BS=1, seq=1024, Intel+H100)",
		Columns: []string{"Compile Mode", "Compilation Time (s)", "Speedup"},
	}
	var speedups []float64
	for _, mode := range modes {
		r, err := engine.Run(engine.Request{Platform: p, Model: m, Batch: 1, Seq: 1024, Mode: mode})
		if err != nil {
			return nil, err
		}
		ttft := r.TTFT.Seconds()
		if mode == engine.Eager {
			eagerTTFT = ttft
		}
		speedup := eagerTTFT / ttft
		speedups = append(speedups, speedup)
		tbl.Rows = append(tbl.Rows, []string{
			mode.String(), sec(r.CompileTime.Seconds()), f2(speedup),
		})
	}
	res.Tables = append(res.Tables, tbl)

	// Note: at BS=1/seq=1024 the simulated Gemma-2B run is GPU-dominated,
	// so default/reduce-overhead gains (host-side only) land below the
	// paper's 1.20/1.24 — the directional shape (every compiled mode ≥
	// eager, max-autotune best) is what we hold; see EXPERIMENTS.md.
	res.Checks = append(res.Checks,
		checkBand("default speedup", speedups[1], 1.0, 1.45, "1.203"),
		checkBand("reduce-overhead speedup", speedups[2], 1.0, 1.50, "1.239"),
		checkBand("max-autotune speedup", speedups[3], 1.10, 1.60, "1.317"),
		checkBool("speedup ordering eager<default≤reduce-overhead≤max-autotune",
			speedups[1] > 1 && speedups[2] >= speedups[1] && speedups[3] >= speedups[2],
			fmt.Sprintf("%.3f/%.3f/%.3f", speedups[1], speedups[2], speedups[3]),
			"monotone"),
	)
	return res, nil
}

func runTable3() (*Result, error) {
	res := &Result{ID: "table3", Title: "Table III"}
	tbl := Table{
		Title:   "LLM models used for workload benchmarking",
		Columns: []string{"Type", "Model", "HF id", "Layers", "Hidden", "Params (B)"},
	}
	for _, c := range models.TableIIIModels() {
		tbl.Rows = append(tbl.Rows, []string{
			c.Kind.String(), c.Name, c.HFName, d64(c.Layers), d64(c.Hidden), f2(c.ParamsBillion()),
		})
	}
	res.Tables = append(res.Tables, tbl)

	bert, _ := models.ByName("bert-base-uncased")
	llama, _ := models.ByName("llama-3.2-1B")
	res.Checks = append(res.Checks,
		checkBand("bert params (B)", bert.ParamsBillion(), 0.09, 0.13, "0.110"),
		checkBand("llama-3.2-1B params (B)", llama.ParamsBillion(), 1.11, 1.37, "1.24"),
	)
	return res, nil
}

func runTable4() (*Result, error) {
	res := &Result{ID: "table4", Title: "Table IV"}
	tbl := Table{
		Title:   "System specifications of CPU-GPU coupled platforms",
		Columns: []string{"Coupling", "Platform", "CPU", "GPU", "Interconnect", "Power (W)"},
	}
	for _, p := range hw.EvaluationPlatforms() {
		tbl.Rows = append(tbl.Rows, []string{
			p.Coupling.String(), p.Name, p.CPU.Name, p.GPU.Name, p.IC.Name, d(p.PowerW),
		})
	}
	res.Tables = append(res.Tables, tbl)
	res.Checks = append(res.Checks,
		checkBool("coupling classes", hw.GH200().Coupling == hw.CloselyCoupled &&
			hw.IntelH100().Coupling == hw.LooselyCoupled, "LC/LC/CC", "LC/LC/CC"),
	)
	return res, nil
}

func runTable5() (*Result, error) {
	res := &Result{ID: "table5", Title: "Table V"}
	tbl := Table{
		Title:   "cudaLaunch nullKernel overhead and duration (measured from 1000-launch microbenchmark traces)",
		Columns: []string{"Platform", "Launch Overhead (ns)", "Duration (ns)", "Paper Overhead", "Paper Duration"},
	}
	paper := map[string][2]float64{
		hw.AMDA100Name:   {2260.5, 1440.0},
		hw.IntelH100Name: {2374.6, 1235.2},
		hw.GH200Name:     {2771.6, 1171.2},
	}
	var overheads []float64
	for _, p := range hw.EvaluationPlatforms() {
		r := cuda.MeasureNullKernel(p, 1000)
		overheads = append(overheads, r.LaunchOverheadNs)
		want := paper[p.Name]
		tbl.Rows = append(tbl.Rows, []string{
			p.Name, f1(r.LaunchOverheadNs), f1(r.DurationNs), f1(want[0]), f1(want[1]),
		})
		res.Checks = append(res.Checks,
			checkBand(p.Name+" launch overhead (ns)", r.LaunchOverheadNs, want[0]-2, want[0]+2, f1(want[0])),
			checkBand(p.Name+" null duration (ns)", r.DurationNs, want[1]-2, want[1]+2, f1(want[1])),
		)
	}
	res.Tables = append(res.Tables, tbl)
	res.Checks = append(res.Checks,
		checkBool("GH200 highest launch overhead", overheads[2] > overheads[0] && overheads[2] > overheads[1],
			f1(overheads[2]), "2771.6 highest"),
	)
	return res, nil
}
