package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryCoversEveryArtifact(t *testing.T) {
	want := []string{
		"table1", "table3", "table4", "table5",
		"fig3", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
	}
	for _, id := range want {
		if _, err := ByID(id); err != nil {
			t.Errorf("missing experiment %s: %v", id, err)
		}
	}
	if _, err := ByID("fig99"); err == nil {
		t.Error("unknown id should fail")
	}
	ids := IDs()
	if len(ids) < len(want) {
		t.Errorf("registry has %d experiments, want ≥ %d", len(ids), len(want))
	}
	// Presentation order: tables before figures.
	if !strings.HasPrefix(ids[0], "table") {
		t.Errorf("first id = %s, want a table", ids[0])
	}
}

func TestAllExperimentsPassTheirChecks(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			r, err := e.Run()
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if r.ID != e.ID {
				t.Errorf("result ID = %s", r.ID)
			}
			if len(r.Tables) == 0 {
				t.Error("experiment produced no tables")
			}
			for _, c := range r.Checks {
				if !c.Pass {
					t.Errorf("check %q failed: got %s, paper %s", c.Name, c.Got, c.Want)
				}
			}
			if !r.Passed() {
				t.Error("Passed() = false")
			}
		})
	}
}

func TestTableRender(t *testing.T) {
	tbl := Table{
		Title:   "demo",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}, {"3", "4"}},
		Notes:   []string{"a note"},
	}
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"demo", "a", "bb", "1", "4", "note: a note", "--"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
}

func TestResultRender(t *testing.T) {
	r := Result{
		ID:     "x",
		Title:  "X",
		Tables: []Table{{Title: "t", Columns: []string{"c"}, Rows: [][]string{{"v"}}}},
		Checks: []Check{{Name: "n", Got: "1", Want: "2", Pass: false}},
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "[FAIL] n") {
		t.Errorf("render missing failed check:\n%s", out)
	}
	if r.Passed() {
		t.Error("Passed with failing check")
	}
}

func TestCheckHelpers(t *testing.T) {
	c := checkBand("b", 5, 4, 6, "≈5")
	if !c.Pass {
		t.Error("in-band should pass")
	}
	c = checkBand("b", 7, 4, 6, "≈5")
	if c.Pass {
		t.Error("out-of-band should fail")
	}
	c = checkBool("x", true, "g", "w")
	if !c.Pass || c.Got != "g" || c.Want != "w" {
		t.Errorf("checkBool = %+v", c)
	}
}
