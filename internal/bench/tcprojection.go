package bench

import (
	"fmt"

	"github.com/skipsim/skip/internal/engine"
	"github.com/skipsim/skip/internal/hw"
	"github.com/skipsim/skip/internal/models"
)

func init() {
	register(&Experiment{
		ID:    "ext7-tc-projection",
		Title: "Tightly-coupled projection: MI300A-class APU vs GH200 vs LC (paper future work §VI)",
		Paper: "§VI plans MI300A evaluation; §II-B predicts physically unified memory removes transfer overheads",
		Run:   runExtTCProjection,
	})
}

func runExtTCProjection() (*Result, error) {
	res := &Result{ID: "ext7-tc-projection", Title: "Extension 7"}
	plats := []*hw.Platform{hw.IntelH100(), hw.GH200(), hw.MI300A()}

	for _, name := range []string{"bert-base-uncased", "llama-3.2-1B"} {
		model, err := models.ByName(name)
		if err != nil {
			return nil, err
		}
		batches := encoderBatches
		if model.Kind == models.Decoder {
			batches = decoderBatches
		}
		tbl := Table{
			Title:   fmt.Sprintf("TTFT (ms) vs batch — %s, with the TC projection", name),
			Columns: append([]string{"Platform"}, batchCols(batches)...),
		}
		ttft := map[string][]float64{}
		for _, p := range plats {
			row := []string{p.Name + " (" + p.Coupling.String() + ")"}
			for _, bs := range batches {
				r, err := engine.Run(engine.Request{Platform: p, Model: model, Batch: bs, Seq: 512, Mode: engine.Eager})
				if err != nil {
					return nil, err
				}
				ttft[p.Name] = append(ttft[p.Name], r.TTFT.Milliseconds())
				row = append(row, ms(r.TTFT.Milliseconds()))
			}
			tbl.Rows = append(tbl.Rows, row)
		}
		res.Tables = append(res.Tables, tbl)

		last := len(batches) - 1
		res.Checks = append(res.Checks,
			checkBool(name+": TC beats CC at BS=1 (faster on-package CPU)",
				ttft[hw.MI300AName][0] < ttft[hw.GH200Name][0],
				fmt.Sprintf("%.1f vs %.1f ms", ttft[hw.MI300AName][0], ttft[hw.GH200Name][0]),
				"TC fixes the CC low-batch weakness"),
			checkBool(name+": TC competitive with CC at large batch",
				ttft[hw.MI300AName][last] < ttft[hw.GH200Name][last]*1.25,
				fmt.Sprintf("%.1f vs %.1f ms", ttft[hw.MI300AName][last], ttft[hw.GH200Name][last]),
				"unified HBM sustains bandwidth"),
			checkBool(name+": TC beats LC at large batch",
				ttft[hw.MI300AName][last] < ttft[hw.IntelH100Name][last],
				fmt.Sprintf("%.1f vs %.1f ms", ttft[hw.MI300AName][last], ttft[hw.IntelH100Name][last]),
				"coupling trend holds"),
		)
	}
	res.Tables[len(res.Tables)-1].Notes = append(res.Tables[len(res.Tables)-1].Notes,
		"MI300A parameters are a projection (DESIGN.md): physically unified HBM (no H2D),",
		"on-package Zen4 cores near x86 single-thread speed, CDNA3-class throughput")
	return res, nil
}
