package bench

import (
	"fmt"

	"github.com/skipsim/skip/internal/engine"
	"github.com/skipsim/skip/internal/fusion"
	"github.com/skipsim/skip/internal/hw"
	"github.com/skipsim/skip/internal/models"
)

// Extension experiments: beyond the paper's published artifacts, these
// implement its stated future work (§VI: "a more comprehensive kernel
// fusion prototype to validate the predicted performance gains") and
// ablate the three latency contributors it names (GPU performance, CPU
// performance, coupling/memory).

func init() {
	register(&Experiment{
		ID:    "ext1-applied-fusion",
		Title: "Applied proximity-score fusion: simulated vs idealized (Eq. 8) speedup (GPT-2, BS=1, GH200)",
		Paper: "future work §VI — validates when the idealized launch-savings model is reachable",
		Run:   runExtAppliedFusion,
	})
	register(&Experiment{
		ID:    "ext2-decode",
		Title: "Decode-phase characterization: TTFT vs TPOT and per-phase GPU idle (Llama-3.2-1B)",
		Paper: "§II-A — prefill pressures compute, decode pressures memory and the launch path",
		Run:   runExtDecode,
	})
	register(&Experiment{
		ID:    "ext3-ablation-cpu",
		Title: "Ablation: Grace single-thread performance vs low-batch latency (Bert, BS=1, GH200)",
		Paper: "§VI — 'addressing these bottlenecks requires enhancing CPU performance'",
		Run:   runExtAblationCPU,
	})
	register(&Experiment{
		ID:    "ext4-ablation-launch",
		Title: "Ablation: launch overhead vs low-batch latency (Bert, BS=1, GH200)",
		Paper: "§V-A — launch tax is one CPU-bound component; framework time is the other",
		Run:   runExtAblationLaunch,
	})
	register(&Experiment{
		ID:    "ext5-ablation-bandwidth",
		Title: "Ablation: HBM bandwidth vs large-batch latency (Bert, BS=64, GH200)",
		Paper: "§V-B — high-bandwidth memory drives the GH200's large-batch advantage",
		Run:   runExtAblationBandwidth,
	})
}

func runExtAppliedFusion() (*Result, error) {
	res := &Result{ID: "ext1-applied-fusion", Title: "Extension 1"}
	model, err := models.ByName("gpt2")
	if err != nil {
		return nil, err
	}
	req := engine.Request{Platform: hw.GH200(), Model: model, Batch: 1, Seq: 512, Mode: engine.Eager}
	eager, err := engine.Run(req)
	if err != nil {
		return nil, err
	}
	seq := fusion.KernelSequence(eager.Trace)

	tbl := Table{
		Title:   "Speedup over eager by chain length: idealized (Eq. 8) vs applied fusion",
		Columns: []string{"L", "instances fused", "ideal (Eq.8)", "launch-savings-only", "full-region"},
		Notes: []string{
			"launch-savings-only: framework still walks every operator; only launch calls collapse",
			"full-region: the fused region becomes one compiled dispatch — Eq. 8's implicit assumption",
		},
	}
	var lastFull, lastIdeal float64
	maxFull, maxCons := 0.0, 0.0
	for _, l := range []int{4, 8, 16, 32, 64, 128, 256} {
		ideal, err := fusion.Analyze(seq, l)
		if err != nil {
			return nil, err
		}
		cons, err := engine.RunFused(req, l, engine.LaunchSavingsOnly)
		if err != nil {
			return nil, err
		}
		full, err := engine.RunFused(req, l, engine.FullRegionFusion)
		if err != nil {
			return nil, err
		}
		consS := float64(eager.TTFT) / float64(cons.Result.TTFT)
		fullS := float64(eager.TTFT) / float64(full.Result.TTFT)
		if consS > maxCons {
			maxCons = consS
		}
		if fullS > maxFull {
			maxFull = fullS
		}
		lastFull, lastIdeal = fullS, ideal.IdealSpeedup
		tbl.Rows = append(tbl.Rows, []string{
			d(l), d(cons.FusedInstances), f2(ideal.IdealSpeedup), f2(consS), f2(fullS),
		})
	}
	res.Tables = append(res.Tables, tbl)
	res.Checks = append(res.Checks,
		checkBool("launch-savings-only helps but modestly", maxCons > 1.0 && maxCons < 1.5,
			f2(maxCons), ">1, small"),
		checkBool("full-region realizes most of the model", maxFull > maxCons,
			f2(maxFull), "closer to ideal"),
		checkBand("full-region vs ideal at L=256", lastFull/lastIdeal, 0.3, 1.6, "≈1 when CPU-bound"),
	)
	return res, nil
}

func runExtDecode() (*Result, error) {
	res := &Result{ID: "ext2-decode", Title: "Extension 2"}
	model, err := models.ByName("llama-3.2-1B")
	if err != nil {
		return nil, err
	}
	tbl := Table{
		Title:   "Generation phases: prefill (seq 512) + 16 decode steps, BS=1, eager",
		Columns: []string{"Platform", "TTFT (ms)", "TPOT (ms)", "prefill GPU idle", "decode GPU idle", "decode kernels/step"},
	}
	type row struct {
		prefillIdle, decodeIdle float64
		tpot                    float64
	}
	rows := map[string]row{}
	for _, p := range hw.EvaluationPlatforms() {
		g, err := engine.RunGenerate(engine.Request{
			Platform: p, Model: model, Batch: 1, Seq: 512, Mode: engine.Eager,
		}, 16)
		if err != nil {
			return nil, err
		}
		prefillIdle := 1 - float64(g.PrefillGPUBusy)/float64(g.TTFT)
		decodeIdle := 1 - float64(g.DecodeGPUBusy)/float64(g.DecodeTime)
		rows[p.Name] = row{prefillIdle, decodeIdle, g.TPOT.Milliseconds()}
		tbl.Rows = append(tbl.Rows, []string{
			p.Name, ms(g.TTFT.Milliseconds()), ms(g.TPOT.Milliseconds()),
			fmt.Sprintf("%.0f%%", prefillIdle*100), fmt.Sprintf("%.0f%%", decodeIdle*100),
			d(g.DecodeKernelsPerStep),
		})
	}
	res.Tables = append(res.Tables, tbl)

	for name, r := range rows {
		res.Checks = append(res.Checks, checkBool(
			name+" decode more launch-bound than prefill", r.decodeIdle > r.prefillIdle,
			fmt.Sprintf("%.0f%% vs %.0f%%", r.decodeIdle*100, r.prefillIdle*100), "decode idles more"))
	}
	res.Checks = append(res.Checks, checkBool(
		"Grace CPU penalizes decode hardest (TPOT worst on GH200)",
		rows[hw.GH200Name].tpot > rows[hw.IntelH100Name].tpot,
		f2(rows[hw.GH200Name].tpot/rows[hw.IntelH100Name].tpot)+"x Intel",
		"CC low-batch decode bound by CPU"))
	return res, nil
}

func runExtAblationCPU() (*Result, error) {
	res := &Result{ID: "ext3-ablation-cpu", Title: "Extension 3"}
	model, err := models.ByName("bert-base-uncased")
	if err != nil {
		return nil, err
	}
	tbl := Table{
		Title:   "Bert BS=1 TTFT on GH200 as the Grace single-thread score varies",
		Columns: []string{"SingleThreadScore", "TTFT (ms)", "vs stock"},
	}
	var ttfts []float64
	scores := []float64{0.31, 0.50, 0.70, 1.00}
	for _, score := range scores {
		p := hw.GH200()
		p.CPU.SingleThreadScore = score
		r, err := engine.Run(engine.Request{Platform: p, Model: model, Batch: 1, Seq: 512, Mode: engine.Eager})
		if err != nil {
			return nil, err
		}
		ttfts = append(ttfts, r.TTFT.Milliseconds())
		tbl.Rows = append(tbl.Rows, []string{
			f2(score), ms(r.TTFT.Milliseconds()), f2(ttfts[0] / r.TTFT.Milliseconds()),
		})
	}
	res.Tables = append(res.Tables, tbl)
	monotone := true
	for i := 1; i < len(ttfts); i++ {
		if ttfts[i] >= ttfts[i-1] {
			monotone = false
		}
	}
	res.Checks = append(res.Checks,
		checkBool("TTFT falls monotonically with CPU score", monotone,
			fmt.Sprintf("%.1f→%.1f ms", ttfts[0], ttfts[len(ttfts)-1]), "monotone"),
		checkBand("x86-class Grace would cut low-batch latency", ttfts[0]/ttfts[len(ttfts)-1], 1.8, 3.5, "≈2.8x headroom"),
	)
	return res, nil
}

func runExtAblationLaunch() (*Result, error) {
	res := &Result{ID: "ext4-ablation-launch", Title: "Extension 4"}
	model, err := models.ByName("bert-base-uncased")
	if err != nil {
		return nil, err
	}
	tbl := Table{
		Title:   "Bert BS=1 TTFT on GH200 as the launch overhead scales",
		Columns: []string{"Launch overhead (ns)", "TTFT (ms)", "vs stock"},
		Notes: []string{
			"launch overhead alone is a minor share of the CPU-bound cadence; framework",
			"operator time dominates — which is why whole-region fusion beats launch-only savings",
		},
	}
	var ttfts []float64
	for _, scale := range []float64{0.5, 1, 2, 4} {
		p := hw.GH200()
		p.LaunchOverheadNs *= scale
		r, err := engine.Run(engine.Request{Platform: p, Model: model, Batch: 1, Seq: 512, Mode: engine.Eager})
		if err != nil {
			return nil, err
		}
		ttfts = append(ttfts, r.TTFT.Milliseconds())
		tbl.Rows = append(tbl.Rows, []string{
			f1(p.LaunchOverheadNs), ms(r.TTFT.Milliseconds()), f2(r.TTFT.Milliseconds() / ttfts[0]),
		})
	}
	res.Tables = append(res.Tables, tbl)
	monotone := ttfts[0] < ttfts[1] && ttfts[1] < ttfts[2] && ttfts[2] < ttfts[3]
	res.Checks = append(res.Checks,
		checkBool("TTFT grows with launch overhead", monotone,
			fmt.Sprintf("%.1f→%.1f ms", ttfts[0], ttfts[3]), "monotone"),
		checkBand("8x overhead spread moves TTFT modestly", ttfts[3]/ttfts[0], 1.02, 1.8, "bounded"),
	)
	return res, nil
}

func runExtAblationBandwidth() (*Result, error) {
	res := &Result{ID: "ext5-ablation-bandwidth", Title: "Extension 5"}
	model, err := models.ByName("bert-base-uncased")
	if err != nil {
		return nil, err
	}
	tbl := Table{
		Title:   "Bert BS=64 TTFT on GH200 as HBM bandwidth scales",
		Columns: []string{"HBM (GB/s)", "TTFT (ms)", "vs stock"},
	}
	var ttfts []float64
	for _, scale := range []float64{0.5, 1, 2} {
		p := hw.GH200()
		p.GPU.HBMGBps *= scale
		r, err := engine.Run(engine.Request{Platform: p, Model: model, Batch: 64, Seq: 512, Mode: engine.Eager})
		if err != nil {
			return nil, err
		}
		ttfts = append(ttfts, r.TTFT.Milliseconds())
		tbl.Rows = append(tbl.Rows, []string{
			f1(p.GPU.HBMGBps), ms(r.TTFT.Milliseconds()), f2(r.TTFT.Milliseconds() / ttfts[0]),
		})
	}
	res.Tables = append(res.Tables, tbl)
	res.Checks = append(res.Checks,
		checkBool("large-batch TTFT is bandwidth-sensitive",
			ttfts[0] > ttfts[1] && ttfts[1] > ttfts[2],
			fmt.Sprintf("%.1f/%.1f/%.1f ms", ttfts[0], ttfts[1], ttfts[2]), "monotone in 1/BW"),
		checkBand("halving bandwidth hurts ≥20%", ttfts[0]/ttfts[1], 1.2, 2.0, "memory-bound region"),
	)
	return res, nil
}
