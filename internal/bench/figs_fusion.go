package bench

import (
	"fmt"

	"github.com/skipsim/skip/internal/core"
	"github.com/skipsim/skip/internal/engine"
	"github.com/skipsim/skip/internal/fusion"
	"github.com/skipsim/skip/internal/hw"
	"github.com/skipsim/skip/internal/models"
)

func init() {
	register(&Experiment{
		ID:    "fig3",
		Title: "TTFT speedups of FlashAttention-2 and torch.compile max-autotune over eager (7B models, Intel+H100)",
		Paper: "FA2 1.12/1.24/1.34; torch.compile 1.56/1.32/1.54 (Gemma-7B/Llama2-7B/Mistral-7B)",
		Run:   runFig3,
	})
	register(&Experiment{
		ID:    "fig5",
		Title: "Kernel counts and average launch+queuing time per execution mode (7B models, Intel+H100)",
		Paper: "eager ≈1500 kernels shrinking sharply under FA2 and torch.compile; avg launch+queue time drops",
		Run:   runFig5,
	})
	register(&Experiment{
		ID:    "fig7",
		Title: "Kernel fusion chain mining: unique chains, instances, fused chains, K_eager (GPT-2 & XLM-R, Intel+H100)",
		Paper: "K_eager 403/455/467 (GPT-2) and 251/299/359 (XLM-R); fused chains decrease with L",
		Run:   runFig7,
	})
	register(&Experiment{
		ID:    "fig8",
		Title: "Ideal speedup from kernel-launch savings vs chain length",
		Paper: "up to 2.7x for GPT-2 and 6.8x for XLM-Roberta-Base",
		Run:   runFig8,
	})
	register(&Experiment{
		ID:    "fig9",
		Title: "Proximity-score fusion vs torch.compile (CUDA Graphs) speedups, GPT-2 prefill",
		Paper: "best PS chain (L=256) ≈ 1.3x over torch.compile reduce-overhead",
		Run:   runFig9,
	})
}

var fusionBatches = []int64{1, 2, 4}

// fusionStudySeq runs one eager prefill on Intel+H100 and returns the
// kernel sequence (the SKIP trace pipeline end to end).
func fusionStudySeq(model *models.Config, bs int64) ([]string, error) {
	r, err := engine.Run(engine.Request{
		Platform: hw.IntelH100(), Model: model, Batch: bs, Seq: 512, Mode: engine.Eager,
	})
	if err != nil {
		return nil, err
	}
	return fusion.KernelSequence(r.Trace), nil
}

func runFig3() (*Result, error) {
	res := &Result{ID: "fig3", Title: "Fig. 3"}
	p := hw.IntelH100()
	tbl := Table{
		Title:   "TTFT speedup over eager (BS=1, seq=1024, Intel+H100)",
		Columns: []string{"Model", "FlashAttention2", "torch.compile (max-autotune)"},
	}
	var faMin, tcMin, faMax, tcMax float64 = 99, 99, 0, 0
	for _, m := range models.FusionStudyModels() {
		var ttft [3]float64
		for i, mode := range []engine.Mode{engine.Eager, engine.Flash, engine.CompileMaxAutotune} {
			r, err := engine.Run(engine.Request{Platform: p, Model: m, Batch: 1, Seq: 1024, Mode: mode})
			if err != nil {
				return nil, err
			}
			ttft[i] = r.TTFT.Seconds()
		}
		fa, tc := ttft[0]/ttft[1], ttft[0]/ttft[2]
		if fa < faMin {
			faMin = fa
		}
		if fa > faMax {
			faMax = fa
		}
		if tc < tcMin {
			tcMin = tc
		}
		if tc > tcMax {
			tcMax = tc
		}
		tbl.Rows = append(tbl.Rows, []string{m.Name, f2(fa), f2(tc)})
	}
	res.Tables = append(res.Tables, tbl)
	res.Checks = append(res.Checks,
		checkBand("FA2 speedup range (min)", faMin, 1.02, 1.5, "1.12-1.34"),
		checkBand("FA2 speedup range (max)", faMax, 1.05, 1.7, "1.12-1.34"),
		checkBand("torch.compile speedup (min)", tcMin, 1.1, 1.8, "1.32-1.56"),
		checkBool("torch.compile ≥ FA2 on every model", tcMin >= faMin, f2(tcMin), "TC dominates"),
	)
	return res, nil
}

func runFig5() (*Result, error) {
	res := &Result{ID: "fig5", Title: "Fig. 5"}
	p := hw.IntelH100()
	counts := Table{
		Title:   "Kernel counts per execution mode (BS=1, seq=1024, Intel+H100)",
		Columns: []string{"Model", "Eager", "FlashAttention", "Torch Compile"},
	}
	delays := Table{
		Title:   "Avg. launch + queuing time per kernel (ms)",
		Columns: []string{"Model", "Eager", "FlashAttention", "Torch Compile"},
		Notes: []string{
			"the simulated 7B prefill sits deep in the GPU-bound regime, so queuing dominates",
			"per-kernel delay in every mode (graph replay enqueues all kernels at once); the",
			"paper's near-balanced measurements show lower absolute delays — see EXPERIMENTS.md",
		},
	}
	type cell struct {
		kernels int
		avgUs   float64
	}
	grid := map[string][3]cell{}
	for _, m := range models.FusionStudyModels() {
		var row [3]cell
		for i, mode := range []engine.Mode{engine.Eager, engine.Flash, engine.CompileReduceOverhead} {
			r, err := engine.Run(engine.Request{Platform: p, Model: m, Batch: 1, Seq: 1024, Mode: mode})
			if err != nil {
				return nil, err
			}
			metrics, _, err := core.Analyze(r.Trace)
			if err != nil {
				return nil, err
			}
			row[i] = cell{
				kernels: metrics.KernelCount,
				avgUs:   metrics.MeanDelay.Milliseconds(),
			}
		}
		grid[m.Name] = row
		counts.Rows = append(counts.Rows, []string{m.Name, d(row[0].kernels), d(row[1].kernels), d(row[2].kernels)})
		delays.Rows = append(delays.Rows, []string{m.Name, f2(row[0].avgUs), f2(row[1].avgUs), f2(row[2].avgUs)})
	}
	counts.Notes = append(counts.Notes,
		"torch.compile counts device kernels inside the replayed CUDA graph; the host sees a single launch")
	res.Tables = append(res.Tables, counts, delays)

	for name, row := range grid {
		res.Checks = append(res.Checks,
			checkBool(name+" kernel count ordering eager>FA>TC",
				row[0].kernels > row[1].kernels && row[1].kernels > row[2].kernels,
				fmt.Sprintf("%d/%d/%d", row[0].kernels, row[1].kernels, row[2].kernels),
				"decreasing"),
		)
	}
	return res, nil
}

func runFig7() (*Result, error) {
	res := &Result{ID: "fig7", Title: "Fig. 7"}
	paperKeager := map[string][3]int{
		"gpt2":             {403, 455, 467},
		"xlm-roberta-base": {251, 299, 359},
	}
	for _, name := range []string{"gpt2", "xlm-roberta-base"} {
		model, err := models.ByName(name)
		if err != nil {
			return nil, err
		}
		unique := Table{
			Title:   fmt.Sprintf("(a) Unique kernel chains — %s", name),
			Columns: append([]string{"Batch"}, lengthCols()...),
		}
		instances := Table{
			Title:   fmt.Sprintf("(b) Total chain instances — %s", name),
			Columns: append([]string{"Batch"}, lengthCols()...),
		}
		fused := Table{
			Title:   fmt.Sprintf("(c) Deterministic chains fused (PS=1) — %s", name),
			Columns: append([]string{"Batch"}, lengthCols()...),
		}
		keager := Table{
			Title:   fmt.Sprintf("(d) Eager kernel launches K_eager — %s", name),
			Columns: []string{"Batch", "K_eager", "paper"},
		}
		for bi, bs := range fusionBatches {
			seq, err := fusionStudySeq(model, bs)
			if err != nil {
				return nil, err
			}
			rep, err := fusion.Sweep(seq, fusion.StandardLengths())
			if err != nil {
				return nil, err
			}
			ur := []string{fmt.Sprintf("BS=%d", bs)}
			ir := []string{fmt.Sprintf("BS=%d", bs)}
			fr := []string{fmt.Sprintf("BS=%d", bs)}
			var prevFused = 1 << 30
			monotone := true
			for _, row := range rep.Rows {
				ur = append(ur, d(row.UniqueChains))
				ir = append(ir, d(row.TotalInstances))
				fr = append(fr, d(row.FusedChains))
				if row.FusedChains > prevFused {
					monotone = false
				}
				prevFused = row.FusedChains
			}
			unique.Rows = append(unique.Rows, ur)
			instances.Rows = append(instances.Rows, ir)
			fused.Rows = append(fused.Rows, fr)
			paper := paperKeager[name][bi]
			keager.Rows = append(keager.Rows, []string{fmt.Sprintf("BS=%d", bs), d(len(seq)), d(paper)})

			res.Checks = append(res.Checks,
				checkBand(fmt.Sprintf("%s BS=%d K_eager", name, bs),
					float64(len(seq)), float64(paper)*0.85, float64(paper)*1.15, d(paper)),
				checkBool(fmt.Sprintf("%s BS=%d fused chains non-increasing in L", name, bs),
					monotone, "monotone", "decreasing"),
			)
		}
		res.Tables = append(res.Tables, unique, instances, fused, keager)
	}
	return res, nil
}

func runFig8() (*Result, error) {
	res := &Result{ID: "fig8", Title: "Fig. 8"}
	best := map[string]float64{}
	for _, name := range []string{"gpt2", "xlm-roberta-base"} {
		model, err := models.ByName(name)
		if err != nil {
			return nil, err
		}
		tbl := Table{
			Title:   fmt.Sprintf("Ideal speedup from kernel-launch savings — %s (Intel+H100)", name),
			Columns: append([]string{"Batch"}, lengthCols()...),
		}
		for _, bs := range fusionBatches {
			seq, err := fusionStudySeq(model, bs)
			if err != nil {
				return nil, err
			}
			rep, err := fusion.Sweep(seq, fusion.StandardLengths())
			if err != nil {
				return nil, err
			}
			row := []string{fmt.Sprintf("BS=%d", bs)}
			for _, a := range rep.Rows {
				row = append(row, f2(a.IdealSpeedup))
				if a.IdealSpeedup > best[name] {
					best[name] = a.IdealSpeedup
				}
			}
			tbl.Rows = append(tbl.Rows, row)
		}
		res.Tables = append(res.Tables, tbl)
	}
	res.Checks = append(res.Checks,
		checkBand("gpt2 best ideal speedup", best["gpt2"], 2.0, 3.5, "up to 2.7"),
		checkBand("xlm-roberta best ideal speedup", best["xlm-roberta-base"], 4.5, 9.5, "up to 6.8"),
	)
	return res, nil
}

func runFig9() (*Result, error) {
	res := &Result{ID: "fig9", Title: "Fig. 9"}
	model, err := models.ByName("gpt2")
	if err != nil {
		return nil, err
	}
	p := hw.IntelH100()
	tbl := Table{
		Title:   "Speedup over eager: PS kernel fusion (ideal, by chain length) vs torch.compile reduce-overhead (measured) — GPT-2 prefill",
		Columns: append(append([]string{"Batch"}, lengthCols()...), "TC"),
	}
	var bestPSOverTC float64
	for _, bs := range fusionBatches {
		eager, err := engine.Run(engine.Request{Platform: p, Model: model, Batch: bs, Seq: 512, Mode: engine.Eager})
		if err != nil {
			return nil, err
		}
		tc, err := engine.Run(engine.Request{Platform: p, Model: model, Batch: bs, Seq: 512, Mode: engine.CompileReduceOverhead})
		if err != nil {
			return nil, err
		}
		tcSpeedup := float64(eager.TTFT) / float64(tc.TTFT)

		seq := fusion.KernelSequence(eager.Trace)
		rep, err := fusion.Sweep(seq, fusion.StandardLengths())
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprintf("BS=%d", bs)}
		var bestPS float64
		for _, a := range rep.Rows {
			row = append(row, f2(a.IdealSpeedup))
			if a.IdealSpeedup > bestPS {
				bestPS = a.IdealSpeedup
			}
		}
		row = append(row, f2(tcSpeedup))
		tbl.Rows = append(tbl.Rows, row)
		if r := bestPS / tcSpeedup; r > bestPSOverTC {
			bestPSOverTC = r
		}
	}
	tbl.Notes = append(tbl.Notes,
		"PS columns are idealized (Eq. 8, launch savings only); TC is the simulated end-to-end speedup")
	res.Tables = append(res.Tables, tbl)
	res.Checks = append(res.Checks,
		checkBand("best PS-fusion advantage over torch.compile", bestPSOverTC, 1.0, 2.2, "1.3x at L=256"),
	)
	return res, nil
}

func lengthCols() []string {
	var cols []string
	for _, l := range fusion.StandardLengths() {
		cols = append(cols, fmt.Sprintf("L=%d", l))
	}
	return cols
}
