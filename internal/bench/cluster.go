package bench

import (
	"fmt"
	"reflect"

	"github.com/skipsim/skip/internal/cluster"
	"github.com/skipsim/skip/internal/hw"
	"github.com/skipsim/skip/internal/spec"
)

func init() {
	register(&Experiment{
		ID:    "ext9-cluster",
		Title: "Heterogeneous fleet routing study: 2×GH200 + 2×Intel+H100 behind pluggable routers under mixed traffic (Llama-3.2-1B)",
		Paper: "§V — coupled platforms win BS=1 TTFT, loosely-coupled large-batch decode throughput; a fleet router can exploit the regime split the paper characterizes per-node",
		Run:   runExtCluster,
	})
}

// clusterStudySpec is the heterogeneous fleet study as one declarative
// spec: two coupled and two loosely-coupled instances serving the same
// model under a production-style mixed stream (60% chat, 25% agentic
// single turns, 15% long-context summarization).
func clusterStudySpec(router string) *spec.Spec {
	return &spec.Spec{
		Model: "llama-3.2-1B",
		Workload: &spec.WorkloadSpec{
			Scenario:   "mixed",
			Requests:   120,
			RatePerSec: 40,
			Seed:       17,
		},
		Serve: &spec.ServeSpec{
			Policy:        "continuous",
			MaxBatch:      32,
			Seq:           512,
			LatencyBucket: 256,
			TTFTSLOMs:     500,
		},
		Fleet: &spec.FleetSpec{
			Groups: []spec.FleetGroupSpec{
				{Platform: hw.GH200Name, Count: 2},
				{Platform: hw.IntelH100Name, Count: 2},
			},
			Router: router,
		},
	}
}

// agenticStudySpec swaps the workload for 4-turn agentic trajectories,
// where session affinity pins whole trajectories to the instance that
// served turn one.
func agenticStudySpec(router string) *spec.Spec {
	s := clusterStudySpec(router)
	s.Workload = &spec.WorkloadSpec{
		Scenario:   "agentic",
		Requests:   96,
		RatePerSec: 32,
		Seed:       23,
		Turns:      4,
	}
	return s
}

func runExtCluster() (*Result, error) {
	res := &Result{ID: "ext9-cluster", Title: "Extension 9"}

	tbl := Table{
		Title: "Fleet-level latency and goodput by routing policy (2×GH200 + 2×Intel+H100, mixed workload, 40 req/s Poisson)",
		Columns: []string{"Router", "coupled/loose split", "P50 TTFT (ms)", "P99 TTFT (ms)",
			"P95 E2E (ms)", "tok/s", "goodput (req/s)", "imbalance"},
	}
	byPolicy := map[cluster.Policy]*cluster.Stats{}
	for _, policy := range cluster.Policies() {
		rep, err := spec.Simulate(clusterStudySpec(policy.String()))
		if err != nil {
			return nil, err
		}
		st := rep.Cluster
		byPolicy[policy] = st
		coupledRouted, looseRouted := 0, 0
		for _, is := range st.Instances {
			if is.Platform == hw.GH200Name {
				coupledRouted += is.Routed
			} else {
				looseRouted += is.Routed
			}
		}
		tbl.Rows = append(tbl.Rows, []string{
			policy.String(), fmt.Sprintf("%d/%d", coupledRouted, looseRouted),
			ms(st.P50TTFT.Milliseconds()), ms(st.P99TTFT.Milliseconds()),
			ms(st.P95E2E.Milliseconds()), f1(st.TokensPerSec), f1(st.Goodput),
			fmt.Sprintf("%.3f", st.LoadImbalance),
		})
	}
	tbl.Notes = append(tbl.Notes,
		"the platform-aware router sends prompts ≤512 tokens to coupled (GH200) instances and long-context work to the discrete nodes",
		"the coupled-for-latency intuition inverts under load: eager-mode GH200 serving is dispatch-bound (§V-B — Grace's weak single-thread launches), so concentrating short interactive traffic there saturates the coupled nodes while the discrete H100s idle",
		"session-affinity matches least-queue here because the mixed stream carries no session IDs (see the agentic table)",
		"imbalance is the coefficient of variation of per-instance routed counts",
		"goodput counts completed requests whose TTFT met the 500ms fleet SLO")
	res.Tables = append(res.Tables, tbl)

	// Session affinity needs sessions: the agentic trajectory stream.
	agTbl := Table{
		Title:   "Session-affinity routing on agentic 4-turn trajectories (same fleet, 32 req/s)",
		Columns: []string{"Router", "P50 TTFT (ms)", "P99 TTFT (ms)", "imbalance", "per-instance routed"},
	}
	agStats := map[cluster.Policy]*cluster.Stats{}
	for _, policy := range []cluster.Policy{cluster.LeastQueue, cluster.SessionAffinity} {
		rep, err := spec.Simulate(agenticStudySpec(policy.String()))
		if err != nil {
			return nil, err
		}
		st := rep.Cluster
		agStats[policy] = st
		split := ""
		for i, is := range st.Instances {
			if i > 0 {
				split += "/"
			}
			split += fmt.Sprintf("%d", is.Routed)
		}
		agTbl.Rows = append(agTbl.Rows, []string{
			policy.String(), ms(st.P50TTFT.Milliseconds()), ms(st.P99TTFT.Milliseconds()),
			fmt.Sprintf("%.3f", st.LoadImbalance), split,
		})
	}
	agTbl.Notes = append(agTbl.Notes,
		"affinity models KV-reuse locality (later turns return to the instance holding the session's context); the simulator does not yet credit the reuse, so its gain here is placement stability, not latency")
	res.Tables = append(res.Tables, agTbl)

	// Counterfactual routing: re-run the study under the platform-aware
	// router with decision records on, replaying the other policies over
	// each recorded load snapshot. Disagreement rates quantify how much
	// of the table above is placement policy rather than luck.
	cfSpec := clusterStudySpec(cluster.PlatformAware.String())
	cfSpec.Observability = &spec.ObservabilitySpec{CounterfactualK: 3}
	cfRep, err := spec.Simulate(cfSpec)
	if err != nil {
		return nil, err
	}
	routing := cfRep.Cluster.Routing
	cfTbl := Table{
		Title:   fmt.Sprintf("Counterfactual routing replay (%d picks recorded under %s)", routing.Picks, routing.Policy),
		Columns: []string{"Replayed policy", "agreed", "differed", "disagreement"},
	}
	for _, cf := range routing.Counterfactuals {
		cfTbl.Rows = append(cfTbl.Rows, []string{
			cf.Policy, fmt.Sprintf("%d", cf.Agreed), fmt.Sprintf("%d", cf.Differed),
			fmt.Sprintf("%.0f%%", 100*float64(cf.Differed)/float64(cf.Picks)),
		})
	}
	cfTbl.Notes = append(cfTbl.Notes,
		"each replayed policy scores the exact load snapshot the live router saw, so disagreement isolates the policy from the stream",
		"the decision records themselves ride in the report (Report.Cluster.Routing.Decisions) for span-level audits")
	res.Tables = append(res.Tables, cfTbl)

	// Admission control at the same offered load: a token bucket below
	// the offered rate sheds the burst tail at the front door.
	admitted := clusterStudySpec(cluster.LeastQueue.String())
	admitted.Fleet.AdmitRatePerSec = 25
	admitted.Fleet.AdmitBurst = 8
	shedRep, err := spec.Simulate(admitted)
	if err != nil {
		return nil, err
	}
	shed := shedRep.Cluster
	admTbl := Table{
		Title:   "Token-bucket admission control (least-queue router, 25 req/s sustained, depth 8)",
		Columns: []string{"Config", "offered", "rejected", "routed", "P99 TTFT (ms)", "goodput (req/s)"},
	}
	open := byPolicy[cluster.LeastQueue]
	admTbl.Rows = append(admTbl.Rows,
		[]string{"open door", fmt.Sprintf("%d", open.Offered), "0",
			fmt.Sprintf("%d", open.Routed), ms(open.P99TTFT.Milliseconds()), f1(open.Goodput)},
		[]string{"25 req/s bucket", fmt.Sprintf("%d", shed.Offered), fmt.Sprintf("%d", shed.Rejected),
			fmt.Sprintf("%d", shed.Routed), ms(shed.P99TTFT.Milliseconds()), f1(shed.Goodput)},
	)
	res.Tables = append(res.Tables, admTbl)

	// Determinism: the acceptance criterion — same spec, byte-identical
	// fleet stats including every per-instance series.
	againRep, err := spec.Simulate(clusterStudySpec(cluster.PlatformAware.String()))
	if err != nil {
		return nil, err
	}
	again := againRep.Cluster

	rr := byPolicy[cluster.RoundRobin]
	lq := byPolicy[cluster.LeastQueue]
	pa := byPolicy[cluster.PlatformAware]
	minT, maxT := pa.P99TTFT, pa.P99TTFT
	for _, st := range byPolicy {
		if st.P99TTFT < minT {
			minT = st.P99TTFT
		}
		if st.P99TTFT > maxT {
			maxT = st.P99TTFT
		}
	}
	ledgerOK := true
	for _, st := range byPolicy {
		settled := 0
		for _, is := range st.Instances {
			settled += is.Serve.Completed + is.Serve.Abandoned
		}
		if st.Offered != st.Rejected+st.Unroutable+st.Routed || settled != st.Routed {
			ledgerOK = false
		}
	}

	res.Checks = append(res.Checks,
		checkBool("same seed reproduces byte-identical fleet stats",
			reflect.DeepEqual(again, pa),
			fmt.Sprintf("rerun P99 TTFT %v vs %v", again.P99TTFT, pa.P99TTFT),
			"shared-clock simulation is deterministic"),
		checkBool("request ledger reconciles exactly for every policy",
			ledgerOK,
			fmt.Sprintf("round-robin: %d = %d rejected + %d unroutable + %d routed",
				rr.Offered, rr.Rejected, rr.Unroutable, rr.Routed),
			"no request lost or duplicated across routing, queueing, preemption, abandonment"),
		checkBool("routing policy measurably moves fleet P99 TTFT",
			maxT > minT+minT/20,
			fmt.Sprintf("P99 spread %v – %v across policies", minT, maxT),
			"placement decides tail latency on a heterogeneous fleet"),
		checkBool("load-aware routing beats oblivious round-robin P99 TTFT",
			lq.P99TTFT < rr.P99TTFT,
			fmt.Sprintf("least-queue %v vs round-robin %v", lq.P99TTFT, rr.P99TTFT),
			"watching instance queues contains the tail that fixed striping cannot"),
		checkBool("platform-aware routing biases short prompts onto the coupled nodes",
			coupledShare(pa) > coupledShare(rr),
			fmt.Sprintf("coupled share %.2f vs round-robin %.2f", coupledShare(pa), coupledShare(rr)),
			"the router implements the regime split; the table shows its cost in the dispatch-bound eager regime"),
		checkBool("session affinity changes agentic placement vs least-queue",
			!reflect.DeepEqual(routedCounts(agStats[cluster.SessionAffinity]), routedCounts(agStats[cluster.LeastQueue])),
			fmt.Sprintf("affinity split %v vs least-queue %v",
				routedCounts(agStats[cluster.SessionAffinity]), routedCounts(agStats[cluster.LeastQueue])),
			"whole trajectories pin to the instance that served turn one"),
		checkBool("admission control sheds load and contains the tail",
			shed.Rejected > 0 && shed.Routed < open.Routed,
			fmt.Sprintf("%d rejected, P99 %v vs open-door %v", shed.Rejected, shed.P99TTFT, open.P99TTFT),
			"the token bucket trades completed volume for front-door predictability"),
		checkBool("all four instances participate under every policy",
			allInstancesUsed(byPolicy),
			"every instance routed > 0 requests",
			"no policy degenerates to a single hot instance"),
		checkBool("decision records cover every placement exactly once",
			routing != nil && routing.Picks == cfRep.Cluster.Routed && len(routing.Decisions) == routing.Picks,
			fmt.Sprintf("%d decisions for %d routed requests", len(routing.Decisions), cfRep.Cluster.Routed),
			"the routing audit trail reconciles with the ledger on a static fleet"),
		checkBool("counterfactual replay partitions cleanly",
			counterfactualsPartition(routing),
			"agreed + differed == picks for every replayed policy",
			"each recorded snapshot yields exactly one verdict per alternative policy"),
	)
	return res, nil
}

// coupledShare is the fraction of routed requests placed on coupled
// (GH200-class) instances.
func coupledShare(st *cluster.Stats) float64 {
	if st.Routed == 0 {
		return 0
	}
	coupled := 0
	for _, is := range st.Instances {
		if is.Platform == hw.GH200Name {
			coupled += is.Routed
		}
	}
	return float64(coupled) / float64(st.Routed)
}

// counterfactualsPartition verifies every replayed policy's
// agreed/differed split sums back to the recorded pick count.
func counterfactualsPartition(r *cluster.RoutingStats) bool {
	if r == nil || len(r.Counterfactuals) == 0 {
		return false
	}
	for _, cf := range r.Counterfactuals {
		if cf.Picks != r.Picks || cf.Agreed+cf.Differed != cf.Picks {
			return false
		}
	}
	return true
}

func routedCounts(st *cluster.Stats) []int {
	counts := make([]int, len(st.Instances))
	for i, is := range st.Instances {
		counts[i] = is.Routed
	}
	return counts
}

func allInstancesUsed(byPolicy map[cluster.Policy]*cluster.Stats) bool {
	for _, st := range byPolicy {
		for _, is := range st.Instances {
			if is.Routed == 0 {
				return false
			}
		}
	}
	return true
}
