package bench

import (
	"fmt"
	"reflect"

	"github.com/skipsim/skip/internal/cluster"
	"github.com/skipsim/skip/internal/hw"
	"github.com/skipsim/skip/internal/spec"
)

func init() {
	register(&Experiment{
		ID:    "ext11-chaos",
		Title: "Dynamic fleet lifecycle study: SLO goodput under failure injection, and autoscale reactivity as a platform property",
		Paper: "extension of §V-B — the paper characterizes steady fleets; this study asks how the coupled/discrete asymmetry behaves when membership churns: crashes re-route in-flight work through the router, and spin-up lag (weights over NVLink-C2C vs PCIe) decides how fast added capacity actually lands",
		Run:   runExtChaos,
	})
}

// chaosStudySpec is one experiment document: a homogeneous fleet under
// the shared chat stream, with optional autoscale and fault sections.
func chaosStudySpec(platform string, count int, a *spec.AutoscaleSpec, f *spec.FaultsSpec) *spec.Spec {
	return &spec.Spec{
		Model: "llama-3.2-1B",
		Workload: &spec.WorkloadSpec{
			Scenario: "chat", Requests: 96, RatePerSec: 32, Seed: 19,
		},
		Serve: &spec.ServeSpec{
			Policy:        "continuous",
			MaxBatch:      32,
			Seq:           512,
			LatencyBucket: 256,
			TTFTSLOMs:     500,
		},
		Fleet: &spec.FleetSpec{
			Groups:    []spec.FleetGroupSpec{{Platform: platform, Count: count}},
			Router:    "least-queue",
			Autoscale: a,
			Faults:    f,
		},
	}
}

func runExtChaos() (*Result, error) {
	res := &Result{ID: "ext11-chaos", Title: "Extension 11"}

	// Part 1: SLO goodput vs crash rate. A 4-node fleet per platform,
	// seeded-random crashes swept over the rate; every crash evicts the
	// victim's in-flight work and re-routes it through the router, so
	// goodput degrades by requeue recomputation, not lost requests.
	rates := []float64{0.25, 0.5, 1, 2, 4}
	tbl := Table{
		Title: "SLO goodput vs crash rate, 4-node homogeneous fleets (Llama-3.2-1B chat, least-queue, 500ms TTFT SLO, seed 5)",
		Columns: []string{"Fleet", "crashes/s", "crashes", "killed", "requeued", "dropped",
			"P95 TTFT (ms)", "goodput (req/s)", "SLO att."},
	}
	faultFree := map[string]*cluster.Stats{}
	rateStats := map[string][]*cluster.Stats{} // platform → per-rate stats
	ledgerOK := true
	for _, platform := range []string{hw.GH200Name, hw.IntelH100Name} {
		baseRep, err := spec.Simulate(chaosStudySpec(platform, 4, nil, nil))
		if err != nil {
			return nil, err
		}
		bc := baseRep.Cluster
		faultFree[platform] = bc
		tbl.Rows = append(tbl.Rows, []string{
			platform + ":4", "0", "0", "-", "-", "-",
			ms(bc.P95TTFT.Milliseconds()), f1(bc.Goodput), f2(bc.SLOAttainment),
		})
		sw := chaosStudySpec(platform, 4, nil, &spec.FaultsSpec{CrashRatePerSec: rates[0], Seed: 5})
		values := make([]any, len(rates))
		for i, r := range rates {
			values[i] = r
		}
		sw.Sweep = &spec.SweepSpec{Field: "fleet.faults.crash_rate_per_sec", Values: values}
		swRep, err := spec.Simulate(sw)
		if err != nil {
			return nil, err
		}
		for i, pt := range swRep.Sweep {
			st := pt.Report.Cluster
			rateStats[platform] = append(rateStats[platform], st)
			c := st.Chaos
			if c.Killed != c.Requeued+c.Dropped ||
				st.Routed != st.Completed+st.Abandoned+c.Dropped {
				ledgerOK = false
			}
			tbl.Rows = append(tbl.Rows, []string{
				platform + ":4", fmt.Sprintf("%g", rates[i]), d(c.Crashes), d(c.Killed),
				d(c.Requeued), d(c.Dropped),
				ms(st.P95TTFT.Milliseconds()), f1(st.Goodput), f2(st.SLOAttainment),
			})
		}
	}
	tbl.Notes = append(tbl.Notes,
		"crash instants are a seeded Poisson process over the arrival window; victims are drawn uniformly from the survivors, and crashes that would leave fewer than two accepting instances are skipped",
		"killed = requeued + dropped exactly: every eviction is re-placed through the router (recomputing from scratch, tokens already streamed counted once) or reported dropped",
		"goodput falls faster than throughput because requeued requests recompute their prefill — their first token usually already missed the 500ms SLO on the crashed host")
	res.Tables = append(res.Tables, tbl)

	// Part 2: autoscale reactivity as a platform property. The same
	// 2-node fleet loses a base instance at 800ms; the controller grows
	// replacements, but the capacity only lands after the spin-up delay
	// — the knob that encodes how fast a platform loads weights (NVLink-
	// C2C streams them at 450 GB/s; a PCIe host store-and-forwards).
	spinUps := []int{500, 2000, 4000}
	reTbl := Table{
		Title: "Autoscale reactivity under a crash: spin-up delay vs recovered goodput (2 base nodes, max 4, queue-depth target 4, crash at 800ms)",
		Columns: []string{"Fleet", "spin-up (ms)", "joins", "peak active", "final active",
			"P95 TTFT (ms)", "goodput (req/s)"},
	}
	reactStats := map[string][]*cluster.Stats{}
	for _, platform := range []string{hw.GH200Name, hw.IntelH100Name} {
		for _, su := range spinUps {
			rep, err := spec.Simulate(chaosStudySpec(platform, 2,
				&spec.AutoscaleSpec{
					Platform: platform, Target: 4, Max: 4,
					IntervalMs: 100, CooldownMs: 200, SpinUpDelayMs: float64(su),
				},
				&spec.FaultsSpec{Schedule: []spec.FaultSpec{
					{AtMs: 800, Kind: "crash", Instance: 0},
				}}))
			if err != nil {
				return nil, err
			}
			st := rep.Cluster
			reactStats[platform] = append(reactStats[platform], st)
			c := st.Chaos
			reTbl.Rows = append(reTbl.Rows, []string{
				platform + ":2+as", d(su), d(c.Joins), d(c.PeakActive), d(c.FinalActive),
				ms(st.P95TTFT.Milliseconds()), f1(st.Goodput),
			})
		}
	}
	reTbl.Notes = append(reTbl.Notes,
		"the controller period (100ms) and the workload are identical across rows: only how long a spun-up instance takes to join differs — the fleet-size series shifts right by the spin-up delay",
		"the platform defaults the spec would apply (2s coupled, 4s loosely-coupled) bracket the swept values: a coupled node that streams weights over NVLink-C2C recovers roughly a controller period sooner than a PCIe host",
		"goodput counts completions whose TTFT met the 500ms SLO; requests that queued through the capacity gap are the difference between rows")
	res.Tables = append(res.Tables, reTbl)

	// Determinism: the acceptance criterion — the full chaos stack
	// (autoscale + seeded crashes) reproduces identical stats.
	chaosSpec := func() *spec.Spec {
		return chaosStudySpec(hw.GH200Name, 2,
			&spec.AutoscaleSpec{Platform: hw.GH200Name, Target: 4, Max: 4, IntervalMs: 100, CooldownMs: 200, SpinUpDelayMs: 500},
			&spec.FaultsSpec{CrashRatePerSec: 1, Seed: 5})
	}
	onceRep, err := spec.Simulate(chaosSpec())
	if err != nil {
		return nil, err
	}
	againRep, err := spec.Simulate(chaosSpec())
	if err != nil {
		return nil, err
	}

	ghRates, intelRates := rateStats[hw.GH200Name], rateStats[hw.IntelH100Name]
	ghReact := reactStats[hw.GH200Name]
	worstGH := ghRates[len(ghRates)-1]
	worstIntel := intelRates[len(intelRates)-1]

	res.Checks = append(res.Checks,
		checkBool("same chaos spec reproduces byte-identical fleet stats",
			reflect.DeepEqual(onceRep.Cluster, againRep.Cluster),
			fmt.Sprintf("rerun goodput %.3f vs %.3f, %d vs %d crashes",
				againRep.Cluster.Goodput, onceRep.Cluster.Goodput,
				againRep.Cluster.Chaos.Crashes, onceRep.Cluster.Chaos.Crashes),
			"the seeded fault plan and controller run on the shared calendar; churn does not break determinism"),
		checkBool("the churn ledger balances exactly at every crash rate",
			ledgerOK,
			fmt.Sprintf("GH200 at %g/s: %d killed = %d requeued + %d dropped",
				rates[len(rates)-1], worstGH.Chaos.Killed, worstGH.Chaos.Requeued, worstGH.Chaos.Dropped),
			"killed == requeued + dropped and routed == completed + abandoned + dropped, for every configuration"),
		checkBool("crashes cost goodput on both platforms",
			worstGH.Goodput < faultFree[hw.GH200Name].Goodput &&
				worstIntel.Goodput < faultFree[hw.IntelH100Name].Goodput,
			fmt.Sprintf("GH200 %.1f → %.1f req/s, Intel+H100 %.1f → %.1f req/s at %g crashes/s",
				faultFree[hw.GH200Name].Goodput, worstGH.Goodput,
				faultFree[hw.IntelH100Name].Goodput, worstIntel.Goodput, rates[len(rates)-1]),
			"requeued work recomputes its prefill, so every crash converts SLO-meeting completions into late ones"),
		checkBool("crashes actually fired at the top rate on both platforms",
			worstGH.Chaos.Crashes > 0 && worstIntel.Chaos.Crashes > 0,
			fmt.Sprintf("GH200 %d, Intel+H100 %d crashes at %g/s",
				worstGH.Chaos.Crashes, worstIntel.Chaos.Crashes, rates[len(rates)-1]),
			"the Poisson plan lands injections inside the arrival window"),
		checkBool("faster spin-up recovers at least the goodput of slower spin-up",
			ghReact[0].Goodput >= ghReact[len(ghReact)-1].Goodput,
			fmt.Sprintf("GH200 goodput %.2f req/s at %dms spin-up vs %.2f at %dms",
				ghReact[0].Goodput, spinUps[0], ghReact[len(ghReact)-1].Goodput, spinUps[len(spinUps)-1]),
			"reactivity is a platform property: capacity that lands sooner absorbs the post-crash queue sooner"),
		checkBool("the controller replaced the crashed capacity",
			ghReact[0].Chaos.Joins >= 1 && ghReact[0].Chaos.PeakActive >= 2,
			fmt.Sprintf("GH200 at %dms spin-up: %d joins, peak active %d (managed nodes drain once the tail runs cold)",
				spinUps[0], ghReact[0].Chaos.Joins, ghReact[0].Chaos.PeakActive),
			"autoscale and fault injection compose: the crash is a load signal the controller answers"),
		checkBool("fault-free runs carry no churn ledger",
			faultFree[hw.GH200Name].Chaos == nil,
			fmt.Sprintf("baseline Chaos == nil: %v", faultFree[hw.GH200Name].Chaos == nil),
			"a spec without autoscale/faults sections reports bit-identically to the pre-lifecycle simulator"),
	)
	return res, nil
}
