package models

import (
	"fmt"

	"github.com/skipsim/skip/internal/ops"
)

// AttnImpl selects the attention implementation, matching the execution
// modes the paper compares (§II-C).
type AttnImpl int

const (
	// AttnEager materializes scores: bmm → scale → mask → softmax → bmm,
	// plus the layout copies HF eager attention performs.
	AttnEager AttnImpl = iota
	// AttnFlash uses one fused FlashAttention-2 kernel.
	AttnFlash
)

func (a AttnImpl) String() string {
	if a == AttnFlash {
		return "flash_attention_2"
	}
	return "eager"
}

// BuildPrefill constructs the full prefill (TTFT) forward graph for the
// model at the given batch and sequence length. The operator and kernel
// sequences follow the HF transformers eager implementations closely
// enough that eager kernel counts land near the paper's measurements
// (GPT-2 ≈ 403 launches at BS=1, XLM-R ≈ 251; Fig. 7d).
func BuildPrefill(c *Config, batch, seq int64, attn AttnImpl) (*ops.Graph, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if batch <= 0 || seq <= 0 {
		return nil, fmt.Errorf("models: %s: batch (%d) and seq (%d) must be positive", c.Name, batch, seq)
	}
	if c.MaxSeq > 0 && seq > c.MaxSeq {
		return nil, fmt.Errorf("models: %s: seq %d exceeds max %d", c.Name, seq, c.MaxSeq)
	}
	g := &ops.Graph{Name: fmt.Sprintf("%s-prefill-bs%d-sl%d-%s", c.Name, batch, seq, attn)}
	// Token ids (int64) and attention mask in, logits/pooled output out.
	g.InputBytes = float64(batch * seq * (8 + 8))
	switch c.Kind {
	case Encoder:
		buildEncoder(g, c, batch, seq, attn)
		g.OutputBytes = float64(batch * c.Hidden * 2) // pooled output
	case Decoder:
		buildDecoder(g, c, batch, seq, attn)
		g.OutputBytes = float64(batch * c.Vocab * 2) // next-token logits
	}
	return g, nil
}

func buildEncoder(g *ops.Graph, c *Config, b, s int64, attn AttnImpl) {
	h, hd := c.Heads, c.HeadDim()
	rows := b * s
	hiddenElems := rows * c.Hidden

	// Embeddings: word + position + token-type gathers, two adds, norm.
	g.Nodes = append(g.Nodes,
		ops.Embedding("word", rows, c.Hidden),
		ops.Embedding("position", rows, c.Hidden),
		ops.Embedding("token_type", rows, c.Hidden),
		ops.Pointwise("add", "emb_add_pos", hiddenElems, 2, 1),
		ops.Pointwise("add", "emb_add_type", hiddenElems, 2, 1),
		ops.LayerNorm("embeddings", rows, c.Hidden),
	)

	for layer := int64(0); layer < c.Layers; layer++ {
		// Self-attention projections.
		g.Nodes = append(g.Nodes,
			ops.Linear("attn_q", b, s, c.Hidden, c.Hidden),
			ops.Linear("attn_k", b, s, c.Hidden, c.Hidden),
			ops.Linear("attn_v", b, s, c.Hidden, c.Hidden),
		)
		if attn == AttnFlash {
			g.Nodes = append(g.Nodes, ops.FlashAttention("enc", b, h, s, hd))
		} else {
			scoreElems := b * h * s * s
			g.Nodes = append(g.Nodes,
				// transpose_for_scores materializations.
				ops.Copy("contiguous", "q_heads", hiddenElems),
				ops.Copy("contiguous", "k_heads", hiddenElems),
				ops.Copy("contiguous", "v_heads", hiddenElems),
				ops.BMM("qk", b*h, s, hd, s),
				ops.Pointwise("div", "attn_scale", scoreElems, 1, 1),
				ops.Pointwise("add", "attn_mask", scoreElems, 2, 1),
				ops.Softmax("attn", b*h*s, s),
				ops.BMM("av", b*h, s, s, hd),
				ops.Copy("contiguous", "context", hiddenElems),
			)
		}
		g.Nodes = append(g.Nodes,
			ops.Linear("attn_out", b, s, c.Hidden, c.Hidden),
			ops.Pointwise("add", "attn_residual", hiddenElems, 2, 1),
			ops.LayerNorm("attn", rows, c.Hidden),
			ops.Linear("mlp_in", b, s, c.Hidden, c.Intermediate),
			ops.GELU("mlp", rows*c.Intermediate),
			ops.Linear("mlp_out", b, s, c.Intermediate, c.Hidden),
			ops.Pointwise("add", "mlp_residual", hiddenElems, 2, 1),
			ops.LayerNorm("mlp", rows, c.Hidden),
		)
		for i := 0; i < batchMaskKernels(b); i++ {
			g.Nodes = append(g.Nodes,
				ops.Copy("expand", fmt.Sprintf("mask_bcast_%d", i), b*s))
		}
	}

	// Pooler head over [CLS].
	g.Nodes = append(g.Nodes,
		ops.Linear("pooler", b, 1, c.Hidden, c.Hidden),
		ops.Pointwise("tanh", "pooler_tanh", b*c.Hidden, 1, 6),
	)
}

func buildDecoder(g *ops.Graph, c *Config, b, s int64, attn AttnImpl) {
	// Embeddings.
	rows := b * s
	hiddenElems := rows * c.Hidden
	g.Nodes = append(g.Nodes, ops.Embedding("wte", rows, c.Hidden))
	if c.Position == Learned {
		g.Nodes = append(g.Nodes,
			ops.Embedding("wpe", rows, c.Hidden),
			ops.Pointwise("add", "emb_add_pos", hiddenElems, 2, 1),
		)
	}

	for layer := int64(0); layer < c.Layers; layer++ {
		buildDecoderLayer(g, c, b, s, attn)
		for i := 0; i < batchMaskKernels(b); i++ {
			g.Nodes = append(g.Nodes,
				ops.Copy("expand", fmt.Sprintf("mask_bcast_%d", i), b*s))
		}
	}

	// Final norm + LM head (next-token logits over the full vocab; the
	// dominant single GEMM for large-vocab models).
	switch c.Norm {
	case RMSNorm:
		g.Nodes = append(g.Nodes, ops.RMSNorm("final", rows, c.Hidden))
	default:
		g.Nodes = append(g.Nodes, ops.LayerNorm("final", rows, c.Hidden))
	}
	g.Nodes = append(g.Nodes, ops.Linear("lm_head", b, s, c.Hidden, c.Vocab))
}

func buildDecoderLayer(g *ops.Graph, c *Config, b, s int64, attn AttnImpl) {
	h, hd, kvh := c.Heads, c.HeadDim(), c.KVHeads
	rows := b * s
	hiddenElems := rows * c.Hidden
	kvElems := rows * c.KVDim()
	scoreElems := b * h * s * s

	// Pre-attention norm.
	switch c.Norm {
	case RMSNorm:
		g.Nodes = append(g.Nodes, ops.RMSNorm("input", rows, c.Hidden))
	default:
		g.Nodes = append(g.Nodes, ops.LayerNorm("ln_1", rows, c.Hidden))
	}

	// QKV projection: GPT-2 uses one fused Conv1D; Llama-family uses
	// three separate linears (GQA-shaped K/V).
	gpt2Style := c.Position == Learned
	if gpt2Style {
		g.Nodes = append(g.Nodes,
			ops.Conv1D("c_attn", b, s, c.Hidden, 3*c.Hidden),
			ops.Copy("split", "q_split", hiddenElems),
			ops.Copy("split", "k_split", hiddenElems),
			ops.Copy("split", "v_split", hiddenElems),
		)
	} else {
		g.Nodes = append(g.Nodes,
			ops.Linear("q_proj", b, s, c.Hidden, c.Hidden),
			ops.Linear("k_proj", b, s, c.Hidden, c.KVDim()),
			ops.Linear("v_proj", b, s, c.Hidden, c.KVDim()),
		)
	}
	if c.Position == RoPE {
		g.Nodes = append(g.Nodes,
			ops.RoPE("q", hiddenElems),
			ops.RoPE("k", kvElems),
		)
	}

	if attn == AttnFlash {
		g.Nodes = append(g.Nodes, ops.FlashAttention("dec", b, h, s, hd))
	} else {
		if gpt2Style {
			// Head-permute materializations.
			g.Nodes = append(g.Nodes,
				ops.Copy("contiguous", "q_heads", hiddenElems),
				ops.Copy("contiguous", "k_heads", hiddenElems),
				ops.Copy("contiguous", "v_heads", hiddenElems),
			)
		} else if kvh < h {
			// Grouped-query attention: repeat_kv expand copies.
			g.Nodes = append(g.Nodes,
				ops.Copy("expand", "repeat_k", rows*c.Hidden),
				ops.Copy("expand", "repeat_v", rows*c.Hidden),
			)
		}
		g.Nodes = append(g.Nodes, ops.BMM("qk", b*h, s, hd, s))
		if gpt2Style {
			// GPT-2's explicit causal masking dance: scale, bias slice,
			// mask value tensor, where, plus the attention-mask add.
			g.Nodes = append(g.Nodes,
				ops.Pointwise("div", "attn_scale", scoreElems, 1, 1),
				ops.Copy("slice", "causal_bias", scoreElems),
				ops.Pointwise("full_like", "mask_value", scoreElems, 0, 0),
				ops.Pointwise("where", "causal_where", scoreElems, 3, 1),
				ops.Pointwise("add", "attn_mask", scoreElems, 2, 1),
			)
		} else {
			// Llama-family: mask add folded into one op (scaling happens
			// in the matmul epilogue).
			g.Nodes = append(g.Nodes,
				ops.Pointwise("add", "causal_mask", scoreElems, 2, 1),
			)
		}
		g.Nodes = append(g.Nodes, ops.Softmax("attn", b*h*s, s))
		// Softmax runs in fp32; cast back to fp16.
		g.Nodes = append(g.Nodes, ops.Pointwise("to", "softmax_cast", scoreElems, 1, 0))
		g.Nodes = append(g.Nodes,
			ops.BMM("av", b*h, s, s, hd),
			ops.Copy("contiguous", "context", hiddenElems),
		)
		if gpt2Style {
			g.Nodes = append(g.Nodes, ops.Copy("contiguous", "merge_heads", hiddenElems))
		}
	}

	// Output projection + residual.
	if gpt2Style {
		g.Nodes = append(g.Nodes, ops.Conv1D("c_proj", b, s, c.Hidden, c.Hidden))
	} else {
		g.Nodes = append(g.Nodes, ops.Linear("o_proj", b, s, c.Hidden, c.Hidden))
	}
	g.Nodes = append(g.Nodes, ops.Pointwise("add", "attn_residual", hiddenElems, 2, 1))

	// Pre-MLP norm.
	switch c.Norm {
	case RMSNorm:
		g.Nodes = append(g.Nodes, ops.RMSNorm("post_attn", rows, c.Hidden))
	default:
		g.Nodes = append(g.Nodes, ops.LayerNorm("ln_2", rows, c.Hidden))
	}

	// MLP.
	interElems := rows * c.Intermediate
	switch c.Activation {
	case SiLUGate:
		g.Nodes = append(g.Nodes,
			ops.Linear("gate_proj", b, s, c.Hidden, c.Intermediate),
			ops.Linear("up_proj", b, s, c.Hidden, c.Intermediate),
			ops.SiLUMul("mlp", interElems),
			ops.Linear("down_proj", b, s, c.Intermediate, c.Hidden),
		)
	case GELUGate:
		g.Nodes = append(g.Nodes,
			ops.Linear("gate_proj", b, s, c.Hidden, c.Intermediate),
			ops.Linear("up_proj", b, s, c.Hidden, c.Intermediate),
			ops.GELU("mlp_gate", interElems),
			ops.Pointwise("mul", "gate_mul", interElems, 2, 1),
			ops.Linear("down_proj", b, s, c.Intermediate, c.Hidden),
		)
	case GELUNew:
		g.Nodes = append(g.Nodes,
			ops.Conv1D("c_fc", b, s, c.Hidden, c.Intermediate),
			ops.NewGELU("mlp", interElems),
			ops.Conv1D("c_proj_mlp", b, s, c.Intermediate, c.Hidden),
		)
	default:
		g.Nodes = append(g.Nodes,
			ops.Linear("mlp_in", b, s, c.Hidden, c.Intermediate),
			ops.GELU("mlp", interElems),
			ops.Linear("mlp_out", b, s, c.Intermediate, c.Hidden),
		)
	}
	g.Nodes = append(g.Nodes, ops.Pointwise("add", "mlp_residual", hiddenElems, 2, 1))
}
